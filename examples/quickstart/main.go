// Quickstart: compose a workflow with the core operators and run the same
// composition on three different environments.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/core"
	"hhcw/internal/metrics"
)

func main() {
	// A small analysis pipeline: prepare, fan out 8 workers, merge.
	wf, err := core.Compile("quickstart", core.Sequence(
		core.Task("prepare", core.WithDuration(60), core.WithCores(1)),
		core.Scatter(8, func(i int) core.Node {
			return core.Task("analyze",
				core.WithDuration(300),
				core.WithCores(2),
				core.WithMemory(4e9),
			)
		}),
		core.Task("merge", core.WithDuration(90), core.WithCores(1)),
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d tasks, %d edges\n\n", wf.Name, wf.Len(), wf.EdgeCount())

	envs := []core.Environment{
		&core.KubernetesEnv{Nodes: 2, CoresPerNode: 8},
		&core.HPCEnv{Nodes: 4, CoresPerNode: 8, BootstrapSec: 85},
		&core.CloudEnv{MaxInstances: 8},
	}
	fmt.Printf("%-22s %12s %12s\n", "environment", "makespan", "utilization")
	for _, env := range envs {
		res, err := env.Run(wf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12s %11.1f%%\n",
			res.Environment, metrics.HumanSeconds(res.MakespanSec), res.UtilizationCore*100)
	}
}
