// exaam_uq: the §4 ExaAM uncertainty-quantification pipeline at laptop
// scale — three EnTK applications (grid generation, melt-pool + micro-
// structure, local properties) on a simulated 128-node allocation, with a
// node fault injected mid-run to show the resubmission machinery.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/cluster"
	"hhcw/internal/exaam"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	cl := cluster.Frontier(eng, 128)
	bm := rm.NewBatchManager(cl, nil)

	// A reduced UQ study: 5 melt-pool cases × 2 microstructure parameters,
	// 3 loading directions × 2 temperatures × 1 RVE → 60 ExaConstit runs.
	cfg := exaam.Config{
		GridDim: 2, GridLevel: 2, MeltPoolCases: 5,
		MicroParams: 2, LoadingDirections: 3, Temperatures: 2, RVEs: 1,
		Seed: 11,
	}
	fmt.Printf("UQ grid points: %d (Smolyak sparse grid, dim=%d level=%d)\n",
		len(exaam.SparseGrid(cfg.GridDim, cfg.GridLevel)), cfg.GridDim, cfg.GridLevel)
	fmt.Printf("microstructures: %d, ExaConstit ensemble members: %d\n\n",
		cfg.Microstructures(), cfg.PropertyTasks())

	// Kill one node during the property stage; EnTK resubmits its victims
	// in a follow-up batch job.
	fi := cluster.NewFaultInjector(cl, randx.New(3))
	fi.ScheduleNodeFailures(1, 9000)

	res, err := exaam.RunFull(cl, bm, cfg, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8s %8s %8s %8s\n", "stage", "tasks", "failed", "TTX", "util")
	print := func(name string, tasks, failed int, ttx float64, util float64) {
		fmt.Printf("%-28s %8d %8d %7.0fs %7.1f%%\n", name, tasks, failed, ttx, util*100)
	}
	print("stage0 grid+prep", res.Stage0.TasksExecuted, res.Stage0.TasksFailed, float64(res.Stage0.TTX), res.Stage0.Utilization)
	print("stage1 AdditiveFOAM+ExaCA", res.Stage1.TasksExecuted, res.Stage1.TasksFailed, float64(res.Stage1.TTX), res.Stage1.Utilization)
	print("stage3 ExaConstit", res.Stage3.TasksExecuted, res.Stage3.TasksFailed, float64(res.Stage3.TTX), res.Stage3.Utilization)
	print("optimize", res.Optimize.TasksExecuted, res.Optimize.TasksFailed, float64(res.Optimize.TTX), res.Optimize.Utilization)
	note := "no faults hit the ensemble"
	if res.Stage3.Rounds > 1 {
		note = "resubmission jobs recovered the node-fault victims"
	}
	fmt.Printf("\ntotal tasks executed: %d; stage-3 batch jobs: %d (%s)\n",
		res.TotalExecuted(), res.Stage3.Rounds, note)
}
