// adaptive_uq: EnTK's dynamic-workflow capability (§4) — an uncertainty-
// quantification ensemble that decides, from each round's results, whether
// to append another refinement round.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/cluster"
	"hhcw/internal/entk"
	"hhcw/internal/exaam"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	cl := cluster.Frontier(eng, 64)
	bm := rm.NewBatchManager(cl, nil)

	cfg := exaam.Config{
		GridDim: 2, GridLevel: 1, MeltPoolCases: 3,
		MicroParams: 2, LoadingDirections: 2, Temperatures: 2, RVEs: 1,
		Seed: 4,
	}

	// A toy convergence criterion: the "UQ error" halves every round;
	// refine until it drops under 10 %.
	uqError := 0.4
	converged := func(round int) bool {
		uqError /= 2
		fmt.Printf("round %d complete: estimated UQ error %.0f%%\n", round, uqError*100)
		return uqError < 0.10
	}

	p := exaam.AdaptiveStage3Pipeline(cfg, 6, converged)
	am := entk.NewAppManager(cl, bm, entk.FrontierResource(64, 12*3600))
	rep, err := am.Run(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nadaptive ensemble: %d rounds grown at runtime, %d ExaConstit members executed\n",
		len(p.Stages), rep.TasksExecuted)
	fmt.Printf("TTX %.0fs, utilization %.1f%%\n", float64(rep.TTX), rep.Utilization*100)
}
