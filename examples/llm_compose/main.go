// llm_compose: the §2 demonstration — a natural-language instruction is
// turned into a running Phyloflow workflow through function calling, first
// with the fragile §2.1 prototype, then with the §2.2 agent engine that
// survives an injected wrong function call.
package main

import (
	"fmt"

	"hhcw/internal/futures"
	"hhcw/internal/llmwf"
	"hhcw/internal/sim"
)

const instruction = "run the phylogenetic analysis on cohort-melanoma.vcf"

func main() {
	fmt.Printf("instruction: %q\n\n", instruction)

	// §2.1 prototype, clean model: works.
	eng := sim.NewEngine()
	exec := futures.NewExecutor(eng)
	specs := llmwf.RegisterPhyloflow(exec, "")
	llm := llmwf.NewMockLLM(llmwf.PhyloflowTemplate)
	stats, err := llmwf.RunFunctionCalling(eng, exec, llm, specs, instruction, 8192)
	fmt.Printf("prototype, clean model : %d steps in %.0f virtual s (err=%v)\n",
		stats.Steps, stats.MakespanSec, err)

	// §2.1 prototype, flaky model: unrecoverable.
	eng2 := sim.NewEngine()
	exec2 := futures.NewExecutor(eng2)
	specs2 := llmwf.RegisterPhyloflow(exec2, "")
	flaky := llmwf.NewMockLLM(llmwf.PhyloflowTemplate)
	flaky.WrongCallEvery = 2
	_, err = llmwf.RunFunctionCalling(eng2, exec2, flaky, specs2, instruction, 8192)
	fmt.Printf("prototype, flaky model : %v\n", err)

	// §2.2 agent engine, same flaky model: the debugger recovers.
	eng3 := sim.NewEngine()
	exec3 := futures.NewExecutor(eng3)
	specs3 := llmwf.RegisterPhyloflow(exec3, "")
	flaky3 := llmwf.NewMockLLM(llmwf.PhyloflowTemplate)
	flaky3.WrongCallEvery = 2
	agent := &llmwf.AgentEngine{
		Eng: eng3, Exec: exec3, LLM: flaky3, Specs: specs3,
		TokenLimit: 8192, MaxDebugAttempts: 2,
	}
	rep, err := agent.Execute(instruction)
	if err != nil {
		fmt.Printf("agent engine           : %v\n", err)
		return
	}
	fmt.Printf("agent engine, same flaky model: %d steps, debugger recovered %d wrong calls\n",
		rep.Steps, rep.Recovered)
	fmt.Printf("token cost             : prototype %d vs agents %d (validation costs requests)\n",
		stats.SentTokens, rep.SentTokens)
}
