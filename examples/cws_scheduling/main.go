// cws_scheduling: the §3 story — the same workflow on the same cluster,
// scheduled without and with workflow awareness through the Common Workflow
// Scheduler Interface.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/cluster"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func main() {
	buildCluster := func() *cluster.Cluster {
		return cluster.New(sim.NewEngine(), "k8s", cluster.Spec{
			Type:  cluster.NodeType{Name: "node", Cores: 8, MemBytes: 64e9},
			Count: 2,
		})
	}
	buildWorkflow := func() *dag.Workflow {
		return dag.RNASeqLike(randx.New(1990), 12,
			dag.GenOpts{MeanDur: 300, CVDur: 1.5, Cores: 1, MaxCores: 4})
	}

	results, err := cwsi.CompareStrategies(buildCluster, buildWorkflow,
		cwsi.Rank{}, cwsi.FileSize{}, cwsi.HEFT{})
	if err != nil {
		log.Fatal(err)
	}
	fifo := float64(results["fifo"])
	fmt.Println("strategy        makespan   vs FIFO")
	for _, name := range []string{"fifo", "rank", "filesize-desc", "heft"} {
		ms := float64(results[name])
		fmt.Printf("%-14s %8.0fs   %+6.1f%%\n", name, ms, (ms-fifo)/fifo*100)
	}

	// The CWS also centralizes provenance (§3.3): run once more with a CWS
	// attached and export the PROV document.
	cl := buildCluster()
	cws := cwsi.New(rm.NewTaskManager(cl, nil), cwsi.Rank{}, nil)
	w := buildWorkflow()
	if err := cws.RegisterWorkflow(w.Name, w); err != nil {
		log.Fatal(err)
	}
	if _, err := cws.RunWorkflow(w.Name, 0); err != nil {
		log.Fatal(err)
	}
	doc, err := cws.Provenance().ExportPROV()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovenance: %d task records, %d-byte PROV export\n",
		cws.Provenance().Len(), len(doc))
}
