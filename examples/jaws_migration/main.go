// jaws_migration: the §6 story end-to-end — lint a legacy workflow, apply
// the fusion pattern, and submit the result to a multi-site JAWS service
// with staging and call caching.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/cluster"
	"hhcw/internal/jaws"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

const legacy = `
workflow metagenome-annotation
task stage-in dur=5m overhead=30s
task qc dur=3m overhead=6m after=stage-in scatter=32 container=docker://jgi/qc:latest
task trim dur=2m overhead=6m after=qc scatter=32 container=docker://jgi/trim:latest
task screen dur=4m overhead=6m after=trim scatter=32 container=docker://jgi/screen:latest
task report dur=2m overhead=30s after=screen
`

func main() {
	def, err := jaws.Parse(legacy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== step 1: lint the legacy port ==")
	for _, f := range jaws.Lint(def) {
		fmt.Println("  ", f)
	}

	fmt.Println("\n== step 2: apply the fusion pattern (qc+trim+screen) ==")
	fused, err := jaws.Fuse(def, []string{"qc", "trim", "screen"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  shards: %d → %d\n", def.TotalShards(), fused.TotalShards())

	fmt.Println("\n== step 3: submit to the central service ==")
	eng := sim.NewEngine()
	svc := jaws.NewService(eng)
	perlmutter := cluster.New(eng, "perlmutter", cluster.Spec{
		Type:  cluster.NodeType{Name: "cpu", Cores: 32, MemBytes: 512e9},
		Count: 4,
	})
	svc.AddSite("perlmutter", perlmutter)
	svc.Transfer().SetLink("jaws-central", "perlmutter-scratch",
		storage.Link{BandwidthBps: 1e9, LatencySec: 1})
	svc.Transfer().SetLink("perlmutter-scratch", "jaws-central",
		storage.Link{BandwidthBps: 1e9, LatencySec: 1})
	svc.Central().Put(storage.File{Name: "reads.fastq.gz", Bytes: 20e9})

	res, err := svc.Submit(fused, "dcassol", "perlmutter", []string{"reads.fastq.gz"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ran on %s: makespan %.0fs, %d shards, staging %.0fs\n",
		res.Site, float64(res.Report.Makespan), res.Report.ShardsExecuted, res.StagingSec)

	// Resubmission hits the call cache.
	res2, err := svc.Submit(fused, "dcassol", "perlmutter", []string{"reads.fastq.gz"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resubmission: makespan %.0fs, %d cache hits (call caching)\n",
		float64(res2.Report.Makespan), res2.Report.CacheHits)
}
