// transcriptomics_atlas: the §5 pipeline — a batch of SRA runs processed by
// the Salmon pipeline on an auto-scaled cloud fleet and on an HPC cluster
// with containerized workers, with the per-step comparison the paper's
// Table 2 makes.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/atlas"
	"hhcw/internal/cloud"
	"hhcw/internal/cluster"
	"hhcw/internal/metrics"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func main() {
	rng := randx.New(2024)
	catalog := atlas.GenerateCatalog(rng.Fork(), 40)

	cloudRep, err := atlas.RunCloud(sim.NewEngine(), rng.Fork(), catalog, 6, cloud.T3Medium)
	if err != nil {
		log.Fatal(err)
	}

	hpcEng := sim.NewEngine()
	ares := cluster.New(hpcEng, "ares", cluster.Spec{
		Type:  cluster.NodeType{Name: "ares", Cores: 48, MemBytes: 192e9},
		Count: 2,
	})
	hpcRep, err := atlas.RunHPC(hpcEng, rng.Fork(), catalog, ares, 6, 120)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d SRA runs\n\n", len(catalog))
	fmt.Printf("%-14s %14s %14s\n", "step", "cloud mean", "HPC mean")
	for _, row := range atlas.Compare(cloudRep, hpcRep) {
		fmt.Printf("%-14s %14s %14s\n", row.Step,
			metrics.HumanSeconds(row.CloudMean), metrics.HumanSeconds(row.HPCMean))
	}
	fmt.Printf("\ncloud: %s end-to-end, $%.2f instance cost\n",
		metrics.HumanSeconds(cloudRep.Makespan), cloudRep.CostUSD)
	fmt.Printf("HPC:   %s end-to-end, %.0f%% job efficiency\n",
		metrics.HumanSeconds(hpcRep.Makespan), hpcRep.Efficiency*100)
}
