// Composed pipeline: the flagship composition from the README — an Atlas
// salmon pipeline (§5) feeding the ExaAM Stage-3 UQ ensemble (§4) — built
// with the compose layer and run as one ordinary dag.Workflow through a
// fault-injected, CWS-scheduled environment. The point: once every
// subsystem compiles to the same DAG form, cross-subsystem composition
// inherits scheduling, fault injection, retry, provenance, and the
// determinism contract for free.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/atlas"
	"hhcw/internal/compose"
	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/exaam"
	"hhcw/internal/fault"
	"hhcw/internal/provenance"
	"hhcw/internal/randx"
)

func build(rng *randx.Source) *dag.Workflow {
	// Stage 1: quantify two SRA runs with the §5 salmon pipeline.
	catalog := atlas.GenerateCatalog(rng, 2)
	// Stage 2: a small ExaConstit UQ ensemble consuming the expression
	// matrices. Pipeline() stitches every UQ root after every DESeq2 leaf.
	cfg := exaam.Config{
		GridDim: 2, GridLevel: 1, MeltPoolCases: 1,
		MicroParams: 1, LoadingDirections: 2, Temperatures: 1, RVEs: 2,
		Seed: rng.Int63(),
	}
	w, err := compose.Pipeline("atlas-uq",
		compose.Stage{Name: "atlas", From: atlas.PipelineSpec{Runs: catalog}},
		compose.Stage{Name: "uq", From: exaam.Stage3Pipeline(cfg)},
	)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func main() {
	run := func(seed int64) *core.Result {
		rng := randx.New(seed)
		w := build(rng)
		env := &core.KubernetesEnv{
			Nodes: 4, CoresPerNode: 16,
			Strategy: cwsi.Rank{},
			Faults:   fault.MTBF(),
			Retry:    fault.DefaultRetryPolicy(),
		}
		res, err := env.RunSeeded(w, rng.Fork())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	rng := randx.New(7)
	w := build(rng)
	cp, _ := w.CriticalPath(dag.NominalDur)
	fmt.Printf("composed %q: %d tasks, %d edges, critical path %.0fs\n",
		w.Name, w.Len(), w.EdgeCount(), cp)
	fmt.Println("\n--- DOT (pipe into `dot -Tsvg`) ---")
	fmt.Println(w.ToDOT())

	res := run(7)
	fmt.Printf("run: makespan %.0fs, util %.0f%%, %d tasks, %d failed attempts, %d retries\n",
		res.MakespanSec, res.UtilizationCore*100, res.TasksRun, res.FailedAttempts, res.Retries)
	if st, ok := res.Provenance.(*provenance.Store); ok {
		fmt.Printf("provenance: %d events recorded\n", st.Len())
	}

	// Determinism: same seed ⇒ bit-identical fingerprint, every time.
	again := run(7)
	fmt.Printf("fingerprint stable across reruns: %v\n",
		res.Fingerprint() == again.Fingerprint())
}
