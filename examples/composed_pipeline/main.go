// Composed pipeline: the flagship composition from the README — an Atlas
// salmon pipeline (§5) feeding the ExaAM Stage-3 UQ ensemble (§4) — expressed
// as workflow references against the builtin registry and run both ways:
// spliced statically at compile time, and expanded lazily at runtime through
// the streaming path. The point: once every subsystem compiles to the same
// DAG form and registers under a name, cross-subsystem composition is a
// WorkflowRef away, and both expansion modes inherit scheduling, fault
// injection, retry, provenance, and the determinism contract — with
// bit-identical fingerprints.
package main

import (
	"fmt"
	"log"

	"hhcw/internal/compose"
	"hhcw/internal/core"
	"hhcw/internal/dag"
	"hhcw/internal/driver"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
)

func main() {
	reg := driver.Registry()
	// The whole composition is one reference: "atlas-uq" is itself defined
	// as two nested refs (atlas -> exaam-uq) in the registry.
	root := driver.RefRoot("atlas-uq", 7)

	// Collapsed view: references render as boxes (wfsim -dot-expand-depth).
	collapsed, err := reg.ExpandDepth(root, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- collapsed DOT (refs as boxes; pipe into `dot -Tsvg`) ---")
	fmt.Println(collapsed.ToDOT())

	// Static expansion: every ref spliced inline, an ordinary dag.Workflow.
	w, err := reg.Expand(root)
	if err != nil {
		log.Fatal(err)
	}
	cp, _ := w.CriticalPath(dag.NominalDur)
	fmt.Printf("expanded %q: %d tasks, %d edges, critical path %.0fs\n",
		w.Name, w.Len(), w.EdgeCount(), cp)

	// Run the static expansion on a fault-injected substrate.
	env := &core.KubernetesEnv{
		Nodes: 4, CoresPerNode: 16,
		Faults: fault.MTBF(),
		Retry:  fault.DefaultRetryPolicy(),
	}
	res, err := env.RunSeeded(w, randx.New(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static run: makespan %.0fs, util %.0f%%, %d tasks, %d failed attempts, %d retries\n",
		res.MakespanSec, res.UtilizationCore*100, res.TasksRun, res.FailedAttempts, res.Retries)

	// The same root, expanded lazily at runtime: references splice into the
	// frontier as their inputs resolve, under bounded residency.
	lazy := &compose.LazyEnv{
		KubernetesEnv: core.KubernetesEnv{
			Nodes: 4, CoresPerNode: 16,
			Faults: fault.MTBF(),
			Retry:  fault.DefaultRetryPolicy(),
		},
		Registry: reg,
	}
	lres, err := lazy.RunSeeded(root, randx.New(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lazy run:   makespan %.0fs, util %.0f%%, %d tasks, %d failed attempts, %d retries\n",
		lres.MakespanSec, lres.UtilizationCore*100, lres.TasksRun, lres.FailedAttempts, lres.Retries)

	// Determinism: static and lazy expansion are bit-identical, every time.
	fmt.Printf("fingerprints identical across expansion modes: %v\n",
		res.Fingerprint() == lres.Fingerprint())
}
