package hhcw_test

// Ablation benchmarks for the design choices DESIGN.md §6 calls out:
// strategy family, predictor choice, EnTK resubmission, the Airflow
// big-worker strategy, JAWS call caching, and the fair-share cap sweep.

import (
	"fmt"
	"testing"

	"hhcw/internal/atlas"
	"hhcw/internal/cloud"
	"hhcw/internal/cluster"
	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/entk"
	"hhcw/internal/exaam"
	"hhcw/internal/jaws"
	"hhcw/internal/predict"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
	"hhcw/internal/sweep"
)

// BenchmarkAblation_Strategies compares every scheduling strategy on the
// same heterogeneous cluster and workflow.
func BenchmarkAblation_Strategies(b *testing.B) {
	strategies := map[string]cwsi.Strategy{
		"fifo":     cwsi.Baseline{},
		"rank":     cwsi.Rank{},
		"filesize": cwsi.FileSize{},
		"heft":     cwsi.HEFT{},
		"tarema":   cwsi.Tarema{},
	}
	for name, strat := range strategies {
		strat := strat
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				cl := cluster.Heterogeneous(sim.NewEngine(), 2)
				w := dag.RandomLayered(randx.New(42), 6, 10,
					dag.GenOpts{MeanDur: 300, CVDur: 1.0, Cores: 1, MaxCores: 4, MeanMem: 2e9})
				res, err := cwsi.RunNextflowStyle("nextflow", cl, w, strat)
				if err != nil {
					b.Fatal(err)
				}
				makespan = float64(res.Makespan)
			}
			b.ReportMetric(makespan, "makespan_s")
		})
	}
}

// BenchmarkAblation_Predictors measures runtime-prediction error (mean
// relative error) per predictor after training on one workflow's provenance
// and predicting a second workflow — the §3.4 pipeline.
func BenchmarkAblation_Predictors(b *testing.B) {
	predictors := map[string]func() predict.RuntimePredictor{
		"mean":       func() predict.RuntimePredictor { return predict.NewMean() },
		"regression": func() predict.RuntimePredictor { return predict.NewRegression() },
		"lotaru":     func() predict.RuntimePredictor { return predict.NewLotaru() },
	}
	for name, mk := range predictors {
		mk := mk
		b.Run(name, func(b *testing.B) {
			var mre float64
			for i := 0; i < b.N; i++ {
				p := mk()
				// Train on observed executions of one workflow.
				train := dag.RNASeqLike(randx.New(1), 30, dag.GenOpts{MeanDur: 300, CVDur: 0.4})
				for _, t := range train.Tasks() {
					p.Observe(predict.Observation{
						TaskName: t.Name, InputBytes: t.InputBytes,
						RuntimeSec: t.NominalDur, SpeedFactor: 1,
					})
				}
				// Evaluate on a fresh workflow of the same processes.
				test := dag.RNASeqLike(randx.New(2), 30, dag.GenOpts{MeanDur: 300, CVDur: 0.4})
				var errs predict.Errors
				for _, t := range test.Tasks() {
					if got, ok := p.Predict(t.Name, t.InputBytes, 1); ok {
						errs.Observe(got, t.NominalDur)
					}
				}
				mre = errs.MRE() * 100
			}
			b.ReportMetric(mre, "mre_pct")
		})
	}
}

// BenchmarkAblation_PredictionLoop runs the closed §3.4 loop — predictors
// trained online from provenance as attempts complete, feeding priority,
// placement, and backfill — over predictor × workflow family on a contended
// heterogeneous cluster. Each sub-benchmark reports the predicted run's
// mean makespan cut vs the predictor-off baseline and the realized mean
// relative prediction error; `sweeprun -predict` renders the same table
// over larger seed ensembles.
func BenchmarkAblation_PredictionLoop(b *testing.B) {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 1.5, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	families := []sweep.WorkflowSpec{
		{Name: "montage-16", Gen: func(r *randx.Source) *dag.Workflow { return dag.MontageLike(r, 16, opts) }},
		{Name: "epigenomics-6x5", Gen: func(r *randx.Source) *dag.Workflow { return dag.EpigenomicsLike(r, 6, 5, opts) }},
		{Name: "forkjoin-3x12", Gen: func(r *randx.Source) *dag.Workflow { return dag.ForkJoin(r, 3, 12, opts) }},
		{Name: "rnaseq-12", Gen: func(r *randx.Source) *dag.Workflow { return dag.RNASeqLike(r, 12, opts) }},
	}
	mkEnv := func(predictor string) func() core.Environment {
		return func() core.Environment {
			return &core.KubernetesEnv{Nodes: 2, Heterogeneous: true, Strategy: cwsi.Baseline{}, Predict: predictor}
		}
	}
	for _, fam := range families {
		fam := fam
		for _, predictor := range []string{"mean", "regression", "lotaru"} {
			predictor := predictor
			b.Run(fam.Name+"/"+predictor, func(b *testing.B) {
				var cell *sweep.Cell
				for i := 0; i < b.N; i++ {
					rep, err := sweep.Run(sweep.Config{
						Workflows: []sweep.WorkflowSpec{fam},
						Envs: []sweep.EnvSpec{
							{Name: "off", New: mkEnv("off")},
							{Name: predictor, New: mkEnv(predictor)},
						},
						Seeds:    sweep.Seeds(13, 5),
						Baseline: "off",
					})
					if err != nil {
						b.Fatal(err)
					}
					cell = &rep.Cells[1]
				}
				b.ReportMetric(cell.Makespan.Median, "median_makespan_s")
				b.ReportMetric(cell.CutMeanPct, "cut_mean_pct")
				b.ReportMetric(cell.PredMREPct.Mean(), "mre_pct")
				b.ReportMetric(cell.PredSamples.Median, "pred_samples")
			})
		}
	}
}

// BenchmarkAblation_EnTKResubmission compares ensemble completion with and
// without the consecutive-job resubmission the ExaAM applications added.
func BenchmarkAblation_EnTKResubmission(b *testing.B) {
	for _, rounds := range []int{0, 1} {
		rounds := rounds
		b.Run(fmt.Sprintf("resubmit=%d", rounds), func(b *testing.B) {
			var completed float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				cl := cluster.Frontier(eng, 64)
				bm := rm.NewBatchManager(cl, nil)
				cfg := exaam.Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 4, MicroParams: 2,
					LoadingDirections: 3, Temperatures: 2, RVEs: 1, Seed: 5,
					TransientFailures: 6}
				am := entk.NewAppManager(cl, bm, entk.FrontierResource(64, 12*3600))
				am.MaxResubmitRounds = rounds
				rep, err := am.Run(exaam.Stage3Pipeline(cfg))
				if err != nil {
					b.Fatal(err)
				}
				completed = float64(rep.TasksExecuted) / float64(cfg.PropertyTasks()) * 100
			}
			b.ReportMetric(completed, "completed_pct")
		})
	}
}

// BenchmarkAblation_BigWorkerWaste quantifies §3.2's Airflow big-worker
// anti-pattern against CWSI pods on a fork-join workflow with merge points.
func BenchmarkAblation_BigWorkerWaste(b *testing.B) {
	mkCl := func() *cluster.Cluster {
		return cluster.New(sim.NewEngine(), "k8s", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
			Count: 6,
		})
	}
	mkWf := func() *dag.Workflow {
		return dag.ForkJoin(randx.New(9), 3, 12, dag.GenOpts{MeanDur: 300, CVDur: 0.8})
	}
	b.Run("bigworker", func(b *testing.B) {
		var waste float64
		for i := 0; i < b.N; i++ {
			res, err := cwsi.RunAirflowBigWorker(mkCl(), mkWf())
			if err != nil {
				b.Fatal(err)
			}
			waste = res.Waste() * 100
		}
		b.ReportMetric(waste, "waste_pct")
	})
	b.Run("cwsi-pods", func(b *testing.B) {
		var waste float64
		for i := 0; i < b.N; i++ {
			res, err := cwsi.RunNextflowStyle("nextflow", mkCl(), mkWf(), cwsi.Rank{})
			if err != nil {
				b.Fatal(err)
			}
			waste = res.Waste() * 100
		}
		b.ReportMetric(waste, "waste_pct")
	})
}

// BenchmarkAblation_CallCaching compares a JAWS resubmission with and
// without call caching.
func BenchmarkAblation_CallCaching(b *testing.B) {
	const text = `
workflow asm
container docker://jgi/x@sha256:aa
task filter dur=10m overhead=1m
task align dur=30m overhead=1m after=filter scatter=24
task merge dur=5m overhead=1m after=align
`
	for _, caching := range []bool{false, true} {
		caching := caching
		b.Run(fmt.Sprintf("caching=%v", caching), func(b *testing.B) {
			var rerun float64
			for i := 0; i < b.N; i++ {
				def, err := jaws.Parse(text)
				if err != nil {
					b.Fatal(err)
				}
				eng := sim.NewEngine()
				cl := cluster.New(eng, "s", cluster.Spec{
					Type:  cluster.NodeType{Name: "n", Cores: 16, MemBytes: 256e9},
					Count: 4,
				})
				e := jaws.NewEngine(cl, storage.NewStore("fs", 0, 0, 0))
				e.CallCaching = caching
				if _, err := e.Run(def, "u"); err != nil {
					b.Fatal(err)
				}
				rep, err := e.Run(def, "u")
				if err != nil {
					b.Fatal(err)
				}
				rerun = float64(rep.Makespan)
			}
			b.ReportMetric(rerun, "rerun_makespan_s")
		})
	}
}

// BenchmarkAblation_DataLocality compares placement strategies on a
// data-heavy workflow when remote-input staging costs real time: round-
// robin load balancing scatters each chain's stages across nodes and pays
// staging on every hop; the locality-aware strategy keeps chains on their
// producers' nodes.
func BenchmarkAblation_DataLocality(b *testing.B) {
	mkWorkflow := func() *dag.Workflow {
		rng := randx.New(77)
		w := dag.New("datachains")
		for c := 0; c < 3; c++ {
			var prev dag.TaskID
			for s := 0; s < 4; s++ {
				id := dag.TaskID(fmt.Sprintf("c%d-s%d", c, s))
				var deps []dag.TaskID
				var in float64
				if prev != "" {
					deps = []dag.TaskID{prev}
					in = 10e9
				}
				// Varied durations desynchronize the chains, so naive
				// first-fit shuffles them across nodes.
				w.Add(&dag.Task{ID: id, Name: "stage", NominalDur: rng.Uniform(60, 140),
					InputBytes: in, OutputBytes: 10e9, Deps: deps})
				prev = id
			}
		}
		return w
	}
	for _, strat := range []cwsi.Strategy{&cwsi.RoundRobin{}, cwsi.DataLocal{}} {
		strat := strat
		b.Run(strat.Name(), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				cl := cluster.New(sim.NewEngine(), "d", cluster.Spec{
					Type:  cluster.NodeType{Name: "n", Cores: 2, MemBytes: 64e9},
					Count: 4,
				})
				cws := cwsi.New(rm.NewTaskManager(cl, nil), strat, nil)
				cws.SetDataBandwidth(100e6) // 100 MB/s inter-node
				if err := cws.RegisterWorkflow("w", mkWorkflow()); err != nil {
					b.Fatal(err)
				}
				ms, err := cws.RunWorkflow("w", 0)
				if err != nil {
					b.Fatal(err)
				}
				makespan = float64(ms)
			}
			b.ReportMetric(makespan, "makespan_s")
		})
	}
}

// BenchmarkAblation_MemoryPrediction compares makespan on a memory-
// constrained cluster with user-declared (inflated) requests vs CWS
// memory right-sizing (§3.4/§6.1 resource prediction).
func BenchmarkAblation_MemoryPrediction(b *testing.B) {
	mkWorkflow := func() *dag.Workflow {
		w := dag.New("mem")
		for i := 0; i < 32; i++ {
			w.Add(&dag.Task{
				ID:   dag.TaskID(fmt.Sprintf("t%02d", i)),
				Name: "hungry", NominalDur: 100,
				MemBytes: 16e9, PeakMemBytes: 4e9, // 4× over-request
			})
		}
		return w
	}
	mkCluster := func() *cluster.Cluster {
		return cluster.New(sim.NewEngine(), "mem", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 64, MemBytes: 64e9},
			Count: 1,
		})
	}
	for _, predicted := range []bool{false, true} {
		predicted := predicted
		b.Run(fmt.Sprintf("mempred=%v", predicted), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				cws := cwsi.New(rm.NewTaskManager(mkCluster(), nil), cwsi.Baseline{}, nil)
				if predicted {
					mp := predict.NewMem(0.2)
					mp.Observe(predict.Observation{TaskName: "hungry", PeakMem: 4e9})
					cws.SetMemPredictor(mp)
				}
				if err := cws.RegisterWorkflow("w", mkWorkflow()); err != nil {
					b.Fatal(err)
				}
				ms, err := cws.RunWorkflow("w", 1)
				if err != nil {
					b.Fatal(err)
				}
				makespan = float64(ms)
			}
			b.ReportMetric(makespan, "makespan_s")
		})
	}
}

// BenchmarkAblation_SpotInstances compares on-demand vs spot execution of
// the Atlas cloud pipeline: cost drops ~3x, makespan pays a requeue tax.
func BenchmarkAblation_SpotInstances(b *testing.B) {
	mkCatalog := func() []atlas.SRARun { return atlas.GenerateCatalog(randx.New(31), 60) }
	b.Run("ondemand", func(b *testing.B) {
		var cost, hours float64
		for i := 0; i < b.N; i++ {
			rep, err := atlas.RunCloud(sim.NewEngine(), randx.New(32), mkCatalog(), 6, cloud.T3Medium)
			if err != nil {
				b.Fatal(err)
			}
			cost, hours = rep.CostUSD, rep.Makespan/3600
		}
		b.ReportMetric(cost, "cost_usd")
		b.ReportMetric(hours, "makespan_h")
	})
	b.Run("spot", func(b *testing.B) {
		var cost, hours, interrupts float64
		for i := 0; i < b.N; i++ {
			rep, err := atlas.RunCloudSpot(sim.NewEngine(), randx.New(32), mkCatalog(), 6,
				cloud.SpotConfig{Type: cloud.T3Medium, DiscountFactor: 0.3, InterruptionRate: 1})
			if err != nil {
				b.Fatal(err)
			}
			cost, hours, interrupts = rep.CostUSD, rep.Makespan/3600, float64(rep.Interruptions)
		}
		b.ReportMetric(cost, "cost_usd")
		b.ReportMetric(hours, "makespan_h")
		b.ReportMetric(interrupts, "interruptions")
	})
}

// BenchmarkAblation_FairShareCap sweeps the per-user concurrency cap and
// reports the small user's makespan alongside the flood user's.
func BenchmarkAblation_FairShareCap(b *testing.B) {
	for _, cap := range []int{0, 2, 4, 8} {
		cap := cap
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var smallMs, hogMs float64
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				cl := cluster.New(eng, "shared", cluster.Spec{
					Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9},
					Count: 2,
				})
				e := jaws.NewEngine(cl, storage.NewStore("fs", 0, 0, 0))
				e.MaxConcurrentPerUser = cap
				flood, _ := jaws.Parse("workflow flood\ntask f dur=300s overhead=0s scatter=64")
				small, _ := jaws.Parse("workflow small\ntask q dur=60s overhead=0s")
				fr, fd, err := e.Start(flood, "hog")
				if err != nil {
					b.Fatal(err)
				}
				sr, sd, err := e.Start(small, "alice")
				if err != nil {
					b.Fatal(err)
				}
				eng.Run()
				if !*fd || !*sd {
					b.Fatal("stalled")
				}
				smallMs = float64(sr.Makespan)
				hogMs = float64(fr.Makespan)
			}
			b.ReportMetric(smallMs, "small_user_s")
			b.ReportMetric(hogMs, "hog_user_s")
		})
	}
}
