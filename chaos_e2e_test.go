package hhcw_test

// End-to-end chaos tests: the unified fault-injection + recovery-policy layer
// exercised through the public environment API, with the failure story
// flowing all the way into provenance and the trace export.

import (
	"strings"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/provenance"
	"hhcw/internal/randx"
	"hhcw/internal/trace"
)

// TestChaosRecoveryEndToEnd runs a CWS-scheduled workflow under the storm
// profile and checks the whole robustness path: attempts fail, the shared
// policy retries them with backoff, the workflow completes, and the failed
// attempts land in provenance (with recovery metadata) and in the trace's
// "failed" lane.
func TestChaosRecoveryEndToEnd(t *testing.T) {
	rng := randx.New(3)
	w := dag.MontageLike(rng, 16, dag.GenOpts{MeanDur: 300, CVDur: 0.8, Cores: 1, MaxCores: 4, MeanMem: 2e9})
	env := &core.KubernetesEnv{
		Nodes: 4, CoresPerNode: 8,
		Strategy: cwsi.Rank{},
		Faults:   fault.Storm(),
	}
	res, err := env.RunSeeded(w, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedAttempts == 0 || res.Retries == 0 || res.BackoffSec <= 0 {
		t.Fatalf("storm profile did not bite: %+v", res)
	}
	if !strings.Contains(res.Environment, "+faults/storm") {
		t.Fatalf("environment name %q must carry the fault profile", res.Environment)
	}

	store, ok := res.Provenance.(*provenance.Store)
	if !ok {
		t.Fatal("CWS run lost its provenance store")
	}
	failedRecs, annotated := 0, 0
	for _, r := range store.All() {
		if !r.Failed {
			continue
		}
		failedRecs++
		if r.RetryPolicy != "" {
			annotated++
			if r.RetryDelaySec <= 0 {
				t.Fatalf("annotated retry with no delay: %+v", r)
			}
		}
	}
	if failedRecs == 0 {
		t.Fatal("no failed attempts recorded in provenance")
	}
	if annotated == 0 {
		t.Fatal("no failed attempt carries recovery-policy metadata")
	}

	doc := trace.FromProvenance(store)
	failedEvents, withMeta := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Cat != "failed" {
			continue
		}
		failedEvents++
		if _, ok := ev.Args["retryPolicy"]; ok {
			withMeta++
		}
	}
	if failedEvents != failedRecs {
		t.Fatalf("trace failed lane has %d events, provenance has %d failed records", failedEvents, failedRecs)
	}
	if withMeta != annotated {
		t.Fatalf("trace retry metadata on %d events, provenance annotated %d", withMeta, annotated)
	}
}

// TestChaosAcrossProfilesCompletes sweeps every named profile through both
// the FIFO and CWS paths over a handful of seeds: chaos runs must either
// complete or degrade gracefully, never stall or error.
func TestChaosAcrossProfilesCompletes(t *testing.T) {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 0.8, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	for _, name := range fault.Names() {
		prof, err := fault.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []cwsi.Strategy{nil, cwsi.Rank{}} {
			for seed := int64(1); seed <= 5; seed++ {
				rng := randx.New(seed)
				w := dag.RandomLayered(rng, 5, 8, opts)
				env := &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Strategy: strat, Faults: prof}
				res, err := env.RunSeeded(w, rng.Fork())
				if err != nil {
					t.Fatalf("%s seed %d (%s): %v", name, seed, env.Name(), err)
				}
				if res.MakespanSec <= 0 {
					t.Fatalf("%s seed %d (%s): empty makespan", name, seed, env.Name())
				}
				if !prof.Enabled() && (res.FailedAttempts != 0 || res.Retries != 0) {
					t.Fatalf("fault-free run reported failures: %+v", res)
				}
			}
		}
	}
}
