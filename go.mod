module hhcw

go 1.22
