package hhcw_test

// End-to-end integration tests spanning multiple subsystems — the scenarios
// a downstream user of the library would actually run.

import (
	"strings"
	"testing"

	"hhcw/internal/atlas"
	"hhcw/internal/cloud"
	"hhcw/internal/cluster"
	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/entk"
	"hhcw/internal/exaam"
	"hhcw/internal/futures"
	"hhcw/internal/jaws"
	"hhcw/internal/llmwf"
	"hhcw/internal/predict"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// TestComposeOnceRunEverywhere is the paper's thesis as a test: one
// composition executes on every environment and completes everywhere.
func TestComposeOnceRunEverywhere(t *testing.T) {
	wf, err := core.Compile("thesis", core.Sequence(
		core.Task("ingest", core.WithDuration(120), core.WithData(5e9, 2e9)),
		core.Parallel(
			core.Sub("qc", core.Sequence(
				core.Task("fastqc", core.WithDuration(60)),
				core.Task("multiqc", core.WithDuration(30)),
			)),
			core.Scatter(6, func(i int) core.Node {
				return core.Task("align", core.WithDuration(240), core.WithCores(2))
			}),
		),
		core.Task("report", core.WithDuration(45)),
	))
	if err != nil {
		t.Fatal(err)
	}
	envs := []core.Environment{
		&core.KubernetesEnv{Nodes: 3, CoresPerNode: 8},
		&core.KubernetesEnv{Nodes: 3, CoresPerNode: 8, Strategy: cwsi.Rank{},
			Predictor: func() predict.RuntimePredictor { return predict.NewRegression() }},
		&core.HPCEnv{Nodes: 8, CoresPerNode: 8, BootstrapSec: 85, SchedRate: 100, LaunchRate: 50},
		&core.CloudEnv{MaxInstances: 8, Instance: cloud.C6aLarge},
	}
	for _, env := range envs {
		res, err := env.Run(wf)
		if err != nil {
			t.Fatalf("%s: %v", env.Name(), err)
		}
		if res.TasksRun != wf.Len() {
			t.Fatalf("%s: ran %d of %d", env.Name(), res.TasksRun, wf.Len())
		}
		cp, _ := wf.CriticalPath(dag.NominalDur)
		if res.MakespanSec < cp-1e-6 {
			t.Fatalf("%s: makespan %v below critical path %v", env.Name(), res.MakespanSec, cp)
		}
	}
}

// TestCWSProvenanceFeedsPredictionFeedsScheduling closes the §3.3→§3.4 loop:
// run a workflow, train predictors from the provenance store, and verify the
// predictions are usable for a second scheduling round.
func TestCWSProvenanceFeedsPredictionFeedsScheduling(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Heterogeneous(eng, 2)
	p := predict.NewRegression()
	cws := cwsi.New(rm.NewTaskManager(cl, nil), cwsi.HEFT{}, p)

	opts := dag.GenOpts{MeanDur: 200, CVDur: 0.3}
	w1 := dag.RNASeqLike(randx.New(1), 10, opts)
	if err := cws.RegisterWorkflow("train", w1); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("train", 0); err != nil {
		t.Fatal(err)
	}

	// The provenance store now has one record per task.
	if cws.Provenance().Len() != w1.Len() {
		t.Fatalf("provenance = %d records, want %d", cws.Provenance().Len(), w1.Len())
	}
	// Every process family is predictable on any machine class.
	for _, name := range []string{"prefetch", "fasterq", "salmon", "deseq2"} {
		if _, ok := p.Predict(name, 1e9, 2.0); !ok {
			t.Fatalf("predictor cold for %q after training run", name)
		}
	}
	// Train offline predictors from the same store (the §3.4 pipeline).
	lot := predict.NewLotaru()
	for _, obs := range cws.Provenance().Observations() {
		lot.Observe(obs)
	}
	if _, ok := lot.Predict("salmon", 2e9, 1.4); !ok {
		t.Fatal("lotaru untrainable from provenance observations")
	}

	// Second workflow schedules with warm predictions.
	w2 := dag.RNASeqLike(randx.New(2), 10, opts)
	if err := cws.RegisterWorkflow("serve", w2); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("serve", 0); err != nil {
		t.Fatal(err)
	}
}

// TestExaAMOnFaultyFrontier runs the UQ stage 3 with real node failures from
// the fault injector (not just task-level injection) and checks EnTK's
// resubmission recovers everything.
func TestExaAMOnFaultyFrontier(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Frontier(eng, 256)
	bm := rm.NewBatchManager(cl, nil)
	fi := cluster.NewFaultInjector(cl, randx.New(13))
	fi.ScheduleNodeFailures(3, 3000)

	cfg := exaam.Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 5, MicroParams: 2,
		LoadingDirections: 4, Temperatures: 2, RVEs: 2, Seed: 13}
	am := entk.NewAppManager(cl, bm, entk.FrontierResource(200, 12*3600))
	am.MaxResubmitRounds = 3
	rep, err := am.Run(exaam.Stage3Pipeline(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksExecuted != cfg.PropertyTasks() {
		t.Fatalf("executed %d of %d after faults", rep.TasksExecuted, cfg.PropertyTasks())
	}
	if rep.TasksFailed != 0 {
		t.Fatalf("terminal failures = %d", rep.TasksFailed)
	}
}

// TestAtlasHybridAcrossSubstrates runs the §5.3 hybrid split: the same
// catalog divided between a cloud fleet and an HPC cluster.
func TestAtlasHybridAcrossSubstrates(t *testing.T) {
	rng := randx.New(21)
	catalog := atlas.GenerateCatalog(rng.Fork(), 50)
	eng := sim.NewEngine()
	ares := cluster.New(eng, "ares", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 48, MemBytes: 192e9},
		Count: 2,
	})
	rep, err := atlas.RunHybrid(rng, catalog, 5, ares, 5, atlas.SalmonKind)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cloud.Files+rep.HPC.Files != 50 {
		t.Fatal("hybrid lost files")
	}
	if rep.MakespanSec <= 0 {
		t.Fatal("no makespan")
	}
}

// TestLLMComposedWorkflowThroughJAWS chains §2 and §6: a natural-language
// instruction produces a workflow via function calling; its structure is
// then expressed in the JAWS DSL, linted, and executed on a site.
func TestLLMComposedWorkflowThroughJAWS(t *testing.T) {
	// §2: compose.
	eng := sim.NewEngine()
	exec := futures.NewExecutor(eng)
	specs := llmwf.RegisterPhyloflow(exec, "")
	stats, err := llmwf.RunFunctionCalling(eng, exec, llmwf.NewMockLLM(llmwf.PhyloflowTemplate),
		specs, "run the phylogenetic analysis on cohort.vcf", 0)
	if err != nil {
		t.Fatal(err)
	}

	// §6: express the composed chain as a workflow description.
	var b strings.Builder
	b.WriteString("workflow phyloflow\ncontainer docker://phylo/all@sha256:beef\n")
	prev := ""
	for i, id := range stats.FutureIDs {
		f, _ := exec.Lookup(id)
		line := "task " + f.AppName + " dur=40m overhead=1m"
		if i > 0 {
			line += " after=" + prev
		}
		b.WriteString(line + "\n")
		prev = f.AppName
	}
	def, err := jaws.Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range jaws.Lint(def) {
		if f.Severity == jaws.Error {
			t.Fatalf("lint error on composed workflow: %v", f)
		}
	}

	// Execute on a JAWS site.
	eng2 := sim.NewEngine()
	svc := jaws.NewService(eng2)
	site := cluster.New(eng2, "dori", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 16, MemBytes: 128e9},
		Count: 2,
	})
	svc.AddSite("dori", site)
	svc.Central().Put(storage.File{Name: "cohort.vcf", Bytes: 1e9})
	res, err := svc.Submit(def, "aduque", "dori", []string{"cohort.vcf"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ShardsExecuted != 4 {
		t.Fatalf("executed %d shards, want 4", res.Report.ShardsExecuted)
	}
}

// TestProvenanceExportRoundTrip checks that a CWS run's provenance exports
// to valid PROV JSON with lineage intact.
func TestProvenanceExportRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "k", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
		Count: 2,
	})
	cws := cwsi.New(rm.NewTaskManager(cl, nil), cwsi.Rank{}, nil)
	w := dag.Diamond(randx.New(3), dag.GenOpts{MeanDur: 60})
	if err := cws.RegisterWorkflow("d", w); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("d", 0); err != nil {
		t.Fatal(err)
	}
	up, err := cws.Provenance().Lineage("d", "sink")
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 2 {
		t.Fatalf("sink lineage = %d records, want 2", len(up))
	}
	doc, err := cws.Provenance().ExportPROV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), "wasGeneratedBy") {
		t.Fatal("PROV export missing relations")
	}
}
