# hhcw — reproduction of "Scalable Composable Workflows in
# Hyper-Heterogeneous Computing Environments" (WORKS @ SC 2023).

GO ?= go

.PHONY: all build vet test test-race cover fuzz chaos sweep bench bench-json bench-json-short profile experiments examples compose clean

all: build vet test test-race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the sweep worker pool (and all future concurrency) on every
# tier-1 run.
test-race:
	$(GO) test -race ./...

# Full-suite coverage profile (atomic mode: the sweep pool is concurrent).
# CI runs this in the test job, uploads coverage.out as an artifact, and the
# total below is the number README quotes.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Short fuzz pass over the WDL parser — the same lane CI runs non-blocking.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseWDL -fuzztime 45s ./internal/jaws

# The §3.5 CWS comparison as a 200-seed distribution on a parallel worker
# pool. Same seeds ⇒ bit-identical table, independent of worker count.
sweep:
	$(GO) run ./cmd/sweeprun -seeds 200

# Chaos smoke: short fault-injected sweeps under each named profile. The
# deterministic failure layer means these are as reproducible as `sweep`.
chaos:
	$(GO) run ./cmd/wfsim -faults mtbf -env k8s -sweep 25 -workers 4
	$(GO) run ./cmd/wfsim -faults storm -env k8s-cws -sweep 25 -workers 4
	$(GO) run ./cmd/sweeprun -faults spot -seeds 25

# One benchmark per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Perf-regression gate: run the tracked suite, write BENCH_<timestamp>.json,
# and fail if any gated metric (allocs/op, B/op, domain metrics) regressed
# vs the committed baseline. To refresh the baseline after a deliberate
# change: `go run ./cmd/benchreport -out BENCH_baseline.json` and commit it
# (see docs/bench-schema.md).
bench-json:
	$(GO) run ./cmd/benchreport -baseline BENCH_baseline.json

# Quick validity smoke for CI: reduced workloads, no baseline comparison
# (short and full reports are not comparable), self-consistency only.
bench-json-short:
	$(GO) run ./cmd/benchreport -short -out BENCH_short.json

# Profile the ensemble hot path: the 200-seed sweep with CPU and heap
# profiles. Every cmd/ binary accepts -cpuprofile/-memprofile via the shared
# driver runtime; inspect with `go tool pprof cpu.prof` / `mem.prof`.
profile:
	$(GO) run ./cmd/sweeprun -seeds 200 -cpuprofile cpu.prof -memprofile mem.prof

# Regenerate every experiment's human-readable output.
experiments:
	$(GO) run ./cmd/entkrun
	$(GO) run ./cmd/entkrun -full
	$(GO) run ./cmd/atlasrun
	$(GO) run ./cmd/cwsbench -waste
	$(GO) run ./cmd/jawsrun
	$(GO) run ./cmd/jawsrun -lint
	$(GO) run ./cmd/llmrun
	$(GO) run ./cmd/llmrun -agents -inject
	$(GO) run ./cmd/llmrun -sweep -limit 2000
	$(GO) run ./cmd/sweeprun -seeds 50

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cws_scheduling
	$(GO) run ./examples/exaam_uq
	$(GO) run ./examples/transcriptomics_atlas
	$(GO) run ./examples/llm_compose
	$(GO) run ./examples/jaws_migration
	$(GO) run ./examples/adaptive_uq
	$(GO) run ./examples/composed_pipeline

# The flagship cross-subsystem composition: Atlas salmon pipeline → ExaAM UQ
# ensemble, compiled by the compose layer and run with faults, retry,
# provenance, and a stable fingerprint.
compose:
	$(GO) run ./examples/composed_pipeline

clean:
	$(GO) clean ./...
