package hhcw_test

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// experiment index and EXPERIMENTS.md for paper-vs-measured values). The
// benchmarks run entire experiments per iteration and attach the reproduced
// quantities as custom metrics, so `go test -bench=. -benchmem` regenerates
// the paper's numbers in one sweep.

import (
	"fmt"
	"runtime"
	"testing"

	"hhcw/internal/atlas"
	"hhcw/internal/cloud"
	"hhcw/internal/cluster"
	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/entk"
	"hhcw/internal/exaam"
	"hhcw/internal/futures"
	"hhcw/internal/jaws"
	"hhcw/internal/llmwf"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
	"hhcw/internal/sweep"
)

// BenchmarkFig1_LLMAgentLoop reproduces §2/Fig 1: the planner-executor-
// debugger loop composing and executing Phyloflow with a flaky model.
// Paper-reported behaviour: the prototype cannot recover from wrong calls;
// the agent engine can. Metrics: recovered wrong calls and token cost.
func BenchmarkFig1_LLMAgentLoop(b *testing.B) {
	var recovered, tokens float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		exec := futures.NewExecutor(eng)
		specs := llmwf.RegisterPhyloflow(exec, "")
		llm := llmwf.NewMockLLM(llmwf.PhyloflowTemplate)
		llm.WrongCallEvery = 2
		agentEng := &llmwf.AgentEngine{Eng: eng, Exec: exec, LLM: llm, Specs: specs, MaxDebugAttempts: 2}
		rep, err := agentEng.Execute("run the phylogenetic analysis on sample.vcf")
		if err != nil {
			b.Fatal(err)
		}
		if rep.Steps != 4 {
			b.Fatalf("steps = %d", rep.Steps)
		}
		recovered = float64(rep.Recovered)
		tokens = float64(rep.SentTokens)
	}
	b.ReportMetric(recovered, "recovered_calls")
	b.ReportMetric(tokens, "tokens_sent")
}

// BenchmarkFig2_CWSIRoundTrip reproduces §3/Fig 2: the CWSI protocol —
// workflow registration, per-task submission with dependencies, scheduling
// inside the resource manager, provenance capture.
func BenchmarkFig2_CWSIRoundTrip(b *testing.B) {
	var records float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.New(eng, "k8s", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
			Count: 4,
		})
		cws := cwsi.New(rm.NewTaskManager(cl, nil), cwsi.Rank{}, nil)
		w := dag.MontageLike(randx.New(7), 12, dag.GenOpts{MeanDur: 120})
		if err := cws.RegisterWorkflow(w.Name, w); err != nil {
			b.Fatal(err)
		}
		if _, err := cws.RunWorkflow(w.Name, 0); err != nil {
			b.Fatal(err)
		}
		records = float64(cws.Provenance().Len())
	}
	b.ReportMetric(records, "prov_records")
}

// BenchmarkClaim_CWSIMakespan reproduces the §3.5 claim: simple workflow-
// aware strategies reduce makespan vs FIFO (paper: 10.8 % average, up to
// 25 %). Metrics: mean and max reduction over the workload sweep.
func BenchmarkClaim_CWSIMakespan(b *testing.B) {
	var meanCut, maxCut float64
	for i := 0; i < b.N; i++ {
		opts := dag.GenOpts{MeanDur: 300, CVDur: 1.5, Cores: 1, MaxCores: 4, MeanMem: 2e9}
		gens := []func(r *randx.Source) *dag.Workflow{
			func(r *randx.Source) *dag.Workflow { return dag.MontageLike(r, 16, opts) },
			func(r *randx.Source) *dag.Workflow { return dag.ForkJoin(r, 3, 12, opts) },
			func(r *randx.Source) *dag.Workflow { return dag.RNASeqLike(r, 12, opts) },
		}
		sum, max, n := 0.0, 0.0, 0
		for gi, gen := range gens {
			for seed := int64(0); seed < 4; seed++ {
				buildCl := func() *cluster.Cluster {
					return cluster.New(sim.NewEngine(), "flat", cluster.Spec{
						Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
						Count: 2,
					})
				}
				buildWf := func() *dag.Workflow { return gen(randx.New(seed*977 + int64(gi))) }
				res, err := cwsi.CompareStrategies(buildCl, buildWf, cwsi.Rank{}, cwsi.FileSize{})
				if err != nil {
					b.Fatal(err)
				}
				fifo := float64(res["fifo"])
				best := fifo
				for _, k := range []string{"rank", "filesize-desc"} {
					if v := float64(res[k]); v < best {
						best = v
					}
				}
				cut := 1 - best/fifo
				sum += cut
				n++
				if cut > max {
					max = cut
				}
			}
		}
		meanCut, maxCut = sum/float64(n)*100, max*100
	}
	b.ReportMetric(meanCut, "mean_reduction_pct")
	b.ReportMetric(maxCut, "max_reduction_pct")
}

// BenchmarkFig3_UQPipeline reproduces §4/Fig 3: the full three-stage ExaAM
// UQ pipeline (grid → AdditiveFOAM/ExaCA → ExaConstit → optimize) as chained
// EnTK applications, at reduced scale.
func BenchmarkFig3_UQPipeline(b *testing.B) {
	var tasks float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.Frontier(eng, 128)
		bm := rm.NewBatchManager(cl, nil)
		cfg := exaam.Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 4, MicroParams: 2,
			LoadingDirections: 2, Temperatures: 1, RVEs: 1, Seed: 3}
		res, err := exaam.RunFull(cl, bm, cfg, 128)
		if err != nil {
			b.Fatal(err)
		}
		tasks = float64(res.TotalExecuted())
	}
	b.ReportMetric(tasks, "tasks_executed")
}

// BenchmarkFig4_EnTKUtilization reproduces Fig 4 at full scale: 7875
// ExaConstit tasks on 8000 simulated Frontier nodes. Paper: OVH 85 s, TTX
// 7989 s, job 8074 s, utilization ~90 %.
func BenchmarkFig4_EnTKUtilization(b *testing.B) {
	var util, ovh, ttx float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.Frontier(eng, 8000)
		bm := rm.NewBatchManager(cl, rm.FrontierPolicy)
		cfg := exaam.FrontierConfig()
		am := entk.NewAppManager(cl, bm, entk.FrontierResource(8000, 12*3600))
		am.Policy = rm.FrontierPolicy
		rep, err := am.Run(exaam.Stage3Pipeline(cfg))
		if err != nil {
			b.Fatal(err)
		}
		if rep.TasksExecuted != 7875 {
			b.Fatalf("executed %d of 7875", rep.TasksExecuted)
		}
		util = rep.Utilization * 100
		ovh = float64(rep.Overhead)
		ttx = float64(rep.TTX)
	}
	b.ReportMetric(util, "util_pct")
	b.ReportMetric(ovh, "ovh_s")
	b.ReportMetric(ttx, "ttx_s")
}

// BenchmarkFig5_TaskConcurrency reproduces Fig 5: the agent's scheduling and
// launching throughput and the failure/resubmission counts. Paper: 269
// tasks/s scheduling, 51 tasks/s launching, 10 failures of which 8 recovered
// by resubmission.
func BenchmarkFig5_TaskConcurrency(b *testing.B) {
	var sched, launch, resubOK, failed float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.Frontier(eng, 8000)
		bm := rm.NewBatchManager(cl, rm.FrontierPolicy)
		cfg := exaam.FrontierConfig()
		cfg.TransientFailures = 8
		cfg.PersistentFailures = 2
		am := entk.NewAppManager(cl, bm, entk.FrontierResource(8000, 12*3600))
		am.Policy = rm.FrontierPolicy
		rep, err := am.Run(exaam.Stage3Pipeline(cfg))
		if err != nil {
			b.Fatal(err)
		}
		sched = rep.MeasuredSchedRate
		launch = rep.MeasuredLaunchRate
		resubOK = float64(rep.ResubmittedOK)
		failed = float64(rep.TasksFailed)
	}
	b.ReportMetric(sched, "sched_tasks_per_s")
	b.ReportMetric(launch, "launch_tasks_per_s")
	b.ReportMetric(resubOK, "resubmitted_ok")
	b.ReportMetric(failed, "terminal_failures")
}

// BenchmarkTable1_AtlasStepMetrics reproduces Table 1: per-step instance-
// wide metrics of the Salmon pipeline on the cloud over 99 files. Metrics:
// salmon CPU mean (paper 94 %), fasterq iowait mean (paper 26 %), salmon
// peak RSS (paper 2.8 GB).
func BenchmarkTable1_AtlasStepMetrics(b *testing.B) {
	var salmonCPU, fasterqIO, salmonRSS float64
	for i := 0; i < b.N; i++ {
		rng := randx.New(7)
		catalog := atlas.GenerateCatalog(rng.Fork(), 99)
		rep, err := atlas.RunCloud(sim.NewEngine(), rng.Fork(), catalog, 8, cloud.T3Medium)
		if err != nil {
			b.Fatal(err)
		}
		salmonCPU = rep.StepStats[atlas.Salmon].Proc.CPU.Mean()
		fasterqIO = rep.StepStats[atlas.FasterqDump].Proc.IOWait.Mean()
		salmonRSS = rep.StepStats[atlas.Salmon].Proc.RSS.Max() / 1e9
	}
	b.ReportMetric(salmonCPU, "salmon_cpu_pct")
	b.ReportMetric(fasterqIO, "fasterq_iowait_pct")
	b.ReportMetric(salmonRSS, "salmon_rss_gb")
}

// BenchmarkTable2_CloudVsHPC reproduces Table 2: per-step cloud-vs-HPC
// execution-time comparison plus the end-to-end numbers (paper: cloud 2.7 h,
// HPC 2.5 h, HPC job efficiency 72 %; prefetch much slower on HPC, fasterq
// 30 % and salmon 19 % faster on HPC).
func BenchmarkTable2_CloudVsHPC(b *testing.B) {
	var prefetchSlow, salmonFast, hpcEff, cloudH, hpcH float64
	for i := 0; i < b.N; i++ {
		rng := randx.New(7)
		catalog := atlas.GenerateCatalog(rng.Fork(), 99)
		cloudRep, err := atlas.RunCloud(sim.NewEngine(), rng.Fork(), catalog, 8, cloud.T3Medium)
		if err != nil {
			b.Fatal(err)
		}
		hpcEng := sim.NewEngine()
		ares := cluster.New(hpcEng, "ares", cluster.Spec{
			Type:  cluster.NodeType{Name: "ares", Cores: 48, MemBytes: 192e9},
			Count: 4,
		})
		hpcRep, err := atlas.RunHPC(hpcEng, rng.Fork(), catalog, ares, 8, 120)
		if err != nil {
			b.Fatal(err)
		}
		rows := atlas.Compare(cloudRep, hpcRep)
		prefetchSlow = rows[atlas.Prefetch].HPCRelativeSlowdown * 100
		salmonFast = -rows[atlas.Salmon].HPCRelativeSlowdown * 100
		hpcEff = hpcRep.Efficiency * 100
		cloudH = cloudRep.Makespan / 3600
		hpcH = hpcRep.Makespan / 3600
	}
	b.ReportMetric(prefetchSlow, "prefetch_hpc_slower_pct")
	b.ReportMetric(salmonFast, "salmon_hpc_faster_pct")
	b.ReportMetric(hpcEff, "hpc_efficiency_pct")
	b.ReportMetric(cloudH, "cloud_hours")
	b.ReportMetric(hpcH, "hpc_hours")
}

// BenchmarkSweep measures the parallel multi-seed ensemble runner on a
// 200-seed montage sweep at increasing worker counts. On a multi-core
// machine the sub-benchmarks show near-linear wall-clock scaling from
// -workers 1 to NumCPU (the 4-worker run should be ≥ 2× the 1-worker run);
// the aggregate report is bit-identical at every width, which
// internal/sweep's determinism tests assert separately.
func BenchmarkSweep(b *testing.B) {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 0.8, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	cfg := sweep.Config{
		Workflows: []sweep.WorkflowSpec{{
			Name: "montage-16",
			Gen:  func(r *randx.Source) *dag.Workflow { return dag.MontageLike(r, 16, opts) },
		}},
		Envs: []sweep.EnvSpec{{
			Name: "k8s-cws",
			New: func() core.Environment {
				return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Strategy: cwsi.Rank{}}
			},
		}},
		Seeds: sweep.Seeds(1, 200),
	}
	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var median float64
			for i := 0; i < b.N; i++ {
				cfg.Workers = w
				rep, err := sweep.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				median = rep.Cells[0].Makespan.Median
			}
			b.ReportMetric(median, "median_makespan_s")
			b.ReportMetric(float64(200*b.N)/b.Elapsed().Seconds(), "sims_per_s")
		})
	}
}

// BenchmarkClaim_JAWSFusion reproduces the §6.1 claim: fusing four
// overhead-dominated tasks cuts execution time ~70 % and shards ~71 %.
func BenchmarkClaim_JAWSFusion(b *testing.B) {
	const text = `
workflow jgi
container docker://jgi/x@sha256:aa
task setup dur=60s overhead=30s
task s1 dur=25s overhead=400s after=setup scatter=24
task s2 dur=25s overhead=400s after=s1 scatter=24
task s3 dur=25s overhead=400s after=s2 scatter=24
task s4 dur=25s overhead=400s after=s3 scatter=24
task final dur=60s overhead=30s after=s4
`
	var timeCut, shardCut float64
	for i := 0; i < b.N; i++ {
		def, err := jaws.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		fused, err := jaws.Fuse(def, []string{"s1", "s2", "s3", "s4"})
		if err != nil {
			b.Fatal(err)
		}
		run := func(d *jaws.WorkflowDef) *jaws.RunReport {
			eng := sim.NewEngine()
			cl := cluster.New(eng, "s", cluster.Spec{
				Type:  cluster.NodeType{Name: "n", Cores: 16, MemBytes: 256e9},
				Count: 4,
			})
			rep, err := jaws.NewEngine(cl, storage.NewStore("fs", 0, 0, 0)).Run(d, "u")
			if err != nil {
				b.Fatal(err)
			}
			return rep
		}
		orig := run(def)
		opt := run(fused)
		timeCut = (1 - opt.TaskSeconds/orig.TaskSeconds) * 100
		shardCut = (1 - float64(opt.ShardsExecuted)/float64(orig.ShardsExecuted)) * 100
	}
	b.ReportMetric(timeCut, "time_cut_pct")
	b.ReportMetric(shardCut, "shard_cut_pct")
}

// BenchmarkClaim_FairShare reproduces the §6.2 anti-pattern: without
// per-user caps a highly parallel scatter monopolizes the shared engine;
// with a cap the small user's makespan collapses.
func BenchmarkClaim_FairShare(b *testing.B) {
	var uncapped, capped float64
	for i := 0; i < b.N; i++ {
		run := func(cap int) float64 {
			eng := sim.NewEngine()
			cl := cluster.New(eng, "shared", cluster.Spec{
				Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9},
				Count: 2,
			})
			e := jaws.NewEngine(cl, storage.NewStore("fs", 0, 0, 0))
			e.MaxConcurrentPerUser = cap
			flood, err := jaws.Parse("workflow flood\ntask f dur=300s overhead=0s scatter=64")
			if err != nil {
				b.Fatal(err)
			}
			small, err := jaws.Parse("workflow small\ntask q dur=60s overhead=0s")
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := e.Start(flood, "hog"); err != nil {
				b.Fatal(err)
			}
			rep, done, err := e.Start(small, "alice")
			if err != nil {
				b.Fatal(err)
			}
			eng.Run()
			if !*done {
				b.Fatal("small workflow stalled")
			}
			return float64(rep.Makespan)
		}
		uncapped = run(0)
		capped = run(4)
	}
	b.ReportMetric(uncapped, "small_user_uncapped_s")
	b.ReportMetric(capped, "small_user_capped_s")
}
