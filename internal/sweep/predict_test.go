package sweep

// Ensemble-level contracts of the §3.4 prediction loop: a cold predictor
// changes no observable byte of a run, and a warm prediction-driven
// ensemble is worker-invariant. The golden 200-seed fingerprints in
// golden_test.go stay untouched because predictor-off results carry no
// prediction suffix at all.

import (
	"strings"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
)

func predictWorkflow() WorkflowSpec {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 1.5, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	return WorkflowSpec{
		Name: "rnaseq-12",
		Gen:  func(r *randx.Source) *dag.Workflow { return dag.RNASeqLike(r, 12, opts) },
	}
}

// TestPredictColdStartEquivalence pins the cold-start contract end to end:
// the full prediction stack armed (online training, predicted priority,
// placement refinement, EASY backfill, overrun kills, memory model) but
// held below the warmth gate by an unreachable PredictMinSamples must
// produce per-run results bit-identical to predictor-off — fault-free and
// under the storm chaos profile. Fingerprints are compared after stripping
// the environment-name prefix, the only field that legitimately differs.
func TestPredictColdStartEquivalence(t *testing.T) {
	storm, err := fault.ByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		faults fault.Profile
	}{
		{"fault-free", fault.Profile{}},
		{"storm", storm},
	} {
		faults := tc.faults
		cfg := Config{
			Workflows: []WorkflowSpec{predictWorkflow()},
			Envs: []EnvSpec{
				{Name: "off", New: func() core.Environment {
					return &core.KubernetesEnv{Nodes: 2, Heterogeneous: true,
						Strategy: cwsi.Baseline{}, Faults: faults}
				}},
				{Name: "cold", New: func() core.Environment {
					return &core.KubernetesEnv{Nodes: 2, Heterogeneous: true,
						Strategy: cwsi.Baseline{}, Faults: faults,
						Predict: "lotaru", PredictMinSamples: 1 << 30}
				}},
			},
			Seeds: Seeds(1, 25),
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// Runs are (workflow, env, seed)-ordered: the first 25 are "off",
		// the next 25 are "cold", seed-aligned.
		n := len(cfg.Seeds)
		if len(rep.Runs) != 2*n {
			t.Fatalf("%s: %d runs, want %d", tc.name, len(rep.Runs), 2*n)
		}
		for i := 0; i < n; i++ {
			off, cold := rep.Runs[i], rep.Runs[n+i]
			if cold.Result.PredSamples != 0 {
				t.Fatalf("%s seed %d: cold run warmed (%d samples) — the gate leaked",
					tc.name, cold.Seed, cold.Result.PredSamples)
			}
			offFP := strings.TrimPrefix(off.Result.Fingerprint(), off.Result.Environment)
			coldFP := strings.TrimPrefix(cold.Result.Fingerprint(), cold.Result.Environment)
			if offFP != coldFP {
				t.Errorf("%s seed %d: cold-predictor run diverged from predictor-off:\n off  %s\n cold %s",
					tc.name, off.Seed, offFP, coldFP)
			}
		}
	}
}

// TestPredictWorkerInvariance is the determinism-predict CI lane as a Go
// test: the warm prediction-driven ablation ensemble (every predictor on a
// heterogeneous cluster, 25 seeds, fault-free and storm) must produce
// byte-identical report fingerprints at workers 1, 4, and NumCPU — online
// training order, backfill reservations, and overrun retries included.
func TestPredictWorkerInvariance(t *testing.T) {
	storm, err := fault.ByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	mkEnv := func(predictor string, faults fault.Profile) func() core.Environment {
		return func() core.Environment {
			return &core.KubernetesEnv{Nodes: 2, Heterogeneous: true,
				Strategy: cwsi.Baseline{}, Predict: predictor, Faults: faults}
		}
	}
	for _, tc := range []struct {
		name   string
		faults fault.Profile
	}{
		{"fault-free", fault.Profile{}},
		{"storm", storm},
	} {
		cfg := Config{
			Workflows: []WorkflowSpec{predictWorkflow()},
			Envs: []EnvSpec{
				{Name: "off", New: mkEnv("off", tc.faults)},
				{Name: "mean", New: mkEnv("mean", tc.faults)},
				{Name: "regression", New: mkEnv("regression", tc.faults)},
				{Name: "lotaru", New: mkEnv("lotaru", tc.faults)},
			},
			Seeds:    Seeds(1, 25),
			Baseline: "off",
		}
		var ref string
		for _, w := range goldenWorkerCounts() {
			cfg.Workers = w
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, w, err)
			}
			fp := rep.Fingerprint()
			if ref == "" {
				ref = fp
				// The warm ensemble must actually be predicting, or the
				// invariance claim is vacuous.
				var warmed bool
				for _, run := range rep.Runs {
					if run.Result.PredSamples > 0 {
						warmed = true
						break
					}
				}
				if !warmed {
					t.Fatalf("%s: no run warmed — ensemble does not exercise the loop", tc.name)
				}
				continue
			}
			if fp != ref {
				rl, fl := strings.Split(ref, "\n"), strings.Split(fp, "\n")
				for i := range rl {
					if i >= len(fl) || rl[i] != fl[i] {
						t.Fatalf("%s workers=%d: first divergence at run %d:\n w1 %s\n wN %s",
							tc.name, w, i, rl[i], fl[i])
					}
				}
				t.Fatalf("%s workers=%d: report length diverged", tc.name, w)
			}
		}
		if ref == "" {
			t.Fatalf("%s: no worker counts ran", tc.name)
		}
	}
}
