package sweep

// Chaos determinism — the fault-injection acceptance check: the equivalent of
// `wfsim -faults mtbf -sweep 200` produces bit-identical per-seed Fingerprint
// aggregates at -workers 1, 4, and NumCPU. Fault processes draw from a source
// forked off the per-seed generator in a fixed order, so turning chaos on
// keeps the PR-1 determinism contract intact.

import (
	"reflect"
	"runtime"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
)

func chaosEnvs(prof fault.Profile) []EnvSpec {
	return []EnvSpec{
		{Name: "k8s", New: func() core.Environment {
			return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: prof}
		}},
		{Name: "k8s-cws", New: func() core.Environment {
			return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Strategy: cwsi.Rank{}, Faults: prof}
		}},
	}
}

func TestChaosSweep200SeedsWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed chaos sweep in -short mode")
	}
	cfg := Config{
		Workflows: []WorkflowSpec{allWorkflows()[0]}, // montage
		Envs:      chaosEnvs(fault.MTBF()),
		Seeds:     Seeds(1, 200),
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	var reports []*Report
	for _, wkr := range workerCounts {
		cfg.Workers = wkr
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", wkr, err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if reports[0].Fingerprint() != reports[i].Fingerprint() {
			t.Errorf("chaos fingerprints differ between workers=%d and workers=%d",
				workerCounts[0], workerCounts[i])
		}
		if !reflect.DeepEqual(reports[0].Cells, reports[i].Cells) {
			t.Errorf("chaos cells differ between workers=%d and workers=%d",
				workerCounts[0], workerCounts[i])
		}
		if reports[0].FaultTable() != reports[i].FaultTable() {
			t.Errorf("fault table differs between workers=%d and workers=%d",
				workerCounts[0], workerCounts[i])
		}
	}
	// The profile must actually bite, or the invariance is vacuous.
	sawFailure := false
	for _, c := range reports[0].Cells {
		if c.Faulty() {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("mtbf profile injected no failures across 200 seeds")
	}
}

// Turning faults off must reproduce the fault-free golden results exactly:
// the seeded path ignores its substrate source when no profile is enabled.
func TestDisabledFaultsMatchFaultFreeGolden(t *testing.T) {
	w := allWorkflows()[0]
	for seed := int64(1); seed <= 10; seed++ {
		plain, err := (&core.KubernetesEnv{Nodes: 4, CoresPerNode: 8}).
			Run(w.Gen(randx.New(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rng := randx.New(seed)
		seeded, err := (&core.KubernetesEnv{Nodes: 4, CoresPerNode: 8}).
			RunSeeded(w.Gen(rng), rng.Fork())
		if err != nil {
			t.Fatal(err)
		}
		if plain.Fingerprint() != seeded.Fingerprint() {
			t.Fatalf("seed %d: seeded fault-free run diverged:\n  %s\n  %s",
				seed, plain.Fingerprint(), seeded.Fingerprint())
		}
	}
}

// Per-seed chaos runs are reproducible one-offs: the same seed through
// RunSeeded twice gives identical fingerprints, including failure accounting.
func TestChaosRunSeededReproducible(t *testing.T) {
	for _, prof := range []fault.Profile{fault.MTBF(), fault.Spot(), fault.Storm()} {
		for seed := int64(1); seed <= 5; seed++ {
			run := func() string {
				rng := randx.New(seed)
				w := allWorkflows()[0].Gen(rng)
				res, err := (&core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: prof}).
					RunSeeded(w, rng.Fork())
				if err != nil {
					t.Fatalf("%s seed %d: %v", prof.Name, seed, err)
				}
				return res.Fingerprint()
			}
			if a, b := run(), run(); a != b {
				t.Fatalf("%s seed %d: %s != %s", prof.Name, seed, a, b)
			}
		}
	}
}
