package sweep

// Golden determinism tests — the regression guard that keeps the concurrency
// tentpole honest. Every (workflow family, environment) combo exposed by
// cmd/wfsim is run twice sequentially and once inside the parallel sweep
// pool, and the per-seed core.Result fields must be bit-identical (compared
// via Result.Fingerprint, which encodes the raw IEEE-754 bits). A separate
// test proves the full 200-seed aggregate report is byte-identical at
// -workers 1 and -workers NumCPU.

import (
	"reflect"
	"runtime"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/randx"
)

func allWorkflows() []WorkflowSpec {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 0.8, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	return []WorkflowSpec{
		{Name: "montage", Gen: func(r *randx.Source) *dag.Workflow { return dag.MontageLike(r, 8, opts) }},
		{Name: "epigenomics", Gen: func(r *randx.Source) *dag.Workflow { return dag.EpigenomicsLike(r, 4, 5, opts) }},
		{Name: "forkjoin", Gen: func(r *randx.Source) *dag.Workflow { return dag.ForkJoin(r, 3, 8, opts) }},
		{Name: "rnaseq", Gen: func(r *randx.Source) *dag.Workflow { return dag.RNASeqLike(r, 8, opts) }},
		{Name: "layered", Gen: func(r *randx.Source) *dag.Workflow { return dag.RandomLayered(r, 6, 8, opts) }},
	}
}

func allEnvs() []EnvSpec {
	return []EnvSpec{
		{Name: "k8s", New: func() core.Environment {
			return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8}
		}},
		{Name: "k8s-cws", New: func() core.Environment {
			return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Strategy: cwsi.Rank{}}
		}},
		{Name: "hpc", New: func() core.Environment {
			return &core.HPCEnv{Nodes: 4, CoresPerNode: 8, BootstrapSec: 85}
		}},
		{Name: "cloud", New: func() core.Environment {
			return &core.CloudEnv{MaxInstances: 4}
		}},
	}
}

// runSequential executes one (workflow, env, seed) directly on the calling
// goroutine, exactly as cmd/wfsim's single-run path does.
func runSequential(t *testing.T, w WorkflowSpec, e EnvSpec, seed int64) core.Result {
	t.Helper()
	res, err := e.New().Run(w.Gen(randx.New(seed)))
	if err != nil {
		t.Fatalf("%s on %s seed %d: %v", w.Name, e.Name, seed, err)
	}
	r := *res
	r.Provenance = nil
	return r
}

// TestGoldenDeterminism runs every wfsim (workflow, env) combo twice
// sequentially and once through the parallel pool; all three per-seed
// results must agree bit-for-bit.
func TestGoldenDeterminism(t *testing.T) {
	seeds := Seeds(1, 3)
	rep, err := Run(Config{
		Workflows: allWorkflows(),
		Envs:      allEnvs(),
		Seeds:     seeds,
		Workers:   runtime.NumCPU() + 3, // oversubscribe to force interleaving
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, w := range allWorkflows() {
		for _, e := range allEnvs() {
			for _, seed := range seeds {
				got := rep.Runs[i]
				i++
				first := runSequential(t, w, e, seed)
				second := runSequential(t, w, e, seed)
				if first.Fingerprint() != second.Fingerprint() {
					t.Errorf("%s on %s seed %d: two sequential runs differ:\n  %s\n  %s",
						w.Name, e.Name, seed, first.Fingerprint(), second.Fingerprint())
					continue
				}
				if got.Result.Fingerprint() != first.Fingerprint() {
					t.Errorf("%s on %s seed %d: pool run differs from sequential:\n  pool: %s\n  seq:  %s",
						w.Name, e.Name, seed, got.Result.Fingerprint(), first.Fingerprint())
				}
			}
		}
	}
	if i != len(rep.Runs) {
		t.Fatalf("walked %d runs, report has %d", i, len(rep.Runs))
	}
}

// TestSweep200SeedsWorkerInvariant is the acceptance check: a 200-seed
// montage sweep produces byte-identical aggregate reports at -workers 1,
// -workers 4, and -workers NumCPU.
func TestSweep200SeedsWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed sweep in -short mode")
	}
	cfg := Config{
		Workflows: []WorkflowSpec{allWorkflows()[0]}, // montage
		Envs:      allEnvs()[:2],                     // k8s fifo + k8s-cws
		Seeds:     Seeds(1, 200),
		Baseline:  "k8s",
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	var reports []*Report
	var tables []string
	for _, wkr := range workerCounts {
		cfg.Workers = wkr
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", wkr, err)
		}
		reports = append(reports, rep)
		tables = append(tables, rep.Table())
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Errorf("report at workers=%d differs structurally from workers=%d",
				workerCounts[i], workerCounts[0])
		}
		if reports[0].Fingerprint() != reports[i].Fingerprint() {
			t.Errorf("per-seed fingerprints differ between workers=%d and workers=%d",
				workerCounts[0], workerCounts[i])
		}
		if tables[0] != tables[i] {
			t.Errorf("rendered table differs between workers=%d and workers=%d:\n%s\nvs\n%s",
				workerCounts[0], workerCounts[i], tables[0], tables[i])
		}
	}
}
