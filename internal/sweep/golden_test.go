package sweep

// Cross-change golden fingerprints. The worker-invariance tests in
// determinism_test.go prove a sweep is identical at any -workers *within one
// build*; these goldens additionally pin the bytes across builds. The hashes
// were captured on the pre-optimization event core (container/heap queue,
// per-event allocation, pop-one-at-a-time), so they prove the typed 4-ary
// heap, the event slabs, the same-timestamp batching, and the zero-alloc
// reduction changed nothing observable: 200 seeds × 2 environments, fault-free
// and chaos, bit-identical to the old kernel at every worker count.
//
// If a PR changes these hashes it changed simulation semantics — either fix
// it, or re-capture deliberately and say so in the PR (see docs/bench-schema.md
// for the capture recipe).

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
)

const (
	// montage-8 on k8s + k8s-cws (baseline k8s), seeds 1..200.
	goldenSweep200 = "a48d58e103c1463c67283fd890abc6afe73ed4f7ed6a2e1f72f1a9d3c13f45c7"
	// montage-8 on k8s+mtbf + k8s-cws+storm, seeds 1..200 — the chaos
	// variant exercises fault cancellations and retry timers through the
	// event queue.
	goldenChaos200 = "8189b6e3d9818244f9b7a34f7c7a3f354099f51130665195f689b9592404e5f0"
)

func goldenWorkflow() WorkflowSpec {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 0.8, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	return WorkflowSpec{
		Name: "montage",
		Gen:  func(r *randx.Source) *dag.Workflow { return dag.MontageLike(r, 8, opts) },
	}
}

func fingerprintHash(t *testing.T, cfg Config, workers int) string {
	t.Helper()
	cfg.Workers = workers
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(rep.Fingerprint())))
}

func goldenWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestGoldenSweep200Fingerprint pins the fault-free 200-seed ensemble to its
// pre-rework bytes at workers 1, 4, and NumCPU.
func TestGoldenSweep200Fingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed golden sweep in -short mode")
	}
	cfg := Config{
		Workflows: []WorkflowSpec{goldenWorkflow()},
		Envs: []EnvSpec{
			{Name: "k8s", New: func() core.Environment {
				return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8}
			}},
			{Name: "k8s-cws", New: func() core.Environment {
				return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Strategy: cwsi.Rank{}}
			}},
		},
		Seeds:    Seeds(1, 200),
		Baseline: "k8s",
	}
	for _, w := range goldenWorkerCounts() {
		if got := fingerprintHash(t, cfg, w); got != goldenSweep200 {
			t.Errorf("workers=%d: fingerprint sha256 = %s, want golden %s", w, got, goldenSweep200)
		}
	}
}

// TestGoldenChaos200Fingerprint pins the fault-injected 200-seed ensemble —
// the heaviest consumer of event cancellation — to its pre-rework bytes.
func TestGoldenChaos200Fingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed golden chaos sweep in -short mode")
	}
	mtbf, err := fault.ByName("mtbf")
	if err != nil {
		t.Fatal(err)
	}
	storm, err := fault.ByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workflows: []WorkflowSpec{goldenWorkflow()},
		Envs: []EnvSpec{
			{Name: "k8s-mtbf", New: func() core.Environment {
				return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: mtbf}
			}},
			{Name: "k8s-cws-storm", New: func() core.Environment {
				return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Strategy: cwsi.Rank{}, Faults: storm}
			}},
		},
		Seeds: Seeds(1, 200),
	}
	for _, w := range goldenWorkerCounts() {
		if got := fingerprintHash(t, cfg, w); got != goldenChaos200 {
			t.Errorf("workers=%d: fingerprint sha256 = %s, want golden %s", w, got, goldenChaos200)
		}
	}
}

// TestGoldenStreamingEquivalence proves the extreme-scale run path changes
// nothing observable: the same ensemble swept through StreamingEnv (lazy
// expansion, sharded event engine, compact provenance, folded metrics) yields
// per-run fingerprints element-for-element identical to the eager
// KubernetesEnv — 50 seeds, fault-free and storm, at workers 1 and NumCPU.
func TestGoldenStreamingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("50-seed streaming equivalence sweep in -short mode")
	}
	storm, err := fault.ByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		faults fault.Profile
	}{
		{"fault-free", fault.Profile{}},
		{"storm", storm},
	}
	workers := []int{1}
	if n := runtime.NumCPU(); n != 1 {
		workers = append(workers, n)
	}
	for _, c := range cases {
		faults := c.faults
		eagerCfg := Config{
			Workflows: []WorkflowSpec{goldenWorkflow()},
			Envs: []EnvSpec{
				{Name: "k8s", New: func() core.Environment {
					return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: faults}
				}},
			},
			Seeds: Seeds(1, 50),
		}
		streamCfg := eagerCfg
		// Same spec name on purpose: Report.Fingerprint lines are keyed by
		// (workflow, env, seed), so whole-report equality below is exactly
		// per-run fingerprint equality.
		streamCfg.Envs = []EnvSpec{
			{Name: "k8s", New: func() core.Environment {
				return &core.StreamingEnv{KubernetesEnv: core.KubernetesEnv{
					Nodes: 4, CoresPerNode: 8, Faults: faults, Sites: 4,
				}}
			}},
		}
		for _, wk := range workers {
			eagerCfg.Workers, streamCfg.Workers = wk, wk
			eagerRep, err := Run(eagerCfg)
			if err != nil {
				t.Fatalf("%s workers=%d eager: %v", c.name, wk, err)
			}
			streamRep, err := Run(streamCfg)
			if err != nil {
				t.Fatalf("%s workers=%d streaming: %v", c.name, wk, err)
			}
			ef, sf := eagerRep.Fingerprint(), streamRep.Fingerprint()
			if ef != sf {
				el, sl := strings.Split(ef, "\n"), strings.Split(sf, "\n")
				for i := range el {
					if i >= len(sl) || el[i] != sl[i] {
						t.Fatalf("%s workers=%d: first divergence at run %d:\n eager     %s\n streaming %s",
							c.name, wk, i, el[i], sl[i])
					}
				}
				t.Fatalf("%s workers=%d: streaming report longer than eager", c.name, wk)
			}
		}
	}
}
