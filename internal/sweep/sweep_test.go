package sweep

import (
	"errors"
	"strings"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/dag"
	"hhcw/internal/randx"
)

func montageSpec(size int) WorkflowSpec {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 0.8, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	return WorkflowSpec{
		Name: "montage",
		Gen:  func(r *randx.Source) *dag.Workflow { return dag.MontageLike(r, size, opts) },
	}
}

func k8sSpec(name string) EnvSpec {
	return EnvSpec{Name: name, New: func() core.Environment {
		return &core.KubernetesEnv{Nodes: 2, CoresPerNode: 8}
	}}
}

func TestRunBasic(t *testing.T) {
	rep, err := Run(Config{
		Workflows: []WorkflowSpec{montageSpec(8)},
		Envs:      []EnvSpec{k8sSpec("k8s")},
		Seeds:     Seeds(1, 10),
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 10 {
		t.Fatalf("runs = %d, want 10", len(rep.Runs))
	}
	for i, r := range rep.Runs {
		if r.Seed != int64(1+i) {
			t.Fatalf("run %d has seed %d: results not in job order", i, r.Seed)
		}
		if r.Result.MakespanSec <= 0 {
			t.Fatalf("seed %d: non-positive makespan", r.Seed)
		}
		if r.Result.Provenance != nil {
			t.Fatalf("seed %d: provenance leaked into sweep result", r.Seed)
		}
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.Makespan.N != 10 || c.Makespan.Dropped != 0 {
		t.Fatalf("cell summary N=%d dropped=%d", c.Makespan.N, c.Makespan.Dropped)
	}
	if c.Makespan.Min > c.Makespan.Median || c.Makespan.Median > c.Makespan.P90 || c.Makespan.P90 > c.Makespan.Max {
		t.Fatalf("order statistics not ordered: %+v", c.Makespan)
	}
	if c.UtilMean <= 0 || c.UtilMean > 1 {
		t.Fatalf("util mean = %v", c.UtilMean)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{
		Workflows: []WorkflowSpec{{Name: "nogen"}},
		Envs:      []EnvSpec{k8sSpec("k8s")},
		Seeds:     Seeds(1, 1),
	}); err == nil || !strings.Contains(err.Error(), "nogen") {
		t.Fatalf("nil generator not rejected: %v", err)
	}
	if _, err := Run(Config{
		Workflows: []WorkflowSpec{montageSpec(4)},
		Envs:      []EnvSpec{{Name: "nofactory"}},
		Seeds:     Seeds(1, 1),
	}); err == nil || !strings.Contains(err.Error(), "nofactory") {
		t.Fatalf("nil factory not rejected: %v", err)
	}
}

type failingEnv struct{ err error }

func (e *failingEnv) Name() string                            { return "failing" }
func (e *failingEnv) Run(*dag.Workflow) (*core.Result, error) { return nil, e.err }

// A failing run aborts the sweep and reports the lowest-index failure, so
// error behaviour is as deterministic as success behaviour.
func TestRunErrorDeterministic(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(Config{
			Workflows: []WorkflowSpec{montageSpec(4)},
			Envs: []EnvSpec{
				{Name: "bad", New: func() core.Environment { return &failingEnv{err: boom} }},
				k8sSpec("ok"),
			},
			Seeds:   Seeds(5, 8),
			Workers: workers,
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		// Lowest job index = first env, first seed.
		if !strings.Contains(err.Error(), "seed 5") || !strings.Contains(err.Error(), "bad") {
			t.Fatalf("workers=%d: error not attributed to lowest job index: %v", workers, err)
		}
	}
}

type panickyEnv struct{}

func (panickyEnv) Name() string                            { return "panicky" }
func (panickyEnv) Run(*dag.Workflow) (*core.Result, error) { panic("stalled") }

// A panicking substrate must abort the sweep with an error, not crash the
// process.
func TestRunRecoversWorkerPanic(t *testing.T) {
	_, err := Run(Config{
		Workflows: []WorkflowSpec{montageSpec(4)},
		Envs:      []EnvSpec{{Name: "panicky", New: func() core.Environment { return panickyEnv{} }}},
		Seeds:     Seeds(1, 4),
		Workers:   2,
	})
	if err == nil || !strings.Contains(err.Error(), "panic: stalled") {
		t.Fatalf("err = %v, want recovered panic", err)
	}
}

func TestProgressCallback(t *testing.T) {
	var calls []int
	_, err := Run(Config{
		Workflows: []WorkflowSpec{montageSpec(4)},
		Envs:      []EnvSpec{k8sSpec("k8s")},
		Seeds:     Seeds(1, 6),
		Workers:   3,
		Progress: func(done, total int) {
			if total != 6 {
				t.Errorf("total = %d, want 6", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 6 {
		t.Fatalf("progress called %d times, want 6", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done values not monotone: %v", calls)
		}
	}
}

func TestSpeedupAgainstBaseline(t *testing.T) {
	slow := EnvSpec{Name: "slow", New: func() core.Environment {
		return &core.KubernetesEnv{Nodes: 1, CoresPerNode: 8}
	}}
	fast := EnvSpec{Name: "fast", New: func() core.Environment {
		return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8}
	}}
	rep, err := Run(Config{
		Workflows: []WorkflowSpec{montageSpec(8)},
		Envs:      []EnvSpec{slow, fast},
		Seeds:     Seeds(1, 5),
		Workers:   2,
		Baseline:  "slow",
	})
	if err != nil {
		t.Fatal(err)
	}
	base := rep.Cell("montage", "slow")
	if base == nil || base.SpeedupMean != 0 {
		t.Fatalf("baseline cell should have zero speedup: %+v", base)
	}
	c := rep.Cell("montage", "fast")
	if c == nil {
		t.Fatal("fast cell missing")
	}
	if c.SpeedupMean <= 1 {
		t.Fatalf("4x8 cluster not faster than 1x8: speedup %v", c.SpeedupMean)
	}
	if c.CutMeanPct <= 0 || c.CutMaxPct < c.CutMeanPct {
		t.Fatalf("cut stats inconsistent: mean %v max %v", c.CutMeanPct, c.CutMaxPct)
	}
}

func TestTableAndHelpers(t *testing.T) {
	rep, err := Run(Config{
		Workflows: []WorkflowSpec{montageSpec(4)},
		Envs:      []EnvSpec{k8sSpec("b-env"), k8sSpec("a-env")},
		Seeds:     Seeds(1, 3),
		Workers:   2,
		Baseline:  "b-env",
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Table()
	for _, want := range []string{"workflow", "montage", "a-env", "b-env", "median"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
	if names := rep.SortedEnvNames(); len(names) != 2 || names[0] != "a-env" || names[1] != "b-env" {
		t.Fatalf("SortedEnvNames = %v", names)
	}
	if rep.Cell("montage", "nope") != nil {
		t.Fatal("Cell returned a match for unknown env")
	}
	if fp := rep.Fingerprint(); !strings.Contains(fp, "montage|a-env|2|") {
		t.Fatalf("fingerprint missing per-run lines:\n%s", fp)
	}
}

// Workers beyond the job count must not deadlock or change results.
func TestMoreWorkersThanJobs(t *testing.T) {
	cfg := Config{
		Workflows: []WorkflowSpec{montageSpec(4)},
		Envs:      []EnvSpec{k8sSpec("k8s")},
		Seeds:     Seeds(9, 2),
	}
	cfg.Workers = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 16
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("worker count changed results")
	}
}
