package sweep

// Warm-run equivalence battery: the sweep's session reuse (one warm
// core.RunSession per worker per env, reset in place between jobs) must be
// observationally invisible — bit-identical per-run fingerprints against the
// cold path that rebuilds the environment for every job. Cold execution is
// forced through EnvSpec.NewSession returning an error, which runOne treats
// as "no session" and falls back to a fresh New per job.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/fault"
)

// coldOnly wraps an EnvSpec so the sweep can never acquire a warm session
// for it: the error return routes every job through the cold fallback.
func coldOnly(spec EnvSpec) EnvSpec {
	spec.NewSession = func() (core.RunSession, error) {
		return nil, fmt.Errorf("forced cold")
	}
	return spec
}

func coldConfig(cfg Config) Config {
	envs := make([]EnvSpec, len(cfg.Envs))
	for i, e := range cfg.Envs {
		envs[i] = coldOnly(e)
	}
	cfg.Envs = envs
	return cfg
}

// TestWarmColdEquivalence runs the 200-seed ensemble — FIFO and CWS
// environments, fault-free and under the storm profile — warm and cold at
// workers 1 and NumCPU, and requires bit-identical report fingerprints. This
// is the sweep-level enforcement of the session determinism contract.
func TestWarmColdEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("200-seed warm/cold equivalence sweep in -short mode")
	}
	storm, err := fault.ByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		faults fault.Profile
	}{
		{"fault-free", fault.Profile{}},
		{"storm", storm},
	}
	workers := []int{1}
	if n := runtime.NumCPU(); n != 1 {
		workers = append(workers, n)
	}
	for _, c := range cases {
		faults := c.faults
		warmCfg := Config{
			Workflows: []WorkflowSpec{goldenWorkflow()},
			Envs: []EnvSpec{
				{Name: "k8s", New: func() core.Environment {
					return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: faults}
				}},
				{Name: "k8s-cws", New: func() core.Environment {
					return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Strategy: cwsi.Rank{}, Faults: faults}
				}},
			},
			Seeds: Seeds(1, 200),
		}
		coldCfg := coldConfig(warmCfg)
		for _, wk := range workers {
			warmCfg.Workers, coldCfg.Workers = wk, wk
			warmRep, err := Run(warmCfg)
			if err != nil {
				t.Fatalf("%s workers=%d warm: %v", c.name, wk, err)
			}
			coldRep, err := Run(coldCfg)
			if err != nil {
				t.Fatalf("%s workers=%d cold: %v", c.name, wk, err)
			}
			wf, cf := warmRep.Fingerprint(), coldRep.Fingerprint()
			if wf != cf {
				wl, cl := strings.Split(wf, "\n"), strings.Split(cf, "\n")
				for i := range wl {
					if i >= len(cl) || wl[i] != cl[i] {
						t.Fatalf("%s workers=%d: first divergence at run %d:\n warm %s\n cold %s",
							c.name, wk, i, wl[i], cl[i])
					}
				}
				t.Fatalf("%s workers=%d: warm report longer than cold", c.name, wk)
			}
		}
	}
}

// TestPoolWorkersClamp pins the worker-count resolution: never more workers
// than jobs, NumCPU default, floor of one.
func TestPoolWorkersClamp(t *testing.T) {
	ncpu := runtime.NumCPU()
	for _, tc := range []struct {
		total, workers, want int
	}{
		{2, 64, 2}, // clamp to job total
		{2, 0, min(ncpu, 2)},
		{100, 0, min(ncpu, 100)},
		{5, 3, 3},
		{1, -7, 1},
	} {
		if got := PoolWorkers(tc.total, tc.workers); got != tc.want {
			t.Errorf("PoolWorkers(%d, %d) = %d, want %d", tc.total, tc.workers, got, tc.want)
		}
	}
}

// TestForEachWorkerSpawnsAtMostTotal proves the satellite fix behaviorally: a
// 2-job run at workers=64 touches at most 2 distinct worker indices, and
// every observed index is within PoolWorkers range.
func TestForEachWorkerSpawnsAtMostTotal(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	err := ForEachWorker(2, 64, nil, func(worker, idx int) error {
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
		if worker < 0 || worker >= 2 {
			return fmt.Errorf("worker index %d out of range [0,2)", worker)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) > 2 {
		t.Fatalf("2-job run used %d workers, want <= 2", len(seen))
	}
}
