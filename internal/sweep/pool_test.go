package sweep

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16, 0} {
		const n = 500
		counts := make([]int32, n)
		err := ForEach(n, workers, nil, func(idx int) error {
			atomic.AddInt32(&counts[idx], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, c)
			}
		}
	}
}

// When several indices fail, the error of the LOWEST index must win — the
// determinism contract callers (sweeps, the arrivals mode) rely on so a
// failing ensemble reports the same error at any worker count.
func TestForEachLowestErrorWins(t *testing.T) {
	for _, workers := range []int{1, 7} {
		err := ForEach(100, workers, nil, func(idx int) error {
			if idx%10 == 3 {
				return fmt.Errorf("boom %d", idx)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Fatalf("workers=%d: err = %v, want boom 3", workers, err)
		}
	}
}

func TestForEachProgressAndEmpty(t *testing.T) {
	if err := ForEach(0, 4, nil, func(int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatal(err)
	}
	var calls, last int
	err := ForEach(25, 4, func(done, total int) {
		calls++
		last = done
		if total != 25 {
			t.Errorf("total = %d", total)
		}
	}, func(int) error { return nil })
	if err != nil || calls != 25 || last != 25 {
		t.Fatalf("err=%v calls=%d last=%d", err, calls, last)
	}
}
