// Package sweep is a parallel multi-seed ensemble runner. It executes N
// independent (workflow family, environment, seed) simulations concurrently
// across a worker pool and reduces them into deterministic, order-independent
// aggregates — the distributional view (min/median/p90/max makespan,
// utilization, speedup vs a baseline) in which the paper's headline numbers
// (CWS's 10.8 % average makespan cut, EnTK's ~90 % utilization) are stated.
//
// Determinism contract: the same Config (workflows, environments, seeds)
// produces a bit-identical Report regardless of Workers. Every worker owns
// its substrate privately — a warm core.RunSession per environment, reset in
// place between jobs, or a fresh Environment per job for envs that don't
// support sessions — plus a fresh randx.Source per seed, so nothing is
// shared mutably between goroutines, and the reduction folds results in the
// fixed (workflow, env, seed) job order — never in completion order. The
// warm path is bit-identical to the cold one (core.Session's contract,
// enforced by the golden corpus), so session reuse affects wall-clock and
// allocation only, never the Report.
package sweep

import (
	"fmt"
	"sort"
	"strings"

	"hhcw/internal/core"
	"hhcw/internal/dag"
	"hhcw/internal/metrics"
	"hhcw/internal/randx"
)

// WorkflowSpec names a workflow family and how to generate one instance from
// a seeded source. Gen must be a pure function of rng (no shared state): it
// is called concurrently from many workers, each with its own Source.
type WorkflowSpec struct {
	Name string
	Gen  func(rng *randx.Source) *dag.Workflow
}

// EnvSpec names an environment and how to build a fresh instance. New must
// return a new Environment per call; environments own a private sim.Engine
// per Run, so a fresh value per job keeps workers fully isolated.
type EnvSpec struct {
	Name string
	New  func() core.Environment
	// NewSession, when non-nil, supplies a warm-run session for this env:
	// each worker acquires one and reuses it (reset in place) across all of
	// its jobs on this env instead of rebuilding the substrate per run. When
	// nil, New's result is probed for core.SessionEnvironment and its
	// NewSession is used; envs supporting neither run cold (a fresh New per
	// job). A session-construction error falls back to the cold path so the
	// underlying config error surfaces with normal job attribution.
	NewSession func() (core.RunSession, error)
}

// Config describes one ensemble: the cartesian product of Workflows × Envs ×
// Seeds, executed on Workers goroutines.
type Config struct {
	Workflows []WorkflowSpec
	Envs      []EnvSpec
	Seeds     []int64
	// Workers is the pool size; <= 0 means runtime.NumCPU(). It affects
	// wall-clock time only, never the Report.
	Workers int
	// Baseline names the EnvSpec whose makespan is the denominator of the
	// per-seed speedup column; empty disables speedups.
	Baseline string
	// Progress, when non-nil, is called after each completed simulation
	// with the number done so far and the total. Calls are serialized.
	Progress func(done, total int)
}

// Seeds returns [base, base+n) — the conventional contiguous seed block.
func Seeds(base int64, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		s[i] = base + int64(i)
	}
	return s
}

// RunResult is one simulation's outcome. Provenance is stripped: it holds
// substrate-internal pointers that are meaningless outside the worker that
// produced them and would defeat bit-identical comparison.
type RunResult struct {
	Workflow string
	Env      string
	Seed     int64
	Result   core.Result
}

// Cell aggregates one (workflow, env) group over all seeds.
type Cell struct {
	Workflow string
	Env      string
	Makespan metrics.Summary
	// UtilMean is the mean time-averaged core utilization across seeds.
	UtilMean float64
	// SpeedupMean is mean(baseline makespan / this makespan) over seeds,
	// 0 when Config.Baseline is empty or names this env itself.
	SpeedupMean float64
	// CutMeanPct / CutMaxPct are the mean and max per-seed makespan
	// reduction vs the baseline, in percent (the paper's §3.5 framing).
	CutMeanPct float64
	CutMaxPct  float64
	// Failure/recovery distributions over seeds — all-zero unless the env
	// injects faults.
	FailedAttempts   metrics.Summary
	Retries          metrics.Summary
	TerminalFailures metrics.Summary
	BackoffSec       metrics.Summary
	// Prediction-loop distributions over seeds — all-zero unless the env ran
	// with an online predictor that warmed up (core.Result pred fields).
	PredSamples metrics.Summary
	PredMREPct  metrics.Summary
}

// Faulty reports whether any seed in the cell observed a failure.
func (c *Cell) Faulty() bool { return c.FailedAttempts.Max > 0 || c.TerminalFailures.Max > 0 }

// Predicted reports whether any seed in the cell placed work with a warm
// runtime prediction.
func (c *Cell) Predicted() bool { return c.PredSamples.Max > 0 }

// Report is the reduced ensemble. Field values are pure functions of the
// Config's workflows, envs, and seeds — Workers never leaks in.
type Report struct {
	Runs  []RunResult // fixed (workflow, env, seed) order
	Cells []Cell      // fixed (workflow, env) order
}

type job struct {
	wi, ei, si int
}

// jobAt maps a flat index to its (workflow, env, seed) coordinates. Job
// order is the reduction order: workflow-major, then env, then seed —
// computed on demand instead of materializing a jobs slice.
func jobAt(cfg *Config, idx int) job {
	nSeeds := len(cfg.Seeds)
	perWf := len(cfg.Envs) * nSeeds
	return job{wi: idx / perWf, ei: idx % perWf / nSeeds, si: idx % nSeeds}
}

// Run executes the ensemble and reduces it. Any simulation error aborts the
// sweep; when several workers fail, the error of the lowest job index is
// returned so failures are as deterministic as successes.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Workflows) == 0 || len(cfg.Envs) == 0 || len(cfg.Seeds) == 0 {
		return nil, fmt.Errorf("sweep: config needs workflows, envs, and seeds")
	}
	for _, w := range cfg.Workflows {
		if w.Gen == nil {
			return nil, fmt.Errorf("sweep: workflow %q has no generator", w.Name)
		}
	}
	for _, e := range cfg.Envs {
		if e.New == nil {
			return nil, fmt.Errorf("sweep: env %q has no factory", e.Name)
		}
	}
	total := len(cfg.Workflows) * len(cfg.Envs) * len(cfg.Seeds)
	results := make([]RunResult, total) // each index written by exactly one worker
	// One warm-session cache per worker: slot [worker] is touched only by
	// that worker's goroutine (ForEachWorker's contract), so session reuse
	// needs no locking and never crosses goroutines.
	sessions := make([]workerSessions, PoolWorkers(total, cfg.Workers))
	err := ForEachWorker(total, cfg.Workers, cfg.Progress, func(worker, idx int) error {
		j := jobAt(&cfg, idx)
		sess := sessions[worker].acquire(&cfg, j.ei)
		rr, err := runOne(cfg, j, sess)
		if err != nil {
			// The session may hold arbitrarily corrupted state after a panic;
			// drop it so any jobs this worker still drains (the sweep aborts,
			// but workers finish the queue) run on a fresh substrate.
			sessions[worker].drop(j.ei)
			return fmt.Errorf("sweep: %s on %s seed %d: %w",
				cfg.Workflows[j.wi].Name, cfg.Envs[j.ei].Name, cfg.Seeds[j.si], err)
		}
		results[idx] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reduce(cfg, results), nil
}

// workerSessions caches one warm session per environment for a single
// worker. Slots resolve lazily on first use — a worker that never draws jobs
// for an env never builds its substrate — and a nil slot after resolution
// means the env runs cold.
type workerSessions struct {
	slots []core.RunSession
	tried []bool
}

func (ws *workerSessions) acquire(cfg *Config, ei int) core.RunSession {
	if ws.slots == nil {
		ws.slots = make([]core.RunSession, len(cfg.Envs))
		ws.tried = make([]bool, len(cfg.Envs))
	}
	if !ws.tried[ei] {
		ws.tried[ei] = true
		ws.slots[ei] = newEnvSession(cfg.Envs[ei])
	}
	return ws.slots[ei]
}

// drop discards a possibly-corrupted session; the next acquire builds a
// fresh one (fresh ≡ warm ≡ cold under the session determinism contract).
func (ws *workerSessions) drop(ei int) {
	if ws.slots != nil {
		ws.slots[ei], ws.tried[ei] = nil, false
	}
}

// newEnvSession resolves the warm session for one EnvSpec: the explicit
// NewSession constructor when set, otherwise a probe of New's result for
// core.SessionEnvironment. nil means the env runs every job cold — including
// when session construction fails, so the underlying config error surfaces
// through the cold path with normal job attribution instead of being
// swallowed here.
func newEnvSession(spec EnvSpec) core.RunSession {
	if spec.NewSession != nil {
		if s, err := spec.NewSession(); err == nil {
			return s
		}
		return nil
	}
	if se, ok := spec.New().(core.SessionEnvironment); ok {
		if s, err := se.NewSession(); err == nil {
			return s
		}
	}
	return nil
}

// runOne executes a single job in full isolation: its own Source seeded from
// the job's seed, a freshly generated workflow, and either the worker's warm
// session for the job's env (reset in place before the run) or, when sess is
// nil, a fresh environment. A substrate panic (e.g. a stalled workflow) is
// converted into an error so one bad seed aborts the sweep deterministically
// instead of killing the process.
func runOne(cfg Config, j job, sess core.RunSession) (rr RunResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			rr, err = RunResult{}, fmt.Errorf("panic: %v", p)
		}
	}()
	spec := cfg.Workflows[j.wi]
	seed := cfg.Seeds[j.si]
	rng := randx.New(seed)
	w := spec.Gen(rng)
	if w == nil {
		return RunResult{}, fmt.Errorf("generator returned nil workflow")
	}
	var res *core.Result
	if sess != nil {
		// Substrate randomness (fault injection) forks off the same source
		// right after workflow generation, so a chaos run is a pure function
		// of the job's seed — the same contract, now fault-aware and warm.
		res, err = sess.RunSeeded(w, rng.Fork())
	} else {
		env := cfg.Envs[j.ei].New()
		if se, ok := env.(core.SeededEnvironment); ok {
			res, err = se.RunSeeded(w, rng.Fork())
		} else {
			res, err = env.Run(w)
		}
	}
	if err != nil {
		return RunResult{}, err
	}
	r := *res
	r.Provenance = nil
	return RunResult{Workflow: spec.Name, Env: cfg.Envs[j.ei].Name, Seed: seed, Result: r}, nil
}

// reduce folds results in job order into per-(workflow, env) cells. Per-cell
// order statistics are computed through one reused scratch slice (filled in
// run order, summarized in place), so reduction allocates the Cells slice
// and two scratch buffers regardless of how many cells × metrics it folds —
// the previous version paid five fresh slices per cell.
func reduce(cfg Config, results []RunResult) *Report {
	rep := &Report{Runs: results}
	nSeeds := len(cfg.Seeds)
	group := func(wi, ei int) []RunResult {
		base := (wi*len(cfg.Envs) + ei) * nSeeds
		return results[base : base+nSeeds]
	}
	baseIdx := -1
	for ei, e := range cfg.Envs {
		if e.Name == cfg.Baseline {
			baseIdx = ei
		}
	}
	rep.Cells = make([]Cell, 0, len(cfg.Workflows)*len(cfg.Envs))
	scratch := make([]float64, nSeeds)
	baseMakespans := make([]float64, nSeeds)
	for wi := range cfg.Workflows {
		if baseIdx >= 0 {
			for i, r := range group(wi, baseIdx) {
				baseMakespans[i] = r.Result.MakespanSec
			}
		}
		for ei := range cfg.Envs {
			runs := group(wi, ei)
			summarize := func(get func(*core.Result) float64) metrics.Summary {
				for i := range runs {
					scratch[i] = get(&runs[i].Result)
				}
				return metrics.SummarizeInPlace(scratch)
			}
			var util metrics.Agg
			for i := range runs {
				util.Observe(runs[i].Result.UtilizationCore)
			}
			c := Cell{
				Workflow: cfg.Workflows[wi].Name,
				Env:      cfg.Envs[ei].Name,
				Makespan: summarize(func(r *core.Result) float64 { return r.MakespanSec }),
				UtilMean: util.Mean(),
				FailedAttempts: summarize(func(r *core.Result) float64 {
					return float64(r.FailedAttempts)
				}),
				Retries: summarize(func(r *core.Result) float64 { return float64(r.Retries) }),
				TerminalFailures: summarize(func(r *core.Result) float64 {
					return float64(r.TerminalFailures)
				}),
				BackoffSec:  summarize(func(r *core.Result) float64 { return r.BackoffSec }),
				PredSamples: summarize(func(r *core.Result) float64 { return float64(r.PredSamples) }),
				PredMREPct:  summarize(func(r *core.Result) float64 { return r.PredMREPct }),
			}
			if baseIdx >= 0 && ei != baseIdx {
				var speedup, cut metrics.Agg
				for i := range runs {
					m := runs[i].Result.MakespanSec
					if m > 0 && baseMakespans[i] > 0 {
						speedup.Observe(baseMakespans[i] / m)
						cut.Observe((1 - m/baseMakespans[i]) * 100)
					}
				}
				c.SpeedupMean = speedup.Mean()
				c.CutMeanPct = cut.Mean()
				c.CutMaxPct = cut.Max()
			}
			rep.Cells = append(rep.Cells, c)
		}
	}
	return rep
}

// Cell returns the aggregate for one (workflow, env) pair, or nil.
func (r *Report) Cell(workflow, env string) *Cell {
	for i := range r.Cells {
		if r.Cells[i].Workflow == workflow && r.Cells[i].Env == env {
			return &r.Cells[i]
		}
	}
	return nil
}

// Table renders the cells as a fixed-width table. The bytes are part of the
// determinism contract: same Config ⇒ same Table, independent of Workers.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-22s %6s %10s %10s %10s %10s %7s %9s %9s\n",
		"workflow", "environment", "seeds", "min", "median", "p90", "max", "util", "speedup", "cut-mean")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-18s %-22s %6d %10s %10s %10s %10s %6.1f%%",
			c.Workflow, c.Env, c.Makespan.N,
			metrics.HumanSeconds(c.Makespan.Min), metrics.HumanSeconds(c.Makespan.Median),
			metrics.HumanSeconds(c.Makespan.P90), metrics.HumanSeconds(c.Makespan.Max),
			c.UtilMean*100)
		if c.SpeedupMean > 0 {
			fmt.Fprintf(&b, " %8.3fx %8.1f%%", c.SpeedupMean, c.CutMeanPct)
		} else {
			fmt.Fprintf(&b, " %9s %9s", "-", "-")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FaultTable renders the failure/recovery distributions of fault-injecting
// cells (empty string when no cell saw a failure). Like Table, its bytes are
// part of the determinism contract.
func (r *Report) FaultTable() string {
	any := false
	for i := range r.Cells {
		if r.Cells[i].Faulty() {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-28s %6s %16s %16s %16s %12s\n",
		"workflow", "environment", "seeds", "failed-attempts", "retries", "terminal", "backoff-med")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-18s %-28s %6d %7.1f med %4.0f %7.1f med %4.0f %7.1f med %4.0f %12s\n",
			c.Workflow, c.Env, c.Makespan.N,
			c.FailedAttempts.Mean(), c.FailedAttempts.Median,
			c.Retries.Mean(), c.Retries.Median,
			c.TerminalFailures.Mean(), c.TerminalFailures.Median,
			metrics.HumanSeconds(c.BackoffSec.Median))
	}
	return b.String()
}

// PredictionTable renders the ablation view of prediction-loop cells —
// per-(workflow, env) prediction volume and accuracy next to the makespan
// cut vs the configured baseline (empty string when no cell predicted).
// Like Table, its bytes are part of the determinism contract.
func (r *Report) PredictionTable() string {
	any := false
	for i := range r.Cells {
		if r.Cells[i].Predicted() {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-40s %6s %12s %10s %10s %10s %9s\n",
		"workflow", "environment", "seeds", "samples-med", "mre-mean", "mre-med", "makespan", "cut-mean")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-18s %-40s %6d %12.0f %9.1f%% %9.1f%% %10s",
			c.Workflow, c.Env, c.Makespan.N,
			c.PredSamples.Median,
			c.PredMREPct.Mean(), c.PredMREPct.Median,
			metrics.HumanSeconds(c.Makespan.Median))
		if c.SpeedupMean > 0 {
			fmt.Fprintf(&b, " %8.1f%%", c.CutMeanPct)
		} else {
			fmt.Fprintf(&b, " %9s", "-")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fingerprint is a compact digest of every per-seed result, suitable for
// asserting bit-identical sweeps without retaining full reports.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%s|%s|%d|%s\n", run.Workflow, run.Env, run.Seed, run.Result.Fingerprint())
	}
	return b.String()
}

// SortedEnvNames returns the env names of a report's cells, sorted and
// deduplicated — a convenience for renderers that pivot the table.
func (r *Report) SortedEnvNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, c := range r.Cells {
		if !seen[c.Env] {
			seen[c.Env] = true
			names = append(names, c.Env)
		}
	}
	sort.Strings(names)
	return names
}
