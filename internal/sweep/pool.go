package sweep

import (
	"runtime"
	"sync"
)

// ForEach runs fn(idx) for every index in [0, total) on a pool of workers —
// the ensemble-execution primitive Run is built on, exported so other
// multi-seed drivers (the service-mode arrival sweeps) inherit the same
// determinism contract: each index is processed by exactly one worker, any
// per-index state must be written into caller-owned slots keyed by idx, and
// when several indices fail the error of the LOWEST index is returned, so
// failures are as deterministic as successes regardless of worker count or
// interleaving. workers <= 0 means NumCPU. progress, when non-nil, is called
// under a lock with the completed count after each index.
func ForEach(total, workers int, progress func(done, total int), fn func(idx int) error) error {
	if total <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	errs := make([]error, total) // each index written by exactly one worker
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	// The full index range is buffered up front so workers never block on
	// the producer: job dispatch costs one channel receive, not a rendezvous
	// per job.
	ch := make(chan int, total)
	for idx := 0; idx < total; idx++ {
		ch <- idx
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				errs[idx] = fn(idx)
				if progress != nil {
					mu.Lock()
					done++
					progress(done, total)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
