package sweep

import (
	"runtime"
	"sync"
)

// PoolWorkers resolves the worker count the pool will actually use for a
// given job total: workers <= 0 means NumCPU, and the pool never spawns more
// goroutines than there are jobs — a 2-job sweep on a 64-core box gets 2
// workers, not 64 idle goroutines (and, for warm-session callers, not 64
// eagerly built substrates). Exported so callers that keep per-worker state
// can size their slots to match ForEachWorker's worker indices.
func PoolWorkers(total, workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(idx) for every index in [0, total) on a pool of workers —
// the ensemble-execution primitive Run is built on, exported so other
// multi-seed drivers (the service-mode arrival sweeps) inherit the same
// determinism contract: each index is processed by exactly one worker, any
// per-index state must be written into caller-owned slots keyed by idx, and
// when several indices fail the error of the LOWEST index is returned, so
// failures are as deterministic as successes regardless of worker count or
// interleaving. workers <= 0 means NumCPU; see PoolWorkers for the clamp.
// progress, when non-nil, is called under a lock with the completed count
// after each index.
func ForEach(total, workers int, progress func(done, total int), fn func(idx int) error) error {
	return ForEachWorker(total, workers, progress, func(_, idx int) error { return fn(idx) })
}

// ForEachWorker is ForEach with the worker's identity exposed: fn receives
// (worker, idx) where worker is a stable index in [0, PoolWorkers(total,
// workers)). Each worker is one goroutine for the lifetime of the call, so
// state keyed by the worker index — a warm-run session, a scratch arena — is
// touched by exactly one goroutine at a time and needs no locking. Job
// assignment to workers is racy by design; only per-index results (and the
// lowest-index error) are deterministic.
func ForEachWorker(total, workers int, progress func(done, total int), fn func(worker, idx int) error) error {
	if total <= 0 {
		return nil
	}
	workers = PoolWorkers(total, workers)
	errs := make([]error, total) // each index written by exactly one worker
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	// The full index range is buffered up front so workers never block on
	// the producer: job dispatch costs one channel receive, not a rendezvous
	// per job.
	ch := make(chan int, total)
	for idx := 0; idx < total; idx++ {
		ch <- idx
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range ch {
				errs[idx] = fn(worker, idx)
				if progress != nil {
					mu.Lock()
					done++
					progress(done, total)
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
