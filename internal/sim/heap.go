package sim

// entry is one queued event with its ordering key inlined. Keeping (at, seq)
// next to the pointer means every heap comparison reads memory that is
// already in the cache line being swapped, instead of chasing *Event.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

func (e entry) less(o entry) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// heap4 is a 4-ary min-heap of entries ordered by (at, seq). Compared to the
// previous container/heap queue it is monomorphic (no `any` boxing, no
// interface dispatch per comparison) and index-free: Cancel never removes an
// event from the queue — cancelled events are discarded at pop — so there is
// no heap-position bookkeeping at all. The wider fan-out roughly halves tree
// depth, trading a few extra comparisons per level (cheap, cache-resident)
// for fewer cache-missing levels on deep queues.
type heap4 struct {
	a []entry
}

func (h *heap4) len() int { return len(h.a) }

// reset empties the heap in place, zeroing entries so *Event references are
// dropped but keeping the backing array for reuse.
func (h *heap4) reset() {
	clear(h.a)
	h.a = h.a[:0]
}

// min returns the smallest entry without removing it. Callers must check
// len() > 0 first.
func (h *heap4) min() entry { return h.a[0] }

func (h *heap4) push(x entry) {
	a := append(h.a, x)
	h.a = a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !a[i].less(a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *heap4) pop() entry {
	a := h.a
	top := a[0]
	n := len(a) - 1
	x := a[n]
	a[n] = entry{} // drop the *Event reference so the slab can be collected
	h.a = a[:n]
	if n > 0 {
		h.siftDown(x)
	}
	return top
}

// siftDown re-inserts x starting from the root, moving the smallest child up
// into the hole instead of swapping — one store per level rather than three.
func (h *heap4) siftDown(x entry) {
	a := h.a
	n := len(a)
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if a[j].less(a[m]) {
				m = j
			}
		}
		if !a[m].less(x) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = x
}
