package sim

// Cross-check tests for the typed 4-ary event queue. A reference engine
// built on container/heap (the pre-optimization implementation, kept here
// verbatim in miniature) runs the same randomized schedules as the real
// Engine; the observable firing sequences must match event for event. These
// tests are the license to optimize the hot path: any ordering bug the
// rework could introduce — tie-break, cancellation, batching, deadline —
// shows up as a divergence from the reference.

import (
	"container/heap"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
)

// refEvent / refQueue / refEngine mirror the original container/heap-based
// kernel: an `any`-boxed binary heap ordered by (at, seq).
type refEvent struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type refEngine struct {
	now   Time
	seq   uint64
	queue refQueue
	fired uint64
}

func (e *refEngine) at(t Time, fn func()) *refEvent {
	e.seq++
	ev := &refEvent{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) runUntil(deadline Time) Time {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if deadline != Never && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// firing is one observed event execution.
type firing struct {
	at Time
	id int
}

// TestHeapCrossCheckFIFO runs hundreds of random schedules with dense
// timestamp collisions on both engines and requires identical firing
// sequences — the FIFO tie-break property checked against the reference
// implementation rather than against itself.
func TestHeapCrossCheckFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		e := NewEngine()
		ref := &refEngine{}
		n := 1 + rng.Intn(60)
		distinct := 1 + rng.Intn(6)
		var got, want []firing
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(distinct))
			e.At(at, func() { got = append(got, firing{at, i}) })
			ref.at(at, func() { want = append(want, firing{at, i}) })
		}
		e.Run()
		ref.runUntil(Never)
		if len(got) != len(want) {
			t.Fatalf("iter %d: fired %d events, reference fired %d", iter, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iter %d: firing %d = %+v, reference %+v", iter, j, got[j], want[j])
			}
		}
		if e.Now() != ref.now || e.Fired() != ref.fired {
			t.Fatalf("iter %d: clock/fired = %v/%d, reference %v/%d",
				iter, e.Now(), e.Fired(), ref.now, ref.fired)
		}
	}
}

// TestHeapCrossCheckCancel randomly cancels a subset of events — some before
// any run, some from inside handlers — and requires both engines to fire the
// identical surviving sequence.
func TestHeapCrossCheckCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 400; iter++ {
		e := NewEngine()
		ref := &refEngine{}
		n := 2 + rng.Intn(50)
		distinct := 1 + rng.Intn(6)
		var got, want []firing
		evs := make([]*Event, n)
		refs := make([]*refEvent, n)
		// cancelFrom[i] >= 0 means handler i cancels that event when it fires.
		cancelFrom := make([]int, n)
		for i := range cancelFrom {
			cancelFrom[i] = -1
			if rng.Intn(3) == 0 {
				cancelFrom[i] = rng.Intn(n)
			}
		}
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(distinct))
			evs[i] = e.At(at, func() {
				got = append(got, firing{at, i})
				if c := cancelFrom[i]; c >= 0 {
					evs[c].Cancel()
				}
			})
			refs[i] = ref.at(at, func() {
				want = append(want, firing{at, i})
				if c := cancelFrom[i]; c >= 0 {
					refs[c].cancel = true
				}
			})
		}
		// Up-front cancellations too.
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				evs[i].Cancel()
				refs[i].cancel = true
			}
		}
		e.Run()
		ref.runUntil(Never)
		if len(got) != len(want) {
			t.Fatalf("iter %d: fired %d events, reference fired %d", iter, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iter %d: firing %d = %+v, reference %+v", iter, j, got[j], want[j])
			}
		}
	}
}

// TestHeapCrossCheckInterleaved drives both engines through random
// interleavings of scheduling-from-handlers and RunUntil segments with
// random deadlines — the access pattern of the real substrates.
func TestHeapCrossCheckInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		e := NewEngine()
		ref := &refEngine{}
		var got, want []firing
		id := 0
		var spawnGot func(depth, myID int) func()
		var spawnWant func(depth, myID int) func()
		// Both engines replay the same decision tape.
		type decision struct {
			n      int
			delays []Time
		}
		tape := map[int]decision{}
		decide := func(myID int) decision {
			d, ok := tape[myID]
			if !ok {
				d.n = rng.Intn(3)
				for k := 0; k < d.n; k++ {
					d.delays = append(d.delays, Time(rng.Intn(7)))
				}
				tape[myID] = d
			}
			return d
		}
		nextID := func() int { id++; return id }
		spawnGot = func(depth, myID int) func() {
			return func() {
				got = append(got, firing{e.Now(), myID})
				if depth <= 0 {
					return
				}
				d := decide(myID)
				for k := 0; k < d.n; k++ {
					e.After(d.delays[k], spawnGot(depth-1, myID*100+k+1))
				}
			}
		}
		spawnWant = func(depth, myID int) func() {
			return func() {
				want = append(want, firing{ref.now, myID})
				if depth <= 0 {
					return
				}
				d := decide(myID)
				for k := 0; k < d.n; k++ {
					at := ref.now + d.delays[k]
					ref.at(at, spawnWant(depth-1, myID*100+k+1))
				}
			}
		}
		nRoots := 1 + rng.Intn(5)
		for i := 0; i < nRoots; i++ {
			at := Time(rng.Intn(5))
			rootID := nextID() * 1000000
			e.At(at, spawnGot(3, rootID))
			ref.at(at, spawnWant(3, rootID))
		}
		// Run in randomly sized deadline segments, then drain.
		deadline := Time(0)
		for seg := 0; seg < 4; seg++ {
			deadline += Time(rng.Intn(10))
			e.RunUntil(deadline)
			ref.runUntil(deadline)
			if e.Now() != ref.now {
				t.Fatalf("iter %d seg %d: clock %v vs reference %v", iter, seg, e.Now(), ref.now)
			}
			if e.Pending() != len(ref.queue) {
				t.Fatalf("iter %d seg %d: pending %d vs reference %d", iter, seg, e.Pending(), len(ref.queue))
			}
		}
		e.Run()
		ref.runUntil(Never)
		if len(got) != len(want) {
			t.Fatalf("iter %d: fired %d events, reference fired %d", iter, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iter %d: firing %d = %+v, reference %+v", iter, j, got[j], want[j])
			}
		}
	}
}

// TestBatchHaltMidCohort halts the engine in the middle of a same-timestamp
// cohort; the remainder must stay pending, survive a RunUntil with an
// earlier deadline untouched, and then drain in FIFO order via both Step and
// Run.
func TestBatchHaltMidCohort(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i := 0; i < 6; i++ {
		i := i
		e.At(5, func() {
			fired = append(fired, i)
			if i == 1 {
				e.Halt()
			}
		})
	}
	e.Run()
	if len(fired) != 2 || e.Pending() != 4 {
		t.Fatalf("after halt: fired=%v pending=%d", fired, e.Pending())
	}
	// An earlier deadline must not fire the t=5 remainder.
	e.RunUntil(3)
	if len(fired) != 2 {
		t.Fatalf("earlier deadline fired batch remainder: %v", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
	// Step drains the remainder one at a time, in order.
	if !e.Step() || len(fired) != 3 || fired[2] != 2 {
		t.Fatalf("Step on remainder: fired=%v", fired)
	}
	e.Run()
	want := []int{0, 1, 2, 3, 4, 5}
	if len(fired) != 6 {
		t.Fatalf("drain: fired=%v", fired)
	}
	for i, v := range want {
		if fired[i] != v {
			t.Fatalf("order after halt/resume: %v", fired)
		}
	}
}

// TestBatchCancelWithinCohort: an early cohort member cancelling a later one
// must suppress it even though both were popped in the same batch.
func TestBatchCancelWithinCohort(t *testing.T) {
	e := NewEngine()
	var fired []int
	var evs [4]*Event
	for i := 0; i < 4; i++ {
		i := i
		evs[i] = e.At(1, func() {
			fired = append(fired, i)
			if i == 0 {
				evs[2].Cancel()
			}
		})
	}
	e.Run()
	if len(fired) != 3 || fired[0] != 0 || fired[1] != 1 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [0 1 3]", fired)
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", e.Fired())
	}
}

// TestBatchSameTimeScheduling: events scheduled at the current timestamp
// from inside a cohort fire after the whole cohort, in scheduling order.
func TestBatchSameTimeScheduling(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i := 0; i < 3; i++ {
		i := i
		e.At(2, func() {
			fired = append(fired, i)
			e.At(e.Now(), func() { fired = append(fired, 10+i) })
		})
	}
	e.Run()
	want := []int{0, 1, 2, 10, 11, 12}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestEventAllocsAmortized locks in the slab-pooling win: scheduling and
// firing an event must cost well under one allocation on average (one slab
// allocation per eventSlabSize events, plus rare queue growth), where the
// pre-rework queue paid one heap-allocated Event per At.
func TestEventAllocsAmortized(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the queue slice so steady-state growth doesn't pollute the count.
	for i := 0; i < 1024; i++ {
		e.At(e.Now()+1, fn)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(4096, func() {
		e.At(e.Now()+1, fn)
		e.Step()
	})
	if avg > 0.25 {
		t.Fatalf("allocs per schedule+fire = %.3f, want amortized < 0.25", avg)
	}
}

// ---- Sharded-queue cross-check battery ----
//
// The sharded pending queue (sharded.go) claims to reproduce the single-heap
// pop order element for element at every shard count. The tests below earn
// that claim the same way the heap rework did: random FIFO, cancel, and
// interleaved schedules — expressed as replayable tapes — run across 1..8
// shards against the container/heap reference kernel above, and the firing
// sequences must match exactly. On divergence the tape (with both firing
// sequences) is dumped to sharded_tape_failure.json so the schedule can be
// replayed verbatim while debugging; CI uploads it as an artifact.

// shardOp is one event of a replayable tape. "root" ops are scheduled up
// front at absolute time At; "child" ops are scheduled by their parent's
// handler, Delay after it fires. A handler with Cancel >= 0 cancels that
// op's event (if it has been scheduled) when it fires.
type shardOp struct {
	Kind   string  `json:"kind"`
	At     float64 `json:"at,omitempty"`
	Delay  float64 `json:"delay,omitempty"`
	Parent int     `json:"parent,omitempty"`
	Cancel int     `json:"cancel"`
}

// shardTape is a complete replayable schedule: ops, up-front cancellations,
// and RunUntil deadline segments executed before the final drain.
type shardTape struct {
	Seed      int64     `json:"seed"`
	Shards    int       `json:"shards"`
	Ops       []shardOp `json:"ops"`
	Upfront   []int     `json:"upfront_cancels,omitempty"`
	Deadlines []float64 `json:"deadlines,omitempty"`
}

func (tp *shardTape) childIndex() [][]int {
	kids := make([][]int, len(tp.Ops))
	for i, op := range tp.Ops {
		if op.Kind == "child" {
			kids[op.Parent] = append(kids[op.Parent], i)
		}
	}
	return kids
}

// replayEngine runs the tape on a real Engine with the tape's shard count.
func (tp *shardTape) replayEngine() ([]firing, Time, uint64) {
	e := NewEngine()
	e.SetShards(tp.Shards)
	kids := tp.childIndex()
	evs := make([]*Event, len(tp.Ops))
	var got []firing
	var handler func(i int) func()
	handler = func(i int) func() {
		return func() {
			got = append(got, firing{e.Now(), i})
			if c := tp.Ops[i].Cancel; c >= 0 && evs[c] != nil {
				evs[c].Cancel()
			}
			for _, k := range kids[i] {
				evs[k] = e.After(Time(tp.Ops[k].Delay), handler(k))
			}
		}
	}
	for i, op := range tp.Ops {
		if op.Kind == "root" {
			evs[i] = e.At(Time(op.At), handler(i))
		}
	}
	for _, c := range tp.Upfront {
		if evs[c] != nil {
			evs[c].Cancel()
		}
	}
	for _, d := range tp.Deadlines {
		e.RunUntil(Time(d))
	}
	e.Run()
	return got, e.Now(), e.Fired()
}

// replayRef runs the tape on the container/heap reference kernel.
func (tp *shardTape) replayRef() ([]firing, Time, uint64) {
	ref := &refEngine{}
	kids := tp.childIndex()
	evs := make([]*refEvent, len(tp.Ops))
	var want []firing
	var handler func(i int) func()
	handler = func(i int) func() {
		return func() {
			want = append(want, firing{ref.now, i})
			if c := tp.Ops[i].Cancel; c >= 0 && evs[c] != nil {
				evs[c].cancel = true
			}
			for _, k := range kids[i] {
				evs[k] = ref.at(ref.now+Time(tp.Ops[k].Delay), handler(k))
			}
		}
	}
	for i, op := range tp.Ops {
		if op.Kind == "root" {
			evs[i] = ref.at(Time(op.At), handler(i))
		}
	}
	for _, c := range tp.Upfront {
		if evs[c] != nil {
			evs[c].cancel = true
		}
	}
	for _, d := range tp.Deadlines {
		ref.runUntil(Time(d))
	}
	ref.runUntil(Never)
	return want, ref.now, ref.fired
}

// genShardTape draws a random tape. kind selects the pattern: "fifo" is
// dense same-timestamp roots only; "cancel" adds handler and up-front
// cancellations; "interleaved" adds handler-scheduled children and deadline
// segments — the access pattern of the real substrates.
func genShardTape(rng *rand.Rand, kind string) *shardTape {
	tp := &shardTape{}
	n := 20 + rng.Intn(60)
	for i := 0; i < n; i++ {
		op := shardOp{Kind: "root", At: float64(rng.Intn(8)), Cancel: -1}
		if kind == "interleaved" && i > 0 && rng.Intn(2) == 0 {
			op = shardOp{Kind: "child", Parent: rng.Intn(i), Delay: float64(rng.Intn(5)), Cancel: -1}
		}
		if kind != "fifo" && rng.Intn(4) == 0 {
			op.Cancel = rng.Intn(n)
		}
		tp.Ops = append(tp.Ops, op)
	}
	if kind != "fifo" {
		for i := 0; i < n; i++ {
			if rng.Intn(6) == 0 {
				tp.Upfront = append(tp.Upfront, i)
			}
		}
	}
	if kind == "interleaved" {
		d := 0.0
		for s := 0; s < 3; s++ {
			d += float64(rng.Intn(6))
			tp.Deadlines = append(tp.Deadlines, d)
		}
	}
	return tp
}

// shardDump is the JSON written on divergence: the tape plus both observed
// firing sequences.
type shardDump struct {
	Tape *shardTape  `json:"tape"`
	Got  []shardFire `json:"got"`
	Want []shardFire `json:"want"`
}

type shardFire struct {
	At float64 `json:"at"`
	ID int     `json:"id"`
}

func dumpShardTape(t *testing.T, tp *shardTape, got, want []firing) {
	t.Helper()
	conv := func(fs []firing) []shardFire {
		out := make([]shardFire, len(fs))
		for i, f := range fs {
			out[i] = shardFire{At: float64(f.at), ID: f.id}
		}
		return out
	}
	data, err := json.MarshalIndent(shardDump{Tape: tp, Got: conv(got), Want: conv(want)}, "", "  ")
	if err == nil {
		_ = os.WriteFile("sharded_tape_failure.json", data, 0o644)
		t.Logf("replayable tape written to sharded_tape_failure.json")
	}
}

// checkShardTape replays tp at its shard count against the reference and
// fails (dumping the tape) on any observable difference.
func checkShardTape(t *testing.T, tp *shardTape) {
	t.Helper()
	got, now, fired := tp.replayEngine()
	want, refNow, refFired := tp.replayRef()
	ok := len(got) == len(want) && now == refNow && fired == refFired
	if ok {
		for i := range want {
			if got[i] != want[i] {
				ok = false
				break
			}
		}
	}
	if !ok {
		dumpShardTape(t, tp, got, want)
		t.Fatalf("seed %d shards %d: sharded firing sequence diverged from reference (%d vs %d firings, clock %v vs %v)",
			tp.Seed, tp.Shards, len(got), len(want), now, refNow)
	}
}

func runShardedCrossCheck(t *testing.T, kind string, seed int64, iters int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for iter := 0; iter < iters; iter++ {
		tp := genShardTape(rng, kind)
		tp.Seed = seed
		for shards := 1; shards <= 8; shards++ {
			tp.Shards = shards
			checkShardTape(t, tp)
		}
	}
}

// TestShardedCrossCheckFIFO: dense timestamp collisions, every shard count
// 1..8, identical FIFO tie-break order to the reference kernel.
func TestShardedCrossCheckFIFO(t *testing.T) { runShardedCrossCheck(t, "fifo", 21, 150) }

// TestShardedCrossCheckCancel: handler-driven and up-front cancellations
// must be discarded identically at every shard count.
func TestShardedCrossCheckCancel(t *testing.T) { runShardedCrossCheck(t, "cancel", 22, 150) }

// TestShardedCrossCheckInterleaved: handler-scheduled children plus RunUntil
// deadline segments — the barrier must stay exact while events arrive on
// other shards mid-cohort.
func TestShardedCrossCheckInterleaved(t *testing.T) { runShardedCrossCheck(t, "interleaved", 23, 150) }

// TestSetShardsGuards pins the SetShards contract: rejecting a non-empty
// queue, reporting the shard count, and restoring the monolithic heap.
func TestSetShardsGuards(t *testing.T) {
	e := NewEngine()
	if e.NumShards() != 1 {
		t.Fatalf("NumShards on fresh engine = %d, want 1", e.NumShards())
	}
	e.SetShards(4)
	if e.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", e.NumShards())
	}
	e.SetShards(0)
	if e.NumShards() != 1 {
		t.Fatalf("NumShards after SetShards(0) = %d, want 1", e.NumShards())
	}
	e.At(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetShards with pending events did not panic")
		}
	}()
	e.SetShards(2)
}

// TestShardedAllocsAmortized: the sharded queue must keep the slab-pooling
// win — scheduling and firing stays well under one allocation on average.
func TestShardedAllocsAmortized(t *testing.T) {
	e := NewEngine()
	e.SetShards(4)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.At(e.Now()+1, fn)
	}
	for e.Step() {
	}
	avg := testing.AllocsPerRun(4096, func() {
		e.At(e.Now()+1, fn)
		e.Step()
	})
	if avg > 0.25 {
		t.Fatalf("allocs per schedule+fire = %.3f, want amortized < 0.25", avg)
	}
}

// TestEventSlabNoAliasing: a handle to a long-fired event must stay inert —
// cancelling it cannot affect any event scheduled later, even after the
// engine has cycled through many slabs.
func TestEventSlabNoAliasing(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run()
	fired := 0
	for i := 0; i < eventSlabSize*3; i++ {
		e.At(e.Now()+1, func() { fired++ })
		stale.Cancel() // must never hit a recycled slot
		if !e.Step() {
			t.Fatal("live event did not fire")
		}
	}
	if fired != eventSlabSize*3 {
		t.Fatalf("fired %d of %d despite stale Cancel", fired, eventSlabSize*3)
	}
}
