// Package sim provides a deterministic discrete-event simulation kernel.
//
// All substrates in this repository (clusters, resource managers, cloud
// services, pipelines) advance a shared virtual clock by scheduling events on
// an Engine. Determinism is guaranteed by a strict ordering of events:
// primarily by virtual time, secondarily by a monotonically increasing
// sequence number assigned at scheduling time. Simulating hours of virtual
// time over thousands of nodes therefore takes milliseconds of wall time and
// produces bit-identical results across runs.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds from the start of the
// simulation. Using float64 seconds (rather than time.Duration) matches the
// granularity the paper reports (seconds to hours) and keeps arithmetic on
// rates and utilization integrals simple.
type Time float64

// Duration converts t to a time.Duration for display purposes.
func (t Time) Duration() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Never is a sentinel meaning "no scheduled time".
const Never = Time(math.MaxFloat64)

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
	index  int // heap index, -1 when popped
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds of virtual time from now. Negative
// delays are clamped to zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Halt stops the current Run/RunUntil after the in-flight event completes.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue drains or Halt is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Never) }

// RunUntil executes events with timestamps <= deadline, advancing the clock.
// Events scheduled beyond the deadline stay queued; the clock is left at
// min(deadline, time of last fired event) — it never exceeds the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if deadline != Never && e.now < deadline && !e.halted {
		e.now = deadline
	}
	return e.now
}

// Step fires exactly one non-cancelled event, if any, and reports whether one
// fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*Event)
		if next.cancel {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}
