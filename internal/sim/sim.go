// Package sim provides a deterministic discrete-event simulation kernel.
//
// All substrates in this repository (clusters, resource managers, cloud
// services, pipelines) advance a shared virtual clock by scheduling events on
// an Engine. Determinism is guaranteed by a strict ordering of events:
// primarily by virtual time, secondarily by a monotonically increasing
// sequence number assigned at scheduling time. Simulating hours of virtual
// time over thousands of nodes therefore takes milliseconds of wall time and
// produces bit-identical results across runs.
//
// The event core is the hottest path in the repository: every task start,
// task end, fault, retry timer, and sample tick is one Event. Three
// structural choices keep it fast without weakening the ordering contract:
//
//   - the pending queue is a typed 4-ary min-heap on (time, seq) — no
//     interface boxing, no per-comparison dynamic dispatch, and no heap-index
//     bookkeeping (Cancel only sets a flag; cancelled events are discarded
//     when popped, exactly as before);
//   - Events are allocated from slabs of eventSlabSize, so scheduling costs
//     one heap allocation per slab instead of one per event, while handles
//     stay ordinary *Event pointers with unchanged Cancel semantics (a slab
//     is never reused, so a stale handle can never alias a newer event);
//   - Run/RunUntil pop all events sharing the head timestamp as one batch,
//     firing them FIFO by seq; events scheduled during the batch carry larger
//     sequence numbers and therefore sort after it, so the observable order
//     is identical to pop-one-at-a-time.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds from the start of the
// simulation. Using float64 seconds (rather than time.Duration) matches the
// granularity the paper reports (seconds to hours) and keeps arithmetic on
// rates and utilization integrals simple.
type Time float64

// Duration converts t to a time.Duration for display purposes.
func (t Time) Duration() time.Duration { return time.Duration(float64(t) * float64(time.Second)) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Never is a sentinel meaning "no scheduled time".
const Never = Time(math.MaxFloat64)

// eventSlabSize is how many Events one allocation hands out. Amortizing the
// allocation is the whole point; the value only trades retained-slab
// granularity against allocation frequency.
const eventSlabSize = 256

// Event is a callback scheduled to run at a virtual time. Events live in
// engine-owned slabs; callers hold *Event only to Cancel or inspect it.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	cancel bool
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  heap4
	fired  uint64
	halted bool

	// batch holds the events popped together for one timestamp; batchNext is
	// the first not-yet-fired index. A halted or deadline-bounded RunUntil
	// may leave a remainder here, which the next Run/RunUntil/Step drains
	// before touching the queue.
	batch     []*Event
	batchNext int

	// slab is the tail of the current Event slab; alloc hands out its
	// elements sequentially and replaces it when exhausted. Slabs are never
	// reused, so escaped *Event handles keep their pre-pooling semantics.
	slab []Event

	// Sharded pending queue (see sharded.go). shards == nil means the
	// monolithic heap above is in use; otherwise entries are routed by seq
	// across the per-shard heaps, shardCur is the shard whose head is the
	// global minimum, shardBar the smallest key any other shard holds, and
	// shardN the total queued count.
	shards   []heap4
	shardCur int
	shardBar entry
	shardN   int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its just-constructed state (clock at zero, no
// history, nothing pending) while retaining allocated capacity: the heap
// backing arrays, the batch buffer, and the shard layout all survive, and the
// current slab tail keeps being consumed. Slabs are still never reused — an
// Event handed out before Reset is never handed out again — so stale *Event
// handles held across runs keep the no-aliasing Cancel semantics. The warm
// contract is exact: an event population scheduled after Reset receives the
// same seqs, pops in the same order, and fires at the same times as on a
// fresh engine.
func (e *Engine) Reset() {
	e.now, e.seq, e.fired, e.halted = 0, 0, 0, false
	clear(e.batch)
	e.batch = e.batch[:0]
	e.batchNext = 0
	e.queue.reset()
	if e.shards != nil {
		for i := range e.shards {
			e.shards[i].reset()
		}
		e.shardCur, e.shardBar, e.shardN = 0, noEntry, 0
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return e.qlen() + len(e.batch) - e.batchNext }

func (e *Engine) alloc() *Event {
	if len(e.slab) == 0 {
		e.slab = make([]Event, eventSlabSize)
	}
	ev := &e.slab[0]
	e.slab = e.slab[1:]
	return ev
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.qpush(entry{at: t, seq: e.seq, ev: ev})
	return ev
}

// After schedules fn to run d seconds of virtual time from now. Negative
// delays are clamped to zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Halt stops the current Run/RunUntil after the in-flight event completes.
func (e *Engine) Halt() { e.halted = true }

// Run executes events until the queue drains or Halt is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Never) }

// RunUntil executes events with timestamps <= deadline, advancing the clock.
// Events scheduled beyond the deadline stay queued; the clock is left at
// min(deadline, time of last fired event) — it never exceeds the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted {
		if e.batchNext < len(e.batch) {
			ev := e.batch[e.batchNext]
			if ev.at > deadline {
				// Only possible when a halted batch is resumed with an
				// earlier deadline; the remainder stays for a later run.
				break
			}
			e.batch[e.batchNext] = nil
			e.batchNext++
			if ev.cancel {
				continue
			}
			e.now = ev.at
			e.fired++
			ev.fn()
			continue
		}
		e.batch = e.batch[:0]
		e.batchNext = 0
		if e.qlen() == 0 {
			break
		}
		head := e.qmin()
		if head.at > deadline {
			break
		}
		// Pop the whole timestamp cohort at once. Successive pops yield
		// ascending seq, so the batch is already in FIFO firing order;
		// events scheduled while it fires get larger seqs and sort after.
		at := head.at
		for e.qlen() > 0 && e.qmin().at == at {
			e.batch = append(e.batch, e.qpop().ev)
		}
	}
	if deadline != Never && e.now < deadline && !e.halted {
		e.now = deadline
	}
	return e.now
}

// Step fires exactly one non-cancelled event, if any, and reports whether one
// fired. It drains any batch remainder left by a halted RunUntil first.
func (e *Engine) Step() bool {
	for {
		var ev *Event
		if e.batchNext < len(e.batch) {
			ev = e.batch[e.batchNext]
			e.batch[e.batchNext] = nil
			e.batchNext++
		} else {
			if len(e.batch) > 0 {
				e.batch = e.batch[:0]
				e.batchNext = 0
			}
			if e.qlen() == 0 {
				return false
			}
			ev = e.qpop().ev
		}
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
}
