package sim

import "testing"

// BenchmarkEngineThroughput measures raw event dispatch rate — the
// simulator's core cost, which bounds how large a virtual system we can
// replay per wall-second.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, func() {})
		e.Step()
	}
}

// BenchmarkEngineDeepQueue measures scheduling cost with a large pending
// queue (heap depth ~16k).
func BenchmarkEngineDeepQueue(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 16384; i++ {
		e.At(Time(1e9+float64(i)), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(Time(float64(i)+1), func() {})
		_ = ev
		e.Step()
	}
}

// BenchmarkEngineCancel measures event cancellation (used heavily by the
// task managers on node failures).
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(Time(i)+1, func() {})
		ev.Cancel()
		e.Step()
	}
}
