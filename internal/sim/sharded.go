package sim

// Sharded pending queue: conservative bounded-lookahead merging of per-shard
// heaps, preserving the exact single-heap pop order.
//
// At extreme scale (100k nodes, millions of events in flight) one monolithic
// heap becomes the memory hot spot: every push and pop walks log(N) levels of
// a single huge array. SetShards partitions the pending queue into k
// independent heap4 instances — think per-site event queues — with events
// routed by seq. Because routing is a pure function of seq, and the engine's
// total order is (at, seq), the k-way merge below reproduces the single-heap
// order element for element; the golden-fingerprint contract holds by
// construction, and the cross-check battery in heap_test.go replays random
// schedules against the reference kernel to prove it.
//
// The merge is the conservative synchronization scheme of parallel discrete
// event simulation, collapsed onto one thread: the current shard may keep
// popping — without looking at anyone else — while its head stays below the
// barrier, the smallest ordering key any other shard holds. Pushes to other
// shards can only lower the barrier (heads never otherwise decrease), so the
// barrier is exact, not merely safe, and the lookahead window is as wide as
// the event population allows. Only when the current shard's head crosses the
// barrier does the engine rescan all k heads to elect a new shard and
// barrier.

// noEntry is the barrier sentinel: it sorts after every real entry (real
// events never reach seq == ^uint64(0)), so an empty "other shards" set
// imposes no barrier at all.
var noEntry = entry{at: Never, seq: ^uint64(0)}

// SetShards partitions the engine's pending queue into k per-shard heaps
// (k <= 1 restores the single monolithic heap). The observable event order is
// identical at any shard count. It panics if events are already pending:
// re-routing queued events would be silent, and every substrate constructs
// its engine before scheduling.
func (e *Engine) SetShards(k int) {
	if e.Pending() != 0 {
		panic("sim: SetShards on an engine with pending events")
	}
	if k <= 1 {
		e.shards = nil
		e.shardN = 0
		return
	}
	e.shards = make([]heap4, k)
	e.shardCur = 0
	e.shardBar = noEntry
	e.shardN = 0
}

// NumShards returns the number of pending-queue shards (1 = monolithic).
func (e *Engine) NumShards() int {
	if e.shards == nil {
		return 1
	}
	return len(e.shards)
}

// qlen returns the total number of queued entries across shards.
func (e *Engine) qlen() int {
	if e.shards == nil {
		return e.queue.len()
	}
	return e.shardN
}

// qpush routes an entry to its shard, lowering the barrier when the entry
// lands outside the current shard with a smaller key.
func (e *Engine) qpush(x entry) {
	if e.shards == nil {
		e.queue.push(x)
		return
	}
	s := int(x.seq % uint64(len(e.shards)))
	e.shards[s].push(x)
	e.shardN++
	if s != e.shardCur && x.less(e.shardBar) {
		e.shardBar = x
	}
}

// qfix re-establishes the invariant that the current shard's head is the
// global minimum. Fast path: the head is still inside the lookahead window
// (strictly below the barrier — keys are unique, so "not less" means a
// smaller key lives elsewhere). Slow path: rescan all shard heads, elect the
// smallest as current, and set the barrier to the runner-up.
func (e *Engine) qfix() {
	c := &e.shards[e.shardCur]
	if c.len() > 0 && c.min().less(e.shardBar) {
		return
	}
	best := -1
	bestEnt, second := noEntry, noEntry
	for i := range e.shards {
		if e.shards[i].len() == 0 {
			continue
		}
		h := e.shards[i].min()
		if best < 0 || h.less(bestEnt) {
			if best >= 0 {
				second = bestEnt
			}
			best, bestEnt = i, h
		} else if h.less(second) {
			second = h
		}
	}
	if best < 0 {
		e.shardCur, e.shardBar = 0, noEntry
		return
	}
	e.shardCur, e.shardBar = best, second
}

// qmin returns the globally smallest entry. Callers must check qlen() > 0.
func (e *Engine) qmin() entry {
	if e.shards == nil {
		return e.queue.min()
	}
	e.qfix()
	return e.shards[e.shardCur].min()
}

// qpop removes and returns the globally smallest entry. Callers must check
// qlen() > 0.
func (e *Engine) qpop() entry {
	if e.shards == nil {
		return e.queue.pop()
	}
	e.qfix()
	e.shardN--
	return e.shards[e.shardCur].pop()
}
