package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(5, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 0) })
	e.At(3, func() { got = append(got, 1) })
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(2, func() {
		times = append(times, e.Now())
		e.After(3, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 2 || times[1] != 5 {
		t.Fatalf("times = %v, want [2 5]", times)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=5, want 3", len(fired))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v after RunUntil(5), want 5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining event not fired: %v", fired)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {
			count++
			if count == 2 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after Halt, want 2", count)
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d after resume, want 5", count)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-3, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative After: fired=%v now=%v", fired, e.Now())
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing time
// order and the engine's clock equals the max time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		if len(raw) > 0 {
			max := Time(0)
			for _, r := range raw {
				if Time(r) > max {
					max = Time(r)
				}
			}
			if e.Now() != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved scheduling from inside events preserves determinism —
// two identical runs fire identical sequences.
func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			fired = append(fired, e.Now())
			if depth <= 0 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				e.After(Time(rng.Float64()*10), func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 5; i++ {
			e.At(Time(rng.Float64()*5), func() { spawn(4) })
		}
		e.Run()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// genSchedule builds a random schedule with heavy timestamp collisions (few
// distinct times over many events) so tie-breaking is exercised constantly.
func genSchedule(rng *rand.Rand, e *Engine, n int) []*Event {
	events := make([]*Event, n)
	distinct := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		events[i] = e.At(Time(rng.Intn(distinct)), func() {})
	}
	return events
}

// Property: events sharing a timestamp fire in scheduling (seq) order, for
// hundreds of random schedules with dense timestamp collisions.
func TestPropertySameTimestampSeqOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		e := NewEngine()
		n := 1 + rng.Intn(40)
		distinct := 1 + rng.Intn(5)
		type rec struct {
			at  Time
			idx int // scheduling order
		}
		var fired []rec
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(distinct))
			e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != n {
			t.Fatalf("iter %d: fired %d of %d", iter, len(fired), n)
		}
		for j := 1; j < len(fired); j++ {
			prev, cur := fired[j-1], fired[j]
			if cur.at < prev.at {
				t.Fatalf("iter %d: time order violated at %d: %v after %v", iter, j, cur.at, prev.at)
			}
			if cur.at == prev.at && cur.idx < prev.idx {
				t.Fatalf("iter %d: seq order violated at t=%v: idx %d after %d",
					iter, cur.at, cur.idx, prev.idx)
			}
		}
	}
}

// Property: Cancel is a no-op whether called before the event is popped or
// after it fired — cancelled-pending events never fire, and cancelling a
// fired event changes nothing that can be observed afterwards.
func TestPropertyCancelBeforeAndAfterPop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		e := NewEngine()
		n := 1 + rng.Intn(30)
		firedSet := make([]bool, n)
		events := make([]*Event, n)
		cancelled := make([]bool, n)
		distinct := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			i := i
			events[i] = e.At(Time(rng.Intn(distinct)), func() { firedSet[i] = true })
		}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				events[i].Cancel()
			}
		}
		e.Run()
		firedCount := uint64(0)
		for i := 0; i < n; i++ {
			if cancelled[i] && firedSet[i] {
				t.Fatalf("iter %d: cancelled event %d fired", iter, i)
			}
			if !cancelled[i] && !firedSet[i] {
				t.Fatalf("iter %d: live event %d never fired", iter, i)
			}
			if firedSet[i] {
				firedCount++
			}
		}
		if e.Fired() != firedCount {
			t.Fatalf("iter %d: Fired() = %d, want %d", iter, e.Fired(), firedCount)
		}
		// Cancel after firing: a pure no-op on engine state.
		now, fired, pending := e.Now(), e.Fired(), e.Pending()
		for i := 0; i < n; i++ {
			if firedSet[i] {
				events[i].Cancel()
			}
		}
		if e.Now() != now || e.Fired() != fired || e.Pending() != pending {
			t.Fatalf("iter %d: Cancel after fire mutated engine state", iter)
		}
	}
}

// Property: RunUntil never advances the clock past the deadline, fires
// exactly the events at or before it, and leaves later events queued.
func TestPropertyRunUntilDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		e := NewEngine()
		n := 1 + rng.Intn(30)
		var fired []Time
		wantBefore := 0
		deadline := Time(rng.Intn(10))
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(20))
			if at <= deadline {
				wantBefore++
			}
			e.At(at, func() { fired = append(fired, at) })
		}
		e.RunUntil(deadline)
		if len(fired) != wantBefore {
			t.Fatalf("iter %d: fired %d events by %v, want %d", iter, len(fired), deadline, wantBefore)
		}
		for _, at := range fired {
			if at > deadline {
				t.Fatalf("iter %d: event at %v fired past deadline %v", iter, at, deadline)
			}
		}
		if e.Now() > deadline {
			t.Fatalf("iter %d: clock %v past deadline %v", iter, e.Now(), deadline)
		}
		if e.Pending() != n-wantBefore {
			t.Fatalf("iter %d: %d pending, want %d", iter, e.Pending(), n-wantBefore)
		}
		// Draining the rest must pick up exactly where RunUntil stopped.
		e.Run()
		if len(fired) != n {
			t.Fatalf("iter %d: %d fired after drain, want %d", iter, len(fired), n)
		}
	}
}

// Property: Step fires exactly one non-cancelled event per call, silently
// discarding any cancelled events ahead of it, and total steps equals the
// number of live events.
func TestPropertyStepSkipsCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		e := NewEngine()
		n := 1 + rng.Intn(30)
		live := 0
		fired := 0
		events := genSchedule(rng, e, n)
		for _, ev := range events {
			if rng.Intn(3) == 0 {
				ev.Cancel()
			} else {
				live++
			}
		}
		steps := 0
		for e.Step() {
			steps++
			if steps > n {
				t.Fatalf("iter %d: Step exceeded event count", iter)
			}
		}
		fired = int(e.Fired())
		if steps != live || fired != live {
			t.Fatalf("iter %d: steps=%d fired=%d, want %d live", iter, steps, fired, live)
		}
		if e.Pending() != 0 {
			t.Fatalf("iter %d: %d events left after Step drained", iter, e.Pending())
		}
	}
}

// Property: scheduling strictly before Now panics, scheduling at exactly Now
// or later succeeds — checked from inside handlers at random clock points.
func TestPropertyPastSchedulingPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		e := NewEngine()
		at := Time(1 + rng.Intn(50))
		offset := Time(rng.Float64() * 10)
		e.At(at, func() {
			// At exactly Now: fine.
			e.At(e.Now(), func() {})
			// Strictly in the past: must panic.
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("iter %d: scheduling at %v before now %v did not panic",
							iter, e.Now()-1-offset, e.Now())
					}
				}()
				e.At(e.Now()-1-offset, func() {})
			}()
		})
		e.Run()
	}
}

func TestAccessors(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 || e.Fired() != 0 {
		t.Fatal("fresh engine counters")
	}
	ev := e.At(2, func() {})
	if e.Pending() != 1 || ev.Time() != 2 {
		t.Fatalf("pending=%d time=%v", e.Pending(), ev.Time())
	}
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("fired = %d", e.Fired())
	}
	if Time(1.5).Duration().Seconds() != 1.5 {
		t.Fatal("Duration conversion")
	}
	if Time(2).String() != "2.000s" {
		t.Fatalf("String = %q", Time(2).String())
	}
}
