package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(5, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 0) })
	e.At(3, func() { got = append(got, 1) })
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(2, func() {
		times = append(times, e.Now())
		e.After(3, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 2 || times[1] != 5 {
		t.Fatalf("times = %v, want [2 5]", times)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=5, want 3", len(fired))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v after RunUntil(5), want 5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining event not fired: %v", fired)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {
			count++
			if count == 2 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after Halt, want 2", count)
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d after resume, want 5", count)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-3, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative After: fired=%v now=%v", fired, e.Now())
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing time
// order and the engine's clock equals the max time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		if len(raw) > 0 {
			max := Time(0)
			for _, r := range raw {
				if Time(r) > max {
					max = Time(r)
				}
			}
			if e.Now() != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved scheduling from inside events preserves determinism —
// two identical runs fire identical sequences.
func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			fired = append(fired, e.Now())
			if depth <= 0 {
				return
			}
			n := rng.Intn(3)
			for i := 0; i < n; i++ {
				e.After(Time(rng.Float64()*10), func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 5; i++ {
			e.At(Time(rng.Float64()*5), func() { spawn(4) })
		}
		e.Run()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAccessors(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 || e.Fired() != 0 {
		t.Fatal("fresh engine counters")
	}
	ev := e.At(2, func() {})
	if e.Pending() != 1 || ev.Time() != 2 {
		t.Fatalf("pending=%d time=%v", e.Pending(), ev.Time())
	}
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("fired = %d", e.Fired())
	}
	if Time(1.5).Duration().Seconds() != 1.5 {
		t.Fatal("Duration conversion")
	}
	if Time(2).String() != "2.000s" {
		t.Fatalf("String = %q", Time(2).String())
	}
}
