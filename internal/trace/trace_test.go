package trace

import (
	"encoding/json"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/provenance"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func TestFromProvenanceBasic(t *testing.T) {
	s := provenance.NewStore()
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "a", Name: "proc", Attempt: 1,
		StartedAt: 10, FinishedAt: 25, Node: "n-0001", MachineType: "x",
	})
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "b", Name: "proc", Attempt: 1,
		StartedAt: 25, FinishedAt: 60, Node: "n-0002", Failed: true,
	})
	doc := FromProvenance(s)
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].TS != 10e6 || doc.TraceEvents[0].Dur != 15e6 {
		t.Fatalf("event timing: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Cat != "failed" {
		t.Fatal("failed attempt not categorized")
	}
	if doc.Lanes() != 2 {
		t.Fatalf("lanes = %d", doc.Lanes())
	}
	if doc.Span() != 50 {
		t.Fatalf("span = %v, want 50", doc.Span())
	}
}

func TestJSONValid(t *testing.T) {
	s := provenance.NewStore()
	s.AddTask(provenance.TaskRecord{WorkflowID: "w", TaskID: "a", StartedAt: 0, FinishedAt: 1, Node: "n"})
	raw, err := FromProvenance(s).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["traceEvents"]; !ok {
		t.Fatal("missing traceEvents")
	}
}

func TestEndToEndFromCWSRun(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "k", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
		Count: 2,
	})
	cws := cwsi.New(rm.NewTaskManager(cl, nil), cwsi.Rank{}, nil)
	w := dag.ForkJoin(randx.New(5), 2, 4, dag.GenOpts{MeanDur: 60})
	if err := cws.RegisterWorkflow(w.Name, w); err != nil {
		t.Fatal(err)
	}
	ms, err := cws.RunWorkflow(w.Name, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc := FromProvenance(cws.Provenance())
	if len(doc.TraceEvents) != w.Len() {
		t.Fatalf("events = %d, want %d", len(doc.TraceEvents), w.Len())
	}
	// The trace span equals the makespan.
	if got := doc.Span(); got != float64(ms) {
		t.Fatalf("span = %v, makespan = %v", got, ms)
	}
	// At most 2 lanes (2 nodes).
	if doc.Lanes() > 2 {
		t.Fatalf("lanes = %d", doc.Lanes())
	}
}

func TestEmptyStore(t *testing.T) {
	doc := FromProvenance(provenance.NewStore())
	if len(doc.TraceEvents) != 0 || doc.Span() != 0 || doc.Lanes() != 0 {
		t.Fatal("empty store should give empty trace")
	}
}
