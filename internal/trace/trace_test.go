package trace

import (
	"encoding/json"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/provenance"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func TestFromProvenanceBasic(t *testing.T) {
	s := provenance.NewStore()
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "a", Name: "proc", Attempt: 1,
		StartedAt: 10, FinishedAt: 25, Node: "n-0001", MachineType: "x",
	})
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "b", Name: "proc", Attempt: 1,
		StartedAt: 25, FinishedAt: 60, Node: "n-0002", Failed: true,
	})
	doc := FromProvenance(s)
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].TS != 10e6 || doc.TraceEvents[0].Dur != 15e6 {
		t.Fatalf("event timing: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Cat != "failed" {
		t.Fatal("failed attempt not categorized")
	}
	if doc.Lanes() != 2 {
		t.Fatalf("lanes = %d", doc.Lanes())
	}
	if doc.Span() != 50 {
		t.Fatalf("span = %v, want 50", doc.Span())
	}
}

func TestJSONValid(t *testing.T) {
	s := provenance.NewStore()
	s.AddTask(provenance.TaskRecord{WorkflowID: "w", TaskID: "a", StartedAt: 0, FinishedAt: 1, Node: "n"})
	raw, err := FromProvenance(s).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if _, ok := parsed["traceEvents"]; !ok {
		t.Fatal("missing traceEvents")
	}
}

func TestEndToEndFromCWSRun(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "k", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
		Count: 2,
	})
	cws := cwsi.New(rm.NewTaskManager(cl, nil), cwsi.Rank{}, nil)
	w := dag.ForkJoin(randx.New(5), 2, 4, dag.GenOpts{MeanDur: 60})
	if err := cws.RegisterWorkflow(w.Name, w); err != nil {
		t.Fatal(err)
	}
	ms, err := cws.RunWorkflow(w.Name, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc := FromProvenance(cws.Provenance())
	if len(doc.TraceEvents) != w.Len() {
		t.Fatalf("events = %d, want %d", len(doc.TraceEvents), w.Len())
	}
	// The trace span equals the makespan.
	if got := doc.Span(); got != float64(ms) {
		t.Fatalf("span = %v, makespan = %v", got, ms)
	}
	// At most 2 lanes (2 nodes).
	if doc.Lanes() > 2 {
		t.Fatalf("lanes = %d", doc.Lanes())
	}
}

func TestEmptyStore(t *testing.T) {
	doc := FromProvenance(provenance.NewStore())
	if len(doc.TraceEvents) != 0 || doc.Span() != 0 || doc.Lanes() != 0 {
		t.Fatal("empty store should give empty trace")
	}
}

func TestSpanSeedsBothExtrema(t *testing.T) {
	// All events end before t=0: with hi anchored at 0 the span was
	// stretched to -lo instead of the true extent.
	d := &Doc{TraceEvents: []Event{
		{TS: -100e6, Dur: 20e6},
		{TS: -70e6, Dur: 10e6},
	}}
	if got := d.Span(); got != 40 {
		t.Fatalf("span = %v, want 40", got)
	}
	// Single event: span is its duration regardless of where it sits.
	d = &Doc{TraceEvents: []Event{{TS: 500e6, Dur: 30e6}}}
	if got := d.Span(); got != 30 {
		t.Fatalf("span = %v, want 30", got)
	}
}

func TestFromProvenanceSortedByTS(t *testing.T) {
	// Store order is completion order; emission must be (TS, TID) order.
	s := provenance.NewStore()
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "late", StartedAt: 50, FinishedAt: 60, Node: "n-0001",
	})
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "early", StartedAt: 5, FinishedAt: 90, Node: "n-0002",
	})
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "tie-lane2", StartedAt: 5, FinishedAt: 7, Node: "n-0003",
	})
	doc := FromProvenance(s)
	want := []string{"early", "tie-lane2", "late"}
	for i, name := range want {
		if doc.TraceEvents[i].Name != name {
			t.Fatalf("event %d = %q, want %q (order: %+v)", i, doc.TraceEvents[i].Name, name, doc.TraceEvents)
		}
	}
	if doc.TraceEvents[0].TID >= doc.TraceEvents[1].TID {
		t.Fatal("TS ties must break by TID")
	}
}

func TestFailedEventCarriesRecoveryMetadata(t *testing.T) {
	s := provenance.NewStore()
	s.AddTask(provenance.TaskRecord{
		WorkflowID: "w", TaskID: "a", Attempt: 1, StartedAt: 0, FinishedAt: 5,
		Node: "n-0001", Failed: true, Error: "node down",
	})
	if !s.AnnotateRetry("w", "a", 12.5, "retry(max=5)") {
		t.Fatal("AnnotateRetry found no record")
	}
	doc := FromProvenance(s)
	ev := doc.TraceEvents[0]
	if ev.Cat != "failed" {
		t.Fatalf("cat = %q", ev.Cat)
	}
	if ev.Args["retryDelaySec"] != 12.5 || ev.Args["retryPolicy"] != "retry(max=5)" {
		t.Fatalf("recovery metadata missing: %+v", ev.Args)
	}
	if ev.Args["error"] != "node down" {
		t.Fatalf("error missing: %+v", ev.Args)
	}
}
