// Package trace exports simulated executions as Chrome trace-event JSON
// (chrome://tracing / Perfetto), one lane per node, one complete event per
// task attempt. This gives the Gantt view Figures 4 and 5 are drawn from.
package trace

import (
	"encoding/json"
	"sort"

	"hhcw/internal/provenance"
)

// Event is one Chrome trace "complete" event (ph=X).
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Doc is a Chrome trace document.
type Doc struct {
	TraceEvents []Event        `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// FromProvenance builds a trace from a provenance store: every task attempt
// becomes an event in its node's lane; node lanes are stable (sorted by node
// name).
func FromProvenance(s *provenance.Store) *Doc {
	recs := s.All()
	nodes := map[string]int{}
	var names []string
	for _, r := range recs {
		if _, ok := nodes[r.Node]; !ok {
			nodes[r.Node] = 0
			names = append(names, r.Node)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		nodes[n] = i + 1
	}
	doc := &Doc{Metadata: map[string]any{"source": "hhcw provenance"}}
	for _, r := range recs {
		cat := "task"
		if r.Failed {
			cat = "failed"
		}
		args := map[string]any{
			"workflow": r.WorkflowID,
			"process":  r.Name,
			"attempt":  r.Attempt,
			"machine":  r.MachineType,
		}
		if r.Failed && r.Error != "" {
			args["error"] = r.Error
		}
		if r.RetryPolicy != "" {
			// Recovery metadata from the policy layer: how long the failed
			// attempt backed off before resubmission, and under which policy.
			args["retryDelaySec"] = r.RetryDelaySec
			args["retryPolicy"] = r.RetryPolicy
		}
		doc.TraceEvents = append(doc.TraceEvents, Event{
			Name: string(r.TaskID),
			Cat:  cat,
			Ph:   "X",
			TS:   float64(r.StartedAt) * 1e6,
			Dur:  float64(r.FinishedAt-r.StartedAt) * 1e6,
			PID:  1,
			TID:  nodes[r.Node],
			Args: args,
		})
	}
	// Chrome's trace viewer wants events in timestamp order; store order is
	// completion order, which interleaves lanes arbitrarily. Sort by (TS, TID)
	// so the output is stable and viewer-friendly.
	sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
		a, b := doc.TraceEvents[i], doc.TraceEvents[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.TID < b.TID
	})
	return doc
}

// MarshalJSON renders the document.
func (d *Doc) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", " ")
}

// Span returns the trace's wall-clock extent in seconds (0 if empty).
func (d *Doc) Span() float64 {
	lo, hi := 0.0, 0.0
	for i, e := range d.TraceEvents {
		start, end := e.TS/1e6, (e.TS+e.Dur)/1e6
		// Seed BOTH extrema from the first event: seeding only lo left hi
		// anchored at 0, so a trace whose events all end before t=0 reported
		// a span stretched to zero instead of its true extent.
		if i == 0 || start < lo {
			lo = start
		}
		if i == 0 || end > hi {
			hi = end
		}
	}
	return hi - lo
}

// Lanes returns the number of distinct node lanes.
func (d *Doc) Lanes() int {
	seen := map[int]bool{}
	for _, e := range d.TraceEvents {
		seen[e.TID] = true
	}
	return len(seen)
}
