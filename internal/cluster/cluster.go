// Package cluster models a heterogeneous HPC cluster: nodes with cores, GPUs
// and memory, grouped into node types with distinct machine speed factors
// (the heterogeneity Lotaru/Tarema exploit, §3.4), plus allocation tracking
// and fault injection (the node failures EnTK recovers from, §4.3).
//
// The cluster is a passive resource ledger: resource managers (internal/rm)
// and pilots (internal/pilot) decide placement; the cluster enforces capacity
// invariants and records utilization.
package cluster

import (
	"fmt"
	"sort"

	"hhcw/internal/metrics"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// NodeType describes a homogeneous family of nodes.
type NodeType struct {
	Name     string
	Cores    int
	GPUs     int
	MemBytes float64
	// SpeedFactor scales task durations: a task's nominal duration is
	// divided by SpeedFactor on this node type (1.0 = reference machine).
	SpeedFactor float64
	// IOFactor scales I/O-bound phase durations similarly.
	IOFactor float64
}

// Node is one machine in the cluster.
type Node struct {
	ID   int
	Type *NodeType

	freeCores int
	freeGPUs  int
	freeMem   float64
	down      bool
	// epoch increments at every failure; allocations remember the epoch
	// they were granted in so releases from before a crash cannot credit
	// capacity the repair already reset.
	epoch int
	// name memoizes Name(): the scheduler hot path records placements by
	// node name, and re-rendering it per record was a measurable share of
	// steady-state allocations.
	name string
}

// FreeCores returns currently unallocated cores.
func (n *Node) FreeCores() int { return n.freeCores }

// FreeGPUs returns currently unallocated GPUs.
func (n *Node) FreeGPUs() int { return n.freeGPUs }

// FreeMem returns currently unallocated memory in bytes.
func (n *Node) FreeMem() float64 { return n.freeMem }

// Down reports whether the node has failed.
func (n *Node) Down() bool { return n.down }

// Name returns a stable human-readable node name.
func (n *Node) Name() string {
	if n.name == "" {
		n.name = fmt.Sprintf("%s-%04d", n.Type.Name, n.ID)
	}
	return n.name
}

// Alloc is a resource reservation on a single node.
type Alloc struct {
	Node  *Node
	Cores int
	GPUs  int
	Mem   float64

	released bool
	epoch    int
}

// Revoked reports whether the node failed after this allocation was granted:
// the reservation no longer backs any capacity, even if the node has since
// been repaired.
func (a *Alloc) Revoked() bool { return a.epoch != a.Node.epoch }

// Cluster is a set of nodes plus utilization accounting.
type Cluster struct {
	Name  string
	nodes []*Node
	types []*NodeType
	idx   *capIndex

	eng *sim.Engine

	totalCores int
	totalGPUs  int
	usedCores  *metrics.Gauge
	usedGPUs   *metrics.Gauge
	downNodes  *metrics.Gauge

	// onNodeDown callbacks fire when a node fails, letting runtimes kill
	// and resubmit affected work.
	onNodeDown []func(*Node)
	// onNodeUp callbacks fire when a node is repaired, letting runtimes
	// kick their schedulers at restored capacity (without this, work queued
	// while the whole cluster was down would wait forever).
	onNodeUp []func(*Node)
}

// New builds a cluster on the given engine from (type, count) specs.
func New(eng *sim.Engine, name string, specs ...Spec) *Cluster {
	c := &Cluster{
		Name:      name,
		eng:       eng,
		usedCores: metrics.NewGauge(name + ".used_cores"),
		usedGPUs:  metrics.NewGauge(name + ".used_gpus"),
		downNodes: metrics.NewGauge(name + ".down_nodes"),
	}
	id := 0
	for _, s := range specs {
		nt := s.Type
		if nt.SpeedFactor == 0 {
			nt.SpeedFactor = 1
		}
		if nt.IOFactor == 0 {
			nt.IOFactor = 1
		}
		tcopy := nt
		c.types = append(c.types, &tcopy)
		// One slab per spec instead of one heap object per node: large
		// clusters (the paper's 8,000-node Frontier runs) are rebuilt per
		// simulation, and per-node allocation dominated construction.
		slab := make([]Node, s.Count)
		for i := 0; i < s.Count; i++ {
			n := &slab[i]
			n.ID = id
			n.Type = &tcopy
			n.freeCores = tcopy.Cores
			n.freeGPUs = tcopy.GPUs
			n.freeMem = tcopy.MemBytes
			id++
			c.nodes = append(c.nodes, n)
			c.totalCores += tcopy.Cores
			c.totalGPUs += tcopy.GPUs
		}
	}
	c.idx = newCapIndex(c.nodes)
	return c
}

// Reset returns the cluster to its just-constructed state in place: every
// node back to full free capacity, up, and at epoch zero; the segment index
// rebuilt over the same backing arrays; the utilization gauges truncated.
// Construction-time identity survives — node slabs, memoized node names,
// folded-metrics mode, and registered OnNodeDown/OnNodeUp subscribers are all
// retained, which is exactly why warm sessions must not re-register their
// callbacks after Reset.
func (c *Cluster) Reset() {
	for _, n := range c.nodes {
		n.freeCores = n.Type.Cores
		n.freeGPUs = n.Type.GPUs
		n.freeMem = n.Type.MemBytes
		n.down = false
		n.epoch = 0
	}
	c.idx.reset()
	c.usedCores.Reset()
	c.usedGPUs.Reset()
	c.downNodes.Reset()
}

// Spec pairs a node type with a node count for cluster construction.
type Spec struct {
	Type  NodeType
	Count int
}

// Engine returns the simulation engine the cluster runs on.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Nodes returns all nodes (including down ones).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Types returns the node types in declaration order.
func (c *Cluster) Types() []*NodeType { return c.types }

// TotalCores returns the cluster-wide core count.
func (c *Cluster) TotalCores() int { return c.totalCores }

// TotalGPUs returns the cluster-wide GPU count.
func (c *Cluster) TotalGPUs() int { return c.totalGPUs }

// NodeCount returns the number of nodes.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// UpNodes returns nodes that are not down.
func (c *Cluster) UpNodes() []*Node {
	up := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !n.down {
			up = append(up, n)
		}
	}
	return up
}

// UsedCoresSeries exposes the allocated-cores trajectory for Fig-4-style
// utilization plots.
func (c *Cluster) UsedCoresSeries() *metrics.Gauge { return c.usedCores }

// UsedGPUsSeries exposes the allocated-GPU trajectory.
func (c *Cluster) UsedGPUsSeries() *metrics.Gauge { return c.usedGPUs }

// FoldMetrics switches the cluster's trajectory series (used cores, used
// GPUs, down nodes) to running-aggregate mode so a million-allocation run
// retains no per-event samples. Whole-run Utilization/GPUUtilization stay
// bit-identical (the folded integral accumulates the same terms in the same
// order); point-level trajectory queries become unavailable. Must be called
// before any allocation or fault activity.
func (c *Cluster) FoldMetrics() {
	c.usedCores.Fold()
	c.usedGPUs.Fold()
	c.downNodes.Fold()
}

// Allocate reserves cores/GPUs/memory on node n. It returns an error when
// the node is down or lacks capacity; partial allocation never occurs.
func (c *Cluster) Allocate(n *Node, cores, gpus int, mem float64) (*Alloc, error) {
	if n.down {
		return nil, fmt.Errorf("cluster: node %s is down", n.Name())
	}
	if cores < 0 || gpus < 0 || mem < 0 {
		return nil, fmt.Errorf("cluster: negative resource request (%d cores, %d gpus, %.0f mem)", cores, gpus, mem)
	}
	if cores > n.freeCores || gpus > n.freeGPUs || mem > n.freeMem {
		return nil, fmt.Errorf("cluster: node %s cannot fit %d cores/%d gpus/%.0fB (free %d/%d/%.0fB)",
			n.Name(), cores, gpus, mem, n.freeCores, n.freeGPUs, n.freeMem)
	}
	n.freeCores -= cores
	n.freeGPUs -= gpus
	n.freeMem -= mem
	c.idx.update(n)
	c.usedCores.AddDelta(c.eng.Now(), float64(cores))
	c.usedGPUs.AddDelta(c.eng.Now(), float64(gpus))
	return &Alloc{Node: n, Cores: cores, GPUs: gpus, Mem: mem, epoch: n.epoch}, nil
}

// AllocateInto is Allocate backed by a caller-provided record: dst is
// overwritten with the new reservation on success and untouched on error.
// It lets a manager that grants and releases one reservation per task
// recycle records instead of heap-allocating each. The caller must own dst
// exclusively and must not reuse it until the previous reservation written
// through it has been released.
func (c *Cluster) AllocateInto(dst *Alloc, n *Node, cores, gpus int, mem float64) error {
	if n.down {
		return fmt.Errorf("cluster: node %s is down", n.Name())
	}
	if cores < 0 || gpus < 0 || mem < 0 {
		return fmt.Errorf("cluster: negative resource request (%d cores, %d gpus, %.0f mem)", cores, gpus, mem)
	}
	if cores > n.freeCores || gpus > n.freeGPUs || mem > n.freeMem {
		return fmt.Errorf("cluster: node %s cannot fit %d cores/%d gpus/%.0fB (free %d/%d/%.0fB)",
			n.Name(), cores, gpus, mem, n.freeCores, n.freeGPUs, n.freeMem)
	}
	n.freeCores -= cores
	n.freeGPUs -= gpus
	n.freeMem -= mem
	c.idx.update(n)
	c.usedCores.AddDelta(c.eng.Now(), float64(cores))
	c.usedGPUs.AddDelta(c.eng.Now(), float64(gpus))
	*dst = Alloc{Node: n, Cores: cores, GPUs: gpus, Mem: mem, epoch: n.epoch}
	return nil
}

// AllocateAll reserves every listed node in full (the whole-node grants a
// batch manager hands out), backing all reservations with one slab instead
// of one heap object per node. On any failure it rolls the granted prefix
// back and returns the error, leaving the cluster unchanged.
func (c *Cluster) AllocateAll(nodes []*Node) ([]*Alloc, error) {
	slab := make([]Alloc, len(nodes))
	out := make([]*Alloc, len(nodes))
	now := c.eng.Now()
	for i, n := range nodes {
		if n.down {
			for _, a := range out[:i] {
				c.Release(a)
			}
			return nil, fmt.Errorf("cluster: node %s is down", n.Name())
		}
		if n.freeCores < n.Type.Cores || n.freeGPUs < n.Type.GPUs || n.freeMem < n.Type.MemBytes {
			for _, a := range out[:i] {
				c.Release(a)
			}
			return nil, fmt.Errorf("cluster: node %s is not wholly free (%d/%d/%.0fB free)",
				n.Name(), n.freeCores, n.freeGPUs, n.freeMem)
		}
		n.freeCores -= n.Type.Cores
		n.freeGPUs -= n.Type.GPUs
		n.freeMem -= n.Type.MemBytes
		c.idx.update(n)
		c.usedCores.AddDelta(now, float64(n.Type.Cores))
		c.usedGPUs.AddDelta(now, float64(n.Type.GPUs))
		slab[i] = Alloc{Node: n, Cores: n.Type.Cores, GPUs: n.Type.GPUs, Mem: n.Type.MemBytes, epoch: n.epoch}
		out[i] = &slab[i]
	}
	return out, nil
}

// Release returns an allocation's resources. Releasing twice is a no-op, so
// failure paths can release defensively. A revoked allocation (node failed
// after the grant) only settles the utilization gauges: the node's free
// counters were reset by RepairNode, and crediting them again would
// manufacture capacity beyond the node's physical total.
func (c *Cluster) Release(a *Alloc) {
	if a == nil || a.released {
		return
	}
	a.released = true
	c.usedCores.AddDelta(c.eng.Now(), -float64(a.Cores))
	c.usedGPUs.AddDelta(c.eng.Now(), -float64(a.GPUs))
	if a.Revoked() {
		return
	}
	a.Node.freeCores += a.Cores
	a.Node.freeGPUs += a.GPUs
	a.Node.freeMem += a.Mem
	c.idx.update(a.Node)
}

// OnNodeDown registers a callback invoked when any node fails.
func (c *Cluster) OnNodeDown(fn func(*Node)) { c.onNodeDown = append(c.onNodeDown, fn) }

// OnNodeUp registers a callback invoked when any node is repaired.
func (c *Cluster) OnNodeUp(fn func(*Node)) { c.onNodeUp = append(c.onNodeUp, fn) }

// FailNode marks a node down immediately and notifies subscribers. Resources
// currently allocated on the node are NOT auto-released: the owning runtime
// must release them from its failure handler (mirroring how a real RM reaps
// jobs from a dead node).
func (c *Cluster) FailNode(n *Node) {
	if n.down {
		return
	}
	n.down = true
	n.epoch++
	c.idx.update(n)
	c.downNodes.AddDelta(c.eng.Now(), 1)
	for _, fn := range c.onNodeDown {
		fn(n)
	}
}

// RepairNode brings a failed node back with full capacity free and notifies
// subscribers. Allocations that were live at failure time are revoked (their
// epoch no longer matches), so a straggling Release cannot credit free
// capacity on top of this reset.
func (c *Cluster) RepairNode(n *Node) {
	if !n.down {
		return
	}
	n.down = false
	n.freeCores = n.Type.Cores
	n.freeGPUs = n.Type.GPUs
	n.freeMem = n.Type.MemBytes
	c.idx.update(n)
	c.downNodes.AddDelta(c.eng.Now(), -1)
	for _, fn := range c.onNodeUp {
		fn(n)
	}
}

// Utilization returns time-averaged core utilization over [from,to] as a
// fraction of total cores.
func (c *Cluster) Utilization(from, to sim.Time) float64 {
	if c.totalCores == 0 || to <= from {
		return 0
	}
	return c.usedCores.Integral(from, to) / (float64(c.totalCores) * float64(to-from))
}

// GPUUtilization returns time-averaged GPU utilization over [from,to].
func (c *Cluster) GPUUtilization(from, to sim.Time) float64 {
	if c.totalGPUs == 0 || to <= from {
		return 0
	}
	return c.usedGPUs.Integral(from, to) / (float64(c.totalGPUs) * float64(to-from))
}

// FaultInjector schedules random node failures, modeling the hardware faults
// the paper's Frontier run hit (a single node failure killed 8 tasks, §4.3).
type FaultInjector struct {
	cluster *Cluster
	rng     *randx.Source
}

// NewFaultInjector returns an injector bound to the cluster.
func NewFaultInjector(c *Cluster, rng *randx.Source) *FaultInjector {
	return &FaultInjector{cluster: c, rng: rng}
}

// ScheduleNodeFailures schedules exactly count distinct node failures at
// uniform random times in (0, horizon). It returns the failed nodes in
// failure-time order.
func (f *FaultInjector) ScheduleNodeFailures(count int, horizon sim.Time) []*Node {
	nodes := f.cluster.UpNodes()
	if count > len(nodes) {
		count = len(nodes)
	}
	perm := f.rng.Perm(len(nodes))
	type plan struct {
		at   sim.Time
		node *Node
	}
	plans := make([]plan, count)
	for i := 0; i < count; i++ {
		plans[i] = plan{at: sim.Time(f.rng.Float64() * float64(horizon)), node: nodes[perm[i]]}
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].at < plans[j].at })
	out := make([]*Node, count)
	for i, p := range plans {
		p := p
		out[i] = p.node
		f.cluster.eng.At(p.at, func() { f.cluster.FailNode(p.node) })
	}
	return out
}

// Frontier builds a Frontier-like cluster: the paper's runs used nodes with
// 64 cores (56 usable for compute after 8 reserved for system processes) and
// 8 GPUs. We model the usable 56 cores + 8 GPUs directly so 8000 nodes gives
// the paper's 448,000 CPU cores and 64,000 GPUs (Fig 4 caption).
func Frontier(eng *sim.Engine, nodes int) *Cluster {
	return New(eng, "frontier", Spec{
		Type: NodeType{
			Name:        "frontier",
			Cores:       56,
			GPUs:        8,
			MemBytes:    512e9,
			SpeedFactor: 1.0,
			IOFactor:    1.0,
		},
		Count: nodes,
	})
}

// Heterogeneous builds a small heterogeneous commodity cluster like the
// Lotaru/Tarema test-beds: three node families with distinct speed factors.
func Heterogeneous(eng *sim.Engine, perType int) *Cluster {
	return New(eng, "hetero",
		Spec{Type: NodeType{Name: "a", Cores: 8, MemBytes: 32e9, SpeedFactor: 1.0, IOFactor: 1.0}, Count: perType},
		Spec{Type: NodeType{Name: "b", Cores: 16, MemBytes: 64e9, SpeedFactor: 1.4, IOFactor: 1.2}, Count: perType},
		Spec{Type: NodeType{Name: "c", Cores: 32, MemBytes: 128e9, SpeedFactor: 2.0, IOFactor: 1.5}, Count: perType},
	)
}
