package cluster

import (
	"testing"

	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// The capacity index must be indistinguishable from a naive rescan of the
// node array at every moment — the scheduler's determinism guarantee rests
// on it. These tests drive random mutation tapes (allocate / release / fail
// / repair, including a full-outage storm) and compare every query form
// against the rescan oracle, plus a structural invariant check that
// recomputes the segment tree from the leaves.

func oracleFeasible(c *Cluster, cores, gpus int, mem float64) []*Node {
	var out []*Node
	for _, n := range c.Nodes() {
		if n.Down() {
			continue
		}
		if n.FreeCores() >= cores && n.FreeGPUs() >= gpus && n.FreeMem() >= mem {
			out = append(out, n)
		}
	}
	return out
}

func oracleIdle(c *Cluster) []*Node {
	var out []*Node
	for _, n := range c.Nodes() {
		if !n.Down() && n.FreeCores() == n.Type.Cores {
			out = append(out, n)
		}
	}
	return out
}

func sameNodes(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkIndexInvariants rebuilds every internal segment from the leaves and
// compares it against the incrementally maintained tree.
func checkIndexInvariants(t *testing.T, c *Cluster) {
	t.Helper()
	ix := c.idx
	// Leaves must mirror the node free counters (down nodes contribute zero).
	for i, n := range ix.nodes {
		p := ix.base + i
		wantCores, wantGPUs, wantMem, wantIdle := 0, 0, 0.0, uint8(0)
		if !n.down {
			wantCores, wantGPUs, wantMem = n.freeCores, n.freeGPUs, n.freeMem
			if n.freeCores == n.Type.Cores {
				wantIdle = 1
			}
		}
		if ix.maxCores[p] != wantCores || ix.maxGPUs[p] != wantGPUs ||
			ix.maxMem[p] != wantMem || ix.anyIdle[p] != wantIdle {
			t.Fatalf("leaf %d stale: (%d,%d,%v,%d), node has (%d,%d,%v,%d)",
				i, ix.maxCores[p], ix.maxGPUs[p], ix.maxMem[p], ix.anyIdle[p],
				wantCores, wantGPUs, wantMem, wantIdle)
		}
	}
	for i := ix.base - 1; i >= 1; i-- {
		l, r := 2*i, 2*i+1
		maxI := func(a, b int) int {
			if a > b {
				return a
			}
			return b
		}
		maxF := func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		}
		if ix.maxCores[i] != maxI(ix.maxCores[l], ix.maxCores[r]) ||
			ix.maxGPUs[i] != maxI(ix.maxGPUs[l], ix.maxGPUs[r]) ||
			ix.maxMem[i] != maxF(ix.maxMem[l], ix.maxMem[r]) ||
			ix.anyIdle[i] != ix.anyIdle[l]|ix.anyIdle[r] {
			t.Fatalf("segment %d inconsistent with children", i)
		}
	}
}

// compareAllQueries checks every query form against the oracle for a set of
// request shapes spanning trivial to infeasible.
func compareAllQueries(t *testing.T, c *Cluster) {
	t.Helper()
	shapes := []struct {
		cores, gpus int
		mem         float64
	}{
		{1, 0, 0},
		{2, 1, 8e9},
		{8, 0, 32e9},
		{16, 2, 64e9},
		{1000, 0, 0}, // infeasible everywhere
	}
	for _, q := range shapes {
		want := oracleFeasible(c, q.cores, q.gpus, q.mem)
		got := c.AppendCandidates(nil, q.cores, q.gpus, q.mem)
		if !sameNodes(want, got) {
			t.Fatalf("AppendCandidates(%d,%d,%v) = %d nodes, oracle %d",
				q.cores, q.gpus, q.mem, len(got), len(want))
		}
		var visited []*Node
		c.Candidates(q.cores, q.gpus, q.mem, func(n *Node) bool {
			visited = append(visited, n)
			return true
		})
		if !sameNodes(want, visited) {
			t.Fatalf("Candidates(%d,%d,%v) visited %d nodes, oracle %d",
				q.cores, q.gpus, q.mem, len(visited), len(want))
		}
	}
	wantIdle := oracleIdle(c)
	if got := c.AppendIdleNodes(nil); !sameNodes(wantIdle, got) {
		t.Fatalf("AppendIdleNodes = %d nodes, oracle %d", len(got), len(wantIdle))
	}
	var idleVisited []*Node
	c.IdleNodes(func(n *Node) bool {
		idleVisited = append(idleVisited, n)
		return true
	})
	if !sameNodes(wantIdle, idleVisited) {
		t.Fatalf("IdleNodes visited %d nodes, oracle %d", len(idleVisited), len(wantIdle))
	}
}

func TestIndexMatchesRescanUnderChaos(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		eng := sim.NewEngine()
		c := Heterogeneous(eng, 7) // 21 nodes, 3 families, not a power of two
		r := randx.New(seed)
		var live []*Alloc
		for op := 0; op < 600; op++ {
			switch r.Intn(5) {
			case 0, 1: // allocate (twice the weight: keeps the cluster busy)
				n := c.Nodes()[r.Intn(c.NodeCount())]
				a, err := c.Allocate(n, 1+r.Intn(8), r.Intn(3), float64(r.Intn(16))*4e9)
				if err == nil {
					live = append(live, a)
				}
			case 2: // release
				if len(live) > 0 {
					i := r.Intn(len(live))
					c.Release(live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			case 3: // node failure
				c.FailNode(c.Nodes()[r.Intn(c.NodeCount())])
			case 4: // repair
				c.RepairNode(c.Nodes()[r.Intn(c.NodeCount())])
			}
			compareAllQueries(t, c)
			if op%100 == 0 {
				checkIndexInvariants(t, c)
			}
		}
		checkIndexInvariants(t, c)
	}
}

// TestIndexStormProfile is the correlated-failure profile: every node fails,
// then everything is repaired at once, with straggling releases of revoked
// allocations in between — the sequence most likely to desynchronize an
// incremental index from the truth.
func TestIndexStormProfile(t *testing.T) {
	eng := sim.NewEngine()
	c := Heterogeneous(eng, 6) // 18 nodes
	r := randx.New(99)
	var live []*Alloc
	for i := 0; i < 40; i++ {
		n := c.Nodes()[r.Intn(c.NodeCount())]
		if a, err := c.Allocate(n, 1+r.Intn(4), 0, 1e9); err == nil {
			live = append(live, a)
		}
	}
	for _, n := range c.Nodes() {
		c.FailNode(n)
		compareAllQueries(t, c)
	}
	if got := c.AppendCandidates(nil, 1, 0, 0); len(got) != 0 {
		t.Fatalf("storm: %d candidates on a fully failed cluster", len(got))
	}
	if got := c.AppendIdleNodes(nil); len(got) != 0 {
		t.Fatalf("storm: %d idle nodes on a fully failed cluster", len(got))
	}
	checkIndexInvariants(t, c)
	// Straggling releases of revoked allocations must not resurrect capacity.
	for _, a := range live[:len(live)/2] {
		c.Release(a)
		compareAllQueries(t, c)
	}
	for _, n := range c.Nodes() {
		c.RepairNode(n)
		compareAllQueries(t, c)
	}
	// Remaining stragglers release after repair; the epoch check must keep
	// them from crediting the reset counters.
	for _, a := range live[len(live)/2:] {
		c.Release(a)
		compareAllQueries(t, c)
	}
	checkIndexInvariants(t, c)
	if got := c.AppendIdleNodes(nil); len(got) != c.NodeCount() {
		t.Fatalf("after full repair %d/%d nodes idle", len(got), c.NodeCount())
	}
}

func TestCandidatesEarlyStop(t *testing.T) {
	eng := sim.NewEngine()
	c := Heterogeneous(eng, 4)
	visits := 0
	c.Candidates(1, 0, 0, func(n *Node) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early-stop visit count = %d, want 1", visits)
	}
	visits = 0
	c.IdleNodes(func(n *Node) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("idle early-stop visit count = %d, want 3", visits)
	}
}
