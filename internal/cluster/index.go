package cluster

// Incrementally maintained free-capacity index. Scheduling a dense pending
// queue previously rescanned every node per submission — O(pending × nodes)
// per dispatch round. The index is a binary segment tree over the node array
// (leaves in node-ID order); each internal segment stores the per-dimension
// maxima (free cores, free GPUs, free memory) of its subtree, with down
// nodes contributing zero capacity, plus a "whole node idle" flag for the
// batch manager's node-granular backfill.
//
// Queries descend only into segments whose maxima can satisfy the request,
// so they visit feasible nodes in exactly the order the old full scan did —
// ascending node ID — which is what keeps first-fit, round-robin, and every
// other deterministic tie-break byte-identical to the rescan kernel. Updates
// are O(log n) and hang off the only four mutation points (Allocate,
// Release, FailNode, RepairNode), so the tree can never drift from the
// per-node free counters it summarizes.
type capIndex struct {
	nodes []*Node // leaves, in ID order
	base  int     // first leaf position (power of two ≥ len(nodes))

	// Per-segment maxima over the subtree, indexed like a binary heap:
	// segment i has children 2i and 2i+1; leaves start at base.
	maxCores []int
	maxGPUs  []int
	maxMem   []float64
	// anyIdle is 1 when some subtree leaf is an up node with every core
	// free — the batch manager's definition of a free node.
	anyIdle []uint8
}

func newCapIndex(nodes []*Node) *capIndex {
	base := 1
	for base < len(nodes) {
		base *= 2
	}
	ix := &capIndex{
		nodes:    nodes,
		base:     base,
		maxCores: make([]int, 2*base),
		maxGPUs:  make([]int, 2*base),
		maxMem:   make([]float64, 2*base),
		anyIdle:  make([]uint8, 2*base),
	}
	for i, n := range nodes {
		ix.writeLeaf(i, n)
	}
	for i := base - 1; i >= 1; i-- {
		ix.pull(i)
	}
	return ix
}

// reset rebuilds the whole tree in place over the same backing arrays, for
// use after the node ledger has been bulk-reset. Padding leaves past
// len(nodes) were zeroed at construction and are never written, so they stay
// correct.
func (ix *capIndex) reset() {
	for i, n := range ix.nodes {
		ix.writeLeaf(i, n)
	}
	for i := ix.base - 1; i >= 1; i-- {
		ix.pull(i)
	}
}

func (ix *capIndex) writeLeaf(i int, n *Node) {
	p := ix.base + i
	if n.down {
		ix.maxCores[p], ix.maxGPUs[p], ix.maxMem[p], ix.anyIdle[p] = 0, 0, 0, 0
		return
	}
	ix.maxCores[p] = n.freeCores
	ix.maxGPUs[p] = n.freeGPUs
	ix.maxMem[p] = n.freeMem
	// Mirrors the batch manager's historical predicate exactly: a node is
	// "idle" when all cores are free, regardless of GPU/memory state.
	if n.freeCores == n.Type.Cores {
		ix.anyIdle[p] = 1
	} else {
		ix.anyIdle[p] = 0
	}
}

func (ix *capIndex) pull(i int) {
	l, r := 2*i, 2*i+1
	c := ix.maxCores[l]
	if ix.maxCores[r] > c {
		c = ix.maxCores[r]
	}
	ix.maxCores[i] = c
	g := ix.maxGPUs[l]
	if ix.maxGPUs[r] > g {
		g = ix.maxGPUs[r]
	}
	ix.maxGPUs[i] = g
	m := ix.maxMem[l]
	if ix.maxMem[r] > m {
		m = ix.maxMem[r]
	}
	ix.maxMem[i] = m
	ix.anyIdle[i] = ix.anyIdle[l] | ix.anyIdle[r]
}

// update refreshes node n's leaf and the path to the root.
func (ix *capIndex) update(n *Node) {
	ix.writeLeaf(n.ID, n)
	for i := (ix.base + n.ID) / 2; i >= 1; i /= 2 {
		ix.pull(i)
	}
}

// visitFeasible walks the subtree rooted at seg in leaf order, invoking
// visit on every up node that can fit the request. It returns false when
// visit aborted the walk.
func (ix *capIndex) visitFeasible(seg, cores, gpus int, mem float64, visit func(*Node) bool) bool {
	if ix.maxCores[seg] < cores || ix.maxGPUs[seg] < gpus || ix.maxMem[seg] < mem {
		return true
	}
	if seg >= ix.base {
		i := seg - ix.base
		if i >= len(ix.nodes) {
			return true
		}
		return visit(ix.nodes[i])
	}
	if !ix.visitFeasible(2*seg, cores, gpus, mem, visit) {
		return false
	}
	return ix.visitFeasible(2*seg+1, cores, gpus, mem, visit)
}

// appendFeasible is visitFeasible's collecting form: recursion carries the
// destination slice instead of a capturing closure, so the dispatch hot path
// allocates nothing per query.
func (ix *capIndex) appendFeasible(dst []*Node, seg, cores, gpus int, mem float64) []*Node {
	if ix.maxCores[seg] < cores || ix.maxGPUs[seg] < gpus || ix.maxMem[seg] < mem {
		return dst
	}
	if seg >= ix.base {
		if i := seg - ix.base; i < len(ix.nodes) {
			dst = append(dst, ix.nodes[i])
		}
		return dst
	}
	dst = ix.appendFeasible(dst, 2*seg, cores, gpus, mem)
	return ix.appendFeasible(dst, 2*seg+1, cores, gpus, mem)
}

// appendIdle is visitIdle's collecting form.
func (ix *capIndex) appendIdle(dst []*Node, seg int) []*Node {
	if ix.anyIdle[seg] == 0 {
		return dst
	}
	if seg >= ix.base {
		if i := seg - ix.base; i < len(ix.nodes) {
			dst = append(dst, ix.nodes[i])
		}
		return dst
	}
	dst = ix.appendIdle(dst, 2*seg)
	return ix.appendIdle(dst, 2*seg+1)
}

// visitIdle walks wholly-idle up nodes in leaf order.
func (ix *capIndex) visitIdle(seg int, visit func(*Node) bool) bool {
	if ix.anyIdle[seg] == 0 {
		return true
	}
	if seg >= ix.base {
		i := seg - ix.base
		if i >= len(ix.nodes) {
			return true
		}
		return visit(ix.nodes[i])
	}
	if !ix.visitIdle(2*seg, visit) {
		return false
	}
	return ix.visitIdle(2*seg+1, visit)
}

// Candidates visits every up node that can currently fit (cores, gpus, mem),
// in ascending node-ID order — the same order the historical full scan over
// Nodes() produced — skipping whole subtrees that cannot satisfy the
// request. visit returning false stops the walk early.
func (c *Cluster) Candidates(cores, gpus int, mem float64, visit func(*Node) bool) {
	if len(c.nodes) == 0 {
		return
	}
	c.idx.visitFeasible(1, cores, gpus, mem, visit)
}

// AppendCandidates appends the nodes Candidates would visit to dst and
// returns it — the closure-free form the dispatch hot path uses with a
// reusable scratch slice.
func (c *Cluster) AppendCandidates(dst []*Node, cores, gpus int, mem float64) []*Node {
	if len(c.nodes) == 0 {
		return dst
	}
	return c.idx.appendFeasible(dst, 1, cores, gpus, mem)
}

// IdleNodes visits every up node with all cores free (the batch manager's
// whole-node-free predicate) in ascending node-ID order. visit returning
// false stops the walk early.
func (c *Cluster) IdleNodes(visit func(*Node) bool) {
	if len(c.nodes) == 0 {
		return
	}
	c.idx.visitIdle(1, visit)
}

// AppendIdleNodes appends the nodes IdleNodes would visit to dst and
// returns it.
func (c *Cluster) AppendIdleNodes(dst []*Node) []*Node {
	if len(c.nodes) == 0 {
		return dst
	}
	return c.idx.appendIdle(dst, 1)
}
