package cluster

import (
	"testing"
	"testing/quick"

	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func twoNodeCluster(eng *sim.Engine) *Cluster {
	return New(eng, "t", Spec{
		Type:  NodeType{Name: "n", Cores: 4, GPUs: 2, MemBytes: 100},
		Count: 2,
	})
}

func TestAllocateRelease(t *testing.T) {
	eng := sim.NewEngine()
	c := twoNodeCluster(eng)
	n := c.Nodes()[0]
	a, err := c.Allocate(n, 3, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if n.FreeCores() != 1 || n.FreeGPUs() != 1 || n.FreeMem() != 50 {
		t.Fatalf("free after alloc: %d cores %d gpus %v mem", n.FreeCores(), n.FreeGPUs(), n.FreeMem())
	}
	c.Release(a)
	if n.FreeCores() != 4 || n.FreeGPUs() != 2 || n.FreeMem() != 100 {
		t.Fatal("release did not restore capacity")
	}
	// Double release is a no-op.
	c.Release(a)
	if n.FreeCores() != 4 {
		t.Fatal("double release inflated capacity")
	}
}

func TestAllocateOverCapacity(t *testing.T) {
	eng := sim.NewEngine()
	c := twoNodeCluster(eng)
	n := c.Nodes()[0]
	if _, err := c.Allocate(n, 5, 0, 0); err == nil {
		t.Fatal("over-core allocation succeeded")
	}
	if _, err := c.Allocate(n, 0, 3, 0); err == nil {
		t.Fatal("over-GPU allocation succeeded")
	}
	if _, err := c.Allocate(n, 0, 0, 101); err == nil {
		t.Fatal("over-memory allocation succeeded")
	}
	if _, err := c.Allocate(n, -1, 0, 0); err == nil {
		t.Fatal("negative allocation succeeded")
	}
	// Failed allocations must not leak capacity.
	if n.FreeCores() != 4 || n.FreeGPUs() != 2 || n.FreeMem() != 100 {
		t.Fatal("failed allocation changed capacity")
	}
}

func TestFailNode(t *testing.T) {
	eng := sim.NewEngine()
	c := twoNodeCluster(eng)
	n := c.Nodes()[0]
	var failed *Node
	c.OnNodeDown(func(x *Node) { failed = x })
	c.FailNode(n)
	if failed != n {
		t.Fatal("OnNodeDown not invoked")
	}
	if !n.Down() {
		t.Fatal("node not marked down")
	}
	if _, err := c.Allocate(n, 1, 0, 0); err == nil {
		t.Fatal("allocation on down node succeeded")
	}
	if got := len(c.UpNodes()); got != 1 {
		t.Fatalf("UpNodes = %d, want 1", got)
	}
	c.RepairNode(n)
	if n.Down() || n.FreeCores() != 4 {
		t.Fatal("repair did not restore node")
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine()
	c := twoNodeCluster(eng) // 8 cores total
	n := c.Nodes()[0]
	var a *Alloc
	eng.At(0, func() { a, _ = c.Allocate(n, 4, 0, 0) })
	eng.At(10, func() { c.Release(a) })
	eng.At(20, func() {})
	eng.Run()
	// 4 cores for 10s out of 8 cores for 20s = 0.25.
	if got := c.Utilization(0, 20); got != 0.25 {
		t.Fatalf("Utilization = %v, want 0.25", got)
	}
}

func TestGPUUtilization(t *testing.T) {
	eng := sim.NewEngine()
	c := twoNodeCluster(eng) // 4 GPUs total
	n := c.Nodes()[0]
	var a *Alloc
	eng.At(0, func() { a, _ = c.Allocate(n, 0, 2, 0) })
	eng.At(5, func() { c.Release(a) })
	eng.At(10, func() {})
	eng.Run()
	if got := c.GPUUtilization(0, 10); got != 0.25 {
		t.Fatalf("GPUUtilization = %v, want 0.25", got)
	}
}

func TestFaultInjectorCount(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, "t", Spec{Type: NodeType{Name: "n", Cores: 1}, Count: 50})
	fi := NewFaultInjector(c, randx.New(1))
	failed := fi.ScheduleNodeFailures(5, 100)
	if len(failed) != 5 {
		t.Fatalf("planned %d failures, want 5", len(failed))
	}
	eng.Run()
	down := 0
	for _, n := range c.Nodes() {
		if n.Down() {
			down++
		}
	}
	if down != 5 {
		t.Fatalf("%d nodes down, want 5", down)
	}
	// Distinct nodes.
	seen := map[int]bool{}
	for _, n := range failed {
		if seen[n.ID] {
			t.Fatal("duplicate node failed")
		}
		seen[n.ID] = true
	}
}

func TestFaultInjectorClampsToClusterSize(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, "t", Spec{Type: NodeType{Name: "n", Cores: 1}, Count: 3})
	fi := NewFaultInjector(c, randx.New(2))
	if got := len(fi.ScheduleNodeFailures(10, 100)); got != 3 {
		t.Fatalf("clamped failures = %d, want 3", got)
	}
}

func TestFrontierShape(t *testing.T) {
	eng := sim.NewEngine()
	c := Frontier(eng, 8000)
	if c.TotalCores() != 448000 {
		t.Fatalf("Frontier cores = %d, want 448000", c.TotalCores())
	}
	if c.TotalGPUs() != 64000 {
		t.Fatalf("Frontier GPUs = %d, want 64000", c.TotalGPUs())
	}
}

func TestHeterogeneousFactors(t *testing.T) {
	eng := sim.NewEngine()
	c := Heterogeneous(eng, 2)
	if c.NodeCount() != 6 {
		t.Fatalf("NodeCount = %d", c.NodeCount())
	}
	if len(c.Types()) != 3 {
		t.Fatalf("Types = %d", len(c.Types()))
	}
	if c.Types()[0].SpeedFactor >= c.Types()[2].SpeedFactor {
		t.Fatal("expected increasing speed factors")
	}
}

func TestDefaultFactorsFillIn(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, "t", Spec{Type: NodeType{Name: "n", Cores: 1}, Count: 1})
	nt := c.Types()[0]
	if nt.SpeedFactor != 1 || nt.IOFactor != 1 {
		t.Fatalf("default factors = %v/%v, want 1/1", nt.SpeedFactor, nt.IOFactor)
	}
}

// Property: any sequence of valid allocate/release pairs conserves capacity.
func TestCapacityConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine()
		c := New(eng, "t", Spec{Type: NodeType{Name: "n", Cores: 10, GPUs: 4, MemBytes: 1000}, Count: 3})
		var live []*Alloc
		for _, op := range ops {
			n := c.Nodes()[int(op)%3]
			if op%2 == 0 {
				cores := int(op/2)%4 + 1
				if a, err := c.Allocate(n, cores, int(op)%2, float64(op)); err == nil {
					live = append(live, a)
				}
			} else if len(live) > 0 {
				c.Release(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		for _, a := range live {
			c.Release(a)
		}
		for _, n := range c.Nodes() {
			if n.FreeCores() != 10 || n.FreeGPUs() != 4 || n.FreeMem() != 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterAccessors(t *testing.T) {
	eng := sim.NewEngine()
	c := twoNodeCluster(eng)
	if c.Engine() != eng {
		t.Fatal("Engine accessor")
	}
	if c.UsedCoresSeries() == nil || c.UsedGPUsSeries() == nil {
		t.Fatal("series accessors nil")
	}
	if c.Utilization(5, 5) != 0 || c.GPUUtilization(5, 5) != 0 {
		t.Fatal("zero-window utilization should be 0")
	}
}
