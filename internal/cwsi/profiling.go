package cwsi

import (
	"fmt"
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/rm"
)

// Node profiling (§3.4): "since Lotaru and other research approaches that
// support heterogeneous infrastructures to predict task runtimes require
// machine characteristics, we are extending our CWSI to store such
// information and extend the prototype to gather these metrics with
// Kubestone." ProfileNodes runs a reference micro-benchmark on one node of
// every node type and stores the measured speed factors; Context.
// MeasuredSpeed serves them to strategies and predictors, so scheduling
// never has to trust declared hardware specs.

// ProfileReport records one node type's measurement.
type ProfileReport struct {
	NodeType      string
	MeasuredSpeed float64 // reference duration / observed duration
	DeclaredSpeed float64
}

// ProfileNodes benchmarks every node type with a probe of refDurSec seconds
// (on the reference machine) and stores measured speed factors in the CWS.
// It drives the engine until the probes complete.
func (c *CWS) ProfileNodes(refDurSec float64) ([]ProfileReport, error) {
	if refDurSec <= 0 {
		return nil, fmt.Errorf("cwsi: probe duration must be positive")
	}
	cl := c.mgr.Cluster()
	eng := cl.Engine()

	// One probe per node type, pinned by a strategy-independent direct
	// submission that names the target type in its ID and picks its node
	// via a one-shot pin strategy.
	types := cl.Types()
	remaining := len(types)
	results := make([]ProfileReport, 0, len(types))

	old := c.strategy
	defer func() { c.strategy = old }()

	for _, nt := range types {
		nt := nt
		pin := &pinStrategy{wantType: nt.Name}
		c.strategy = pin // probes run serially, so the pin stays valid
		c.mgr.Submit(&rm.Submission{
			ID:    "cws-probe-" + nt.Name,
			Name:  "cws-probe",
			Cores: 1,
			Runtime: func(n *cluster.Node) float64 {
				return refDurSec / n.Type.SpeedFactor
			},
			Done: func(r rm.Result) {
				remaining--
				observed := float64(r.FinishedAt - r.StartedAt)
				measured := refDurSec / observed
				if c.measuredSpeed == nil {
					c.measuredSpeed = map[string]float64{}
				}
				c.measuredSpeed[nt.Name] = measured
				results = append(results, ProfileReport{
					NodeType:      nt.Name,
					MeasuredSpeed: measured,
					DeclaredSpeed: nt.SpeedFactor,
				})
			},
		})
		eng.Run() // probes run serially so the pin strategy stays valid
	}
	if remaining != 0 {
		return nil, fmt.Errorf("cwsi: %d probes did not complete (node type with no free node?)", remaining)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].NodeType < results[j].NodeType })
	return results, nil
}

// MeasuredSpeed returns the profiled speed factor for a node's type, falling
// back to the declared factor when unprofiled.
func (ctx *Context) MeasuredSpeed(n *cluster.Node) float64 {
	if v, ok := ctx.cws.measuredSpeed[n.Type.Name]; ok {
		return v
	}
	return n.Type.SpeedFactor
}

// pinStrategy places everything on a single node type (used by probes).
type pinStrategy struct {
	wantType string
}

func (p *pinStrategy) Name() string                              { return "pin/" + p.wantType }
func (p *pinStrategy) Priority(*rm.Submission, *Context) float64 { return 0 }
func (p *pinStrategy) PickNode(_ *rm.Submission, candidates []*cluster.Node, _ *Context) *cluster.Node {
	for _, n := range candidates {
		if n.Type.Name == p.wantType {
			return n
		}
	}
	return nil
}
