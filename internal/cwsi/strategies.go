package cwsi

import (
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/rm"
)

// The strategy families §3 evaluates: the workflow-oblivious FIFO baseline,
// the "simple workflow-aware strategies" (rank and file size) that produced
// the reported 10.8 % average / up-to-25 % makespan reductions, and the more
// sophisticated prediction-driven policies (HEFT-like, Tarema-like) §3.4
// plans to integrate.

// Baseline is workflow-oblivious FIFO with first-fit placement — what a
// plain resource manager does when the WMS "submits each task individually"
// (§3.2, Argo/Kubernetes).
type Baseline struct{}

// Name implements Strategy.
func (Baseline) Name() string { return "fifo" }

// Priority implements Strategy: all equal → submission order.
func (Baseline) Priority(*rm.Submission, *Context) float64 { return 0 }

// PickNode implements Strategy: first fit.
func (Baseline) PickNode(_ *rm.Submission, c []*cluster.Node, _ *Context) *cluster.Node {
	return firstFit(c)
}

func firstFit(c []*cluster.Node) *cluster.Node {
	if len(c) == 0 {
		return nil
	}
	return c[0]
}

// Spread is workflow-oblivious FIFO with least-allocated placement — the
// Kubernetes default scheduler's scoring, which balances load but is
// oblivious to dataflow (it spreads a chain's stages across nodes).
type Spread struct{}

// Name implements Strategy.
func (Spread) Name() string { return "spread" }

// Priority implements Strategy: submission order.
func (Spread) Priority(*rm.Submission, *Context) float64 { return 0 }

// PickNode implements Strategy: most free cores first.
func (Spread) PickNode(_ *rm.Submission, candidates []*cluster.Node, _ *Context) *cluster.Node {
	var best *cluster.Node
	for _, n := range candidates {
		if best == nil || n.FreeCores() > best.FreeCores() {
			best = n
		}
	}
	return best
}

// RoundRobin is workflow-oblivious FIFO with rotating placement — the
// classic load-balancing policy that maximally defeats data locality by
// construction. Stateful: create one per manager.
type RoundRobin struct{ next int }

// Name implements Strategy.
func (*RoundRobin) Name() string { return "roundrobin" }

// Priority implements Strategy: submission order.
func (*RoundRobin) Priority(*rm.Submission, *Context) float64 { return 0 }

// PickNode implements Strategy: rotate over the feasible nodes.
func (r *RoundRobin) PickNode(_ *rm.Submission, candidates []*cluster.Node, _ *Context) *cluster.Node {
	if len(candidates) == 0 {
		return nil
	}
	r.next++
	return candidates[r.next%len(candidates)]
}

// Rank prioritizes tasks by upward rank in their workflow DAG: tasks with
// more critical work below them start first, shortening the critical path
// under contention.
type Rank struct{}

// Name implements Strategy.
func (Rank) Name() string { return "rank" }

// Priority implements Strategy.
func (Rank) Priority(s *rm.Submission, ctx *Context) float64 {
	return ctx.Rank(s.WorkflowID, s.TaskID)
}

// PickNode implements Strategy: first fit.
func (Rank) PickNode(_ *rm.Submission, c []*cluster.Node, _ *Context) *cluster.Node {
	return firstFit(c)
}

// FileSize prioritizes by declared input size — §3.5's "file size" strategy.
// Descending (large first) overlaps long data-heavy tasks with short ones.
type FileSize struct {
	// Ascending runs small-input tasks first when true.
	Ascending bool
}

// Name implements Strategy.
func (f FileSize) Name() string {
	if f.Ascending {
		return "filesize-asc"
	}
	return "filesize-desc"
}

// Priority implements Strategy.
func (f FileSize) Priority(s *rm.Submission, _ *Context) float64 {
	if f.Ascending {
		return -s.InputBytes
	}
	return s.InputBytes
}

// PickNode implements Strategy: first fit.
func (FileSize) PickNode(_ *rm.Submission, c []*cluster.Node, _ *Context) *cluster.Node {
	return firstFit(c)
}

// HEFT combines rank priority with earliest-finish-time placement using the
// CWS runtime predictions (nominal durations until the predictor warms up) —
// the classic heterogeneous list scheduler §3.4 cites as needing exactly the
// task characteristics the CWSI provides.
type HEFT struct{}

// Name implements Strategy.
func (HEFT) Name() string { return "heft" }

// Priority implements Strategy.
func (HEFT) Priority(s *rm.Submission, ctx *Context) float64 {
	return ctx.Rank(s.WorkflowID, s.TaskID)
}

// PickNode implements Strategy: minimize predicted finish time; since every
// candidate can start now, that is the node with the smallest predicted
// runtime (fastest compatible machine), with stable tie-breaking.
func (HEFT) PickNode(s *rm.Submission, candidates []*cluster.Node, ctx *Context) *cluster.Node {
	var best *cluster.Node
	bestDur := 0.0
	for _, n := range candidates {
		d := ctx.PredictRuntime(s.WorkflowID, s.TaskID, n)
		if best == nil || d < bestDur {
			best, bestDur = n, d
		}
	}
	return best
}

// Tarema implements the paper's Tarema-style policy (§3.4, [19]): group
// nodes into performance classes by speed factor, group task names into
// demand classes by observed mean reference runtime, and steer long-running
// task families onto fast node groups. Before provenance data exists it
// degrades gracefully to first fit.
type Tarema struct {
	// Groups is the number of classes on each side (default 3).
	Groups int
}

// Name implements Strategy.
func (Tarema) Name() string { return "tarema" }

// Priority implements Strategy: rank-based, like the other aware policies.
func (Tarema) Priority(s *rm.Submission, ctx *Context) float64 {
	return ctx.Rank(s.WorkflowID, s.TaskID)
}

// PickNode implements Strategy.
func (t Tarema) PickNode(s *rm.Submission, candidates []*cluster.Node, ctx *Context) *cluster.Node {
	groups := t.Groups
	if groups <= 0 {
		groups = 3
	}
	mean, ok := ctx.ObservedMeanRuntime(s.Name)
	if !ok {
		return firstFit(candidates)
	}
	// Node class: quantile position of the node's speed factor among the
	// cluster's node types.
	types := ctx.cws.mgr.Cluster().Types()
	speeds := make([]float64, 0, len(types))
	for _, nt := range types {
		speeds = append(speeds, nt.SpeedFactor)
	}
	sort.Float64s(speeds)
	nodeClass := func(n *cluster.Node) int {
		pos := sort.SearchFloat64s(speeds, n.Type.SpeedFactor)
		return pos * groups / len(speeds)
	}
	// Task class: position of this task family's mean runtime among all
	// observed families.
	all := observedMeans(ctx)
	sort.Float64s(all)
	pos := sort.SearchFloat64s(all, mean)
	if pos == len(all) {
		pos = len(all) - 1
	}
	taskClass := pos * groups / len(all)

	// Prefer candidates whose node class matches the task class; fall back
	// to the closest class.
	var best *cluster.Node
	bestDist := 0
	for _, n := range candidates {
		d := taskClass - nodeClass(n)
		if d < 0 {
			d = -d
		}
		if best == nil || d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

func observedMeans(ctx *Context) []float64 {
	stats := ctx.cws.prov.StatsByName()
	out := make([]float64, 0, len(stats))
	for _, st := range stats {
		if st.Executions > st.Failures {
			// Normalize to reference machine is already approximate via
			// ObservedMeanRuntime; use plain means for classing.
			out = append(out, st.MeanRuntime)
		}
	}
	if len(out) == 0 {
		out = append(out, 1)
	}
	return out
}
