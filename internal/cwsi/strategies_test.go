package cwsi

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func TestSpreadPicksLeastAllocated(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "s", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9},
		Count: 2,
	})
	// Pre-load node 0 with 3 cores.
	if _, err := cl.Allocate(cl.Nodes()[0], 3, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := Spread{}.PickNode(nil, cl.Nodes(), nil)
	if got != cl.Nodes()[1] {
		t.Fatalf("Spread picked %s, want the emptier node", got.Name())
	}
}

func TestRoundRobinRotates(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "s", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9},
		Count: 3,
	})
	rr := &RoundRobin{}
	seen := map[int]int{}
	for i := 0; i < 9; i++ {
		n := rr.PickNode(nil, cl.Nodes(), nil)
		seen[n.ID]++
	}
	for id, count := range seen {
		if count != 3 {
			t.Fatalf("node %d picked %d times, want 3 (uniform rotation)", id, count)
		}
	}
	if rr.PickNode(nil, nil, nil) != nil {
		t.Fatal("empty candidates should give nil")
	}
}

func TestSpreadRunsWorkflow(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "s", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9},
		Count: 2,
	})
	cws := New(rm.NewTaskManager(cl, nil), Spread{}, nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", Name: "a", NominalDur: 10})
	w.Add(&dag.Task{ID: "b", Name: "b", NominalDur: 10})
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("w", 0); err != nil {
		t.Fatal(err)
	}
	// Two independent tasks spread across both nodes.
	recs := cws.Provenance().ByWorkflow("w")
	if recs[0].Node == recs[1].Node {
		t.Fatalf("spread put both tasks on %s", recs[0].Node)
	}
}

func TestDataLocalVsRoundRobinOnChains(t *testing.T) {
	mk := func(strategy Strategy) sim.Time {
		eng := sim.NewEngine()
		cl := cluster.New(eng, "d", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 2, MemBytes: 64e9},
			Count: 4,
		})
		cws := New(rm.NewTaskManager(cl, nil), strategy, nil)
		cws.SetDataBandwidth(100e6)
		w := dataChain(4, 10e9)
		if err := cws.RegisterWorkflow("w", w); err != nil {
			t.Fatal(err)
		}
		ms, err := cws.RunWorkflow("w", 0)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	rr := mk(&RoundRobin{})
	local := mk(DataLocal{})
	if local >= rr {
		t.Fatalf("datalocal (%v) should beat round-robin (%v) on data chains", local, rr)
	}
	if local != 400 { // 4 stages, all local
		t.Fatalf("datalocal makespan = %v, want 400", local)
	}
}
