package cwsi

import (
	"strings"
	"testing"

	"hhcw/internal/dag"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// The task observer is the service layer's accounting tap: it must see every
// terminal attempt exactly once, after provenance capture, with the result's
// node/time fields intact.
func TestTaskObserverSeesEveryAttempt(t *testing.T) {
	eng := sim.NewEngine()
	cws := New(rm.NewTaskManager(smallCluster(eng, 2, 4), nil), Baseline{}, nil)
	type seen struct {
		wf      string
		task    dag.TaskID
		attempt int
		started bool
	}
	var log []seen
	cws.SetTaskObserver(func(wfID string, taskID dag.TaskID, attempt int, r rm.Result) {
		if got := cws.Provenance().Len() + cws.Provenance().Folded(); got != len(log)+1 {
			t.Errorf("observer fired before provenance capture: %d records at call %d", got, len(log))
		}
		log = append(log, seen{wfID, taskID, attempt, r.Node != nil})
	})
	w := chainWorkflow()
	if err := cws.RegisterWorkflow("wf", w); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("wf", 0); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("observer saw %d attempts, want 2: %+v", len(log), log)
	}
	for i, want := range []dag.TaskID{"a", "b"} {
		if log[i].wf != "wf" || log[i].task != want || log[i].attempt != 1 || !log[i].started {
			t.Fatalf("attempt %d = %+v, want wf/%s#1 started", i, log[i], want)
		}
	}
}

// ReleaseWorkflow must drop both the scheduler's and the provenance store's
// per-workflow structure so a long-running service stays O(in-flight), while
// leaving captured task records queryable.
func TestReleaseWorkflowDropsState(t *testing.T) {
	eng := sim.NewEngine()
	cws := New(rm.NewTaskManager(smallCluster(eng, 2, 4), nil), Baseline{}, nil)
	if err := cws.RegisterWorkflow("wf", chainWorkflow()); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("wf", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.Provenance().Lineage("wf", "b"); err != nil {
		t.Fatalf("lineage before release: %v", err)
	}
	cws.ReleaseWorkflow("wf")
	if cws.ctx.Workflow("wf") != nil {
		t.Fatal("scheduler state survived release")
	}
	if _, err := cws.Provenance().Lineage("wf", "b"); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("provenance structure survived release: %v", err)
	}
	if got := len(cws.Provenance().ByWorkflow("wf")); got != 2 {
		t.Fatalf("task records lost on release: %d, want 2", got)
	}
	// Released id is registerable again — the service reuses nothing, but
	// the invariant keeps RegisterWorkflow's duplicate check honest.
	if err := cws.RegisterWorkflow("wf", chainWorkflow()); err != nil {
		t.Fatalf("re-register after release: %v", err)
	}
	cws.ReleaseWorkflow("ghost") // no-op
}
