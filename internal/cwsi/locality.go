package cwsi

import (
	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/rm"
)

// Data-locality-aware scheduling: the CWSI transfers "input files" metadata
// (§3.1), so a workflow-aware scheduler knows where each task's inputs were
// produced. With a DataBandwidth configured, the CWS charges staging time
// for input bytes that are not node-local, and the DataLocal strategy
// steers tasks toward the nodes holding the largest share of their inputs —
// the classic locality optimization a workflow-oblivious scheduler cannot
// perform because it does not know the dataflow.

// SetDataBandwidth enables the data-plane model: task inputs produced on a
// different node are staged at bps bytes/second before execution (0
// disables; node-local inputs are free, as on node-local NVMe).
func (c *CWS) SetDataBandwidth(bps float64) { c.dataBW = bps }

// outKey identifies one task's output location. A struct key keeps the hot
// lookup paths (remoteInputBytes runs per placement) free of the string
// concatenation a composite "wf/task" key would allocate.
type outKey struct {
	wf   string
	task dag.TaskID
}

// outputNode records where a task's outputs live after completion.
func (c *CWS) noteOutput(wfID string, taskID dag.TaskID, node *cluster.Node) {
	if c.outputs == nil {
		c.outputs = make(map[outKey]*cluster.Node, 64)
	}
	c.outputs[outKey{wfID, taskID}] = node
	c.prioGen++ // locality changed; memoized priorities may be stale
}

// LocalInputBytes returns how many of the task's input bytes are already on
// node n (produced there by dependencies). Inputs of root tasks count as
// remote (staged from shared storage).
func (ctx *Context) LocalInputBytes(wfID string, taskID dag.TaskID, n *cluster.Node) float64 {
	c := ctx.cws
	st := c.workflows[wfID]
	if st == nil || c.outputs == nil {
		return 0
	}
	t := st.wf.Task(taskID)
	if t == nil {
		return 0
	}
	local := 0.0
	for _, dep := range t.Deps {
		if c.outputs[outKey{wfID, dep}] == n {
			if dt := st.wf.Task(dep); dt != nil {
				local += dt.OutputBytes
			}
		}
	}
	return local
}

// remoteInputBytes is the complement of LocalInputBytes over the task's
// dependency outputs plus its external input size.
func (c *CWS) remoteInputBytes(wfID string, t *dag.Task, n *cluster.Node) float64 {
	st := c.workflows[wfID]
	if st == nil {
		return t.InputBytes
	}
	remote := 0.0
	fromDeps := 0.0
	for _, dep := range t.Deps {
		dt := st.wf.Task(dep)
		if dt == nil {
			continue
		}
		fromDeps += dt.OutputBytes
		if c.outputs == nil || c.outputs[outKey{wfID, dep}] != n {
			remote += dt.OutputBytes
		}
	}
	// External inputs (beyond dependency outputs) are always staged.
	if ext := t.InputBytes - fromDeps; ext > 0 {
		remote += ext
	}
	return remote
}

// DataLocal is a workflow-aware strategy that combines rank ordering with
// locality placement: among feasible nodes, pick the one holding the most
// input bytes.
type DataLocal struct{}

// Name implements Strategy.
func (DataLocal) Name() string { return "datalocal" }

// Priority implements Strategy.
func (DataLocal) Priority(s *rm.Submission, ctx *Context) float64 {
	return ctx.Rank(s.WorkflowID, s.TaskID)
}

// PickNode implements Strategy.
func (DataLocal) PickNode(s *rm.Submission, candidates []*cluster.Node, ctx *Context) *cluster.Node {
	var best *cluster.Node
	bestLocal := -1.0
	for _, n := range candidates {
		local := ctx.LocalInputBytes(s.WorkflowID, s.TaskID, n)
		if local > bestLocal {
			best, bestLocal = n, local
		}
	}
	return best
}
