package cwsi

import (
	"fmt"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// The dispatch overhaul replaced the CWS adapter's O(n²) insertion sort with
// a cached-key stable sort. These tests pin the two contracts that replace
// rested on: a length ≤ 1 queue must not touch the strategy at all, and the
// produced order must match the historical insertion-sort kernel exactly —
// including tie handling, where equal priorities keep submission order.

// keyedStrategy returns per-submission priorities from a map and counts how
// often Priority is consulted.
type keyedStrategy struct {
	keys  map[string]float64
	calls int
}

func (s *keyedStrategy) Name() string { return "keyed" }
func (s *keyedStrategy) Priority(sub *rm.Submission, _ *Context) float64 {
	s.calls++
	return s.keys[sub.ID]
}
func (s *keyedStrategy) PickNode(_ *rm.Submission, candidates []*cluster.Node, _ *Context) *cluster.Node {
	return candidates[0]
}

func newTestAdapter(strat Strategy) *rmAdapter {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "t", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
		Count: 1,
	})
	mgr := rm.NewTaskManager(cl, nil)
	return &rmAdapter{cws: New(mgr, strat, nil)}
}

func TestPrioritizeSingletonFastPath(t *testing.T) {
	strat := &keyedStrategy{keys: map[string]float64{"a": 5}}
	a := newTestAdapter(strat)
	if got := a.Prioritize(nil); got != nil {
		t.Fatalf("Prioritize(nil) = %v", got)
	}
	one := []*rm.Submission{{ID: "a"}}
	got := a.Prioritize(one)
	if len(got) != 1 || got[0] != one[0] {
		t.Fatalf("singleton reordered: %v", got)
	}
	if strat.calls != 0 {
		t.Fatalf("Priority consulted %d times for queues of length <= 1, want 0", strat.calls)
	}
}

// referencePrioritize is the historical O(n²) kernel, kept verbatim as the
// test-only reference: stable insertion into descending-priority order, so
// equal keys stay in submission order.
func referencePrioritize(pending []*rm.Submission, prio func(*rm.Submission) float64) []*rm.Submission {
	out := append([]*rm.Submission(nil), pending...)
	for i := 1; i < len(out); i++ {
		s := out[i]
		k := prio(s)
		j := i - 1
		for j >= 0 && prio(out[j]) < k {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = s
	}
	return out
}

func TestPrioritizeMatchesInsertionSortReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := randx.New(seed)
		for _, n := range []int{2, 3, 7, 16, 40} {
			strat := &keyedStrategy{keys: map[string]float64{}}
			a := newTestAdapter(strat)
			pending := make([]*rm.Submission, n)
			for i := range pending {
				id := fmt.Sprintf("s%02d", i)
				pending[i] = &rm.Submission{ID: id}
				// Few distinct keys forces heavy ties, the case where an
				// unstable sort would diverge from the insertion kernel.
				strat.keys[id] = float64(r.Intn(4))
			}
			want := referencePrioritize(pending, func(s *rm.Submission) float64 {
				return strat.keys[s.ID]
			})
			got := a.Prioritize(append([]*rm.Submission(nil), pending...))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d n %d: order diverges at %d: got %s want %s",
						seed, n, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

// TestPrioritizeCacheInvalidation pins the memoization contract: priorities
// are computed once per submission per generation, and recomputed after the
// generation advances (provenance or locality updates bump it).
func TestPrioritizeCacheInvalidation(t *testing.T) {
	strat := &keyedStrategy{keys: map[string]float64{"a": 1, "b": 2, "c": 3}}
	a := newTestAdapter(strat)
	pending := []*rm.Submission{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	a.Prioritize(pending)
	if strat.calls != 3 {
		t.Fatalf("first pass consulted Priority %d times, want 3", strat.calls)
	}
	a.Prioritize(pending)
	if strat.calls != 3 {
		t.Fatalf("second pass re-consulted Priority (calls=%d): cache not hit", strat.calls)
	}
	a.cws.prioGen++ // what noteOutput / provenance updates do
	a.Prioritize(pending)
	if strat.calls != 6 {
		t.Fatalf("post-invalidation pass consulted Priority %d times, want 6", strat.calls)
	}
}
