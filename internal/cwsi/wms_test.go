package cwsi

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func flatCluster(nodes, cores int) *cluster.Cluster {
	return cluster.New(sim.NewEngine(), "flat", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: cores, MemBytes: 64e9},
		Count: nodes,
	})
}

func TestRunConcurrentAllComplete(t *testing.T) {
	cl := flatCluster(2, 8)
	opts := dag.GenOpts{MeanDur: 100, CVDur: 0.5}
	wfs := []*dag.Workflow{
		dag.Chain(randx.New(1), 5, opts),
		dag.Diamond(randx.New(2), opts),
		dag.ForkJoin(randx.New(3), 2, 4, opts),
	}
	res, err := RunConcurrent(cl, wfs, Rank{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Makespans) != 3 {
		t.Fatalf("makespans = %d", len(res.Makespans))
	}
	for i, ms := range res.Makespans {
		if ms <= 0 {
			t.Fatalf("workflow %d makespan = %v", i, ms)
		}
		if ms > res.MaxMakespan {
			t.Fatal("MaxMakespan wrong")
		}
	}
	if res.MeanMakespan <= 0 || res.MeanMakespan > res.MaxMakespan {
		t.Fatalf("mean = %v max = %v", res.MeanMakespan, res.MaxMakespan)
	}
	if res.Strategy != "rank" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
}

func TestRunConcurrentNilStrategyIsFIFO(t *testing.T) {
	cl := flatCluster(2, 8)
	wfs := []*dag.Workflow{dag.Chain(randx.New(1), 3, dag.GenOpts{MeanDur: 50})}
	res, err := RunConcurrent(cl, wfs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "fifo" {
		t.Fatalf("strategy = %q, want fifo", res.Strategy)
	}
}

func TestRunConcurrentSameNameWorkflows(t *testing.T) {
	// Two instances of the same workflow name must not collide (they get
	// distinct registration IDs).
	cl := flatCluster(2, 8)
	opts := dag.GenOpts{MeanDur: 50}
	wfs := []*dag.Workflow{
		dag.Chain(randx.New(1), 3, opts),
		dag.Chain(randx.New(1), 3, opts),
	}
	res, err := RunConcurrent(cl, wfs, Rank{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Makespans) != 2 || res.Makespans[0] <= 0 || res.Makespans[1] <= 0 {
		t.Fatalf("makespans = %v", res.Makespans)
	}
}

func TestRunConcurrentAwareHelpsUnderContention(t *testing.T) {
	opts := dag.GenOpts{MeanDur: 300, CVDur: 1.5, Cores: 1, MaxCores: 4}
	mkWfs := func() []*dag.Workflow {
		r := randx.New(99)
		return []*dag.Workflow{
			dag.RNASeqLike(r.Fork(), 10, opts),
			dag.MontageLike(r.Fork(), 12, opts),
			dag.ForkJoin(r.Fork(), 3, 8, opts),
		}
	}
	base, err := RunConcurrent(flatCluster(2, 8), mkWfs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := RunConcurrent(flatCluster(2, 8), mkWfs(), Rank{})
	if err != nil {
		t.Fatal(err)
	}
	// Rank should not be worse than FIFO by more than noise on this seed,
	// and the grand total work is conserved either way: check mean.
	if float64(rank.MeanMakespan) > float64(base.MeanMakespan)*1.05 {
		t.Fatalf("rank mean %v much worse than fifo %v", rank.MeanMakespan, base.MeanMakespan)
	}
}

func TestStartWorkflowUnregistered(t *testing.T) {
	cl := flatCluster(1, 4)
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	if err := cws.StartWorkflow("ghost", 0, func(sim.Time, error) {}); err == nil {
		t.Fatal("unregistered workflow started")
	}
}

func TestRunNextflowStyleNilStrategy(t *testing.T) {
	cl := flatCluster(2, 8)
	w := dag.Chain(randx.New(4), 4, dag.GenOpts{MeanDur: 60})
	res, err := RunNextflowStyle("argo", cl, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "argo" || res.Strategy != "fifo" {
		t.Fatalf("res = %+v", res)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestRunAirflowBigWorkerInvalidWorkflow(t *testing.T) {
	cl := flatCluster(2, 8)
	w := dag.New("bad")
	w.Add(&dag.Task{ID: "a", Deps: []dag.TaskID{"ghost"}})
	if _, err := RunAirflowBigWorker(cl, w); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestRunAirflowBigWorkerReleasesCluster(t *testing.T) {
	cl := flatCluster(2, 8)
	w := dag.ForkJoin(randx.New(5), 2, 4, dag.GenOpts{MeanDur: 60})
	if _, err := RunAirflowBigWorker(cl, w); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Nodes() {
		if n.FreeCores() != n.Type.Cores {
			t.Fatal("big-worker reservation leaked")
		}
	}
}
