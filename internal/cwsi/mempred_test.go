package cwsi

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/predict"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// memWorkflowIDs builds n independent tasks that over-request memory 4×:
// request 16 GB, true peak 4 GB.
func memWorkflowIDs(n int) *dag.Workflow {
	w := dag.New("mem")
	for i := 0; i < n; i++ {
		w.Add(&dag.Task{
			ID: dag.TaskID("t" + string(rune('0'+i/10)) + string(rune('0'+i%10))), Name: "hungry",
			NominalDur: 100, MemBytes: 16e9, PeakMemBytes: 4e9,
		})
	}
	return w
}

// memCluster has plenty of cores but memory fits only 2 full requests per
// node (32 GB).
func memCluster() *cluster.Cluster {
	return cluster.New(sim.NewEngine(), "mem", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 64, MemBytes: 32e9},
		Count: 1,
	})
}

func TestMemPredictionPacksMoreTasks(t *testing.T) {
	// Without prediction: 2 concurrent (16 GB requests on 32 GB node) →
	// 16 tasks take 8 waves of 100 s.
	cl1 := memCluster()
	cws1 := New(rm.NewTaskManager(cl1, nil), Baseline{}, nil)
	if err := cws1.RegisterWorkflow("w", memWorkflowIDs(16)); err != nil {
		t.Fatal(err)
	}
	msNo, err := cws1.RunWorkflow("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if msNo != 800 {
		t.Fatalf("unpredicted makespan = %v, want 800", msNo)
	}

	// With a warmed memory predictor (4 GB peak + 20 % = 4.8 GB): 6
	// concurrent → 3 waves.
	cl2 := memCluster()
	cws2 := New(rm.NewTaskManager(cl2, nil), Baseline{}, nil)
	mp := predict.NewMem(0.2)
	mp.Observe(predict.Observation{TaskName: "hungry", PeakMem: 4e9})
	cws2.SetMemPredictor(mp)
	if err := cws2.RegisterWorkflow("w", memWorkflowIDs(16)); err != nil {
		t.Fatal(err)
	}
	msYes, err := cws2.RunWorkflow("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if msYes != 300 {
		t.Fatalf("predicted makespan = %v, want 300 (6 per wave)", msYes)
	}
	if msYes >= msNo {
		t.Fatal("memory prediction did not improve packing")
	}
}

func TestMemPredictionOOMRetriesWithFullRequest(t *testing.T) {
	// A poisoned predictor that underestimates: first attempt OOMs, the
	// retry with the declared request succeeds.
	cl := memCluster()
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	mp := predict.NewMem(0)                                           // no margin
	mp.Observe(predict.Observation{TaskName: "hungry", PeakMem: 1e9}) // wrong: real peak is 4 GB
	cws.SetMemPredictor(mp)
	w := memWorkflowIDs(1)
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	ms, err := cws.RunWorkflow("w", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 200 { // 100 s OOM attempt + 100 s full-request retry
		t.Fatalf("makespan = %v, want 200", ms)
	}
	recs := cws.Provenance().ByWorkflow("w")
	if len(recs) != 2 || !recs[0].Failed || recs[1].Failed {
		t.Fatalf("attempts: %+v", recs)
	}
	if recs[0].Error == "" || recs[1].Error != "" {
		t.Fatalf("OOM error not recorded: %+v", recs[0])
	}
}

func TestMemPredictionColdUsesRequest(t *testing.T) {
	cl := memCluster()
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	cws.SetMemPredictor(predict.NewMem(0.2)) // cold
	if err := cws.RegisterWorkflow("w", memWorkflowIDs(2)); err != nil {
		t.Fatal(err)
	}
	ms, err := cws.RunWorkflow("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 100 { // both fit at full request; no OOM
		t.Fatalf("cold-predictor makespan = %v, want 100", ms)
	}
}

func TestMemPredictorWarmsFromCWSRuns(t *testing.T) {
	cl := memCluster()
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	mp := predict.NewMem(0.2)
	cws.SetMemPredictor(mp)
	if err := cws.RegisterWorkflow("warm", memWorkflowIDs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("warm", 0); err != nil {
		t.Fatal(err)
	}
	// The predictor observed the true 4 GB peaks.
	pred, ok := mp.Predict("hungry")
	if !ok || pred < 4e9 || pred > 5e9 {
		t.Fatalf("learned prediction = %v ok=%v, want ~4.8 GB", pred, ok)
	}
}

func TestTaskPeakMemDefault(t *testing.T) {
	task := dag.Task{MemBytes: 10e9}
	if task.PeakMem() != 8e9 {
		t.Fatalf("default peak = %v, want 8e9", task.PeakMem())
	}
	task.PeakMemBytes = 3e9
	if task.PeakMem() != 3e9 {
		t.Fatalf("explicit peak = %v", task.PeakMem())
	}
}
