// Package cwsi implements the Common Workflow Scheduler (CWS) and its
// interface (CWSI) from §3: a component that lives inside the resource
// manager, receives workflow structure and task metadata from any WMS, and
// uses that information for workflow-aware scheduling, centralized
// provenance, and runtime prediction.
//
// The CWS plugs into rm.TaskManager as its Strategy, so a resource manager
// implements the CWS once and every CWSI-speaking workflow engine benefits
// ("a workflow engine needs to implement support for CWSI to work with all
// resource managers already offering CWSI").
package cwsi

import (
	"fmt"
	"sort"
	"strconv"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/predict"
	"hhcw/internal/provenance"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// Interface is the CWSI wire surface as a WMS sees it. CWS implements it;
// WMS adapters (see wms.go) speak it.
type Interface interface {
	// RegisterWorkflow transfers the workflow DAG — task dependencies,
	// resource requests, data sizes, task-specific parameters.
	RegisterWorkflow(id string, w *dag.Workflow) error
	// SubmitTask submits one ready-to-run task of a registered workflow.
	SubmitTask(req TaskRequest) error
	// WorkflowDone tells the CWS no more tasks of this workflow will come.
	WorkflowDone(id string)
}

// TaskRequest is a CWSI task submission.
type TaskRequest struct {
	WorkflowID string
	TaskID     dag.TaskID
	// Runtime computes actual execution time on a node. If nil, the
	// default heterogeneity model (rm.DefaultRuntime) is used.
	Runtime func(t *dag.Task, n *cluster.Node) float64
	// Done is invoked with the terminal result (after provenance capture).
	Done func(rm.Result)
	// Handler, consulted when Done is nil, receives the terminal result
	// without a per-task closure — a driver submitting many tasks
	// implements it once and the task identity rides along as an argument.
	Handler TaskDoneHandler
	// Params are task-invocation parameters, stored for provenance.
	Params map[string]string
}

// TaskDoneHandler is the closure-free completion callback of a TaskRequest.
type TaskDoneHandler interface {
	OnTaskDone(taskID dag.TaskID, r rm.Result)
}

// Context gives strategies access to everything the CWS knows: the DAG, the
// provenance store, and the trained predictor.
type Context struct {
	cws *CWS
}

// Workflow returns the registered workflow for id, or nil.
func (c *Context) Workflow(id string) *dag.Workflow {
	if st := c.cws.workflows[id]; st != nil {
		return st.wf
	}
	return nil
}

// Rank returns the upward rank of a task within its workflow (0 when the
// workflow is unknown). Ranks are computed at registration from nominal
// durations — the static DAG knowledge only a workflow-aware scheduler has.
func (c *Context) Rank(wfID string, taskID dag.TaskID) float64 {
	if st := c.cws.workflows[wfID]; st != nil {
		return st.ranks[taskID]
	}
	return 0
}

// PredictRuntime estimates the runtime of a task (by process name and input
// size) on a node, using the online predictor when trained and the declared
// nominal duration as fallback.
func (c *Context) PredictRuntime(wfID string, taskID dag.TaskID, n *cluster.Node) float64 {
	st := c.cws.workflows[wfID]
	if st == nil {
		return 0
	}
	t := st.wf.Task(taskID)
	if t == nil {
		return 0
	}
	if c.cws.predictor != nil {
		// Prefer Kubestone-style measured machine characteristics over the
		// declared spec (§3.4); they coincide unless hardware misbehaves.
		if sec, ok := c.cws.predictor.Predict(t.Name, t.InputBytes, c.MeasuredSpeed(n)); ok {
			return sec
		}
	}
	return rm.DefaultRuntime(t, n)
}

// ObservedMeanRuntime returns the provenance-store mean reference runtime
// for a process name (ok=false before any successful execution). The store
// maintains the mean as a running aggregate, so this is O(1) per call.
func (c *Context) ObservedMeanRuntime(name string) (float64, bool) {
	return c.cws.prov.MeanRefRuntime(name)
}

// Strategy is a workflow-aware scheduling policy.
type Strategy interface {
	Name() string
	// Priority scores a pending submission; higher runs first.
	Priority(s *rm.Submission, ctx *Context) float64
	// PickNode chooses among feasible nodes (nil = skip this pass).
	PickNode(s *rm.Submission, candidates []*cluster.Node, ctx *Context) *cluster.Node
}

type wfState struct {
	wf       *dag.Workflow
	ranks    map[dag.TaskID]float64
	attempts map[dag.TaskID]int
	done     bool

	// Predicted-critical-path ranks, memoized under the priority-cache
	// generation (see Context.PredictedRank); nil while the model is cold.
	predGen   uint64
	predRanks map[dag.TaskID]float64
	// overruns counts walltime-overrun kills per task, inflating the next
	// attempt's budget (see SetOverrunPolicy). Lazily allocated.
	overruns map[dag.TaskID]int
}

// CWS is the Common Workflow Scheduler.
type CWS struct {
	mgr       *rm.TaskManager
	prov      *provenance.Store
	predictor predict.RuntimePredictor
	memPred   *predict.MemPredictor
	strategy  Strategy
	workflows map[string]*wfState
	ctx       *Context

	// Data-plane model (see locality.go).
	dataBW  float64
	outputs map[outKey]*cluster.Node

	// prioGen is the priority-cache generation: strategies' Priority values
	// are memoized per submission under this generation and recomputed only
	// after it advances — which happens whenever the knowledge Priority may
	// depend on changes (provenance records, data locality, new workflows).
	prioGen uint64
	// idScratch builds submission IDs without fmt.
	idScratch []byte
	// freeRuns recycles taskRun attempt records: an attempt is dead once its
	// Done hook returns (the manager drops every reference before invoking
	// it), so steady-state submission allocates only at peak concurrency.
	freeRuns []*taskRun

	// Measured machine characteristics (see profiling.go).
	measuredSpeed map[string]float64

	// Shared recovery policy (see SetRecovery); nil keeps the legacy
	// per-call maxRetries counters.
	recovery    *fault.RetryPolicy
	recoveryRNG *randx.Source
	injectFail  func(wfID string, taskID dag.TaskID, attempt int) bool
	recStats    RecoveryStats

	// observer, when set, sees every terminal task attempt right after
	// provenance capture (see SetTaskObserver).
	observer func(wfID string, taskID dag.TaskID, attempt int, r rm.Result)

	// Prediction-loop knobs and accounting (see predictive.go).
	minPredSamples int     // warmth gate; <1 means 1
	overrunSlack   float64 // kill budget = predicted × slack; 0 disarms
	overrunInfl    float64 // per-overrun budget inflation; >= 1
	overrunKills   int
	predErr        predict.Errors
}

// RecoveryStats aggregates policy-driven recovery accounting across the
// workflows driven through StartWorkflow.
type RecoveryStats struct {
	FailedAttempts   int     // failed attempts, recovered or not
	Retries          int     // policy-scheduled resubmissions
	TerminalFailures int     // tasks that exhausted the policy or broke the circuit
	Skipped          int     // descendants abandoned after a terminal failure
	BackoffSec       float64 // total backoff delay injected
}

// New creates a CWS over mgr with the given strategy and installs it as the
// manager's scheduling policy. predictor may be nil (no learned runtimes).
func New(mgr *rm.TaskManager, strategy Strategy, predictor predict.RuntimePredictor) *CWS {
	c := &CWS{
		mgr:       mgr,
		prov:      provenance.NewStore(),
		predictor: predictor,
		strategy:  strategy,
		workflows: map[string]*wfState{},
		prioGen:   1, // generation 0 is the rm.Submission "never cached" sentinel
	}
	c.ctx = &Context{cws: c}
	// The provenance→predict feed (§3.4): every record folds into the online
	// models as it is captured, including records ingested through paths that
	// bypass the scheduler's own completion hook.
	c.prov.SetTaskObserver(c.train)
	mgr.SetStrategy(&rmAdapter{cws: c})
	mgr.Cluster().OnNodeDown(func(n *cluster.Node) {
		c.prov.AddNodeEvent(provenance.NodeEvent{At: mgr.Cluster().Engine().Now(), Node: n.Name(), Kind: "down"})
	})
	return c
}

// Reset returns the scheduler to its just-constructed state over the same
// manager, installing the strategy and predictor the next run will use (the
// arguments New would have received). Every per-run knob — memory predictor,
// data bandwidth, recovery policy, fault injection, task observer, prediction
// gates — reverts to its construction default, the provenance store truncates
// in place, and the priority-cache generation restarts at 1 exactly as New
// sets it. Construction wiring survives untouched: the provenance→predict
// observer, the rmAdapter installed as the manager's strategy, and the
// cluster OnNodeDown trace subscription are registered once in New and must
// not be registered again on a warm substrate. Pooled attempt records and
// scratch buffers are retained.
func (c *CWS) Reset(strategy Strategy, predictor predict.RuntimePredictor) {
	c.prov.Reset()
	c.predictor = predictor
	c.memPred = nil
	c.strategy = strategy
	clear(c.workflows)
	c.dataBW = 0
	clear(c.outputs)
	c.prioGen = 1
	clear(c.measuredSpeed)
	c.recovery = nil
	c.recoveryRNG = nil
	c.injectFail = nil
	c.recStats = RecoveryStats{}
	c.observer = nil
	c.minPredSamples = 0
	c.overrunSlack, c.overrunInfl = 0, 0
	c.overrunKills = 0
	c.predErr = predict.Errors{}
}

// Provenance exposes the central provenance store (§3.3).
func (c *CWS) Provenance() *provenance.Store { return c.prov }

// Predictor returns the online runtime predictor, if any.
func (c *CWS) Predictor() predict.RuntimePredictor { return c.predictor }

// SetMemPredictor enables memory right-sizing (§3.4, §6.1): first attempts
// of a task are submitted with the predicted peak (plus the predictor's
// safety margin) instead of the user's — typically inflated — request, so
// more tasks pack per node. An under-prediction manifests as an OOM kill;
// the retry falls back to the full declared request.
func (c *CWS) SetMemPredictor(p *predict.MemPredictor) { c.memPred = p }

// Manager returns the underlying resource manager.
func (c *CWS) Manager() *rm.TaskManager { return c.mgr }

// SetRecovery installs the shared fault.RetryPolicy: StartWorkflow then
// derives its retry budget from the policy, delays resubmissions by the
// policy's capped exponential backoff (deterministic jitter from rng, which
// may be nil), circuit-breaks on the policy's threshold, and degrades
// gracefully — a terminally failed task abandons its unreachable descendants
// instead of failing the whole workflow. The per-call maxRetries argument is
// ignored while a policy is installed.
func (c *CWS) SetRecovery(p fault.RetryPolicy, rng *randx.Source) {
	c.recovery = &p
	c.recoveryRNG = rng
}

// SetFaultInjection installs a transient task-failure predicate consulted at
// each attempt's completion (fault.Profile.PlanTaskFailures drives it in
// chaos runs). A true return fails the attempt with an injected error.
func (c *CWS) SetFaultInjection(fn func(wfID string, taskID dag.TaskID, attempt int) bool) {
	c.injectFail = fn
}

// RecoveryStats returns the accumulated recovery accounting.
func (c *CWS) RecoveryStats() RecoveryStats { return c.recStats }

// SetTaskObserver installs a hook invoked once per terminal task attempt,
// immediately after provenance capture and before the requester's own Done
// callback. The service layer uses it for per-tenant accounting (queue
// waits, core-seconds, quota release): the observer fires at exactly the
// moments the priority-cache generation advances, so a fair-share strategy
// whose priorities derive from observer-maintained state is never stale.
// r.Submission must not be retained past the call (see rm.Result).
func (c *CWS) SetTaskObserver(fn func(wfID string, taskID dag.TaskID, attempt int, r rm.Result)) {
	c.observer = fn
}

// ReleaseWorkflow drops a finished workflow's scheduler state (DAG, ranks,
// attempt counters) and the provenance store's registered-workflow entry, so
// a long-running service that registers workflows per arrival keeps
// O(in-flight) rather than O(arrivals) state. Task records already captured
// are untouched (retention stays governed by provenance.SetCompact). It is
// the caller's responsibility to release only workflows with no tasks still
// pending or running; the entry simply disappears for strategy Context
// lookups. Releasing an unknown id is a no-op.
func (c *CWS) ReleaseWorkflow(id string) {
	if _, ok := c.workflows[id]; !ok {
		return
	}
	delete(c.workflows, id)
	c.prov.ReleaseWorkflow(id)
	c.prioGen++ // Context lookups for id now miss; memoized priorities may be stale
}

// RegisterWorkflow implements Interface.
func (c *CWS) RegisterWorkflow(id string, w *dag.Workflow) error {
	if _, dup := c.workflows[id]; dup {
		return fmt.Errorf("cwsi: workflow %q already registered", id)
	}
	if err := w.Validate(); err != nil {
		return fmt.Errorf("cwsi: workflow %q: %w", id, err)
	}
	c.workflows[id] = &wfState{
		wf:       w,
		ranks:    w.UpwardRanks(dag.NominalDur),
		attempts: map[dag.TaskID]int{},
	}
	c.prov.RegisterWorkflow(id, w)
	c.prioGen++
	return nil
}

// SubmitTask implements Interface.
func (c *CWS) SubmitTask(req TaskRequest) error {
	st := c.workflows[req.WorkflowID]
	if st == nil {
		return fmt.Errorf("cwsi: workflow %q not registered", req.WorkflowID)
	}
	t := st.wf.Task(req.TaskID)
	if t == nil {
		return fmt.Errorf("cwsi: task %q not in workflow %q", req.TaskID, req.WorkflowID)
	}
	runtime := req.Runtime
	if runtime == nil {
		runtime = rm.DefaultRuntime
	}
	st.attempts[req.TaskID]++
	attempt := st.attempts[req.TaskID]
	submittedAt := c.mgr.Cluster().Engine().Now()

	// Memory right-sizing: predicted peak on the first attempt (once the
	// model is warm for the name), the full declared request after an OOM
	// retry.
	mem := t.MemBytes
	if attempt == 1 && c.memWarmFor(t.Name) {
		if pred, ok := c.memPred.Predict(t.Name); ok && pred < mem {
			mem = pred
		}
	}
	var tr *taskRun
	if n := len(c.freeRuns); n > 0 {
		tr = c.freeRuns[n-1]
		c.freeRuns = c.freeRuns[:n-1]
	} else {
		tr = new(taskRun)
	}
	*tr = taskRun{
		c: c, req: req, t: t, attempt: attempt,
		grantedMem: mem, submittedAt: submittedAt, runtime: runtime,
	}
	tr.sub = rm.Submission{
		ID:         c.subID(req.WorkflowID, req.TaskID, attempt),
		WorkflowID: req.WorkflowID,
		TaskID:     req.TaskID,
		Name:       t.Name,
		Cores:      t.Cores,
		GPUs:       t.GPUs,
		Mem:        mem,
		InputBytes: t.InputBytes,
		Hooks:      tr,
	}
	c.mgr.Submit(&tr.sub)
	return nil
}

// taskRun bundles one CWSI task attempt — the rm.Submission plus every
// callback's state — into a single allocation implementing
// rm.SubmissionHooks, replacing three per-task closures and their captures.
type taskRun struct {
	c           *CWS
	req         TaskRequest
	t           *dag.Task
	attempt     int
	grantedMem  float64
	submittedAt sim.Time
	runtime     func(*dag.Task, *cluster.Node) float64
	sub         rm.Submission

	// Prediction-loop state for this attempt: the warm prediction made at
	// placement (0 when cold) and whether the overrun policy truncated the
	// attempt at its kill budget.
	predicted float64
	overrun   bool
	budget    float64
}

// RuntimeOn implements rm.SubmissionHooks: execution time plus staging of
// non-local input bytes when the data-plane model is on. With an armed
// overrun policy and a warm model, an attempt that would exceed its
// predicted walltime budget is truncated at the budget — it occupies the
// node only that long — and fails validation as a walltime-overrun kill.
func (tr *taskRun) RuntimeOn(n *cluster.Node) float64 {
	c := tr.c
	d := tr.runtime(tr.t, n)
	if c.dataBW > 0 {
		d += c.remoteInputBytes(tr.req.WorkflowID, tr.t, n) / c.dataBW
	}
	if c.warmFor(tr.t.Name) {
		if sec, ok := c.predictor.Predict(tr.t.Name, tr.t.InputBytes, c.ctx.MeasuredSpeed(n)); ok {
			tr.predicted = sec
			if c.overrunSlack > 0 {
				budget := sec * c.overrunSlack
				if st := c.workflows[tr.req.WorkflowID]; st != nil {
					for i := 0; i < st.overruns[tr.req.TaskID]; i++ {
						budget *= c.overrunInfl
					}
				}
				if d > budget {
					tr.overrun, tr.budget = true, budget
					return budget
				}
			}
		}
	}
	return d
}

// ValidateOn implements rm.SubmissionHooks: walltime-overrun kills, OOM
// enforcement, and injected transient failures.
func (tr *taskRun) ValidateOn(n *cluster.Node) error {
	if tr.overrun {
		c := tr.c
		c.overrunKills++
		if st := c.workflows[tr.req.WorkflowID]; st != nil {
			if st.overruns == nil {
				st.overruns = map[dag.TaskID]int{}
			}
			st.overruns[tr.req.TaskID]++
		}
		return fmt.Errorf("cwsi: task %s walltime-overrun killed at %.1fs (predicted %.1fs, attempt %d)",
			tr.req.TaskID, tr.budget, tr.predicted, tr.attempt)
	}
	if tr.grantedMem < tr.t.PeakMem() {
		return fmt.Errorf("cwsi: task %s OOM-killed: granted %.0fB, peak %.0fB",
			tr.req.TaskID, tr.grantedMem, tr.t.PeakMem())
	}
	if tr.c.injectFail != nil && tr.c.injectFail(tr.req.WorkflowID, tr.req.TaskID, tr.attempt) {
		return fmt.Errorf("cwsi: injected transient failure of %s (attempt %d)", tr.req.TaskID, tr.attempt)
	}
	return nil
}

// Done implements rm.SubmissionHooks: provenance capture, locality notes,
// then the requester's callback.
func (tr *taskRun) Done(r rm.Result) {
	c := tr.c
	if !r.Failed {
		c.noteOutput(tr.req.WorkflowID, tr.req.TaskID, r.Node)
		if tr.predicted > 0 {
			c.predErr.Observe(tr.predicted, float64(r.FinishedAt-r.StartedAt))
		}
	}
	c.record(tr.req, tr.t, tr.attempt, tr.submittedAt, r)
	if tr.req.Done != nil {
		tr.req.Done(r)
	} else if tr.req.Handler != nil {
		tr.req.Handler.OnTaskDone(tr.req.TaskID, r)
	}
	// The attempt is dead: the manager dropped its references before calling
	// Done and the requester's callback has returned (r.Submission must not
	// be retained past it — see rm.Result). Recycle the record so
	// steady-state submission allocates only at peak concurrency.
	*tr = taskRun{}
	c.freeRuns = append(c.freeRuns, tr)
}

// subID renders "wf/task#attempt" on a reusable scratch buffer — one string
// allocation instead of fmt's boxing and formatting.
func (c *CWS) subID(wfID string, taskID dag.TaskID, attempt int) string {
	b := append(c.idScratch[:0], wfID...)
	b = append(b, '/')
	b = append(b, taskID...)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(attempt), 10)
	c.idScratch = b
	return string(b)
}

func (c *CWS) record(req TaskRequest, t *dag.Task, attempt int, submittedAt sim.Time, r rm.Result) {
	errMsg := ""
	if r.Err != nil {
		errMsg = r.Err.Error()
	}
	// A submission aborted while still pending (attempt timeout) never got a
	// node; record it with an empty placement.
	nodeName, machineType, speedFactor := "", "", 0.0
	if r.Node != nil {
		nodeName, machineType, speedFactor = r.Node.Name(), r.Node.Type.Name, r.Node.Type.SpeedFactor
	}
	rec := provenance.TaskRecord{
		WorkflowID:  req.WorkflowID,
		TaskID:      req.TaskID,
		Name:        t.Name,
		Attempt:     attempt,
		SubmittedAt: submittedAt,
		StartedAt:   r.StartedAt,
		FinishedAt:  r.FinishedAt,
		Node:        nodeName,
		MachineType: machineType,
		SpeedFactor: speedFactor,
		Cores:       t.Cores,
		MemRequest:  t.MemBytes,
		PeakMem:     t.PeakMem(),
		InputBytes:  t.InputBytes,
		OutputBytes: t.OutputBytes,
		Failed:      r.Failed,
		Error:       errMsg,
		Params:      req.Params,
	}
	// AddTask triggers the provenance→predict observer (CWS.train), which
	// folds the record into the online models before the generation bump
	// below invalidates memoized priorities.
	c.prov.AddTask(rec)
	c.prioGen++ // provenance advanced; memoized priorities may be stale
	if c.observer != nil {
		c.observer(req.WorkflowID, req.TaskID, attempt, r)
	}
}

// WorkflowDone implements Interface.
func (c *CWS) WorkflowDone(id string) {
	if st := c.workflows[id]; st != nil {
		st.done = true
	}
}

// rmAdapter bridges the CWS strategy into rm.Strategy. It doubles as the
// sort.Interface over (subs, keys) so a dispatch round sorts the manager's
// scratch slice in place with memoized priority keys — no per-round slice
// allocations and no O(n²) insertion sort.
type rmAdapter struct {
	cws  *CWS
	subs []*rm.Submission
	keys []float64
}

func (a *rmAdapter) Name() string { return "cws/" + a.cws.strategy.Name() }

func (a *rmAdapter) Len() int { return len(a.subs) }
func (a *rmAdapter) Swap(i, j int) {
	a.subs[i], a.subs[j] = a.subs[j], a.subs[i]
	a.keys[i], a.keys[j] = a.keys[j], a.keys[i]
}

// Less orders by descending priority; sort.Stable keeps equal keys in
// submission order — the same (priority desc, submission order asc) total
// order the historical insertion sort produced.
func (a *rmAdapter) Less(i, j int) bool { return a.keys[i] > a.keys[j] }

func (a *rmAdapter) Prioritize(pending []*rm.Submission) []*rm.Submission {
	if len(pending) <= 1 {
		return pending // nothing to order; skip key filling entirely
	}
	gen := a.cws.prioGen
	if cap(a.keys) < len(pending) {
		a.keys = make([]float64, len(pending))
	}
	a.keys = a.keys[:len(pending)]
	for i, s := range pending {
		k, ok := s.PriorityCache(gen)
		if !ok {
			k = a.cws.strategy.Priority(s, a.cws.ctx)
			s.SetPriorityCache(k, gen)
		}
		a.keys[i] = k
	}
	a.subs = pending
	sort.Stable(a)
	a.subs = nil
	return pending
}

func (a *rmAdapter) PickNode(s *rm.Submission, candidates []*cluster.Node) *cluster.Node {
	return a.cws.strategy.PickNode(s, candidates, a.cws.ctx)
}

// StartWorkflow begins driving a registered workflow without running the
// engine, so several workflows can share one cluster concurrently (the
// multi-tenant setting the CWS evaluation uses). onDone fires once with the
// workflow's makespan or an error.
//
// Without a recovery policy (SetRecovery), failed tasks are resubmitted
// immediately up to maxRetries times and the first terminal failure fails the
// workflow. With a policy, the policy's attempt budget replaces maxRetries,
// resubmissions wait out the policy's backoff (recorded into provenance), the
// breaker can abandon retries cluster-wide, and a terminal failure degrades
// gracefully: the task's unreachable descendants are abandoned and the rest
// of the workflow completes on the healthy capacity.
func (c *CWS) StartWorkflow(id string, maxRetries int, onDone func(sim.Time, error)) error {
	st := c.workflows[id]
	if st == nil {
		return fmt.Errorf("cwsi: workflow %q not registered", id)
	}
	w := st.wf
	eng := c.mgr.Cluster().Engine()
	run := &wfRun{
		c:             c,
		id:            id,
		w:             w,
		eng:           eng,
		start:         eng.Now(),
		remaining:     w.Len(),
		remainingDeps: make(map[dag.TaskID]int, w.Len()),
		retries:       map[dag.TaskID]int{},
		skipped:       map[dag.TaskID]bool{},
		maxRetries:    maxRetries,
		limit:         maxRetries,
		onDone:        onDone,
	}
	if c.recovery != nil {
		run.limit = c.recovery.Attempts() - 1
		run.breaker = c.recovery.NewBreaker()
	}
	for _, t := range w.Tasks() {
		run.remainingDeps[t.ID] = len(t.Deps)
	}
	for _, t := range w.Roots() {
		run.submit(t)
	}
	return nil
}

// wfRun is one StartWorkflow execution: the dependency bookkeeping plus the
// shared completion handler (TaskDoneHandler), so driving a task costs one
// TaskRequest instead of a fresh Done closure per submission.
type wfRun struct {
	c             *CWS
	id            string
	w             *dag.Workflow
	eng           *sim.Engine
	start         sim.Time
	remaining     int
	remainingDeps map[dag.TaskID]int
	retries       map[dag.TaskID]int
	skipped       map[dag.TaskID]bool
	finished      bool
	maxRetries    int
	limit         int
	breaker       *fault.Breaker
	onDone        func(sim.Time, error)
}

func (run *wfRun) fail(err error) {
	if !run.finished {
		run.finished = true
		run.onDone(0, err)
	}
}

func (run *wfRun) completeOne() {
	run.remaining--
	if run.remaining == 0 && !run.finished {
		run.finished = true
		run.c.WorkflowDone(run.id)
		run.onDone(run.eng.Now()-run.start, nil)
	}
}

func (run *wfRun) skip(t *dag.Task) {
	for _, cid := range run.w.ChildIDs(t.ID) {
		if run.skipped[cid] {
			continue
		}
		run.skipped[cid] = true
		run.c.recStats.Skipped++
		run.completeOne()
		run.skip(run.w.Task(cid))
	}
}

func (run *wfRun) submit(t *dag.Task) {
	err := run.c.SubmitTask(TaskRequest{WorkflowID: run.id, TaskID: t.ID, Handler: run})
	if err != nil {
		run.fail(err)
	}
}

// OnTaskDone implements TaskDoneHandler.
func (run *wfRun) OnTaskDone(taskID dag.TaskID, r rm.Result) {
	c := run.c
	task := run.w.Task(taskID)
	if r.Failed {
		c.recStats.FailedAttempts++
		run.breaker.Record(true)
		if run.retries[taskID] < run.limit && !run.breaker.Open() {
			run.retries[taskID]++
			if c.recovery == nil {
				run.submit(task)
				return
			}
			d := c.recovery.Backoff(run.retries[taskID], c.recoveryRNG)
			c.recStats.Retries++
			c.recStats.BackoffSec += float64(d)
			c.prov.AnnotateRetry(run.id, taskID, float64(d), c.recovery.String())
			run.eng.After(d, func() { run.submit(task) })
			return
		}
		c.recStats.TerminalFailures++
		if c.recovery == nil {
			run.fail(fmt.Errorf("cwsi: task %s failed after %d retries: %v", taskID, run.maxRetries, r.Err))
			return
		}
		run.completeOne()
		run.skip(task)
		return
	}
	run.breaker.Record(false)
	run.completeOne()
	if run.finished {
		return
	}
	for _, cid := range run.w.ChildIDs(taskID) {
		run.remainingDeps[cid]--
		if run.remainingDeps[cid] == 0 && !run.skipped[cid] {
			run.submit(run.w.Task(cid))
		}
	}
}

// RunWorkflow drives a registered workflow through the CWS: tasks are
// submitted as dependencies complete and failed tasks are resubmitted up to
// maxRetries times. It runs the engine and returns the makespan.
func (c *CWS) RunWorkflow(id string, maxRetries int) (sim.Time, error) {
	eng := c.mgr.Cluster().Engine()
	var makespan sim.Time
	var runErr error
	done := false
	err := c.StartWorkflow(id, maxRetries, func(ms sim.Time, err error) {
		makespan, runErr = ms, err
		done = true
		if err != nil {
			eng.Halt()
		}
	})
	if err != nil {
		return 0, err
	}
	eng.Run()
	if runErr != nil {
		return 0, runErr
	}
	if !done {
		return 0, fmt.Errorf("cwsi: workflow %q stalled (cluster too small for a request?)", id)
	}
	return makespan, nil
}
