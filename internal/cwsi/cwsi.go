// Package cwsi implements the Common Workflow Scheduler (CWS) and its
// interface (CWSI) from §3: a component that lives inside the resource
// manager, receives workflow structure and task metadata from any WMS, and
// uses that information for workflow-aware scheduling, centralized
// provenance, and runtime prediction.
//
// The CWS plugs into rm.TaskManager as its Strategy, so a resource manager
// implements the CWS once and every CWSI-speaking workflow engine benefits
// ("a workflow engine needs to implement support for CWSI to work with all
// resource managers already offering CWSI").
package cwsi

import (
	"fmt"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/predict"
	"hhcw/internal/provenance"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// Interface is the CWSI wire surface as a WMS sees it. CWS implements it;
// WMS adapters (see wms.go) speak it.
type Interface interface {
	// RegisterWorkflow transfers the workflow DAG — task dependencies,
	// resource requests, data sizes, task-specific parameters.
	RegisterWorkflow(id string, w *dag.Workflow) error
	// SubmitTask submits one ready-to-run task of a registered workflow.
	SubmitTask(req TaskRequest) error
	// WorkflowDone tells the CWS no more tasks of this workflow will come.
	WorkflowDone(id string)
}

// TaskRequest is a CWSI task submission.
type TaskRequest struct {
	WorkflowID string
	TaskID     dag.TaskID
	// Runtime computes actual execution time on a node. If nil, the
	// default heterogeneity model (rm.DefaultRuntime) is used.
	Runtime func(t *dag.Task, n *cluster.Node) float64
	// Done is invoked with the terminal result (after provenance capture).
	Done func(rm.Result)
	// Params are task-invocation parameters, stored for provenance.
	Params map[string]string
}

// Context gives strategies access to everything the CWS knows: the DAG, the
// provenance store, and the trained predictor.
type Context struct {
	cws *CWS
}

// Workflow returns the registered workflow for id, or nil.
func (c *Context) Workflow(id string) *dag.Workflow {
	if st := c.cws.workflows[id]; st != nil {
		return st.wf
	}
	return nil
}

// Rank returns the upward rank of a task within its workflow (0 when the
// workflow is unknown). Ranks are computed at registration from nominal
// durations — the static DAG knowledge only a workflow-aware scheduler has.
func (c *Context) Rank(wfID string, taskID dag.TaskID) float64 {
	if st := c.cws.workflows[wfID]; st != nil {
		return st.ranks[taskID]
	}
	return 0
}

// PredictRuntime estimates the runtime of a task (by process name and input
// size) on a node, using the online predictor when trained and the declared
// nominal duration as fallback.
func (c *Context) PredictRuntime(wfID string, taskID dag.TaskID, n *cluster.Node) float64 {
	st := c.cws.workflows[wfID]
	if st == nil {
		return 0
	}
	t := st.wf.Task(taskID)
	if t == nil {
		return 0
	}
	if c.cws.predictor != nil {
		// Prefer Kubestone-style measured machine characteristics over the
		// declared spec (§3.4); they coincide unless hardware misbehaves.
		if sec, ok := c.cws.predictor.Predict(t.Name, t.InputBytes, c.MeasuredSpeed(n)); ok {
			return sec
		}
	}
	return rm.DefaultRuntime(t, n)
}

// ObservedMeanRuntime returns the provenance-store mean reference runtime
// for a process name (ok=false before any successful execution).
func (c *Context) ObservedMeanRuntime(name string) (float64, bool) {
	recs := c.cws.prov.ByTaskName(name)
	sum, n := 0.0, 0
	for _, r := range recs {
		if r.Failed {
			continue
		}
		sf := r.SpeedFactor
		if sf <= 0 {
			sf = 1
		}
		sum += float64(r.Runtime()) * sf
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Strategy is a workflow-aware scheduling policy.
type Strategy interface {
	Name() string
	// Priority scores a pending submission; higher runs first.
	Priority(s *rm.Submission, ctx *Context) float64
	// PickNode chooses among feasible nodes (nil = skip this pass).
	PickNode(s *rm.Submission, candidates []*cluster.Node, ctx *Context) *cluster.Node
}

type wfState struct {
	wf       *dag.Workflow
	ranks    map[dag.TaskID]float64
	attempts map[dag.TaskID]int
	done     bool
}

// CWS is the Common Workflow Scheduler.
type CWS struct {
	mgr       *rm.TaskManager
	prov      *provenance.Store
	predictor predict.RuntimePredictor
	memPred   *predict.MemPredictor
	strategy  Strategy
	workflows map[string]*wfState
	ctx       *Context

	// Data-plane model (see locality.go).
	dataBW  float64
	outputs map[string]*cluster.Node

	// Measured machine characteristics (see profiling.go).
	measuredSpeed map[string]float64

	// Shared recovery policy (see SetRecovery); nil keeps the legacy
	// per-call maxRetries counters.
	recovery    *fault.RetryPolicy
	recoveryRNG *randx.Source
	injectFail  func(wfID string, taskID dag.TaskID, attempt int) bool
	recStats    RecoveryStats
}

// RecoveryStats aggregates policy-driven recovery accounting across the
// workflows driven through StartWorkflow.
type RecoveryStats struct {
	FailedAttempts   int     // failed attempts, recovered or not
	Retries          int     // policy-scheduled resubmissions
	TerminalFailures int     // tasks that exhausted the policy or broke the circuit
	Skipped          int     // descendants abandoned after a terminal failure
	BackoffSec       float64 // total backoff delay injected
}

// New creates a CWS over mgr with the given strategy and installs it as the
// manager's scheduling policy. predictor may be nil (no learned runtimes).
func New(mgr *rm.TaskManager, strategy Strategy, predictor predict.RuntimePredictor) *CWS {
	c := &CWS{
		mgr:       mgr,
		prov:      provenance.NewStore(),
		predictor: predictor,
		strategy:  strategy,
		workflows: map[string]*wfState{},
	}
	c.ctx = &Context{cws: c}
	mgr.SetStrategy(&rmAdapter{cws: c})
	mgr.Cluster().OnNodeDown(func(n *cluster.Node) {
		c.prov.AddNodeEvent(provenance.NodeEvent{At: mgr.Cluster().Engine().Now(), Node: n.Name(), Kind: "down"})
	})
	return c
}

// Provenance exposes the central provenance store (§3.3).
func (c *CWS) Provenance() *provenance.Store { return c.prov }

// Predictor returns the online runtime predictor, if any.
func (c *CWS) Predictor() predict.RuntimePredictor { return c.predictor }

// SetMemPredictor enables memory right-sizing (§3.4, §6.1): first attempts
// of a task are submitted with the predicted peak (plus the predictor's
// safety margin) instead of the user's — typically inflated — request, so
// more tasks pack per node. An under-prediction manifests as an OOM kill;
// the retry falls back to the full declared request.
func (c *CWS) SetMemPredictor(p *predict.MemPredictor) { c.memPred = p }

// Manager returns the underlying resource manager.
func (c *CWS) Manager() *rm.TaskManager { return c.mgr }

// SetRecovery installs the shared fault.RetryPolicy: StartWorkflow then
// derives its retry budget from the policy, delays resubmissions by the
// policy's capped exponential backoff (deterministic jitter from rng, which
// may be nil), circuit-breaks on the policy's threshold, and degrades
// gracefully — a terminally failed task abandons its unreachable descendants
// instead of failing the whole workflow. The per-call maxRetries argument is
// ignored while a policy is installed.
func (c *CWS) SetRecovery(p fault.RetryPolicy, rng *randx.Source) {
	c.recovery = &p
	c.recoveryRNG = rng
}

// SetFaultInjection installs a transient task-failure predicate consulted at
// each attempt's completion (fault.Profile.PlanTaskFailures drives it in
// chaos runs). A true return fails the attempt with an injected error.
func (c *CWS) SetFaultInjection(fn func(wfID string, taskID dag.TaskID, attempt int) bool) {
	c.injectFail = fn
}

// RecoveryStats returns the accumulated recovery accounting.
func (c *CWS) RecoveryStats() RecoveryStats { return c.recStats }

// RegisterWorkflow implements Interface.
func (c *CWS) RegisterWorkflow(id string, w *dag.Workflow) error {
	if _, dup := c.workflows[id]; dup {
		return fmt.Errorf("cwsi: workflow %q already registered", id)
	}
	if err := w.Validate(); err != nil {
		return fmt.Errorf("cwsi: workflow %q: %w", id, err)
	}
	c.workflows[id] = &wfState{
		wf:       w,
		ranks:    w.UpwardRanks(dag.NominalDur),
		attempts: map[dag.TaskID]int{},
	}
	c.prov.RegisterWorkflow(id, w)
	return nil
}

// SubmitTask implements Interface.
func (c *CWS) SubmitTask(req TaskRequest) error {
	st := c.workflows[req.WorkflowID]
	if st == nil {
		return fmt.Errorf("cwsi: workflow %q not registered", req.WorkflowID)
	}
	t := st.wf.Task(req.TaskID)
	if t == nil {
		return fmt.Errorf("cwsi: task %q not in workflow %q", req.TaskID, req.WorkflowID)
	}
	runtime := req.Runtime
	if runtime == nil {
		runtime = rm.DefaultRuntime
	}
	st.attempts[req.TaskID]++
	attempt := st.attempts[req.TaskID]
	submittedAt := c.mgr.Cluster().Engine().Now()

	// Memory right-sizing: predicted peak on the first attempt, the full
	// declared request after an OOM retry.
	mem := t.MemBytes
	if c.memPred != nil && attempt == 1 {
		if pred, ok := c.memPred.Predict(t.Name); ok && pred < mem {
			mem = pred
		}
	}
	grantedMem := mem
	c.mgr.Submit(&rm.Submission{
		ID:         fmt.Sprintf("%s/%s#%d", req.WorkflowID, req.TaskID, attempt),
		WorkflowID: req.WorkflowID,
		TaskID:     req.TaskID,
		Name:       t.Name,
		Cores:      t.Cores,
		GPUs:       t.GPUs,
		Mem:        mem,
		InputBytes: t.InputBytes,
		Runtime: func(n *cluster.Node) float64 {
			d := runtime(t, n)
			if c.dataBW > 0 {
				d += c.remoteInputBytes(req.WorkflowID, t, n) / c.dataBW
			}
			return d
		},
		Validate: func(n *cluster.Node) error {
			if grantedMem < t.PeakMem() {
				return fmt.Errorf("cwsi: task %s OOM-killed: granted %.0fB, peak %.0fB",
					req.TaskID, grantedMem, t.PeakMem())
			}
			if c.injectFail != nil && c.injectFail(req.WorkflowID, req.TaskID, attempt) {
				return fmt.Errorf("cwsi: injected transient failure of %s (attempt %d)", req.TaskID, attempt)
			}
			return nil
		},
		Done: func(r rm.Result) {
			if !r.Failed {
				c.noteOutput(req.WorkflowID, req.TaskID, r.Node)
			}
			c.record(req, t, attempt, submittedAt, r)
			if req.Done != nil {
				req.Done(r)
			}
		},
	})
	return nil
}

func (c *CWS) record(req TaskRequest, t *dag.Task, attempt int, submittedAt sim.Time, r rm.Result) {
	errMsg := ""
	if r.Err != nil {
		errMsg = r.Err.Error()
	}
	// A submission aborted while still pending (attempt timeout) never got a
	// node; record it with an empty placement.
	nodeName, machineType, speedFactor := "", "", 0.0
	if r.Node != nil {
		nodeName, machineType, speedFactor = r.Node.Name(), r.Node.Type.Name, r.Node.Type.SpeedFactor
	}
	rec := provenance.TaskRecord{
		WorkflowID:  req.WorkflowID,
		TaskID:      req.TaskID,
		Name:        t.Name,
		Attempt:     attempt,
		SubmittedAt: submittedAt,
		StartedAt:   r.StartedAt,
		FinishedAt:  r.FinishedAt,
		Node:        nodeName,
		MachineType: machineType,
		SpeedFactor: speedFactor,
		Cores:       t.Cores,
		MemRequest:  t.MemBytes,
		PeakMem:     t.PeakMem(),
		InputBytes:  t.InputBytes,
		OutputBytes: t.OutputBytes,
		Failed:      r.Failed,
		Error:       errMsg,
		Params:      req.Params,
	}
	c.prov.AddTask(rec)
	if c.memPred != nil && !r.Failed {
		c.memPred.Observe(predict.Observation{TaskName: t.Name, PeakMem: t.PeakMem()})
	}
	if c.predictor != nil && !r.Failed {
		c.predictor.Observe(predict.Observation{
			TaskName:    t.Name,
			InputBytes:  t.InputBytes,
			RuntimeSec:  float64(r.FinishedAt - r.StartedAt),
			PeakMem:     rec.PeakMem,
			MachineName: r.Node.Type.Name,
			SpeedFactor: r.Node.Type.SpeedFactor,
		})
	}
}

// WorkflowDone implements Interface.
func (c *CWS) WorkflowDone(id string) {
	if st := c.workflows[id]; st != nil {
		st.done = true
	}
}

// rmAdapter bridges the CWS strategy into rm.Strategy.
type rmAdapter struct {
	cws *CWS
}

func (a *rmAdapter) Name() string { return "cws/" + a.cws.strategy.Name() }

func (a *rmAdapter) Prioritize(pending []*rm.Submission) []*rm.Submission {
	type scored struct {
		s *rm.Submission
		p float64
		i int
	}
	xs := make([]scored, len(pending))
	for i, s := range pending {
		xs[i] = scored{s: s, p: a.cws.strategy.Priority(s, a.cws.ctx), i: i}
	}
	// Stable sort by descending priority, submission order as tiebreak.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && (xs[j].p > xs[j-1].p || (xs[j].p == xs[j-1].p && xs[j].i < xs[j-1].i)); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	out := make([]*rm.Submission, len(xs))
	for i, x := range xs {
		out[i] = x.s
	}
	return out
}

func (a *rmAdapter) PickNode(s *rm.Submission, candidates []*cluster.Node) *cluster.Node {
	return a.cws.strategy.PickNode(s, candidates, a.cws.ctx)
}

// StartWorkflow begins driving a registered workflow without running the
// engine, so several workflows can share one cluster concurrently (the
// multi-tenant setting the CWS evaluation uses). onDone fires once with the
// workflow's makespan or an error.
//
// Without a recovery policy (SetRecovery), failed tasks are resubmitted
// immediately up to maxRetries times and the first terminal failure fails the
// workflow. With a policy, the policy's attempt budget replaces maxRetries,
// resubmissions wait out the policy's backoff (recorded into provenance), the
// breaker can abandon retries cluster-wide, and a terminal failure degrades
// gracefully: the task's unreachable descendants are abandoned and the rest
// of the workflow completes on the healthy capacity.
func (c *CWS) StartWorkflow(id string, maxRetries int, onDone func(sim.Time, error)) error {
	st := c.workflows[id]
	if st == nil {
		return fmt.Errorf("cwsi: workflow %q not registered", id)
	}
	w := st.wf
	eng := c.mgr.Cluster().Engine()
	start := eng.Now()
	remaining := w.Len()
	remainingDeps := make(map[dag.TaskID]int, w.Len())
	retries := map[dag.TaskID]int{}
	skipped := map[dag.TaskID]bool{}
	finished := false
	limit := maxRetries
	var breaker *fault.Breaker
	if c.recovery != nil {
		limit = c.recovery.Attempts() - 1
		breaker = c.recovery.NewBreaker()
	}
	fail := func(err error) {
		if !finished {
			finished = true
			onDone(0, err)
		}
	}
	completeOne := func() {
		remaining--
		if remaining == 0 && !finished {
			finished = true
			c.WorkflowDone(id)
			onDone(eng.Now()-start, nil)
		}
	}
	var skip func(t *dag.Task)
	skip = func(t *dag.Task) {
		for _, child := range w.Children(t.ID) {
			if skipped[child.ID] {
				continue
			}
			skipped[child.ID] = true
			c.recStats.Skipped++
			completeOne()
			skip(child)
		}
	}

	var submit func(t *dag.Task)
	submit = func(t *dag.Task) {
		task := t
		err := c.SubmitTask(TaskRequest{
			WorkflowID: id,
			TaskID:     task.ID,
			Done: func(r rm.Result) {
				if r.Failed {
					c.recStats.FailedAttempts++
					breaker.Record(true)
					if retries[task.ID] < limit && !breaker.Open() {
						retries[task.ID]++
						if c.recovery == nil {
							submit(task)
							return
						}
						d := c.recovery.Backoff(retries[task.ID], c.recoveryRNG)
						c.recStats.Retries++
						c.recStats.BackoffSec += float64(d)
						c.prov.AnnotateRetry(id, task.ID, float64(d), c.recovery.String())
						eng.After(d, func() { submit(task) })
						return
					}
					c.recStats.TerminalFailures++
					if c.recovery == nil {
						fail(fmt.Errorf("cwsi: task %s failed after %d retries: %v", task.ID, maxRetries, r.Err))
						return
					}
					completeOne()
					skip(task)
					return
				}
				breaker.Record(false)
				completeOne()
				if finished {
					return
				}
				for _, child := range w.Children(task.ID) {
					remainingDeps[child.ID]--
					if remainingDeps[child.ID] == 0 && !skipped[child.ID] {
						submit(child)
					}
				}
			},
		})
		if err != nil {
			fail(err)
		}
	}
	for _, t := range w.Tasks() {
		remainingDeps[t.ID] = len(t.Deps)
	}
	for _, t := range w.Roots() {
		submit(t)
	}
	return nil
}

// RunWorkflow drives a registered workflow through the CWS: tasks are
// submitted as dependencies complete and failed tasks are resubmitted up to
// maxRetries times. It runs the engine and returns the makespan.
func (c *CWS) RunWorkflow(id string, maxRetries int) (sim.Time, error) {
	eng := c.mgr.Cluster().Engine()
	var makespan sim.Time
	var runErr error
	done := false
	err := c.StartWorkflow(id, maxRetries, func(ms sim.Time, err error) {
		makespan, runErr = ms, err
		done = true
		if err != nil {
			eng.Halt()
		}
	})
	if err != nil {
		return 0, err
	}
	eng.Run()
	if runErr != nil {
		return 0, runErr
	}
	if !done {
		return 0, fmt.Errorf("cwsi: workflow %q stalled (cluster too small for a request?)", id)
	}
	return makespan, nil
}
