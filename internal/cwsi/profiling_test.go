package cwsi

import (
	"math"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func TestProfileNodesMeasuresSpeeds(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Heterogeneous(eng, 2) // types a(1.0), b(1.4), c(2.0)
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)

	reports, err := cws.ProfileNodes(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3 node types", len(reports))
	}
	for _, r := range reports {
		if math.Abs(r.MeasuredSpeed-r.DeclaredSpeed) > 1e-9 {
			t.Fatalf("%s: measured %v vs declared %v", r.NodeType, r.MeasuredSpeed, r.DeclaredSpeed)
		}
	}
	// The context serves measured speeds (float round-trip tolerance).
	for _, n := range cl.Nodes() {
		if got := cws.ctx.MeasuredSpeed(n); math.Abs(got-n.Type.SpeedFactor) > 1e-9 {
			t.Fatalf("MeasuredSpeed(%s) = %v", n.Name(), got)
		}
	}
}

func TestMeasuredSpeedFallsBackToDeclared(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Heterogeneous(eng, 1)
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	// No profiling run: declared values served.
	n := cl.Nodes()[0]
	if got := cws.ctx.MeasuredSpeed(n); got != n.Type.SpeedFactor {
		t.Fatalf("fallback = %v", got)
	}
}

func TestProfileNodesValidation(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Heterogeneous(eng, 1)
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	if _, err := cws.ProfileNodes(0); err == nil {
		t.Fatal("zero probe duration accepted")
	}
}

func TestProfileRestoresStrategy(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Heterogeneous(eng, 1)
	cws := New(rm.NewTaskManager(cl, nil), Rank{}, nil)
	if _, err := cws.ProfileNodes(10); err != nil {
		t.Fatal(err)
	}
	if cws.strategy.Name() != "rank" {
		t.Fatalf("strategy after profiling = %q", cws.strategy.Name())
	}
}
