package cwsi

import (
	"fmt"
	"strings"

	"hhcw/internal/dag"
)

// Workload is the multi-tenant view a §3 scheduler sees: several workflows —
// typically from different WMS instances — sharing one cluster. Compiling a
// Workload unions them into a single DAG whose task IDs are namespaced by
// source workflow, so the whole tenant mix runs through one environment and
// composes with any other subsystem's workflow.
//
// Workload implements the compose.Compiler interface. The namespacing here
// is deliberately local: compose depends on cwsi (the Kubernetes environment
// schedules via Strategy), so this package cannot import compose.
type Workload struct {
	Name      string
	Workflows []*dag.Workflow
}

// Compile unions the member workflows under per-workflow namespaces
// ("<workflow-name>/<task-id>") and validates the result. Member workflows
// remain independent — no cross-workflow edges — which is exactly the
// multi-tenant contention scenario the CWS predictors are built for.
func (wl Workload) Compile() (*dag.Workflow, error) {
	if wl.Name == "" {
		return nil, fmt.Errorf("cwsi: cannot compile a workload without a name")
	}
	if len(wl.Workflows) == 0 {
		return nil, fmt.Errorf("cwsi: workload %q has no workflows", wl.Name)
	}
	out := dag.New(wl.Name)
	seen := map[string]bool{}
	for _, w := range wl.Workflows {
		if w == nil || w.Len() == 0 {
			return nil, fmt.Errorf("cwsi: workload %q contains an empty workflow", wl.Name)
		}
		if strings.Contains(w.Name, "/") {
			return nil, fmt.Errorf("cwsi: workflow name %q may not contain %q", w.Name, "/")
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("cwsi: duplicate workflow %q in workload %q", w.Name, wl.Name)
		}
		seen[w.Name] = true
		for _, t := range w.Tasks() {
			nt := *t
			nt.ID = dag.TaskID(w.Name) + "/" + t.ID
			nt.Deps = make([]dag.TaskID, len(t.Deps))
			for i, d := range t.Deps {
				nt.Deps[i] = dag.TaskID(w.Name) + "/" + d
			}
			if out.Task(nt.ID) != nil {
				return nil, fmt.Errorf("cwsi: task ID collision on %q in workload %q", nt.ID, wl.Name)
			}
			out.Add(&nt)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
