package cwsi

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/predict"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func smallCluster(eng *sim.Engine, nodes, cores int) *cluster.Cluster {
	return cluster.New(eng, "t", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: cores, MemBytes: 1e12},
		Count: nodes,
	})
}

func chainWorkflow() *dag.Workflow {
	w := dag.New("chain")
	w.Add(&dag.Task{ID: "a", Name: "a", NominalDur: 10})
	w.Add(&dag.Task{ID: "b", Name: "b", NominalDur: 20, Deps: []dag.TaskID{"a"}})
	return w
}

func TestRegisterWorkflowErrors(t *testing.T) {
	eng := sim.NewEngine()
	cws := New(rm.NewTaskManager(smallCluster(eng, 1, 4), nil), Baseline{}, nil)
	w := chainWorkflow()
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	if err := cws.RegisterWorkflow("w", w); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	bad := dag.New("bad")
	bad.Add(&dag.Task{ID: "x", Deps: []dag.TaskID{"ghost"}})
	if err := cws.RegisterWorkflow("bad", bad); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestSubmitTaskErrors(t *testing.T) {
	eng := sim.NewEngine()
	cws := New(rm.NewTaskManager(smallCluster(eng, 1, 4), nil), Baseline{}, nil)
	if err := cws.SubmitTask(TaskRequest{WorkflowID: "nope", TaskID: "a"}); err == nil {
		t.Fatal("unknown workflow accepted")
	}
	cws.RegisterWorkflow("w", chainWorkflow())
	if err := cws.SubmitTask(TaskRequest{WorkflowID: "w", TaskID: "ghost"}); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestRunWorkflowMakespanAndProvenance(t *testing.T) {
	eng := sim.NewEngine()
	cws := New(rm.NewTaskManager(smallCluster(eng, 2, 4), nil), Baseline{}, nil)
	w := chainWorkflow()
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	ms, err := cws.RunWorkflow("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 30 {
		t.Fatalf("makespan = %v, want 30", ms)
	}
	if cws.Provenance().Len() != 2 {
		t.Fatalf("provenance records = %d, want 2", cws.Provenance().Len())
	}
	recs := cws.Provenance().ByWorkflow("w")
	if recs[0].Name != "a" || recs[0].Failed {
		t.Fatalf("first record: %+v", recs[0])
	}
}

func TestRunWorkflowUnregistered(t *testing.T) {
	eng := sim.NewEngine()
	cws := New(rm.NewTaskManager(smallCluster(eng, 1, 1), nil), Baseline{}, nil)
	if _, err := cws.RunWorkflow("nope", 0); err == nil {
		t.Fatal("unregistered workflow ran")
	}
}

func TestRunWorkflowRetriesNodeFailure(t *testing.T) {
	eng := sim.NewEngine()
	cl := smallCluster(eng, 2, 4)
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "long", Name: "long", NominalDur: 100})
	cws.RegisterWorkflow("w", w)
	eng.At(10, func() {
		// Fail node 0 (first fit placed the task there).
		cl.FailNode(cl.Nodes()[0])
	})
	ms, err := cws.RunWorkflow("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 110 { // failed at 10, reran 100s on node 1
		t.Fatalf("makespan = %v, want 110", ms)
	}
	// Provenance has the failed attempt and the successful one.
	recs := cws.Provenance().ByWorkflow("w")
	if len(recs) != 2 || !recs[0].Failed || recs[1].Failed {
		t.Fatalf("attempts: %+v", recs)
	}
	// Node trace captured the failure (§3.3).
	if events := cws.Provenance().NodeEvents(); len(events) != 1 || events[0].Kind != "down" {
		t.Fatalf("node events: %+v", events)
	}
}

func TestRunWorkflowRetriesExhausted(t *testing.T) {
	eng := sim.NewEngine()
	cl := smallCluster(eng, 1, 4)
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "t", Name: "t", NominalDur: 100})
	cws.RegisterWorkflow("w", w)
	eng.At(10, func() { cl.FailNode(cl.Nodes()[0]) })
	if _, err := cws.RunWorkflow("w", 0); err == nil {
		t.Fatal("expected failure with no retries and dead cluster")
	}
}

func TestPredictorTrainsFromExecutions(t *testing.T) {
	eng := sim.NewEngine()
	p := predict.NewMean()
	cws := New(rm.NewTaskManager(smallCluster(eng, 2, 4), nil), Baseline{}, p)
	w := chainWorkflow()
	cws.RegisterWorkflow("w", w)
	if _, err := cws.RunWorkflow("w", 0); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Predict("a", 0, 1)
	if !ok || got != 10 {
		t.Fatalf("trained prediction for a = %v ok=%v, want 10", got, ok)
	}
}

// rankScenario builds a contended workload where workflow-awareness pays:
// a long critical chain plus independent filler tasks that FIFO runs first.
func rankScenario() *dag.Workflow {
	w := dag.New("rank-scenario")
	w.Add(&dag.Task{ID: "fill1", Name: "fill", NominalDur: 50})
	w.Add(&dag.Task{ID: "fill2", Name: "fill", NominalDur: 50})
	w.Add(&dag.Task{ID: "crit", Name: "crit", NominalDur: 10})
	w.Add(&dag.Task{ID: "crit2", Name: "crit", NominalDur: 100, Deps: []dag.TaskID{"crit"}})
	return w
}

func TestRankBeatsFIFOOnCriticalChain(t *testing.T) {
	build := func() *cluster.Cluster { return smallCluster(sim.NewEngine(), 1, 2) }
	res, err := CompareStrategies(build, rankScenario, Rank{})
	if err != nil {
		t.Fatal(err)
	}
	if res["rank"] >= res["fifo"] {
		t.Fatalf("rank (%v) should beat fifo (%v)", res["rank"], res["fifo"])
	}
	if res["fifo"] != 160 {
		t.Fatalf("fifo makespan = %v, want 160", res["fifo"])
	}
	if res["rank"] != 110 {
		t.Fatalf("rank makespan = %v, want 110", res["rank"])
	}
}

func TestFileSizePriorities(t *testing.T) {
	desc := FileSize{}
	asc := FileSize{Ascending: true}
	s := &rm.Submission{InputBytes: 100}
	if desc.Priority(s, nil) != 100 {
		t.Fatal("descending should rank big inputs first")
	}
	if asc.Priority(s, nil) != -100 {
		t.Fatal("ascending should rank big inputs last")
	}
	if desc.Name() == asc.Name() {
		t.Fatal("names should differ")
	}
}

func TestHEFTPicksFastestNode(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "h",
		cluster.Spec{Type: cluster.NodeType{Name: "slow", Cores: 4, SpeedFactor: 1, MemBytes: 1e12}, Count: 1},
		cluster.Spec{Type: cluster.NodeType{Name: "fast", Cores: 4, SpeedFactor: 2, MemBytes: 1e12}, Count: 1},
	)
	cws := New(rm.NewTaskManager(cl, nil), HEFT{}, nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "t", Name: "t", NominalDur: 100, IOFrac: 0})
	cws.RegisterWorkflow("w", w)
	ms, err := cws.RunWorkflow("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 50 { // must land on the 2x node
		t.Fatalf("makespan = %v, want 50 (fast node)", ms)
	}
	if recs := cws.Provenance().ByWorkflow("w"); recs[0].MachineType != "fast" {
		t.Fatalf("placed on %s, want fast", recs[0].MachineType)
	}
}

func TestTaremaColdFallsBackAndWarmSteers(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "h",
		cluster.Spec{Type: cluster.NodeType{Name: "slow", Cores: 8, SpeedFactor: 1, MemBytes: 1e12}, Count: 1},
		cluster.Spec{Type: cluster.NodeType{Name: "fast", Cores: 8, SpeedFactor: 3, MemBytes: 1e12}, Count: 1},
	)
	cws := New(rm.NewTaskManager(cl, nil), Tarema{Groups: 2}, nil)

	// Warm-up workflow: observe a short family and a long family.
	warm := dag.New("warm")
	warm.Add(&dag.Task{ID: "s1", Name: "short", NominalDur: 5})
	warm.Add(&dag.Task{ID: "l1", Name: "long", NominalDur: 500})
	cws.RegisterWorkflow("warm", warm)
	if _, err := cws.RunWorkflow("warm", 0); err != nil {
		t.Fatal(err)
	}

	// Now a long task should be steered to the fast node group.
	w2 := dag.New("w2")
	w2.Add(&dag.Task{ID: "l2", Name: "long", NominalDur: 500})
	cws.RegisterWorkflow("w2", w2)
	if _, err := cws.RunWorkflow("w2", 0); err != nil {
		t.Fatal(err)
	}
	recs := cws.Provenance().ByWorkflow("w2")
	if recs[0].MachineType != "fast" {
		t.Fatalf("warm Tarema placed long task on %s, want fast", recs[0].MachineType)
	}
}

func TestAirflowBigWorkerWaste(t *testing.T) {
	rng := randx.New(3)
	wf := func() *dag.Workflow {
		return dag.ForkJoin(randx.New(9), 2, 6, dag.GenOpts{MeanDur: 60, Cores: 1, MeanMem: 1e9})
	}
	_ = rng

	engA := sim.NewEngine()
	clA := smallCluster(engA, 4, 4)
	big, err := RunAirflowBigWorker(clA, wf())
	if err != nil {
		t.Fatal(err)
	}
	engB := sim.NewEngine()
	clB := smallCluster(engB, 4, 4)
	pods, err := RunNextflowStyle("nextflow", clB, wf(), Rank{})
	if err != nil {
		t.Fatal(err)
	}
	if big.Waste() <= pods.Waste() {
		t.Fatalf("big-worker waste (%v) should exceed pod waste (%v)", big.Waste(), pods.Waste())
	}
	if big.Waste() <= 0.3 {
		t.Fatalf("fork-join big-worker waste = %v, expected substantial idle reservation", big.Waste())
	}
	if pods.Waste() != 0 {
		t.Fatalf("pod-style waste = %v, want 0 (requests match usage)", pods.Waste())
	}
}

func TestCompareStrategiesKeys(t *testing.T) {
	build := func() *cluster.Cluster { return smallCluster(sim.NewEngine(), 2, 4) }
	wf := func() *dag.Workflow { return dag.MontageLike(randx.New(4), 8, dag.GenOpts{MeanDur: 30}) }
	res, err := CompareStrategies(build, wf, Rank{}, FileSize{}, HEFT{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"fifo", "rank", "filesize-desc", "heft"} {
		if _, ok := res[k]; !ok {
			t.Errorf("missing strategy result %q", k)
		}
	}
}

func TestRunResultWaste(t *testing.T) {
	r := RunResult{RequestedCoreSec: 100, UsedCoreSec: 60}
	if r.Waste() != 0.4 {
		t.Fatalf("Waste = %v", r.Waste())
	}
	if (RunResult{}).Waste() != 0 {
		t.Fatal("zero-request waste should be 0")
	}
}

func TestTaskParamsRecordedInProvenance(t *testing.T) {
	// §3.1: "task-specific parameters vary for each task invocation and are
	// passed on" — the CWS must keep them for provenance.
	eng := sim.NewEngine()
	cws := New(rm.NewTaskManager(smallCluster(eng, 1, 4), nil), Baseline{}, nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "t", Name: "tool", NominalDur: 10})
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	done := false
	err := cws.SubmitTask(TaskRequest{
		WorkflowID: "w", TaskID: "t",
		Params: map[string]string{"--threads": "4", "--input": "a.vcf"},
		Done:   func(rm.Result) { done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("task did not run")
	}
	recs := cws.Provenance().ByWorkflow("w")
	if len(recs) != 1 || recs[0].Params["--threads"] != "4" {
		t.Fatalf("params not recorded: %+v", recs)
	}
}
