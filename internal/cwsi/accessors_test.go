package cwsi

import (
	"testing"

	"hhcw/internal/dag"
	"hhcw/internal/predict"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func TestAccessorsAndNames(t *testing.T) {
	eng := sim.NewEngine()
	mgr := rm.NewTaskManager(smallCluster(eng, 1, 4), nil)
	p := predict.NewMean()
	cws := New(mgr, Baseline{}, p)
	if cws.Manager() != mgr {
		t.Fatal("Manager accessor")
	}
	if cws.Predictor() != p {
		t.Fatal("Predictor accessor")
	}
	w := chainWorkflow()
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	if cws.ctx.Workflow("w") != w {
		t.Fatal("Context.Workflow")
	}
	if cws.ctx.Workflow("nope") != nil {
		t.Fatal("unknown workflow should be nil")
	}
	if cws.ctx.Rank("nope", "a") != 0 {
		t.Fatal("unknown-workflow rank should be 0")
	}
	if cws.ctx.PredictRuntime("nope", "a", nil) != 0 {
		t.Fatal("unknown-workflow prediction should be 0")
	}
	if cws.ctx.PredictRuntime("w", "ghost", nil) != 0 {
		t.Fatal("unknown-task prediction should be 0")
	}

	names := map[string]Strategy{
		"fifo":       Baseline{},
		"rank":       Rank{},
		"heft":       HEFT{},
		"tarema":     Tarema{},
		"spread":     Spread{},
		"roundrobin": &RoundRobin{},
		"datalocal":  DataLocal{},
	}
	for want, s := range names {
		if s.Name() != want {
			t.Fatalf("strategy name = %q, want %q", s.Name(), want)
		}
	}
	pin := &pinStrategy{wantType: "x"}
	if pin.Name() != "pin/x" {
		t.Fatalf("pin name = %q", pin.Name())
	}
	adapter := &rmAdapter{cws: cws}
	if adapter.Name() != "cws/fifo" {
		t.Fatalf("adapter name = %q", adapter.Name())
	}
}

func TestPredictRuntimeFallsBackToNominal(t *testing.T) {
	eng := sim.NewEngine()
	cl := smallCluster(eng, 1, 4)
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil) // no predictor
	w := dag.New("w")
	w.Add(&dag.Task{ID: "t", Name: "t", NominalDur: 42, IOFrac: 0})
	cws.RegisterWorkflow("w", w)
	if got := cws.ctx.PredictRuntime("w", "t", cl.Nodes()[0]); got != 42 {
		t.Fatalf("fallback prediction = %v, want 42", got)
	}
}
