package cwsi

import (
	"sort"
	"strings"
	"testing"

	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/predict"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// tenthPredictor underestimates every runtime tenfold: it always predicts
// 10s for tasks that truly run 100s. It does not implement predict.Sampler,
// so the CWS trusts it immediately — the worst case for the overrun killer.
type tenthPredictor struct{}

func (tenthPredictor) Name() string                { return "tenth" }
func (tenthPredictor) Observe(predict.Observation) {}
func (tenthPredictor) Predict(string, float64, float64) (float64, bool) {
	return 10, true
}

func overrunWorkflow() *dag.Workflow {
	w := dag.New("overrun")
	w.Add(&dag.Task{ID: "src", Name: "stage", NominalDur: 100})
	w.Add(&dag.Task{ID: "mid1", Name: "stage", NominalDur: 100, Deps: []dag.TaskID{"src"}})
	w.Add(&dag.Task{ID: "mid2", Name: "stage", NominalDur: 100, Deps: []dag.TaskID{"src"}})
	w.Add(&dag.Task{ID: "sink", Name: "stage", NominalDur: 100, Deps: []dag.TaskID{"mid1", "mid2"}})
	return w
}

func completedSet(c *CWS, wfID string) []string {
	var ids []string
	for _, rec := range c.Provenance().ByWorkflow(wfID) {
		if !rec.Failed {
			ids = append(ids, string(rec.TaskID))
		}
	}
	sort.Strings(ids)
	return ids
}

// TestOverrunMispredictionConverges drives the worst misprediction the
// overrun killer can see — a predictor that underestimates every runtime
// 10x — and proves graceful degradation: each kill routes through the
// shared fault.RetryPolicy, the walltime budget inflates geometrically
// (pred x slack x inflation^kills: 15s, 30s, 60s, 120s), and by the fourth
// attempt the 100s truth fits. The workflow converges to exactly the
// fault-free golden completion set, with the recovery metadata (overrun
// errors, retry backoff annotations) visible in provenance.
func TestOverrunMispredictionConverges(t *testing.T) {
	golden := New(rm.NewTaskManager(smallCluster(sim.NewEngine(), 2, 4), nil), Baseline{}, nil)
	if err := golden.RegisterWorkflow("w", overrunWorkflow()); err != nil {
		t.Fatal(err)
	}
	if _, err := golden.RunWorkflow("w", 0); err != nil {
		t.Fatal(err)
	}
	want := completedSet(golden, "w")
	if len(want) != 4 {
		t.Fatalf("golden completed %v, want all 4 tasks", want)
	}

	cws := New(rm.NewTaskManager(smallCluster(sim.NewEngine(), 2, 4), nil), Baseline{}, tenthPredictor{})
	cws.SetOverrunPolicy(1.5, 2)
	cws.SetRecovery(fault.DefaultRetryPolicy(), randx.New(7))
	if err := cws.RegisterWorkflow("w", overrunWorkflow()); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("w", 0); err != nil {
		t.Fatalf("misprediction must not fail the workflow: %v", err)
	}
	if got := completedSet(cws, "w"); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("completed %v, want golden set %v", got, want)
	}

	// Budgets 15/30/60 are overrun-killed; 120 admits the 100s truth: three
	// kills per task, all recovered, none terminal.
	if got := cws.OverrunKills(); got != 3*4 {
		t.Errorf("overrun kills = %d, want %d", got, 3*4)
	}
	st := cws.RecoveryStats()
	if st.FailedAttempts != 3*4 || st.Retries != 3*4 {
		t.Errorf("recovery stats = %+v, want 12 failed attempts and 12 retries", st)
	}
	if st.TerminalFailures != 0 || st.Skipped != 0 {
		t.Errorf("recovery stats = %+v, want no terminal failures", st)
	}
	if st.BackoffSec <= 0 {
		t.Errorf("backoff = %v, want > 0 (policy-delayed resubmission)", st.BackoffSec)
	}

	// The kills and the retry plumbing are first-class provenance: failed
	// attempts carry the overrun error and the policy's backoff annotation.
	var overruns, annotated int
	for _, rec := range cws.Provenance().ByWorkflow("w") {
		if rec.Failed && strings.Contains(rec.Error, "walltime-overrun") {
			overruns++
			if rec.RetryDelaySec > 0 {
				annotated++
			}
		}
	}
	if overruns != 3*4 {
		t.Errorf("provenance overrun records = %d, want %d", overruns, 3*4)
	}
	if annotated != overruns {
		t.Errorf("retry-annotated overrun records = %d, want %d", annotated, overruns)
	}

	// The realized prediction errors of the successful attempts are on the
	// books too: four successes, each predicted 10s against ~100s truth.
	pe := cws.PredictionErrors()
	if pe.N != 4 {
		t.Errorf("prediction errors observed = %d, want 4", pe.N)
	}
	if mre := pe.MRE(); mre < 0.85 || mre > 0.95 {
		t.Errorf("MRE = %v, want ~0.9 (10s predicted vs 100s truth)", mre)
	}
}

// TestOverrunDisabledBySlackZero pins the off switch: with no overrun
// policy installed, the same 10x underestimate changes nothing — no kills,
// no retries, single-attempt completion.
func TestOverrunDisabledBySlackZero(t *testing.T) {
	cws := New(rm.NewTaskManager(smallCluster(sim.NewEngine(), 2, 4), nil), Baseline{}, tenthPredictor{})
	cws.SetRecovery(fault.DefaultRetryPolicy(), randx.New(7))
	if err := cws.RegisterWorkflow("w", overrunWorkflow()); err != nil {
		t.Fatal(err)
	}
	if _, err := cws.RunWorkflow("w", 0); err != nil {
		t.Fatal(err)
	}
	if cws.OverrunKills() != 0 {
		t.Fatalf("overrun kills = %d with no policy installed", cws.OverrunKills())
	}
	if st := cws.RecoveryStats(); st.FailedAttempts != 0 {
		t.Fatalf("recovery stats = %+v, want none", st)
	}
}

// TestColdPredictorChangesNothing pins the warmth gate at the CWS level: a
// sampler-aware predictor below MinPredictionSamples must leave makespan
// and provenance identical to no predictor at all, even with the full
// prediction loop (overrun policy, backfill oracle, memory model) armed.
func TestColdPredictorChangesNothing(t *testing.T) {
	run := func(armed bool) (sim.Time, int) {
		var p predict.RuntimePredictor
		if armed {
			p = predict.NewLotaru()
		}
		cws := New(rm.NewTaskManager(smallCluster(sim.NewEngine(), 2, 4), nil), Baseline{}, p)
		if armed {
			// More samples than the run can ever produce: the model trains
			// from provenance but never crosses the warmth gate.
			cws.SetMinPredictionSamples(1 << 30)
			cws.SetMemPredictor(predict.NewMem(0.2))
			cws.SetOverrunPolicy(1.5, 2)
			cws.EnablePredictedBackfill()
		}
		if err := cws.RegisterWorkflow("w", overrunWorkflow()); err != nil {
			t.Fatal(err)
		}
		ms, err := cws.RunWorkflow("w", 0)
		if err != nil {
			t.Fatal(err)
		}
		return ms, cws.Provenance().Len()
	}
	offMs, offRecs := run(false)
	coldMs, coldRecs := run(true)
	if offMs != coldMs || offRecs != coldRecs {
		t.Fatalf("cold predictor diverged: makespan %v vs %v, records %d vs %d",
			offMs, coldMs, offRecs, coldRecs)
	}
}
