package cwsi

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// dataChain builds a pipeline whose stages pass large intermediates.
func dataChain(n int, bytes float64) *dag.Workflow {
	w := dag.New("datachain")
	var prev dag.TaskID
	for i := 0; i < n; i++ {
		id := dag.TaskID("s" + string(rune('0'+i)))
		var deps []dag.TaskID
		var in float64
		if prev != "" {
			deps = []dag.TaskID{prev}
			in = bytes
		}
		w.Add(&dag.Task{
			ID: id, Name: "stage", NominalDur: 100,
			InputBytes: in, OutputBytes: bytes, Deps: deps,
		})
		prev = id
	}
	return w
}

func TestDataLocalityChargesRemoteStaging(t *testing.T) {
	// Two nodes; without locality awareness, FIFO first-fit places every
	// stage on node 0 anyway (first fit), so force the comparison through
	// occupancy: node 0 is busy with a long filler when stage 2 arrives.
	eng := sim.NewEngine()
	cl := cluster.New(eng, "d", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 2, MemBytes: 64e9},
		Count: 2,
	})
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	cws.SetDataBandwidth(100e6) // 100 MB/s inter-node staging

	w := dataChain(2, 10e9) // 10 GB intermediate = 100 s staging if remote
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	ms, err := cws.RunWorkflow("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both stages land on node 0 (first fit): stage 2's input is local,
	// so no staging: 100 + 100.
	if ms != 200 {
		t.Fatalf("local-chain makespan = %v, want 200", ms)
	}
}

func TestDataLocalStrategySticksToProducerNode(t *testing.T) {
	// Node 0 is blocked with filler work when the child becomes ready;
	// first-fit then picks node 1 and pays staging, while DataLocal waits…
	// actually DataLocal also has only node 1 as candidate. Instead verify
	// placement: DataLocal picks the producer node among multiple free
	// candidates even when it is later in the node list.
	eng := sim.NewEngine()
	cl := cluster.New(eng, "d", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9},
		Count: 3,
	})
	cws := New(rm.NewTaskManager(cl, nil), DataLocal{}, nil)
	cws.SetDataBandwidth(100e6)

	// Occupy nodes 0 and 1 partially so all three are candidates, then
	// check the chain stays put. Place the root via a pre-task that fills
	// node 0's remaining capacity... simpler: run the chain and assert all
	// stages executed on the same node.
	w := dataChain(4, 10e9)
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	ms, err := cws.RunWorkflow("w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms != 400 { // 4 × 100 s, zero staging
		t.Fatalf("DataLocal makespan = %v, want 400", ms)
	}
	recs := cws.Provenance().ByWorkflow("w")
	node := recs[0].Node
	for _, r := range recs {
		if r.Node != node {
			t.Fatalf("chain hopped nodes: %s vs %s", r.Node, node)
		}
	}
}

func TestRemoteStagingPenaltyObservable(t *testing.T) {
	// An adversarial strategy that always picks the LAST candidate forces
	// every stage onto a different node than its producer under
	// round-robin-ish occupancy — here we simply compare: bandwidth on vs
	// off with a hop-forcing strategy.
	run := func(bw float64) sim.Time {
		hop := &hopStrategy{}
		eng := sim.NewEngine()
		cl := cluster.New(eng, "d", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 2, MemBytes: 64e9},
			Count: 2,
		})
		cws := New(rm.NewTaskManager(cl, nil), hop, nil)
		cws.SetDataBandwidth(bw)
		w := dataChain(3, 10e9)
		if err := cws.RegisterWorkflow("w", w); err != nil {
			t.Fatal(err)
		}
		ms, err := cws.RunWorkflow("w", 0)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	free := run(0)      // data plane disabled
	charged := run(1e8) // 100 MB/s: 100 s per hopped 10 GB intermediate
	if free != 300 {
		t.Fatalf("uncharged makespan = %v, want 300", free)
	}
	// Stages 2 and 3 hop (alternating nodes): +100 s each.
	if charged != 500 {
		t.Fatalf("charged makespan = %v, want 500", charged)
	}
}

// hopStrategy intentionally alternates nodes to defeat locality.
type hopStrategy struct{ k int }

func (*hopStrategy) Name() string                              { return "hop" }
func (*hopStrategy) Priority(*rm.Submission, *Context) float64 { return 0 }
func (h *hopStrategy) PickNode(s *rm.Submission, c []*cluster.Node, _ *Context) *cluster.Node {
	h.k++
	return c[h.k%len(c)]
}

func TestLocalInputBytesAccounting(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "d", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9},
		Count: 2,
	})
	cws := New(rm.NewTaskManager(cl, nil), Baseline{}, nil)
	w := dataChain(2, 5e9)
	if err := cws.RegisterWorkflow("w", w); err != nil {
		t.Fatal(err)
	}
	// Before any execution, nothing is local anywhere.
	if got := cws.ctx.LocalInputBytes("w", "s1", cl.Nodes()[0]); got != 0 {
		t.Fatalf("cold locality = %v", got)
	}
	if _, err := cws.RunWorkflow("w", 0); err != nil {
		t.Fatal(err)
	}
	// After the run, s0's output is on the node that ran it.
	recs := cws.Provenance().ByWorkflow("w")
	producer := recs[0].Node
	var pn *cluster.Node
	for _, n := range cl.Nodes() {
		if n.Name() == producer {
			pn = n
		}
	}
	if got := cws.ctx.LocalInputBytes("w", "s1", pn); got != 5e9 {
		t.Fatalf("locality on producer = %v, want 5e9", got)
	}
}
