package cwsi

import (
	"fmt"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// WMS adapters model how the engines §3.2 discusses drive a resource
// manager, with and without CWSI support.

// RunResult summarizes one workflow execution for the §3 comparisons.
type RunResult struct {
	Engine           string
	Strategy         string
	Makespan         sim.Time
	RequestedCoreSec float64 // core-seconds reserved from the cluster
	UsedCoreSec      float64 // core-seconds actually computing
}

// Waste returns the fraction of reserved core-seconds left idle.
func (r RunResult) Waste() float64 {
	if r.RequestedCoreSec <= 0 {
		return 0
	}
	return 1 - r.UsedCoreSec/r.RequestedCoreSec
}

// RunNextflowStyle models Nextflow/Argo without CWSI: the WMS submits each
// ready task individually and the resource manager schedules FIFO ("Argo
// also submits each task individually, and Kubernetes then schedules them in
// a FIFO manner"). With a CWS installed, the same submission pattern becomes
// workflow-aware — that is the whole point of the interface.
func RunNextflowStyle(engineName string, cl *cluster.Cluster, w *dag.Workflow, strategy Strategy) (RunResult, error) {
	mgr := rm.NewTaskManager(cl, nil)
	var makespan sim.Time
	var err error
	stratName := "fifo"
	if strategy != nil {
		cws := New(mgr, strategy, nil)
		if err = cws.RegisterWorkflow(w.Name, w); err != nil {
			return RunResult{}, err
		}
		makespan, err = cws.RunWorkflow(w.Name, 0)
		stratName = strategy.Name()
	} else {
		runner := &rm.MakespanRunner{Manager: mgr, Workflow: w, WorkflowID: w.Name}
		makespan = runner.Run()
	}
	if err != nil {
		return RunResult{}, err
	}
	used := 0.0
	for _, t := range w.Tasks() {
		used += t.CPUSeconds()
	}
	return RunResult{
		Engine:           engineName,
		Strategy:         stratName,
		Makespan:         makespan,
		RequestedCoreSec: used, // pods request exactly task shapes for task durations
		UsedCoreSec:      used,
	}, nil
}

// RunAirflowBigWorker models Airflow's Kubernetes strategy (§3.2): "Airflow
// starts a big worker on every node for the whole workflow execution and
// assigns tasks into these worker pods bypassing Kubernetes' task assignment
// logic... the big containers will request resources for the entire workflow
// execution time regardless of the actual load."
//
// Every node is fully reserved from start to finish; tasks are packed into
// worker capacity greedily (FIFO over ready tasks). The result exposes the
// waste at merge points the paper calls out.
func RunAirflowBigWorker(cl *cluster.Cluster, w *dag.Workflow) (RunResult, error) {
	if err := w.Validate(); err != nil {
		return RunResult{}, err
	}
	eng := cl.Engine()
	start := eng.Now()

	// Reserve every node completely for the whole run.
	var allocs []*cluster.Alloc
	for _, n := range cl.UpNodes() {
		a, err := cl.Allocate(n, n.Type.Cores, n.Type.GPUs, n.Type.MemBytes)
		if err != nil {
			return RunResult{}, fmt.Errorf("cwsi: big-worker reservation failed: %w", err)
		}
		allocs = append(allocs, a)
	}

	// Internal capacity ledger per worker.
	type worker struct {
		node      *cluster.Node
		freeCores int
		freeMem   float64
	}
	var workers []*worker
	for _, a := range allocs {
		workers = append(workers, &worker{node: a.Node, freeCores: a.Cores, freeMem: a.Mem})
	}

	remainingDeps := map[dag.TaskID]int{}
	for _, t := range w.Tasks() {
		remainingDeps[t.ID] = len(t.Deps)
	}
	var ready []*dag.Task
	remaining := w.Len()
	usedCoreSec := 0.0
	var finish sim.Time

	var schedule func()
	runTask := func(t *dag.Task, wk *worker) {
		dur := rm.DefaultRuntime(t, wk.node)
		usedCoreSec += dur * float64(t.Cores)
		eng.After(sim.Time(dur), func() {
			wk.freeCores += t.Cores
			wk.freeMem += t.MemBytes
			remaining--
			if remaining == 0 {
				finish = eng.Now()
			}
			for _, c := range w.Children(t.ID) {
				remainingDeps[c.ID]--
				if remainingDeps[c.ID] == 0 {
					ready = append(ready, c)
				}
			}
			schedule()
		})
	}
	schedule = func() {
		var later []*dag.Task
		for _, t := range ready {
			placed := false
			for _, wk := range workers {
				if wk.freeCores >= t.Cores && wk.freeMem >= t.MemBytes {
					wk.freeCores -= t.Cores
					wk.freeMem -= t.MemBytes
					runTask(t, wk)
					placed = true
					break
				}
			}
			if !placed {
				later = append(later, t)
			}
		}
		ready = later
	}
	ready = append(ready, w.Roots()...)
	eng.After(0, schedule)
	eng.Run()
	if remaining != 0 {
		return RunResult{}, fmt.Errorf("cwsi: big-worker run stalled with %d tasks left", remaining)
	}
	for _, a := range allocs {
		cl.Release(a)
	}
	makespan := finish - start
	requested := 0.0
	for _, a := range allocs {
		requested += float64(a.Cores) * float64(makespan)
	}
	return RunResult{
		Engine:           "airflow-bigworker",
		Strategy:         "bigworker",
		Makespan:         makespan,
		RequestedCoreSec: requested,
		UsedCoreSec:      usedCoreSec,
	}, nil
}

// ConcurrentResult reports a multi-tenant run: several workflows sharing one
// cluster under one scheduling policy.
type ConcurrentResult struct {
	Strategy     string
	Makespans    []sim.Time // per workflow, submission order
	MeanMakespan sim.Time
	MaxMakespan  sim.Time
}

// RunConcurrent executes all workflows concurrently on the cluster under the
// given strategy (nil = FIFO baseline) — the shared-cluster setting where
// workflow-aware scheduling pays: the resource manager sees tasks from many
// DAGs interleaved and, with CWSI, can order them by workflow criticality.
func RunConcurrent(cl *cluster.Cluster, wfs []*dag.Workflow, strategy Strategy) (*ConcurrentResult, error) {
	mgr := rm.NewTaskManager(cl, nil)
	if strategy == nil {
		strategy = Baseline{}
	}
	cws := New(mgr, strategy, nil)
	res := &ConcurrentResult{Strategy: strategy.Name(), Makespans: make([]sim.Time, len(wfs))}
	var firstErr error
	remaining := len(wfs)
	for i, w := range wfs {
		i, w := i, w
		if err := cws.RegisterWorkflow(fmt.Sprintf("%s#%d", w.Name, i), w); err != nil {
			return nil, err
		}
		err := cws.StartWorkflow(fmt.Sprintf("%s#%d", w.Name, i), 0, func(ms sim.Time, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			res.Makespans[i] = ms
			remaining--
		})
		if err != nil {
			return nil, err
		}
	}
	cl.Engine().Run()
	if firstErr != nil {
		return nil, firstErr
	}
	if remaining != 0 {
		return nil, fmt.Errorf("cwsi: %d workflows stalled", remaining)
	}
	var sum sim.Time
	for _, ms := range res.Makespans {
		sum += ms
		if ms > res.MaxMakespan {
			res.MaxMakespan = ms
		}
	}
	res.MeanMakespan = sum / sim.Time(len(res.Makespans))
	return res, nil
}

// CompareStrategies runs the same workflow shape under each strategy on
// fresh identical clusters and returns makespans keyed by strategy name,
// with "fifo" as the oblivious baseline. buildCluster must return an
// identical cluster each call (fresh engine included). buildWorkflow is
// called once — Workflow accessors are read-only during runs, so every
// strategy executes the very same DAG instead of regenerating it per run.
func CompareStrategies(buildCluster func() *cluster.Cluster, buildWorkflow func() *dag.Workflow, strategies ...Strategy) (map[string]sim.Time, error) {
	out := map[string]sim.Time{}
	w := buildWorkflow()
	base, err := RunNextflowStyle("nextflow", buildCluster(), w, nil)
	if err != nil {
		return nil, err
	}
	out["fifo"] = base.Makespan
	for _, s := range strategies {
		r, err := RunNextflowStyle("nextflow", buildCluster(), w, s)
		if err != nil {
			return nil, err
		}
		out[s.Name()] = r.Makespan
	}
	return out, nil
}
