package cwsi

import (
	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/predict"
	"hhcw/internal/provenance"
	"hhcw/internal/rm"
)

// This file closes the §3.4 prediction loop on the scheduling side: the
// predictors trained online from provenance (see CWS.train) feed a
// predicted-critical-path priority term (Context.PredictedRank, the
// Predictive strategy wrapper), predicted-duration-aware backfill in the
// resource manager (EnablePredictedBackfill), and predicted-walltime
// enforcement with graceful misprediction recovery (SetOverrunPolicy).
//
// Everything here is gated on model warmth: until a task name has
// MinPredictionSamples valid observations, no prediction is consulted and
// every decision falls back bit-identically to the unpredicted path — the
// cold-start contract the golden fingerprint tests pin.

// SetMinPredictionSamples sets how many valid per-name observations the
// predictors need before their predictions drive decisions (priority terms,
// node refinement, backfill admission, overrun kills, memory right-sizing).
// Values below 1 mean 1 — a model that has seen a name at all counts as
// warm, the historical behavior.
func (c *CWS) SetMinPredictionSamples(n int) { c.minPredSamples = n }

func (c *CWS) minWarm() int {
	if c.minPredSamples > 1 {
		return c.minPredSamples
	}
	return 1
}

// warmFor reports whether the runtime predictor is warm enough for a task
// name. Predictors that cannot report sample counts (no predict.Sampler)
// are trusted as soon as they exist; all bundled predictors implement it.
func (c *CWS) warmFor(name string) bool {
	if c.predictor == nil {
		return false
	}
	if s, ok := c.predictor.(predict.Sampler); ok {
		return s.Samples(name) >= c.minWarm()
	}
	return true
}

// memWarmFor is the same gate for the memory model.
func (c *CWS) memWarmFor(name string) bool {
	return c.memPred != nil && c.memPred.Samples(name) >= c.minWarm()
}

// PredictedRank returns the predicted-critical-path upward rank of a task:
// HEFT-style rank over reference-machine *predicted* runtimes, with the
// declared nominal duration as per-task fallback. It returns 0 for every
// task while the model is cold for every name in the workflow, so a
// strategy term built on it contributes nothing until predictions exist.
//
// Ranks are memoized per workflow under the priority-cache generation
// (prioGen): every provenance record bumps the generation, so ranks — like
// the strategies' memoized priorities — are recomputed exactly when the
// knowledge they derive from may have changed, and never more often.
func (ctx *Context) PredictedRank(wfID string, taskID dag.TaskID) float64 {
	c := ctx.cws
	st := c.workflows[wfID]
	if st == nil {
		return 0
	}
	if st.predGen != c.prioGen {
		st.predGen = c.prioGen
		st.predRanks = c.predictedRanks(st)
	}
	if st.predRanks == nil {
		return 0
	}
	return st.predRanks[taskID]
}

// predictedRanks computes the predicted upward ranks for one workflow, or
// nil while the model is cold for every task name in it.
func (c *CWS) predictedRanks(st *wfState) map[dag.TaskID]float64 {
	warmAny := false
	for _, t := range st.wf.Tasks() {
		if c.warmFor(t.Name) {
			warmAny = true
			break
		}
	}
	if !warmAny {
		return nil
	}
	return st.wf.UpwardRanks(func(t *dag.Task) float64 {
		if c.warmFor(t.Name) {
			if sec, ok := c.predictor.Predict(t.Name, t.InputBytes, 1); ok {
				return sec
			}
		}
		return t.NominalDur
	})
}

// Predictive composes an inner strategy with the prediction loop:
//
//   - Priority adds CPWeight × PredictedRank to the inner priority, so a
//     stateful policy (the service layer's deficit-weighted fair share,
//     say) keeps its own ordering and gains a predicted-critical-path
//     tie-break/boost. The sum is memoized under the shared prioGen cache,
//     and PredictedRank invalidates on the same generation — composition
//     cannot go stale.
//   - PickNode consults the inner strategy first and respects its veto
//     (a nil from a quota-gating policy stays nil, and any state the inner
//     pick mutates is mutated exactly once). When the model is warm for the
//     submission's task name, the pick is refined to the candidate with the
//     lowest predicted runtime (measured machine speeds); predictions that
//     tie keep the inner choice.
//
// While the model is cold both methods delegate exactly, so a Predictive
// wrapper over strategy S is bit-identical to S until predictions engage.
// A nil Inner behaves like Baseline (submission order, first fit).
type Predictive struct {
	Inner Strategy
	// CPWeight scales the predicted-rank seconds added to the inner
	// priority; 0 means 1.
	CPWeight float64
}

// Name implements Strategy.
func (p Predictive) Name() string {
	if p.Inner != nil {
		return "predictive+" + p.Inner.Name()
	}
	return "predictive"
}

func (p Predictive) weight() float64 {
	if p.CPWeight > 0 {
		return p.CPWeight
	}
	return 1
}

// Priority implements Strategy.
func (p Predictive) Priority(s *rm.Submission, ctx *Context) float64 {
	base := 0.0
	if p.Inner != nil {
		base = p.Inner.Priority(s, ctx)
	}
	return base + p.weight()*ctx.PredictedRank(s.WorkflowID, s.TaskID)
}

// PickNode implements Strategy.
func (p Predictive) PickNode(s *rm.Submission, candidates []*cluster.Node, ctx *Context) *cluster.Node {
	var pick *cluster.Node
	if p.Inner != nil {
		pick = p.Inner.PickNode(s, candidates, ctx)
	} else {
		pick = firstFit(candidates)
	}
	if pick == nil || !ctx.cws.warmFor(s.Name) {
		return pick
	}
	best, bestSec := pick, 0.0
	if sec, ok := ctx.cws.predictor.Predict(s.Name, s.InputBytes, ctx.MeasuredSpeed(pick)); ok {
		bestSec = sec
	} else {
		return pick
	}
	for _, n := range candidates {
		if n == pick {
			continue
		}
		if sec, ok := ctx.cws.predictor.Predict(s.Name, s.InputBytes, ctx.MeasuredSpeed(n)); ok && sec < bestSec {
			best, bestSec = n, sec
		}
	}
	return best
}

// SetOverrunPolicy arms predicted-walltime enforcement: an attempt whose
// execution would exceed predicted × slack is killed at that budget and
// fails with a walltime-overrun error, which routes through the installed
// recovery policy (SetRecovery) like any other failure — backoff,
// provenance retry annotation, circuit breaker, graceful degradation. Each
// overrun of a task inflates its next budget by the inflation factor
// (budget = predicted × slack × inflation^priorOverruns), so even a model
// that underestimates by 10× converges to completion in a few retries
// instead of live-locking.
//
// Kills only engage while the model is warm for the task's name (see
// SetMinPredictionSamples); slack <= 0 disarms the policy, inflation
// values below 1 are treated as 1 (no growth).
func (c *CWS) SetOverrunPolicy(slack, inflation float64) {
	if inflation < 1 {
		inflation = 1
	}
	c.overrunSlack, c.overrunInfl = slack, inflation
}

// OverrunKills returns how many attempts the overrun policy has killed.
func (c *CWS) OverrunKills() int { return c.overrunKills }

// PredictionErrors returns the accumulated placement-time prediction
// accuracy: one (predicted, actual) pair per successful attempt that had a
// warm prediction when it was placed.
func (c *CWS) PredictionErrors() predict.Errors { return c.predErr }

// EnablePredictedBackfill wires the runtime predictor into the resource
// manager's EASY-style backfill (rm.TaskManager.SetDurationOracle): when
// the head of the queue cannot be placed, the manager reserves the node
// where capacity frees earliest, and shorter-predicted tasks may slot into
// the hole only if they finish before that shadow time — the "no
// hole-owner delay" invariant. The oracle answers only while the model is
// warm for a task's name, so a cold model reports no predictions and the
// manager's behavior stays bit-identical to the unreserved greedy pass.
func (c *CWS) EnablePredictedBackfill() {
	c.mgr.SetDurationOracle(func(s *rm.Submission, n *cluster.Node) (float64, bool) {
		if !c.warmFor(s.Name) {
			return 0, false
		}
		return c.predictor.Predict(s.Name, s.InputBytes, c.ctx.MeasuredSpeed(n))
	})
}

// train is the provenance→predict observer (§3.4): installed on the
// provenance store at construction, it folds every successful attempt into
// the runtime and memory models as it is recorded. Speed factors prefer the
// profiled machine characteristics (ProfileNodes) over the declared spec;
// they coincide unless hardware misbehaves.
func (c *CWS) train(rec provenance.TaskRecord) {
	if rec.Failed {
		return
	}
	if c.memPred != nil {
		c.memPred.Observe(predict.Observation{TaskName: rec.Name, PeakMem: rec.PeakMem})
	}
	if c.predictor == nil {
		return
	}
	sf := rec.SpeedFactor
	if v, ok := c.measuredSpeed[rec.MachineType]; ok {
		sf = v
	}
	c.predictor.Observe(predict.Observation{
		TaskName:    rec.Name,
		InputBytes:  rec.InputBytes,
		RuntimeSec:  float64(rec.FinishedAt - rec.StartedAt),
		PeakMem:     rec.PeakMem,
		MachineName: rec.MachineType,
		SpeedFactor: sf,
	})
}
