package rm

import (
	"errors"
	"fmt"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// StreamRunner drives a dag.Expander through a TaskManager: the streaming
// sibling of MakespanRunner for runs too large to materialize. Tasks are
// pulled from the expander as capacity (and the MaxResident window) allows,
// and retired — observed by the Observe hook, then recycled by the expander —
// the moment they turn terminal, so resident state is O(in-flight), not
// O(tasks). Everything else mirrors MakespanRunner exactly: submission IDs,
// retry/backoff/breaker behavior, fault-plan lookups, skip accounting —
// which is why an unthrottled streaming run is event-for-event identical to
// the eager runner (the equivalence the sweep tests pin).
//
// MaxResident == 0 leaves admission unthrottled: every ready task is
// submitted immediately, exactly as MakespanRunner would, so fingerprints
// match by construction. A positive MaxResident bounds emitted-but-not-
// terminal tasks; scheduling is still deterministic, and for workloads whose
// concurrently-ready tasks share one resource shape (scatter shards) the
// schedule is provably identical to the unthrottled one as long as the
// window exceeds the cluster's concurrency (see docs/scale.md).
type StreamRunner struct {
	Manager *TaskManager
	Source  dag.Expander
	// Runtime maps a task and node to an execution time. If nil, nominal
	// duration scaled by node speed is used.
	Runtime func(t *dag.Task, n *cluster.Node) float64
	// WorkflowID labels submissions for CWSI-aware strategies.
	WorkflowID string

	// Retry / RetryRNG / Breaker: the recovery policy, as in MakespanRunner.
	Retry    *fault.RetryPolicy
	RetryRNG *randx.Source
	Breaker  *fault.Breaker
	// FailPlan returns how many leading attempts of the task at eager
	// insertion index idx fail with an injected transient error — the
	// streaming form of MakespanRunner.FailAttempts, keyed by index so the
	// fault plan needs no materialized task list.
	FailPlan func(idx int) int
	// OnComplete fires once, when the last task turns terminal.
	OnComplete func()
	// Observe, when non-nil, sees every task's terminal result just before
	// the task is retired — the hook that folds records into provenance's
	// running aggregates. The Task and Result are only valid for the call.
	Observe func(t *dag.Task, r Result)
	// MaxResident caps tasks emitted but not yet terminal (0 = unlimited).
	MaxResident int

	total        int
	doneCount    int
	resident     int
	peakResident int
	finishAt     sim.Time
	stats        RunStats
	// freeAttempts recycles srAttempt records, as MakespanRunner pools
	// mrAttempts; an attempt stays live across its own retries and is
	// recycled at its task's terminal result.
	freeAttempts []*srAttempt
}

// srAttempt is one task's submission state: the Submission and every
// per-attempt callback bundled into a single pooled allocation. Unlike
// mrAttempt it carries the task across retries (the streaming runner has no
// task map to look things up in) plus the eager insertion index and the
// resolved fault-plan count.
type srAttempt struct {
	sr         *StreamRunner
	task       *dag.Task
	idx        int
	attempt    int
	failN      int
	timeoutEv  *sim.Event
	resubmitFn func()
	sub        Submission
}

// RuntimeOn implements SubmissionHooks.
func (a *srAttempt) RuntimeOn(n *cluster.Node) float64 { return a.sr.Runtime(a.task, n) }

// ValidateOn implements SubmissionHooks.
func (a *srAttempt) ValidateOn(n *cluster.Node) error {
	if a.attempt <= a.failN {
		return fmt.Errorf("rm: injected transient failure of %s (attempt %d)", a.task.ID, a.attempt)
	}
	return nil
}

// Done implements SubmissionHooks.
func (a *srAttempt) Done(r Result) {
	sr := a.sr
	if a.timeoutEv != nil {
		a.timeoutEv.Cancel()
		a.timeoutEv = nil
	}
	r.Submission = nil
	sr.stats.Attempts++
	if r.Failed {
		sr.stats.Failures++
		if errors.Is(r.Err, fault.ErrTimeout) {
			sr.stats.Timeouts++
		}
		sr.Breaker.Record(true)
		if sr.Retry != nil && sr.Retry.ShouldRetry(a.attempt) && !sr.Breaker.Open() {
			d := sr.Retry.Backoff(a.attempt, sr.RetryRNG)
			sr.stats.Retries++
			sr.stats.BackoffSec += float64(d)
			sr.Manager.eng.After(d, a.resubmitFn)
			return
		}
		sr.stats.TerminalFailures++
		task := a.task
		id := task.ID
		sr.recycle(a)
		sr.retire(task, r)
		skipped := sr.Source.TaskFailed(id)
		sr.stats.Skipped += skipped
		sr.taskDone(1 + skipped)
		sr.pull()
		return
	}
	sr.Breaker.Record(false)
	task := a.task
	id := task.ID
	sr.recycle(a)
	sr.retire(task, r)
	// The source learns of the completion before completion accounting runs:
	// a dynamic expander (EnTK PostExec, ref splices) may grow Total here,
	// and taskDone must see the grown denominator or it would declare the
	// run complete with stages still pending. For static expanders TaskDone
	// has no engine side effects, so the swap is behavior-preserving — the
	// equivalence goldens pin it.
	sr.Source.TaskDone(id)
	sr.taskDone(1)
	sr.pull()
}

// Run pulls the expansion through the manager until it drains and returns
// the makespan in virtual seconds.
func (sr *StreamRunner) Run() sim.Time {
	if sr.Runtime == nil {
		sr.Runtime = DefaultRuntime
	}
	sr.total = sr.Source.Total()
	startAt := sr.Manager.eng.Now()
	sr.pull()
	sr.Manager.eng.Run()
	if sr.doneCount != sr.total {
		panic(fmt.Sprintf("rm: streaming workflow %s stalled: %d/%d tasks done (cluster too small for some request?)",
			sr.Source.Name(), sr.doneCount, sr.total))
	}
	return sr.finishAt - startAt
}

// pull admits ready tasks while the residency window allows.
func (sr *StreamRunner) pull() {
	for sr.MaxResident <= 0 || sr.resident < sr.MaxResident {
		t, idx, ok := sr.Source.Next()
		if !ok {
			return
		}
		sr.resident++
		if sr.resident > sr.peakResident {
			sr.peakResident = sr.resident
		}
		sr.submit(t, idx)
	}
}

// submit queues the first attempt of t.
func (sr *StreamRunner) submit(t *dag.Task, idx int) {
	var a *srAttempt
	if n := len(sr.freeAttempts); n > 0 {
		a = sr.freeAttempts[n-1]
		sr.freeAttempts = sr.freeAttempts[:n-1]
	} else {
		a = new(srAttempt)
		aa := a
		a.resubmitFn = func() {
			aa.attempt++
			aa.sr.start(aa)
		}
	}
	a.sr, a.task, a.idx, a.attempt = sr, t, idx, 1
	a.failN = 0
	if sr.FailPlan != nil {
		a.failN = sr.FailPlan(idx)
	}
	sr.start(a)
}

// start submits the attempt currently described by a.
func (sr *StreamRunner) start(a *srAttempt) {
	id := sr.WorkflowID + "/" + string(a.task.ID)
	if a.attempt > 1 {
		id = fmt.Sprintf("%s#%d", id, a.attempt)
	}
	a.sub = Submission{
		ID:         id,
		WorkflowID: sr.WorkflowID,
		TaskID:     a.task.ID,
		Name:       a.task.Name,
		Cores:      a.task.Cores,
		GPUs:       a.task.GPUs,
		Mem:        a.task.MemBytes,
		InputBytes: a.task.InputBytes,
		Hooks:      a,
	}
	sr.Manager.Submit(&a.sub)
	if sr.Retry != nil && sr.Retry.TimeoutSec > 0 {
		attempt := a.attempt
		a.timeoutEv = sr.Manager.eng.After(sim.Time(sr.Retry.TimeoutSec), func() {
			sr.Manager.Abort(id, fmt.Errorf("rm: %s attempt %d exceeded %.0fs: %w",
				id, attempt, sr.Retry.TimeoutSec, fault.ErrTimeout))
		})
	}
}

// retire hands the terminal task to the Observe hook, then back to the
// expander for recycling, and frees its residency slot.
func (sr *StreamRunner) retire(t *dag.Task, r Result) {
	if sr.Observe != nil {
		sr.Observe(t, r)
	}
	sr.resident--
	sr.Source.Retire(t)
}

// recycle returns a dead attempt record to the pool, keeping its bound
// resubmit closure.
func (sr *StreamRunner) recycle(a *srAttempt) {
	fn := a.resubmitFn
	*a = srAttempt{resubmitFn: fn}
	sr.freeAttempts = append(sr.freeAttempts, a)
}

// taskDone advances the terminal count by n and fires OnComplete when the
// whole expansion has settled. Total is re-read per terminal task because
// dynamic sources grow it as the run progresses; for static sources it is
// the same constant every time.
func (sr *StreamRunner) taskDone(n int) {
	sr.doneCount += n
	sr.total = sr.Source.Total()
	if sr.doneCount == sr.total {
		sr.finishAt = sr.Manager.eng.Now()
		if sr.OnComplete != nil {
			sr.OnComplete()
		}
	}
}

// PeakResident returns the high-water mark of tasks emitted but not yet
// terminal — the number the memory-ceiling regression gates.
func (sr *StreamRunner) PeakResident() int { return sr.peakResident }

// Stats returns the run's failure/recovery accounting.
func (sr *StreamRunner) Stats() RunStats { return sr.stats }
