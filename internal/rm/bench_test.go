package rm

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// BenchmarkTaskManagerWorkflow measures end-to-end scheduling of a ~400-task
// workflow on a 16-node cluster (one full virtual execution per iteration).
func BenchmarkTaskManagerWorkflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.New(eng, "b", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 16, MemBytes: 1e12},
			Count: 16,
		})
		mgr := NewTaskManager(cl, nil)
		w := dag.RandomLayered(randx.New(7), 10, 40, dag.GenOpts{MeanDur: 100})
		runner := &MakespanRunner{Manager: mgr, Workflow: w, WorkflowID: "b"}
		_ = runner.Run()
	}
}

// BenchmarkBatchManagerChurn measures batch job grant/release cycles.
func BenchmarkBatchManagerChurn(b *testing.B) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "b", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 64e9},
		Count: 64,
	})
	m := NewBatchManager(cl, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Submit(&BatchJob{
			ID: "j", Account: "a", Nodes: 8, Walltime: 1e6,
			OnStart: func(a *BatchAlloc) { eng.After(10, a.Release) },
		}); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}
