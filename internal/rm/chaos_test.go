package rm

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// Satellite regression: a node failure must revoke the BatchManager's live
// allocations on that node and notify the owning job. Before the reap path a
// "down" node kept its whole-node reservation and its pilot work ran to
// completion.
func TestBatchAllocReapsFailedNode(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 3, 8)
	m := NewBatchManager(cl, nil)
	var alloc *BatchAlloc
	var failedNode *cluster.Node
	err := m.Submit(&BatchJob{
		ID: "j", Account: "a", Nodes: 3, Walltime: 10000,
		OnStart:    func(a *BatchAlloc) { alloc = a },
		OnNodeFail: func(a *BatchAlloc, n *cluster.Node) { failedNode = n },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.At(100, func() {
		if alloc == nil {
			t.Fatal("job not started")
		}
		cl.FailNode(alloc.Nodes[1])
	})
	eng.At(200, func() {
		if failedNode != alloc.Nodes[1] {
			t.Errorf("OnNodeFail got %v, want node 1", failedNode)
		}
		if alloc.DownNodes() != 1 || alloc.UpNodes() != 2 {
			t.Errorf("down=%d up=%d, want 1/2", alloc.DownNodes(), alloc.UpNodes())
		}
		cl.RepairNode(alloc.Nodes[1])
	})
	eng.At(300, func() { alloc.Release() })
	eng.Run()
	// Releasing the job after the failed node was reaped and repaired must
	// not over-credit capacity: every node ends exactly full.
	for _, n := range cl.Nodes() {
		if n.FreeCores() != n.Type.Cores {
			t.Fatalf("node %s free cores %d, want %d (revoked alloc double-released)",
				n.Name(), n.FreeCores(), n.Type.Cores)
		}
	}
}

// A stale alloc released after its node failed and was repaired must settle
// gauges only — crediting it would push free capacity past physical capacity.
func TestRevokedAllocNoOverCredit(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 1, 8)
	n := cl.Nodes()[0]
	a, err := cl.Allocate(n, 4, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNode(n)
	cl.RepairNode(n) // resets counters to full
	if !a.Revoked() {
		t.Fatal("alloc should be revoked after its node failed")
	}
	cl.Release(a)
	if n.FreeCores() != 8 {
		t.Fatalf("free cores = %d, want 8", n.FreeCores())
	}
	eng.Run()
}

// The e2e robustness contract at the rm layer: a task running on a node that
// fails mid-flight fails its attempt, backs off under the configured policy,
// and succeeds on a healthy node.
func TestMakespanRunnerRecoversFromNodeFailure(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 2, 8)
	m := NewTaskManager(cl, nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", NominalDur: 100})
	retry := &fault.RetryPolicy{MaxAttempts: 3, BaseDelaySec: 7, Multiplier: 2}
	mr := &MakespanRunner{Manager: m, Workflow: w, WorkflowID: "w", Retry: retry}
	var victim *cluster.Node
	eng.At(50, func() {
		for _, r := range m.running {
			victim = r.alloc.Node
			cl.FailNode(victim)
			return
		}
		t.Error("task not running at t=50")
	})
	ms := mr.Run()
	// 50s on the doomed node + 7s backoff + 100s clean run.
	if ms != 157 {
		t.Fatalf("makespan = %v, want 157", ms)
	}
	res := mr.Results()["a"]
	if res.Failed {
		t.Fatal("task did not recover")
	}
	if res.Node == victim {
		t.Fatal("retry landed on the failed node")
	}
	st := mr.Stats()
	if st.Failures != 1 || st.Retries != 1 || st.BackoffSec != 7 || st.TerminalFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMakespanRunnerInjectedTransientFailures(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 2, 8), nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", NominalDur: 10})
	w.Add(&dag.Task{ID: "b", NominalDur: 10, Deps: []dag.TaskID{"a"}})
	retry := &fault.RetryPolicy{MaxAttempts: 5, BaseDelaySec: 5, Multiplier: 2}
	mr := &MakespanRunner{
		Manager: m, Workflow: w, WorkflowID: "w",
		Retry:        retry,
		FailAttempts: map[dag.TaskID]int{"a": 2},
	}
	ms := mr.Run()
	// a: 10 fail + 5 backoff + 10 fail + 10 backoff + 10 ok; b: 10.
	if ms != 55 {
		t.Fatalf("makespan = %v, want 55", ms)
	}
	st := mr.Stats()
	if st.Attempts != 4 || st.Failures != 2 || st.Retries != 2 || st.BackoffSec != 15 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMakespanRunnerTerminalFailureSkipsDescendants(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 2, 8), nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", NominalDur: 10})
	w.Add(&dag.Task{ID: "b", NominalDur: 10, Deps: []dag.TaskID{"a"}})
	w.Add(&dag.Task{ID: "c", NominalDur: 10, Deps: []dag.TaskID{"b"}})
	w.Add(&dag.Task{ID: "d", NominalDur: 30}) // independent branch
	retry := &fault.RetryPolicy{MaxAttempts: 2, BaseDelaySec: 5}
	mr := &MakespanRunner{
		Manager: m, Workflow: w, WorkflowID: "w",
		Retry:        retry,
		FailAttempts: map[dag.TaskID]int{"a": 99},
	}
	ms := mr.Run()
	// The independent branch keeps the run alive: makespan is d's 30s.
	if ms != 30 {
		t.Fatalf("makespan = %v, want 30", ms)
	}
	st := mr.Stats()
	if st.TerminalFailures != 1 || st.Skipped != 2 {
		t.Fatalf("stats = %+v, want 1 terminal + 2 skipped", st)
	}
	if !mr.Results()["a"].Failed {
		t.Fatal("a should be terminally failed")
	}
	if _, ran := mr.Results()["b"]; ran {
		t.Fatal("b ran despite unreachable dependency")
	}
	if mr.Results()["d"].Failed {
		t.Fatal("independent branch failed")
	}
}

func TestMakespanRunnerAttemptTimeout(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 8), nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "slow", NominalDur: 1000})
	retry := &fault.RetryPolicy{MaxAttempts: 2, BaseDelaySec: 10, TimeoutSec: 50}
	mr := &MakespanRunner{Manager: m, Workflow: w, WorkflowID: "w", Retry: retry}
	ms := mr.Run()
	// Two 50s timeouts + one 10s backoff.
	if ms != 110 {
		t.Fatalf("makespan = %v, want 110", ms)
	}
	st := mr.Stats()
	if st.Timeouts != 2 || st.TerminalFailures != 1 {
		t.Fatalf("stats = %+v, want 2 timeouts, 1 terminal", st)
	}
}

func TestMakespanRunnerBreakerStopsRetries(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 2, 8), nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", NominalDur: 10})
	retry := &fault.RetryPolicy{MaxAttempts: 10, BaseDelaySec: 1, BreakThreshold: 2}
	mr := &MakespanRunner{
		Manager: m, Workflow: w, WorkflowID: "w",
		Retry:        retry,
		Breaker:      retry.NewBreaker(),
		FailAttempts: map[dag.TaskID]int{"a": 99},
	}
	mr.Run()
	st := mr.Stats()
	if st.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (breaker threshold)", st.Attempts)
	}
	if st.TerminalFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !mr.Breaker.Open() {
		t.Fatal("breaker should be open")
	}
}

// Regression for the repair path: work queued while all capacity was down
// must start when a node comes back, via the OnNodeUp → kick subscription.
func TestTaskManagerRunsQueuedWorkAfterRepair(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 1, 8)
	m := NewTaskManager(cl, nil)
	n := cl.Nodes()[0]
	cl.FailNode(n)
	var res Result
	m.Submit(&Submission{ID: "queued", Cores: 2, Runtime: fixedRuntime(10), Done: func(r Result) { res = r }})
	eng.At(100, func() { cl.RepairNode(n) })
	eng.Run()
	if res.Submission == nil || res.Failed {
		t.Fatalf("queued task never ran after repair: %+v", res)
	}
	if res.StartedAt != 100 || res.FinishedAt != 110 {
		t.Fatalf("task ran at [%v,%v], want [100,110]", res.StartedAt, res.FinishedAt)
	}
}

// Determinism: the same FailAttempts plan and retry policy give bit-identical
// makespans and stats.
func TestMakespanRunnerChaosDeterministic(t *testing.T) {
	run := func() (sim.Time, RunStats) {
		eng := sim.NewEngine()
		m := NewTaskManager(testCluster(eng, 4, 8), nil)
		rng := randx.New(77)
		w := dag.RandomLayered(rng.Fork(), 4, 6, dag.GenOpts{MeanDur: 60})
		prof := fault.Profile{TaskFailProb: 0.3, TaskFailPersist: 2}
		plan := prof.PlanTaskFailures(w.Len(), rng.Fork())
		failAttempts := make(map[dag.TaskID]int)
		for i, task := range w.Tasks() {
			failAttempts[task.ID] = plan[i]
		}
		retry := fault.DefaultRetryPolicy()
		mr := &MakespanRunner{
			Manager: m, Workflow: w, WorkflowID: "w",
			Retry: &retry, RetryRNG: rng.Fork(),
			FailAttempts: failAttempts,
		}
		return mr.Run(), mr.Stats()
	}
	ms1, st1 := run()
	ms2, st2 := run()
	if ms1 != ms2 || st1 != st2 {
		t.Fatalf("chaos run not deterministic: %v/%+v vs %v/%+v", ms1, st1, ms2, st2)
	}
	if st1.Failures == 0 {
		t.Fatal("plan injected no failures; test is vacuous")
	}
}
