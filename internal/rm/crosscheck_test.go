package rm

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// The dispatch overhaul replaced the per-submission full node scan with the
// cluster's capacity index. This file replays random tapes of submit /
// cancel / abort / node-fail / node-repair operations through a strategy
// instrumented to rerun the old scan kernel at every placement decision: the
// candidate list the index hands to PickNode must match the rescan, element
// for element, in node-ID order. A mismatch dumps the offending tape to
// crosscheck_tape_failure.json so CI can attach it to the failing run.

// tapeOp is one replayable scheduler-facing operation.
type tapeOp struct {
	At    float64 `json:"at"`
	Op    string  `json:"op"` // submit | cancel | abort | fail | repair
	ID    string  `json:"id,omitempty"`
	Cores int     `json:"cores,omitempty"`
	GPUs  int     `json:"gpus,omitempty"`
	Mem   float64 `json:"mem,omitempty"`
	Dur   float64 `json:"dur,omitempty"`
	Node  int     `json:"node,omitempty"`
}

// checkedFIFO is FIFO instrumented with the historical full-scan kernel as a
// test-only reference: every PickNode cross-checks its candidate slice.
type checkedFIFO struct {
	t          *testing.T
	cl         *cluster.Cluster
	tape       []tapeOp
	seed       int64
	checks     int
	mismatched bool
}

func (c *checkedFIFO) Name() string { return "checked-fifo" }

func (c *checkedFIFO) Prioritize(p []*Submission) []*Submission { return p }

func (c *checkedFIFO) PickNode(s *Submission, candidates []*cluster.Node) *cluster.Node {
	c.checks++
	// The old kernel: scan every node in ID order, keep the feasible ones.
	var want []*cluster.Node
	for _, n := range c.cl.Nodes() {
		if n.Down() {
			continue
		}
		if n.FreeCores() >= s.Cores && n.FreeGPUs() >= s.GPUs && n.FreeMem() >= s.Mem {
			want = append(want, n)
		}
	}
	ok := len(want) == len(candidates)
	if ok {
		for i := range want {
			if want[i] != candidates[i] {
				ok = false
				break
			}
		}
	}
	if !ok && !c.mismatched {
		c.mismatched = true
		c.dumpFailure(s, want, candidates)
		c.t.Errorf("seed %d: index candidates diverge from full rescan for %s (%d cores/%d gpus/%.0f mem): index %d nodes, rescan %d",
			c.seed, s.ID, s.Cores, s.GPUs, s.Mem, len(candidates), len(want))
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[0]
}

// dumpFailure writes the replayable tape plus the diverging query to
// crosscheck_tape_failure.json (uploaded as a CI artifact on test failure).
func (c *checkedFIFO) dumpFailure(s *Submission, want, got []*cluster.Node) {
	names := func(ns []*cluster.Node) []string {
		out := make([]string, len(ns))
		for i, n := range ns {
			out[i] = n.Name()
		}
		return out
	}
	doc := map[string]any{
		"seed": c.seed,
		"tape": c.tape,
		"query": map[string]any{
			"id": s.ID, "cores": s.Cores, "gpus": s.GPUs, "mem": s.Mem,
			"at": float64(c.cl.Engine().Now()),
		},
		"rescan_candidates": names(want),
		"index_candidates":  names(got),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err == nil {
		_ = os.WriteFile("crosscheck_tape_failure.json", data, 0o644)
	}
}

// genTape builds a random operation tape: a burst of submissions with mixed
// shapes, sprinkled with cancels and aborts of earlier IDs and node
// fail/repair churn.
func genTape(r *randx.Source, nodes int) []tapeOp {
	var tape []tapeOp
	n := 0
	for i := 0; i < 220; i++ {
		at := r.Float64() * 400
		switch r.Intn(10) {
		case 0: // fail a node
			tape = append(tape, tapeOp{At: at, Op: "fail", Node: r.Intn(nodes)})
		case 1: // repair a node
			tape = append(tape, tapeOp{At: at, Op: "repair", Node: r.Intn(nodes)})
		case 2: // cancel an earlier submission
			if n > 0 {
				tape = append(tape, tapeOp{At: at, Op: "cancel", ID: fmt.Sprintf("s%03d", r.Intn(n))})
			}
		case 3: // abort an earlier submission
			if n > 0 {
				tape = append(tape, tapeOp{At: at, Op: "abort", ID: fmt.Sprintf("s%03d", r.Intn(n))})
			}
		default: // submit
			tape = append(tape, tapeOp{
				At: at, Op: "submit", ID: fmt.Sprintf("s%03d", n),
				Cores: 1 + r.Intn(12), GPUs: r.Intn(3), Mem: float64(r.Intn(20)) * 4e9,
				Dur: 20 + r.Float64()*200,
			})
			n++
		}
	}
	return tape
}

// replayTape schedules every tape operation at its virtual time.
func replayTape(eng *sim.Engine, cl *cluster.Cluster, m *TaskManager, tape []tapeOp) {
	for _, op := range tape {
		op := op
		switch op.Op {
		case "submit":
			eng.At(sim.Time(op.At), func() {
				m.Submit(&Submission{
					ID: op.ID, Cores: op.Cores, GPUs: op.GPUs, Mem: op.Mem,
					Runtime: fixedRuntime(op.Dur),
				})
			})
		case "cancel":
			eng.At(sim.Time(op.At), func() { m.Cancel(op.ID) })
		case "abort":
			eng.At(sim.Time(op.At), func() { m.Abort(op.ID, fmt.Errorf("tape abort")) })
		case "fail":
			eng.At(sim.Time(op.At), func() { cl.FailNode(cl.Nodes()[op.Node]) })
		case "repair":
			eng.At(sim.Time(op.At), func() { cl.RepairNode(cl.Nodes()[op.Node]) })
		}
	}
}

func TestPrioritizeScanCrossCheckTapes(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		eng := sim.NewEngine()
		cl := cluster.Heterogeneous(eng, 5) // 15 nodes, three families
		strat := &checkedFIFO{t: t, cl: cl, seed: seed}
		m := NewTaskManager(cl, strat)
		tape := genTape(randx.New(seed*7919+3), cl.NodeCount())
		strat.tape = tape
		replayTape(eng, cl, m, tape)
		eng.Run()
		if strat.checks == 0 {
			t.Fatalf("seed %d: tape produced no placement decisions", seed)
		}
		if t.Failed() {
			return // the artifact describes the first divergence; stop here
		}
	}
}

func TestQueueWaitsReturnsCopy(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 4), nil)
	m.Submit(&Submission{ID: "a", Cores: 1, Runtime: fixedRuntime(5)})
	m.Submit(&Submission{ID: "b", Cores: 4, Runtime: fixedRuntime(5)})
	eng.Run()
	w := m.QueueWaits()
	if len(w) != 2 {
		t.Fatalf("waits = %v", w)
	}
	w[0], w[1] = -777, -777 // caller mutates its copy
	again := m.QueueWaits()
	if again[0] == -777 || again[1] == -777 {
		t.Fatalf("QueueWaits exposed manager state: %v", again)
	}
	if again[0] != 0 || again[1] != 5 {
		t.Fatalf("waits corrupted: %v", again)
	}
}
