package rm

import (
	"fmt"
	"sort"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// Queue-wait accounting property, checked over random submit/cancel/abort/
// node-churn tapes (the crosscheck harness's generator):
//
//   - QueueWaits() is exactly the multiset of StartedAt−SubmittedAt over the
//     submissions that actually started on a node — nothing more, nothing
//     less. In particular cancelled submissions NEVER contribute.
//   - Abort of a still-pending submission yields a terminal Result with
//     Node == nil whose QueueWait() covers the full pending span (StartedAt
//     pinned to the abort time, as documented on Abort) — and that wait does
//     not leak into QueueWaits().
//
// The per-tenant p99 queue-wait SLO metrics in internal/service are computed
// from exactly these two sources, so this pins their provenance.
func TestQueueWaitAccountingProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		eng := sim.NewEngine()
		cl := cluster.Heterogeneous(eng, 4) // 12 nodes, three families
		m := NewTaskManager(cl, nil)
		tape := genTape(randx.New(seed*104729+11), cl.NodeCount())

		results := make(map[string]Result)
		submitted := make(map[string]sim.Time)
		for _, op := range tape {
			op := op
			switch op.Op {
			case "submit":
				eng.At(sim.Time(op.At), func() {
					submitted[op.ID] = eng.Now()
					m.Submit(&Submission{
						ID: op.ID, Cores: op.Cores, GPUs: op.GPUs, Mem: op.Mem,
						Runtime: fixedRuntime(op.Dur),
						Done: func(r Result) {
							if _, dup := results[op.ID]; dup {
								t.Fatalf("seed %d: %s terminated twice", seed, op.ID)
							}
							results[op.ID] = r
						},
					})
				})
			case "cancel":
				eng.At(sim.Time(op.At), func() { m.Cancel(op.ID) })
			case "abort":
				eng.At(sim.Time(op.At), func() { m.Abort(op.ID, fmt.Errorf("tape abort")) })
			case "fail":
				eng.At(sim.Time(op.At), func() { cl.FailNode(cl.Nodes()[op.Node]) })
			case "repair":
				eng.At(sim.Time(op.At), func() { cl.RepairNode(cl.Nodes()[op.Node]) })
			}
		}
		eng.Run()

		var want []float64
		pendingAborts := 0
		for id, r := range results {
			if r.SubmittedAt != submitted[id] {
				t.Fatalf("seed %d: %s SubmittedAt=%v, submitted at %v", seed, id, r.SubmittedAt, submitted[id])
			}
			if r.Node != nil {
				// Started on a node: its wait must appear in QueueWaits,
				// whether it later completed, failed, or was aborted running.
				want = append(want, float64(r.StartedAt-r.SubmittedAt))
				continue
			}
			// Never started: only Abort-while-pending produces a terminal
			// result without a node.
			pendingAborts++
			if !r.Failed || r.Err == nil {
				t.Fatalf("seed %d: %s nodeless result not a failure: %+v", seed, id, r)
			}
			if r.StartedAt != r.FinishedAt {
				t.Fatalf("seed %d: %s pending abort StartedAt=%v FinishedAt=%v", seed, id, r.StartedAt, r.FinishedAt)
			}
			if r.QueueWait() < 0 {
				t.Fatalf("seed %d: %s negative pending-abort wait %v", seed, id, r.QueueWait())
			}
		}

		got := m.QueueWaits()
		sort.Float64s(want)
		sort.Float64s(got)
		if len(got) != len(want) {
			t.Fatalf("seed %d: QueueWaits has %d entries, want %d started submissions (%d pending aborts, %d results)",
				seed, len(got), len(want), pendingAborts, len(results))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: QueueWaits[%d]=%v, want %v", seed, i, got[i], want[i])
			}
		}
		// Queue gauge must agree with the leftover live queue at drain time:
		// whatever never became feasible, minus everything cancelled/placed.
		if int(m.QueueSeries().Value()) != m.livePending() {
			t.Fatalf("seed %d: final gauge %v != live pending %d", seed, m.QueueSeries().Value(), m.livePending())
		}
	}
}
