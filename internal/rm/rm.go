// Package rm simulates the resource managers the paper's workflow systems
// talk to (§3: "such as SLURM, Kubernetes, or OpenPBS").
//
// Two managers are provided:
//
//   - TaskManager ("KubeSim"): a Kubernetes-like, task-granular manager that
//     places individual task submissions onto nodes. Its scheduling policy is
//     pluggable via Strategy — this is exactly where the Common Workflow
//     Scheduler (internal/cwsi) attaches workflow awareness.
//   - BatchManager: a SLURM-like, node-granular manager with whole-node
//     jobs, walltime limits and fair-share ordering, used by pilots (§4) and
//     the Atlas HPC runs (§5).
//
// Both run entirely in virtual time on a sim.Engine.
package rm

import (
	"errors"
	"fmt"
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/metrics"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// Submission is one task handed to a TaskManager, carrying the resource
// requests and (via CWSI) workflow identity the scheduler may exploit.
type Submission struct {
	ID         string
	WorkflowID string
	TaskID     dag.TaskID
	Name       string // process/tool name

	Cores int
	GPUs  int
	Mem   float64

	// InputBytes is visible to size-aware strategies (§3.5's "file size"
	// strategy).
	InputBytes float64

	// Runtime returns the task's execution time on the given node; the
	// manager calls it once at placement. Ignored when Hooks is set.
	Runtime func(n *cluster.Node) float64

	// Validate, when non-nil, is consulted at completion; a non-nil error
	// turns the execution into a failure (e.g. an OOM kill when the
	// granted memory was below the task's true peak). Ignored when Hooks
	// is set.
	Validate func(n *cluster.Node) error

	// Done is invoked exactly once with the terminal result. Ignored when
	// Hooks is set.
	Done func(Result)

	// Hooks, when non-nil, replaces the Runtime/Validate/Done fields with a
	// single callback object. Submitters on hot paths use it to bundle all
	// per-task state into one allocation instead of three closures.
	Hooks SubmissionHooks

	submittedAt sim.Time
	cancelled   bool
	// placed marks the submission as dispatched within the current schedule
	// pass — a flag on the submission itself so the pass needs no per-round
	// map allocation.
	placed bool
	// prioKey/prioGen memoize a scheduler's priority for this submission
	// (see PriorityCache); gen 0 means "never cached".
	prioKey float64
	prioGen uint64
}

// PriorityCache returns the priority memoized under generation gen, if any.
// Schedulers that sort the pending queue by a derived key use this to
// compute each submission's priority once and reuse it every round until
// their knowledge changes (bumping the generation invalidates all entries
// at once). Generation 0 is reserved and never matches.
func (s *Submission) PriorityCache(gen uint64) (float64, bool) {
	if gen != 0 && s.prioGen == gen {
		return s.prioKey, true
	}
	return 0, false
}

// SetPriorityCache memoizes the submission's priority under generation gen.
func (s *Submission) SetPriorityCache(v float64, gen uint64) {
	s.prioKey, s.prioGen = v, gen
}

// SubmissionHooks bundles a submission's callbacks into one object, the
// allocation-lean alternative to the three closure fields.
type SubmissionHooks interface {
	// RuntimeOn returns the execution time on the given node (Submission.Runtime).
	RuntimeOn(n *cluster.Node) float64
	// ValidateOn is consulted at completion (Submission.Validate semantics).
	ValidateOn(n *cluster.Node) error
	// Done receives the terminal result exactly once.
	Done(Result)
}

func (s *Submission) runtimeOn(n *cluster.Node) float64 {
	if s.Hooks != nil {
		return s.Hooks.RuntimeOn(n)
	}
	return s.Runtime(n)
}

func (s *Submission) validateOn(n *cluster.Node) error {
	if s.Hooks != nil {
		return s.Hooks.ValidateOn(n)
	}
	if s.Validate != nil {
		return s.Validate(n)
	}
	return nil
}

func (s *Submission) done(r Result) {
	if s.Hooks != nil {
		s.Hooks.Done(r)
		return
	}
	if s.Done != nil {
		s.Done(r)
	}
}

// Result is the terminal record for a submission.
type Result struct {
	// Submission is the submission this result terminates. It is valid for
	// the duration of the Done callback; runners that pool their submission
	// records (MakespanRunner, the CWSI) recycle it afterwards, so callbacks
	// must copy any fields they keep rather than retain the pointer.
	Submission  *Submission
	Node        *cluster.Node
	SubmittedAt sim.Time
	StartedAt   sim.Time
	FinishedAt  sim.Time
	Failed      bool
	Err         error
}

// QueueWait returns time spent pending.
func (r Result) QueueWait() sim.Time { return r.StartedAt - r.SubmittedAt }

// Strategy orders the pending queue and picks nodes — the policy surface the
// CWS replaces (§3.1: "workflow engines with CWSI support do not need their
// own scheduler component ... the scheduling happens there").
type Strategy interface {
	Name() string
	// Prioritize returns the pending submissions in scheduling order. It
	// must return a permutation of pending (same elements). The manager
	// passes a scratch copy of its queue, so implementations may reorder
	// the slice in place and return it without copying; the slice is only
	// valid until the pass ends.
	Prioritize(pending []*Submission) []*Submission
	// PickNode chooses among nodes that can currently fit s. Returning nil
	// skips s this pass.
	PickNode(s *Submission, candidates []*cluster.Node) *cluster.Node
}

// FIFO is the baseline workflow-oblivious strategy: submission order,
// first-fit placement. This is how plain Kubernetes/SLURM treat workflow
// tasks (§3.2: "Kubernetes then schedules them in a FIFO manner").
type FIFO struct{}

// Name implements Strategy.
func (FIFO) Name() string { return "fifo" }

// Prioritize implements Strategy: submission order.
func (FIFO) Prioritize(p []*Submission) []*Submission { return p }

// PickNode implements Strategy: first fit.
func (FIFO) PickNode(s *Submission, candidates []*cluster.Node) *cluster.Node {
	if len(candidates) == 0 {
		return nil
	}
	return candidates[0]
}

// TaskManager is the Kubernetes-like task-granular resource manager.
type TaskManager struct {
	eng      *sim.Engine
	cl       *cluster.Cluster
	strategy Strategy

	pending []*Submission
	running map[string]*running

	queueLen  *metrics.Gauge
	runningN  *metrics.Gauge
	completed *metrics.Counter
	failed    *metrics.Counter
	waits     []float64
	// lean drops O(tasks) observational state for extreme-scale runs: the
	// gauge/counter series fold to running aggregates and per-start queue
	// waits stop being recorded. Scheduling decisions are untouched.
	lean bool

	// oracle, when set, arms EASY-style predicted-duration backfill in the
	// dispatch pass (see SetDurationOracle in backfill.go).
	oracle DurationOracle

	schedulePending bool
	// Steady-state scratch, reused across schedule passes so dispatch
	// allocates nothing once warm.
	kickFn       func()
	orderScratch []*Submission
	candScratch  []*cluster.Node
	freeRunning  []*running
	resScratch   []*running
}

type running struct {
	sub   *Submission
	alloc *cluster.Alloc
	endEv *sim.Event
	start sim.Time
	// end is the scheduled completion time, recorded so backfill can
	// simulate capacity releases without touching the event queue.
	end sim.Time
	// allocBox backs alloc: the reservation record is embedded here so a
	// recycled running record carries its Alloc along instead of
	// heap-allocating one per placement.
	allocBox cluster.Alloc
	// endFn is the completion callback, bound to this record once and
	// reused across recycles (steady-state dispatch allocates no closure
	// per task).
	endFn func()
}

// NewTaskManager builds a manager over cl using the given strategy (FIFO if
// nil). It subscribes to node failures (failing affected submissions) and
// repairs (kicking the scheduler, so work queued while capacity was down
// resumes when it returns).
func NewTaskManager(cl *cluster.Cluster, strategy Strategy) *TaskManager {
	if strategy == nil {
		strategy = FIFO{}
	}
	m := &TaskManager{
		eng:       cl.Engine(),
		cl:        cl,
		strategy:  strategy,
		running:   make(map[string]*running, 32),
		pending:   make([]*Submission, 0, 32),
		waits:     make([]float64, 0, 64),
		queueLen:  metrics.NewGauge("rm.queue"),
		runningN:  metrics.NewGauge("rm.running"),
		completed: metrics.NewCounter("rm.completed"),
		failed:    metrics.NewCounter("rm.failed"),
	}
	m.kickFn = func() {
		m.schedulePending = false
		m.schedule()
	}
	cl.OnNodeDown(m.handleNodeDown)
	cl.OnNodeUp(func(*cluster.Node) { m.kick() })
	return m
}

// Reset returns the manager to its just-constructed state over the same
// cluster and engine: the pending queue, running set, recorded waits, and all
// gauges/counters are cleared in place with their capacity retained, and any
// duration oracle is disarmed. Construction identity survives: the strategy,
// lean mode, scratch buffers, pooled running records, and — critically — the
// OnNodeDown/OnNodeUp subscriptions made by NewTaskManager, which must not be
// re-registered on a warm cluster.
func (m *TaskManager) Reset() {
	clear(m.pending)
	m.pending = m.pending[:0]
	clear(m.running)
	m.waits = m.waits[:0]
	m.queueLen.Reset()
	m.runningN.Reset()
	m.completed.Reset()
	m.failed.Reset()
	m.oracle = nil
	m.schedulePending = false
}

// Strategy returns the active scheduling strategy.
func (m *TaskManager) Strategy() Strategy { return m.strategy }

// SetStrategy replaces the scheduling strategy (takes effect next pass).
func (m *TaskManager) SetStrategy(s Strategy) { m.strategy = s }

// Cluster returns the underlying cluster.
func (m *TaskManager) Cluster() *cluster.Cluster { return m.cl }

// QueueLen returns the number of pending submissions.
func (m *TaskManager) QueueLen() int { return len(m.pending) }

// RunningCount returns the number of executing submissions.
func (m *TaskManager) RunningCount() int { return len(m.running) }

// Completed returns the count of successful completions.
func (m *TaskManager) Completed() int { return int(m.completed.Value()) }

// Failed returns the count of failed submissions.
func (m *TaskManager) Failed() int { return int(m.failed.Value()) }

// QueueWaits returns a copy of the observed queue waits (seconds) of started
// submissions. Returning a copy keeps callers from mutating manager state
// through the shared backing array. A lean manager records none.
func (m *TaskManager) QueueWaits() []float64 {
	return append([]float64(nil), m.waits...)
}

// SetLean switches the manager to lean observation for extreme-scale runs:
// the queue/running gauges and completion counters fold to running
// aggregates (Completed/Failed/Max stay exact) and queue waits stop being
// recorded, so manager-side memory is O(in-flight) at any task count.
// Scheduling behavior is bit-identical. Must be called before any Submit.
func (m *TaskManager) SetLean() {
	m.lean = true
	m.queueLen.Fold()
	m.runningN.Fold()
	m.completed.Fold()
	m.failed.Fold()
}

// RunningSeries exposes the running-task gauge for concurrency plots.
func (m *TaskManager) RunningSeries() *metrics.Gauge { return m.runningN }

// QueueSeries exposes the pending-queue gauge.
func (m *TaskManager) QueueSeries() *metrics.Gauge { return m.queueLen }

// Submit queues a submission for scheduling.
func (m *TaskManager) Submit(s *Submission) {
	if s.ID == "" {
		panic("rm: submission with empty ID")
	}
	if s.Runtime == nil && s.Hooks == nil {
		panic(fmt.Sprintf("rm: submission %s without Runtime or Hooks", s.ID))
	}
	if s.Cores <= 0 {
		s.Cores = 1
	}
	s.submittedAt = m.eng.Now()
	s.placed = false
	s.prioGen = 0
	m.pending = append(m.pending, s)
	m.queueLen.Set(m.eng.Now(), float64(len(m.pending)))
	m.kick()
}

// Cancel removes a pending submission (running ones are not preempted). It
// reports whether the submission was found pending. The queue gauge reflects
// the cancellation immediately — admission-control thresholds read it between
// events — and a schedule pass is kicked so the entry is compacted away.
func (m *TaskManager) Cancel(id string) bool {
	for _, s := range m.pending {
		if s.ID == id && !s.cancelled {
			s.cancelled = true
			m.queueLen.Set(m.eng.Now(), float64(m.livePending()))
			m.kick()
			return true
		}
	}
	return false
}

// livePending counts pending submissions not yet cancelled; cancelled
// entries linger until the next schedule pass compacts them.
func (m *TaskManager) livePending() int {
	n := 0
	for _, s := range m.pending {
		if !s.cancelled {
			n++
		}
	}
	return n
}

// Abort terminates a pending or running submission with a failure carrying
// err — the enforcement hook for the recovery layer's virtual-time attempt
// timeouts. It reports whether the submission was found. For a submission
// aborted while still pending, Result.Node is nil and StartedAt equals the
// abort time.
func (m *TaskManager) Abort(id string, err error) bool {
	if r, ok := m.running[id]; ok {
		r.endEv.Cancel()
		m.finish(r, true, err)
		return true
	}
	for _, s := range m.pending {
		if s.ID == id && !s.cancelled {
			s.cancelled = true
			now := m.eng.Now()
			m.failed.Inc(now, 1)
			m.queueLen.Set(now, float64(m.livePending()))
			m.kick()
			s.done(Result{
				Submission:  s,
				SubmittedAt: s.submittedAt,
				StartedAt:   now,
				FinishedAt:  now,
				Failed:      true,
				Err:         err,
			})
			return true
		}
	}
	return false
}

// kick coalesces schedule passes into one per event timestamp.
func (m *TaskManager) kick() {
	if m.schedulePending {
		return
	}
	m.schedulePending = true
	m.eng.After(0, m.kickFn)
}

// schedule is the dispatch hot path: one cancelled-entry compaction pass,
// one prioritized placement sweep over the pending queue driven by the
// cluster's free-capacity index (no per-submission node rescan), and one
// placed-entry compaction — all on reusable scratch, so a steady-state pass
// allocates nothing.
func (m *TaskManager) schedule() {
	before := len(m.pending)
	// Drop cancelled entries first.
	live := m.pending[:0]
	for _, s := range m.pending {
		if !s.cancelled {
			live = append(live, s)
		}
	}
	m.pending = live
	if len(m.pending) == 0 {
		return
	}

	m.orderScratch = append(m.orderScratch[:0], m.pending...)
	ordered := m.strategy.Prioritize(m.orderScratch)
	anyPlaced := false
	// Backfill reservation state for this pass (see backfill.go): the first
	// capacity-blocked submission the oracle can predict reserves the node
	// where its capacity frees earliest; later submissions may use that
	// node's hole only if predicted to finish before the shadow time.
	var resNode *cluster.Node
	var shadow sim.Time
	now := m.eng.Now()
	for _, s := range ordered {
		m.candScratch = m.cl.AppendCandidates(m.candScratch[:0], s.Cores, s.GPUs, s.Mem)
		if resNode != nil {
			m.candScratch = m.filterReserved(m.candScratch, s, resNode, shadow, now)
		}
		if len(m.candScratch) == 0 {
			if resNode == nil && m.oracle != nil {
				resNode, shadow = m.reserve(s)
			}
			continue
		}
		node := m.strategy.PickNode(s, m.candScratch)
		if node == nil {
			continue
		}
		r := m.grabRunning()
		if err := m.cl.AllocateInto(&r.allocBox, node, s.Cores, s.GPUs, s.Mem); err != nil {
			m.freeRunning = append(m.freeRunning, r)
			continue // raced with nothing (single-threaded), but be safe
		}
		s.placed = true
		anyPlaced = true
		m.start(s, r)
	}
	if anyPlaced {
		rest := m.pending[:0]
		for _, s := range m.pending {
			if !s.placed {
				rest = append(rest, s)
			}
		}
		m.pending = rest
	}
	// Refresh the gauge whenever the pass changed queue depth — placement or
	// cancelled-entry compaction alike (the latter used to leave it stale).
	if len(m.pending) != before {
		m.queueLen.Set(m.eng.Now(), float64(len(m.pending)))
	}
}

// grabRunning pops a recycled running record or allocates a fresh one whose
// completion callback is bound exactly once.
func (m *TaskManager) grabRunning() *running {
	if n := len(m.freeRunning); n > 0 {
		r := m.freeRunning[n-1]
		m.freeRunning = m.freeRunning[:n-1]
		return r
	}
	r := &running{}
	r.endFn = func() {
		if err := r.sub.validateOn(r.alloc.Node); err != nil {
			m.finish(r, true, err)
			return
		}
		m.finish(r, false, nil)
	}
	return r
}

// start dispatches s on the reservation already written into r.allocBox.
func (m *TaskManager) start(s *Submission, r *running) {
	now := m.eng.Now()
	dur := s.runtimeOn(r.allocBox.Node)
	if dur < 0 {
		dur = 0
	}
	r.sub, r.alloc, r.start = s, &r.allocBox, now
	r.end = now + sim.Time(dur)
	m.running[s.ID] = r
	m.runningN.AddDelta(now, 1)
	if !m.lean {
		m.waits = append(m.waits, float64(now-s.submittedAt))
	}
	r.endEv = m.eng.After(sim.Time(dur), r.endFn)
}

func (m *TaskManager) finish(r *running, failed bool, err error) {
	now := m.eng.Now()
	delete(m.running, r.sub.ID)
	m.cl.Release(r.alloc)
	m.runningN.AddDelta(now, -1)
	if failed {
		m.failed.Inc(now, 1)
	} else {
		m.completed.Inc(now, 1)
	}
	res := Result{
		Submission:  r.sub,
		Node:        r.alloc.Node,
		SubmittedAt: r.sub.submittedAt,
		StartedAt:   r.start,
		FinishedAt:  now,
		Failed:      failed,
		Err:         err,
	}
	sub := r.sub
	// r is finished exactly once (Abort and node-down cancel endEv before
	// calling finish), so the record can be recycled for a future start —
	// keeping its bound endFn and allocBox. Recycle before the Done
	// callback: Done may submit follow-up work that schedules immediately.
	r.sub, r.alloc, r.endEv, r.start = nil, nil, nil, 0
	m.freeRunning = append(m.freeRunning, r)
	sub.done(res)
	m.kick()
}

func (m *TaskManager) handleNodeDown(n *cluster.Node) {
	var victims []*running
	for _, r := range m.running {
		if r.alloc.Node == n {
			victims = append(victims, r)
		}
	}
	// Deterministic order.
	sort.Slice(victims, func(i, j int) bool { return victims[i].sub.ID < victims[j].sub.ID })
	for _, r := range victims {
		r.endEv.Cancel()
		m.finish(r, true, fmt.Errorf("rm: node %s failed", n.Name()))
	}
	m.kick()
}

// MakespanRunner drives a whole dag.Workflow through a TaskManager,
// submitting tasks as their dependencies complete, and reports the makespan.
// This is the common harness for the §3 scheduling studies.
//
// With Retry set it is also the chaos harness: failed attempts (node loss,
// injected transient faults, timeouts) are resubmitted under the policy's
// capped exponential backoff until the attempt budget is exhausted or the
// Breaker opens; a terminally failed task cascade-skips its unreachable
// descendants so the rest of the workflow degrades gracefully on the healthy
// capacity instead of stalling.
type MakespanRunner struct {
	Manager  *TaskManager
	Workflow *dag.Workflow
	// Runtime maps a task and node to an execution time. If nil, nominal
	// duration scaled by node speed is used.
	Runtime func(t *dag.Task, n *cluster.Node) float64
	// WorkflowID labels submissions for CWSI-aware strategies.
	WorkflowID string

	// Retry, when non-nil, is the shared recovery policy applied to every
	// failed attempt. Nil preserves fail-fast semantics (one attempt).
	Retry *fault.RetryPolicy
	// RetryRNG supplies deterministic backoff jitter (may be nil).
	RetryRNG *randx.Source
	// Breaker, when non-nil, circuit-breaks retries across the whole run
	// after consecutive failures (graceful degradation under a dying
	// substrate). Use Retry.NewBreaker() for the policy's threshold.
	Breaker *fault.Breaker
	// FailAttempts maps task IDs to how many leading attempts fail with an
	// injected transient error (fault.Profile.PlanTaskFailures output).
	FailAttempts map[dag.TaskID]int
	// OnComplete fires once, when the last task turns terminal — the hook
	// that stops a fault.Injector so the engine can drain.
	OnComplete func()

	doneCount     int
	results       map[dag.TaskID]Result
	finishAt      sim.Time
	stats         RunStats
	remainingDeps map[dag.TaskID]int
	skipped       map[dag.TaskID]bool
	// freeAttempts recycles mrAttempt records: an attempt is dead once its
	// Done hook returns (retry closures capture the task, not the attempt),
	// so steady-state submission allocates only at peak concurrency.
	freeAttempts []*mrAttempt
	// idMemo caches first-attempt submission IDs per task. An ID is a pure
	// function of (WorkflowID, TaskID), so the memo survives Reset as a
	// capacity cache and is cleared only when WorkflowID changes — warm
	// sessions replaying the same workflow shape re-derive zero ID strings.
	idMemo   map[dag.TaskID]string
	idMemoWf string
}

// mrAttempt is one submission attempt of one task: the Submission and every
// per-attempt callback bundled into a single allocation (via SubmissionHooks)
// instead of three closures plus their captures.
type mrAttempt struct {
	mr        *MakespanRunner
	task      *dag.Task
	attempt   int
	timeoutEv *sim.Event
	sub       Submission
}

// RuntimeOn implements SubmissionHooks.
func (a *mrAttempt) RuntimeOn(n *cluster.Node) float64 { return a.mr.Runtime(a.task, n) }

// ValidateOn implements SubmissionHooks.
func (a *mrAttempt) ValidateOn(n *cluster.Node) error {
	if a.attempt <= a.mr.FailAttempts[a.task.ID] {
		return fmt.Errorf("rm: injected transient failure of %s (attempt %d)", a.task.ID, a.attempt)
	}
	return nil
}

// Done implements SubmissionHooks.
func (a *mrAttempt) Done(r Result) {
	mr, task, attempt := a.mr, a.task, a.attempt
	if a.timeoutEv != nil {
		a.timeoutEv.Cancel()
	}
	// The attempt is dead once this hook returns: the manager dropped its
	// references before calling it and the retry closure below captures the
	// task, not the attempt. Recycle up front — everything needed is in
	// locals, and follow-up submits then reuse the record.
	*a = mrAttempt{}
	mr.freeAttempts = append(mr.freeAttempts, a)
	// Results() records must not pin the pooled Submission (see Results).
	r.Submission = nil
	mr.stats.Attempts++
	if r.Failed {
		mr.stats.Failures++
		if errors.Is(r.Err, fault.ErrTimeout) {
			mr.stats.Timeouts++
		}
		mr.Breaker.Record(true)
		if mr.Retry != nil && mr.Retry.ShouldRetry(attempt) && !mr.Breaker.Open() {
			d := mr.Retry.Backoff(attempt, mr.RetryRNG)
			mr.stats.Retries++
			mr.stats.BackoffSec += float64(d)
			mr.Manager.eng.After(d, func() { mr.submit(task, attempt+1) })
			return
		}
		mr.stats.TerminalFailures++
		mr.results[task.ID] = r
		mr.taskDone()
		mr.skip(task)
		return
	}
	mr.Breaker.Record(false)
	mr.results[task.ID] = r
	mr.taskDone()
	for _, cid := range mr.Workflow.ChildIDs(task.ID) {
		mr.remainingDeps[cid]--
		if mr.remainingDeps[cid] == 0 && !mr.skipped[cid] {
			mr.submit(mr.Workflow.Task(cid), 1)
		}
	}
}

// RunStats aggregates one MakespanRunner run's failure/recovery accounting.
type RunStats struct {
	Attempts         int     // attempts that reached a terminal Result
	Failures         int     // failed attempts, recovered or not
	Retries          int     // resubmissions scheduled by the policy
	TerminalFailures int     // tasks that exhausted the policy (or broke the circuit)
	Skipped          int     // descendants cancelled by terminal failures
	Timeouts         int     // attempts ended by the virtual-time timeout
	BackoffSec       float64 // total backoff delay injected
}

// DefaultRuntime scales nominal duration by the node's speed/IO factors.
func DefaultRuntime(t *dag.Task, n *cluster.Node) float64 {
	cpu := t.NominalDur * (1 - t.IOFrac) / n.Type.SpeedFactor
	io := t.NominalDur * t.IOFrac / n.Type.IOFactor
	return cpu + io
}

// Run submits the workflow respecting dependencies and runs the engine until
// the workflow drains. It returns the makespan in virtual seconds.
func (mr *MakespanRunner) Run() sim.Time {
	if err := mr.Workflow.Validate(); err != nil {
		panic(err)
	}
	if mr.Runtime == nil {
		mr.Runtime = DefaultRuntime
	}
	// A runner is reusable across runs: the warm session keeps one and calls
	// Run repeatedly, so every per-run accumulator starts from zero and the
	// maps are cleared in place rather than reallocated.
	mr.doneCount, mr.finishAt, mr.stats = 0, 0, RunStats{}
	if mr.results == nil {
		mr.results = make(map[dag.TaskID]Result, mr.Workflow.Len())
		mr.remainingDeps = make(map[dag.TaskID]int, mr.Workflow.Len())
		mr.skipped = make(map[dag.TaskID]bool)
	} else {
		clear(mr.results)
		clear(mr.remainingDeps)
		clear(mr.skipped)
	}
	if mr.idMemo == nil {
		mr.idMemo = make(map[dag.TaskID]string, mr.Workflow.Len())
	} else if mr.WorkflowID != mr.idMemoWf {
		clear(mr.idMemo)
	}
	mr.idMemoWf = mr.WorkflowID
	startAt := mr.Manager.eng.Now()

	for _, t := range mr.Workflow.Tasks() {
		mr.remainingDeps[t.ID] = len(t.Deps)
	}
	for _, t := range mr.Workflow.Roots() {
		mr.submit(t, 1)
	}
	mr.Manager.eng.Run()
	if mr.doneCount != mr.Workflow.Len() {
		panic(fmt.Sprintf("rm: workflow %s stalled: %d/%d tasks done (cluster too small for some request?)",
			mr.Workflow.Name, mr.doneCount, mr.Workflow.Len()))
	}
	return mr.finishAt - startAt
}

// submit queues one attempt of t.
func (mr *MakespanRunner) submit(t *dag.Task, attempt int) {
	var a *mrAttempt
	if n := len(mr.freeAttempts); n > 0 {
		a = mr.freeAttempts[n-1]
		mr.freeAttempts = mr.freeAttempts[:n-1]
	} else {
		a = new(mrAttempt)
	}
	*a = mrAttempt{mr: mr, task: t, attempt: attempt}
	id, ok := mr.idMemo[t.ID]
	if !ok {
		id = mr.WorkflowID + "/" + string(t.ID)
		mr.idMemo[t.ID] = id
	}
	if attempt > 1 {
		id = fmt.Sprintf("%s#%d", id, attempt)
	}
	a.sub = Submission{
		ID:         id,
		WorkflowID: mr.WorkflowID,
		TaskID:     t.ID,
		Name:       t.Name,
		Cores:      t.Cores,
		GPUs:       t.GPUs,
		Mem:        t.MemBytes,
		InputBytes: t.InputBytes,
		Hooks:      a,
	}
	mr.Manager.Submit(&a.sub)
	if mr.Retry != nil && mr.Retry.TimeoutSec > 0 {
		a.timeoutEv = mr.Manager.eng.After(sim.Time(mr.Retry.TimeoutSec), func() {
			mr.Manager.Abort(id, fmt.Errorf("rm: %s attempt %d exceeded %.0fs: %w",
				id, attempt, mr.Retry.TimeoutSec, fault.ErrTimeout))
		})
	}
}

// skip marks every transitive descendant of a terminally failed task as
// done-without-running: their dependencies can never be satisfied, and
// counting them keeps the run's completion accounting exact.
func (mr *MakespanRunner) skip(t *dag.Task) {
	for _, cid := range mr.Workflow.ChildIDs(t.ID) {
		if mr.skipped[cid] {
			continue
		}
		mr.skipped[cid] = true
		mr.stats.Skipped++
		mr.taskDone()
		mr.skip(mr.Workflow.Task(cid))
	}
}

// taskDone advances the terminal-task count and fires OnComplete when the
// whole workflow has settled.
func (mr *MakespanRunner) taskDone() {
	mr.doneCount++
	if mr.doneCount == mr.Workflow.Len() {
		mr.finishAt = mr.Manager.eng.Now()
		if mr.OnComplete != nil {
			mr.OnComplete()
		}
	}
}

// Reset clears every per-run field — workflow wiring, recovery policy, and
// accounting — so a pooled runner audits identically to a zero one. The
// Manager binding, pooled attempt records, the submission-ID memo, and map
// capacity survive; the next Run starts from the same state a fresh runner
// would.
func (mr *MakespanRunner) Reset() {
	mr.Workflow, mr.Runtime, mr.WorkflowID = nil, nil, ""
	mr.Retry, mr.RetryRNG, mr.Breaker, mr.FailAttempts, mr.OnComplete = nil, nil, nil, nil, nil
	mr.doneCount, mr.finishAt, mr.stats = 0, 0, RunStats{}
	clear(mr.results)
	clear(mr.remainingDeps)
	clear(mr.skipped)
}

// Results returns per-task results after Run. Tasks skipped because an
// ancestor failed terminally have no entry. The stored records carry a nil
// Submission — attempt records are pooled, so retaining the pointer past the
// completion callback would alias a later attempt.
func (mr *MakespanRunner) Results() map[dag.TaskID]Result { return mr.results }

// Stats returns the run's failure/recovery accounting.
func (mr *MakespanRunner) Stats() RunStats { return mr.stats }
