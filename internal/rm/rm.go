// Package rm simulates the resource managers the paper's workflow systems
// talk to (§3: "such as SLURM, Kubernetes, or OpenPBS").
//
// Two managers are provided:
//
//   - TaskManager ("KubeSim"): a Kubernetes-like, task-granular manager that
//     places individual task submissions onto nodes. Its scheduling policy is
//     pluggable via Strategy — this is exactly where the Common Workflow
//     Scheduler (internal/cwsi) attaches workflow awareness.
//   - BatchManager: a SLURM-like, node-granular manager with whole-node
//     jobs, walltime limits and fair-share ordering, used by pilots (§4) and
//     the Atlas HPC runs (§5).
//
// Both run entirely in virtual time on a sim.Engine.
package rm

import (
	"errors"
	"fmt"
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/metrics"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// Submission is one task handed to a TaskManager, carrying the resource
// requests and (via CWSI) workflow identity the scheduler may exploit.
type Submission struct {
	ID         string
	WorkflowID string
	TaskID     dag.TaskID
	Name       string // process/tool name

	Cores int
	GPUs  int
	Mem   float64

	// InputBytes is visible to size-aware strategies (§3.5's "file size"
	// strategy).
	InputBytes float64

	// Runtime returns the task's execution time on the given node; the
	// manager calls it once at placement.
	Runtime func(n *cluster.Node) float64

	// Validate, when non-nil, is consulted at completion; a non-nil error
	// turns the execution into a failure (e.g. an OOM kill when the
	// granted memory was below the task's true peak).
	Validate func(n *cluster.Node) error

	// Done is invoked exactly once with the terminal result.
	Done func(Result)

	submittedAt sim.Time
	cancelled   bool
}

// Result is the terminal record for a submission.
type Result struct {
	Submission  *Submission
	Node        *cluster.Node
	SubmittedAt sim.Time
	StartedAt   sim.Time
	FinishedAt  sim.Time
	Failed      bool
	Err         error
}

// QueueWait returns time spent pending.
func (r Result) QueueWait() sim.Time { return r.StartedAt - r.SubmittedAt }

// Strategy orders the pending queue and picks nodes — the policy surface the
// CWS replaces (§3.1: "workflow engines with CWSI support do not need their
// own scheduler component ... the scheduling happens there").
type Strategy interface {
	Name() string
	// Prioritize returns the pending submissions in scheduling order. It
	// must return a permutation of pending (same elements).
	Prioritize(pending []*Submission) []*Submission
	// PickNode chooses among nodes that can currently fit s. Returning nil
	// skips s this pass.
	PickNode(s *Submission, candidates []*cluster.Node) *cluster.Node
}

// FIFO is the baseline workflow-oblivious strategy: submission order,
// first-fit placement. This is how plain Kubernetes/SLURM treat workflow
// tasks (§3.2: "Kubernetes then schedules them in a FIFO manner").
type FIFO struct{}

// Name implements Strategy.
func (FIFO) Name() string { return "fifo" }

// Prioritize implements Strategy: submission order.
func (FIFO) Prioritize(p []*Submission) []*Submission { return p }

// PickNode implements Strategy: first fit.
func (FIFO) PickNode(s *Submission, candidates []*cluster.Node) *cluster.Node {
	if len(candidates) == 0 {
		return nil
	}
	return candidates[0]
}

// TaskManager is the Kubernetes-like task-granular resource manager.
type TaskManager struct {
	eng      *sim.Engine
	cl       *cluster.Cluster
	strategy Strategy

	pending []*Submission
	running map[string]*running

	queueLen  *metrics.Gauge
	runningN  *metrics.Gauge
	completed *metrics.Counter
	failed    *metrics.Counter
	waits     []float64

	schedulePending bool
}

type running struct {
	sub   *Submission
	alloc *cluster.Alloc
	endEv *sim.Event
	start sim.Time
}

// NewTaskManager builds a manager over cl using the given strategy (FIFO if
// nil). It subscribes to node failures (failing affected submissions) and
// repairs (kicking the scheduler, so work queued while capacity was down
// resumes when it returns).
func NewTaskManager(cl *cluster.Cluster, strategy Strategy) *TaskManager {
	if strategy == nil {
		strategy = FIFO{}
	}
	m := &TaskManager{
		eng:       cl.Engine(),
		cl:        cl,
		strategy:  strategy,
		running:   make(map[string]*running),
		queueLen:  metrics.NewGauge("rm.queue"),
		runningN:  metrics.NewGauge("rm.running"),
		completed: metrics.NewCounter("rm.completed"),
		failed:    metrics.NewCounter("rm.failed"),
	}
	cl.OnNodeDown(m.handleNodeDown)
	cl.OnNodeUp(func(*cluster.Node) { m.kick() })
	return m
}

// Strategy returns the active scheduling strategy.
func (m *TaskManager) Strategy() Strategy { return m.strategy }

// SetStrategy replaces the scheduling strategy (takes effect next pass).
func (m *TaskManager) SetStrategy(s Strategy) { m.strategy = s }

// Cluster returns the underlying cluster.
func (m *TaskManager) Cluster() *cluster.Cluster { return m.cl }

// QueueLen returns the number of pending submissions.
func (m *TaskManager) QueueLen() int { return len(m.pending) }

// RunningCount returns the number of executing submissions.
func (m *TaskManager) RunningCount() int { return len(m.running) }

// Completed returns the count of successful completions.
func (m *TaskManager) Completed() int { return int(m.completed.Value()) }

// Failed returns the count of failed submissions.
func (m *TaskManager) Failed() int { return int(m.failed.Value()) }

// QueueWaits returns observed queue waits (seconds) of started submissions.
func (m *TaskManager) QueueWaits() []float64 { return m.waits }

// RunningSeries exposes the running-task gauge for concurrency plots.
func (m *TaskManager) RunningSeries() *metrics.Gauge { return m.runningN }

// QueueSeries exposes the pending-queue gauge.
func (m *TaskManager) QueueSeries() *metrics.Gauge { return m.queueLen }

// Submit queues a submission for scheduling.
func (m *TaskManager) Submit(s *Submission) {
	if s.ID == "" {
		panic("rm: submission with empty ID")
	}
	if s.Runtime == nil {
		panic(fmt.Sprintf("rm: submission %s without Runtime", s.ID))
	}
	if s.Cores <= 0 {
		s.Cores = 1
	}
	s.submittedAt = m.eng.Now()
	m.pending = append(m.pending, s)
	m.queueLen.Set(m.eng.Now(), float64(len(m.pending)))
	m.kick()
}

// Cancel removes a pending submission (running ones are not preempted). It
// reports whether the submission was found pending.
func (m *TaskManager) Cancel(id string) bool {
	for _, s := range m.pending {
		if s.ID == id && !s.cancelled {
			s.cancelled = true
			return true
		}
	}
	return false
}

// Abort terminates a pending or running submission with a failure carrying
// err — the enforcement hook for the recovery layer's virtual-time attempt
// timeouts. It reports whether the submission was found. For a submission
// aborted while still pending, Result.Node is nil and StartedAt equals the
// abort time.
func (m *TaskManager) Abort(id string, err error) bool {
	if r, ok := m.running[id]; ok {
		r.endEv.Cancel()
		m.finish(r, true, err)
		return true
	}
	for _, s := range m.pending {
		if s.ID == id && !s.cancelled {
			s.cancelled = true
			now := m.eng.Now()
			m.failed.Inc(now, 1)
			if s.Done != nil {
				s.Done(Result{
					Submission:  s,
					SubmittedAt: s.submittedAt,
					StartedAt:   now,
					FinishedAt:  now,
					Failed:      true,
					Err:         err,
				})
			}
			return true
		}
	}
	return false
}

// kick coalesces schedule passes into one per event timestamp.
func (m *TaskManager) kick() {
	if m.schedulePending {
		return
	}
	m.schedulePending = true
	m.eng.After(0, func() {
		m.schedulePending = false
		m.schedule()
	})
}

func (m *TaskManager) schedule() {
	// Drop cancelled entries first.
	live := m.pending[:0]
	for _, s := range m.pending {
		if !s.cancelled {
			live = append(live, s)
		}
	}
	m.pending = live

	ordered := m.strategy.Prioritize(append([]*Submission(nil), m.pending...))
	placed := make(map[*Submission]bool)
	for _, s := range ordered {
		var candidates []*cluster.Node
		for _, n := range m.cl.Nodes() {
			if n.Down() {
				continue
			}
			if n.FreeCores() >= s.Cores && n.FreeGPUs() >= s.GPUs && n.FreeMem() >= s.Mem {
				candidates = append(candidates, n)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		node := m.strategy.PickNode(s, candidates)
		if node == nil {
			continue
		}
		alloc, err := m.cl.Allocate(node, s.Cores, s.GPUs, s.Mem)
		if err != nil {
			continue // raced with nothing (single-threaded), but be safe
		}
		placed[s] = true
		m.start(s, alloc)
	}
	if len(placed) > 0 {
		rest := m.pending[:0]
		for _, s := range m.pending {
			if !placed[s] {
				rest = append(rest, s)
			}
		}
		m.pending = rest
		m.queueLen.Set(m.eng.Now(), float64(len(m.pending)))
	}
}

func (m *TaskManager) start(s *Submission, alloc *cluster.Alloc) {
	now := m.eng.Now()
	dur := s.Runtime(alloc.Node)
	if dur < 0 {
		dur = 0
	}
	r := &running{sub: s, alloc: alloc, start: now}
	m.running[s.ID] = r
	m.runningN.AddDelta(now, 1)
	m.waits = append(m.waits, float64(now-s.submittedAt))
	r.endEv = m.eng.After(sim.Time(dur), func() {
		if s.Validate != nil {
			if err := s.Validate(alloc.Node); err != nil {
				m.finish(r, true, err)
				return
			}
		}
		m.finish(r, false, nil)
	})
}

func (m *TaskManager) finish(r *running, failed bool, err error) {
	now := m.eng.Now()
	delete(m.running, r.sub.ID)
	m.cl.Release(r.alloc)
	m.runningN.AddDelta(now, -1)
	if failed {
		m.failed.Inc(now, 1)
	} else {
		m.completed.Inc(now, 1)
	}
	res := Result{
		Submission:  r.sub,
		Node:        r.alloc.Node,
		SubmittedAt: r.sub.submittedAt,
		StartedAt:   r.start,
		FinishedAt:  now,
		Failed:      failed,
		Err:         err,
	}
	if r.sub.Done != nil {
		r.sub.Done(res)
	}
	m.kick()
}

func (m *TaskManager) handleNodeDown(n *cluster.Node) {
	var victims []*running
	for _, r := range m.running {
		if r.alloc.Node == n {
			victims = append(victims, r)
		}
	}
	// Deterministic order.
	sort.Slice(victims, func(i, j int) bool { return victims[i].sub.ID < victims[j].sub.ID })
	for _, r := range victims {
		r.endEv.Cancel()
		m.finish(r, true, fmt.Errorf("rm: node %s failed", n.Name()))
	}
	m.kick()
}

// MakespanRunner drives a whole dag.Workflow through a TaskManager,
// submitting tasks as their dependencies complete, and reports the makespan.
// This is the common harness for the §3 scheduling studies.
//
// With Retry set it is also the chaos harness: failed attempts (node loss,
// injected transient faults, timeouts) are resubmitted under the policy's
// capped exponential backoff until the attempt budget is exhausted or the
// Breaker opens; a terminally failed task cascade-skips its unreachable
// descendants so the rest of the workflow degrades gracefully on the healthy
// capacity instead of stalling.
type MakespanRunner struct {
	Manager  *TaskManager
	Workflow *dag.Workflow
	// Runtime maps a task and node to an execution time. If nil, nominal
	// duration scaled by node speed is used.
	Runtime func(t *dag.Task, n *cluster.Node) float64
	// WorkflowID labels submissions for CWSI-aware strategies.
	WorkflowID string

	// Retry, when non-nil, is the shared recovery policy applied to every
	// failed attempt. Nil preserves fail-fast semantics (one attempt).
	Retry *fault.RetryPolicy
	// RetryRNG supplies deterministic backoff jitter (may be nil).
	RetryRNG *randx.Source
	// Breaker, when non-nil, circuit-breaks retries across the whole run
	// after consecutive failures (graceful degradation under a dying
	// substrate). Use Retry.NewBreaker() for the policy's threshold.
	Breaker *fault.Breaker
	// FailAttempts maps task IDs to how many leading attempts fail with an
	// injected transient error (fault.Profile.PlanTaskFailures output).
	FailAttempts map[dag.TaskID]int
	// OnComplete fires once, when the last task turns terminal — the hook
	// that stops a fault.Injector so the engine can drain.
	OnComplete func()

	doneCount int
	results   map[dag.TaskID]Result
	finishAt  sim.Time
	stats     RunStats
}

// RunStats aggregates one MakespanRunner run's failure/recovery accounting.
type RunStats struct {
	Attempts         int     // attempts that reached a terminal Result
	Failures         int     // failed attempts, recovered or not
	Retries          int     // resubmissions scheduled by the policy
	TerminalFailures int     // tasks that exhausted the policy (or broke the circuit)
	Skipped          int     // descendants cancelled by terminal failures
	Timeouts         int     // attempts ended by the virtual-time timeout
	BackoffSec       float64 // total backoff delay injected
}

// DefaultRuntime scales nominal duration by the node's speed/IO factors.
func DefaultRuntime(t *dag.Task, n *cluster.Node) float64 {
	cpu := t.NominalDur * (1 - t.IOFrac) / n.Type.SpeedFactor
	io := t.NominalDur * t.IOFrac / n.Type.IOFactor
	return cpu + io
}

// Run submits the workflow respecting dependencies and runs the engine until
// the workflow drains. It returns the makespan in virtual seconds.
func (mr *MakespanRunner) Run() sim.Time {
	if err := mr.Workflow.Validate(); err != nil {
		panic(err)
	}
	if mr.Runtime == nil {
		mr.Runtime = DefaultRuntime
	}
	mr.results = make(map[dag.TaskID]Result, mr.Workflow.Len())
	startAt := mr.Manager.eng.Now()

	remainingDeps := make(map[dag.TaskID]int, mr.Workflow.Len())
	skipped := make(map[dag.TaskID]bool)

	// skip marks every transitive descendant of a terminally failed task as
	// done-without-running: their dependencies can never be satisfied, and
	// counting them keeps the run's completion accounting exact.
	var skip func(t *dag.Task)
	skip = func(t *dag.Task) {
		for _, c := range mr.Workflow.Children(t.ID) {
			if skipped[c.ID] {
				continue
			}
			skipped[c.ID] = true
			mr.stats.Skipped++
			mr.taskDone()
			skip(c)
		}
	}

	var submit func(t *dag.Task, attempt int)
	submit = func(t *dag.Task, attempt int) {
		task := t
		id := mr.WorkflowID + "/" + string(task.ID)
		if attempt > 1 {
			id = fmt.Sprintf("%s#%d", id, attempt)
		}
		var timeoutEv *sim.Event
		sub := &Submission{
			ID:         id,
			WorkflowID: mr.WorkflowID,
			TaskID:     task.ID,
			Name:       task.Name,
			Cores:      task.Cores,
			GPUs:       task.GPUs,
			Mem:        task.MemBytes,
			InputBytes: task.InputBytes,
			Runtime:    func(n *cluster.Node) float64 { return mr.Runtime(task, n) },
			Validate: func(n *cluster.Node) error {
				if attempt <= mr.FailAttempts[task.ID] {
					return fmt.Errorf("rm: injected transient failure of %s (attempt %d)", task.ID, attempt)
				}
				return nil
			},
			Done: func(r Result) {
				if timeoutEv != nil {
					timeoutEv.Cancel()
				}
				mr.stats.Attempts++
				if r.Failed {
					mr.stats.Failures++
					if errors.Is(r.Err, fault.ErrTimeout) {
						mr.stats.Timeouts++
					}
					mr.Breaker.Record(true)
					if mr.Retry != nil && mr.Retry.ShouldRetry(attempt) && !mr.Breaker.Open() {
						d := mr.Retry.Backoff(attempt, mr.RetryRNG)
						mr.stats.Retries++
						mr.stats.BackoffSec += float64(d)
						mr.Manager.eng.After(d, func() { submit(task, attempt+1) })
						return
					}
					mr.stats.TerminalFailures++
					mr.results[task.ID] = r
					mr.taskDone()
					skip(task)
					return
				}
				mr.Breaker.Record(false)
				mr.results[task.ID] = r
				mr.taskDone()
				for _, c := range mr.Workflow.Children(task.ID) {
					remainingDeps[c.ID]--
					if remainingDeps[c.ID] == 0 && !skipped[c.ID] {
						submit(c, 1)
					}
				}
			},
		}
		mr.Manager.Submit(sub)
		if mr.Retry != nil && mr.Retry.TimeoutSec > 0 {
			timeoutEv = mr.Manager.eng.After(sim.Time(mr.Retry.TimeoutSec), func() {
				mr.Manager.Abort(id, fmt.Errorf("rm: %s attempt %d exceeded %.0fs: %w",
					id, attempt, mr.Retry.TimeoutSec, fault.ErrTimeout))
			})
		}
	}
	for _, t := range mr.Workflow.Tasks() {
		remainingDeps[t.ID] = len(t.Deps)
	}
	for _, t := range mr.Workflow.Roots() {
		submit(t, 1)
	}
	mr.Manager.eng.Run()
	if mr.doneCount != mr.Workflow.Len() {
		panic(fmt.Sprintf("rm: workflow %s stalled: %d/%d tasks done (cluster too small for some request?)",
			mr.Workflow.Name, mr.doneCount, mr.Workflow.Len()))
	}
	return mr.finishAt - startAt
}

// taskDone advances the terminal-task count and fires OnComplete when the
// whole workflow has settled.
func (mr *MakespanRunner) taskDone() {
	mr.doneCount++
	if mr.doneCount == mr.Workflow.Len() {
		mr.finishAt = mr.Manager.eng.Now()
		if mr.OnComplete != nil {
			mr.OnComplete()
		}
	}
}

// Results returns per-task results after Run. Tasks skipped because an
// ancestor failed terminally have no entry.
func (mr *MakespanRunner) Results() map[dag.TaskID]Result { return mr.results }

// Stats returns the run's failure/recovery accounting.
func (mr *MakespanRunner) Stats() RunStats { return mr.stats }
