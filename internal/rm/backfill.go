package rm

import (
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/sim"
)

// DurationOracle predicts how long a submission would run on a node. The
// second return value reports whether a prediction exists; an oracle must
// answer false rather than guess while its model is cold.
type DurationOracle func(s *Submission, n *cluster.Node) (float64, bool)

// SetDurationOracle arms EASY-style predicted-duration backfill in the
// dispatch pass. When the highest-priority capacity-blocked submission
// cannot be placed anywhere, the manager computes where running allocations
// free the capacity it needs earliest and reserves that node at that shadow
// time. Lower-priority submissions may still use the reserved node's current
// hole, but only if the oracle predicts they finish before the shadow time —
// the "no hole-owner delay" invariant: backfilled work never pushes the
// reservation owner's start later than it would have been without backfill.
// Submissions the oracle cannot predict are conservatively kept off the
// reserved node.
//
// Reservations are recomputed every pass from live state, and a reservation
// is only established when the oracle can predict the blocked submission
// itself on a capable node — so with a cold oracle no reservation exists and
// the pass is bit-identical to the plain greedy sweep. The invariant is
// exact in predicted time; an underestimating oracle can still delay the
// owner, which is what the scheduler's walltime-overrun enforcement bounds.
func (m *TaskManager) SetDurationOracle(o DurationOracle) { m.oracle = o }

// filterReserved drops the reserved node from a submission's candidate list
// unless the oracle predicts the submission finishes before the shadow time.
// candidates is filtered in place; resNode appears at most once.
func (m *TaskManager) filterReserved(candidates []*cluster.Node, s *Submission, resNode *cluster.Node, shadow, now sim.Time) []*cluster.Node {
	for i, n := range candidates {
		if n != resNode {
			continue
		}
		if d, ok := m.oracle(s, n); ok && now+sim.Time(d) <= shadow {
			return candidates // fits in the hole without delaying its owner
		}
		return append(candidates[:i], candidates[i+1:]...)
	}
	return candidates
}

// reserve picks the node where capacity for s frees earliest: for each up
// node whose type can hold s and for which the oracle can predict s, walk
// the node's running allocations in completion order until enough capacity
// accumulates. Returns (nil, 0) when no node qualifies (request larger than
// any node, or the oracle is cold for s everywhere). Ties keep the first
// node in cluster order; everything here is deterministic.
func (m *TaskManager) reserve(s *Submission) (*cluster.Node, sim.Time) {
	var best *cluster.Node
	var bestShadow sim.Time
	for _, n := range m.cl.Nodes() {
		if n.Down() || n.Type.Cores < s.Cores || n.Type.GPUs < s.GPUs || n.Type.MemBytes < s.Mem {
			continue
		}
		if _, ok := m.oracle(s, n); !ok {
			continue
		}
		shadow, ok := m.shadowOn(s, n)
		if !ok {
			continue
		}
		if best == nil || shadow < bestShadow {
			best, bestShadow = n, shadow
		}
	}
	return best, bestShadow
}

// shadowOn computes when node n first has capacity for s, assuming running
// allocations release at their recorded end times and nothing new arrives.
func (m *TaskManager) shadowOn(s *Submission, n *cluster.Node) (sim.Time, bool) {
	cores, gpus, mem := n.FreeCores(), n.FreeGPUs(), n.FreeMem()
	if cores >= s.Cores && gpus >= s.GPUs && mem >= s.Mem {
		return m.eng.Now(), true
	}
	rs := m.resScratch[:0]
	for _, r := range m.running {
		if r.alloc != nil && r.alloc.Node == n {
			rs = append(rs, r)
		}
	}
	m.resScratch = rs[:0]
	// Map iteration order is random; (end, ID) is a deterministic total order.
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].end != rs[j].end {
			return rs[i].end < rs[j].end
		}
		return rs[i].sub.ID < rs[j].sub.ID
	})
	for _, r := range rs {
		cores += r.alloc.Cores
		gpus += r.alloc.GPUs
		mem += r.alloc.Mem
		if cores >= s.Cores && gpus >= s.GPUs && mem >= s.Mem {
			return r.end, true
		}
	}
	return 0, false
}
