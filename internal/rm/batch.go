package rm

import (
	"fmt"
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/metrics"
	"hhcw/internal/sim"
)

// BatchJob is a whole-node batch request, as submitted to SLURM/LSF/Flux.
// The paper's EnTK runs acquire resources this way (one large batch job for
// the whole ensemble, §4), and Frontier's scheduling policy ties walltime
// limits to node counts (§4.2).
type BatchJob struct {
	ID       string
	Account  string
	Nodes    int
	Walltime sim.Time

	// OnStart receives the allocation when the job begins.
	OnStart func(*BatchAlloc)
	// OnExpire is invoked if the walltime limit force-ends the job.
	OnExpire func()
	// OnNodeFail is invoked when a node inside the live allocation fails:
	// the manager has already reaped the node's resources, and the owner
	// must abandon (or resubmit) whatever it was running there. Without
	// this path a "down" node kept executing pilot work to completion.
	OnNodeFail func(*BatchAlloc, *cluster.Node)

	submittedAt sim.Time
}

// BatchAlloc is a granted set of whole nodes. Nodes keeps its original
// membership even after failures (owners use it to test placement), while
// DownNodes counts how many of them the manager has reaped.
type BatchAlloc struct {
	Job       *BatchJob
	Nodes     []*cluster.Node
	StartedAt sim.Time

	mgr       *BatchManager
	allocs    []*cluster.Alloc
	expireEv  *sim.Event
	released  bool
	downNodes int
}

// DownNodes returns how many of the allocation's nodes have failed since the
// job started.
func (a *BatchAlloc) DownNodes() int { return a.downNodes }

// UpNodes returns the number of still-healthy nodes in the allocation.
func (a *BatchAlloc) UpNodes() int { return len(a.Nodes) - a.downNodes }

// Release ends the job early and returns its nodes. Safe to call twice.
func (a *BatchAlloc) Release() {
	if a.released {
		return
	}
	a.released = true
	if a.expireEv != nil {
		a.expireEv.Cancel()
	}
	now := a.mgr.eng.Now()
	for _, al := range a.allocs {
		a.mgr.cl.Release(al)
	}
	a.mgr.dropLive(a)
	a.mgr.usage[a.Job.Account] += float64(len(a.Nodes)) * float64(now-a.StartedAt)
	a.mgr.runningJobs--
	a.mgr.kick()
}

// WalltimePolicy caps job walltime as a function of requested nodes,
// mirroring leadership-facility queue policies ("each ensemble respects
// Frontier's job scheduling policy in terms of walltime limits per amount of
// requested compute nodes", §4.2).
type WalltimePolicy func(nodes int) sim.Time

// FrontierPolicy approximates OLCF's Frontier batch bins: bigger jobs may
// run longer (bin 5: ≤91 nodes / 2 h, bin 4: ≤183 / 6 h, bin 3: ≤5644 /
// 12 h, bins 1–2: 24 h).
func FrontierPolicy(nodes int) sim.Time {
	switch {
	case nodes >= 5645:
		return 24 * 3600
	case nodes >= 184:
		return 12 * 3600
	case nodes >= 92:
		return 6 * 3600
	default:
		return 2 * 3600
	}
}

// BatchManager is a SLURM-like whole-node scheduler with fair-share ordering
// and first-fit backfill.
type BatchManager struct {
	eng    *sim.Engine
	cl     *cluster.Cluster
	policy WalltimePolicy

	queue       []*BatchJob
	usage       map[string]float64 // account → node-seconds consumed
	runningJobs int
	live        []*BatchAlloc // submission-ordered, for deterministic reaping

	queueLen        *metrics.Gauge
	started         *metrics.Counter
	expired         *metrics.Counter
	schedulePending bool
	// Steady-state scratch, reused across schedule passes.
	kickFn      func()
	freeScratch []*cluster.Node
	sorter      *batchQueueSorter
}

// batchQueueSorter orders the queue by fair share: ascending historical
// account usage, FIFO within an account. Held as a prebuilt *sorter so
// sort.Stable boxes no fresh interface value per pass.
type batchQueueSorter struct {
	jobs  []*BatchJob
	usage map[string]float64
}

func (q *batchQueueSorter) Len() int      { return len(q.jobs) }
func (q *batchQueueSorter) Swap(i, j int) { q.jobs[i], q.jobs[j] = q.jobs[j], q.jobs[i] }
func (q *batchQueueSorter) Less(i, j int) bool {
	ui, uj := q.usage[q.jobs[i].Account], q.usage[q.jobs[j].Account]
	if ui != uj {
		return ui < uj
	}
	return q.jobs[i].submittedAt < q.jobs[j].submittedAt
}

// NewBatchManager builds a batch manager over cl. policy may be nil (no
// walltime caps beyond what jobs request). Like a real RM, it reaps failed
// nodes out of live allocations and notifies the owning job, and re-runs the
// backfill pass when repaired capacity comes back.
func NewBatchManager(cl *cluster.Cluster, policy WalltimePolicy) *BatchManager {
	m := &BatchManager{
		eng:      cl.Engine(),
		cl:       cl,
		policy:   policy,
		usage:    make(map[string]float64),
		queueLen: metrics.NewGauge("batch.queue"),
		started:  metrics.NewCounter("batch.started"),
		expired:  metrics.NewCounter("batch.expired"),
	}
	m.kickFn = func() {
		m.schedulePending = false
		m.schedule()
	}
	m.sorter = &batchQueueSorter{usage: m.usage}
	cl.OnNodeDown(m.handleNodeDown)
	cl.OnNodeUp(func(*cluster.Node) { m.kick() })
	return m
}

// handleNodeDown reaps the failed node from every live allocation holding it:
// the node-level reservation is released (revoked, so it cannot corrupt the
// repaired node's capacity) and the owning job is notified so it can fail the
// work it had placed there.
func (m *BatchManager) handleNodeDown(n *cluster.Node) {
	for _, a := range append([]*BatchAlloc(nil), m.live...) {
		if a.released {
			continue
		}
		for i, held := range a.Nodes {
			if held != n {
				continue
			}
			m.cl.Release(a.allocs[i])
			a.downNodes++
			if a.Job.OnNodeFail != nil {
				a.Job.OnNodeFail(a, n)
			}
			break
		}
	}
}

func (m *BatchManager) dropLive(a *BatchAlloc) {
	for i, la := range m.live {
		if la == a {
			m.live = append(m.live[:i], m.live[i+1:]...)
			return
		}
	}
}

// Submit queues a batch job. Jobs requesting more nodes than the cluster has
// are rejected immediately with an error.
func (m *BatchManager) Submit(j *BatchJob) error {
	if j.Nodes <= 0 {
		return fmt.Errorf("rm: batch job %s requests %d nodes", j.ID, j.Nodes)
	}
	if j.Nodes > m.cl.NodeCount() {
		return fmt.Errorf("rm: batch job %s requests %d nodes, cluster has %d", j.ID, j.Nodes, m.cl.NodeCount())
	}
	if m.policy != nil {
		if cap := m.policy(j.Nodes); j.Walltime > cap {
			return fmt.Errorf("rm: batch job %s walltime %v exceeds policy cap %v for %d nodes",
				j.ID, j.Walltime, cap, j.Nodes)
		}
	}
	j.submittedAt = m.eng.Now()
	m.queue = append(m.queue, j)
	m.queueLen.Set(m.eng.Now(), float64(len(m.queue)))
	m.kick()
	return nil
}

// QueueLen returns the number of queued jobs.
func (m *BatchManager) QueueLen() int { return len(m.queue) }

// RunningJobs returns the number of active allocations.
func (m *BatchManager) RunningJobs() int { return m.runningJobs }

// Started returns the number of jobs that began execution.
func (m *BatchManager) Started() int { return int(m.started.Value()) }

// Expired returns the number of jobs killed by walltime.
func (m *BatchManager) Expired() int { return int(m.expired.Value()) }

// AccountUsage returns node-seconds consumed by completed jobs of account.
func (m *BatchManager) AccountUsage(account string) float64 { return m.usage[account] }

func (m *BatchManager) kick() {
	if m.schedulePending {
		return
	}
	m.schedulePending = true
	m.eng.After(0, m.kickFn)
}

// schedule orders the queue by fair share (ascending historical usage, FIFO
// within an account) then first-fit backfills: any job whose node count fits
// the currently idle nodes starts. Idle nodes come from the cluster's
// capacity index — same predicate and node-ID order as the historical full
// scan — and the pass compacts the queue in place on reusable scratch.
func (m *BatchManager) schedule() {
	if len(m.queue) == 0 {
		return
	}
	m.sorter.jobs = m.queue
	sort.Stable(m.sorter)
	m.sorter.jobs = nil
	free := m.cl.AppendIdleNodes(m.freeScratch[:0])
	m.freeScratch = free[:0]
	rest := m.queue[:0]
	for _, j := range m.queue {
		if j.Nodes > len(free) {
			rest = append(rest, j)
			continue
		}
		granted := free[:j.Nodes]
		free = free[j.Nodes:]
		if !m.start(j, granted) {
			rest = append(rest, j)
		}
	}
	m.queue = rest
	m.queueLen.Set(m.eng.Now(), float64(len(m.queue)))
}

// start grants the job its whole nodes; it reports false (leaving the job
// queued) if any node raced to a down state mid-grant.
func (m *BatchManager) start(j *BatchJob, nodes []*cluster.Node) bool {
	now := m.eng.Now()
	allocs, err := m.cl.AllocateAll(nodes)
	if err != nil {
		return false
	}
	alloc := &BatchAlloc{
		Job: j, Nodes: append([]*cluster.Node(nil), nodes...), StartedAt: now,
		mgr: m, allocs: allocs,
	}
	m.runningJobs++
	m.live = append(m.live, alloc)
	m.started.Inc(now, 1)
	if j.Walltime > 0 {
		alloc.expireEv = m.eng.After(j.Walltime, func() {
			m.expired.Inc(m.eng.Now(), 1)
			alloc.Release()
			if j.OnExpire != nil {
				j.OnExpire()
			}
		})
	}
	if j.OnStart != nil {
		j.OnStart(alloc)
	}
	return true
}
