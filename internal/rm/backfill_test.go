package rm

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/sim"
)

// backfillScenario submits the canonical EASY shape on one 4-core node:
// A (3 cores, 100s) runs immediately, B (4 cores, the hole owner) blocks
// until the node drains, C (1 core, 50s) fits the hole, D (1 core, 200s)
// does not. Durations are exact, so an oracle returning the true runtime
// is a perfect predictor. Returns each submission's start time.
func backfillScenario(t *testing.T, withOracle bool) map[string]sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	m := NewTaskManager(cluster.New(eng, "t", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 1e12},
		Count: 1,
	}), nil)
	durs := map[string]float64{"A": 100, "B": 100, "C": 50, "D": 200}
	if withOracle {
		m.SetDurationOracle(func(s *Submission, n *cluster.Node) (float64, bool) {
			return durs[s.ID], true
		})
	}
	starts := map[string]sim.Time{}
	done := func(r Result) { starts[r.Submission.ID] = r.StartedAt }
	m.Submit(&Submission{ID: "A", Cores: 3, Runtime: fixedRuntime(100), Done: done})
	m.Submit(&Submission{ID: "B", Cores: 4, Runtime: fixedRuntime(100), Done: done})
	m.Submit(&Submission{ID: "C", Cores: 1, Runtime: fixedRuntime(50), Done: done})
	m.Submit(&Submission{ID: "D", Cores: 1, Runtime: fixedRuntime(200), Done: done})
	eng.Run()
	if len(starts) != 4 {
		t.Fatalf("only %d of 4 submissions completed: %v", len(starts), starts)
	}
	return starts
}

// TestBackfillNoHoleOwnerDelay pins the EASY invariant the predicted
// backfill must honor: a candidate may slip into the reservation hole only
// if its predicted runtime finishes before the shadow time, so the hole
// owner starts exactly when its reservation promised — backfill never
// delays it. C (50s <= shadow 100) backfills at t=0; D (200s > shadow) is
// held even though a core is idle, and B launches the instant A drains.
func TestBackfillNoHoleOwnerDelay(t *testing.T) {
	starts := backfillScenario(t, true)
	if starts["A"] != 0 {
		t.Errorf("A started at %v, want 0", starts["A"])
	}
	if starts["C"] != 0 {
		t.Errorf("C started at %v, want 0 (fits the hole: 0+50 <= shadow 100)", starts["C"])
	}
	if starts["B"] != 100 {
		t.Errorf("hole owner B started at %v, want exactly its shadow time 100", starts["B"])
	}
	if starts["D"] != 200 {
		t.Errorf("D started at %v, want 200 (held out of the hole, runs after B)", starts["D"])
	}
}

// TestBackfillGreedyDelaysOwnerWithoutOracle is the contrast run: with no
// duration oracle there is no reservation, the greedy pass lets D jump the
// queue at t=50, and the 4-core owner B is starved until t=250. The delta
// against TestBackfillNoHoleOwnerDelay is exactly what the prediction loop
// buys.
func TestBackfillGreedyDelaysOwnerWithoutOracle(t *testing.T) {
	starts := backfillScenario(t, false)
	if starts["D"] != 50 {
		t.Errorf("D started at %v, want 50 (greedy hole-jump when C frees a core)", starts["D"])
	}
	if starts["B"] != 250 {
		t.Errorf("B started at %v, want 250 (starved behind D)", starts["B"])
	}
}

// TestBackfillColdOracleIsGreedy pins the warmth contract at the manager
// level: an oracle that answers ok=false for every submission must schedule
// bit-identically to no oracle at all — no reservation is ever made.
func TestBackfillColdOracleIsGreedy(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(cluster.New(eng, "t", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 1e12},
		Count: 1,
	}), nil)
	m.SetDurationOracle(func(s *Submission, n *cluster.Node) (float64, bool) { return 0, false })
	starts := map[string]sim.Time{}
	done := func(r Result) { starts[r.Submission.ID] = r.StartedAt }
	m.Submit(&Submission{ID: "A", Cores: 3, Runtime: fixedRuntime(100), Done: done})
	m.Submit(&Submission{ID: "B", Cores: 4, Runtime: fixedRuntime(100), Done: done})
	m.Submit(&Submission{ID: "C", Cores: 1, Runtime: fixedRuntime(50), Done: done})
	m.Submit(&Submission{ID: "D", Cores: 1, Runtime: fixedRuntime(200), Done: done})
	eng.Run()
	if starts["D"] != 50 || starts["B"] != 250 {
		t.Fatalf("cold oracle diverged from greedy: D@%v (want 50), B@%v (want 250)",
			starts["D"], starts["B"])
	}
}
