package rm

import (
	"testing"
	"testing/quick"

	"hhcw/internal/dag"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func TestTaskManagerAccessors(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 2, 4)
	m := NewTaskManager(cl, nil)
	if m.Cluster() != cl {
		t.Fatal("Cluster accessor wrong")
	}
	if m.Strategy().Name() != "fifo" {
		t.Fatalf("default strategy = %q", m.Strategy().Name())
	}
	m.SetStrategy(FIFO{})
	if m.QueueLen() != 0 {
		t.Fatal("fresh queue not empty")
	}
	m.Submit(&Submission{ID: "a", Cores: 8, Runtime: fixedRuntime(1)}) // too big for any node: queues
	eng.Run()
	if m.QueueLen() != 1 {
		t.Fatalf("oversized submission should stay queued, queue=%d", m.QueueLen())
	}
	if len(m.QueueWaits()) != 0 {
		t.Fatal("never-started task has no wait sample")
	}
	if m.QueueSeries().Value() != 1 {
		t.Fatalf("queue gauge = %v", m.QueueSeries().Value())
	}
}

func TestSubmitPanics(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 4), nil)
	for _, s := range []*Submission{
		{ID: "", Runtime: fixedRuntime(1)},
		{ID: "x"},
	} {
		s := s
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(%+v) did not panic", s)
				}
			}()
			m.Submit(s)
		}()
	}
}

func TestNegativeRuntimeClamped(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 4), nil)
	var res Result
	m.Submit(&Submission{ID: "n", Cores: 1, Runtime: fixedRuntime(-5), Done: func(r Result) { res = r }})
	eng.Run()
	if res.FinishedAt != res.StartedAt {
		t.Fatalf("negative runtime not clamped: %v → %v", res.StartedAt, res.FinishedAt)
	}
}

func TestBatchQueueLen(t *testing.T) {
	eng := sim.NewEngine()
	m := NewBatchManager(testCluster(eng, 2, 4), nil)
	m.Submit(&BatchJob{ID: "a", Account: "x", Nodes: 2, Walltime: 100})
	m.Submit(&BatchJob{ID: "b", Account: "x", Nodes: 2, Walltime: 100})
	if m.QueueLen() != 2 {
		t.Fatalf("queue before scheduling = %d", m.QueueLen())
	}
	eng.RunUntil(1)
	if m.QueueLen() != 1 { // one granted, one waiting
		t.Fatalf("queue after grant = %d", m.QueueLen())
	}
	eng.Run()
}

// Property: after any random workflow run, every node's full capacity is
// restored (no allocation leaks through any completion path).
func TestRunRestoresCapacity(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		cl := testCluster(eng, 4, 8)
		m := NewTaskManager(cl, nil)
		w := dag.RandomLayered(randx.New(seed), 4, 6, dag.GenOpts{MeanDur: 50, Cores: 1, MaxCores: 4})
		runner := &MakespanRunner{Manager: m, Workflow: w, WorkflowID: "p"}
		runner.Run()
		for _, n := range cl.Nodes() {
			if n.FreeCores() != n.Type.Cores || n.FreeGPUs() != n.Type.GPUs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: makespan is never below the critical path and never above total
// serial work (for a single-node-capable workflow on a nonempty cluster).
func TestMakespanBounds(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		cl := testCluster(eng, 2, 8)
		m := NewTaskManager(cl, nil)
		w := dag.RandomLayered(randx.New(seed), 4, 5, dag.GenOpts{MeanDur: 50, Cores: 1, MaxCores: 2})
		ms := float64((&MakespanRunner{Manager: m, Workflow: w, WorkflowID: "p"}).Run())
		cp, _ := w.CriticalPath(dag.NominalDur)
		serial := 0.0
		for _, task := range w.Tasks() {
			serial += task.NominalDur
		}
		return ms >= cp-1e-6 && ms <= serial+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningSeriesAndFIFOName(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 4), nil)
	if m.RunningSeries() == nil {
		t.Fatal("RunningSeries nil")
	}
	if (FIFO{}).Name() != "fifo" {
		t.Fatal("FIFO name")
	}
	if (FIFO{}).PickNode(nil, nil) != nil {
		t.Fatal("FIFO empty candidates")
	}
}
