package rm

import (
	"errors"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func testCluster(eng *sim.Engine, nodes, cores int) *cluster.Cluster {
	return cluster.New(eng, "t", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: cores, GPUs: 2, MemBytes: 1e12},
		Count: nodes,
	})
}

func fixedRuntime(d float64) func(*cluster.Node) float64 {
	return func(*cluster.Node) float64 { return d }
}

func TestTaskManagerRunsTask(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 4), nil)
	var res Result
	m.Submit(&Submission{ID: "a", Cores: 2, Runtime: fixedRuntime(10), Done: func(r Result) { res = r }})
	eng.Run()
	if res.Submission == nil || res.Failed {
		t.Fatalf("task did not complete: %+v", res)
	}
	if res.FinishedAt != 10 {
		t.Fatalf("finished at %v, want 10", res.FinishedAt)
	}
	if m.Completed() != 1 || m.RunningCount() != 0 {
		t.Fatalf("completed=%d running=%d", m.Completed(), m.RunningCount())
	}
}

func TestTaskManagerQueuesWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 4), nil)
	var order []string
	done := func(r Result) { order = append(order, r.Submission.ID) }
	// Two 3-core tasks cannot run together on a 4-core node.
	m.Submit(&Submission{ID: "a", Cores: 3, Runtime: fixedRuntime(10), Done: done})
	m.Submit(&Submission{ID: "b", Cores: 3, Runtime: fixedRuntime(10), Done: done})
	eng.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 20 {
		t.Fatalf("makespan = %v, want 20 (serialized)", eng.Now())
	}
}

func TestTaskManagerParallelWhenFits(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 2, 4), nil)
	n := 0
	for _, id := range []string{"a", "b"} {
		m.Submit(&Submission{ID: id, Cores: 4, Runtime: fixedRuntime(10), Done: func(Result) { n++ }})
	}
	eng.Run()
	if n != 2 || eng.Now() != 10 {
		t.Fatalf("parallel run: n=%d end=%v, want 2 tasks at t=10", n, eng.Now())
	}
}

func TestTaskManagerCancel(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 1), nil)
	ran := false
	m.Submit(&Submission{ID: "hold", Cores: 1, Runtime: fixedRuntime(5), Done: func(Result) {}})
	m.Submit(&Submission{ID: "x", Cores: 1, Runtime: fixedRuntime(5), Done: func(Result) { ran = true }})
	if !m.Cancel("x") {
		t.Fatal("Cancel returned false for pending submission")
	}
	eng.Run()
	if ran {
		t.Fatal("cancelled submission ran")
	}
	if m.Cancel("ghost") {
		t.Fatal("Cancel returned true for unknown id")
	}
}

func TestTaskManagerNodeFailureFailsRunning(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 2, 4)
	m := NewTaskManager(cl, nil)
	var failedIDs []string
	var okIDs []string
	done := func(r Result) {
		if r.Failed {
			failedIDs = append(failedIDs, r.Submission.ID)
		} else {
			okIDs = append(okIDs, r.Submission.ID)
		}
	}
	m.Submit(&Submission{ID: "a", Cores: 4, Runtime: fixedRuntime(100), Done: done})
	m.Submit(&Submission{ID: "b", Cores: 4, Runtime: fixedRuntime(100), Done: done})
	eng.At(50, func() {
		// Fail the node running "a".
		for _, r := range m.running {
			if r.sub.ID == "a" {
				cl.FailNode(r.alloc.Node)
				return
			}
		}
		t.Error("task a not running at t=50")
	})
	eng.Run()
	if len(failedIDs) != 1 || failedIDs[0] != "a" {
		t.Fatalf("failed = %v, want [a]", failedIDs)
	}
	if len(okIDs) != 1 || okIDs[0] != "b" {
		t.Fatalf("ok = %v, want [b]", okIDs)
	}
	if m.Failed() != 1 {
		t.Fatalf("Failed() = %d", m.Failed())
	}
}

func TestTaskManagerResubmitAfterFailure(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 2, 4)
	m := NewTaskManager(cl, nil)
	attempts := 0
	var submit func(id string)
	submit = func(id string) {
		m.Submit(&Submission{ID: id, Cores: 1, Runtime: fixedRuntime(100), Done: func(r Result) {
			attempts++
			if r.Failed && attempts < 3 {
				submit(id + "r")
			}
		}})
	}
	submit("a")
	eng.At(10, func() { cl.FailNode(cl.Nodes()[0]) })
	eng.Run()
	if attempts < 2 {
		t.Fatalf("attempts = %d, want retry after failure", attempts)
	}
}

func TestMakespanRunnerChain(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 4, 8), nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", NominalDur: 10})
	w.Add(&dag.Task{ID: "b", NominalDur: 20, Deps: []dag.TaskID{"a"}})
	w.Add(&dag.Task{ID: "c", NominalDur: 30, Deps: []dag.TaskID{"b"}})
	mr := &MakespanRunner{Manager: m, Workflow: w, WorkflowID: "w"}
	ms := mr.Run()
	if ms != 60 {
		t.Fatalf("makespan = %v, want 60", ms)
	}
	if len(mr.Results()) != 3 {
		t.Fatalf("results = %d", len(mr.Results()))
	}
}

func TestMakespanRunnerParallelBranches(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 4, 8), nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "s", NominalDur: 5})
	w.Add(&dag.Task{ID: "l", NominalDur: 10, Deps: []dag.TaskID{"s"}})
	w.Add(&dag.Task{ID: "r", NominalDur: 40, Deps: []dag.TaskID{"s"}})
	w.Add(&dag.Task{ID: "t", NominalDur: 5, Deps: []dag.TaskID{"l", "r"}})
	ms := (&MakespanRunner{Manager: m, Workflow: w, WorkflowID: "w"}).Run()
	if ms != 50 { // 5 + max(10,40) + 5
		t.Fatalf("makespan = %v, want 50", ms)
	}
}

func TestMakespanRunnerHeterogeneousSpeed(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "h", cluster.Spec{
		Type:  cluster.NodeType{Name: "fast", Cores: 4, SpeedFactor: 2, IOFactor: 1, MemBytes: 1e12},
		Count: 1,
	})
	m := NewTaskManager(cl, nil)
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", NominalDur: 100, IOFrac: 0}) // pure CPU
	ms := (&MakespanRunner{Manager: m, Workflow: w, WorkflowID: "w"}).Run()
	if ms != 50 { // speed factor 2 halves CPU time
		t.Fatalf("makespan = %v, want 50", ms)
	}
}

func TestMakespanRunnerRandomWorkflow(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 8, 16), nil)
	rng := randx.New(5)
	w := dag.RandomLayered(rng, 5, 8, dag.GenOpts{MeanDur: 60})
	mr := &MakespanRunner{Manager: m, Workflow: w, WorkflowID: "rand"}
	ms := mr.Run()
	cp, _ := w.CriticalPath(dag.NominalDur)
	if float64(ms) < cp-1e-6 {
		t.Fatalf("makespan %v below critical path %v", ms, cp)
	}
	for id, r := range mr.Results() {
		if r.Failed {
			t.Fatalf("task %s failed", id)
		}
	}
}

func TestBatchManagerGrantAndRelease(t *testing.T) {
	eng := sim.NewEngine()
	cl := testCluster(eng, 4, 8)
	m := NewBatchManager(cl, nil)
	var alloc *BatchAlloc
	err := m.Submit(&BatchJob{ID: "j1", Account: "a", Nodes: 2, Walltime: 1000,
		OnStart: func(a *BatchAlloc) { alloc = a }})
	if err != nil {
		t.Fatal(err)
	}
	eng.At(10, func() {
		if alloc == nil {
			t.Error("job not started by t=10")
			return
		}
		if len(alloc.Nodes) != 2 {
			t.Errorf("granted %d nodes", len(alloc.Nodes))
		}
		alloc.Release()
	})
	eng.Run()
	if m.RunningJobs() != 0 || m.Started() != 1 {
		t.Fatalf("running=%d started=%d", m.RunningJobs(), m.Started())
	}
	if got := m.AccountUsage("a"); got != 20 { // 2 nodes × 10s
		t.Fatalf("usage = %v, want 20", got)
	}
}

func TestBatchManagerWalltimeExpiry(t *testing.T) {
	eng := sim.NewEngine()
	m := NewBatchManager(testCluster(eng, 2, 8), nil)
	expired := false
	if err := m.Submit(&BatchJob{ID: "j", Account: "a", Nodes: 2, Walltime: 50,
		OnExpire: func() { expired = true }}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !expired || m.Expired() != 1 {
		t.Fatalf("expired=%v count=%d", expired, m.Expired())
	}
	if eng.Now() != 50 {
		t.Fatalf("expiry at %v, want 50", eng.Now())
	}
}

func TestBatchManagerQueueing(t *testing.T) {
	eng := sim.NewEngine()
	m := NewBatchManager(testCluster(eng, 2, 8), nil)
	var starts []sim.Time
	mk := func(id string) *BatchJob {
		return &BatchJob{ID: id, Account: "a", Nodes: 2, Walltime: 100,
			OnStart: func(a *BatchAlloc) {
				starts = append(starts, eng.Now())
				eng.After(30, a.Release)
			}}
	}
	m.Submit(mk("j1"))
	m.Submit(mk("j2"))
	eng.Run()
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 30 {
		t.Fatalf("starts = %v, want [0 30]", starts)
	}
}

func TestBatchManagerFairShare(t *testing.T) {
	eng := sim.NewEngine()
	m := NewBatchManager(testCluster(eng, 2, 8), nil)
	var order []string
	run := func(id, account string) *BatchJob {
		return &BatchJob{ID: id, Account: account, Nodes: 2, Walltime: 1000,
			OnStart: func(a *BatchAlloc) {
				order = append(order, id)
				eng.After(10, a.Release)
			}}
	}
	// heavy uses the machine first; then both queue — light should win.
	m.Submit(run("h1", "heavy"))
	eng.At(1, func() {
		m.Submit(run("h2", "heavy"))
		m.Submit(run("l1", "light"))
	})
	eng.Run()
	if len(order) != 3 || order[1] != "l1" {
		t.Fatalf("order = %v, want light before heavy's second job", order)
	}
}

func TestBatchManagerRejects(t *testing.T) {
	eng := sim.NewEngine()
	m := NewBatchManager(testCluster(eng, 2, 8), FrontierPolicy)
	if err := m.Submit(&BatchJob{ID: "big", Account: "a", Nodes: 5}); err == nil {
		t.Fatal("oversized job accepted")
	}
	if err := m.Submit(&BatchJob{ID: "zero", Account: "a", Nodes: 0}); err == nil {
		t.Fatal("zero-node job accepted")
	}
	if err := m.Submit(&BatchJob{ID: "long", Account: "a", Nodes: 1, Walltime: 100 * 3600}); err == nil {
		t.Fatal("over-walltime job accepted")
	}
}

func TestFrontierPolicyTiers(t *testing.T) {
	if FrontierPolicy(8000) != 24*3600 {
		t.Fatal("full-machine tier wrong")
	}
	if FrontierPolicy(10) != 2*3600 {
		t.Fatal("small tier wrong")
	}
	if FrontierPolicy(125) != 6*3600 {
		t.Fatal("mid tier wrong")
	}
	if FrontierPolicy(2000) != 12*3600 {
		t.Fatal("upper-mid tier wrong")
	}
}

func TestResultQueueWait(t *testing.T) {
	r := Result{SubmittedAt: 5, StartedAt: 12}
	if r.QueueWait() != 7 {
		t.Fatalf("QueueWait = %v", r.QueueWait())
	}
}

// Regression: Cancel must update the queue gauge immediately — admission
// control reads QueueSeries between events, and the pre-fix code left the
// gauge stale until the next unrelated schedule pass.
func TestCancelUpdatesQueueGaugeImmediately(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 1), nil)
	done := func(Result) {}
	m.Submit(&Submission{ID: "hold", Cores: 1, Runtime: fixedRuntime(5), Done: done})
	m.Submit(&Submission{ID: "p1", Cores: 1, Runtime: fixedRuntime(5), Done: done})
	m.Submit(&Submission{ID: "p2", Cores: 1, Runtime: fixedRuntime(5), Done: done})
	// No schedule pass has run yet: all three count as queued.
	if got := m.QueueSeries().Value(); got != 3 {
		t.Fatalf("gauge before cancel = %v, want 3", got)
	}
	if !m.Cancel("p1") {
		t.Fatal("Cancel(p1) = false")
	}
	if got := m.QueueSeries().Value(); got != 2 {
		t.Fatalf("gauge immediately after Cancel = %v, want 2 (stale gauge)", got)
	}
	// Mid-run cancel inside an event: hold is running, p2 pending.
	eng.At(1, func() {
		if got := m.QueueSeries().Value(); got != 1 {
			t.Errorf("gauge at t=1 = %v, want 1", got)
		}
		if !m.Cancel("p2") {
			t.Error("Cancel(p2) = false")
		}
		if got := m.QueueSeries().Value(); got != 0 {
			t.Errorf("gauge immediately after mid-run Cancel = %v, want 0", got)
		}
	})
	eng.Run()
	if m.Completed() != 1 {
		t.Fatalf("completed = %d, want 1 (only hold)", m.Completed())
	}
	if got := m.QueueSeries().Value(); got != 0 {
		t.Fatalf("final gauge = %v, want 0", got)
	}
}

// Regression: Abort of a still-pending submission must update the queue
// gauge too (same stale-gauge bug as Cancel, on the other exit path).
func TestAbortPendingUpdatesQueueGauge(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTaskManager(testCluster(eng, 1, 1), nil)
	var res Result
	errAbort := errors.New("attempt deadline")
	m.Submit(&Submission{ID: "hold", Cores: 1, Runtime: fixedRuntime(5), Done: func(Result) {}})
	m.Submit(&Submission{ID: "p", Cores: 1, Runtime: fixedRuntime(5), Done: func(r Result) { res = r }})
	eng.At(2, func() {
		if got := m.QueueSeries().Value(); got != 1 {
			t.Errorf("gauge before abort = %v, want 1", got)
		}
		if !m.Abort("p", errAbort) {
			t.Error("Abort(p) = false")
		}
		if got := m.QueueSeries().Value(); got != 0 {
			t.Errorf("gauge immediately after pending Abort = %v, want 0", got)
		}
	})
	eng.Run()
	if !res.Failed || res.Node != nil {
		t.Fatalf("pending abort result: %+v", res)
	}
	// Documented contract: abort-while-pending counts the full pending span
	// as queue wait, with StartedAt pinned to the abort time.
	if res.StartedAt != 2 || res.QueueWait() != 2 {
		t.Fatalf("StartedAt=%v QueueWait=%v, want 2 and 2", res.StartedAt, res.QueueWait())
	}
}
