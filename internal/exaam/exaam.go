package exaam

import (
	"fmt"

	"hhcw/internal/cluster"
	"hhcw/internal/entk"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
)

// Config parameterizes the UQ pipeline. The Frontier defaults reproduce the
// paper's published counts: 7875 ExaConstit tasks = (melt-pool cases ×
// microstructure params) × (loading directions × temperatures × RVEs).
type Config struct {
	// Stage 0: process-parameter grid.
	GridDim   int
	GridLevel int
	// MeltPoolCases caps how many grid points become melt-pool cases
	// (0 = all).
	MeltPoolCases int

	// Stage 1.
	MicroParams int // microstructure UQ parameters per thermal case

	// Stage 3.
	LoadingDirections int
	Temperatures      int
	RVEs              int

	// Failure injection for the §4.3 fault-tolerance reproduction ("we
	// registered only 10 task failures"): TransientFailures tasks fail
	// once and succeed on EnTK resubmission (the paper's 8 node-fault
	// victims); PersistentFailures tasks fail every attempt (the paper's 2
	// last-step numerical failures, which "were still far enough out" to
	// be acceptable).
	TransientFailures  int
	PersistentFailures int

	Seed int64
}

// FrontierConfig reproduces the §4.3 run: 25 melt-pool cases × 5
// microstructure parameters = 125 microstructures; ×63 property cases =
// 7875 ExaConstit tasks on 8000 nodes.
func FrontierConfig() Config {
	return Config{
		GridDim:           2,
		GridLevel:         3,
		MeltPoolCases:     25,
		MicroParams:       5,
		LoadingDirections: 7,
		Temperatures:      3,
		RVEs:              3,
		Seed:              1,
	}
}

// Microstructures returns the Stage-1 output count (thermal cases × micro
// params).
func (c Config) Microstructures() int { return c.meltPools() * c.MicroParams }

// PropertyTasks returns the Stage-3 ExaConstit task count.
func (c Config) PropertyTasks() int {
	return c.Microstructures() * c.LoadingDirections * c.Temperatures * c.RVEs
}

func (c Config) meltPools() int {
	n := len(SparseGrid(c.GridDim, c.GridLevel))
	if c.MeltPoolCases > 0 && c.MeltPoolCases < n {
		n = c.MeltPoolCases
	}
	return n
}

// Task shapes from §4.3. Durations are lognormal around the values implied
// by the paper's node-hour totals; ExaConstit is uniform on the stated
// 10–25 min.
const (
	additiveFOAMNodes = 4 // "every task requires 4 nodes with 56 cores per node"
	exaCANodes        = 1 // "every task requires 1 node ... 8 MPI ranks"
	exaConstitNodes   = 8 // "every task requires 8 nodes with 8 MPI ranks per node"
)

// Stage0Pipeline builds the UQ-grid generation and input-prep application.
func Stage0Pipeline(cfg Config) *entk.Pipeline {
	p := &entk.Pipeline{Name: "uq-stage0"}
	gen := p.AddStage(&entk.Stage{Name: "tasmanian"})
	gen.AddTask(&entk.Task{ID: "uq-grid", Nodes: 1, DurationSec: 60})
	prep := p.AddStage(&entk.Stage{Name: "input-prep"})
	for i := 0; i < cfg.meltPools(); i++ {
		prep.AddTask(&entk.Task{ID: fmt.Sprintf("prep-%03d", i), Nodes: 1, DurationSec: 10})
	}
	return p
}

// Stage1Pipeline builds the melt-pool + microstructure application:
// AdditiveFOAM pre-processing, even and odd AdditiveFOAM runs, a gather
// step, ExaCA over the thermal×micro cartesian product, and ExaCA analysis.
// RunFull executes the two halves as separate batch jobs with the paper's
// allocations (AdditiveFOAM 40 nodes, ExaCA 125 nodes); see
// Stage1AFPipeline/Stage1CAPipeline.
func Stage1Pipeline(cfg Config) *entk.Pipeline {
	rng := randx.New(cfg.Seed + 1)
	p := &entk.Pipeline{Name: "uq-stage1"}

	pre := p.AddStage(&entk.Stage{Name: "af-pre"})
	pre.AddTask(&entk.Task{ID: "af-preprocess", Nodes: 1, DurationSec: 120})

	// "AdditiveFOAM ... requires even and odd runs to generate all melt
	// pool thermal histories."
	even := p.AddStage(&entk.Stage{Name: "additivefoam-even"})
	for i := 0; i < cfg.meltPools(); i++ {
		even.AddTask(&entk.Task{
			ID:          fmt.Sprintf("af-even-%03d", i),
			Nodes:       additiveFOAMNodes,
			DurationSec: rng.LogNormalMeanCV(1300, 0.15),
		})
	}
	odd := p.AddStage(&entk.Stage{Name: "additivefoam-odd"})
	for i := 0; i < cfg.meltPools(); i++ {
		odd.AddTask(&entk.Task{
			ID:          fmt.Sprintf("af-odd-%03d", i),
			Nodes:       additiveFOAMNodes,
			DurationSec: rng.LogNormalMeanCV(1300, 0.15),
		})
	}
	gather := p.AddStage(&entk.Stage{Name: "af-gather"})
	gather.AddTask(&entk.Task{ID: "af-postprocess", Nodes: 1, DurationSec: 300})

	// ExaCA over the cartesian product of melt-pool cases and
	// microstructure parameters.
	ca := p.AddStage(&entk.Stage{Name: "exaca"})
	for i := 0; i < cfg.meltPools(); i++ {
		for j := 0; j < cfg.MicroParams; j++ {
			ca.AddTask(&entk.Task{
				ID:          fmt.Sprintf("exaca-%03d-%02d", i, j),
				Nodes:       exaCANodes,
				DurationSec: rng.LogNormalMeanCV(12600, 0.1),
			})
		}
	}
	an := p.AddStage(&entk.Stage{Name: "exaca-analysis"})
	an.AddTask(&entk.Task{ID: "exaca-post", Nodes: 1, DurationSec: 300})
	return p
}

// Stage1AFPipeline builds the AdditiveFOAM half of stage 1 (its own batch
// job: "AdditiveFOAM workflow utilized 40 compute nodes for 2 hours").
func Stage1AFPipeline(cfg Config) *entk.Pipeline {
	rng := randx.New(cfg.Seed + 1)
	p := &entk.Pipeline{Name: "uq-stage1-af"}
	pre := p.AddStage(&entk.Stage{Name: "af-pre"})
	pre.AddTask(&entk.Task{ID: "af-preprocess", Nodes: 1, DurationSec: 120})
	even := p.AddStage(&entk.Stage{Name: "additivefoam-even"})
	for i := 0; i < cfg.meltPools(); i++ {
		even.AddTask(&entk.Task{
			ID:          fmt.Sprintf("af-even-%03d", i),
			Nodes:       additiveFOAMNodes,
			DurationSec: rng.LogNormalMeanCV(1300, 0.15),
		})
	}
	odd := p.AddStage(&entk.Stage{Name: "additivefoam-odd"})
	for i := 0; i < cfg.meltPools(); i++ {
		odd.AddTask(&entk.Task{
			ID:          fmt.Sprintf("af-odd-%03d", i),
			Nodes:       additiveFOAMNodes,
			DurationSec: rng.LogNormalMeanCV(1300, 0.15),
		})
	}
	gather := p.AddStage(&entk.Stage{Name: "af-gather"})
	gather.AddTask(&entk.Task{ID: "af-postprocess", Nodes: 1, DurationSec: 300})
	return p
}

// Stage1CAPipeline builds the ExaCA half of stage 1 (its own batch job:
// "ExaCA workflow utilized 125 compute nodes for 4 hours").
func Stage1CAPipeline(cfg Config) *entk.Pipeline {
	rng := randx.New(cfg.Seed + 2)
	p := &entk.Pipeline{Name: "uq-stage1-ca"}
	ca := p.AddStage(&entk.Stage{Name: "exaca"})
	for i := 0; i < cfg.meltPools(); i++ {
		for j := 0; j < cfg.MicroParams; j++ {
			ca.AddTask(&entk.Task{
				ID:          fmt.Sprintf("exaca-%03d-%02d", i, j),
				Nodes:       exaCANodes,
				DurationSec: rng.LogNormalMeanCV(12600, 0.1),
			})
		}
	}
	an := p.AddStage(&entk.Stage{Name: "exaca-analysis"})
	an.AddTask(&entk.Task{ID: "exaca-post", Nodes: 1, DurationSec: 300})
	return p
}

// Stage3Pipeline builds the local-property application: one ExaConstit
// ensemble member per microstructure × loading direction × temperature ×
// RVE. The optimization script that fits macroscopic material-model
// parameters runs after the ensemble job (see OptimizePipeline), matching
// the paper's driver structure.
func Stage3Pipeline(cfg Config) *entk.Pipeline {
	rng := randx.New(cfg.Seed + 3)
	p := &entk.Pipeline{Name: "uq-stage3"}
	sims := p.AddStage(&entk.Stage{Name: "exaconstit"})
	for m := 0; m < cfg.Microstructures(); m++ {
		for l := 0; l < cfg.LoadingDirections; l++ {
			for tc := 0; tc < cfg.Temperatures; tc++ {
				for r := 0; r < cfg.RVEs; r++ {
					sims.AddTask(&entk.Task{
						ID:          fmt.Sprintf("ec-m%03d-l%d-t%d-r%d", m, l, tc, r),
						Nodes:       exaConstitNodes,
						DurationSec: rng.Uniform(600, 1500), // "runtime ~10-25 min"
					})
				}
			}
		}
	}
	injectFailures(rng, sims.Tasks, cfg.TransientFailures, cfg.PersistentFailures)
	return p
}

// injectFailures marks distinct random tasks as transient (fail once) or
// persistent (fail always) failures.
func injectFailures(rng *randx.Source, tasks []*entk.Task, transient, persistent int) {
	total := transient + persistent
	if total == 0 || len(tasks) == 0 {
		return
	}
	if total > len(tasks) {
		total = len(tasks)
	}
	perm := rng.Perm(len(tasks))
	for i := 0; i < total; i++ {
		if i < transient {
			tasks[perm[i]].FailAttempts = 1
		} else {
			tasks[perm[i]].FailAttempts = 1 << 30
		}
	}
}

// AdaptiveStage3Pipeline builds a local-property application that grows
// itself: after each ensemble round, the converged callback inspects the
// round index and decides whether another refinement round (one more RVE per
// case) is needed — EnTK's dynamic-workflow capability applied to UQ
// refinement ("create a new workflow stages based on the status of
// previously executed stages", §4). maxRounds bounds growth.
func AdaptiveStage3Pipeline(cfg Config, maxRounds int, converged func(round int) bool) *entk.Pipeline {
	rng := randx.New(cfg.Seed + 7)
	p := &entk.Pipeline{Name: "uq-stage3-adaptive"}

	buildRound := func(round int) *entk.Stage {
		st := &entk.Stage{Name: fmt.Sprintf("exaconstit-r%d", round)}
		for m := 0; m < cfg.Microstructures(); m++ {
			for l := 0; l < cfg.LoadingDirections; l++ {
				for tc := 0; tc < cfg.Temperatures; tc++ {
					st.AddTask(&entk.Task{
						ID:          fmt.Sprintf("ec-r%d-m%03d-l%d-t%d", round, m, l, tc),
						Nodes:       exaConstitNodes,
						DurationSec: rng.Uniform(600, 1500),
					})
				}
			}
		}
		return st
	}
	var attach func(st *entk.Stage, round int)
	attach = func(st *entk.Stage, round int) {
		st.PostExec = func(pl *entk.Pipeline, _ *entk.Stage) {
			if round >= maxRounds || converged(round) {
				return
			}
			next := buildRound(round + 1)
			attach(next, round+1)
			pl.AddStage(next)
		}
	}
	first := buildRound(1)
	attach(first, 1)
	p.AddStage(first)
	return p
}

// OptimizePipeline is the post-ensemble optimization script that "calculates
// the necessary macroscopic material model parameters to be used in full
// part-builds".
func OptimizePipeline() *entk.Pipeline {
	p := &entk.Pipeline{Name: "uq-optimize"}
	opt := p.AddStage(&entk.Stage{Name: "optimize"})
	opt.AddTask(&entk.Task{ID: "fit-material-model", Nodes: 1, DurationSec: 600})
	return p
}

// StageResources returns the paper's per-stage resource requests (§4.3):
// AdditiveFOAM 40 nodes / 2 h, ExaCA 125 nodes / 4 h, ExaConstit `nodes`
// (8000 on Frontier) / up to 12 h.
func StageResources(stage int, nodes int) entk.ResourceDesc {
	switch stage {
	case 0:
		return entk.FrontierResource(minInt(nodes, 8), 3600)
	case 1:
		return entk.FrontierResource(minInt(nodes, 125), 6*3600)
	default:
		return entk.FrontierResource(nodes, 12*3600)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Result bundles per-stage EnTK reports for the full pipeline. Stage1AF and
// Stage1CA are the two stage-1 batch jobs (AdditiveFOAM, ExaCA); Stage1
// aliases Stage1CA for backwards compatibility.
type Result struct {
	Stage0, Stage1, Stage3, Optimize *entk.Report
	Stage1AF, Stage1CA               *entk.Report
}

// RunFull executes the three-stage UQ pipeline on the given cluster, each
// stage as its own EnTK application with its own resource request — "having
// a dedicated application per UQ stage allows us to execute the stages
// individually or as part of the whole UQ pipeline."
func RunFull(cl *cluster.Cluster, bm *rm.BatchManager, cfg Config, stage3Nodes int) (*Result, error) {
	res := &Result{}
	var err error

	am0 := entk.NewAppManager(cl, bm, StageResources(0, len(cl.UpNodes())))
	am0.Policy = rm.FrontierPolicy
	if res.Stage0, err = am0.Run(Stage0Pipeline(cfg)); err != nil {
		return nil, fmt.Errorf("exaam: stage 0: %w", err)
	}
	// Stage 1 runs as two batch jobs with the paper's allocations:
	// AdditiveFOAM on up to 40 nodes, then ExaCA on up to 125.
	am1a := entk.NewAppManager(cl, bm, entk.FrontierResource(minInt(len(cl.UpNodes()), 40), 2*3600))
	am1a.Policy = rm.FrontierPolicy
	af, err := am1a.Run(Stage1AFPipeline(cfg))
	if err != nil {
		return nil, fmt.Errorf("exaam: stage 1 (AdditiveFOAM): %w", err)
	}
	am1b := entk.NewAppManager(cl, bm, StageResources(1, len(cl.UpNodes())))
	am1b.Policy = rm.FrontierPolicy
	ca, err := am1b.Run(Stage1CAPipeline(cfg))
	if err != nil {
		return nil, fmt.Errorf("exaam: stage 1 (ExaCA): %w", err)
	}
	res.Stage1AF, res.Stage1CA = af, ca
	res.Stage1 = ca // backwards-compatible: the dominant half
	if up := len(cl.UpNodes()); stage3Nodes <= 0 || stage3Nodes > up {
		stage3Nodes = up
	}
	am3 := entk.NewAppManager(cl, bm, StageResources(3, stage3Nodes))
	am3.Policy = rm.FrontierPolicy
	if res.Stage3, err = am3.Run(Stage3Pipeline(cfg)); err != nil {
		return nil, fmt.Errorf("exaam: stage 3: %w", err)
	}
	amOpt := entk.NewAppManager(cl, bm, StageResources(0, len(cl.UpNodes())))
	amOpt.Policy = rm.FrontierPolicy
	if res.Optimize, err = amOpt.Run(OptimizePipeline()); err != nil {
		return nil, fmt.Errorf("exaam: optimize: %w", err)
	}
	return res, nil
}

// TotalExecuted sums successful tasks across stages.
func (r *Result) TotalExecuted() int {
	n := r.Stage0.TasksExecuted + r.Stage3.TasksExecuted
	if r.Stage1AF != nil {
		n += r.Stage1AF.TasksExecuted
	}
	if r.Stage1CA != nil {
		n += r.Stage1CA.TasksExecuted
	}
	if r.Stage1AF == nil && r.Stage1CA == nil && r.Stage1 != nil {
		n += r.Stage1.TasksExecuted
	}
	if r.Optimize != nil {
		n += r.Optimize.TasksExecuted
	}
	return n
}
