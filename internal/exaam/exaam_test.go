package exaam

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/entk"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func TestSparseGridKnownSizes(t *testing.T) {
	// Classic Smolyak/Clenshaw-Curtis counts.
	cases := []struct {
		dim, level, want int
	}{
		{1, 0, 1},
		{1, 1, 3},
		{1, 2, 5},
		{2, 0, 1},
		{2, 1, 5},
		{2, 2, 13},
		{3, 1, 7},
	}
	for _, c := range cases {
		got := len(SparseGrid(c.dim, c.level))
		if got != c.want {
			t.Errorf("SparseGrid(%d,%d) = %d points, want %d", c.dim, c.level, got, c.want)
		}
	}
}

func TestSparseGridDegenerate(t *testing.T) {
	if SparseGrid(0, 2) != nil {
		t.Fatal("dim 0 should be nil")
	}
	if SparseGrid(2, -1) != nil {
		t.Fatal("negative level should be nil")
	}
}

func TestSparseGridPointsInRangeAndUnique(t *testing.T) {
	pts := SparseGrid(3, 3)
	seen := map[string]bool{}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatalf("point dim = %d", len(p))
		}
		for _, v := range p {
			if v < -1 || v > 1 {
				t.Fatalf("point out of range: %v", p)
			}
		}
		k := pointKey(p)
		if seen[k] {
			t.Fatalf("duplicate point %v", p)
		}
		seen[k] = true
	}
}

func TestSparseGridDeterministic(t *testing.T) {
	a := SparseGrid(2, 3)
	b := SparseGrid(2, 3)
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic ordering")
			}
		}
	}
}

func TestScalePoint(t *testing.T) {
	got := ScalePoint([]float64{-1, 0, 1}, []float64{0, 10, 100}, []float64{1, 20, 200})
	want := []float64{0, 15, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScalePoint = %v, want %v", got, want)
		}
	}
}

func TestFrontierConfigCounts(t *testing.T) {
	cfg := FrontierConfig()
	if got := cfg.Microstructures(); got != 125 {
		t.Fatalf("Microstructures = %d, want 125", got)
	}
	if got := cfg.PropertyTasks(); got != 7875 {
		t.Fatalf("PropertyTasks = %d, want 7875 (the paper's ExaConstit count)", got)
	}
}

func TestStagePipelineShapes(t *testing.T) {
	cfg := Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 3, MicroParams: 2,
		LoadingDirections: 2, Temperatures: 2, RVEs: 1, Seed: 7}

	s0 := Stage0Pipeline(cfg)
	if len(s0.Stages) != 2 {
		t.Fatalf("stage0 stages = %d", len(s0.Stages))
	}
	if got := len(s0.Stages[1].Tasks); got != 3 {
		t.Fatalf("prep tasks = %d, want 3", got)
	}

	s1 := Stage1Pipeline(cfg)
	if len(s1.Stages) != 6 { // pre, even, odd, gather, exaca, analysis
		t.Fatalf("stage1 stages = %d, want 6", len(s1.Stages))
	}
	if got := len(s1.Stages[1].Tasks); got != 3 {
		t.Fatalf("even runs = %d, want 3", got)
	}
	if got := len(s1.Stages[4].Tasks); got != 6 { // 3 cases × 2 micro
		t.Fatalf("exaca tasks = %d, want 6", got)
	}
	for _, task := range s1.Stages[1].Tasks {
		if task.Nodes != 4 {
			t.Fatalf("AdditiveFOAM task nodes = %d, want 4", task.Nodes)
		}
	}

	s3 := Stage3Pipeline(cfg)
	if len(s3.Stages) != 1 {
		t.Fatalf("stage3 stages = %d, want 1 (optimize is a separate app)", len(s3.Stages))
	}
	if got := len(s3.Stages[0].Tasks); got != cfg.PropertyTasks() {
		t.Fatalf("exaconstit tasks = %d, want %d", got, cfg.PropertyTasks())
	}
	for _, task := range s3.Stages[0].Tasks {
		if task.Nodes != 8 {
			t.Fatalf("ExaConstit task nodes = %d, want 8", task.Nodes)
		}
		if task.DurationSec < 600 || task.DurationSec > 1500 {
			t.Fatalf("ExaConstit duration %v outside 10–25 min", task.DurationSec)
		}
	}
}

func TestRunFullSmallScale(t *testing.T) {
	eng := sim.NewEngine()
	// ≥125 nodes keeps stage 1 in the 6 h walltime bin ExaCA needs.
	cl := cluster.Frontier(eng, 128)
	bm := rm.NewBatchManager(cl, nil)
	cfg := Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 4, MicroParams: 2,
		LoadingDirections: 2, Temperatures: 1, RVEs: 1, Seed: 3}
	res, err := RunFull(cl, bm, cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := 1 + 4 + // stage0: grid + prep
		1 + 4 + 4 + 1 + 8 + 1 + // stage1
		cfg.PropertyTasks() + 1 // stage3
	if got := res.TotalExecuted(); got != wantTasks {
		t.Fatalf("TotalExecuted = %d, want %d", got, wantTasks)
	}
	if res.Stage3.TasksFailed != 0 {
		t.Fatalf("stage3 failures = %d", res.Stage3.TasksFailed)
	}
	if res.Stage1.TTX <= 0 || res.Stage3.TTX <= 0 {
		t.Fatal("stage TTX not recorded")
	}
}

func TestFailureInjection(t *testing.T) {
	cfg := Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 2, MicroParams: 2,
		LoadingDirections: 2, Temperatures: 2, RVEs: 2, Seed: 5,
		TransientFailures: 3, PersistentFailures: 2}
	p := Stage3Pipeline(cfg)
	transient, persistent := 0, 0
	for _, task := range p.Stages[0].Tasks {
		switch task.FailAttempts {
		case 1:
			transient++
		case 1 << 30:
			persistent++
		case 0:
		default:
			t.Fatalf("unexpected FailAttempts %d", task.FailAttempts)
		}
	}
	if transient != 3 || persistent != 2 {
		t.Fatalf("injected transient=%d persistent=%d, want 3/2", transient, persistent)
	}
}

func TestFaultTolerantRunMatchesPaperCounts(t *testing.T) {
	// Scaled-down §4.3 reproduction: transient failures recover via
	// resubmission, persistent ones stay failed.
	eng := sim.NewEngine()
	cl := cluster.Frontier(eng, 32)
	bm := rm.NewBatchManager(cl, nil)
	cfg := Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 2, MicroParams: 2,
		LoadingDirections: 3, Temperatures: 2, RVEs: 2, Seed: 5,
		TransientFailures: 4, PersistentFailures: 1}
	am := entk.NewAppManager(cl, bm, entk.FrontierResource(32, 12*3600))
	rep, err := am.Run(Stage3Pipeline(cfg))
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.PropertyTasks() - 1 // all but the persistent failure
	if rep.TasksExecuted != want {
		t.Fatalf("executed = %d, want %d", rep.TasksExecuted, want)
	}
	if rep.ResubmittedOK != 4 {
		t.Fatalf("ResubmittedOK = %d, want 4", rep.ResubmittedOK)
	}
	if rep.TasksFailed != 1 {
		t.Fatalf("terminal failures = %d, want 1", rep.TasksFailed)
	}
	if rep.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rep.Rounds)
	}
}

func TestAdaptiveStage3Refines(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Frontier(eng, 64)
	bm := rm.NewBatchManager(cl, nil)
	cfg := Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 2, MicroParams: 1,
		LoadingDirections: 2, Temperatures: 1, RVEs: 1, Seed: 9}

	// Converge after 3 rounds.
	p := AdaptiveStage3Pipeline(cfg, 5, func(round int) bool { return round >= 3 })
	am := entk.NewAppManager(cl, bm, entk.FrontierResource(64, 12*3600))
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	perRound := cfg.Microstructures() * cfg.LoadingDirections * cfg.Temperatures
	if rep.TasksExecuted != 3*perRound {
		t.Fatalf("executed = %d, want %d (3 adaptive rounds)", rep.TasksExecuted, 3*perRound)
	}
	if len(p.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(p.Stages))
	}
}

func TestAdaptiveStage3RespectsMaxRounds(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.Frontier(eng, 64)
	bm := rm.NewBatchManager(cl, nil)
	cfg := Config{GridDim: 2, GridLevel: 1, MeltPoolCases: 2, MicroParams: 1,
		LoadingDirections: 1, Temperatures: 1, RVEs: 1, Seed: 9}
	p := AdaptiveStage3Pipeline(cfg, 2, func(int) bool { return false }) // never converges
	am := entk.NewAppManager(cl, bm, entk.FrontierResource(64, 12*3600))
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d, maxRounds not respected", len(p.Stages))
	}
	if rep.TasksExecuted != 2*cfg.Microstructures() {
		t.Fatalf("executed = %d", rep.TasksExecuted)
	}
}

func TestStageResourcesShape(t *testing.T) {
	if r := StageResources(1, 8000); r.Nodes != 125 {
		t.Fatalf("stage1 nodes = %d, want 125", r.Nodes)
	}
	if r := StageResources(3, 8000); r.Nodes != 8000 || r.Walltime != 12*3600 {
		t.Fatalf("stage3 resources = %+v", r)
	}
	if r := StageResources(0, 8000); r.Nodes != 8 {
		t.Fatalf("stage0 nodes = %d, want 8", r.Nodes)
	}
}
