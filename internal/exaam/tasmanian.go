// Package exaam implements the ExaAM uncertainty-quantification pipeline of
// §4.2: Stage 0 builds a UQ grid (TASMANIAN-style sparse grid) over process
// parameters; Stage 1 runs melt-pool thermal simulations (AdditiveFOAM, even
// and odd runs plus a gather step) and microstructure generation (ExaCA)
// over the cartesian product of thermal cases and microstructure UQ
// parameters; Stage 3 runs ExaConstit local-property ensembles over loading
// directions × temperatures × RVEs and a final optimization step.
//
// The physics codes are replaced by calibrated task models (the paper's
// published shapes: 4 nodes per AdditiveFOAM task, 1 node per ExaCA task,
// 8 nodes and 10–25 min per ExaConstit task); the orchestration — what
// Figures 3–5 measure — is exact.
package exaam

import (
	"math"
	"sort"
)

// SparseGrid generates a Smolyak sparse grid with Clenshaw-Curtis points on
// [-1,1]^dim at the given level — the role TASMANIAN plays in UQ Stage 0
// ("Stage 0 generates the UQ grid using TASMANIAN"). Points are returned
// deduplicated in deterministic (lexicographic) order.
func SparseGrid(dim, level int) [][]float64 {
	if dim <= 0 || level < 0 {
		return nil
	}
	seen := map[string]bool{}
	var out [][]float64

	var indices [][]int
	var walk func(prefix []int, remaining, budget int)
	walk = func(prefix []int, remaining, budget int) {
		if remaining == 0 {
			idx := append([]int(nil), prefix...)
			indices = append(indices, idx)
			return
		}
		for l := 0; l <= budget; l++ {
			walk(append(prefix, l), remaining-1, budget-l)
		}
	}
	walk(nil, dim, level)

	for _, idx := range indices {
		grids := make([][]float64, dim)
		for i, l := range idx {
			grids[i] = ccPoints(l)
		}
		cross(grids, func(pt []float64) {
			k := pointKey(pt)
			if !seen[k] {
				seen[k] = true
				out = append(out, append([]float64(nil), pt...))
			}
		})
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// ccPoints returns the 1-D Clenshaw-Curtis nodes at a level: 1 node at level
// 0, 2^l+1 nodes at level l>=1.
func ccPoints(level int) []float64 {
	if level == 0 {
		return []float64{0}
	}
	n := 1<<uint(level) + 1
	pts := make([]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = -math.Cos(math.Pi * float64(i) / float64(n-1))
		// Snap numeric zeros so deduplication across levels works.
		if math.Abs(pts[i]) < 1e-12 {
			pts[i] = 0
		}
	}
	return pts
}

func cross(grids [][]float64, emit func([]float64)) {
	pt := make([]float64, len(grids))
	var rec func(i int)
	rec = func(i int) {
		if i == len(grids) {
			emit(pt)
			return
		}
		for _, v := range grids[i] {
			pt[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

func pointKey(pt []float64) string {
	// Quantize to avoid float-noise duplicates.
	b := make([]byte, 0, len(pt)*9)
	for _, v := range pt {
		q := int64(math.Round(v * 1e9))
		for i := 0; i < 8; i++ {
			b = append(b, byte(q>>(8*i)))
		}
		b = append(b, ':')
	}
	return string(b)
}

// ScalePoint maps a [-1,1] grid point into physical parameter ranges
// [lo[i], hi[i]].
func ScalePoint(pt []float64, lo, hi []float64) []float64 {
	out := make([]float64, len(pt))
	for i, v := range pt {
		out[i] = lo[i] + (v+1)/2*(hi[i]-lo[i])
	}
	return out
}
