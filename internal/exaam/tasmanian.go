// Package exaam implements the ExaAM uncertainty-quantification pipeline of
// §4.2: Stage 0 builds a UQ grid (TASMANIAN-style sparse grid) over process
// parameters; Stage 1 runs melt-pool thermal simulations (AdditiveFOAM, even
// and odd runs plus a gather step) and microstructure generation (ExaCA)
// over the cartesian product of thermal cases and microstructure UQ
// parameters; Stage 3 runs ExaConstit local-property ensembles over loading
// directions × temperatures × RVEs and a final optimization step.
//
// The physics codes are replaced by calibrated task models (the paper's
// published shapes: 4 nodes per AdditiveFOAM task, 1 node per ExaCA task,
// 8 nodes and 10–25 min per ExaConstit task); the orchestration — what
// Figures 3–5 measure — is exact.
package exaam

import (
	"math"
	"sort"
)

// SparseGrid generates a Smolyak sparse grid with Clenshaw-Curtis points on
// [-1,1]^dim at the given level — the role TASMANIAN plays in UQ Stage 0
// ("Stage 0 generates the UQ grid using TASMANIAN"). Points are returned
// deduplicated in deterministic (lexicographic) order.
func SparseGrid(dim, level int) [][]float64 {
	if dim <= 0 || level < 0 {
		return nil
	}
	// 1-D node tables are shared across every index combination instead of
	// recomputed per dimension, and each level-index tuple is expanded in
	// place (grids[pos] rebinding during the walk) rather than materialized.
	cc := make([][]float64, level+1)
	for l := 0; l <= level; l++ {
		cc[l] = ccPoints(l)
	}
	seen := map[string]bool{}
	var out [][]float64
	grids := make([][]float64, dim)
	pt := make([]float64, dim)
	var keyBuf []byte
	emit := func(pt []float64) {
		// Quantized-key lookup on a reused buffer; the key string is only
		// materialized when the point is new.
		keyBuf = appendPointKey(keyBuf[:0], pt)
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			out = append(out, append([]float64(nil), pt...))
		}
	}
	var walk func(pos, budget int)
	walk = func(pos, budget int) {
		if pos == dim {
			crossRec(pt, grids, 0, emit)
			return
		}
		for l := 0; l <= budget; l++ {
			grids[pos] = cc[l]
			walk(pos+1, budget-l)
		}
	}
	walk(0, level)
	sort.Sort(pointsLex(out))
	return out
}

// pointsLex sorts points lexicographically. Points are deduplicated before
// sorting, so the (unstable) sort has a unique fixed point.
type pointsLex [][]float64

func (p pointsLex) Len() int      { return len(p) }
func (p pointsLex) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p pointsLex) Less(i, j int) bool {
	for k := range p[i] {
		if p[i][k] != p[j][k] {
			return p[i][k] < p[j][k]
		}
	}
	return false
}

// ccPoints returns the 1-D Clenshaw-Curtis nodes at a level: 1 node at level
// 0, 2^l+1 nodes at level l>=1.
func ccPoints(level int) []float64 {
	if level == 0 {
		return []float64{0}
	}
	n := 1<<uint(level) + 1
	pts := make([]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = -math.Cos(math.Pi * float64(i) / float64(n-1))
		// Snap numeric zeros so deduplication across levels works.
		if math.Abs(pts[i]) < 1e-12 {
			pts[i] = 0
		}
	}
	return pts
}

// crossRec emits every point of the cartesian product of grids into the pt
// scratch buffer. A plain recursive function (not a closure pair) so the
// walk itself allocates nothing.
func crossRec(pt []float64, grids [][]float64, pos int, emit func([]float64)) {
	if pos == len(grids) {
		emit(pt)
		return
	}
	for _, v := range grids[pos] {
		pt[pos] = v
		crossRec(pt, grids, pos+1, emit)
	}
}

// appendPointKey appends pt's quantized dedup key to b (reusable scratch).
func appendPointKey(b []byte, pt []float64) []byte {
	for _, v := range pt {
		q := int64(math.Round(v * 1e9))
		for i := 0; i < 8; i++ {
			b = append(b, byte(q>>(8*i)))
		}
		b = append(b, ':')
	}
	return b
}

func pointKey(pt []float64) string {
	// Quantize to avoid float-noise duplicates.
	return string(appendPointKey(make([]byte, 0, len(pt)*9), pt))
}

// ScalePoint maps a [-1,1] grid point into physical parameter ranges
// [lo[i], hi[i]].
func ScalePoint(pt []float64, lo, hi []float64) []float64 {
	out := make([]float64, len(pt))
	for i, v := range pt {
		out[i] = lo[i] + (v+1)/2*(hi[i]-lo[i])
	}
	return out
}
