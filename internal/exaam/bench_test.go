package exaam

import "testing"

// BenchmarkSparseGrid measures TASMANIAN-style grid generation at the
// dimensions/levels UQ studies use.
func BenchmarkSparseGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(SparseGrid(4, 4)); got == 0 {
			b.Fatal("empty grid")
		}
	}
}

// BenchmarkStage3Build measures building the full 7875-task ensemble
// pipeline definition.
func BenchmarkStage3Build(b *testing.B) {
	cfg := FrontierConfig()
	for i := 0; i < b.N; i++ {
		p := Stage3Pipeline(cfg)
		if len(p.Stages[0].Tasks) != 7875 {
			b.Fatal("wrong task count")
		}
	}
}
