// Package storage models the data plane of a hyper-heterogeneous
// environment: per-site shared filesystems, an S3-like object store, and an
// inter-site transfer service (the role Globus plays in JAWS, §6.3). File
// content is never materialized — only names, sizes and placement matter to
// the orchestration results the paper reports.
package storage

import (
	"fmt"
	"sort"

	"hhcw/internal/metrics"
	"hhcw/internal/sim"
)

// File is a named blob with a size.
type File struct {
	Name  string
	Bytes float64
}

// Store is a named collection of files with a bandwidth/latency profile.
// It models both site-local shared filesystems and cloud object stores.
type Store struct {
	Name string
	// ReadBW/WriteBW are bytes per second for streaming access.
	ReadBW, WriteBW float64
	// Latency is the per-operation setup cost in seconds.
	Latency float64

	files map[string]File

	// IO accounting for bottleneck analysis (§6.2's filesystem-strain
	// anti-pattern): total bytes moved and operation counts.
	BytesRead    float64
	BytesWritten float64
	Ops          int
}

// NewStore creates an empty store. Zero bandwidths mean "infinitely fast",
// which is convenient for tests.
func NewStore(name string, readBW, writeBW, latency float64) *Store {
	return &Store{
		Name:    name,
		ReadBW:  readBW,
		WriteBW: writeBW,
		Latency: latency,
		files:   make(map[string]File),
	}
}

// Put registers a file (overwriting any previous version) and returns the
// virtual seconds the write costs.
func (s *Store) Put(f File) float64 {
	s.files[f.Name] = f
	s.Ops++
	s.BytesWritten += f.Bytes
	return s.Latency + safeDiv(f.Bytes, s.WriteBW)
}

// Get looks a file up and returns it with the virtual seconds the read
// costs. The boolean reports existence.
func (s *Store) Get(name string) (File, float64, bool) {
	f, ok := s.files[name]
	if !ok {
		return File{}, 0, false
	}
	s.Ops++
	s.BytesRead += f.Bytes
	return f, s.Latency + safeDiv(f.Bytes, s.ReadBW), true
}

// Has reports whether a file exists without charging I/O.
func (s *Store) Has(name string) bool {
	_, ok := s.files[name]
	return ok
}

// Delete removes a file if present.
func (s *Store) Delete(name string) {
	delete(s.files, name)
}

// Len returns the number of stored files.
func (s *Store) Len() int { return len(s.files) }

// TotalBytes returns the sum of stored file sizes.
func (s *Store) TotalBytes() float64 {
	sum := 0.0
	for _, f := range s.files {
		sum += f.Bytes
	}
	return sum
}

// List returns stored file names in sorted order.
func (s *Store) List() []string {
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// Link describes the network path between two stores.
type Link struct {
	BandwidthBps float64 // bytes per second
	LatencySec   float64
}

// TransferService moves files between stores over configured links,
// occupying virtual time on a sim engine — the Globus role in JAWS and the
// S3-vs-Internet asymmetry behind Table 2's prefetch row. Concurrent
// transfers on the same directed link share its bandwidth fairly: each of n
// in-flight transfers progresses at BW/n, recomputed whenever a transfer
// joins or leaves the link.
type TransferService struct {
	eng   *sim.Engine
	links map[string]Link

	inflight map[string][]*xfer // linkKey → active transfers

	active    *metrics.Gauge
	completed *metrics.Counter
	moved     float64
}

// xfer is one in-flight transfer on a shared link.
type xfer struct {
	remaining  float64
	lastUpdate sim.Time
	finishEv   *sim.Event
	complete   func()
}

// NewTransferService returns a service with no links; unknown pairs use a
// zero-cost default link.
func NewTransferService(eng *sim.Engine) *TransferService {
	return &TransferService{
		eng:       eng,
		links:     make(map[string]Link),
		inflight:  make(map[string][]*xfer),
		active:    metrics.NewGauge("transfer.active"),
		completed: metrics.NewCounter("transfer.completed"),
	}
}

func linkKey(from, to string) string { return from + "→" + to }

// SetLink configures the directed link from→to.
func (t *TransferService) SetLink(from, to string, l Link) {
	t.links[linkKey(from, to)] = l
}

// LinkFor returns the configured link or a zero-cost default.
func (t *TransferService) LinkFor(from, to string) Link {
	return t.links[linkKey(from, to)]
}

// EstimateSec returns the virtual seconds a transfer of size bytes takes
// from→to.
func (t *TransferService) EstimateSec(from, to string, bytes float64) float64 {
	l := t.LinkFor(from, to)
	return l.LatencySec + safeDiv(bytes, l.BandwidthBps)
}

// Transfer copies name from src to dst, invoking done(err) when the copy
// completes in virtual time. A missing source fails immediately (done is
// still called asynchronously, at now). Bandwidth is shared fairly with the
// link's other in-flight transfers; the per-operation latency is paid up
// front, before the transfer joins the link.
func (t *TransferService) Transfer(src, dst *Store, name string, done func(error)) {
	f, ok := src.files[name]
	if !ok {
		t.eng.After(0, func() { done(fmt.Errorf("storage: %q not in %s", name, src.Name)) })
		return
	}
	l := t.LinkFor(src.Name, dst.Name)
	t.active.AddDelta(t.eng.Now(), 1)
	finish := func() {
		dst.files[name] = f
		dst.Ops++
		dst.BytesWritten += f.Bytes
		t.moved += f.Bytes
		t.active.AddDelta(t.eng.Now(), -1)
		t.completed.Inc(t.eng.Now(), 1)
		done(nil)
	}
	t.eng.After(sim.Time(l.LatencySec), func() {
		if l.BandwidthBps <= 0 {
			finish() // infinitely fast link
			return
		}
		key := linkKey(src.Name, dst.Name)
		x := &xfer{remaining: f.Bytes, lastUpdate: t.eng.Now(), complete: finish}
		t.settle(key, l.BandwidthBps)
		t.inflight[key] = append(t.inflight[key], x)
		t.reschedule(key, l.BandwidthBps)
	})
}

// settle advances every in-flight transfer on the link to "now" at the
// current fair-share rate.
func (t *TransferService) settle(key string, bw float64) {
	xs := t.inflight[key]
	if len(xs) == 0 {
		return
	}
	rate := bw / float64(len(xs))
	now := t.eng.Now()
	for _, x := range xs {
		x.remaining -= rate * float64(now-x.lastUpdate)
		if x.remaining < 0 {
			x.remaining = 0
		}
		x.lastUpdate = now
	}
}

// reschedule recomputes every in-flight transfer's completion event after a
// membership change.
func (t *TransferService) reschedule(key string, bw float64) {
	xs := t.inflight[key]
	if len(xs) == 0 {
		return
	}
	rate := bw / float64(len(xs))
	for _, x := range xs {
		x := x
		if x.finishEv != nil {
			x.finishEv.Cancel()
		}
		x.finishEv = t.eng.After(sim.Time(x.remaining/rate), func() {
			t.settle(key, bw)
			// Remove x from the link.
			cur := t.inflight[key]
			for i, y := range cur {
				if y == x {
					t.inflight[key] = append(cur[:i], cur[i+1:]...)
					break
				}
			}
			x.complete()
			t.reschedule(key, bw)
		})
	}
}

// BytesMoved returns the total bytes transferred so far.
func (t *TransferService) BytesMoved() float64 { return t.moved }

// CompletedTransfers returns the number of finished transfers.
func (t *TransferService) CompletedTransfers() int { return int(t.completed.Value()) }
