package storage

import (
	"math"
	"testing"
	"testing/quick"

	"hhcw/internal/sim"
)

func TestPutGet(t *testing.T) {
	s := NewStore("fs", 100, 50, 0.5)
	wcost := s.Put(File{Name: "a", Bytes: 500})
	if math.Abs(wcost-(0.5+10)) > 1e-9 {
		t.Fatalf("write cost = %v, want 10.5", wcost)
	}
	f, rcost, ok := s.Get("a")
	if !ok || f.Bytes != 500 {
		t.Fatalf("Get: %v %v", f, ok)
	}
	if math.Abs(rcost-(0.5+5)) > 1e-9 {
		t.Fatalf("read cost = %v, want 5.5", rcost)
	}
	if _, _, ok := s.Get("missing"); ok {
		t.Fatal("Get on missing file returned ok")
	}
}

func TestZeroBandwidthIsFree(t *testing.T) {
	s := NewStore("fast", 0, 0, 0)
	if cost := s.Put(File{Name: "x", Bytes: 1e12}); cost != 0 {
		t.Fatalf("cost = %v, want 0", cost)
	}
}

func TestStoreAccounting(t *testing.T) {
	s := NewStore("fs", 0, 0, 0)
	s.Put(File{Name: "a", Bytes: 100})
	s.Put(File{Name: "b", Bytes: 200})
	s.Get("a")
	if s.Ops != 3 {
		t.Fatalf("Ops = %d, want 3", s.Ops)
	}
	if s.BytesWritten != 300 || s.BytesRead != 100 {
		t.Fatalf("bytes w=%v r=%v", s.BytesWritten, s.BytesRead)
	}
	if s.TotalBytes() != 300 || s.Len() != 2 {
		t.Fatalf("TotalBytes=%v Len=%d", s.TotalBytes(), s.Len())
	}
	s.Delete("a")
	if s.Has("a") || !s.Has("b") {
		t.Fatal("Delete wrong file")
	}
	if got := s.List(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("List = %v", got)
	}
}

func TestPutOverwrites(t *testing.T) {
	s := NewStore("fs", 0, 0, 0)
	s.Put(File{Name: "a", Bytes: 100})
	s.Put(File{Name: "a", Bytes: 999})
	f, _, _ := s.Get("a")
	if f.Bytes != 999 {
		t.Fatalf("overwrite failed: %v", f.Bytes)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", s.Len())
	}
}

func TestTransferTiming(t *testing.T) {
	eng := sim.NewEngine()
	src := NewStore("hpc", 0, 0, 0)
	dst := NewStore("cloud", 0, 0, 0)
	ts := NewTransferService(eng)
	ts.SetLink("hpc", "cloud", Link{BandwidthBps: 100, LatencySec: 2})
	src.Put(File{Name: "data", Bytes: 800})

	var doneAt sim.Time
	ts.Transfer(src, dst, "data", func(err error) {
		if err != nil {
			t.Errorf("transfer error: %v", err)
		}
		doneAt = eng.Now()
	})
	eng.Run()
	if doneAt != 10 { // 2s latency + 800/100
		t.Fatalf("transfer completed at %v, want 10", doneAt)
	}
	if !dst.Has("data") {
		t.Fatal("file not at destination")
	}
	if ts.BytesMoved() != 800 || ts.CompletedTransfers() != 1 {
		t.Fatalf("accounting: moved=%v n=%d", ts.BytesMoved(), ts.CompletedTransfers())
	}
}

func TestTransferMissingSource(t *testing.T) {
	eng := sim.NewEngine()
	src := NewStore("a", 0, 0, 0)
	dst := NewStore("b", 0, 0, 0)
	ts := NewTransferService(eng)
	var gotErr error
	called := false
	ts.Transfer(src, dst, "ghost", func(err error) { gotErr = err; called = true })
	eng.Run()
	if !called || gotErr == nil {
		t.Fatalf("missing-source transfer: called=%v err=%v", called, gotErr)
	}
}

func TestTransferDefaultLinkInstant(t *testing.T) {
	eng := sim.NewEngine()
	src := NewStore("a", 0, 0, 0)
	dst := NewStore("b", 0, 0, 0)
	src.Put(File{Name: "f", Bytes: 1e9})
	ts := NewTransferService(eng)
	var at sim.Time = -1
	ts.Transfer(src, dst, "f", func(error) { at = eng.Now() })
	eng.Run()
	if at != 0 {
		t.Fatalf("default link should be instant, done at %v", at)
	}
}

func TestEstimateSec(t *testing.T) {
	eng := sim.NewEngine()
	ts := NewTransferService(eng)
	ts.SetLink("x", "y", Link{BandwidthBps: 1e6, LatencySec: 1})
	if got := ts.EstimateSec("x", "y", 2e6); got != 3 {
		t.Fatalf("EstimateSec = %v, want 3", got)
	}
	// Directed: reverse is default (instant).
	if got := ts.EstimateSec("y", "x", 2e6); got != 0 {
		t.Fatalf("reverse estimate = %v, want 0", got)
	}
}

// Property: transferring any set of files conserves sizes and completes all
// callbacks.
func TestTransferConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine()
		src := NewStore("s", 0, 0, 0)
		dst := NewStore("d", 0, 0, 0)
		ts := NewTransferService(eng)
		ts.SetLink("s", "d", Link{BandwidthBps: 1000, LatencySec: 0.1})
		want := 0.0
		for i, sz := range sizes {
			name := string(rune('a'+i%26)) + string(rune('0'+i%10))
			src.Put(File{Name: name, Bytes: float64(sz)})
		}
		done := 0
		for _, name := range src.List() {
			f, _, _ := src.Get(name)
			want += f.Bytes
			ts.Transfer(src, dst, name, func(err error) {
				if err == nil {
					done++
				}
			})
		}
		eng.Run()
		return done == src.Len() && math.Abs(dst.TotalBytes()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedLinkBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	src := NewStore("a", 0, 0, 0)
	dst := NewStore("b", 0, 0, 0)
	ts := NewTransferService(eng)
	ts.SetLink("a", "b", Link{BandwidthBps: 100})
	src.Put(File{Name: "x", Bytes: 1000})
	src.Put(File{Name: "y", Bytes: 1000})
	var xAt, yAt sim.Time
	ts.Transfer(src, dst, "x", func(error) { xAt = eng.Now() })
	ts.Transfer(src, dst, "y", func(error) { yAt = eng.Now() })
	eng.Run()
	// Two 1000-byte transfers sharing 100 B/s: each progresses at 50 B/s
	// and both finish at t=20 (vs 10 each if unshared).
	if xAt != 20 || yAt != 20 {
		t.Fatalf("shared completions at %v/%v, want 20/20", xAt, yAt)
	}
}

func TestSharedLinkLateJoiner(t *testing.T) {
	eng := sim.NewEngine()
	src := NewStore("a", 0, 0, 0)
	dst := NewStore("b", 0, 0, 0)
	ts := NewTransferService(eng)
	ts.SetLink("a", "b", Link{BandwidthBps: 100})
	src.Put(File{Name: "x", Bytes: 1000})
	src.Put(File{Name: "y", Bytes: 1000})
	var xAt, yAt sim.Time
	ts.Transfer(src, dst, "x", func(error) { xAt = eng.Now() })
	eng.At(5, func() {
		ts.Transfer(src, dst, "y", func(error) { yAt = eng.Now() })
	})
	eng.Run()
	// x: 500 bytes alone (t=0..5), then shares: remaining 500 at 50 B/s →
	// done at t=15. y then gets full bandwidth: remaining 500 at t=15, 100
	// B/s → done at t=20.
	if xAt != 15 {
		t.Fatalf("x done at %v, want 15", xAt)
	}
	if yAt != 20 {
		t.Fatalf("y done at %v, want 20", yAt)
	}
}

func TestSharedLinkIndependentLinks(t *testing.T) {
	eng := sim.NewEngine()
	a := NewStore("a", 0, 0, 0)
	b := NewStore("b", 0, 0, 0)
	c := NewStore("c", 0, 0, 0)
	ts := NewTransferService(eng)
	ts.SetLink("a", "b", Link{BandwidthBps: 100})
	ts.SetLink("a", "c", Link{BandwidthBps: 100})
	a.Put(File{Name: "x", Bytes: 1000})
	a.Put(File{Name: "y", Bytes: 1000})
	var xAt, yAt sim.Time
	ts.Transfer(a, b, "x", func(error) { xAt = eng.Now() })
	ts.Transfer(a, c, "y", func(error) { yAt = eng.Now() })
	eng.Run()
	// Different links: no sharing, both done at 10.
	if xAt != 10 || yAt != 10 {
		t.Fatalf("independent links shared: %v/%v", xAt, yAt)
	}
}

func TestSharedLinkLatencyUpFront(t *testing.T) {
	eng := sim.NewEngine()
	src := NewStore("a", 0, 0, 0)
	dst := NewStore("b", 0, 0, 0)
	ts := NewTransferService(eng)
	ts.SetLink("a", "b", Link{BandwidthBps: 100, LatencySec: 3})
	src.Put(File{Name: "x", Bytes: 1000})
	var xAt sim.Time
	ts.Transfer(src, dst, "x", func(error) { xAt = eng.Now() })
	eng.Run()
	if xAt != 13 {
		t.Fatalf("done at %v, want 13 (3 latency + 10 streaming)", xAt)
	}
}
