package jaws

import (
	"fmt"

	"hhcw/internal/cluster"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// Engine is the Cromwell-like execution engine: it expands scatters into
// shards, runs them through a site's resource manager, caches calls, and —
// unlike stock Cromwell, which "does not implement fair share policies"
// (§6.2) — optionally caps per-user concurrency.
type Engine struct {
	cl    *cluster.Cluster
	mgr   *rm.TaskManager
	store *storage.Store

	// CallCaching enables result reuse for identical calls.
	CallCaching bool
	// MaxConcurrentPerUser bounds each user's running shards (0 =
	// unbounded, the §6.2 anti-pattern).
	MaxConcurrentPerUser int

	cache map[string]bool // signature → done

	// Per-user throttling state.
	running map[string]int
	waiting map[string][]func()
}

// NewEngine builds an engine over a cluster with its own task manager.
func NewEngine(cl *cluster.Cluster, store *storage.Store) *Engine {
	return &Engine{
		cl:      cl,
		mgr:     rm.NewTaskManager(cl, nil),
		store:   store,
		cache:   map[string]bool{},
		running: map[string]int{},
		waiting: map[string][]func(){},
	}
}

// RunReport summarizes one workflow execution.
type RunReport struct {
	Workflow       string
	User           string
	Makespan       sim.Time
	ShardsExecuted int
	CacheHits      int
	// FilesystemOps counts staging writes — the shard-proportional load
	// §6.1's fusion example reduced by 71 %.
	FilesystemOps int
	// TaskSeconds is summed payload+overhead execution time.
	TaskSeconds float64
}

// Run executes a workflow for a user. It drives the engine's simulator until
// the workflow completes. Multiple Run calls may be issued before running
// the engine via Start/Wait for concurrent-user experiments.
func (e *Engine) Run(def *WorkflowDef, user string) (*RunReport, error) {
	rep, done, err := e.Start(def, user)
	if err != nil {
		return nil, err
	}
	e.cl.Engine().Run()
	if !*done {
		return nil, fmt.Errorf("jaws: workflow %q stalled (cluster too small for a task?)", def.Name)
	}
	return rep, nil
}

// Start begins executing a workflow without driving the simulator, so
// several users' workflows can share the engine concurrently. The returned
// flag becomes true when the workflow finishes.
func (e *Engine) Start(def *WorkflowDef, user string) (*RunReport, *bool, error) {
	if err := def.Validate(); err != nil {
		return nil, nil, err
	}
	eng := e.cl.Engine()
	rep := &RunReport{Workflow: def.Name, User: user}
	start := eng.Now()
	done := new(bool)

	remainingDeps := map[string]int{}
	remainingShards := map[string]int{}
	totalRemaining := len(def.Tasks)
	for _, t := range def.Tasks {
		remainingDeps[t.Name] = len(t.After)
		remainingShards[t.Name] = t.Shards()
	}

	var launchTask func(t *TaskDef)
	taskDone := func(t *TaskDef) {
		totalRemaining--
		if totalRemaining == 0 {
			rep.Makespan = eng.Now() - start
			*done = true
		}
		for _, c := range def.Children(t.Name) {
			remainingDeps[c.Name]--
			if remainingDeps[c.Name] == 0 {
				launchTask(c)
			}
		}
	}
	launchTask = func(t *TaskDef) {
		for shard := 0; shard < t.Shards(); shard++ {
			shard := shard
			sig := def.Signature(t, shard)
			if e.CallCaching && e.cache[sig] {
				rep.CacheHits++
				remainingShards[t.Name]--
				if remainingShards[t.Name] == 0 {
					// Defer to an event so ordering matches execution.
					eng.After(0, func() { taskDone(t) })
				}
				continue
			}
			e.admit(user, func() {
				e.mgr.Submit(&rm.Submission{
					ID:         fmt.Sprintf("%s/%s/%s#%d", user, def.Name, t.Name, shard),
					WorkflowID: user + "/" + def.Name,
					Name:       t.Name,
					Cores:      t.Cores,
					Mem:        t.MemBytes,
					Runtime: func(n *cluster.Node) float64 {
						return t.OverheadSec + t.DurationSec/n.Type.SpeedFactor
					},
					Done: func(r rm.Result) {
						e.release(user)
						if r.Failed {
							// Shards rerun on node failure (workflow
							// managers "efficiently handle fault-tolerance").
							e.admit(user, func() { e.resubmit(def, t, shard, user, rep, &remainingShards, taskDone) })
							return
						}
						e.completeShard(def, t, shard, sig, rep)
						remainingShards[t.Name]--
						if remainingShards[t.Name] == 0 {
							taskDone(t)
						}
					},
				})
			})
		}
	}
	for _, t := range def.Tasks {
		if len(t.After) == 0 {
			launchTask(t)
		}
	}
	return rep, done, nil
}

func (e *Engine) resubmit(def *WorkflowDef, t *TaskDef, shard int, user string, rep *RunReport, remainingShards *map[string]int, taskDone func(*TaskDef)) {
	sig := def.Signature(t, shard)
	e.mgr.Submit(&rm.Submission{
		ID:         fmt.Sprintf("%s/%s/%s#%d-retry", user, def.Name, t.Name, shard),
		WorkflowID: user + "/" + def.Name,
		Name:       t.Name,
		Cores:      t.Cores,
		Mem:        t.MemBytes,
		Runtime: func(n *cluster.Node) float64 {
			return t.OverheadSec + t.DurationSec/n.Type.SpeedFactor
		},
		Done: func(r rm.Result) {
			e.release(user)
			if r.Failed {
				e.admit(user, func() { e.resubmit(def, t, shard, user, rep, remainingShards, taskDone) })
				return
			}
			e.completeShard(def, t, shard, sig, rep)
			(*remainingShards)[t.Name]--
			if (*remainingShards)[t.Name] == 0 {
				taskDone(t)
			}
		},
	})
}

func (e *Engine) completeShard(def *WorkflowDef, t *TaskDef, shard int, sig string, rep *RunReport) {
	rep.ShardsExecuted++
	rep.TaskSeconds += t.OverheadSec + t.DurationSec
	// Each shard stages outputs to the shared filesystem.
	e.store.Put(storage.File{
		Name:  fmt.Sprintf("%s/%s/shard-%04d.out", def.Name, t.Name, shard),
		Bytes: 50e6,
	})
	rep.FilesystemOps++
	if e.CallCaching {
		e.cache[sig] = true
	}
}

// admit runs fn now if the user is under their concurrency cap, else queues.
func (e *Engine) admit(user string, fn func()) {
	if e.MaxConcurrentPerUser > 0 && e.running[user] >= e.MaxConcurrentPerUser {
		e.waiting[user] = append(e.waiting[user], fn)
		return
	}
	e.running[user]++
	fn()
}

func (e *Engine) release(user string) {
	e.running[user]--
	if q := e.waiting[user]; len(q) > 0 && (e.MaxConcurrentPerUser == 0 || e.running[user] < e.MaxConcurrentPerUser) {
		fn := q[0]
		e.waiting[user] = q[1:]
		e.running[user]++
		fn()
	}
}

// Store returns the engine's shared filesystem.
func (e *Engine) Store() *storage.Store { return e.store }

// Cluster returns the engine's compute site.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }
