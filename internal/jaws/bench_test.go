package jaws

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// BenchmarkParse measures the mini-WDL parser.
func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sampleWDL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScatterRun measures one full engine execution of a
// 24-shard scatter workflow.
func BenchmarkEngineScatterRun(b *testing.B) {
	def, err := Parse(sampleWDL)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.New(eng, "s", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 16, MemBytes: 256e9},
			Count: 4,
		})
		e := NewEngine(cl, storage.NewStore("fs", 0, 0, 0))
		if _, err := e.Run(def, "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignature measures call-cache key derivation (computed per shard
// per run).
func BenchmarkSignature(b *testing.B) {
	def, err := Parse(sampleWDL)
	if err != nil {
		b.Fatal(err)
	}
	t := def.Task("merge")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = def.Signature(t, i%24)
	}
}

// BenchmarkLint measures the migration linter.
func BenchmarkLint(b *testing.B) {
	def, err := Parse(sampleWDL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Lint(def)
	}
}
