package jaws

import (
	"fmt"
	"sort"
	"strings"
)

// String renders a workflow back into the mini-WDL text format; Parse(def.
// String()) reproduces an equivalent definition. Useful for storing fused or
// machine-generated workflows in the central service.
func (w *WorkflowDef) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %s\n", w.Name)
	for _, t := range w.Tasks {
		fmt.Fprintf(&b, "task %s", t.Name)
		if t.Cores != 1 {
			fmt.Fprintf(&b, " cpu=%d", t.Cores)
		}
		if t.MemBytes > 0 {
			fmt.Fprintf(&b, " mem=%s", fmtBytes(t.MemBytes))
		}
		fmt.Fprintf(&b, " dur=%ss", fmtFloat(t.DurationSec))
		if t.OverheadSec > 0 {
			fmt.Fprintf(&b, " overhead=%ss", fmtFloat(t.OverheadSec))
		}
		if len(t.After) > 0 {
			deps := append([]string(nil), t.After...)
			sort.Strings(deps)
			fmt.Fprintf(&b, " after=%s", strings.Join(deps, ","))
		}
		if t.Scatter > 1 {
			fmt.Fprintf(&b, " scatter=%d", t.Scatter)
		}
		if t.Container != "" {
			fmt.Fprintf(&b, " container=%s", t.Container)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1e9 && b == float64(int64(b/1e9))*1e9:
		return fmt.Sprintf("%dG", int64(b/1e9))
	case b >= 1e6 && b == float64(int64(b/1e6))*1e6:
		return fmt.Sprintf("%dM", int64(b/1e6))
	default:
		return fmtFloat(b)
	}
}

// Equivalent reports whether two definitions describe the same workflow
// (same tasks with the same attributes, dependencies compared as sets).
func Equivalent(a, b *WorkflowDef) bool {
	if a.Name != b.Name || len(a.Tasks) != len(b.Tasks) {
		return false
	}
	for _, ta := range a.Tasks {
		tb := b.Task(ta.Name)
		if tb == nil {
			return false
		}
		if ta.Cores != tb.Cores || ta.MemBytes != tb.MemBytes ||
			!feq(ta.DurationSec, tb.DurationSec) || !feq(ta.OverheadSec, tb.OverheadSec) ||
			ta.Shards() != tb.Shards() || ta.Container != tb.Container {
			return false
		}
		da := append([]string(nil), ta.After...)
		db := append([]string(nil), tb.After...)
		sort.Strings(da)
		sort.Strings(db)
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if da[i] != db[i] {
				return false
			}
		}
	}
	return true
}

func feq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-3
}
