package jaws

import (
	"fmt"
	"testing"
	"testing/quick"

	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func TestStringRoundTrip(t *testing.T) {
	def := mustParse(t, sampleWDL)
	back, err := Parse(def.String())
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, def.String())
	}
	if !Equivalent(def, back) {
		t.Fatalf("round trip not equivalent:\n%s\nvs\n%s", def.String(), back.String())
	}
}

func TestFusedRoundTrip(t *testing.T) {
	def := mustParse(t, sampleWDL)
	fused, err := Fuse(def, []string{"filter", "align"})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(fused.String())
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(fused, back) {
		t.Fatal("fused workflow round trip not equivalent")
	}
}

// randomDef generates a random valid layered workflow definition.
func randomDef(seed int64) *WorkflowDef {
	rng := randx.New(seed)
	n := 2 + rng.Intn(8)
	w := &WorkflowDef{Name: "rand", byName: map[string]*TaskDef{}}
	for i := 0; i < n; i++ {
		t := &TaskDef{
			Name:        fmt.Sprintf("t%02d", i),
			Cores:       1 + rng.Intn(4),
			MemBytes:    float64(1+rng.Intn(8)) * 1e9,
			DurationSec: rng.Uniform(1, 1000),
			OverheadSec: rng.Uniform(0, 100),
			Container:   "docker://x@sha256:aa",
		}
		if rng.Bernoulli(0.4) {
			t.Scatter = 2 + rng.Intn(16)
		}
		if i > 0 {
			k := 1 + rng.Intn(2)
			perm := rng.Perm(i)
			for j := 0; j < k && j < i; j++ {
				t.After = append(t.After, fmt.Sprintf("t%02d", perm[j]))
			}
		}
		w.Tasks = append(w.Tasks, t)
		w.byName[t.Name] = t
	}
	return w
}

// Property: any random valid definition survives a serialize/parse round
// trip equivalently.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		def := randomDef(seed)
		if err := def.Validate(); err != nil {
			return false
		}
		back, err := Parse(def.String())
		if err != nil {
			return false
		}
		return Equivalent(def, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: fusion conserves total payload seconds (shards × dur summed over
// fused members equals the fused task's shards × dur) when all members share
// one scatter width.
func TestFusionConservesPayload(t *testing.T) {
	f := func(rawScatter uint8, rawDur1, rawDur2 uint16) bool {
		scatter := 1 + int(rawScatter)%16
		d1 := 1 + float64(rawDur1%1000)
		d2 := 1 + float64(rawDur2%1000)
		text := fmt.Sprintf(`
workflow p
task a dur=%gs overhead=10s scatter=%d
task b dur=%gs overhead=10s after=a scatter=%d
`, d1, scatter, d2, scatter)
		def, err := Parse(text)
		if err != nil {
			return false
		}
		fused, err := Fuse(def, []string{"a", "b"})
		if err != nil {
			return false
		}
		ft := fused.Task("a+b")
		want := (d1 + d2) * float64(scatter)
		got := ft.DurationSec * float64(ft.Shards())
		diff := want - got
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceStats(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng)
	cl := cluster.New(eng, "x", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 16, MemBytes: 256e9},
		Count: 2,
	})
	svc.AddSite("x", cl)
	def := mustParse(t, sampleWDL)
	if _, err := svc.Submit(def, "bob", "x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(def, "bob", "x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(def, "alice", "x", nil); err != nil {
		t.Fatal(err)
	}
	stats := svc.Stats()
	if len(stats) != 2 || stats[0].User != "alice" || stats[1].User != "bob" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[1].Submissions != 2 {
		t.Fatalf("bob submissions = %d", stats[1].Submissions)
	}
	// The site has call caching on: bob's second run is all cache hits,
	// and alice's too (same definition).
	if stats[1].CacheHits == 0 || stats[0].CacheHits == 0 {
		t.Fatalf("cache hits not aggregated: %+v", stats)
	}
	if stats[1].Shards != def.TotalShards() { // first run only
		t.Fatalf("bob shards = %d, want %d", stats[1].Shards, def.TotalShards())
	}
}
