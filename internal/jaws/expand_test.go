package jaws

import (
	"fmt"
	"runtime"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

const expandWDL = `
workflow metasweep
task prep cpu=2 mem=4G dur=120s overhead=30s
task align cpu=4 mem=8G dur=300s overhead=60s scatter=24 after=prep
task filter cpu=2 mem=2G dur=90s overhead=30s scatter=24 after=align
task stats cpu=1 mem=1G dur=60s after=prep
task merge cpu=8 mem=16G dur=240s overhead=60s after=filter,stats
`

// Every emission of the expander must carry the eager insertion index of the
// identical task Compile materializes — same ID, resources, duration — and
// cover each index exactly once.
func TestScatterExpanderMatchesCompile(t *testing.T) {
	def, err := Parse(expandWDL)
	if err != nil {
		t.Fatal(err)
	}
	w, err := def.Compile()
	if err != nil {
		t.Fatal(err)
	}
	x, err := def.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != w.Name || x.Total() != w.Len() {
		t.Fatalf("Name/Total: %q/%d, want %q/%d", x.Name(), x.Total(), w.Name, w.Len())
	}
	want := w.Tasks()
	seen := make([]bool, len(want))
	var frontier []dag.TaskID
	emitted := 0
	for {
		for {
			task, idx, ok := x.Next()
			if !ok {
				break
			}
			if idx < 0 || idx >= len(want) || seen[idx] {
				t.Fatalf("emission %d: bad or repeated index %d", emitted, idx)
			}
			seen[idx] = true
			ref := want[idx]
			if task.ID != ref.ID || task.Name != ref.Name || task.Cores != ref.Cores ||
				task.MemBytes != ref.MemBytes || task.NominalDur != ref.NominalDur {
				t.Fatalf("index %d mismatch:\n got  %+v\n want %+v", idx, task, ref)
			}
			frontier = append(frontier, task.ID)
			emitted++
			x.Retire(task)
		}
		if len(frontier) == 0 {
			break
		}
		x.TaskDone(frontier[0])
		frontier = frontier[1:]
	}
	if emitted != len(want) {
		t.Fatalf("emitted %d tasks, want %d", emitted, len(want))
	}
}

func expandTestCluster(nodes, cores int) (*sim.Engine, *rm.TaskManager) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "site", cluster.Spec{
		Type:  cluster.NodeType{Name: "node", Cores: cores, MemBytes: 64e9},
		Count: nodes,
	})
	return eng, rm.NewTaskManager(cl, nil)
}

// Streaming execution through StreamRunner must be event-for-event identical
// to eager execution through MakespanRunner: same makespan, same utilization,
// same failure accounting — fault-free and with injected failures (one
// recovered by retry, one terminal with cascade skips).
func TestScatterExpanderEagerEquivalence(t *testing.T) {
	for _, faulty := range []bool{false, true} {
		name := "fault-free"
		if faulty {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			def, err := Parse(expandWDL)
			if err != nil {
				t.Fatal(err)
			}
			w, err := def.Compile()
			if err != nil {
				t.Fatal(err)
			}
			retry := fault.DefaultRetryPolicy()

			// Fault plan keyed by eager insertion index: task 3 retries once
			// and recovers; task 10 (an align shard) exhausts the budget and
			// cascade-skips its dependents.
			plan := map[int]int{3: 1, 10: retry.MaxAttempts + 1}

			_, mgrE := expandTestCluster(16, 16)
			eager := &rm.MakespanRunner{
				Manager:    mgrE,
				Workflow:   w,
				WorkflowID: w.Name,
			}
			if faulty {
				fa := map[dag.TaskID]int{}
				for i, task := range w.Tasks() {
					if n := plan[i]; n > 0 {
						fa[task.ID] = n
					}
				}
				r := retry
				eager.Retry = &r
				eager.RetryRNG = randx.New(7)
				eager.Breaker = r.NewBreaker()
				eager.FailAttempts = fa
			}
			msE := eager.Run()

			x, err := def.Expand()
			if err != nil {
				t.Fatal(err)
			}
			_, mgrS := expandTestCluster(16, 16)
			stream := &rm.StreamRunner{
				Manager:    mgrS,
				Source:     x,
				WorkflowID: w.Name,
			}
			if faulty {
				r := retry
				stream.Retry = &r
				stream.RetryRNG = randx.New(7)
				stream.Breaker = r.NewBreaker()
				stream.FailPlan = func(i int) int { return plan[i] }
			}
			msS := stream.Run()

			if msS != msE {
				t.Fatalf("makespan: streaming %v != eager %v", msS, msE)
			}
			utE := mgrE.Cluster().Utilization(0, msE)
			utS := mgrS.Cluster().Utilization(0, msS)
			if utS != utE {
				t.Fatalf("utilization: streaming %v != eager %v", utS, utE)
			}
			if mgrS.Completed() != mgrE.Completed() || mgrS.Failed() != mgrE.Failed() {
				t.Fatalf("manager counts: streaming %d/%d != eager %d/%d",
					mgrS.Completed(), mgrS.Failed(), mgrE.Completed(), mgrE.Failed())
			}
			if stream.Stats() != eager.Stats() {
				t.Fatalf("run stats:\n streaming %+v\n eager     %+v", stream.Stats(), eager.Stats())
			}
		})
	}
}

// Def-granular skip accounting: failing one shard writes off every shard of
// every transitively dependent def, exactly once.
func TestScatterExpanderFailureSkips(t *testing.T) {
	def, err := Parse(expandWDL)
	if err != nil {
		t.Fatal(err)
	}
	x, err := def.Expand()
	if err != nil {
		t.Fatal(err)
	}
	prep, _, ok := x.Next()
	if !ok || prep.Name != "prep" {
		t.Fatalf("first emission: %v", prep)
	}
	x.TaskDone(prep.ID)
	shard, _, ok := x.Next()
	if !ok || shard.Name != "align" {
		t.Fatalf("second emission: %v", shard)
	}
	// filter (24) + merge (1) are downstream of align; stats is not.
	if n := x.TaskFailed(shard.ID); n != 25 {
		t.Fatalf("TaskFailed skipped %d, want 25", n)
	}
	// The rest of align and stats still run; nothing downstream surfaces.
	rest := 0
	var pending []dag.TaskID
	for {
		task, _, ok := x.Next()
		if !ok {
			if len(pending) == 0 {
				break
			}
			x.TaskDone(pending[0])
			pending = pending[1:]
			continue
		}
		if task.Name != "align" && task.Name != "stats" {
			t.Fatalf("skipped def %q surfaced", task.Name)
		}
		pending = append(pending, task.ID)
		rest++
	}
	if rest != 24 { // 23 remaining align shards + stats
		t.Fatalf("emitted %d post-failure tasks, want 24", rest)
	}
	if got := x.Resident(); got != 0 {
		t.Fatalf("resident after drain: %d", got)
	}
}

// scatterDef builds the memory-ceiling workload: prep -> scatter N -> gather.
func scatterDef(t testing.TB, shards int) *ScatterExpander {
	t.Helper()
	def, err := Parse(fmt.Sprintf(`
workflow bigscatter
task prep cpu=1 dur=10s
task work cpu=1 dur=60s scatter=%d after=prep
task gather cpu=1 dur=10s after=work
`, shards))
	if err != nil {
		t.Fatal(err)
	}
	x, err := def.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// The memory-ceiling regression: a streaming scatter run's peak resident task
// records must hit a fixed constant — the admission window — independent of
// task count, and heap growth must stay bounded while the run is in flight.
// The full run drives a million tasks; -short scales down but still compares
// two sizes an order of magnitude apart.
func TestStreamingScatterMemoryCeiling(t *testing.T) {
	sizes := []int{100_000, 1_000_000}
	heapBound := uint64(512 << 20)
	if testing.Short() {
		sizes = []int{10_000, 100_000}
		heapBound = 256 << 20
	}
	const window = 2048

	peaks := make([]int, len(sizes))
	for i, n := range sizes {
		x := scatterDef(t, n)
		eng, mgr := expandTestCluster(128, 8)
		// Shard the event engine too: the ceiling must hold on the
		// extreme-scale configuration, not just the monolithic queue.
		eng.SetShards(4)
		mgr.SetLean()
		mgr.Cluster().FoldMetrics()
		var peakHeap uint64
		retired := 0
		sr := &rm.StreamRunner{
			Manager:     mgr,
			Source:      x,
			WorkflowID:  "bigscatter",
			MaxResident: window,
			Observe: func(*dag.Task, rm.Result) {
				retired++
				if retired%20_000 == 0 {
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peakHeap {
						peakHeap = ms.HeapAlloc
					}
				}
			},
		}
		sr.Run()
		if mgr.Completed() != n+2 {
			t.Fatalf("n=%d: completed %d, want %d", n, mgr.Completed(), n+2)
		}
		if sr.PeakResident() > window {
			t.Fatalf("n=%d: peak resident %d exceeds window %d", n, sr.PeakResident(), window)
		}
		if peakHeap > heapBound {
			t.Fatalf("n=%d: peak heap %dMB exceeds bound %dMB — resident state is no longer O(in-flight)",
				n, peakHeap>>20, heapBound>>20)
		}
		peaks[i] = sr.PeakResident()
		t.Logf("n=%d: peak resident %d, sampled peak heap %dMB", n, peaks[i], peakHeap>>20)
	}
	if peaks[0] != peaks[1] {
		t.Fatalf("peak resident scales with task count: %v for sizes %v", peaks, sizes)
	}
}
