package jaws

import (
	"fmt"
	"strings"
)

// Lint encodes §6's migration patterns and anti-patterns as a checker run
// against a workflow description before it is admitted to the central
// service.

// Severity grades a finding.
type Severity int

// Finding severities.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns the severity label.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	default:
		return "error"
	}
}

// Finding is one lint result.
type Finding struct {
	Rule     string
	Severity Severity
	Task     string // empty for workflow-level findings
	Message  string
}

// String renders the finding as "[severity] rule (where): message".
func (f Finding) String() string {
	where := f.Task
	if where == "" {
		where = "workflow"
	}
	return fmt.Sprintf("[%s] %s (%s): %s", f.Severity, f.Rule, where, f.Message)
}

// MinShardRuntimeSec is the §6.2 guidance: "each parallel job should have a
// minimum runtime of 30 minutes."
const MinShardRuntimeSec = 30 * 60

// Lint checks a workflow against the migration patterns (§6.1) and
// anti-patterns (§6.2).
func Lint(def *WorkflowDef) []Finding {
	var out []Finding
	if err := def.Validate(); err != nil {
		return []Finding{{Rule: "valid-dag", Severity: Error, Message: err.Error()}}
	}

	totalDur := 0.0
	for _, t := range def.Tasks {
		totalDur += t.DurationSec * float64(t.Shards())

		// Containerization pattern.
		if t.Container == "" {
			out = append(out, Finding{
				Rule: "containerization", Severity: Warning, Task: t.Name,
				Message: "task has no container image; environment will not be portable across sites",
			})
		} else if !strings.Contains(t.Container, "@sha256:") {
			// Version-control anti-pattern: "by using version sha256 on
			// container images ... it is possible to be very precise about
			// the software's version."
			out = append(out, Finding{
				Rule: "version-pinning", Severity: Warning, Task: t.Name,
				Message: "container image is not pinned by sha256 digest; runs are not reproducible",
			})
		}

		// Inappropriate parallelism: scattered shards shorter than the
		// 30-minute floor pay more in overhead than they gain.
		if t.Scatter > 1 && t.DurationSec < MinShardRuntimeSec {
			out = append(out, Finding{
				Rule: "inappropriate-parallelism", Severity: Warning, Task: t.Name,
				Message: fmt.Sprintf("scatter of %d shards with %.0fs payload each (< %d min floor); consider fusing or widening shards",
					t.Scatter, t.DurationSec, MinShardRuntimeSec/60),
			})
		}

		// Excessive overhead share: candidates for fusion.
		if t.OverheadSec > 0 && t.DurationSec > 0 && t.OverheadSec >= t.DurationSec {
			out = append(out, Finding{
				Rule: "fusion-candidate", Severity: Info, Task: t.Name,
				Message: fmt.Sprintf("per-shard overhead (%.0fs) dominates payload (%.0fs); fuse with neighbours",
					t.OverheadSec, t.DurationSec),
			})
		}
	}

	// Modularization: a single monolithic task can't recover or cache
	// partial work.
	if len(def.Tasks) == 1 && totalDur > 4*3600 {
		out = append(out, Finding{
			Rule: "modularization", Severity: Warning, Task: def.Tasks[0].Name,
			Message: "single task runs for hours; decompose so the engine can checkpoint, cache and retry pieces",
		})
	}

	// Fair-share: a very wide scatter on a shared engine needs explicit
	// parallelism constraints (the engine-side cap, §6.2).
	for _, t := range def.Tasks {
		if t.Scatter >= 100 {
			out = append(out, Finding{
				Rule: "unconstrained-parallelism", Severity: Warning, Task: t.Name,
				Message: fmt.Sprintf("scatter of %d can monopolize a shared engine; ensure per-user concurrency caps are configured", t.Scatter),
			})
		}
	}
	return out
}
