package jaws

import (
	"fmt"
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// Site is one compute facility JAWS can dispatch to (Perlmutter, Tahoma,
// Dori, Lawrencium, AWS in the paper, §6.1/§6.3).
type Site struct {
	Name   string
	Engine *Engine
}

// Service is the centralized JAWS layer: a catalog of sites, a central data
// store, and a Globus-like transfer service that stages inputs to the chosen
// site and results back (§6.3). It also aggregates performance metrics
// across every workflow executed through it — §6.1's "centralized workflow
// service presents an opportunity to collect performance metrics for all
// workflows executed across the organization".
type Service struct {
	eng      *sim.Engine
	central  *storage.Store
	transfer *storage.TransferService
	sites    map[string]*Site
	history  []*SubmitResult
}

// NewService creates the central service with its own data store.
func NewService(eng *sim.Engine) *Service {
	return &Service{
		eng:      eng,
		central:  storage.NewStore("jaws-central", 0, 0, 0),
		transfer: storage.NewTransferService(eng),
		sites:    map[string]*Site{},
	}
}

// Central returns the central data store (where users deposit inputs).
func (s *Service) Central() *storage.Store { return s.central }

// Transfer returns the staging service for link configuration.
func (s *Service) Transfer() *storage.TransferService { return s.transfer }

// AddSite registers a compute site built over the given cluster. The site's
// store and engine are created here.
func (s *Service) AddSite(name string, cl *cluster.Cluster) *Site {
	site := &Site{
		Name:   name,
		Engine: NewEngine(cl, storage.NewStore(name+"-scratch", 0, 0, 0)),
	}
	site.Engine.CallCaching = true
	s.sites[name] = site
	return site
}

// Site returns a registered site, or nil.
func (s *Service) Site(name string) *Site { return s.sites[name] }

// Sites lists site names in sorted order.
func (s *Service) Sites() []string {
	out := make([]string, 0, len(s.sites))
	for n := range s.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SubmitResult is a completed service submission.
type SubmitResult struct {
	Report *RunReport
	// StagingSec is the input+output transfer time (the Globus role).
	StagingSec float64
	Site       string
}

// Submit lints, stages inputs to the site, runs the workflow there, and
// stages results back. It drives the simulator to completion. Lint errors
// (not warnings) reject the submission — the centralized service is where
// the §6 guardrails live.
func (s *Service) Submit(def *WorkflowDef, user, siteName string, inputs []string) (*SubmitResult, error) {
	site := s.sites[siteName]
	if site == nil {
		return nil, fmt.Errorf("jaws: unknown site %q", siteName)
	}
	for _, f := range Lint(def) {
		if f.Severity == Error {
			return nil, fmt.Errorf("jaws: lint rejected %q: %s", def.Name, f)
		}
	}

	stageStart := s.eng.Now()
	staged := 0
	var stageErr error
	for _, name := range inputs {
		s.transfer.Transfer(s.central, site.Engine.Store(), name, func(err error) {
			if err != nil && stageErr == nil {
				stageErr = err
			}
			staged++
		})
	}
	s.eng.Run()
	if stageErr != nil {
		return nil, fmt.Errorf("jaws: staging to %s failed: %w", siteName, stageErr)
	}
	if staged != len(inputs) {
		return nil, fmt.Errorf("jaws: staged %d of %d inputs", staged, len(inputs))
	}
	stagingIn := float64(s.eng.Now() - stageStart)

	rep, err := site.Engine.Run(def, user)
	if err != nil {
		return nil, err
	}

	// Stage results back to the central store.
	backStart := s.eng.Now()
	outputs := site.Engine.Store().List()
	pending := 0
	for _, name := range outputs {
		if s.central.Has(name) {
			continue
		}
		pending++
		s.transfer.Transfer(site.Engine.Store(), s.central, name, func(error) { pending-- })
	}
	s.eng.Run()
	if pending != 0 {
		return nil, fmt.Errorf("jaws: %d result transfers incomplete", pending)
	}
	res := &SubmitResult{
		Report:     rep,
		StagingSec: stagingIn + float64(s.eng.Now()-backStart),
		Site:       siteName,
	}
	s.history = append(s.history, res)
	return res, nil
}

// EstimateSec predicts a submission's end-to-end time at a site: input
// staging plus a capacity-based runtime estimate (total task seconds divided
// by the site's parallel capacity for the workflow's widest shape).
func (s *Service) EstimateSec(def *WorkflowDef, siteName string, inputs []string) (float64, error) {
	site := s.sites[siteName]
	if site == nil {
		return 0, fmt.Errorf("jaws: unknown site %q", siteName)
	}
	staging := 0.0
	for _, name := range inputs {
		f, _, ok := s.central.Get(name)
		if !ok {
			return 0, fmt.Errorf("jaws: input %q not in central store", name)
		}
		staging += s.transfer.EstimateSec(s.central.Name, site.Engine.Store().Name, f.Bytes)
	}
	cl := site.Engine.Cluster()
	totalCores := cl.TotalCores()
	work, critical := 0.0, 0.0
	for _, t := range def.Tasks {
		per := t.DurationSec + t.OverheadSec
		work += per * float64(t.Shards()*t.Cores)
		critical += per
	}
	runtime := critical
	if totalCores > 0 {
		if packed := work / float64(totalCores); packed > runtime {
			runtime = packed
		}
	}
	return staging + runtime, nil
}

// SubmitAuto routes the workflow to the site with the lowest estimated
// end-to-end time — §6.3's "adopting workflow managers to route jobs and
// data across multiple sites seamlessly".
func (s *Service) SubmitAuto(def *WorkflowDef, user string, inputs []string) (*SubmitResult, error) {
	if len(s.sites) == 0 {
		return nil, fmt.Errorf("jaws: no sites registered")
	}
	bestSite := ""
	bestEst := 0.0
	for _, name := range s.Sites() {
		est, err := s.EstimateSec(def, name, inputs)
		if err != nil {
			return nil, err
		}
		if bestSite == "" || est < bestEst {
			bestSite, bestEst = name, est
		}
	}
	return s.Submit(def, user, bestSite, inputs)
}

// UserStats is the organization-wide per-user summary the central service
// accumulates.
type UserStats struct {
	User        string
	Submissions int
	Shards      int
	CacheHits   int
	TaskSeconds float64
	StagingSec  float64
	FsOps       int
}

// Stats aggregates every submission by user, sorted by user name.
func (s *Service) Stats() []UserStats {
	byUser := map[string]*UserStats{}
	for _, r := range s.history {
		u := byUser[r.Report.User]
		if u == nil {
			u = &UserStats{User: r.Report.User}
			byUser[r.Report.User] = u
		}
		u.Submissions++
		u.Shards += r.Report.ShardsExecuted
		u.CacheHits += r.Report.CacheHits
		u.TaskSeconds += r.Report.TaskSeconds
		u.StagingSec += r.StagingSec
		u.FsOps += r.Report.FilesystemOps
	}
	users := make([]string, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Strings(users)
	out := make([]UserStats, len(users))
	for i, u := range users {
		out[i] = *byUser[u]
	}
	return out
}
