package jaws

import (
	"strings"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

const sampleWDL = `
# JGI-style assembly workflow
workflow assembly
container docker://jgi/asm@sha256:deadbeef
task filter cpu=2 mem=4G dur=10m overhead=1m
task align cpu=4 mem=8G dur=30m overhead=1m after=filter scatter=24
task merge cpu=2 mem=4G dur=5m overhead=1m after=align
`

func mustParse(t *testing.T, text string) *WorkflowDef {
	t.Helper()
	def, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return def
}

func testSite(eng *sim.Engine, nodes, cores int) (*cluster.Cluster, *storage.Store) {
	cl := cluster.New(eng, "site", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: cores, MemBytes: 1e12},
		Count: nodes,
	})
	return cl, storage.NewStore("scratch", 0, 0, 0)
}

func TestParseSample(t *testing.T) {
	def := mustParse(t, sampleWDL)
	if def.Name != "assembly" || len(def.Tasks) != 3 {
		t.Fatalf("parsed %q with %d tasks", def.Name, len(def.Tasks))
	}
	align := def.Task("align")
	if align == nil || align.Cores != 4 || align.MemBytes != 8e9 {
		t.Fatalf("align = %+v", align)
	}
	if align.DurationSec != 1800 || align.OverheadSec != 60 {
		t.Fatalf("align timing = %v/%v", align.DurationSec, align.OverheadSec)
	}
	if align.Scatter != 24 || align.After[0] != "filter" {
		t.Fatalf("align shape = %+v", align)
	}
	if !strings.Contains(align.Container, "@sha256:") {
		t.Fatal("default container not inherited")
	}
	if def.TotalShards() != 1+24+1 {
		t.Fatalf("TotalShards = %d", def.TotalShards())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"task orphan dur=10s",                        // no workflow name
		"workflow w\ntask a dur=10s\ntask a dur=10s", // duplicate
		"workflow w\ntask a after=ghost",             // unknown dep
		"workflow w\ntask a bogus=1",                 // unknown attribute
		"workflow w\nfrobnicate x",                   // unknown directive
		"workflow w\ntask a after=b\ntask b after=a", // cycle
		"workflow w\ntask a dur=xyz",                 // bad duration
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) accepted", c)
		}
	}
}

func TestParseUnits(t *testing.T) {
	if v, _ := parseSeconds("2h"); v != 7200 {
		t.Fatalf("2h = %v", v)
	}
	if v, _ := parseSeconds("90s"); v != 90 {
		t.Fatalf("90s = %v", v)
	}
	if v, _ := parseBytes("4G"); v != 4e9 {
		t.Fatalf("4G = %v", v)
	}
	if v, _ := parseBytes("512M"); v != 512e6 {
		t.Fatalf("512M = %v", v)
	}
}

func TestSignatureSensitivity(t *testing.T) {
	def := mustParse(t, sampleWDL)
	align := def.Task("align")
	s1 := def.Signature(align, 0)
	if s1 != def.Signature(align, 0) {
		t.Fatal("signature not deterministic")
	}
	if s1 == def.Signature(align, 1) {
		t.Fatal("shard index not in signature")
	}
	// Upstream change invalidates downstream.
	def2 := mustParse(t, strings.Replace(sampleWDL, "task filter cpu=2 mem=4G dur=10m", "task filter cpu=2 mem=4G dur=20m", 1))
	if s1 == def2.Signature(def2.Task("align"), 0) {
		t.Fatal("upstream change did not alter downstream signature")
	}
	// Container change invalidates.
	def3 := mustParse(t, strings.Replace(sampleWDL, "sha256:deadbeef", "sha256:cafef00d", 1))
	if s1 == def3.Signature(def3.Task("align"), 0) {
		t.Fatal("container change did not alter signature")
	}
}

func TestEngineRunsChain(t *testing.T) {
	eng := sim.NewEngine()
	cl, store := testSite(eng, 8, 8)
	e := NewEngine(cl, store)
	def := mustParse(t, `
workflow lin
task a dur=100s overhead=10s
task b dur=200s overhead=10s after=a
`)
	rep, err := e.Run(def, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 320 { // 110 + 210
		t.Fatalf("makespan = %v, want 320", rep.Makespan)
	}
	if rep.ShardsExecuted != 2 || rep.FilesystemOps != 2 {
		t.Fatalf("shards=%d fsops=%d", rep.ShardsExecuted, rep.FilesystemOps)
	}
	if store.Len() != 2 {
		t.Fatalf("staged files = %d", store.Len())
	}
}

func TestEngineScatterShards(t *testing.T) {
	eng := sim.NewEngine()
	cl, store := testSite(eng, 4, 8)
	e := NewEngine(cl, store)
	def := mustParse(t, `
workflow sc
task fan dur=60s overhead=0s scatter=16
task merge dur=10s overhead=0s after=fan
`)
	rep, err := e.Run(def, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShardsExecuted != 17 {
		t.Fatalf("shards = %d, want 17", rep.ShardsExecuted)
	}
	// 16 single-core shards on 32 cores: one wave of 60 s, merge 10 s.
	if rep.Makespan != 70 {
		t.Fatalf("makespan = %v, want 70", rep.Makespan)
	}
}

func TestCallCachingSecondRunFree(t *testing.T) {
	eng := sim.NewEngine()
	cl, store := testSite(eng, 4, 8)
	e := NewEngine(cl, store)
	e.CallCaching = true
	def := mustParse(t, sampleWDL)
	r1, err := e.Run(def, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHits != 0 {
		t.Fatalf("first run cache hits = %d", r1.CacheHits)
	}
	r2, err := e.Run(def, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if r2.ShardsExecuted != 0 || r2.CacheHits != def.TotalShards() {
		t.Fatalf("second run executed %d shards with %d hits", r2.ShardsExecuted, r2.CacheHits)
	}
	if r2.Makespan != 0 {
		t.Fatalf("cached makespan = %v, want 0", r2.Makespan)
	}
}

func TestCallCachingInvalidatedByUpstreamChange(t *testing.T) {
	eng := sim.NewEngine()
	cl, store := testSite(eng, 4, 8)
	e := NewEngine(cl, store)
	e.CallCaching = true
	def := mustParse(t, sampleWDL)
	if _, err := e.Run(def, "a"); err != nil {
		t.Fatal(err)
	}
	changed := mustParse(t, strings.Replace(sampleWDL, "task filter cpu=2 mem=4G dur=10m", "task filter cpu=2 mem=4G dur=12m", 1))
	r, err := e.Run(changed, "a")
	if err != nil {
		t.Fatal(err)
	}
	if r.ShardsExecuted != changed.TotalShards() {
		t.Fatalf("upstream change reused cache: executed=%d", r.ShardsExecuted)
	}
}

func TestCallCachingDisabled(t *testing.T) {
	eng := sim.NewEngine()
	cl, store := testSite(eng, 4, 8)
	e := NewEngine(cl, store)
	def := mustParse(t, sampleWDL)
	e.Run(def, "a")
	r2, _ := e.Run(def, "a")
	if r2.CacheHits != 0 || r2.ShardsExecuted != def.TotalShards() {
		t.Fatal("caching happened while disabled")
	}
}

func TestFusionReducesShardsAndTime(t *testing.T) {
	// The §6.1 case: 4 overhead-dominated scattered tasks fused into one.
	text := `
workflow jgi
container docker://jgi/x@sha256:aa
task setup dur=60s overhead=30s
task s1 dur=25s overhead=400s after=setup scatter=24
task s2 dur=25s overhead=400s after=s1 scatter=24
task s3 dur=25s overhead=400s after=s2 scatter=24
task s4 dur=25s overhead=400s after=s3 scatter=24
task final dur=60s overhead=30s after=s4
`
	def := mustParse(t, text)
	fused, err := Fuse(def, []string{"s1", "s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	shardCut := 1 - float64(fused.TotalShards())/float64(def.TotalShards())
	if shardCut < 0.6 || shardCut > 0.8 {
		t.Fatalf("shard reduction = %.2f, want ~0.71", shardCut)
	}

	run := func(d *WorkflowDef) *RunReport {
		eng := sim.NewEngine()
		cl, store := testSite(eng, 4, 8)
		e := NewEngine(cl, store)
		rep, err := e.Run(d, "u")
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	orig := run(def)
	opt := run(fused)
	timeCut := 1 - opt.TaskSeconds/orig.TaskSeconds
	if timeCut < 0.6 || timeCut > 0.8 {
		t.Fatalf("execution-time reduction = %.2f, want ~0.70", timeCut)
	}
	if opt.Makespan >= orig.Makespan {
		t.Fatalf("fused makespan %v not better than %v", opt.Makespan, orig.Makespan)
	}
}

func TestFusionValidation(t *testing.T) {
	def := mustParse(t, sampleWDL)
	if _, err := Fuse(def, []string{"align"}); err == nil {
		t.Fatal("single-task fusion accepted")
	}
	if _, err := Fuse(def, []string{"align", "ghost"}); err == nil {
		t.Fatal("unknown member accepted")
	}
	if _, err := Fuse(def, []string{"merge", "filter"}); err == nil {
		t.Fatal("non-linear chain accepted")
	}
	// Interior consumption: c reads a, but a is interior to (a,b).
	branchy := mustParse(t, `
workflow w
task a dur=10s
task b dur=10s after=a
task c dur=10s after=a
`)
	if _, err := Fuse(branchy, []string{"a", "b"}); err == nil {
		t.Fatal("fusion hiding an externally consumed output accepted")
	}
}

func TestFusedWorkflowEquivalentStructure(t *testing.T) {
	def := mustParse(t, sampleWDL)
	fused, err := Fuse(def, []string{"filter", "align"})
	if err != nil {
		t.Fatal(err)
	}
	ft := fused.Task("filter+align")
	if ft == nil {
		t.Fatal("fused task missing")
	}
	if ft.Cores != 4 || ft.MemBytes != 8e9 {
		t.Fatalf("fused resources = %d/%v, want max of members", ft.Cores, ft.MemBytes)
	}
	if ft.DurationSec != 600+1800 {
		t.Fatalf("fused duration = %v", ft.DurationSec)
	}
	merge := fused.Task("merge")
	if len(merge.After) != 1 || merge.After[0] != "filter+align" {
		t.Fatalf("merge deps = %v", merge.After)
	}
}

func TestFairShareCapProtectsSmallUser(t *testing.T) {
	bigWDL := `
workflow big
task flood dur=300s overhead=0s scatter=64
`
	smallWDL := `
workflow small
task quick dur=60s overhead=0s
`
	run := func(cap int) (bigMs, smallMs sim.Time) {
		eng := sim.NewEngine()
		cl, store := testSite(eng, 2, 4) // 8 cores: heavily contended
		e := NewEngine(cl, store)
		e.MaxConcurrentPerUser = cap
		bigRep, bigDone, err := e.Start(mustParse(t, bigWDL), "hog")
		if err != nil {
			t.Fatal(err)
		}
		smallRep, smallDone, err := e.Start(mustParse(t, smallWDL), "alice")
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !*bigDone || !*smallDone {
			t.Fatal("workflows stalled")
		}
		return bigRep.Makespan, smallRep.Makespan
	}
	_, smallUncapped := run(0)
	_, smallCapped := run(4)
	if smallCapped >= smallUncapped {
		t.Fatalf("cap did not protect small user: capped=%v uncapped=%v", smallCapped, smallUncapped)
	}
	// Uncapped, the hog's 64 five-minute shards run first on 8 cores:
	// alice waits many waves.
	if smallUncapped < 1000 {
		t.Fatalf("uncapped small makespan = %v, expected starvation", smallUncapped)
	}
}

func TestLintFindings(t *testing.T) {
	def := mustParse(t, `
workflow bad
task nocontainer dur=10m overhead=20m scatter=200
task latest dur=10h container=docker://x:latest
`)
	findings := Lint(def)
	rules := map[string]bool{}
	for _, f := range findings {
		rules[f.Rule] = true
	}
	for _, want := range []string{"containerization", "version-pinning", "inappropriate-parallelism", "fusion-candidate", "unconstrained-parallelism"} {
		if !rules[want] {
			t.Errorf("missing lint rule %q in %v", want, findings)
		}
	}
}

func TestLintCleanWorkflowQuiet(t *testing.T) {
	def := mustParse(t, `
workflow good
container docker://jgi/x@sha256:aa
task a dur=40m overhead=1m scatter=8
task b dur=35m overhead=1m after=a
`)
	if findings := Lint(def); len(findings) != 0 {
		t.Fatalf("clean workflow produced findings: %v", findings)
	}
}

func TestLintMonolith(t *testing.T) {
	def := mustParse(t, `
workflow mono
container docker://x@sha256:aa
task everything dur=10h overhead=1m
`)
	found := false
	for _, f := range Lint(def) {
		if f.Rule == "modularization" {
			found = true
		}
	}
	if !found {
		t.Fatal("monolith not flagged")
	}
}

func TestServiceMultiSite(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng)
	clA, _ := testSite(eng, 4, 8)
	svc.AddSite("perlmutter", clA)
	clB := cluster.New(eng, "aws", cluster.Spec{
		Type:  cluster.NodeType{Name: "vm", Cores: 8, MemBytes: 64e9},
		Count: 4,
	})
	svc.AddSite("aws", clB)
	if got := svc.Sites(); len(got) != 2 || got[0] != "aws" {
		t.Fatalf("sites = %v", got)
	}

	svc.Central().Put(storage.File{Name: "reads.fastq", Bytes: 5e9})
	svc.Transfer().SetLink("jaws-central", "perlmutter-scratch", storage.Link{BandwidthBps: 1e9, LatencySec: 2})

	def := mustParse(t, sampleWDL)
	res, err := svc.Submit(def, "alice", "perlmutter", []string{"reads.fastq"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ShardsExecuted != def.TotalShards() {
		t.Fatalf("executed %d shards", res.Report.ShardsExecuted)
	}
	if res.StagingSec < 7 { // 2s latency + 5e9/1e9
		t.Fatalf("staging = %v, want >= 7s", res.StagingSec)
	}
	// Results landed centrally.
	if svc.Central().Len() < 2 {
		t.Fatalf("central results = %d", svc.Central().Len())
	}
}

func TestServiceErrors(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng)
	cl, _ := testSite(eng, 2, 4)
	svc.AddSite("x", cl)
	def := mustParse(t, sampleWDL)
	if _, err := svc.Submit(def, "u", "nowhere", nil); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := svc.Submit(def, "u", "x", []string{"missing-input"}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestEngineRecoversFromNodeFailure(t *testing.T) {
	eng := sim.NewEngine()
	cl, store := testSite(eng, 2, 4)
	e := NewEngine(cl, store)
	def := mustParse(t, `
workflow w
task long dur=500s overhead=0s
`)
	eng.At(100, func() {
		// Fail whichever node runs the task.
		for _, n := range cl.Nodes() {
			if n.FreeCores() < n.Type.Cores {
				cl.FailNode(n)
				return
			}
		}
	})
	rep, err := e.Run(def, "u")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 600 { // 100 wasted + 500 rerun
		t.Fatalf("makespan = %v, want 600", rep.Makespan)
	}
}

func TestLintAndSeverityStrings(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" {
		t.Fatal("severity strings")
	}
	f := Finding{Rule: "r", Severity: Warning, Task: "", Message: "m"}
	if got := f.String(); got != "[warning] r (workflow): m" {
		t.Fatalf("finding string = %q", got)
	}
}

func TestServiceSiteAccessor(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng)
	cl, _ := testSite(eng, 1, 4)
	s := svc.AddSite("x", cl)
	if svc.Site("x") != s || svc.Site("nope") != nil {
		t.Fatal("Site accessor")
	}
}
