// Package jaws implements a JAWS-like centralized workflow service (§6): a
// mini workflow description language (standing in for WDL), a Cromwell-like
// engine with scatter shards, call caching and per-user fair-share limits, a
// multi-site dispatch layer with Globus-like staging, a task-fusion
// optimizer, and a migration linter encoding the paper's patterns and
// anti-patterns.
package jaws

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TaskDef is one task in a workflow description.
type TaskDef struct {
	Name     string
	Cores    int
	MemBytes float64
	// DurationSec is the per-shard payload runtime on the reference
	// machine.
	DurationSec float64
	// OverheadSec is the fixed per-execution cost: container start, input
	// localization, filesystem staging. This is what task fusion
	// eliminates (§6.1) and what makes over-sharding expensive (§6.2).
	OverheadSec float64
	// Scatter > 1 expands the task into that many parallel shards
	// (Cromwell's WDL scatter).
	Scatter int
	// After lists tasks whose outputs this task consumes.
	After []string
	// Container is the image reference; pinned digests ("@sha256:...")
	// satisfy the version-control pattern.
	Container string
}

// Shards returns the execution fan-out (>= 1).
func (t *TaskDef) Shards() int {
	if t.Scatter > 1 {
		return t.Scatter
	}
	return 1
}

// WorkflowDef is a parsed workflow description.
type WorkflowDef struct {
	Name  string
	Tasks []*TaskDef

	byName map[string]*TaskDef
}

// Task returns a task by name, or nil.
func (w *WorkflowDef) Task(name string) *TaskDef { return w.byName[name] }

// TotalShards returns the total execution count of one uncached run.
func (w *WorkflowDef) TotalShards() int {
	n := 0
	for _, t := range w.Tasks {
		n += t.Shards()
	}
	return n
}

// Validate checks name uniqueness, dependency existence and acyclicity.
func (w *WorkflowDef) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("jaws: workflow without a name")
	}
	seen := map[string]bool{}
	for _, t := range w.Tasks {
		if t.Name == "" {
			return fmt.Errorf("jaws: task without a name in %q", w.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("jaws: duplicate task %q", t.Name)
		}
		seen[t.Name] = true
		// "/" is the shard-ID separator: a task literally named "x/shard0001"
		// would collide with shard 1 of a scattered task "x" at compile time.
		if strings.Contains(t.Name, "/") {
			return fmt.Errorf("jaws: task name %q contains %q (reserved for shard IDs)", t.Name, "/")
		}
		if t.DurationSec < 0 || t.OverheadSec < 0 {
			return fmt.Errorf("jaws: task %q has negative timing", t.Name)
		}
	}
	for _, t := range w.Tasks {
		for _, d := range t.After {
			if !seen[d] {
				return fmt.Errorf("jaws: task %q depends on unknown task %q", t.Name, d)
			}
		}
	}
	// Cycle check via Kahn.
	indeg := map[string]int{}
	for _, t := range w.Tasks {
		indeg[t.Name] = len(t.After)
	}
	children := map[string][]string{}
	for _, t := range w.Tasks {
		for _, d := range t.After {
			children[d] = append(children[d], t.Name)
		}
	}
	var ready []string
	for _, t := range w.Tasks {
		if indeg[t.Name] == 0 {
			ready = append(ready, t.Name)
		}
	}
	done := 0
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		done++
		for _, c := range children[n] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if done != len(w.Tasks) {
		return fmt.Errorf("jaws: workflow %q contains a cycle", w.Name)
	}
	return nil
}

// Children returns tasks that depend on name.
func (w *WorkflowDef) Children(name string) []*TaskDef {
	var out []*TaskDef
	for _, t := range w.Tasks {
		for _, d := range t.After {
			if d == name {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// Parse reads the mini-WDL text format:
//
//	workflow <name>
//	container <default-image>            # optional
//	task <name> cpu=2 mem=4G dur=300s overhead=60s [after=a,b] [scatter=24] [container=img]
//
// Lines starting with # are comments. Durations accept s/m/h suffixes; memory
// accepts K/M/G suffixes.
func Parse(text string) (*WorkflowDef, error) {
	w := &WorkflowDef{byName: map[string]*TaskDef{}}
	defaultContainer := ""
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "workflow":
			if len(fields) != 2 {
				return nil, fmt.Errorf("jaws: line %d: workflow needs a name", lineNo+1)
			}
			w.Name = fields[1]
		case "container":
			if len(fields) != 2 {
				return nil, fmt.Errorf("jaws: line %d: container needs an image", lineNo+1)
			}
			defaultContainer = fields[1]
		case "task":
			if len(fields) < 2 {
				return nil, fmt.Errorf("jaws: line %d: task needs a name", lineNo+1)
			}
			t := &TaskDef{Name: fields[1], Cores: 1, Container: defaultContainer}
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("jaws: line %d: malformed attribute %q", lineNo+1, kv)
				}
				var err error
				switch k {
				case "cpu":
					t.Cores, err = strconv.Atoi(v)
				case "mem":
					t.MemBytes, err = parseBytes(v)
				case "dur":
					t.DurationSec, err = parseSeconds(v)
				case "overhead":
					t.OverheadSec, err = parseSeconds(v)
				case "scatter":
					t.Scatter, err = strconv.Atoi(v)
				case "after":
					t.After = strings.Split(v, ",")
				case "container":
					t.Container = v
				default:
					err = fmt.Errorf("unknown attribute %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("jaws: line %d: %s: %v", lineNo+1, kv, err)
				}
			}
			w.Tasks = append(w.Tasks, t)
			w.byName[t.Name] = t
		default:
			return nil, fmt.Errorf("jaws: line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

func parseSeconds(v string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(v, "h"):
		mult, v = 3600, strings.TrimSuffix(v, "h")
	case strings.HasSuffix(v, "m"):
		mult, v = 60, strings.TrimSuffix(v, "m")
	case strings.HasSuffix(v, "s"):
		v = strings.TrimSuffix(v, "s")
	}
	f, err := strconv.ParseFloat(v, 64)
	return f * mult, err
}

func parseBytes(v string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(v, "T"):
		mult, v = 1e12, strings.TrimSuffix(v, "T")
	case strings.HasSuffix(v, "G"):
		mult, v = 1e9, strings.TrimSuffix(v, "G")
	case strings.HasSuffix(v, "M"):
		mult, v = 1e6, strings.TrimSuffix(v, "M")
	case strings.HasSuffix(v, "K"):
		mult, v = 1e3, strings.TrimSuffix(v, "K")
	}
	f, err := strconv.ParseFloat(v, 64)
	return f * mult, err
}

// Signature returns the call-cache key for a shard: task identity, container
// version, shape, and its upstream signatures — so any upstream change
// invalidates downstream cache entries, as Cromwell's call caching does.
func (w *WorkflowDef) Signature(t *TaskDef, shard int) string {
	parts := []string{
		t.Name, t.Container,
		strconv.Itoa(t.Cores),
		strconv.FormatFloat(t.DurationSec, 'g', -1, 64),
		strconv.Itoa(shard),
	}
	deps := append([]string(nil), t.After...)
	sort.Strings(deps)
	for _, d := range deps {
		if dt := w.Task(d); dt != nil {
			parts = append(parts, w.Signature(dt, -1))
		}
	}
	return strings.Join(parts, "|")
}
