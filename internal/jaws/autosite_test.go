package jaws

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

func TestEstimateSecComponents(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng)
	cl, _ := testSite(eng, 4, 8) // 32 cores
	svc.AddSite("a", cl)
	svc.Central().Put(storage.File{Name: "in.dat", Bytes: 10e9})
	svc.Transfer().SetLink("jaws-central", "a-scratch", storage.Link{BandwidthBps: 1e9, LatencySec: 5})

	def := mustParse(t, `
workflow e
task t cpu=2 dur=100s overhead=10s scatter=8
`)
	est, err := svc.EstimateSec(def, "a", []string{"in.dat"})
	if err != nil {
		t.Fatal(err)
	}
	// staging 5+10 = 15; work = 110×8×2 = 1760 core-s / 32 = 55; critical
	// path = 110 → runtime = 110; total 125.
	if est != 125 {
		t.Fatalf("estimate = %v, want 125", est)
	}
	if _, err := svc.EstimateSec(def, "ghost", nil); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := svc.EstimateSec(def, "a", []string{"missing"}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestSubmitAutoPicksFasterSite(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng)

	small := cluster.New(eng, "small", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 4, MemBytes: 256e9},
		Count: 1,
	})
	big := cluster.New(eng, "big", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 32, MemBytes: 256e9},
		Count: 8,
	})
	svc.AddSite("small", small)
	svc.AddSite("big", big)

	def := mustParse(t, `
workflow wide
task fan cpu=2 dur=30m overhead=1m scatter=64
`)
	res, err := svc.SubmitAuto(def, "u", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "big" {
		t.Fatalf("routed to %s, want big for a wide scatter", res.Site)
	}
	if res.Report.ShardsExecuted != 64 {
		t.Fatalf("executed %d shards", res.Report.ShardsExecuted)
	}
}

func TestSubmitAutoConsidersStaging(t *testing.T) {
	eng := sim.NewEngine()
	svc := NewService(eng)
	// Two identical sites, but one sits behind a dreadful link.
	near, _ := testSite(eng, 2, 8)
	svc.AddSite("near", near)
	far := cluster.New(eng, "far", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, MemBytes: 1e12},
		Count: 2,
	})
	svc.AddSite("far", far)
	svc.Central().Put(storage.File{Name: "huge.dat", Bytes: 100e9})
	svc.Transfer().SetLink("jaws-central", "near-scratch", storage.Link{BandwidthBps: 10e9})
	svc.Transfer().SetLink("jaws-central", "far-scratch", storage.Link{BandwidthBps: 10e6}) // 10 MB/s

	def := mustParse(t, "workflow s\ntask t dur=60s")
	res, err := svc.SubmitAuto(def, "u", []string{"huge.dat"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Site != "near" {
		t.Fatalf("routed to %s, want near (staging dominates)", res.Site)
	}
}

func TestSubmitAutoNoSites(t *testing.T) {
	svc := NewService(sim.NewEngine())
	def := mustParse(t, "workflow s\ntask t dur=1s")
	if _, err := svc.SubmitAuto(def, "u", nil); err == nil {
		t.Fatal("no-site routing accepted")
	}
}
