package jaws

import (
	"strings"
	"testing"
)

// FuzzParseWDL throws arbitrary text at the mini-WDL parser and, when it
// parses, at Compile and Expand. The parser must never panic — malformed
// input is an error, not a crash — and anything it accepts must satisfy the
// compile/expand equivalence invariants: both succeed or both fail, with
// matching task counts.
func FuzzParseWDL(f *testing.F) {
	f.Add("workflow w\ntask a cpu=1 dur=10s\n")
	f.Add("workflow metasweep\ntask prep cpu=2 mem=4G dur=120s overhead=30s\ntask align cpu=4 mem=8G dur=300s overhead=60s scatter=24 after=prep\n")
	f.Add("workflow w\ncontainer img@sha256:abc\ntask a dur=1s\ntask b dur=2m after=a scatter=4\ntask c dur=1h after=a,b container=other\n")
	f.Add("# comment\nworkflow w\n\ntask a dur=10s\n")
	f.Add("workflow w\ntask a dur=10s after=a\n")         // self-cycle
	f.Add("workflow w\ntask a dur=10s\ntask a dur=10s\n") // duplicate
	f.Add("workflow w\ntask a/shard0001 dur=10s\n")       // reserved separator
	f.Add("workflow w\ntask a dur=-5s\n")                 // negative timing
	f.Add("workflow w\ntask a dur=10s scatter=-3\n")      // negative scatter
	f.Add("workflow w\ntask a dur=10s mem=4X\n")          // bad unit
	f.Add("task orphan dur=1s\n")                         // no workflow name
	f.Add("workflow w\ntask a cpu=0 dur=1s scatter=2\ntask b dur=1s after=a\n")
	f.Fuzz(func(t *testing.T, text string) {
		def, err := Parse(text)
		if err != nil {
			return
		}
		// Parse validated the def; every accepted name is slash-free.
		for _, td := range def.Tasks {
			if strings.Contains(td.Name, "/") {
				t.Fatalf("Parse accepted reserved name %q", td.Name)
			}
		}
		// Cap the expansion so adversarial scatter counts don't turn one
		// fuzz exec into a million-node build.
		if def.TotalShards() > 10_000 {
			return
		}
		w, cerr := def.Compile()
		x, xerr := def.Expand()
		if (cerr == nil) != (xerr == nil) {
			t.Fatalf("Compile err=%v but Expand err=%v", cerr, xerr)
		}
		if cerr != nil {
			return
		}
		if w.Len() != x.Total() || w.Len() != def.TotalShards() {
			t.Fatalf("task counts diverge: compile %d, expand %d, def %d",
				w.Len(), x.Total(), def.TotalShards())
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("compiled workflow invalid: %v", err)
		}
	})
}
