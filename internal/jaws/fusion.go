package jaws

import (
	"fmt"
	"strings"
)

// Fuse merges a linear chain of tasks into one task — the §6.1
// modularization guidance taken to its efficient extreme: "by integrating
// four separate tasks into a single task, we cut the execution time by 70%
// and decreased the number of shards by 71%."
//
// The fused task pays one per-shard overhead instead of one per constituent,
// takes the maximum resource request, sums payload durations, uses the first
// task's scatter width, and inherits the chain's external dependencies and
// dependents.
func Fuse(def *WorkflowDef, chain []string) (*WorkflowDef, error) {
	if len(chain) < 2 {
		return nil, fmt.Errorf("jaws: fusion needs at least 2 tasks")
	}
	inChain := map[string]bool{}
	var members []*TaskDef
	for _, name := range chain {
		t := def.Task(name)
		if t == nil {
			return nil, fmt.Errorf("jaws: fusion target %q not in workflow", name)
		}
		inChain[name] = true
		members = append(members, t)
	}
	// Verify the chain is linear: each member after the first depends only
	// on the previous member (plus possibly externals), and no external
	// task depends on an interior member.
	for i := 1; i < len(members); i++ {
		found := false
		for _, d := range members[i].After {
			if d == members[i-1].Name {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("jaws: %q does not follow %q; fusion chain must be linear", members[i].Name, members[i-1].Name)
		}
	}
	for _, t := range def.Tasks {
		if inChain[t.Name] {
			continue
		}
		for _, d := range t.After {
			if inChain[d] && d != members[len(members)-1].Name {
				return nil, fmt.Errorf("jaws: external task %q consumes interior member %q", t.Name, d)
			}
		}
	}

	fused := &TaskDef{
		Name:      strings.Join(chain, "+"),
		Container: members[0].Container,
		Scatter:   members[0].Scatter,
	}
	extDeps := map[string]bool{}
	for _, m := range members {
		if m.Cores > fused.Cores {
			fused.Cores = m.Cores
		}
		if m.MemBytes > fused.MemBytes {
			fused.MemBytes = m.MemBytes
		}
		fused.DurationSec += m.DurationSec
		if m.OverheadSec > fused.OverheadSec {
			fused.OverheadSec = m.OverheadSec // one overhead, the largest
		}
		for _, d := range m.After {
			if !inChain[d] {
				extDeps[d] = true
			}
		}
	}
	for d := range extDeps {
		fused.After = append(fused.After, d)
	}

	out := &WorkflowDef{Name: def.Name + "-fused", byName: map[string]*TaskDef{}}
	for _, t := range def.Tasks {
		if inChain[t.Name] {
			continue
		}
		c := *t
		// Rewire dependencies on the chain tail to the fused task.
		c.After = nil
		for _, d := range t.After {
			if inChain[d] {
				d = fused.Name
			}
			c.After = append(c.After, d)
		}
		out.Tasks = append(out.Tasks, &c)
		out.byName[c.Name] = &c
	}
	out.Tasks = append(out.Tasks, fused)
	out.byName[fused.Name] = fused
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
