package jaws

import (
	"fmt"

	"hhcw/internal/dag"
)

// Compile flattens a mini-WDL workflow description into a validated DAG,
// implementing the compose.Compiler interface — workflows written for the
// §6 centralized service run on any core environment or compose with any
// other subsystem. Scatters expand into shards; a shard of a scattered task
// depends on ALL shards of each scattered dependency (WDL's gather
// semantics), and the per-shard overhead is folded into the duration.
func (def *WorkflowDef) Compile() (*dag.Workflow, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	w := dag.New(def.Name)
	shardIDs := map[string][]dag.TaskID{}
	for _, t := range def.Tasks {
		shardIDs[t.Name] = make([]dag.TaskID, t.Shards())
		for s := 0; s < t.Shards(); s++ {
			if t.Shards() == 1 {
				shardIDs[t.Name][s] = dag.TaskID(t.Name)
			} else {
				shardIDs[t.Name][s] = dag.TaskID(fmt.Sprintf("%s/shard%04d", t.Name, s))
			}
		}
	}
	// def.Tasks is already validated acyclic; add in an order where deps
	// exist first (topological by Kahn over names).
	indeg := map[string]int{}
	children := map[string][]string{}
	for _, t := range def.Tasks {
		indeg[t.Name] = len(t.After)
		for _, d := range t.After {
			children[d] = append(children[d], t.Name)
		}
	}
	var ready []string
	for _, t := range def.Tasks {
		if indeg[t.Name] == 0 {
			ready = append(ready, t.Name)
		}
	}
	byName := map[string]*TaskDef{}
	for _, t := range def.Tasks {
		byName[t.Name] = t
	}
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		t := byName[name]
		var deps []dag.TaskID
		for _, d := range t.After {
			deps = append(deps, shardIDs[d]...)
		}
		for s := 0; s < t.Shards(); s++ {
			w.Add(&dag.Task{
				ID:         shardIDs[t.Name][s],
				Name:       t.Name,
				Cores:      t.Cores,
				MemBytes:   t.MemBytes,
				NominalDur: t.DurationSec + t.OverheadSec,
				Deps:       append([]dag.TaskID(nil), deps...),
			})
		}
		for _, c := range children[name] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
