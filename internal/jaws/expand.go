package jaws

import (
	"fmt"

	"hhcw/internal/dag"
)

// ScatterExpander streams the exact task sequence Compile would materialize,
// without ever holding more than the runnable frontier: shards come into
// existence as Next is called, and Retire recycles their Task structs once a
// runner is done with them. A million-shard scatter therefore costs O(defs +
// in-flight shards) memory instead of O(shards).
//
// The equivalence is structural, not incidental. Compile adds defs in
// Kahn-topological order and shards in index order; a shard of a scattered
// task depends on all shards of each dependency (gather semantics), so every
// shard of a def becomes ready at the same completion event, and an eager
// MakespanRunner submits def-by-def in Kahn order, shards in index order.
// The expander reproduces that order with per-def counters: a def's
// upstream count is the total shard count of its dependencies, decremented
// per completion; at zero the def enters the ready FIFO and its shards are
// emitted on demand. Expander equivalence against Compile + eager execution
// is pinned by tests over fault-free and faulty runs.
type ScatterExpander struct {
	def *WorkflowDef

	order []*TaskDef // Kahn order — identical to Compile's insertion order
	base  []int      // eager insertion index of each def's shard 0

	// upstream counts remaining dependency-shard completions per def;
	// children lists dependent def positions (with After multiplicity), in
	// ascending Kahn order — the order eager edge creation yields.
	upstream []int
	children [][]int
	skipped  []bool

	// ready is the FIFO of defs whose shards are being emitted; emitCursor
	// is the next shard index of the front def.
	ready      []int
	readyNext  int
	emitCursor int

	// inflight maps an emitted shard to its def position until its terminal
	// report arrives.
	inflight map[dag.TaskID]int

	// free recycles Task structs handed back via Retire.
	free []*dag.Task
}

// Expand returns a streaming expander over the def — the lazy counterpart of
// Compile. The workflow is validated first; the same descriptions compile
// and expand.
func (def *WorkflowDef) Expand() (*ScatterExpander, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	// Kahn order over def names, replicated verbatim from Compile so the
	// insertion indices line up.
	indeg := map[string]int{}
	childNames := map[string][]string{}
	for _, t := range def.Tasks {
		indeg[t.Name] = len(t.After)
		for _, d := range t.After {
			childNames[d] = append(childNames[d], t.Name)
		}
	}
	var readyNames []string
	for _, t := range def.Tasks {
		if indeg[t.Name] == 0 {
			readyNames = append(readyNames, t.Name)
		}
	}
	x := &ScatterExpander{
		def:      def,
		order:    make([]*TaskDef, 0, len(def.Tasks)),
		inflight: make(map[dag.TaskID]int, 64),
	}
	pos := make(map[string]int, len(def.Tasks))
	for len(readyNames) > 0 {
		name := readyNames[0]
		readyNames = readyNames[1:]
		pos[name] = len(x.order)
		x.order = append(x.order, def.Task(name))
		for _, c := range childNames[name] {
			indeg[c]--
			if indeg[c] == 0 {
				readyNames = append(readyNames, c)
			}
		}
	}
	n := len(x.order)
	x.base = make([]int, n)
	x.upstream = make([]int, n)
	x.children = make([][]int, n)
	x.skipped = make([]bool, n)
	idx := 0
	for p, t := range x.order {
		x.base[p] = idx
		idx += t.Shards()
	}
	// Iterating defs in ascending Kahn position keeps each children list
	// ascending without sorting — the same order eager edge creation yields.
	for p, t := range x.order {
		for _, d := range t.After {
			dp := pos[d]
			x.upstream[p] += x.order[dp].Shards()
			x.children[dp] = append(x.children[dp], p)
		}
		if len(t.After) == 0 {
			x.ready = append(x.ready, p)
		}
	}
	return x, nil
}

// Name implements dag.Expander.
func (x *ScatterExpander) Name() string { return x.def.Name }

// Total implements dag.Expander.
func (x *ScatterExpander) Total() int { return x.def.TotalShards() }

// Next implements dag.Expander, materializing the front def's next shard.
func (x *ScatterExpander) Next() (*dag.Task, int, bool) {
	for x.readyNext < len(x.ready) {
		p := x.ready[x.readyNext]
		d := x.order[p]
		if x.emitCursor >= d.Shards() {
			x.readyNext++
			x.emitCursor = 0
			continue
		}
		s := x.emitCursor
		x.emitCursor++
		t := x.grabTask()
		if d.Shards() == 1 {
			t.ID = dag.TaskID(d.Name)
		} else {
			t.ID = dag.TaskID(fmt.Sprintf("%s/shard%04d", d.Name, s))
		}
		t.Name = d.Name
		t.Cores = d.Cores
		t.MemBytes = d.MemBytes
		t.NominalDur = d.DurationSec + d.OverheadSec
		x.inflight[t.ID] = p
		return t, x.base[p] + s, true
	}
	x.ready = x.ready[:0]
	x.readyNext = 0
	return nil, 0, false
}

// TaskDone implements dag.Expander.
func (x *ScatterExpander) TaskDone(id dag.TaskID) {
	p, ok := x.inflight[id]
	if !ok {
		panic(fmt.Sprintf("jaws: expander %q got a terminal report for unknown shard %q", x.def.Name, id))
	}
	delete(x.inflight, id)
	for _, c := range x.children[p] {
		x.upstream[c]--
		if x.upstream[c] == 0 && !x.skipped[c] {
			x.ready = append(x.ready, c)
		}
	}
}

// TaskFailed implements dag.Expander: the def-granular transitive write-off.
// Gather semantics make it exact — every shard of a dependent def needs the
// failed shard, so whole defs are skipped, never fractions of one.
func (x *ScatterExpander) TaskFailed(id dag.TaskID) int {
	p, ok := x.inflight[id]
	if !ok {
		panic(fmt.Sprintf("jaws: expander %q got a terminal report for unknown shard %q", x.def.Name, id))
	}
	delete(x.inflight, id)
	n := 0
	var walk func(int)
	walk = func(from int) {
		for _, c := range x.children[from] {
			if x.skipped[c] {
				continue
			}
			x.skipped[c] = true
			n += x.order[c].Shards()
			walk(c)
		}
	}
	walk(p)
	return n
}

// Retire implements dag.Expander, recycling the shard's Task struct.
func (x *ScatterExpander) Retire(t *dag.Task) { x.free = append(x.free, t) }

// Resident returns how many emitted shards await their terminal report —
// the expander's own contribution to resident state is O(defs + Resident).
func (x *ScatterExpander) Resident() int { return len(x.inflight) }

func (x *ScatterExpander) grabTask() *dag.Task {
	if n := len(x.free); n > 0 {
		t := x.free[n-1]
		x.free = x.free[:n-1]
		*t = dag.Task{}
		return t
	}
	return &dag.Task{}
}
