package predict

import (
	"math"
	"testing"
	"testing/quick"

	"hhcw/internal/randx"
)

func TestMeanPredictorColdStart(t *testing.T) {
	p := NewMean()
	if _, ok := p.Predict("x", 0, 1); ok {
		t.Fatal("cold predictor claimed a prediction")
	}
}

func TestMeanPredictorNormalizesSpeed(t *testing.T) {
	p := NewMean()
	// 100s on a 2x machine = 200s reference.
	p.Observe(Observation{TaskName: "x", RuntimeSec: 100, SpeedFactor: 2})
	got, ok := p.Predict("x", 0, 1)
	if !ok || got != 200 {
		t.Fatalf("reference prediction = %v, want 200", got)
	}
	got, _ = p.Predict("x", 0, 4)
	if got != 50 {
		t.Fatalf("fast-machine prediction = %v, want 50", got)
	}
}

func TestMeanPredictorAverages(t *testing.T) {
	p := NewMean()
	p.Observe(Observation{TaskName: "x", RuntimeSec: 10, SpeedFactor: 1})
	p.Observe(Observation{TaskName: "x", RuntimeSec: 30, SpeedFactor: 1})
	got, _ := p.Predict("x", 0, 1)
	if got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
}

func TestRegressionLearnsLinear(t *testing.T) {
	p := NewRegression()
	// runtime = 5 + 2e-9 * bytes
	for _, b := range []float64{1e9, 2e9, 3e9, 4e9} {
		p.Observe(Observation{TaskName: "x", InputBytes: b, RuntimeSec: 5 + 2e-9*b, SpeedFactor: 1})
	}
	got, ok := p.Predict("x", 10e9, 1)
	if !ok || math.Abs(got-25) > 0.1 {
		t.Fatalf("regression predicted %v, want ~25", got)
	}
}

func TestRegressionIdenticalInputsFallsBackToMean(t *testing.T) {
	p := NewRegression()
	p.Observe(Observation{TaskName: "x", InputBytes: 100, RuntimeSec: 10, SpeedFactor: 1})
	p.Observe(Observation{TaskName: "x", InputBytes: 100, RuntimeSec: 20, SpeedFactor: 1})
	got, ok := p.Predict("x", 500, 1)
	if !ok || got != 15 {
		t.Fatalf("degenerate regression = %v, want mean 15", got)
	}
}

func TestRegressionNeverNegative(t *testing.T) {
	p := NewRegression()
	p.Observe(Observation{TaskName: "x", InputBytes: 100, RuntimeSec: 100, SpeedFactor: 1})
	p.Observe(Observation{TaskName: "x", InputBytes: 200, RuntimeSec: 1, SpeedFactor: 1})
	got, _ := p.Predict("x", 10000, 1)
	if got < 0 {
		t.Fatalf("negative prediction %v", got)
	}
}

func TestLotaruProfileThenPredict(t *testing.T) {
	p := NewLotaru()
	// Local profile: 1 GB in 100 s on a 0.5× (slow local) machine →
	// reference rate 2e7 B/s.
	p.Profile("salmon", 1e9, 100, 0.5)
	got, ok := p.Predict("salmon", 4e9, 1)
	if !ok || math.Abs(got-200) > 1e-6 {
		t.Fatalf("lotaru predicted %v, want 200", got)
	}
	// Faster target machine.
	got, _ = p.Predict("salmon", 4e9, 2)
	if math.Abs(got-100) > 1e-6 {
		t.Fatalf("lotaru on 2x machine = %v, want 100", got)
	}
}

func TestLotaruOnlineRefinement(t *testing.T) {
	p := NewLotaru()
	p.Profile("x", 1e6, 1, 1) // rate 1e6
	p.Observe(Observation{TaskName: "x", InputBytes: 3e6, RuntimeSec: 1, SpeedFactor: 1})
	got, _ := p.Predict("x", 2e6, 1)
	// Rate now (1e6 + 3e6)/2 = 2e6 → 1s.
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("refined prediction = %v, want 1", got)
	}
}

func TestLotaruIgnoresBadSamples(t *testing.T) {
	p := NewLotaru()
	p.Profile("x", 0, 10, 1)
	p.Observe(Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: 0})
	if _, ok := p.Predict("x", 1e6, 1); ok {
		t.Fatal("prediction from invalid samples")
	}
}

func TestMemPredictorMargin(t *testing.T) {
	p := NewMem(0.2)
	if _, ok := p.Predict("x"); ok {
		t.Fatal("cold mem predictor claimed prediction")
	}
	p.Observe(Observation{TaskName: "x", PeakMem: 100})
	p.Observe(Observation{TaskName: "x", PeakMem: 80})
	got, _ := p.Predict("x")
	if math.Abs(got-120) > 1e-9 {
		t.Fatalf("mem prediction = %v, want 120", got)
	}
}

func TestErrors(t *testing.T) {
	var e Errors
	e.Observe(90, 100)
	e.Observe(110, 100)
	if e.MAE() != 10 {
		t.Fatalf("MAE = %v, want 10", e.MAE())
	}
	if math.Abs(e.MRE()-0.1) > 1e-9 {
		t.Fatalf("MRE = %v, want 0.1", e.MRE())
	}
	var empty Errors
	if empty.MAE() != 0 || empty.MRE() != 0 {
		t.Fatal("empty Errors not zero")
	}
}

// Property: Lotaru predictions scale inversely with machine speed.
func TestLotaruSpeedScaling(t *testing.T) {
	f := func(rawBytes, rawSpeed uint16) bool {
		bytes := float64(rawBytes) + 1
		speed := float64(rawSpeed%10) + 1
		p := NewLotaru()
		p.Profile("x", 1e6, 10, 1)
		base, _ := p.Predict("x", bytes, 1)
		fast, _ := p.Predict("x", bytes, speed)
		return math.Abs(base/speed-fast) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: regression trained on exactly linear data recovers it
// (within tolerance) for in-range queries.
func TestRegressionRecoversLine(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		a := rng.Uniform(0, 50)
		b := rng.Uniform(0, 1e-6)
		p := NewRegression()
		for i := 0; i < 10; i++ {
			x := rng.Uniform(1e6, 1e9)
			p.Observe(Observation{TaskName: "t", InputBytes: x, RuntimeSec: a + b*x, SpeedFactor: 1})
		}
		x := rng.Uniform(1e6, 1e9)
		got, ok := p.Predict("t", x, 1)
		want := a + b*x
		return ok && math.Abs(got-want) < 1e-3*(want+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorNames(t *testing.T) {
	if NewMean().Name() != "mean" || NewRegression().Name() != "regression" || NewLotaru().Name() != "lotaru" {
		t.Fatal("predictor names wrong")
	}
}

func TestPredictZeroSpeedFactorDefaults(t *testing.T) {
	// A zero speed factor is rejected on Observe (it would poison the
	// reference normalization) but defaults to 1 on Predict (a query-side
	// convenience, not training data).
	p := NewMean()
	p.Observe(Observation{TaskName: "x", RuntimeSec: 10, SpeedFactor: 0}) // rejected
	if _, ok := p.Predict("x", 0, 1); ok {
		t.Fatal("zero-speed observation should not train the mean model")
	}
	p.Observe(Observation{TaskName: "x", RuntimeSec: 10, SpeedFactor: 1})
	got, ok := p.Predict("x", 0, 0)
	if !ok || got != 10 {
		t.Fatalf("zero-speed prediction = %v ok=%v", got, ok)
	}
	r := NewRegression()
	r.Observe(Observation{TaskName: "x", InputBytes: 1, RuntimeSec: 10, SpeedFactor: 0}) // rejected
	if _, ok := r.Predict("x", 1, 1); ok {
		t.Fatal("zero-speed observation should not train the regression model")
	}
	r.Observe(Observation{TaskName: "x", InputBytes: 1, RuntimeSec: 10, SpeedFactor: 1})
	if got, ok := r.Predict("x", 1, 0); !ok || got != 10 {
		t.Fatalf("regression zero-speed = %v ok=%v", got, ok)
	}
}
