// Package predict implements the task runtime and resource prediction
// methods §3.4 plans to plug into the CWSI: online per-task-name means,
// least-squares regression on input size, and a Lotaru-style predictor that
// scales locally profiled runtimes by machine speed factors to handle
// heterogeneous infrastructures and unseen (workflow, machine) pairs.
//
// All predictors are trained online from provenance observations ("as these
// metrics are constantly gathered and updated, also online learning
// approaches are applicable").
package predict

import (
	"math"
)

// Observation is one completed task execution, as recorded by the CWS
// provenance store.
type Observation struct {
	TaskName    string  // process/tool name
	InputBytes  float64 // total input size
	RuntimeSec  float64 // measured wall time
	PeakMem     float64 // measured peak RSS
	MachineName string  // node type the task ran on
	SpeedFactor float64 // that node type's speed factor (1 = reference)
}

// RuntimePredictor estimates a task's runtime on a target machine.
type RuntimePredictor interface {
	Name() string
	// Observe folds a completed execution into the model.
	Observe(Observation)
	// Predict estimates runtime in seconds for a task of the given name
	// and input size on a machine with the given speed factor. ok=false
	// means the model has no basis for a prediction (cold start).
	Predict(taskName string, inputBytes, speedFactor float64) (sec float64, ok bool)
}

// MeanPredictor predicts the historical mean runtime per task name,
// normalized to the reference machine. This is the simplest online baseline.
type MeanPredictor struct {
	sums   map[string]float64
	counts map[string]int
}

// NewMean returns an empty mean predictor.
func NewMean() *MeanPredictor {
	return &MeanPredictor{sums: map[string]float64{}, counts: map[string]int{}}
}

// Name implements RuntimePredictor.
func (p *MeanPredictor) Name() string { return "mean" }

// Observe implements RuntimePredictor. Runtimes are normalized to the
// reference machine by multiplying with the observed speed factor.
func (p *MeanPredictor) Observe(o Observation) {
	sf := o.SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	p.sums[o.TaskName] += o.RuntimeSec * sf
	p.counts[o.TaskName]++
}

// Predict implements RuntimePredictor.
func (p *MeanPredictor) Predict(taskName string, _, speedFactor float64) (float64, bool) {
	n := p.counts[taskName]
	if n == 0 {
		return 0, false
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	return p.sums[taskName] / float64(n) / speedFactor, true
}

// RegressionPredictor fits, per task name, an online simple linear
// regression runtime = a + b·inputBytes on reference-normalized runtimes —
// the "number of file inputs, input sizes" features §3.4 names.
type RegressionPredictor struct {
	models map[string]*olsModel
}

type olsModel struct {
	n                      float64
	sumX, sumY, sumXY, sXX float64
}

func (m *olsModel) observe(x, y float64) {
	m.n++
	m.sumX += x
	m.sumY += y
	m.sumXY += x * y
	m.sXX += x * x
}

func (m *olsModel) predict(x float64) (float64, bool) {
	if m.n == 0 {
		return 0, false
	}
	meanY := m.sumY / m.n
	if m.n < 2 {
		return meanY, true
	}
	den := m.n*m.sXX - m.sumX*m.sumX
	if math.Abs(den) < 1e-12 {
		return meanY, true // all inputs identical: fall back to mean
	}
	b := (m.n*m.sumXY - m.sumX*m.sumY) / den
	a := meanY - b*m.sumX/m.n
	y := a + b*x
	if y < 0 {
		y = 0
	}
	return y, true
}

// NewRegression returns an empty regression predictor.
func NewRegression() *RegressionPredictor {
	return &RegressionPredictor{models: map[string]*olsModel{}}
}

// Name implements RuntimePredictor.
func (p *RegressionPredictor) Name() string { return "regression" }

// Observe implements RuntimePredictor.
func (p *RegressionPredictor) Observe(o Observation) {
	m := p.models[o.TaskName]
	if m == nil {
		m = &olsModel{}
		p.models[o.TaskName] = m
	}
	sf := o.SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	m.observe(o.InputBytes, o.RuntimeSec*sf)
}

// Predict implements RuntimePredictor.
func (p *RegressionPredictor) Predict(taskName string, inputBytes, speedFactor float64) (float64, bool) {
	m := p.models[taskName]
	if m == nil {
		return 0, false
	}
	y, ok := m.predict(inputBytes)
	if !ok {
		return 0, false
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	return y / speedFactor, true
}

// LotaruPredictor mirrors Lotaru's idea (§3.4, [18]): profile each task once
// on a local/reference machine with downsampled inputs, derive a
// bytes-per-second processing rate, then extrapolate to full inputs on any
// machine via its speed factor. Unlike the online predictors it can predict
// *before* any cluster execution — the paper's motivation of "unknown
// workflows or workflows with a lack of historical data". Observations
// refine the rate online.
type LotaruPredictor struct {
	rates  map[string]float64 // bytes/sec on reference machine
	weight map[string]float64
}

// NewLotaru returns an empty Lotaru-style predictor.
func NewLotaru() *LotaruPredictor {
	return &LotaruPredictor{rates: map[string]float64{}, weight: map[string]float64{}}
}

// Name implements RuntimePredictor.
func (p *LotaruPredictor) Name() string { return "lotaru" }

// Profile seeds the model from a local microbenchmark: a task of the given
// name processed sampleBytes in sampleSec on a machine with speedFactor.
func (p *LotaruPredictor) Profile(taskName string, sampleBytes, sampleSec, speedFactor float64) {
	if sampleSec <= 0 || sampleBytes <= 0 {
		return
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	// Rate on the reference machine.
	p.fold(taskName, sampleBytes/(sampleSec*speedFactor), 1)
}

func (p *LotaruPredictor) fold(name string, rate, w float64) {
	total := p.weight[name] + w
	p.rates[name] = (p.rates[name]*p.weight[name] + rate*w) / total
	p.weight[name] = total
}

// Observe implements RuntimePredictor, refining the rate online.
func (p *LotaruPredictor) Observe(o Observation) {
	if o.RuntimeSec <= 0 || o.InputBytes <= 0 {
		return
	}
	sf := o.SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	p.fold(o.TaskName, o.InputBytes/(o.RuntimeSec*sf), 1)
}

// Predict implements RuntimePredictor.
func (p *LotaruPredictor) Predict(taskName string, inputBytes, speedFactor float64) (float64, bool) {
	rate, ok := p.rates[taskName]
	if !ok || rate <= 0 {
		return 0, false
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	return inputBytes / (rate * speedFactor), true
}

// MemPredictor estimates peak memory per task name as max-so-far plus a
// safety margin — the conservative policy real WMSs use to avoid OOM kills.
type MemPredictor struct {
	peak   map[string]float64
	Margin float64 // fractional head-room, e.g. 0.2 = +20 %
}

// NewMem returns a memory predictor with the given safety margin.
func NewMem(margin float64) *MemPredictor {
	return &MemPredictor{peak: map[string]float64{}, Margin: margin}
}

// Observe folds a completed execution.
func (p *MemPredictor) Observe(o Observation) {
	if o.PeakMem > p.peak[o.TaskName] {
		p.peak[o.TaskName] = o.PeakMem
	}
}

// Predict returns the padded peak, or ok=false before any observation.
func (p *MemPredictor) Predict(taskName string) (float64, bool) {
	v, ok := p.peak[taskName]
	if !ok {
		return 0, false
	}
	return v * (1 + p.Margin), true
}

// Errors quantifies predictor accuracy for the ablation benches.
type Errors struct {
	N   int
	mae float64 // sum of |err|
	mre float64 // sum of |err|/actual
}

// Observe folds one (predicted, actual) pair.
func (e *Errors) Observe(predicted, actual float64) {
	e.N++
	d := math.Abs(predicted - actual)
	e.mae += d
	if actual > 0 {
		e.mre += d / actual
	}
}

// MAE returns mean absolute error.
func (e *Errors) MAE() float64 {
	if e.N == 0 {
		return 0
	}
	return e.mae / float64(e.N)
}

// MRE returns mean relative error.
func (e *Errors) MRE() float64 {
	if e.N == 0 {
		return 0
	}
	return e.mre / float64(e.N)
}
