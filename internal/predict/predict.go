// Package predict implements the task runtime and resource prediction
// methods §3.4 plans to plug into the CWSI: online per-task-name means,
// least-squares regression on input size, and a Lotaru-style predictor that
// scales locally profiled runtimes by machine speed factors to handle
// heterogeneous infrastructures and unseen (workflow, machine) pairs.
//
// All predictors are trained online from provenance observations ("as these
// metrics are constantly gathered and updated, also online learning
// approaches are applicable").
package predict

import (
	"fmt"
	"math"
)

// Observation is one completed task execution, as recorded by the CWS
// provenance store.
type Observation struct {
	TaskName    string  // process/tool name
	InputBytes  float64 // total input size
	RuntimeSec  float64 // measured wall time
	PeakMem     float64 // measured peak RSS
	MachineName string  // node type the task ran on
	SpeedFactor float64 // that node type's speed factor (1 = reference)
}

// RuntimePredictor estimates a task's runtime on a target machine.
type RuntimePredictor interface {
	Name() string
	// Observe folds a completed execution into the model. Invalid
	// observations — non-finite or negative runtime/input size, or a
	// speed factor that is zero, negative, or non-finite — are rejected
	// rather than poisoning the model.
	Observe(Observation)
	// Predict estimates runtime in seconds for a task of the given name
	// and input size on a machine with the given speed factor. ok=false
	// means the model has no basis for a prediction (cold start).
	Predict(taskName string, inputBytes, speedFactor float64) (sec float64, ok bool)
}

// Sampler is implemented by predictors that can report how many valid
// observations have been folded for a task name. Schedulers use it to gate
// predictions on model warmth (a minimum sample count) so a barely-trained
// model never drives placement, kills, or packing decisions.
type Sampler interface {
	Samples(taskName string) int
}

// usable reports whether an observation may train a runtime model: runtime
// and input size must be finite and non-negative, the speed factor finite
// and strictly positive. (The memory predictor has its own rule — it never
// reads the speed factor.)
func usable(o Observation) bool {
	if math.IsNaN(o.RuntimeSec) || math.IsInf(o.RuntimeSec, 0) || o.RuntimeSec < 0 {
		return false
	}
	if math.IsNaN(o.InputBytes) || math.IsInf(o.InputBytes, 0) || o.InputBytes < 0 {
		return false
	}
	if math.IsNaN(o.SpeedFactor) || math.IsInf(o.SpeedFactor, 0) || o.SpeedFactor <= 0 {
		return false
	}
	return true
}

// MeanPredictor predicts the historical mean runtime per task name,
// normalized to the reference machine. This is the simplest online baseline.
type MeanPredictor struct {
	sums   map[string]float64
	counts map[string]int
}

// NewMean returns an empty mean predictor.
func NewMean() *MeanPredictor {
	return &MeanPredictor{sums: map[string]float64{}, counts: map[string]int{}}
}

// Name implements RuntimePredictor.
func (p *MeanPredictor) Name() string { return "mean" }

// Observe implements RuntimePredictor. Runtimes are normalized to the
// reference machine by multiplying with the observed speed factor.
func (p *MeanPredictor) Observe(o Observation) {
	if !usable(o) {
		return
	}
	p.sums[o.TaskName] += o.RuntimeSec * o.SpeedFactor
	p.counts[o.TaskName]++
}

// Samples implements Sampler.
func (p *MeanPredictor) Samples(taskName string) int { return p.counts[taskName] }

// Predict implements RuntimePredictor.
func (p *MeanPredictor) Predict(taskName string, _, speedFactor float64) (float64, bool) {
	n := p.counts[taskName]
	if n == 0 {
		return 0, false
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	return p.sums[taskName] / float64(n) / speedFactor, true
}

// RegressionPredictor fits, per task name, an online simple linear
// regression runtime = a + b·inputBytes on reference-normalized runtimes —
// the "number of file inputs, input sizes" features §3.4 names.
type RegressionPredictor struct {
	models map[string]*olsModel
}

type olsModel struct {
	n                      float64
	sumX, sumY, sumXY, sXX float64
}

func (m *olsModel) observe(x, y float64) {
	m.n++
	m.sumX += x
	m.sumY += y
	m.sumXY += x * y
	m.sXX += x * x
}

func (m *olsModel) predict(x float64) (float64, bool) {
	if m.n == 0 {
		return 0, false
	}
	meanY := m.sumY / m.n
	if m.n < 2 {
		return meanY, true
	}
	// den = n·Σx² − (Σx)² is mathematically ≥ 0, and 0 exactly when every
	// input size is identical. With large identical inputs (say x = 1e9,
	// n = 3) the true zero drowns in float64 rounding of ~1e18-magnitude
	// sums, so an absolute threshold passes garbage through to the slope.
	// Compare against the terms' own magnitude instead: degenerate variance
	// is den vanishing *relative to* n·Σx².
	den := m.n*m.sXX - m.sumX*m.sumX
	if den <= 1e-9*m.n*m.sXX {
		return meanY, true // all inputs (effectively) identical: fall back to mean
	}
	b := (m.n*m.sumXY - m.sumX*m.sumY) / den
	a := meanY - b*m.sumX/m.n
	y := a + b*x
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return meanY, true
	}
	if y < 0 {
		y = 0
	}
	return y, true
}

// NewRegression returns an empty regression predictor.
func NewRegression() *RegressionPredictor {
	return &RegressionPredictor{models: map[string]*olsModel{}}
}

// Name implements RuntimePredictor.
func (p *RegressionPredictor) Name() string { return "regression" }

// Observe implements RuntimePredictor.
func (p *RegressionPredictor) Observe(o Observation) {
	if !usable(o) {
		return
	}
	m := p.models[o.TaskName]
	if m == nil {
		m = &olsModel{}
		p.models[o.TaskName] = m
	}
	m.observe(o.InputBytes, o.RuntimeSec*o.SpeedFactor)
}

// Samples implements Sampler.
func (p *RegressionPredictor) Samples(taskName string) int {
	if m := p.models[taskName]; m != nil {
		return int(m.n)
	}
	return 0
}

// Predict implements RuntimePredictor.
func (p *RegressionPredictor) Predict(taskName string, inputBytes, speedFactor float64) (float64, bool) {
	m := p.models[taskName]
	if m == nil {
		return 0, false
	}
	y, ok := m.predict(inputBytes)
	if !ok {
		return 0, false
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	return y / speedFactor, true
}

// LotaruPredictor mirrors Lotaru's idea (§3.4, [18]): profile each task once
// on a local/reference machine with downsampled inputs, derive a
// bytes-per-second processing rate, then extrapolate to full inputs on any
// machine via its speed factor. Unlike the online predictors it can predict
// *before* any cluster execution — the paper's motivation of "unknown
// workflows or workflows with a lack of historical data". Observations
// refine the rate online.
type LotaruPredictor struct {
	rates  map[string]float64 // bytes/sec on reference machine
	weight map[string]float64
}

// NewLotaru returns an empty Lotaru-style predictor.
func NewLotaru() *LotaruPredictor {
	return &LotaruPredictor{rates: map[string]float64{}, weight: map[string]float64{}}
}

// Name implements RuntimePredictor.
func (p *LotaruPredictor) Name() string { return "lotaru" }

// Profile seeds the model from a local microbenchmark: a task of the given
// name processed sampleBytes in sampleSec on a machine with speedFactor.
func (p *LotaruPredictor) Profile(taskName string, sampleBytes, sampleSec, speedFactor float64) {
	if sampleSec <= 0 || sampleBytes <= 0 {
		return
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	// Rate on the reference machine.
	p.fold(taskName, sampleBytes/(sampleSec*speedFactor), 1)
}

func (p *LotaruPredictor) fold(name string, rate, w float64) {
	total := p.weight[name] + w
	p.rates[name] = (p.rates[name]*p.weight[name] + rate*w) / total
	p.weight[name] = total
}

// Observe implements RuntimePredictor, refining the rate online. A rate
// needs strictly positive runtime and input size on top of the shared
// validity rule.
func (p *LotaruPredictor) Observe(o Observation) {
	if !usable(o) || o.RuntimeSec <= 0 || o.InputBytes <= 0 {
		return
	}
	p.fold(o.TaskName, o.InputBytes/(o.RuntimeSec*o.SpeedFactor), 1)
}

// Samples implements Sampler: the accumulated model weight, counting both
// Profile seeds and online observations (each folds with weight 1).
func (p *LotaruPredictor) Samples(taskName string) int { return int(p.weight[taskName]) }

// Predict implements RuntimePredictor.
func (p *LotaruPredictor) Predict(taskName string, inputBytes, speedFactor float64) (float64, bool) {
	rate, ok := p.rates[taskName]
	if !ok || rate <= 0 {
		return 0, false
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	return inputBytes / (rate * speedFactor), true
}

// MemPredictor estimates peak memory per task name as max-so-far plus a
// safety margin — the conservative policy real WMSs use to avoid OOM kills.
type MemPredictor struct {
	peak   map[string]float64
	counts map[string]int
	Margin float64 // fractional head-room, e.g. 0.2 = +20 %
}

// NewMem returns a memory predictor with the given safety margin.
func NewMem(margin float64) *MemPredictor {
	return &MemPredictor{peak: map[string]float64{}, counts: map[string]int{}, Margin: margin}
}

// Observe folds a completed execution. Only the peak-memory field is read
// (memory does not scale with machine speed, so a zero SpeedFactor is fine
// here); non-finite or non-positive peaks are rejected.
func (p *MemPredictor) Observe(o Observation) {
	if math.IsNaN(o.PeakMem) || math.IsInf(o.PeakMem, 0) || o.PeakMem <= 0 {
		return
	}
	p.counts[o.TaskName]++
	if o.PeakMem > p.peak[o.TaskName] {
		p.peak[o.TaskName] = o.PeakMem
	}
}

// Samples implements Sampler.
func (p *MemPredictor) Samples(taskName string) int { return p.counts[taskName] }

// Predict returns the padded peak, or ok=false before any observation.
func (p *MemPredictor) Predict(taskName string) (float64, bool) {
	v, ok := p.peak[taskName]
	if !ok {
		return 0, false
	}
	return v * (1 + p.Margin), true
}

// ByName maps a CLI/config predictor name to a constructor. "off" and ""
// select no predictor (nil constructor, nil error) — the caller's signal to
// keep the historical unpredicted path bit-for-bit.
func ByName(name string) (func() RuntimePredictor, error) {
	switch name {
	case "", "off":
		return nil, nil
	case "mean":
		return func() RuntimePredictor { return NewMean() }, nil
	case "regression":
		return func() RuntimePredictor { return NewRegression() }, nil
	case "lotaru":
		return func() RuntimePredictor { return NewLotaru() }, nil
	default:
		return nil, fmt.Errorf("predict: unknown predictor %q (want off, mean, regression, or lotaru)", name)
	}
}

// Errors quantifies predictor accuracy for the ablation benches.
type Errors struct {
	N   int
	mae float64 // sum of |err|
	mre float64 // sum of |err|/actual
}

// Observe folds one (predicted, actual) pair.
func (e *Errors) Observe(predicted, actual float64) {
	e.N++
	d := math.Abs(predicted - actual)
	e.mae += d
	if actual > 0 {
		e.mre += d / actual
	}
}

// MAE returns mean absolute error.
func (e *Errors) MAE() float64 {
	if e.N == 0 {
		return 0
	}
	return e.mae / float64(e.N)
}

// MRE returns mean relative error.
func (e *Errors) MRE() float64 {
	if e.N == 0 {
		return 0
	}
	return e.mre / float64(e.N)
}
