package predict

import (
	"math"
	"testing"
)

// TestObserveRejectsInvalid drives every runtime predictor through the same
// table of poisonous observations: each must leave the model cold (no
// prediction basis) instead of folding NaN/Inf/zero-speed garbage.
func TestObserveRejectsInvalid(t *testing.T) {
	bad := []struct {
		name string
		obs  Observation
	}{
		{"nan-runtime", Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: math.NaN(), SpeedFactor: 1}},
		{"inf-runtime", Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: math.Inf(1), SpeedFactor: 1}},
		{"neg-runtime", Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: -5, SpeedFactor: 1}},
		{"zero-speed", Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: 10, SpeedFactor: 0}},
		{"neg-speed", Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: 10, SpeedFactor: -2}},
		{"nan-speed", Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: 10, SpeedFactor: math.NaN()}},
		{"inf-speed", Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: 10, SpeedFactor: math.Inf(1)}},
		{"nan-input", Observation{TaskName: "x", InputBytes: math.NaN(), RuntimeSec: 10, SpeedFactor: 1}},
		{"inf-input", Observation{TaskName: "x", InputBytes: math.Inf(1), RuntimeSec: 10, SpeedFactor: 1}},
		{"neg-input", Observation{TaskName: "x", InputBytes: -1, RuntimeSec: 10, SpeedFactor: 1}},
	}
	predictors := []struct {
		name string
		make func() RuntimePredictor
	}{
		{"mean", func() RuntimePredictor { return NewMean() }},
		{"regression", func() RuntimePredictor { return NewRegression() }},
		{"lotaru", func() RuntimePredictor { return NewLotaru() }},
	}
	for _, pc := range predictors {
		for _, tc := range bad {
			p := pc.make()
			p.Observe(tc.obs)
			if _, ok := p.Predict("x", 1e6, 1); ok {
				t.Errorf("%s: %s observation trained the model", pc.name, tc.name)
			}
			if s, isSampler := p.(Sampler); isSampler && s.Samples("x") != 0 {
				t.Errorf("%s: %s observation counted as a sample", pc.name, tc.name)
			}
		}
	}
}

// TestObserveRejectionPreservesModel checks a trained model survives a burst
// of invalid observations bit-for-bit.
func TestObserveRejectionPreservesModel(t *testing.T) {
	for _, pc := range []RuntimePredictor{NewMean(), NewRegression(), NewLotaru()} {
		pc.Observe(Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: 10, SpeedFactor: 1})
		pc.Observe(Observation{TaskName: "x", InputBytes: 2e6, RuntimeSec: 20, SpeedFactor: 1})
		before, ok := pc.Predict("x", 1.5e6, 1)
		if !ok {
			t.Fatalf("%s: model cold after two valid observations", pc.Name())
		}
		pc.Observe(Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: math.NaN(), SpeedFactor: 1})
		pc.Observe(Observation{TaskName: "x", InputBytes: 1e6, RuntimeSec: 10, SpeedFactor: math.Inf(1)})
		after, ok := pc.Predict("x", 1.5e6, 1)
		if !ok || after != before {
			t.Fatalf("%s: invalid observations perturbed the model: %v -> %v", pc.Name(), before, after)
		}
	}
}

// TestRegressionZeroVarianceLargeInputs is the float-degeneracy regression:
// identical large input sizes make n·Σx² − (Σx)² round to a small nonzero
// value that an absolute epsilon misses, producing a garbage slope. The
// predictor must fall back to the per-name mean.
func TestRegressionZeroVarianceLargeInputs(t *testing.T) {
	p := NewRegression()
	for i := 0; i < 3; i++ {
		p.Observe(Observation{TaskName: "x", InputBytes: 1e9, RuntimeSec: 100, SpeedFactor: 1})
	}
	for _, x := range []float64{0, 1e9, 5e9} {
		got, ok := p.Predict("x", x, 1)
		if !ok {
			t.Fatalf("no prediction at x=%g", x)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) || math.Abs(got-100) > 1e-6 {
			t.Fatalf("zero-variance prediction at x=%g: got %v, want mean 100", x, got)
		}
	}
}

// TestMemPredictorRejectsInvalid: the memory model reads only PeakMem (a
// zero SpeedFactor is deliberately fine — provenance feeds it that way) and
// rejects non-finite or non-positive peaks.
func TestMemPredictorRejectsInvalid(t *testing.T) {
	p := NewMem(0.2)
	for _, peak := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -4e9} {
		p.Observe(Observation{TaskName: "x", PeakMem: peak})
	}
	if _, ok := p.Predict("x"); ok {
		t.Fatal("invalid peaks trained the memory model")
	}
	if p.Samples("x") != 0 {
		t.Fatal("invalid peaks counted as samples")
	}
	p.Observe(Observation{TaskName: "x", PeakMem: 4e9}) // SpeedFactor zero: still valid
	got, ok := p.Predict("x")
	if !ok || math.Abs(got-4.8e9) > 1 {
		t.Fatalf("mem prediction = %v ok=%v, want 4.8e9", got, ok)
	}
	if p.Samples("x") != 1 {
		t.Fatalf("samples = %d, want 1", p.Samples("x"))
	}
}

// TestSamplesCounting pins the Sampler contract the schedulers' warmth gate
// relies on: valid observations count, per name.
func TestSamplesCounting(t *testing.T) {
	for _, pc := range []RuntimePredictor{NewMean(), NewRegression(), NewLotaru()} {
		s := pc.(Sampler)
		for i := 1; i <= 3; i++ {
			pc.Observe(Observation{TaskName: "a", InputBytes: float64(i) * 1e6, RuntimeSec: float64(10 * i), SpeedFactor: 1})
			if s.Samples("a") != i {
				t.Fatalf("%s: samples(a) = %d after %d observations", pc.Name(), s.Samples("a"), i)
			}
		}
		if s.Samples("b") != 0 {
			t.Fatalf("%s: unseen name has samples", pc.Name())
		}
	}
	// Lotaru counts Profile seeds too — it can be warm before any cluster
	// execution, which is its whole point.
	lp := NewLotaru()
	lp.Profile("a", 1e6, 10, 1)
	if lp.Samples("a") != 1 {
		t.Fatalf("lotaru profile seed not counted: %d", lp.Samples("a"))
	}
}

// TestByName pins the CLI predictor-name mapping.
func TestByName(t *testing.T) {
	for _, name := range []string{"", "off"} {
		ctor, err := ByName(name)
		if err != nil || ctor != nil {
			t.Fatalf("ByName(%q): ctor nil=%v err=%v; want nil ctor, nil err", name, ctor == nil, err)
		}
	}
	for _, name := range []string{"mean", "regression", "lotaru"} {
		ctor, err := ByName(name)
		if err != nil || ctor == nil {
			t.Fatalf("ByName(%q) failed: %v", name, err)
		}
		if got := ctor().Name(); got != name {
			t.Fatalf("ByName(%q) built predictor %q", name, got)
		}
	}
	if _, err := ByName("oracle"); err == nil {
		t.Fatal("unknown predictor name accepted")
	}
}
