package randx

import "testing"

func TestIntnAndInt63(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if s.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(4)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(5)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestNormalStats(t *testing.T) {
	s := New(6)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.Normal(10, 2)
	}
	mean := sum / float64(n)
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Normal mean = %v", mean)
	}
}
