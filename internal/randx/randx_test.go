package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(7)
	c1 := a.Fork()
	c2 := a.Fork()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("forked sources produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(2)
	for i := 0; i < 1000; i++ {
		v := s.TruncNormal(5, 10, 0, 6)
		if v < 0 || v > 6 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestLogNormalMeanCV(t *testing.T) {
	s := New(3)
	const mean, cv = 100.0, 0.3
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		v := s.LogNormalMeanCV(mean, cv)
		if v <= 0 {
			t.Fatalf("lognormal sample <= 0: %v", v)
		}
		sum += v
	}
	got := sum / float64(n)
	if math.Abs(got-mean)/mean > 0.05 {
		t.Fatalf("empirical mean %v, want ~%v", got, mean)
	}
}

func TestLogNormalMeanCVDegenerate(t *testing.T) {
	s := New(4)
	if v := s.LogNormalMeanCV(0, 0.5); v != 0 {
		t.Fatalf("mean 0 should give 0, got %v", v)
	}
	if v := s.LogNormalMeanCV(42, 0); v != 42 {
		t.Fatalf("cv 0 should give mean, got %v", v)
	}
}

func TestPickWeighted(t *testing.T) {
	s := New(5)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[s.Pick([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weighted pick ordering wrong: %v", counts)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	New(6).Pick([]float64{0, 0})
}

func TestZipfSkew(t *testing.T) {
	s := New(7)
	z := NewZipf(10, 1.2)
	counts := make([]int, 11)
	for i := 0; i < 20000; i++ {
		v := z.Sample(s)
		if v < 1 || v > 10 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("zipf not skewed: first=%d last=%d", counts[1], counts[10])
	}
}

func TestZipfUniformAlphaZero(t *testing.T) {
	s := New(8)
	z := NewZipf(4, 0)
	counts := make([]int, 5)
	for i := 0; i < 40000; i++ {
		counts[z.Sample(s)]++
	}
	for v := 1; v <= 4; v++ {
		frac := float64(counts[v]) / 40000
		if math.Abs(frac-0.25) > 0.03 {
			t.Fatalf("alpha=0 not uniform: counts=%v", counts)
		}
	}
}

// Property: Exp(mean) is always non-negative and Bernoulli(0)/Bernoulli(1)
// are constant.
func TestExpBernoulliProperties(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		if s.Exp(5) < 0 {
			return false
		}
		if s.Bernoulli(0) {
			return false
		}
		if !s.Bernoulli(1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSingleton(t *testing.T) {
	s := New(9)
	z := NewZipf(1, 0.8)
	for i := 0; i < 100; i++ {
		if v := z.Sample(s); v != 1 {
			t.Fatalf("NewZipf(1, ·).Sample = %d, want 1", v)
		}
	}
}

func TestZipfRejectsDegenerateInputs(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("n=0", func() { NewZipf(0, 0.8) })
	mustPanic("n=-3", func() { NewZipf(-3, 0.8) })
	mustPanic("alpha=-0.5", func() { NewZipf(4, -0.5) })
	mustPanic("alpha=NaN", func() { NewZipf(4, math.NaN()) })
}
