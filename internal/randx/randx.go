// Package randx provides seeded random distributions used to calibrate the
// simulated substrates. Everything is built on math/rand so runs are
// reproducible from a single seed; no crypto randomness is needed or wanted.
package randx

import (
	"math"
	"math/rand"
	"sort"
)

// Source wraps a seeded *rand.Rand with the distributions the simulators use.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child source; the child's stream is a pure
// function of the parent's state at the call, so call order matters (and is
// deterministic under the sim kernel).
func (s *Source) Fork() *Source {
	return New(s.rng.Int63())
}

// Float64 returns a uniform value in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0,n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Uniform returns a uniform value in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + s.rng.Float64()*(hi-lo)
}

// Normal returns a normal sample with the given mean and standard deviation.
func (s *Source) Normal(mean, sd float64) float64 {
	return mean + sd*s.rng.NormFloat64()
}

// TruncNormal returns a normal sample truncated (by resampling, falling back
// to clamping) to [lo,hi].
func (s *Source) TruncNormal(mean, sd, lo, hi float64) float64 {
	for i := 0; i < 16; i++ {
		v := s.Normal(mean, sd)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// LogNormal returns exp(N(mu, sigma)). Note mu/sigma parameterize the
// underlying normal, not the resulting distribution's mean.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMeanCV returns a lognormal sample parameterized by the desired
// mean and coefficient of variation (sd/mean) of the *resulting*
// distribution, which is the natural way to calibrate task runtimes.
func (s *Source) LogNormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.LogNormal(mu, math.Sqrt(sigma2))
}

// Exp returns an exponential sample with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.rng.Float64() < p }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle shuffles n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Pick returns a uniformly chosen index weighted by weights (all >= 0). It
// panics if weights is empty or sums to zero.
func (s *Source) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("randx: Pick with non-positive total weight")
	}
	x := s.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf returns samples in [1,n] with a zipfian distribution of exponent
// alpha > 1 is not required; alpha=0 is uniform. Implemented by inverse CDF
// over precomputed weights for small n.
type Zipf struct {
	cum []float64
}

// NewZipf builds a zipf sampler over [1,n] with exponent alpha >= 0.
// n <= 0 (an empty support would NaN-normalize the CDF) and alpha < 0
// (which would silently invert the skew) panic, matching Pick's contract
// of rejecting degenerate weight inputs loudly.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	if alpha < 0 || math.IsNaN(alpha) {
		panic("randx: NewZipf with negative or NaN alpha")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), alpha)
		cum[i-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// Sample draws a value in [1,n].
func (z *Zipf) Sample(s *Source) int {
	x := s.Float64()
	return sort.SearchFloat64s(z.cum, x) + 1
}
