package cloud

import (
	"fmt"
	"testing"

	"hhcw/internal/sim"
)

func TestQueueSemantics(t *testing.T) {
	q := NewQueue("a", "b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	m, ok := q.Receive()
	if !ok || m != "a" {
		t.Fatalf("Receive = %q %v", m, ok)
	}
	if q.InFlight() != 1 || q.Len() != 1 {
		t.Fatalf("inflight=%d len=%d", q.InFlight(), q.Len())
	}
	q.Delete()
	if q.Consumed() != 1 || q.InFlight() != 0 {
		t.Fatalf("consumed=%d inflight=%d", q.Consumed(), q.InFlight())
	}
	m2, _ := q.Receive()
	q.Return(m2)
	if q.Len() != 1 || q.InFlight() != 0 {
		t.Fatalf("after Return: len=%d inflight=%d", q.Len(), q.InFlight())
	}
	q.Receive()
	q.Delete()
	if _, ok := q.Receive(); ok {
		t.Fatal("Receive on empty queue succeeded")
	}
}

func TestInstanceLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	var readyAt sim.Time
	inst := env.Launch(T3Medium, func(i *Instance) { readyAt = eng.Now() })
	if inst.State() != Launching {
		t.Fatal("instance should be launching")
	}
	eng.Run()
	if readyAt != 60 {
		t.Fatalf("ready at %v, want 60 (boot delay)", readyAt)
	}
	if inst.State() != Running {
		t.Fatal("instance should be running")
	}
	eng.At(eng.Now(), func() {})
	env.Terminate(inst)
	if inst.State() != Terminated {
		t.Fatal("instance should be terminated")
	}
	if got := inst.UptimeSec(eng.Now()); got != 60 {
		t.Fatalf("uptime = %v, want 60", got)
	}
	env.Terminate(inst) // idempotent
}

func TestTerminateDuringLaunch(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	called := false
	inst := env.Launch(T3Medium, func(*Instance) { called = true })
	env.Terminate(inst)
	eng.Run()
	if called {
		t.Fatal("onReady fired for terminated instance")
	}
	if env.RunningSeries().Value() != 0 {
		t.Fatal("running gauge leaked")
	}
}

func TestTotalCost(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	inst := env.Launch(T3Medium, nil)
	eng.At(3600, func() { env.Terminate(inst) })
	eng.Run()
	want := T3Medium.PricePerHour
	if got := env.TotalCost(eng.Now()); got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestASGProcessesQueue(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	for i := 0; i < 10; i++ {
		env.Queue.Send(fmt.Sprintf("srr%02d", i))
	}
	processed := 0
	_, err := NewASG(env, ASGConfig{
		Type: T3Medium,
		Max:  3,
		Worker: func(inst *Instance, done func()) {
			var loop func()
			loop = func() {
				msg, ok := env.Queue.Receive()
				if !ok {
					done()
					return
				}
				eng.After(100, func() {
					_ = msg
					processed++
					env.Queue.Delete()
					loop()
				})
			}
			loop()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if processed != 10 {
		t.Fatalf("processed = %d, want 10", processed)
	}
	if env.Queue.Consumed() != 10 {
		t.Fatalf("consumed = %d", env.Queue.Consumed())
	}
	// Capped at 3 instances.
	if len(env.Instances()) != 3 {
		t.Fatalf("instances = %d, want 3", len(env.Instances()))
	}
	for _, inst := range env.Instances() {
		if inst.State() != Terminated {
			t.Fatal("instance not terminated after drain")
		}
	}
	// 10 msgs / 3 instances → ceil = 4 rounds × 100 s + 60 s boot.
	if eng.Now() != 460 {
		t.Fatalf("makespan = %v, want 460", eng.Now())
	}
}

func TestASGValidation(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	if _, err := NewASG(env, ASGConfig{Type: T3Medium, Max: 1}); err == nil {
		t.Fatal("ASG without worker accepted")
	}
	if _, err := NewASG(env, ASGConfig{Type: T3Medium, Max: 0, Worker: func(*Instance, func()) {}}); err == nil {
		t.Fatal("ASG with Max=0 accepted")
	}
}

func TestASGScaleIsBounded(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	for i := 0; i < 100; i++ {
		env.Queue.Send("m")
	}
	g, err := NewASG(env, ASGConfig{
		Type: T3Medium, Max: 5,
		Worker: func(inst *Instance, done func()) {
			for {
				if _, ok := env.Queue.Receive(); !ok {
					break
				}
				env.Queue.Delete()
			}
			done()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Live() != 5 {
		t.Fatalf("live = %d, want 5", g.Live())
	}
	eng.Run()
	if g.Live() != 0 {
		t.Fatalf("live after drain = %d", g.Live())
	}
}
