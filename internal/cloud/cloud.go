// Package cloud simulates the AWS services the Transcriptomics Atlas
// deployment uses (§5.1, Fig 7): EC2-like instances with boot delay launched
// from an image, an auto-scaling group, an SQS-like work queue, an S3-like
// object store (internal/storage), and a CloudWatch-agent-like per-process
// metric sink.
package cloud

import (
	"fmt"

	"hhcw/internal/metrics"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// InstanceType describes an EC2 instance family.
type InstanceType struct {
	Name     string
	VCPUs    int
	MemBytes float64
	// BootDelaySec models AMI launch + init time.
	BootDelaySec float64
	// SpeedFactor scales compute-bound step durations (1 = reference).
	SpeedFactor float64
	// PricePerHour lets experiments report cost alongside time.
	PricePerHour float64
}

// T3Medium is the small general-purpose instance the Salmon pipeline fits
// ("2 cores and 8GB of RAM").
var T3Medium = InstanceType{
	Name: "t3.medium", VCPUs: 2, MemBytes: 8e9,
	BootDelaySec: 60, SpeedFactor: 1.0, PricePerHour: 0.0416,
}

// C6aLarge is the compute-optimized alternative §5.2 suggests ("c6a.large
// type which has 2vCPU and 4GiB RAM").
var C6aLarge = InstanceType{
	Name: "c6a.large", VCPUs: 2, MemBytes: 4e9,
	BootDelaySec: 60, SpeedFactor: 1.15, PricePerHour: 0.0765,
}

// InstanceState is the EC2 lifecycle state.
type InstanceState int

// Instance lifecycle states.
const (
	Launching InstanceState = iota
	Running
	Terminated
)

// Instance is one virtual machine.
type Instance struct {
	ID    int
	Type  InstanceType
	state InstanceState

	launchedAt sim.Time
	readyAt    sim.Time
	stoppedAt  sim.Time
}

// State returns the lifecycle state.
func (i *Instance) State() InstanceState { return i.state }

// UptimeSec returns billable seconds (launch to termination, or to now).
func (i *Instance) UptimeSec(now sim.Time) float64 {
	end := i.stoppedAt
	if i.state != Terminated {
		end = now
	}
	return float64(end - i.launchedAt)
}

// Queue is an SQS-like FIFO work queue carrying string messages (SRR
// accessions in the Atlas deployment).
type Queue struct {
	msgs     []string
	inflight int
	consumed int
}

// NewQueue returns a queue preloaded with msgs.
func NewQueue(msgs ...string) *Queue {
	return &Queue{msgs: append([]string(nil), msgs...)}
}

// Send enqueues a message.
func (q *Queue) Send(msg string) { q.msgs = append(q.msgs, msg) }

// Receive pops the next message; ok=false when empty. The message becomes
// in-flight until Delete or Return.
func (q *Queue) Receive() (string, bool) {
	if len(q.msgs) == 0 {
		return "", false
	}
	m := q.msgs[0]
	q.msgs = q.msgs[1:]
	q.inflight++
	return m, true
}

// Delete acknowledges an in-flight message.
func (q *Queue) Delete() {
	if q.inflight > 0 {
		q.inflight--
		q.consumed++
	}
}

// Return puts an in-flight message back (visibility timeout / worker death).
func (q *Queue) Return(msg string) {
	if q.inflight > 0 {
		q.inflight--
	}
	q.msgs = append(q.msgs, msg)
}

// Len returns queued (not in-flight) messages.
func (q *Queue) Len() int { return len(q.msgs) }

// InFlight returns messages currently being processed.
func (q *Queue) InFlight() int { return q.inflight }

// Consumed returns acknowledged messages.
func (q *Queue) Consumed() int { return q.consumed }

// Env bundles the cloud account: engine, object store, queue, metric sink.
type Env struct {
	Eng    *sim.Engine
	S3     *storage.Store
	Queue  *Queue
	nextID int

	instances []*Instance
	runningN  *metrics.Gauge
}

// NewEnv creates a cloud environment on eng. The S3 store has effectively
// unbounded bandwidth per object (network costs live in step durations).
func NewEnv(eng *sim.Engine) *Env {
	return &Env{
		Eng:      eng,
		S3:       storage.NewStore("s3", 0, 0, 0),
		Queue:    NewQueue(),
		runningN: metrics.NewGauge("cloud.instances"),
	}
}

// Launch starts an instance; onReady fires after the boot delay with the
// running instance.
func (e *Env) Launch(t InstanceType, onReady func(*Instance)) *Instance {
	e.nextID++
	inst := &Instance{ID: e.nextID, Type: t, state: Launching, launchedAt: e.Eng.Now()}
	e.instances = append(e.instances, inst)
	e.Eng.After(sim.Time(t.BootDelaySec), func() {
		if inst.state != Launching {
			return
		}
		inst.state = Running
		inst.readyAt = e.Eng.Now()
		e.runningN.AddDelta(e.Eng.Now(), 1)
		if onReady != nil {
			onReady(inst)
		}
	})
	return inst
}

// Terminate stops an instance.
func (e *Env) Terminate(inst *Instance) {
	if inst.state == Terminated {
		return
	}
	if inst.state == Running {
		e.runningN.AddDelta(e.Eng.Now(), -1)
	}
	inst.state = Terminated
	inst.stoppedAt = e.Eng.Now()
}

// Instances returns all launched instances.
func (e *Env) Instances() []*Instance { return e.instances }

// RunningSeries exposes the running-instance trajectory.
func (e *Env) RunningSeries() *metrics.Gauge { return e.runningN }

// TotalCost returns the accumulated instance cost in dollars at now.
func (e *Env) TotalCost(now sim.Time) float64 {
	c := 0.0
	for _, i := range e.instances {
		c += i.UptimeSec(now) / 3600 * i.Type.PricePerHour
	}
	return c
}

// ASGConfig shapes an auto-scaling group.
type ASGConfig struct {
	Type     InstanceType
	Min, Max int
	// Worker is the per-instance work loop: it is invoked when an instance
	// becomes ready and must call done() when the instance has no more
	// work (the ASG then terminates it).
	Worker func(inst *Instance, done func())
}

// ASG is an auto-scaling group that tracks queue depth: it scales out while
// the queue has more messages than running+launching instances (up to Max)
// and lets workers terminate when the queue drains.
type ASG struct {
	env  *Env
	cfg  ASGConfig
	live int
}

// NewASG creates the group and immediately scales to the needed size.
func NewASG(env *Env, cfg ASGConfig) (*ASG, error) {
	if cfg.Worker == nil {
		return nil, fmt.Errorf("cloud: ASG without Worker")
	}
	if cfg.Max <= 0 {
		return nil, fmt.Errorf("cloud: ASG Max must be positive")
	}
	g := &ASG{env: env, cfg: cfg}
	g.Scale()
	return g, nil
}

// Live returns the current launching+running instance count.
func (g *ASG) Live() int { return g.live }

// Scale adjusts capacity toward queue depth. Call after enqueuing work.
func (g *ASG) Scale() {
	want := g.env.Queue.Len()
	if want > g.cfg.Max {
		want = g.cfg.Max
	}
	if want < g.cfg.Min {
		want = g.cfg.Min
	}
	for g.live < want {
		g.live++
		g.env.Launch(g.cfg.Type, func(inst *Instance) {
			g.cfg.Worker(inst, func() {
				g.env.Terminate(inst)
				g.live--
			})
		})
	}
}
