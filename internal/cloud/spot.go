package cloud

import (
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// Spot-market instances: the cost lever real Atlas-style deployments reach
// for once the pipeline is interruption-safe (each SRR is processed
// independently and the SQS message model makes work requeueable, §5.1's
// architecture is exactly the shape spot wants).

// SpotConfig shapes a spot fleet.
type SpotConfig struct {
	Type InstanceType
	// DiscountFactor scales the on-demand price (AWS spot averages ~0.3).
	DiscountFactor float64
	// InterruptionRate is the per-instance probability of interruption per
	// hour of runtime.
	InterruptionRate float64
}

// SpotFleet launches interruptible instances. On interruption the instance
// terminates after a two-minute warning and the OnInterrupt callback fires
// (workers should Return their in-flight message to the queue).
type SpotFleet struct {
	env *Env
	cfg SpotConfig
	rng *randx.Source

	interruptions int
}

// NewSpotFleet creates a fleet manager.
func NewSpotFleet(env *Env, cfg SpotConfig, rng *randx.Source) *SpotFleet {
	if cfg.DiscountFactor <= 0 {
		cfg.DiscountFactor = 0.3
	}
	return &SpotFleet{env: env, cfg: cfg, rng: rng}
}

// Interruptions returns how many instances were reclaimed.
func (f *SpotFleet) Interruptions() int { return f.interruptions }

// SpotPricePerHour returns the discounted hourly price.
func (f *SpotFleet) SpotPricePerHour() float64 {
	return f.cfg.Type.PricePerHour * f.cfg.DiscountFactor
}

// Launch starts a spot instance. onReady fires when it boots; onInterrupt
// fires (at most once) two minutes before a reclaim terminates it. The
// returned instance's price reflects the spot discount.
func (f *SpotFleet) Launch(onReady func(*Instance), onInterrupt func(*Instance)) *Instance {
	t := f.cfg.Type
	t.PricePerHour = f.SpotPricePerHour()
	var inst *Instance
	inst = f.env.Launch(t, func(i *Instance) {
		if onReady != nil {
			onReady(i)
		}
		f.scheduleReclaim(i, onInterrupt)
	})
	return inst
}

// scheduleReclaim draws an exponential time-to-interruption; if it lands
// before the instance terminates naturally, the warning and reclaim fire.
func (f *SpotFleet) scheduleReclaim(inst *Instance, onInterrupt func(*Instance)) {
	if f.cfg.InterruptionRate <= 0 {
		return
	}
	meanSec := 3600 / f.cfg.InterruptionRate
	delay := f.rng.Exp(meanSec)
	f.env.Eng.After(sim.Time(delay), func() {
		if inst.State() != Running {
			return
		}
		f.interruptions++
		if onInterrupt != nil {
			onInterrupt(inst)
		}
		// Two-minute warning, then hard termination.
		f.env.Eng.After(120, func() {
			f.env.Terminate(inst)
		})
	})
}
