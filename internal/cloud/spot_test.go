package cloud

import (
	"testing"

	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func TestSpotFleetPricing(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	f := NewSpotFleet(env, SpotConfig{Type: T3Medium, DiscountFactor: 0.25}, randx.New(1))
	if got := f.SpotPricePerHour(); got != T3Medium.PricePerHour*0.25 {
		t.Fatalf("spot price = %v", got)
	}
	// Default discount applies when unset.
	f2 := NewSpotFleet(env, SpotConfig{Type: T3Medium}, randx.New(1))
	if got := f2.SpotPricePerHour(); got != T3Medium.PricePerHour*0.3 {
		t.Fatalf("default discount price = %v", got)
	}
}

func TestSpotFleetNoRateNeverInterrupts(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	f := NewSpotFleet(env, SpotConfig{Type: T3Medium}, randx.New(2))
	interrupted := false
	inst := f.Launch(nil, func(*Instance) { interrupted = true })
	eng.RunUntil(1e6)
	if interrupted || f.Interruptions() != 0 {
		t.Fatal("zero-rate fleet interrupted an instance")
	}
	env.Terminate(inst)
}

func TestSpotFleetInterruptsWithWarning(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	f := NewSpotFleet(env, SpotConfig{Type: T3Medium, InterruptionRate: 3600}, randx.New(3)) // ~1/sec
	var warnedAt, deadAt sim.Time
	inst := f.Launch(nil, func(i *Instance) { warnedAt = eng.Now() })
	eng.RunUntil(1e5)
	if f.Interruptions() != 1 {
		t.Fatalf("interruptions = %d", f.Interruptions())
	}
	if inst.State() != Terminated {
		t.Fatal("instance not reclaimed")
	}
	// Launched at t=0, so uptime equals the termination time.
	deadAt = sim.Time(inst.UptimeSec(eng.Now()))
	if float64(deadAt)-float64(warnedAt) != 120 {
		t.Fatalf("warning lead = %v, want 120 s", float64(deadAt)-float64(warnedAt))
	}
}

func TestSpotReclaimSkipsTerminated(t *testing.T) {
	eng := sim.NewEngine()
	env := NewEnv(eng)
	f := NewSpotFleet(env, SpotConfig{Type: T3Medium, InterruptionRate: 0.001}, randx.New(4))
	interrupted := false
	inst := f.Launch(func(i *Instance) {
		env.Terminate(i) // dies naturally right after boot
	}, func(*Instance) { interrupted = true })
	eng.Run()
	if interrupted || f.Interruptions() != 0 {
		t.Fatal("terminated instance was reclaimed")
	}
	_ = inst
}
