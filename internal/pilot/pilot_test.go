package pilot

import (
	"fmt"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func setup(nodes int) (*sim.Engine, *cluster.Cluster, *rm.BatchManager) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "t", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, GPUs: 1, MemBytes: 1e12},
		Count: nodes,
	})
	return eng, cl, rm.NewBatchManager(cl, nil)
}

func TestPilotLifecycle(t *testing.T) {
	eng, cl, bm := setup(4)
	p, err := Submit(bm, cl, Config{Nodes: 4, Walltime: 10000, BootstrapSec: 85})
	if err != nil {
		t.Fatal(err)
	}
	if p.State() != Pending {
		t.Fatalf("state = %v, want pending", p.State())
	}
	activeAt := sim.Time(-1)
	p.OnActive(func() { activeAt = eng.Now() })
	var res TaskResult
	p.SubmitTask(&Task{ID: "t1", Nodes: 2, DurationSec: 100, Done: func(r TaskResult) { res = r }})
	eng.Run()
	if activeAt != 85 {
		t.Fatalf("agent active at %v, want 85", activeAt)
	}
	if p.Overhead() != 85 {
		t.Fatalf("Overhead = %v, want 85", p.Overhead())
	}
	if res.Failed || res.FinishedAt != 185 {
		t.Fatalf("task result: failed=%v finished=%v, want 185", res.Failed, res.FinishedAt)
	}
	if p.CompletedTasks() != 1 {
		t.Fatalf("completed = %d", p.CompletedTasks())
	}
	p.Release()
	if p.State() != Done {
		t.Fatal("Release did not finish pilot")
	}
}

func TestPilotQueuesUntilNodesFree(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 10000})
	var ends []sim.Time
	done := func(r TaskResult) { ends = append(ends, r.FinishedAt) }
	p.SubmitTask(&Task{ID: "a", Nodes: 2, DurationSec: 50, Done: done})
	p.SubmitTask(&Task{ID: "b", Nodes: 2, DurationSec: 50, Done: done})
	eng.Run()
	if len(ends) != 2 || ends[0] != 50 || ends[1] != 100 {
		t.Fatalf("ends = %v, want [50 100]", ends)
	}
}

func TestPilotSkipOverScheduling(t *testing.T) {
	// A 2-node task blocked behind a 4-node task should not starve when
	// only 2 nodes are free.
	eng, cl, bm := setup(4)
	p, _ := Submit(bm, cl, Config{Nodes: 4, Walltime: 10000})
	var order []string
	done := func(r TaskResult) { order = append(order, r.Task.ID) }
	p.SubmitTask(&Task{ID: "hog", Nodes: 2, DurationSec: 100, Done: done})
	p.SubmitTask(&Task{ID: "big", Nodes: 4, DurationSec: 10, Done: done})
	p.SubmitTask(&Task{ID: "small", Nodes: 2, DurationSec: 10, Done: done})
	eng.Run()
	// small (2 nodes) fits alongside hog; big must wait for all 4.
	if len(order) != 3 || order[0] != "small" {
		t.Fatalf("order = %v, want small first", order)
	}
}

func TestPilotSchedulingRate(t *testing.T) {
	eng, cl, bm := setup(10)
	p, _ := Submit(bm, cl, Config{Nodes: 10, Walltime: 1e6, SchedRate: 10}) // 10 tasks/s
	n := 100
	for i := 0; i < n; i++ {
		p.SubmitTask(&Task{ID: fmt.Sprintf("t%03d", i), Nodes: 1, DurationSec: 0.001})
	}
	eng.Run()
	// 100 tasks at 10/s ≈ 10s of scheduling.
	last := p.ScheduledSeries().Last()
	if last.T < 9.5 || last.T > 11 {
		t.Fatalf("last scheduling event at %v, want ~10s", last.T)
	}
	if p.CompletedTasks() != n {
		t.Fatalf("completed = %d", p.CompletedTasks())
	}
}

func TestPilotLaunchRateBoundsConcurrencyRamp(t *testing.T) {
	eng, cl, bm := setup(100)
	p, _ := Submit(bm, cl, Config{Nodes: 100, Walltime: 1e6, SchedRate: 0, LaunchRate: 2})
	for i := 0; i < 50; i++ {
		p.SubmitTask(&Task{ID: fmt.Sprintf("t%03d", i), Nodes: 1, DurationSec: 1000})
	}
	eng.RunUntil(10)
	// At 2 launches/s, ~20 tasks running after 10 s despite 100 free nodes.
	running := p.RunningSeries().Value()
	if running < 18 || running > 22 {
		t.Fatalf("running after 10s = %v, want ~20", running)
	}
	eng.Run()
}

func TestPilotNodeFailureKillsTask(t *testing.T) {
	eng, cl, bm := setup(4)
	p, _ := Submit(bm, cl, Config{Nodes: 4, Walltime: 1e6})
	var failed, ok []string
	done := func(r TaskResult) {
		if r.Failed {
			failed = append(failed, r.Task.ID)
		} else {
			ok = append(ok, r.Task.ID)
		}
	}
	p.SubmitTask(&Task{ID: "a", Nodes: 2, DurationSec: 100, Done: done})
	p.SubmitTask(&Task{ID: "b", Nodes: 2, DurationSec: 100, Done: done})
	eng.At(50, func() {
		// Fail one node of task a.
		for _, q := range p.running {
			if q.task.ID == "a" {
				cl.FailNode(q.nodes[0])
				return
			}
		}
		t.Error("task a not running at t=50")
	})
	eng.Run()
	if len(failed) != 1 || failed[0] != "a" {
		t.Fatalf("failed = %v", failed)
	}
	if len(ok) != 1 || ok[0] != "b" {
		t.Fatalf("ok = %v", ok)
	}
	// Pool lost the dead node: 4 - 2(b ran and returned) ... after run all
	// healthy nodes return: 3 healthy free.
	if p.FreeNodes() != 3 {
		t.Fatalf("free nodes = %d, want 3", p.FreeNodes())
	}
}

func TestPilotResubmitAfterNodeFailure(t *testing.T) {
	eng, cl, bm := setup(4)
	p, _ := Submit(bm, cl, Config{Nodes: 4, Walltime: 1e6})
	attempts := 0
	var submit func(id string)
	submit = func(id string) {
		p.SubmitTask(&Task{ID: id, Nodes: 1, DurationSec: 100, Done: func(r TaskResult) {
			attempts++
			if r.Failed {
				submit(id + "r")
			}
		}})
	}
	submit("a")
	eng.At(10, func() {
		for _, q := range p.running {
			cl.FailNode(q.nodes[0])
		}
	})
	eng.Run()
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (fail + success)", attempts)
	}
	if p.CompletedTasks() != 1 || p.FailedTasks() != 1 {
		t.Fatalf("completed=%d failed=%d", p.CompletedTasks(), p.FailedTasks())
	}
}

func TestPilotWalltimeExpiryFailsEverything(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 50})
	results := map[string]bool{}
	p.SubmitTask(&Task{ID: "run", Nodes: 2, DurationSec: 100, Done: func(r TaskResult) { results["run"] = r.Failed }})
	p.SubmitTask(&Task{ID: "wait", Nodes: 2, DurationSec: 100, Done: func(r TaskResult) { results["wait"] = r.Failed }})
	eng.Run()
	if !results["run"] || !results["wait"] {
		t.Fatalf("walltime expiry should fail all tasks: %v", results)
	}
	if p.State() != Done {
		t.Fatal("pilot not done after expiry")
	}
}

func TestPilotSubmitErrors(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6})
	if err := p.SubmitTask(&Task{ID: "big", Nodes: 5, DurationSec: 1}); err == nil {
		t.Fatal("oversized task accepted")
	}
	if err := p.SubmitTask(&Task{ID: "zero", Nodes: 0, DurationSec: 1}); err == nil {
		t.Fatal("zero-node task accepted")
	}
	eng.Run()
	p.Release()
	if err := p.SubmitTask(&Task{ID: "late", Nodes: 1, DurationSec: 1}); err == nil {
		t.Fatal("submit after release accepted")
	}
}

func TestPilotTTX(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6, BootstrapSec: 10})
	p.SubmitTask(&Task{ID: "a", Nodes: 1, DurationSec: 30})
	p.SubmitTask(&Task{ID: "b", Nodes: 1, DurationSec: 50})
	eng.Run()
	if p.TTX() != 50 { // both start at 10, last ends at 60
		t.Fatalf("TTX = %v, want 50", p.TTX())
	}
}

func TestPilotUtilizationSeries(t *testing.T) {
	eng, cl, bm := setup(4)
	p, _ := Submit(bm, cl, Config{Nodes: 4, Walltime: 1e6})
	p.SubmitTask(&Task{ID: "a", Nodes: 4, DurationSec: 100})
	eng.Run()
	// Busy-node integral: 4 nodes × 100s.
	got := p.BusyNodesSeries().Integral(0, 100)
	if got != 400 {
		t.Fatalf("busy-node integral = %v, want 400", got)
	}
}
