package pilot

import (
	"testing"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Pending: "pending", Bootstrapping: "bootstrapping", Active: "active", Done: "done",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestOnActiveAfterActive(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6})
	eng.RunUntil(1) // pilot granted and active (no bootstrap)
	fired := false
	p.OnActive(func() { fired = true })
	if !fired {
		t.Fatal("OnActive on an active pilot should fire immediately")
	}
}

func TestStartedAtAndSeries(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6, BootstrapSec: 5})
	p.SubmitTask(&Task{ID: "t", Nodes: 1, DurationSec: 10})
	eng.Run()
	if p.StartedAt() != 0 {
		t.Fatalf("StartedAt = %v", p.StartedAt())
	}
	if p.LaunchedSeries().Value() != 1 {
		t.Fatalf("launched = %v", p.LaunchedSeries().Value())
	}
	if p.TTX() != 10 {
		t.Fatalf("TTX = %v", p.TTX())
	}
}

func TestTTXBeforeAnyTask(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6})
	eng.Run()
	if p.TTX() != 0 {
		t.Fatalf("idle TTX = %v, want 0", p.TTX())
	}
}

func TestReleaseIdempotentAndBlocksSubmit(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6})
	eng.RunUntil(1)
	p.Release()
	p.Release() // idempotent
	if p.State() != Done {
		t.Fatal("not done after release")
	}
	if err := p.SubmitTask(&Task{ID: "x", Nodes: 1, DurationSec: 1}); err == nil {
		t.Fatal("submit after release accepted")
	}
	// Nodes returned to the batch pool: a new pilot can start.
	p2, err := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	p2.SubmitTask(&Task{ID: "y", Nodes: 1, DurationSec: 1, Done: func(TaskResult) { done = true }})
	eng.Run()
	if !done {
		t.Fatal("second pilot did not run")
	}
}

func TestPilotFailedTaskWithFailFlag(t *testing.T) {
	eng, cl, bm := setup(2)
	p, _ := Submit(bm, cl, Config{Nodes: 2, Walltime: 1e6})
	var res TaskResult
	p.SubmitTask(&Task{ID: "bad", Nodes: 1, DurationSec: 100, Fail: true, FailAfterSec: 30,
		Done: func(r TaskResult) { res = r }})
	eng.Run()
	if !res.Failed || res.FinishedAt != 30 {
		t.Fatalf("failed=%v at %v, want failure at 30", res.Failed, res.FinishedAt)
	}
	if p.FailedTasks() != 1 {
		t.Fatalf("FailedTasks = %d", p.FailedTasks())
	}
}
