package pilot

import (
	"fmt"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// BenchmarkPilotScale10k exercises §4.1's RADICAL-Pilot scale claim — "up to
// 10^4 heterogeneous computing tasks" inside one allocation — end to end in
// virtual time.
func BenchmarkPilotScale10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cluster.New(eng, "big", cluster.Spec{
			Type:  cluster.NodeType{Name: "n", Cores: 8, GPUs: 1, MemBytes: 1e12},
			Count: 2000,
		})
		bm := rm.NewBatchManager(cl, nil)
		p, err := Submit(bm, cl, Config{Nodes: 2000, Walltime: 1e7, SchedRate: 269, LaunchRate: 51})
		if err != nil {
			b.Fatal(err)
		}
		const n = 10000
		done := 0
		for j := 0; j < n; j++ {
			if err := p.SubmitTask(&Task{
				ID:          fmt.Sprintf("t%05d", j),
				Nodes:       1 + j%4, // heterogeneous shapes
				DurationSec: 300 + float64(j%7)*100,
				Done:        func(TaskResult) { done++ },
			}); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
		if done != n {
			b.Fatalf("completed %d of %d", done, n)
		}
	}
}
