// Package pilot implements a RADICAL-Pilot-style pilot-job runtime (§4.1):
// a placeholder batch job acquires a block of nodes; an agent bootstraps on
// the allocation and then schedules and launches many small tasks inside it
// without further round-trips to the batch system.
//
// The agent models the two throughput limits the paper measures on Frontier
// (§4.3, Fig 5): a scheduling rate (tasks assigned to resources, ~269/s) and
// a launching rate (tasks started on nodes, ~51/s), plus a fixed bootstrap
// overhead (Fig 4's OVH, ~85 s). Node failures inside the allocation kill
// the tasks running there; the pool shrinks accordingly.
package pilot

import (
	"fmt"
	"sort"

	"hhcw/internal/cluster"
	"hhcw/internal/metrics"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// Config shapes a pilot.
type Config struct {
	Nodes    int
	Walltime sim.Time
	Account  string

	// BootstrapSec is the agent startup overhead after the allocation is
	// granted (Fig 4 OVH).
	BootstrapSec float64
	// SchedRate is the agent scheduler throughput in tasks/second
	// (0 = unlimited).
	SchedRate float64
	// LaunchRate is the task launcher throughput in tasks/second
	// (0 = unlimited).
	LaunchRate float64
}

// Task is a node-granular pilot task (the paper's EnTK tasks request whole
// nodes: 4 for AdditiveFOAM, 1 for ExaCA, 8 for ExaConstit).
type Task struct {
	ID    string
	Nodes int
	// DurationSec is the task's execution time once launched.
	DurationSec float64
	// Fail simulates an application-level failure: the task terminates
	// unsuccessfully after FailAfterSec (or DurationSec when zero).
	Fail         bool
	FailAfterSec float64
	// Done receives the terminal result exactly once.
	Done func(TaskResult)
	// Handler is the interface form of Done, consulted only when Done is
	// nil. Callers that submit many tasks can embed Task in a per-attempt
	// record implementing TaskHandler, replacing the per-task closure (and
	// its captured-variable boxes) with a single allocation.
	Handler TaskHandler
}

// TaskHandler receives a task's terminal result exactly once.
type TaskHandler interface {
	OnTaskDone(TaskResult)
}

// notifyDone dispatches the terminal result to Done or, failing that,
// Handler.
func (t *Task) notifyDone(res TaskResult) {
	switch {
	case t.Done != nil:
		t.Done(res)
	case t.Handler != nil:
		t.Handler.OnTaskDone(res)
	}
}

// TaskResult is a pilot task's terminal record.
type TaskResult struct {
	Task        *Task
	SubmittedAt sim.Time
	ScheduledAt sim.Time
	LaunchedAt  sim.Time
	FinishedAt  sim.Time
	Nodes       []*cluster.Node
	Failed      bool
	Err         error
}

// State is the pilot lifecycle state.
type State int

// Pilot lifecycle states.
const (
	Pending State = iota // submitted to the batch system
	Bootstrapping
	Active
	Done
)

// String returns the lifecycle state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Bootstrapping:
		return "bootstrapping"
	case Active:
		return "active"
	default:
		return "done"
	}
}

// Pilot is an acquired allocation plus the agent running inside it.
type Pilot struct {
	cfg   Config
	cl    *cluster.Cluster
	eng   *sim.Engine
	state State

	alloc     *rm.BatchAlloc
	freeNodes []*cluster.Node
	dead      map[int]bool // node ID → failed

	queue     []*pending // submitted, not yet scheduled
	scheduled []*pending // assigned resources conceptually, awaiting launch
	running   map[string]*pending

	nextSchedFree  sim.Time // earliest time the scheduler can process the next task
	nextLaunchFree sim.Time
	schedPumping   bool
	launchPumping  bool

	startedAt    sim.Time // allocation granted
	activeAt     sim.Time // agent ready
	firstTaskAt  sim.Time
	sawFirstTask bool
	lastDoneAt   sim.Time

	schedCount  *metrics.Counter
	launchCount *metrics.Counter
	runningN    *metrics.Gauge
	busyNodes   *metrics.Gauge
	doneCount   int
	failCount   int

	onActive []func()
}

type pending struct {
	task        *Task
	submittedAt sim.Time
	scheduledAt sim.Time
	nodes       []*cluster.Node
	endEv       *sim.Event
	launchedAt  sim.Time
}

// Submit requests a pilot through the batch manager; the returned Pilot
// becomes Active after the allocation is granted and the agent bootstraps.
func Submit(bm *rm.BatchManager, cl *cluster.Cluster, cfg Config) (*Pilot, error) {
	p := &Pilot{
		cfg:         cfg,
		cl:          cl,
		eng:         cl.Engine(),
		state:       Pending,
		dead:        map[int]bool{},
		running:     map[string]*pending{},
		schedCount:  metrics.NewCounter("pilot.scheduled"),
		launchCount: metrics.NewCounter("pilot.launched"),
		runningN:    metrics.NewGauge("pilot.running"),
		busyNodes:   metrics.NewGauge("pilot.busy_nodes"),
	}
	job := &rm.BatchJob{
		ID:       fmt.Sprintf("pilot-%d-nodes", cfg.Nodes),
		Account:  cfg.Account,
		Nodes:    cfg.Nodes,
		Walltime: cfg.Walltime,
		OnStart:  p.onGranted,
		OnExpire: p.onExpire,
	}
	if err := bm.Submit(job); err != nil {
		return nil, err
	}
	cl.OnNodeDown(p.onNodeDown)
	return p, nil
}

// State returns the pilot lifecycle state.
func (p *Pilot) State() State { return p.state }

// OnActive registers a callback for when the agent finishes bootstrapping.
func (p *Pilot) OnActive(fn func()) {
	if p.state == Active {
		fn()
		return
	}
	p.onActive = append(p.onActive, fn)
}

// Overhead returns the Fig-4 OVH: time from allocation grant to agent ready.
func (p *Pilot) Overhead() sim.Time { return p.activeAt - p.startedAt }

// TTX returns total execution span: first task launch to last completion.
func (p *Pilot) TTX() sim.Time {
	if p.lastDoneAt < p.firstTaskAt {
		return 0
	}
	return p.lastDoneAt - p.firstTaskAt
}

// StartedAt returns when the allocation was granted.
func (p *Pilot) StartedAt() sim.Time { return p.startedAt }

// CompletedTasks returns the number of successfully finished tasks.
func (p *Pilot) CompletedTasks() int { return p.doneCount }

// FailedTasks returns the number of failed tasks.
func (p *Pilot) FailedTasks() int { return p.failCount }

// RunningSeries exposes the running-task trajectory (Fig 5 orange line).
func (p *Pilot) RunningSeries() *metrics.Gauge { return p.runningN }

// ScheduledSeries exposes the cumulative scheduling trajectory (Fig 5 blue
// line's integral).
func (p *Pilot) ScheduledSeries() *metrics.Counter { return p.schedCount }

// LaunchedSeries exposes the cumulative launch trajectory.
func (p *Pilot) LaunchedSeries() *metrics.Counter { return p.launchCount }

// BusyNodesSeries exposes the busy-node trajectory for utilization plots.
func (p *Pilot) BusyNodesSeries() *metrics.Gauge { return p.busyNodes }

// FreeNodes returns the number of idle, healthy nodes in the allocation.
func (p *Pilot) FreeNodes() int { return len(p.freeNodes) }

// Release ends the pilot and returns the allocation.
func (p *Pilot) Release() {
	if p.state == Done {
		return
	}
	p.state = Done
	if p.alloc != nil {
		p.alloc.Release()
	}
}

func (p *Pilot) onGranted(a *rm.BatchAlloc) {
	p.alloc = a
	p.startedAt = p.eng.Now()
	p.state = Bootstrapping
	p.freeNodes = append([]*cluster.Node(nil), a.Nodes...)
	p.eng.After(sim.Time(p.cfg.BootstrapSec), func() {
		p.state = Active
		p.activeAt = p.eng.Now()
		for _, fn := range p.onActive {
			fn()
		}
		p.onActive = nil
		p.pumpScheduler()
	})
}

func (p *Pilot) onExpire() {
	p.state = Done
	// Kill everything still running; pending tasks fail too.
	ids := make([]string, 0, len(p.running))
	for id := range p.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r := p.running[id]
		r.endEv.Cancel()
		p.finish(r, true, fmt.Errorf("pilot: walltime expired"))
	}
	for _, q := range append(p.queue, p.scheduled...) {
		p.fail(q, fmt.Errorf("pilot: walltime expired before task ran"))
	}
	p.queue, p.scheduled = nil, nil
}

// SubmitTask hands a task to the agent. Tasks submitted before the agent is
// active queue up and flow once bootstrapping completes.
func (p *Pilot) SubmitTask(t *Task) error {
	if p.state == Done {
		return fmt.Errorf("pilot: submit on finished pilot")
	}
	if t.Nodes <= 0 {
		return fmt.Errorf("pilot: task %s requests %d nodes", t.ID, t.Nodes)
	}
	if t.Nodes > p.cfg.Nodes {
		return fmt.Errorf("pilot: task %s requests %d nodes, pilot has %d", t.ID, t.Nodes, p.cfg.Nodes)
	}
	p.queue = append(p.queue, &pending{task: t, submittedAt: p.eng.Now()})
	if p.state == Active {
		p.pumpScheduler()
	}
	return nil
}

// pumpScheduler moves tasks from queue to scheduled at SchedRate.
func (p *Pilot) pumpScheduler() {
	if p.schedPumping || p.state != Active || len(p.queue) == 0 {
		return
	}
	p.schedPumping = true
	now := p.eng.Now()
	at := p.nextSchedFree
	if at < now {
		at = now
	}
	p.eng.At(at, func() {
		p.schedPumping = false
		if p.state != Active || len(p.queue) == 0 {
			return
		}
		q := p.queue[0]
		p.queue = p.queue[1:]
		q.scheduledAt = p.eng.Now()
		p.scheduled = append(p.scheduled, q)
		p.schedCount.Inc(p.eng.Now(), 1)
		if p.cfg.SchedRate > 0 {
			p.nextSchedFree = p.eng.Now() + sim.Time(1/p.cfg.SchedRate)
		}
		p.pumpScheduler()
		p.pumpLauncher()
	})
}

// pumpLauncher moves scheduled tasks onto free nodes at LaunchRate.
func (p *Pilot) pumpLauncher() {
	if p.launchPumping || p.state != Active || len(p.scheduled) == 0 {
		return
	}
	// Find the first scheduled task that fits the free pool (FIFO with
	// skip-over, like the agent's continuous scheduler).
	fitIdx := -1
	for i, q := range p.scheduled {
		if q.task.Nodes <= len(p.freeNodes) {
			fitIdx = i
			break
		}
	}
	if fitIdx < 0 {
		return
	}
	p.launchPumping = true
	now := p.eng.Now()
	at := p.nextLaunchFree
	if at < now {
		at = now
	}
	p.eng.At(at, func() {
		p.launchPumping = false
		if p.state != Active {
			return
		}
		// Re-find a fitting task; the pool may have changed.
		idx := -1
		for i, q := range p.scheduled {
			if q.task.Nodes <= len(p.freeNodes) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		q := p.scheduled[idx]
		p.scheduled = append(p.scheduled[:idx], p.scheduled[idx+1:]...)
		q.nodes = p.freeNodes[:q.task.Nodes]
		p.freeNodes = p.freeNodes[q.task.Nodes:]
		p.launch(q)
		if p.cfg.LaunchRate > 0 {
			p.nextLaunchFree = p.eng.Now() + sim.Time(1/p.cfg.LaunchRate)
		}
		p.pumpLauncher()
	})
}

func (p *Pilot) launch(q *pending) {
	now := p.eng.Now()
	q.launchedAt = now
	if !p.sawFirstTask {
		p.sawFirstTask = true
		p.firstTaskAt = now
	}
	p.running[q.task.ID] = q
	p.runningN.AddDelta(now, 1)
	p.busyNodes.AddDelta(now, float64(q.task.Nodes))
	p.launchCount.Inc(now, 1)
	dur := q.task.DurationSec
	if q.task.Fail && q.task.FailAfterSec > 0 {
		dur = q.task.FailAfterSec
	}
	q.endEv = p.eng.After(sim.Time(dur), func() {
		if q.task.Fail {
			p.finish(q, true, fmt.Errorf("pilot: task %s failed (application error)", q.task.ID))
			return
		}
		p.finish(q, false, nil)
	})
}

func (p *Pilot) finish(q *pending, failed bool, err error) {
	now := p.eng.Now()
	delete(p.running, q.task.ID)
	p.runningN.AddDelta(now, -1)
	p.busyNodes.AddDelta(now, -float64(q.task.Nodes))
	// Return healthy nodes to the pool.
	for _, n := range q.nodes {
		if !p.dead[n.ID] {
			p.freeNodes = append(p.freeNodes, n)
		}
	}
	if failed {
		p.failCount++
	} else {
		p.doneCount++
	}
	p.lastDoneAt = now
	res := TaskResult{
		Task:        q.task,
		SubmittedAt: q.submittedAt,
		ScheduledAt: q.scheduledAt,
		LaunchedAt:  q.launchedAt,
		FinishedAt:  now,
		Nodes:       q.nodes,
		Failed:      failed,
		Err:         err,
	}
	q.task.notifyDone(res)
	p.pumpLauncher()
	p.pumpScheduler()
}

func (p *Pilot) fail(q *pending, err error) {
	res := TaskResult{
		Task:        q.task,
		SubmittedAt: q.submittedAt,
		ScheduledAt: q.scheduledAt,
		FinishedAt:  p.eng.Now(),
		Failed:      true,
		Err:         err,
	}
	p.failCount++
	q.task.notifyDone(res)
}

func (p *Pilot) onNodeDown(n *cluster.Node) {
	if p.alloc == nil {
		return
	}
	mine := false
	for _, an := range p.alloc.Nodes {
		if an == n {
			mine = true
			break
		}
	}
	if !mine {
		return
	}
	p.dead[n.ID] = true
	// Remove from the free pool if idle.
	for i, fn := range p.freeNodes {
		if fn == n {
			p.freeNodes = append(p.freeNodes[:i], p.freeNodes[i+1:]...)
			break
		}
	}
	// Kill tasks using this node (deterministic order).
	var victims []*pending
	for _, q := range p.running {
		for _, qn := range q.nodes {
			if qn == n {
				victims = append(victims, q)
				break
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].task.ID < victims[j].task.ID })
	for _, q := range victims {
		q.endEv.Cancel()
		p.finish(q, true, fmt.Errorf("pilot: node %s failed", n.Name()))
	}
}
