package metrics

import (
	"strings"
	"testing"

	"hhcw/internal/sim"
)

func TestASCIIPlotShape(t *testing.T) {
	s := NewSeries("ramp")
	for i := 0; i <= 10; i++ {
		s.Add(sim.Time(i), float64(i*10))
	}
	out := ASCIIPlot(s, 20, 5, "ramp")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + axis + labels
	if len(lines) != 8 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "ramp") || !strings.Contains(lines[0], "max") {
		t.Fatalf("title line = %q", lines[0])
	}
	// Top row should have marks only near the right (ramp rises).
	top := lines[1]
	if strings.Count(top, "#") == 0 {
		t.Fatal("top row empty for a ramp reaching max")
	}
	if idx := strings.IndexByte(top, '#'); idx < len(top)/2 {
		t.Fatalf("ramp top marks start too early: %q", top)
	}
	// Bottom row should be mostly filled.
	bottom := lines[5]
	if strings.Count(bottom, "#") < 15 {
		t.Fatalf("bottom row too sparse: %q", bottom)
	}
}

func TestASCIIPlotDegenerate(t *testing.T) {
	if out := ASCIIPlot(NewSeries("x"), 10, 3, "empty"); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
	s := NewSeries("one")
	s.Add(5, 42)
	out := ASCIIPlot(s, 10, 3, "one")
	if !strings.Contains(out, "max 42") {
		t.Fatalf("single-point plot = %q", out)
	}
	if out := ASCIIPlot(s, 0, 3, "zw"); !strings.Contains(out, "no data") {
		t.Fatalf("zero width = %q", out)
	}
}
