package metrics

import (
	"fmt"
	"strings"

	"hhcw/internal/sim"
)

// ASCIIPlot renders a step-interpolated series as a fixed-size terminal
// chart — enough to eyeball the Fig 4/5 shapes without leaving the shell.
// width is the number of time buckets; height the number of value rows.
func ASCIIPlot(s *Series, width, height int, title string) string {
	if width <= 0 || height <= 0 || s.Len() == 0 {
		return title + ": (no data)\n"
	}
	pts := s.Points()
	t0 := pts[0].T
	t1 := pts[len(pts)-1].T
	if t1 <= t0 {
		t1 = t0 + 1
	}
	// Sample the series into buckets (time-weighted means per bucket keep
	// spikes honest).
	samples := make([]float64, width)
	maxV := 0.0
	for i := 0; i < width; i++ {
		lo := t0 + sim.Time(float64(i)*float64(t1-t0)/float64(width))
		hi := t0 + sim.Time(float64(i+1)*float64(t1-t0)/float64(width))
		samples[i] = s.TimeWeightedMean(lo, hi)
		if samples[i] > maxV {
			maxV = samples[i]
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (max %.0f)\n", title, maxV)
	for row := height; row >= 1; row-- {
		threshold := maxV * (float64(row) - 0.5) / float64(height)
		b.WriteString("  |")
		for _, v := range samples {
			if v >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   %-8s%*s\n", fmt.Sprintf("%.0fs", float64(t0)), width-8, fmt.Sprintf("%.0fs", float64(t1)))
	return b.String()
}
