package metrics

import "testing"

// BenchmarkSummarize guards the one-sort Summarize path: before quantileSorted
// it sorted the sample set once and then twice more inside Quantile (a copy +
// re-sort per order statistic).
func BenchmarkSummarize(b *testing.B) {
	values := make([]float64, 10000)
	x := 123456789
	for i := range values {
		x = x * 1103515245 % 2147483647
		values[i] = float64(x % 100000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(values)
	}
}

func BenchmarkQuantile(b *testing.B) {
	values := make([]float64, 10000)
	x := 987654321
	for i := range values {
		x = x * 1103515245 % 2147483647
		values[i] = float64(x % 100000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantile(values, 0.9)
	}
}
