package metrics

// Edge-case coverage for the aggregation primitives the sweep reducer leans
// on: empty sample sets, single samples, NaN/Inf rejection, and percentile
// interpolation at exact index boundaries.

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Dropped != 0 {
		t.Fatalf("empty: %+v", s)
	}
	if s.Min != 0 || s.Median != 0 || s.P90 != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Fatalf("empty summary has non-zero stats: %+v", s)
	}
	if s = Summarize([]float64{}); s.N != 0 {
		t.Fatalf("zero-length slice: %+v", s)
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{42.5})
	if s.N != 1 || s.Dropped != 0 {
		t.Fatalf("single: %+v", s)
	}
	for name, v := range map[string]float64{
		"min": s.Min, "median": s.Median, "p90": s.P90, "max": s.Max, "mean": s.Mean(),
	} {
		if v != 42.5 {
			t.Fatalf("%s = %v, want 42.5 (every order statistic of one sample is the sample)", name, v)
		}
	}
}

func TestSummarizeRejectsNonFinite(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3, math.Inf(1), 2, math.Inf(-1)})
	if s.N != 3 || s.Dropped != 3 {
		t.Fatalf("N=%d Dropped=%d, want 3/3", s.N, s.Dropped)
	}
	if s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("stats polluted by non-finite input: %+v", s)
	}
	if m := s.Mean(); math.IsNaN(m) || m != 2 {
		t.Fatalf("mean = %v, want 2", m)
	}
	// All-non-finite input degrades to the empty summary, not NaN.
	s = Summarize([]float64{math.NaN(), math.Inf(1)})
	if s.N != 0 || s.Dropped != 2 || s.Mean() != 0 {
		t.Fatalf("all-non-finite: %+v mean=%v", s, s.Mean())
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input reordered: %v", in)
	}
}

// Quantile at positions that land exactly on an index must return that
// element with no interpolation error; positions between indices must
// interpolate linearly.
func TestQuantileExactBoundaries(t *testing.T) {
	v := []float64{10, 20, 30, 40, 50}
	// With 5 values, pos = q*4; q = k/4 lands exactly on v[k].
	for k := 0; k <= 4; k++ {
		q := float64(k) / 4
		if got := Quantile(v, q); got != v[k] {
			t.Fatalf("Quantile(%v) = %v, want exactly %v", q, got, v[k])
		}
	}
	// Midpoint between two indices interpolates halfway.
	if got := Quantile(v, 0.125); got != 15 {
		t.Fatalf("Quantile(0.125) = %v, want 15", got)
	}
	// Out-of-range q clamps to the extremes.
	if Quantile(v, -0.5) != 10 || Quantile(v, 1.5) != 50 {
		t.Fatal("q outside [0,1] did not clamp")
	}
}

func TestSummarizeMatchesQuantileOnEvenN(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	s := Summarize(v)
	if s.Median != 2.5 {
		t.Fatalf("median of 1..4 = %v, want 2.5 (interpolated)", s.Median)
	}
	if want := Quantile(v, 0.9); s.P90 != want {
		t.Fatalf("P90 = %v, want %v", s.P90, want)
	}
}

func TestAggEmptyAndSingle(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Max() != 0 {
		t.Fatal("zero Agg must report zeros")
	}
	a.Observe(-7)
	if a.N != 1 || a.Mean() != -7 || a.Max() != -7 || a.Min != -7 {
		t.Fatalf("single observation: %+v", a)
	}
}

// TestSummarizeInPlaceEquivalence: SummarizeInPlace must produce bit-identical
// statistics to Summarize on the same input, for random mixtures of finite and
// non-finite values — it is the zero-alloc twin, not a different estimator.
func TestSummarizeInPlaceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(8) {
			case 0:
				vals[i] = math.NaN()
			case 1:
				vals[i] = math.Inf(1 - 2*rng.Intn(2))
			default:
				vals[i] = rng.NormFloat64() * 1e3
			}
		}
		want := Summarize(vals)
		got := SummarizeInPlace(append([]float64(nil), vals...))
		if got != want {
			t.Fatalf("iter %d: in-place %+v != copying %+v", iter, got, want)
		}
	}
}

// TestSummarizeInPlaceCompacts: the in-place variant reorders the caller's
// slice (finite values sorted at the front) — the documented contract.
func TestSummarizeInPlaceCompacts(t *testing.T) {
	vals := []float64{3, math.NaN(), 1, 2}
	s := SummarizeInPlace(vals)
	if s.N != 3 || s.Dropped != 1 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary: %+v", s)
	}
	for i, want := range []float64{1, 2, 3} {
		if vals[i] != want {
			t.Fatalf("prefix not compact-sorted: %v", vals)
		}
	}
}

// TestSummarizeInPlaceAllocs: the whole point — zero allocations.
func TestSummarizeInPlaceAllocs(t *testing.T) {
	vals := make([]float64, 512)
	rng := rand.New(rand.NewSource(22))
	if avg := testing.AllocsPerRun(100, func() {
		for i := range vals {
			vals[i] = rng.Float64()
		}
		SummarizeInPlace(vals)
	}); avg != 0 {
		t.Fatalf("SummarizeInPlace allocates %.1f per call, want 0", avg)
	}
}
