package metrics

import (
	"testing"

	"hhcw/internal/sim"
)

func TestSeriesAccessors(t *testing.T) {
	s := NewSeries("x")
	if s.Len() != 0 || len(s.Points()) != 0 {
		t.Fatal("empty series accessors wrong")
	}
	if (s.Last() != Point{}) {
		t.Fatal("empty Last should be zero Point")
	}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 || len(s.Points()) != 2 {
		t.Fatalf("Len/Points = %d/%d", s.Len(), len(s.Points()))
	}
	if s.Last() != (Point{T: 2, V: 20}) {
		t.Fatalf("Last = %+v", s.Last())
	}
	if s.Mean() != 15 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if NewSeries("empty").Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
	if s.Max() != 20 {
		t.Fatalf("Max = %v", s.Max())
	}
}

func TestTimeWeightedMeanDegenerate(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 5)
	if got := s.TimeWeightedMean(5, 5); got != 0 {
		t.Fatalf("zero window mean = %v", got)
	}
	if got := s.TimeWeightedMean(7, sim.Time(3)); got != 0 {
		t.Fatalf("inverted window mean = %v", got)
	}
}

func TestIntegralDegenerate(t *testing.T) {
	s := NewSeries("x")
	if s.Integral(0, 10) != 0 {
		t.Fatal("empty integral")
	}
	s.Add(0, 5)
	if s.Integral(10, 5) != 0 {
		t.Fatal("inverted integral")
	}
}

func TestAggMeanEmpty(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Max() != 0 {
		t.Fatal("empty Agg")
	}
}

func TestHumanBytesRanges(t *testing.T) {
	cases := map[float64]string{
		5e12:  "5.0TB",
		3.2e9: "3.2GB",
		45e6:  "45MB",
		7e3:   "7KB",
		12:    "12B",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%v) = %q, want %q", in, got, want)
		}
	}
}
