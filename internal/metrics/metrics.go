// Package metrics provides time-series collection and aggregation over
// virtual time: counters, gauges sampled into series, procstat-style
// per-process resource samples (CPU%, iowait%, RSS), and utilization
// integrals. It mirrors what the paper gathers with CloudWatch Agent +
// procstat (§5) and what EnTK reports as utilization (§4, Fig 4).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"hhcw/internal/sim"
)

// Point is one sample of a series.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series. Samples must be appended in
// nondecreasing time order (the sim kernel guarantees this naturally).
//
// A series normally retains every sample. Fold switches it to
// running-aggregate mode for extreme-scale runs where O(samples) retention
// is the memory hot spot: Add then maintains the exact step-integral, count,
// first/last and max instead of the sample list. Integral over the full
// recorded span (and Max, Last, Len) stay bit-identical to the retained
// form — the accumulation performs the same float additions in the same
// order — while point-level queries (Points, At, Mean, window integrals)
// become unavailable and panic.
type Series struct {
	Name   string
	points []Point

	folded bool
	n      int
	first  Point
	last   Point
	integ  float64 // exact integral of the step series over [first.T, last.T]
	maxV   float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Fold switches the series to running-aggregate mode (see Series). It must
// be called before any sample is recorded.
func (s *Series) Fold() {
	if s.folded {
		return
	}
	if len(s.points) > 0 {
		panic(fmt.Sprintf("metrics: Fold on series %q with retained samples", s.Name))
	}
	s.folded = true
}

// Folded reports whether the series is in running-aggregate mode.
func (s *Series) Folded() bool { return s.folded }

// Reset discards every recorded observation, returning the series to its
// just-constructed state while retaining the sample buffer's capacity — the
// warm-run contract: a Reset series records bit-identically to a fresh one.
// Folded-ness survives: it is construction-time configuration, not
// observation.
func (s *Series) Reset() {
	s.points = s.points[:0]
	s.n = 0
	s.first, s.last = Point{}, Point{}
	s.integ, s.maxV = 0, 0
}

// Add appends a sample. Out-of-order samples panic: they indicate a causality
// bug in the caller.
func (s *Series) Add(t sim.Time, v float64) {
	if s.folded {
		if s.n > 0 && t < s.last.T {
			panic(fmt.Sprintf("metrics: out-of-order sample on %q: %v after %v", s.Name, t, s.last.T))
		}
		if s.n == 0 {
			s.first = Point{t, v}
			s.maxV = v
		} else {
			// The term the retained Integral would add for the previous
			// sample: its value held until this one.
			s.integ += s.last.V * float64(t-s.last.T)
			if v > s.maxV {
				s.maxV = v
			}
		}
		s.last = Point{t, v}
		s.n++
		return
	}
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		panic(fmt.Sprintf("metrics: out-of-order sample on %q: %v after %v", s.Name, t, s.points[n-1].T))
	}
	if s.points == nil {
		// Live series accumulate hundreds of samples; starting at a real
		// capacity skips the first several append-doublings on the sampling
		// hot path without bloating series that never record.
		s.points = make([]Point, 0, 64)
	}
	s.points = append(s.points, Point{t, v})
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if s.folded {
		return s.n
	}
	return len(s.points)
}

// Points returns the underlying samples (not a copy; callers must not
// mutate). It panics on a folded series, which retains none.
func (s *Series) Points() []Point {
	if s.folded {
		panic(fmt.Sprintf("metrics: Points on folded series %q", s.Name))
	}
	return s.points
}

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if s.folded {
		return s.last
	}
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// At returns the value of the series at time t under step interpolation
// (value holds until the next sample). Before the first sample it returns 0.
// It panics on a folded series.
func (s *Series) At(t sim.Time) float64 {
	if s.folded {
		panic(fmt.Sprintf("metrics: At on folded series %q", s.Name))
	}
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.points[i-1].V
}

// Max returns the maximum sample value (0 if empty).
func (s *Series) Max() float64 {
	if s.folded {
		if s.n == 0 {
			return 0
		}
		return s.maxV
	}
	max := 0.0
	for i, p := range s.points {
		if i == 0 || p.V > max {
			max = p.V
		}
	}
	return max
}

// Mean returns the arithmetic mean of sample values (0 if empty). For
// time-weighted means over step series, use Integral / duration instead.
// It panics on a folded series.
func (s *Series) Mean() float64 {
	if s.folded {
		panic(fmt.Sprintf("metrics: Mean on folded series %q", s.Name))
	}
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// Integral returns the time integral of the step-interpolated series over
// [from,to]: sum of value×duration. Useful for node-seconds and core-seconds.
//
// A folded series answers only full-span queries — from at or before the
// first sample and to at or after the last — where the running accumulation
// is bit-identical to a rescan of retained points; window queries inside the
// recorded span panic, since the points they would need are gone.
func (s *Series) Integral(from, to sim.Time) float64 {
	if s.folded {
		if to <= from || s.n == 0 {
			return 0
		}
		if from > s.first.T || to < s.last.T {
			panic(fmt.Sprintf("metrics: windowed Integral [%v,%v] on folded series %q (recorded span [%v,%v])",
				from, to, s.Name, s.first.T, s.last.T))
		}
		total := s.integ
		if to > s.last.T {
			total += s.last.V * float64(to-s.last.T)
		}
		return total
	}
	if to <= from || len(s.points) == 0 {
		return 0
	}
	total := 0.0
	// Value before the first point is 0.
	for i, p := range s.points {
		start := p.T
		var end sim.Time
		if i+1 < len(s.points) {
			end = s.points[i+1].T
		} else {
			end = to
		}
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		if end > start {
			total += p.V * float64(end-start)
		}
	}
	return total
}

// TimeWeightedMean returns Integral(from,to) / (to-from).
func (s *Series) TimeWeightedMean(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return s.Integral(from, to) / float64(to-from)
}

// Counter is a monotonically increasing count that records its trajectory.
type Counter struct {
	Series
	value float64
}

// NewCounter returns a zero counter with the given series name.
func NewCounter(name string) *Counter {
	return &Counter{Series: Series{Name: name}}
}

// Inc adds delta (>=0) at time t and records the new value.
func (c *Counter) Inc(t sim.Time, delta float64) {
	if delta < 0 {
		panic("metrics: Counter.Inc with negative delta")
	}
	c.value += delta
	c.Add(t, c.value)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.value }

// Reset zeroes the count and discards the recorded trajectory (see
// Series.Reset).
func (c *Counter) Reset() {
	c.value = 0
	c.Series.Reset()
}

// Gauge is an up/down level that records its trajectory (e.g. tasks running).
type Gauge struct {
	Series
	value float64
}

// NewGauge returns a zero gauge with the given series name.
func NewGauge(name string) *Gauge {
	return &Gauge{Series: Series{Name: name}}
}

// Set records an absolute level at time t.
func (g *Gauge) Set(t sim.Time, v float64) {
	g.value = v
	g.Add(t, v)
}

// AddDelta adjusts the level by delta at time t.
func (g *Gauge) AddDelta(t sim.Time, delta float64) {
	g.Set(t, g.value+delta)
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.value }

// Reset zeroes the level and discards the recorded trajectory (see
// Series.Reset).
func (g *Gauge) Reset() {
	g.value = 0
	g.Series.Reset()
}

// Agg summarizes a set of scalar observations: the mean/max pairs the paper's
// Table 1 and Table 2 report.
type Agg struct {
	N         int
	Sum       float64
	Min, Maxv float64
}

// Observe folds one value into the aggregate.
func (a *Agg) Observe(v float64) {
	if a.N == 0 || v < a.Min {
		a.Min = v
	}
	if a.N == 0 || v > a.Maxv {
		a.Maxv = v
	}
	a.N++
	a.Sum += v
}

// Mean returns the mean of observed values (0 if none).
func (a *Agg) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// Max returns the maximum observed value (0 if none).
func (a *Agg) Max() float64 { return a.Maxv }

// ProcSample is one procstat-style observation of a running process.
type ProcSample struct {
	CPUPct    float64 // 0..100 per-instance CPU usage
	IOWaitPct float64 // 0..100 CPU iowait share
	RSSBytes  float64 // resident memory
}

// ProcStats aggregates ProcSamples for one pipeline step across executions,
// exactly the shape of the paper's Table 1 rows.
type ProcStats struct {
	Step   string
	CPU    Agg
	IOWait Agg
	RSS    Agg
}

// Observe folds one sample.
func (p *ProcStats) Observe(s ProcSample) {
	p.CPU.Observe(s.CPUPct)
	p.IOWait.Observe(s.IOWaitPct)
	p.RSS.Observe(s.RSSBytes)
}

// Summary distills a sample set into the order statistics the sweep engine
// reports per (workflow, env) cell. Non-finite inputs (NaN, ±Inf) are
// rejected before aggregation and counted in Dropped: a single poisoned
// sample must not turn a whole ensemble row into NaN.
type Summary struct {
	N                          int
	Min, Median, P90, Max, Sum float64
	// Dropped counts NaN/Inf inputs excluded from the statistics.
	Dropped int
}

// Mean returns Sum/N (0 if empty).
func (s Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Summarize computes a Summary over values. Empty (or all-non-finite) input
// yields a zero Summary with the Dropped count preserved; a single sample
// makes every order statistic that sample. The input is left untouched (it
// is copied before sorting); hot paths that own their slice should call
// SummarizeInPlace instead and skip the copy.
func Summarize(values []float64) Summary {
	buf := make([]float64, len(values))
	copy(buf, values)
	return SummarizeInPlace(buf)
}

// SummarizeInPlace is Summarize without the defensive copy: it compacts the
// finite values to the front of the slice and sorts them there, so the
// caller's slice is reordered (and truncated of non-finite values in its
// prefix). It allocates nothing — the sweep engine calls it once per cell
// metric on a reused scratch slice. The statistics are bit-identical to
// Summarize's: the fold order of Sum and the sort are unchanged.
func SummarizeInPlace(values []float64) Summary {
	var s Summary
	n := 0
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			s.Dropped++
			continue
		}
		values[n] = v
		n++
		s.Sum += v
	}
	finite := values[:n]
	s.N = n
	if n == 0 {
		return s
	}
	sort.Float64s(finite)
	s.Min = finite[0]
	s.Max = finite[n-1]
	s.Median = quantileSorted(finite, 0.5)
	s.P90 = quantileSorted(finite, 0.9)
	return s
}

// Quantile returns the q-quantile (0..1) of values using linear
// interpolation; it sorts a copy. Non-finite values (NaN, ±Inf) are dropped
// first, consistent with Summarize/SummarizeInPlace — a single NaN would
// otherwise break sort.Float64s ordering and yield a garbage quantile. An
// input with no finite values yields 0.
func Quantile(values []float64, q float64) float64 {
	v := make([]float64, 0, len(values))
	for _, x := range values {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		v = append(v, x)
	}
	sort.Float64s(v)
	return quantileSorted(v, q)
}

// quantileSorted is Quantile over already-sorted input: no copy, no re-sort.
// Summarize calls it on its sorted sample set so each cell pays for one sort
// instead of three.
func quantileSorted(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}

// HumanBytes formats a byte count like "2.8GB" as the paper's tables do.
func HumanBytes(b float64) string {
	switch {
	case b >= 1e12:
		return fmt.Sprintf("%.1fTB", b/1e12)
	case b >= 1e9:
		return fmt.Sprintf("%.1fGB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.0fMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.0fKB", b/1e3)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// HumanSeconds formats a duration in seconds like the paper's tables
// ("9.6min", "36s", "2.7h").
func HumanSeconds(s float64) string {
	switch {
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	case s >= 60:
		return fmt.Sprintf("%.1fmin", s/60)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}
