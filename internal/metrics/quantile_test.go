package metrics

import (
	"math"
	"testing"
)

// Quantile must drop non-finite values exactly like Summarize does: one NaN
// in the input breaks sort.Float64s ordering and silently corrupts every
// quantile downstream (the per-tenant p99 SLO path hits this directly).
func TestQuantileDropsNaN(t *testing.T) {
	clean := []float64{1, 2, 3, 4, 5}
	dirty := []float64{math.NaN(), 1, 2, math.NaN(), 3, 4, 5, math.NaN()}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		want := Quantile(clean, q)
		if got := Quantile(dirty, q); got != want {
			t.Fatalf("q=%v: NaN-polluted input gave %v, clean gave %v", q, got, want)
		}
	}
}

func TestQuantileAllNonFinite(t *testing.T) {
	for _, in := range [][]float64{
		{math.NaN()},
		{math.NaN(), math.NaN(), math.NaN()},
		{math.Inf(1), math.Inf(-1)},
		nil,
	} {
		if got := Quantile(in, 0.5); got != 0 {
			t.Fatalf("Quantile(%v, 0.5) = %v, want 0 for no finite values", in, got)
		}
	}
}

func TestQuantileDropsInf(t *testing.T) {
	in := []float64{math.Inf(-1), 10, 20, 30, math.Inf(1)}
	if got := Quantile(in, 0.5); got != 20 {
		t.Fatalf("median with ±Inf = %v, want 20", got)
	}
	if got := Quantile(in, 1); got != 30 {
		t.Fatalf("max with +Inf = %v, want 30 (Inf must be dropped, not returned)", got)
	}
	if got := Quantile(in, 0); got != 10 {
		t.Fatalf("min with -Inf = %v, want 10 (-Inf must be dropped, not returned)", got)
	}
}

// Consistency pin: Quantile and SummarizeInPlace agree on the same polluted
// sample for the quantiles Summary exposes.
func TestQuantileMatchesSummarizeOnPolluted(t *testing.T) {
	in := []float64{math.NaN(), 5, 1, math.Inf(1), 3, 2, 4, math.Inf(-1)}
	med := Quantile(in, 0.5)
	p90 := Quantile(in, 0.9)
	s := SummarizeInPlace(append([]float64(nil), in...))
	if med != s.Median || p90 != s.P90 {
		t.Fatalf("Quantile (med=%v p90=%v) disagrees with Summarize (med=%v p90=%v)",
			med, p90, s.Median, s.P90)
	}
	if s.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", s.Dropped)
	}
}
