package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"hhcw/internal/sim"
)

func TestSeriesAtStepInterpolation(t *testing.T) {
	s := NewSeries("x")
	s.Add(1, 10)
	s.Add(3, 20)
	cases := []struct {
		t    sim.Time
		want float64
	}{{0, 0}, {1, 10}, {2, 10}, {3, 20}, {100, 20}}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	s := NewSeries("x")
	s.Add(5, 1)
	s.Add(4, 1)
}

func TestSeriesIntegral(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 2) // 2 until t=10
	s.Add(10, 4)
	got := s.Integral(0, 20)
	want := 2*10 + 4*10.0
	if got != want {
		t.Fatalf("Integral = %v, want %v", got, want)
	}
	// Partial window.
	if got := s.Integral(5, 15); got != 2*5+4*5.0 {
		t.Fatalf("partial Integral = %v", got)
	}
	// Before first sample counts as 0.
	s2 := NewSeries("y")
	s2.Add(10, 1)
	if got := s2.Integral(0, 20); got != 10 {
		t.Fatalf("leading-zero Integral = %v, want 10", got)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 100)
	s.Add(50, 0)
	if got := s.TimeWeightedMean(0, 100); got != 50 {
		t.Fatalf("TimeWeightedMean = %v, want 50", got)
	}
}

func TestCounterMonotone(t *testing.T) {
	c := NewCounter("done")
	c.Inc(1, 1)
	c.Inc(2, 3)
	if c.Value() != 4 {
		t.Fatalf("Value = %v, want 4", c.Value())
	}
	if c.Last().V != 4 {
		t.Fatalf("Last = %v", c.Last())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Inc did not panic")
		}
	}()
	c.Inc(3, -1)
}

func TestGaugeDelta(t *testing.T) {
	g := NewGauge("running")
	g.AddDelta(1, 5)
	g.AddDelta(2, -2)
	if g.Value() != 3 {
		t.Fatalf("Value = %v, want 3", g.Value())
	}
	if g.Max() != 5 {
		t.Fatalf("Max = %v, want 5", g.Max())
	}
}

func TestAggMeanMax(t *testing.T) {
	var a Agg
	for _, v := range []float64{1, 2, 3, 10} {
		a.Observe(v)
	}
	if a.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", a.Mean())
	}
	if a.Max() != 10 {
		t.Fatalf("Max = %v, want 10", a.Max())
	}
	if a.Min != 1 {
		t.Fatalf("Min = %v, want 1", a.Min)
	}
}

func TestProcStats(t *testing.T) {
	p := ProcStats{Step: "salmon"}
	p.Observe(ProcSample{CPUPct: 90, IOWaitPct: 1, RSSBytes: 8e8})
	p.Observe(ProcSample{CPUPct: 98, IOWaitPct: 2, RSSBytes: 2.8e9})
	if p.CPU.Mean() != 94 {
		t.Fatalf("CPU mean = %v", p.CPU.Mean())
	}
	if p.RSS.Max() != 2.8e9 {
		t.Fatalf("RSS max = %v", p.RSS.Max())
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	if got := Quantile(v, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(v, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(v, 0.5); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	// Input must not be mutated.
	if v[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestHumanFormats(t *testing.T) {
	if got := HumanBytes(2.8e9); got != "2.8GB" {
		t.Fatalf("HumanBytes = %q", got)
	}
	if got := HumanBytes(760e6); got != "760MB" {
		t.Fatalf("HumanBytes = %q", got)
	}
	if got := HumanSeconds(9.6 * 60); got != "9.6min" {
		t.Fatalf("HumanSeconds = %q", got)
	}
	if got := HumanSeconds(36); got != "36s" {
		t.Fatalf("HumanSeconds = %q", got)
	}
	if got := HumanSeconds(2.7 * 3600); got != "2.7h" {
		t.Fatalf("HumanSeconds = %q", got)
	}
}

// Property: Integral over [a,b] + [b,c] == Integral over [a,c].
func TestIntegralAdditive(t *testing.T) {
	f := func(vals []uint8) bool {
		s := NewSeries("p")
		for i, v := range vals {
			s.Add(sim.Time(i), float64(v))
		}
		n := sim.Time(len(vals))
		mid := n / 2
		whole := s.Integral(0, n)
		split := s.Integral(0, mid) + s.Integral(mid, n)
		return math.Abs(whole-split) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, r := range raw {
			v[i] = float64(r)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			x := Quantile(v, q)
			if x < prev-1e-9 {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
