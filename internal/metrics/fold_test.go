package metrics

import (
	"math"
	"testing"

	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// Folded series must answer full-span Integral, Max, Last and Len
// bit-identically to a retained series fed the same samples — that identity
// is what lets the streaming run path fold cluster/manager series without
// perturbing utilization fingerprints.
func TestFoldedSeriesMatchesRetained(t *testing.T) {
	rng := randx.New(11)
	for trial := 0; trial < 50; trial++ {
		full := NewSeries("full")
		folded := NewSeries("folded")
		folded.Fold()
		n := 1 + rng.Intn(200)
		now := sim.Time(0)
		for i := 0; i < n; i++ {
			// Mix strictly increasing steps with exact repeats: repeated
			// timestamps exercise the zero-width terms the retained
			// Integral skips and the folded one adds as 0.0.
			if rng.Intn(4) != 0 {
				now += sim.Time(rng.Float64() * 3)
			}
			v := math.Floor(rng.Float64()*64) - 8 // include negatives
			full.Add(now, v)
			folded.Add(now, v)
		}
		end := now + sim.Time(rng.Float64()*5)
		gotI, wantI := folded.Integral(0, end), full.Integral(0, end)
		if gotI != wantI {
			t.Fatalf("trial %d: Integral(0,%v): folded %v != retained %v", trial, end, gotI, wantI)
		}
		if got, want := folded.Integral(0, full.Last().T), full.Integral(0, full.Last().T); got != want {
			t.Fatalf("trial %d: Integral to last sample: folded %v != retained %v", trial, got, want)
		}
		if folded.Max() != full.Max() {
			t.Fatalf("trial %d: Max: folded %v != retained %v", trial, folded.Max(), full.Max())
		}
		if folded.Last() != full.Last() {
			t.Fatalf("trial %d: Last: folded %v != retained %v", trial, folded.Last(), full.Last())
		}
		if folded.Len() != full.Len() {
			t.Fatalf("trial %d: Len: folded %d != retained %d", trial, folded.Len(), full.Len())
		}
	}
}

func TestFoldedSeriesGuards(t *testing.T) {
	s := NewSeries("g")
	s.Fold()
	s.Fold() // idempotent
	if !s.Folded() {
		t.Fatal("Folded() false after Fold")
	}
	if s.Integral(0, 10) != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Fatal("empty folded series must read as zero")
	}
	s.Add(1, 2)
	s.Add(3, 4)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on folded series did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Points", func() { s.Points() })
	mustPanic("At", func() { s.At(2) })
	mustPanic("Mean", func() { s.Mean() })
	mustPanic("windowed Integral", func() { s.Integral(2, 10) })
	mustPanic("truncated Integral", func() { s.Integral(0, 2) })

	r := NewSeries("r")
	r.Add(1, 1)
	mustPanic("Fold after samples", func() { r.Fold() })

	// Counter/Gauge route through the folded series unchanged.
	c := NewCounter("c")
	c.Fold()
	c.Inc(1, 2)
	c.Inc(2, 3)
	if c.Value() != 5 || c.Max() != 5 || c.Len() != 2 {
		t.Fatalf("folded counter: value %v max %v len %d", c.Value(), c.Max(), c.Len())
	}
}
