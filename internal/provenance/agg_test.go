package provenance

import (
	"fmt"
	"math"
	"testing"

	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// The per-name running aggregates replaced full record rescans. Feeding a
// random record stream and recomputing both MeanRefRuntime and StatsByName
// from scratch pins the equivalence — bit-identical for the mean, since the
// aggregate accumulates in the same insertion order a rescan would.

func rescanMeanRef(records []TaskRecord, name string) (float64, bool) {
	sum, n := 0.0, 0
	for _, r := range records {
		if r.Name != name || r.Failed {
			continue
		}
		sf := r.SpeedFactor
		if sf <= 0 {
			sf = 1
		}
		sum += float64(r.Runtime()) * sf
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func TestRunningAggregatesMatchRescan(t *testing.T) {
	r := randx.New(17)
	s := NewStore()
	var records []TaskRecord
	names := []string{"align", "sort", "call", "merge"}
	for i := 0; i < 500; i++ {
		start := sim.Time(r.Float64() * 1e4)
		rec := TaskRecord{
			WorkflowID:  fmt.Sprintf("wf%d", r.Intn(3)),
			TaskID:      "t",
			Name:        names[r.Intn(len(names))],
			StartedAt:   start,
			FinishedAt:  start + sim.Time(1+r.Float64()*300),
			SpeedFactor: []float64{0, 1, 1.4, 2.0}[r.Intn(4)],
			PeakMem:     r.Float64() * 8e9,
			Failed:      r.Bernoulli(0.2),
		}
		s.AddTask(rec)
		records = append(records, rec)

		if i%50 != 0 && i != 499 {
			continue
		}
		for _, name := range names {
			wantMean, wantOK := rescanMeanRef(records, name)
			gotMean, gotOK := s.MeanRefRuntime(name)
			if wantOK != gotOK || gotMean != wantMean {
				t.Fatalf("after %d records, MeanRefRuntime(%s) = (%v,%v), rescan (%v,%v)",
					i+1, name, gotMean, gotOK, wantMean, wantOK)
			}
		}
	}

	// StatsByName vs a rescan of the final stream.
	for _, st := range s.StatsByName() {
		execs, fails, ok := 0, 0, 0
		sumRT, sumMem, maxRT := 0.0, 0.0, 0.0
		for _, r := range records {
			if r.Name != st.Name {
				continue
			}
			execs++
			if r.Failed {
				fails++
				continue
			}
			ok++
			rt := float64(r.Runtime())
			sumRT += rt
			sumMem += r.PeakMem
			if rt > maxRT {
				maxRT = rt
			}
		}
		if st.Executions != execs || st.Failures != fails || st.MaxRuntime != maxRT {
			t.Fatalf("%s: counts (%d,%d,max %v) vs rescan (%d,%d,max %v)",
				st.Name, st.Executions, st.Failures, st.MaxRuntime, execs, fails, maxRT)
		}
		wantMeanRT, wantMeanMem := 0.0, 0.0
		if ok > 0 {
			wantMeanRT, wantMeanMem = sumRT/float64(ok), sumMem/float64(ok)
		}
		if math.Abs(st.MeanRuntime-wantMeanRT) > 0 || math.Abs(st.MeanPeakMem-wantMeanMem) > 0 {
			t.Fatalf("%s: means (%v,%v) vs rescan (%v,%v)",
				st.Name, st.MeanRuntime, st.MeanPeakMem, wantMeanRT, wantMeanMem)
		}
	}
}
