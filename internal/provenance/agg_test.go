package provenance

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"hhcw/internal/dag"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// The per-name running aggregates replaced full record rescans. Feeding a
// random record stream and recomputing both MeanRefRuntime and StatsByName
// from scratch pins the equivalence — bit-identical for the mean, since the
// aggregate accumulates in the same insertion order a rescan would.

func rescanMeanRef(records []TaskRecord, name string) (float64, bool) {
	sum, n := 0.0, 0
	for _, r := range records {
		if r.Name != name || r.Failed {
			continue
		}
		sf := r.SpeedFactor
		if sf <= 0 {
			sf = 1
		}
		sum += float64(r.Runtime()) * sf
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

func TestRunningAggregatesMatchRescan(t *testing.T) {
	r := randx.New(17)
	s := NewStore()
	var records []TaskRecord
	names := []string{"align", "sort", "call", "merge"}
	for i := 0; i < 500; i++ {
		start := sim.Time(r.Float64() * 1e4)
		rec := TaskRecord{
			WorkflowID:  fmt.Sprintf("wf%d", r.Intn(3)),
			TaskID:      "t",
			Name:        names[r.Intn(len(names))],
			StartedAt:   start,
			FinishedAt:  start + sim.Time(1+r.Float64()*300),
			SpeedFactor: []float64{0, 1, 1.4, 2.0}[r.Intn(4)],
			PeakMem:     r.Float64() * 8e9,
			Failed:      r.Bernoulli(0.2),
		}
		s.AddTask(rec)
		records = append(records, rec)

		if i%50 != 0 && i != 499 {
			continue
		}
		for _, name := range names {
			wantMean, wantOK := rescanMeanRef(records, name)
			gotMean, gotOK := s.MeanRefRuntime(name)
			if wantOK != gotOK || gotMean != wantMean {
				t.Fatalf("after %d records, MeanRefRuntime(%s) = (%v,%v), rescan (%v,%v)",
					i+1, name, gotMean, gotOK, wantMean, wantOK)
			}
		}
	}

	// StatsByName vs a rescan of the final stream.
	for _, st := range s.StatsByName() {
		execs, fails, ok := 0, 0, 0
		sumRT, sumMem, maxRT := 0.0, 0.0, 0.0
		for _, r := range records {
			if r.Name != st.Name {
				continue
			}
			execs++
			if r.Failed {
				fails++
				continue
			}
			ok++
			rt := float64(r.Runtime())
			sumRT += rt
			sumMem += r.PeakMem
			if rt > maxRT {
				maxRT = rt
			}
		}
		if st.Executions != execs || st.Failures != fails || st.MaxRuntime != maxRT {
			t.Fatalf("%s: counts (%d,%d,max %v) vs rescan (%d,%d,max %v)",
				st.Name, st.Executions, st.Failures, st.MaxRuntime, execs, fails, maxRT)
		}
		wantMeanRT, wantMeanMem := 0.0, 0.0
		if ok > 0 {
			wantMeanRT, wantMeanMem = sumRT/float64(ok), sumMem/float64(ok)
		}
		if math.Abs(st.MeanRuntime-wantMeanRT) > 0 || math.Abs(st.MeanPeakMem-wantMeanMem) > 0 {
			t.Fatalf("%s: means (%v,%v) vs rescan (%v,%v)",
				st.Name, st.MeanRuntime, st.MeanPeakMem, wantMeanRT, wantMeanMem)
		}
	}
}

func TestStatsByTenant(t *testing.T) {
	s := NewStore()
	s.SetTenantResolver(func(wfID string) string {
		if i := strings.IndexByte(wfID, '/'); i >= 0 {
			return wfID[:i]
		}
		return wfID
	})
	add := func(wf string, cores int, sub, start, fin float64, failed bool, node string) {
		s.AddTask(TaskRecord{
			WorkflowID: wf, TaskID: "t", Name: "p", Attempt: 1, Cores: cores,
			SubmittedAt: sim.Time(sub), StartedAt: sim.Time(start), FinishedAt: sim.Time(fin),
			Failed: failed, Node: node,
		})
	}
	add("alice/wf-0", 2, 0, 5, 15, false, "n0") // 2 cores × 10 s, wait 5
	add("alice/wf-1", 1, 0, 3, 4, false, "n1")  // 1 core × 1 s, wait 3
	add("bob/wf-0", 4, 0, 1, 2, true, "n0")     // failed but started: wait counts, core-sec doesn't
	add("bob/wf-1", 4, 0, 9, 9, true, "")       // pending abort: no node, no wait
	got := s.StatsByTenant()
	if len(got) != 2 {
		t.Fatalf("tenants = %+v", got)
	}
	alice, bob := got[0], got[1]
	if alice.Tenant != "alice" || alice.Executions != 2 || alice.Failures != 0 ||
		alice.Started != 2 || alice.QueueWaitSum != 8 || alice.CoreSeconds != 21 {
		t.Fatalf("alice = %+v", alice)
	}
	if bob.Tenant != "bob" || bob.Executions != 2 || bob.Failures != 2 ||
		bob.Started != 1 || bob.QueueWaitSum != 1 || bob.CoreSeconds != 0 {
		t.Fatalf("bob = %+v", bob)
	}
}

func TestStatsByTenantCompactMode(t *testing.T) {
	s := NewStore()
	s.SetTenantResolver(func(string) string { return "solo" })
	s.SetCompact(true)
	for i := 0; i < 100; i++ {
		s.AddTask(TaskRecord{WorkflowID: "solo/wf", TaskID: "t", Name: "p",
			StartedAt: 1, FinishedAt: 2, Cores: 1, Node: "n"})
	}
	if s.Len() != 0 {
		t.Fatalf("compact store retained %d records", s.Len())
	}
	st := s.StatsByTenant()
	if len(st) != 1 || st[0].Executions != 100 || st[0].CoreSeconds != 100 {
		t.Fatalf("compact tenant stats = %+v", st)
	}
}

func TestReleaseWorkflowKeepsRecords(t *testing.T) {
	s := NewStore()
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a", Name: "a"})
	s.RegisterWorkflow("wf", w)
	s.AddTask(TaskRecord{WorkflowID: "wf", TaskID: "a", Name: "a", Node: "n"})
	s.ReleaseWorkflow("wf")
	if _, err := s.Lineage("wf", "a"); err == nil {
		t.Fatal("lineage resolvable after release")
	}
	if len(s.ByWorkflow("wf")) != 1 {
		t.Fatal("records dropped by release")
	}
	s.ReleaseWorkflow("ghost") // no-op
}
