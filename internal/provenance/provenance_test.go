package provenance

import (
	"encoding/json"
	"testing"

	"hhcw/internal/dag"
	"hhcw/internal/sim"
)

func rec(wf string, task dag.TaskID, name string, start, end sim.Time, failed bool) TaskRecord {
	return TaskRecord{
		WorkflowID: wf, TaskID: task, Name: name,
		StartedAt: start, FinishedAt: end,
		Node: "n-0001", MachineType: "a", SpeedFactor: 1,
		InputBytes: 1e6, OutputBytes: 2e6, PeakMem: 1e9,
		Failed: failed,
	}
}

func TestAddAndQuery(t *testing.T) {
	s := NewStore()
	s.AddTask(rec("wf1", "a", "salmon", 0, 10, false))
	s.AddTask(rec("wf1", "b", "salmon", 10, 30, false))
	s.AddTask(rec("wf2", "a", "prefetch", 0, 5, true))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := len(s.ByWorkflow("wf1")); got != 2 {
		t.Fatalf("ByWorkflow(wf1) = %d", got)
	}
	if got := len(s.ByTaskName("salmon")); got != 2 {
		t.Fatalf("ByTaskName(salmon) = %d", got)
	}
	if got := len(s.ByWorkflow("missing")); got != 0 {
		t.Fatalf("ByWorkflow(missing) = %d", got)
	}
}

func TestRuntime(t *testing.T) {
	r := rec("w", "a", "x", 5, 17, false)
	if r.Runtime() != 12 {
		t.Fatalf("Runtime = %v", r.Runtime())
	}
}

func TestObservationsSkipFailures(t *testing.T) {
	s := NewStore()
	s.AddTask(rec("w", "a", "x", 0, 10, false))
	s.AddTask(rec("w", "b", "x", 0, 10, true))
	obs := s.Observations()
	if len(obs) != 1 {
		t.Fatalf("Observations = %d, want 1 (failures excluded)", len(obs))
	}
	if obs[0].RuntimeSec != 10 || obs[0].TaskName != "x" {
		t.Fatalf("obs = %+v", obs[0])
	}
}

func TestLineage(t *testing.T) {
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a"})
	w.Add(&dag.Task{ID: "b", Deps: []dag.TaskID{"a"}})
	s := NewStore()
	s.RegisterWorkflow("w", w)
	s.AddTask(rec("w", "a", "x", 0, 10, false))
	s.AddTask(rec("w", "b", "y", 10, 20, false))

	up, err := s.Lineage("w", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || up[0].TaskID != "a" {
		t.Fatalf("lineage = %+v", up)
	}
	if _, err := s.Lineage("ghost", "a"); err == nil {
		t.Fatal("unknown workflow accepted")
	}
	if _, err := s.Lineage("w", "ghost"); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestStatsByName(t *testing.T) {
	s := NewStore()
	s.AddTask(rec("w", "a", "salmon", 0, 10, false))
	s.AddTask(rec("w", "b", "salmon", 0, 30, false))
	s.AddTask(rec("w", "c", "salmon", 0, 5, true))
	s.AddTask(rec("w", "d", "deseq2", 0, 2, false))
	stats := s.StatsByName()
	if len(stats) != 2 {
		t.Fatalf("stats = %d names", len(stats))
	}
	// Sorted: deseq2 then salmon.
	if stats[0].Name != "deseq2" || stats[1].Name != "salmon" {
		t.Fatalf("order = %v, %v", stats[0].Name, stats[1].Name)
	}
	sal := stats[1]
	if sal.Executions != 3 || sal.Failures != 1 {
		t.Fatalf("salmon executions=%d failures=%d", sal.Executions, sal.Failures)
	}
	if sal.MeanRuntime != 20 || sal.MaxRuntime != 30 {
		t.Fatalf("salmon mean=%v max=%v", sal.MeanRuntime, sal.MaxRuntime)
	}
}

func TestNodeEvents(t *testing.T) {
	s := NewStore()
	s.AddNodeEvent(NodeEvent{At: 5, Node: "n1", Kind: "down"})
	s.AddNodeEvent(NodeEvent{At: 9, Node: "n1", Kind: "up"})
	ev := s.NodeEvents()
	if len(ev) != 2 || ev[0].Kind != "down" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestExportPROV(t *testing.T) {
	w := dag.New("w")
	w.Add(&dag.Task{ID: "a"})
	w.Add(&dag.Task{ID: "b", Deps: []dag.TaskID{"a"}})
	s := NewStore()
	s.RegisterWorkflow("w", w)
	s.AddTask(rec("w", "a", "x", 0, 10, false))
	s.AddTask(rec("w", "b", "y", 10, 20, false))
	s.AddNodeEvent(NodeEvent{At: 3, Node: "n1", Kind: "down"})

	raw, err := s.ExportPROV()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	for _, key := range []string{"activity", "entity", "wasGeneratedBy", "nodeTraces", "workflows"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("export missing %q section", key)
		}
	}
	var acts map[string]any
	if err := json.Unmarshal(doc["activity"], &acts); err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 {
		t.Fatalf("activities = %d, want 2", len(acts))
	}
}

func TestAllReturnsCopy(t *testing.T) {
	s := NewStore()
	s.AddTask(rec("w", "a", "x", 0, 10, false))
	all := s.All()
	all[0].WorkflowID = "mutated"
	if s.All()[0].WorkflowID != "w" {
		t.Fatal("All exposed internal storage")
	}
}
