// Package provenance implements the centralized provenance store §3.3
// argues the CWS should be: because the CWSI sits between every WMS and the
// resource manager, it sees both the workflow structure (from the WMS) and
// the node-level traces (from the resource manager), and can persist them
// uniformly across engines. Records feed the predictors (internal/predict)
// and export to a W3C-PROV-flavoured JSON document.
package provenance

import (
	"encoding/json"
	"fmt"
	"sort"

	"hhcw/internal/dag"
	"hhcw/internal/predict"
	"hhcw/internal/sim"
)

// TaskRecord is one task execution attempt as seen by the CWS.
type TaskRecord struct {
	WorkflowID string
	TaskID     dag.TaskID
	Name       string // process/tool name
	Attempt    int

	SubmittedAt sim.Time
	StartedAt   sim.Time
	FinishedAt  sim.Time

	Node        string
	MachineType string
	SpeedFactor float64

	Cores       int
	MemRequest  float64
	PeakMem     float64
	InputBytes  float64
	OutputBytes float64

	Failed bool
	Error  string

	// Recovery-policy metadata, set via AnnotateRetry on failed attempts the
	// policy decided to resubmit: the backoff delay chosen before the next
	// attempt and a rendering of the policy that chose it.
	RetryDelaySec float64
	RetryPolicy   string

	Params map[string]string
}

// Runtime returns the execution wall time.
func (r TaskRecord) Runtime() sim.Time { return r.FinishedAt - r.StartedAt }

// NodeEvent is a resource-manager-side trace entry (node up/down), the data
// "the resource manager traces" that a WMS alone cannot see (§3.3).
type NodeEvent struct {
	At   sim.Time
	Node string
	Kind string // "down" | "up"
}

// refAgg is the running reference-runtime aggregate for one process name:
// speed-normalized runtimes of successful executions, accumulated in
// insertion order so the mean is bit-identical to a rescan.
type refAgg struct {
	sum float64
	n   int
}

// statAgg is the running StatsByName aggregate for one process name,
// maintained incrementally so per-name summaries cost O(1) per query
// instead of a full record scan.
type statAgg struct {
	execs    int
	failures int
	ok       int
	sumRT    float64
	sumMem   float64
	maxRT    float64
}

// Store is the central provenance store.
type Store struct {
	records    []TaskRecord
	byWorkflow map[string][]int
	byName     map[string][]int
	refByName  map[string]refAgg
	statByName map[string]statAgg
	nodeEvents []NodeEvent
	workflows  map[string]*dag.Workflow
	// Tenant dimension (see SetTenantResolver): running per-tenant
	// aggregates, O(tenants) regardless of record retention.
	tenantOf func(wfID string) string
	byTenant map[string]tenantAgg
	// compact drops record retention: AddTask folds into the running
	// aggregates and discards the record, keeping memory O(process names)
	// at any task count (see SetCompact).
	compact bool
	folded  int
	// observer, when set, sees every record AddTask ingests (see
	// SetTaskObserver).
	observer func(TaskRecord)
	// freeIdx recycles the byWorkflow/byName index slices across Reset:
	// warm sessions replay the same workflow shapes, so steady-state
	// indexing reuses harvested capacity instead of regrowing from nil.
	freeIdx [][]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		// A store that records anything records at least a workflow's worth
		// of tasks; skip the first several append-doublings.
		records:    make([]TaskRecord, 0, 64),
		byWorkflow: map[string][]int{},
		byName:     map[string][]int{},
		refByName:  map[string]refAgg{},
		statByName: map[string]statAgg{},
		workflows:  map[string]*dag.Workflow{},
	}
}

// Reset empties the store in place: records, indexes, aggregates, node
// events, and registered workflows are all cleared with their backing
// capacity retained, and the per-run configuration (tenant resolver, compact
// mode) reverts to the just-constructed default. The task observer survives:
// it is construction-time wiring (the CWS trains predictors through it) and
// warm sessions must not re-register it.
func (s *Store) Reset() {
	clear(s.records)
	s.records = s.records[:0]
	for _, v := range s.byWorkflow {
		s.freeIdx = append(s.freeIdx, v[:0])
	}
	for _, v := range s.byName {
		s.freeIdx = append(s.freeIdx, v[:0])
	}
	clear(s.byWorkflow)
	clear(s.byName)
	clear(s.refByName)
	clear(s.statByName)
	s.nodeEvents = s.nodeEvents[:0]
	clear(s.workflows)
	s.tenantOf = nil
	clear(s.byTenant)
	s.compact = false
	s.folded = 0
}

// RegisterWorkflow stores workflow structure for lineage queries.
func (s *Store) RegisterWorkflow(id string, w *dag.Workflow) {
	s.workflows[id] = w
}

// ReleaseWorkflow drops the registered workflow structure for id — the
// lineage index for a workflow an open-system service has finished with.
// Task records and aggregates are untouched; Lineage for the id starts
// failing with "not registered". A service admitting workflows per arrival
// pairs each RegisterWorkflow with a release so structure memory stays
// O(in-flight), not O(arrivals).
func (s *Store) ReleaseWorkflow(id string) { delete(s.workflows, id) }

// SetTenantResolver installs the workflow-ID→tenant mapping that turns on
// the per-tenant running aggregates. Must be set before the records it
// should classify arrive; records added while no resolver is installed are
// not attributed. The service layer names workflows "tenant/wf-N" and
// resolves by prefix.
func (s *Store) SetTenantResolver(fn func(wfID string) string) {
	s.tenantOf = fn
	if s.byTenant == nil {
		s.byTenant = map[string]tenantAgg{}
	}
}

// tenantAgg is the per-tenant running aggregate, folded on every AddTask so
// it survives compact mode unchanged.
type tenantAgg struct {
	execs    int
	failures int
	started  int
	waitSum  float64
	coreSec  float64
}

// TenantStats summarizes one tenant's footprint across all its workflows.
type TenantStats struct {
	Tenant       string
	Executions   int     // terminal attempts observed
	Failures     int     // failed attempts (incl. pending aborts)
	Started      int     // attempts that reached a node
	QueueWaitSum float64 // Σ (StartedAt−SubmittedAt) over started attempts
	CoreSeconds  float64 // Σ cores×runtime over successful attempts
}

// StatsByTenant returns per-tenant summaries sorted by tenant ID, read from
// the running aggregates — O(tenants), valid in compact mode.
func (s *Store) StatsByTenant() []TenantStats {
	tenants := make([]string, 0, len(s.byTenant))
	for t := range s.byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	out := make([]TenantStats, 0, len(tenants))
	for _, t := range tenants {
		a := s.byTenant[t]
		out = append(out, TenantStats{
			Tenant: t, Executions: a.execs, Failures: a.failures,
			Started: a.started, QueueWaitSum: a.waitSum, CoreSeconds: a.coreSec,
		})
	}
	return out
}

// SetCompact switches record retention on or off. With compact on, AddTask
// folds every record into the running aggregates (StatsByName,
// MeanRefRuntime) and drops it, so a million-task streaming run keeps
// provenance memory bounded by the number of distinct process names.
// Record-level queries (All, ByWorkflow, Lineage, Observations, ExportPROV,
// AnnotateRetry) see only records added while retention was on.
func (s *Store) SetCompact(on bool) { s.compact = on }

// Compact reports whether record retention is off.
func (s *Store) Compact() bool { return s.compact }

// Folded returns the number of records folded into aggregates without being
// retained. Len() + Folded() is the total executions observed.
func (s *Store) Folded() int { return s.folded }

// SetTaskObserver installs a hook invoked with every record AddTask
// ingests, whether or not the record is retained (compact mode folds and
// drops records, but the observer still sees each one exactly once). This
// is the §3.4 provenance→prediction feed: online predictors subscribe here
// and train as attempts complete, instead of rescanning Observations().
func (s *Store) SetTaskObserver(fn func(TaskRecord)) { s.observer = fn }

// AddTask appends a task execution record (unless the store is compact) and
// folds it into the per-name running aggregates.
func (s *Store) AddTask(r TaskRecord) {
	if s.observer != nil {
		s.observer(r)
	}
	if s.compact {
		s.folded++
	} else {
		idx := len(s.records)
		s.records = append(s.records, r)
		wfIdx, ok := s.byWorkflow[r.WorkflowID]
		if !ok {
			wfIdx = s.popIdx()
		}
		s.byWorkflow[r.WorkflowID] = append(wfIdx, idx)
		nameIdx, ok := s.byName[r.Name]
		if !ok {
			nameIdx = s.popIdx()
		}
		s.byName[r.Name] = append(nameIdx, idx)
	}

	if s.tenantOf != nil {
		t := s.tenantOf(r.WorkflowID)
		a := s.byTenant[t]
		a.execs++
		if r.Failed {
			a.failures++
		}
		if r.Node != "" { // pending aborts never reached a node
			a.started++
			a.waitSum += float64(r.StartedAt - r.SubmittedAt)
			if !r.Failed {
				a.coreSec += float64(r.Cores) * float64(r.Runtime())
			}
		}
		s.byTenant[t] = a
	}

	st := s.statByName[r.Name]
	st.execs++
	if r.Failed {
		st.failures++
		s.statByName[r.Name] = st
		return
	}
	rt := float64(r.Runtime())
	st.ok++
	st.sumRT += rt
	st.sumMem += r.PeakMem
	if rt > st.maxRT {
		st.maxRT = rt
	}
	s.statByName[r.Name] = st

	sf := r.SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	a := s.refByName[r.Name]
	a.sum += float64(r.Runtime()) * sf
	a.n++
	s.refByName[r.Name] = a
}

// popIdx takes a zero-length, capacity-bearing index slice from the Reset
// harvest, or nil when the pool is dry (a fresh key on a cold store).
func (s *Store) popIdx() []int {
	if n := len(s.freeIdx); n > 0 {
		sl := s.freeIdx[n-1]
		s.freeIdx = s.freeIdx[:n-1]
		return sl
	}
	return nil
}

// MeanRefRuntime returns the running mean of the speed-normalized runtimes
// of name's successful executions (ok=false before any). Accumulation order
// matches insertion order, so the result is bit-identical to rescanning the
// records — but O(1) per call.
func (s *Store) MeanRefRuntime(name string) (float64, bool) {
	a := s.refByName[name]
	if a.n == 0 {
		return 0, false
	}
	return a.sum / float64(a.n), true
}

// AddNodeEvent appends a node trace entry.
func (s *Store) AddNodeEvent(e NodeEvent) { s.nodeEvents = append(s.nodeEvents, e) }

// AnnotateRetry attaches recovery metadata to the most recent failed record
// of (wfID, taskID): the policy chose to resubmit that attempt after
// delaySec of backoff. It reports whether a matching record was found.
func (s *Store) AnnotateRetry(wfID string, taskID dag.TaskID, delaySec float64, policy string) bool {
	idx := s.byWorkflow[wfID]
	for i := len(idx) - 1; i >= 0; i-- {
		r := &s.records[idx[i]]
		if r.TaskID == taskID && r.Failed {
			r.RetryDelaySec = delaySec
			r.RetryPolicy = policy
			return true
		}
	}
	return false
}

// Len returns the number of task records.
func (s *Store) Len() int { return len(s.records) }

// All returns a copy of all task records.
func (s *Store) All() []TaskRecord { return append([]TaskRecord(nil), s.records...) }

// ByWorkflow returns records for a workflow in insertion order.
func (s *Store) ByWorkflow(id string) []TaskRecord {
	return s.collect(s.byWorkflow[id])
}

// ByTaskName returns records for a process name in insertion order.
func (s *Store) ByTaskName(name string) []TaskRecord {
	return s.collect(s.byName[name])
}

func (s *Store) collect(idx []int) []TaskRecord {
	out := make([]TaskRecord, len(idx))
	for i, j := range idx {
		out[i] = s.records[j]
	}
	return out
}

// NodeEvents returns all node trace entries.
func (s *Store) NodeEvents() []NodeEvent { return append([]NodeEvent(nil), s.nodeEvents...) }

// Observations converts successful records into predictor training data —
// the §3.4 pipeline from provenance to runtime prediction.
func (s *Store) Observations() []predict.Observation {
	var out []predict.Observation
	for _, r := range s.records {
		if r.Failed {
			continue
		}
		out = append(out, predict.Observation{
			TaskName:    r.Name,
			InputBytes:  r.InputBytes,
			RuntimeSec:  float64(r.Runtime()),
			PeakMem:     r.PeakMem,
			MachineName: r.MachineType,
			SpeedFactor: r.SpeedFactor,
		})
	}
	return out
}

// Lineage returns the upstream task records that produced inputs for taskID
// in workflow wfID (direct dependencies only), using the registered
// workflow structure.
func (s *Store) Lineage(wfID string, taskID dag.TaskID) ([]TaskRecord, error) {
	w := s.workflows[wfID]
	if w == nil {
		return nil, fmt.Errorf("provenance: workflow %q not registered", wfID)
	}
	t := w.Task(taskID)
	if t == nil {
		return nil, fmt.Errorf("provenance: task %q not in workflow %q", taskID, wfID)
	}
	deps := map[dag.TaskID]bool{}
	for _, d := range t.Deps {
		deps[d] = true
	}
	var out []TaskRecord
	for _, r := range s.ByWorkflow(wfID) {
		if deps[r.TaskID] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Stats summarizes one process name across executions.
type Stats struct {
	Name        string
	Executions  int
	Failures    int
	MeanRuntime float64
	MaxRuntime  float64
	MeanPeakMem float64
}

// StatsByName returns per-process summaries sorted by name, read from the
// running aggregates — O(names), not O(records).
func (s *Store) StatsByName() []Stats {
	names := make([]string, 0, len(s.statByName))
	for n := range s.statByName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Stats, 0, len(names))
	for _, n := range names {
		a := s.statByName[n]
		st := Stats{
			Name:       n,
			Executions: a.execs,
			Failures:   a.failures,
			MaxRuntime: a.maxRT,
		}
		if a.ok > 0 {
			st.MeanRuntime = a.sumRT / float64(a.ok)
			st.MeanPeakMem = a.sumMem / float64(a.ok)
		}
		out = append(out, st)
	}
	return out
}

// provDoc is the W3C-PROV-flavoured export schema.
type provDoc struct {
	Prefix     map[string]string    `json:"prefix"`
	Activity   map[string]provItem  `json:"activity"`
	Entity     map[string]provItem  `json:"entity"`
	WasGenBy   map[string]provRel   `json:"wasGeneratedBy"`
	Used       map[string]provRel   `json:"used"`
	NodeTraces []map[string]any     `json:"nodeTraces"`
	Workflows  map[string][]provDep `json:"workflows"`
}

type provItem map[string]any

type provRel struct {
	Activity string `json:"prov:activity"`
	Entity   string `json:"prov:entity"`
}

type provDep struct {
	Task string   `json:"task"`
	Deps []string `json:"deps"`
}

// ExportPROV serializes the store to a W3C-PROV-flavoured JSON document so
// provenance "will be available across different WMS" (§3.3).
func (s *Store) ExportPROV() ([]byte, error) {
	doc := provDoc{
		Prefix:    map[string]string{"cws": "https://example.org/cws#"},
		Activity:  map[string]provItem{},
		Entity:    map[string]provItem{},
		WasGenBy:  map[string]provRel{},
		Used:      map[string]provRel{},
		Workflows: map[string][]provDep{},
	}
	for i, r := range s.records {
		aid := fmt.Sprintf("cws:%s/%s#%d", r.WorkflowID, r.TaskID, r.Attempt)
		item := provItem{
			"cws:name":       r.Name,
			"prov:startTime": float64(r.StartedAt),
			"prov:endTime":   float64(r.FinishedAt),
			"cws:node":       r.Node,
			"cws:failed":     r.Failed,
		}
		if r.RetryPolicy != "" {
			item["cws:retryDelaySec"] = r.RetryDelaySec
			item["cws:retryPolicy"] = r.RetryPolicy
		}
		doc.Activity[aid] = item
		eid := fmt.Sprintf("cws:data/%s/%s", r.WorkflowID, r.TaskID)
		doc.Entity[eid] = provItem{"cws:bytes": r.OutputBytes}
		doc.WasGenBy[fmt.Sprintf("g%d", i)] = provRel{Activity: aid, Entity: eid}
	}
	for _, e := range s.nodeEvents {
		doc.NodeTraces = append(doc.NodeTraces, map[string]any{
			"at": float64(e.At), "node": e.Node, "kind": e.Kind,
		})
	}
	for id, w := range s.workflows {
		for _, t := range w.Tasks() {
			deps := make([]string, len(t.Deps))
			for i, d := range t.Deps {
				deps[i] = string(d)
			}
			doc.Workflows[id] = append(doc.Workflows[id], provDep{Task: string(t.ID), Deps: deps})
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}
