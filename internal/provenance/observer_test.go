package provenance

import "testing"

// TestTaskObserver pins the provenance→predict feed contract: the observer
// sees every ingested record exactly once, in insertion order, in retained
// and compact mode alike.
func TestTaskObserver(t *testing.T) {
	s := NewStore()
	var seen []TaskRecord
	s.SetTaskObserver(func(r TaskRecord) { seen = append(seen, r) })

	s.AddTask(TaskRecord{WorkflowID: "wf", TaskID: "a", Name: "map", StartedAt: 0, FinishedAt: 10})
	s.SetCompact(true)
	s.AddTask(TaskRecord{WorkflowID: "wf", TaskID: "b", Name: "reduce", Failed: true})

	if len(seen) != 2 {
		t.Fatalf("observer saw %d records, want 2", len(seen))
	}
	if seen[0].TaskID != "a" || seen[1].TaskID != "b" {
		t.Fatalf("observer order wrong: %v, %v", seen[0].TaskID, seen[1].TaskID)
	}
	if !seen[1].Failed {
		t.Fatal("failed record not delivered as failed")
	}
	if s.Len() != 1 || s.Folded() != 1 {
		t.Fatalf("retention changed by observer: len=%d folded=%d", s.Len(), s.Folded())
	}
}
