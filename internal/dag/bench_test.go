package dag

import (
	"testing"

	"hhcw/internal/randx"
)

func benchWorkflow() *Workflow {
	return RandomLayered(randx.New(1), 20, 50, GenOpts{})
}

// BenchmarkTopoOrder measures topological sorting of a ~700-task DAG.
func BenchmarkTopoOrder(b *testing.B) {
	w := benchWorkflow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpwardRanks measures HEFT rank computation (run at every CWSI
// workflow registration).
func BenchmarkUpwardRanks(b *testing.B) {
	w := benchWorkflow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.UpwardRanks(NominalDur)
	}
}

// BenchmarkCriticalPath measures critical-path extraction.
func BenchmarkCriticalPath(b *testing.B) {
	w := benchWorkflow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = w.CriticalPath(NominalDur)
	}
}

// BenchmarkGenerateMontage measures workflow generation itself.
func BenchmarkGenerateMontage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = MontageLike(randx.New(int64(i)), 64, GenOpts{})
	}
}
