package dag

import (
	"strings"
	"testing"
	"testing/quick"

	"hhcw/internal/randx"
)

func lin(ids ...string) *Workflow {
	w := New("lin")
	var prev TaskID
	for _, id := range ids {
		var deps []TaskID
		if prev != "" {
			deps = []TaskID{prev}
		}
		w.Add(&Task{ID: TaskID(id), NominalDur: 1, Deps: deps})
		prev = TaskID(id)
	}
	return w
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	w := New("w")
	w.Add(&Task{ID: "a"})
	w.Add(&Task{ID: "a"})
}

func TestAddEmptyIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ID did not panic")
		}
	}()
	New("w").Add(&Task{})
}

func TestAddDefaultsCores(t *testing.T) {
	w := New("w")
	task := w.Add(&Task{ID: "a"})
	if task.Cores != 1 {
		t.Fatalf("Cores = %d, want 1", task.Cores)
	}
}

func TestValidateUnknownDep(t *testing.T) {
	w := New("w")
	w.Add(&Task{ID: "a", Deps: []TaskID{"ghost"}})
	if err := w.Validate(); err == nil {
		t.Fatal("unknown dep passed validation")
	}
}

func TestValidateCycle(t *testing.T) {
	w := New("w")
	w.Add(&Task{ID: "a", Deps: []TaskID{"b"}})
	w.Add(&Task{ID: "b", Deps: []TaskID{"a"}})
	if err := w.Validate(); err == nil {
		t.Fatal("cycle passed validation")
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	rng := randx.New(1)
	w := RandomLayered(rng, 5, 6, GenOpts{})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	topo, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[TaskID]int{}
	for i, task := range topo {
		pos[task.ID] = i
	}
	for _, task := range w.Tasks() {
		for _, d := range task.Deps {
			if pos[d] >= pos[task.ID] {
				t.Fatalf("dep %s after %s in topo order", d, task.ID)
			}
		}
	}
}

func TestRootsLeavesChildrenParents(t *testing.T) {
	w := Diamond(randx.New(2), GenOpts{})
	if got := len(w.Roots()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
	if got := len(w.Leaves()); got != 1 {
		t.Fatalf("leaves = %d, want 1", got)
	}
	if got := len(w.Children("src")); got != 2 {
		t.Fatalf("children(src) = %d, want 2", got)
	}
	if got := len(w.Parents("sink")); got != 2 {
		t.Fatalf("parents(sink) = %d, want 2", got)
	}
	if w.EdgeCount() != 4 {
		t.Fatalf("EdgeCount = %d, want 4", w.EdgeCount())
	}
}

func TestLevels(t *testing.T) {
	w := Diamond(randx.New(3), GenOpts{})
	levels := w.Levels()
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if len(levels[1]) != 2 {
		t.Fatalf("middle level = %d tasks, want 2", len(levels[1]))
	}
}

func TestCriticalPathChain(t *testing.T) {
	w := lin("a", "b", "c")
	length, path := w.CriticalPath(NominalDur)
	if length != 3 {
		t.Fatalf("critical path length = %v, want 3", length)
	}
	if len(path) != 3 || path[0] != "a" || path[2] != "c" {
		t.Fatalf("path = %v", path)
	}
}

func TestCriticalPathPicksLongerBranch(t *testing.T) {
	w := New("w")
	w.Add(&Task{ID: "s", NominalDur: 1})
	w.Add(&Task{ID: "short", NominalDur: 1, Deps: []TaskID{"s"}})
	w.Add(&Task{ID: "long", NominalDur: 10, Deps: []TaskID{"s"}})
	w.Add(&Task{ID: "t", NominalDur: 1, Deps: []TaskID{"short", "long"}})
	length, path := w.CriticalPath(NominalDur)
	if length != 12 {
		t.Fatalf("length = %v, want 12", length)
	}
	found := false
	for _, id := range path {
		if id == "long" {
			found = true
		}
	}
	if !found {
		t.Fatalf("critical path %v skips the long branch", path)
	}
}

func TestUpwardRanks(t *testing.T) {
	w := lin("a", "b", "c")
	ranks := w.UpwardRanks(NominalDur)
	if ranks["a"] != 3 || ranks["b"] != 2 || ranks["c"] != 1 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestDescendants(t *testing.T) {
	w := Diamond(randx.New(4), GenOpts{})
	d := w.Descendants("src")
	if len(d) != 3 {
		t.Fatalf("descendants(src) = %v", d)
	}
	if len(w.Descendants("sink")) != 0 {
		t.Fatal("sink should have no descendants")
	}
}

func TestTotalWork(t *testing.T) {
	w := New("w")
	w.Add(&Task{ID: "a", NominalDur: 10, Cores: 2})
	w.Add(&Task{ID: "b", NominalDur: 5, Cores: 1})
	if got := w.TotalWork(); got != 25 {
		t.Fatalf("TotalWork = %v, want 25", got)
	}
}

func TestGeneratorsValid(t *testing.T) {
	rng := randx.New(7)
	wfs := []*Workflow{
		Chain(rng, 10, GenOpts{}),
		ForkJoin(rng, 3, 8, GenOpts{}),
		Diamond(rng, GenOpts{}),
		RandomLayered(rng, 6, 10, GenOpts{}),
		MontageLike(rng, 12, GenOpts{}),
		EpigenomicsLike(rng, 4, 5, GenOpts{}),
		RNASeqLike(rng, 9, GenOpts{}),
	}
	for _, w := range wfs {
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", w.Name, err)
		}
		if w.Len() == 0 {
			t.Errorf("%s is empty", w.Name)
		}
		for _, task := range w.Tasks() {
			if task.NominalDur <= 0 {
				t.Errorf("%s/%s has non-positive duration", w.Name, task.ID)
			}
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	rng := randx.New(8)
	fj := ForkJoin(rng, 2, 5, GenOpts{})
	if fj.Len() != 12 { // 2 × (5 fan + 1 merge)
		t.Fatalf("forkjoin size = %d, want 12", fj.Len())
	}
	rs := RNASeqLike(rng, 3, GenOpts{})
	if rs.Len() != 12 { // 3 samples × 4 steps
		t.Fatalf("rnaseq size = %d, want 12", rs.Len())
	}
	if got := len(rs.Roots()); got != 3 {
		t.Fatalf("rnaseq roots = %d, want 3", got)
	}
	m := MontageLike(rng, 6, GenOpts{})
	if got := len(m.Roots()); got != 6 {
		t.Fatalf("montage roots = %d, want 6", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := MontageLike(randx.New(11), 8, GenOpts{})
	b := MontageLike(randx.New(11), 8, GenOpts{})
	ta, tb := a.Tasks(), b.Tasks()
	if len(ta) != len(tb) {
		t.Fatal("different sizes from same seed")
	}
	for i := range ta {
		if ta[i].NominalDur != tb[i].NominalDur || ta[i].ID != tb[i].ID {
			t.Fatalf("task %d differs between same-seed runs", i)
		}
	}
}

// Property: the critical path never exceeds the sum of all durations and is
// at least the maximum single duration.
func TestCriticalPathBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		w := RandomLayered(rng, 4, 5, GenOpts{})
		cp, _ := w.CriticalPath(NominalDur)
		sum, max := 0.0, 0.0
		for _, task := range w.Tasks() {
			sum += task.NominalDur
			if task.NominalDur > max {
				max = task.NominalDur
			}
		}
		return cp <= sum+1e-9 && cp >= max-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: upward rank of any task >= its own duration, and rank of a
// parent > rank of each child.
func TestUpwardRankMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := randx.New(seed)
		w := RandomLayered(rng, 4, 5, GenOpts{})
		ranks := w.UpwardRanks(NominalDur)
		for _, task := range w.Tasks() {
			if ranks[task.ID] < task.NominalDur-1e-9 {
				return false
			}
			for _, c := range w.Children(task.ID) {
				if ranks[task.ID] <= ranks[c.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestToDOT(t *testing.T) {
	w := Diamond(randx.New(5), GenOpts{})
	dot := w.ToDOT()
	for _, want := range []string{"digraph", `"src" -> "left"`, `"left" -> "sink"`, "rankdir"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if dot != Diamond(randx.New(5), GenOpts{}).ToDOT() {
		t.Fatal("ToDOT nondeterministic")
	}
}
