package dag

import (
	"fmt"

	"hhcw/internal/randx"
)

// Generators for the workflow shapes the CWSI evaluation sweeps over. Each
// produces tasks whose nominal durations and data sizes are drawn from
// lognormal distributions (the canonical model for scientific task runtimes),
// so workflow-aware strategies have real variance to exploit.

// GenOpts tunes the random generators.
type GenOpts struct {
	MeanDur  float64 // mean nominal duration per task (seconds)
	CVDur    float64 // coefficient of variation of durations
	MeanData float64 // mean output size (bytes)
	Cores    int     // cores per task (default 1)
	MaxCores int     // if >0, cores drawn uniformly in [Cores, MaxCores]
	MeanMem  float64 // mean memory request (bytes)
}

func (o *GenOpts) defaults() {
	if o.MeanDur == 0 {
		o.MeanDur = 120
	}
	if o.CVDur == 0 {
		o.CVDur = 0.5
	}
	if o.MeanData == 0 {
		o.MeanData = 1e9
	}
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.MeanMem == 0 {
		o.MeanMem = 4e9
	}
}

// arena slab-allocates one generated workflow's Task structs and dependency
// lists, collapsing the per-task heap traffic of construction into two
// amortized buffers. Task pointers are taken exactly once, immediately after
// each append, and dependency slices are returned with clamped capacity, so
// slab growth never aliases live data.
type arena struct {
	tasks []Task
	deps  []TaskID
}

func newArena(taskHint, depHint int) *arena {
	return &arena{
		tasks: make([]Task, 0, taskHint),
		deps:  make([]TaskID, 0, depHint),
	}
}

// task hands out the next slab slot.
func (a *arena) task() *Task {
	a.tasks = append(a.tasks, Task{})
	return &a.tasks[len(a.tasks)-1]
}

// deps1 and deps2 carve single- and double-element dependency lists out of
// the shared slab. markDeps/takeDeps bracket variable-length lists built by
// appending to a.deps directly.
func (a *arena) deps1(x TaskID) []TaskID {
	n := len(a.deps)
	a.deps = append(a.deps, x)
	return a.deps[n : n+1 : n+1]
}

func (a *arena) deps2(x, y TaskID) []TaskID {
	n := len(a.deps)
	a.deps = append(a.deps, x, y)
	return a.deps[n : n+2 : n+2]
}

func (a *arena) markDeps() int { return len(a.deps) }

func (a *arena) takeDeps(mark int) []TaskID {
	if len(a.deps) == mark {
		return nil
	}
	return a.deps[mark:len(a.deps):len(a.deps)]
}

// fill samples one task into t. The sampling order (cores, duration, memory,
// I/O fraction, input size, output size) is load-bearing: it fixes the RNG
// stream, and with it every golden fingerprint downstream.
func (o GenOpts) fill(t *Task, rng *randx.Source, id string, name string, deps []TaskID) *Task {
	cores := o.Cores
	if o.MaxCores > o.Cores {
		cores = o.Cores + rng.Intn(o.MaxCores-o.Cores+1)
	}
	dur := rng.LogNormalMeanCV(o.MeanDur, o.CVDur)
	// Data sizes correlate with runtime (longer tasks process more data),
	// which is what makes size-aware scheduling (§3.5's "file size"
	// strategy) informative in practice.
	sizeScale := dur / o.MeanDur
	*t = Task{
		ID:          TaskID(id),
		Name:        name,
		Cores:       cores,
		MemBytes:    rng.LogNormalMeanCV(o.MeanMem, 0.3),
		NominalDur:  dur,
		IOFrac:      rng.Uniform(0.05, 0.3),
		InputBytes:  rng.LogNormalMeanCV(o.MeanData*sizeScale, 0.2),
		OutputBytes: rng.LogNormalMeanCV(o.MeanData*sizeScale, 0.2),
		Deps:        deps,
	}
	return t
}

func (o GenOpts) task(rng *randx.Source, id string, name string, deps ...TaskID) *Task {
	return o.fill(&Task{}, rng, id, name, deps)
}

// Chain generates a linear pipeline of n tasks.
func Chain(rng *randx.Source, n int, opts GenOpts) *Workflow {
	opts.defaults()
	w := NewSized(fmt.Sprintf("chain-%d", n), n)
	ar := newArena(n, n)
	var prev TaskID
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%03d", i)
		var deps []TaskID
		if prev != "" {
			deps = ar.deps1(prev)
		}
		w.Add(opts.fill(ar.task(), rng, id, fmt.Sprintf("step%d", i), deps))
		prev = TaskID(id)
	}
	return w
}

// ForkJoin generates stages of `width` parallel tasks separated by single
// merge tasks — the "merge point" shape §3.2 says makes Airflow's big-worker
// strategy wasteful.
func ForkJoin(rng *randx.Source, stages, width int, opts GenOpts) *Workflow {
	opts.defaults()
	n := stages * (width + 1)
	w := NewSized(fmt.Sprintf("forkjoin-%dx%d", stages, width), n)
	ar := newArena(n, 2*stages*width)
	prev := TaskID("")
	for s := 0; s < stages; s++ {
		stageIDs := make([]TaskID, 0, width)
		for i := 0; i < width; i++ {
			id := fmt.Sprintf("s%02d-w%03d", s, i)
			var deps []TaskID
			if prev != "" {
				deps = ar.deps1(prev)
			}
			w.Add(opts.fill(ar.task(), rng, id, fmt.Sprintf("fan%d", s), deps))
			stageIDs = append(stageIDs, TaskID(id))
		}
		mid := fmt.Sprintf("s%02d-merge", s)
		w.Add(opts.fill(ar.task(), rng, mid, fmt.Sprintf("merge%d", s), stageIDs))
		prev = TaskID(mid)
	}
	return w
}

// Diamond generates the 4-task diamond: one source, two branches, one sink.
func Diamond(rng *randx.Source, opts GenOpts) *Workflow {
	opts.defaults()
	w := NewSized("diamond", 4)
	ar := newArena(4, 4)
	w.Add(opts.fill(ar.task(), rng, "src", "src", nil))
	w.Add(opts.fill(ar.task(), rng, "left", "branch", ar.deps1("src")))
	w.Add(opts.fill(ar.task(), rng, "right", "branch", ar.deps1("src")))
	w.Add(opts.fill(ar.task(), rng, "sink", "sink", ar.deps2("left", "right")))
	return w
}

// RandomLayered generates `levels` layers of up to `width` tasks; each task
// depends on 1..3 random tasks of the previous layer. This is the standard
// synthetic-DAG family used in scheduling studies.
func RandomLayered(rng *randx.Source, levels, width int, opts GenOpts) *Workflow {
	opts.defaults()
	w := NewSized(fmt.Sprintf("layered-%dx%d", levels, width), levels*width)
	ar := newArena(levels*width, 3*levels*width)
	var prevLayer []TaskID
	for l := 0; l < levels; l++ {
		n := 1 + rng.Intn(width)
		if l == 0 {
			n = width // full fan-out at the roots
		}
		layer := make([]TaskID, 0, n)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("l%02d-t%03d", l, i)
			mark := ar.markDeps()
			if len(prevLayer) > 0 {
				k := 1 + rng.Intn(3)
				if k > len(prevLayer) {
					k = len(prevLayer)
				}
				perm := rng.Perm(len(prevLayer))
				for j := 0; j < k; j++ {
					ar.deps = append(ar.deps, prevLayer[perm[j]])
				}
			}
			w.Add(opts.fill(ar.task(), rng, id, fmt.Sprintf("proc%d", l), ar.takeDeps(mark)))
			layer = append(layer, TaskID(id))
		}
		prevLayer = layer
	}
	return w
}

// MontageLike generates the Montage astronomy workflow shape: project fan,
// overlap-pair fit, concat, background correction fan, gather, tile.
func MontageLike(rng *randx.Source, width int, opts GenOpts) *Workflow {
	opts.defaults()
	w := NewSized(fmt.Sprintf("montage-%d", width), 3*width+4)
	ar := newArena(3*width+4, 4*width+2)
	projs := make([]TaskID, 0, width)
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("mProject-%03d", i)
		w.Add(opts.fill(ar.task(), rng, id, "mProject", nil))
		projs = append(projs, TaskID(id))
	}
	diffs := make([]TaskID, 0, width)
	for i := 0; i+1 < width; i++ {
		id := fmt.Sprintf("mDiffFit-%03d", i)
		w.Add(opts.fill(ar.task(), rng, id, "mDiffFit", ar.deps2(projs[i], projs[i+1])))
		diffs = append(diffs, TaskID(id))
	}
	w.Add(opts.fill(ar.task(), rng, "mConcatFit", "mConcatFit", diffs))
	w.Add(opts.fill(ar.task(), rng, "mBgModel", "mBgModel", ar.deps1("mConcatFit")))
	bgs := make([]TaskID, 0, width)
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("mBackground-%03d", i)
		w.Add(opts.fill(ar.task(), rng, id, "mBackground", ar.deps2(projs[i], "mBgModel")))
		bgs = append(bgs, TaskID(id))
	}
	w.Add(opts.fill(ar.task(), rng, "mImgtbl", "mImgtbl", bgs))
	w.Add(opts.fill(ar.task(), rng, "mAdd", "mAdd", ar.deps1("mImgtbl")))
	w.Add(opts.fill(ar.task(), rng, "mViewer", "mViewer", ar.deps1("mAdd")))
	return w
}

// EpigenomicsLike generates the Epigenomics bioinformatics shape: per-lane
// linear pipelines that merge into a global final chain.
func EpigenomicsLike(rng *randx.Source, lanes, depth int, opts GenOpts) *Workflow {
	opts.defaults()
	n := lanes*depth + 3
	w := NewSized(fmt.Sprintf("epigenomics-%dx%d", lanes, depth), n)
	ar := newArena(n, lanes*depth+2)
	tails := make([]TaskID, 0, lanes)
	for l := 0; l < lanes; l++ {
		var prev TaskID
		for d := 0; d < depth; d++ {
			id := fmt.Sprintf("lane%02d-s%02d", l, d)
			var deps []TaskID
			if prev != "" {
				deps = ar.deps1(prev)
			}
			w.Add(opts.fill(ar.task(), rng, id, fmt.Sprintf("stage%d", d), deps))
			prev = TaskID(id)
		}
		tails = append(tails, prev)
	}
	w.Add(opts.fill(ar.task(), rng, "merge", "mergeSort", tails))
	w.Add(opts.fill(ar.task(), rng, "map", "map", ar.deps1("merge")))
	w.Add(opts.fill(ar.task(), rng, "filter", "pileup", ar.deps1("map")))
	return w
}

// RNASeqLike generates a transcriptomics-atlas-shaped workflow: `samples`
// independent 4-step pipelines (prefetch → fasterq → salmon → deseq2), as in
// §5's "multiple independent pipelines processed in parallel".
func RNASeqLike(rng *randx.Source, samples int, opts GenOpts) *Workflow {
	opts.defaults()
	w := NewSized(fmt.Sprintf("rnaseq-%d", samples), samples*4)
	ar := newArena(samples*4, samples*3)
	steps := []string{"prefetch", "fasterq", "salmon", "deseq2"}
	for s := 0; s < samples; s++ {
		var prev TaskID
		for _, st := range steps {
			id := fmt.Sprintf("%s-%04d", st, s)
			var deps []TaskID
			if prev != "" {
				deps = ar.deps1(prev)
			}
			w.Add(opts.fill(ar.task(), rng, id, st, deps))
			prev = TaskID(id)
		}
	}
	return w
}
