package dag

import (
	"fmt"

	"hhcw/internal/randx"
)

// Generators for the workflow shapes the CWSI evaluation sweeps over. Each
// produces tasks whose nominal durations and data sizes are drawn from
// lognormal distributions (the canonical model for scientific task runtimes),
// so workflow-aware strategies have real variance to exploit.

// GenOpts tunes the random generators.
type GenOpts struct {
	MeanDur  float64 // mean nominal duration per task (seconds)
	CVDur    float64 // coefficient of variation of durations
	MeanData float64 // mean output size (bytes)
	Cores    int     // cores per task (default 1)
	MaxCores int     // if >0, cores drawn uniformly in [Cores, MaxCores]
	MeanMem  float64 // mean memory request (bytes)
}

func (o *GenOpts) defaults() {
	if o.MeanDur == 0 {
		o.MeanDur = 120
	}
	if o.CVDur == 0 {
		o.CVDur = 0.5
	}
	if o.MeanData == 0 {
		o.MeanData = 1e9
	}
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.MeanMem == 0 {
		o.MeanMem = 4e9
	}
}

func (o GenOpts) task(rng *randx.Source, id string, name string, deps ...TaskID) *Task {
	cores := o.Cores
	if o.MaxCores > o.Cores {
		cores = o.Cores + rng.Intn(o.MaxCores-o.Cores+1)
	}
	dur := rng.LogNormalMeanCV(o.MeanDur, o.CVDur)
	// Data sizes correlate with runtime (longer tasks process more data),
	// which is what makes size-aware scheduling (§3.5's "file size"
	// strategy) informative in practice.
	sizeScale := dur / o.MeanDur
	return &Task{
		ID:          TaskID(id),
		Name:        name,
		Cores:       cores,
		MemBytes:    rng.LogNormalMeanCV(o.MeanMem, 0.3),
		NominalDur:  dur,
		IOFrac:      rng.Uniform(0.05, 0.3),
		InputBytes:  rng.LogNormalMeanCV(o.MeanData*sizeScale, 0.2),
		OutputBytes: rng.LogNormalMeanCV(o.MeanData*sizeScale, 0.2),
		Deps:        deps,
	}
}

// Chain generates a linear pipeline of n tasks.
func Chain(rng *randx.Source, n int, opts GenOpts) *Workflow {
	opts.defaults()
	w := New(fmt.Sprintf("chain-%d", n))
	var prev TaskID
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%03d", i)
		var deps []TaskID
		if prev != "" {
			deps = []TaskID{prev}
		}
		w.Add(opts.task(rng, id, fmt.Sprintf("step%d", i), deps...))
		prev = TaskID(id)
	}
	return w
}

// ForkJoin generates stages of `width` parallel tasks separated by single
// merge tasks — the "merge point" shape §3.2 says makes Airflow's big-worker
// strategy wasteful.
func ForkJoin(rng *randx.Source, stages, width int, opts GenOpts) *Workflow {
	opts.defaults()
	w := New(fmt.Sprintf("forkjoin-%dx%d", stages, width))
	prev := TaskID("")
	for s := 0; s < stages; s++ {
		var stageIDs []TaskID
		for i := 0; i < width; i++ {
			id := fmt.Sprintf("s%02d-w%03d", s, i)
			var deps []TaskID
			if prev != "" {
				deps = []TaskID{prev}
			}
			w.Add(opts.task(rng, id, fmt.Sprintf("fan%d", s), deps...))
			stageIDs = append(stageIDs, TaskID(id))
		}
		mid := fmt.Sprintf("s%02d-merge", s)
		w.Add(opts.task(rng, mid, fmt.Sprintf("merge%d", s), stageIDs...))
		prev = TaskID(mid)
	}
	return w
}

// Diamond generates the 4-task diamond: one source, two branches, one sink.
func Diamond(rng *randx.Source, opts GenOpts) *Workflow {
	opts.defaults()
	w := New("diamond")
	w.Add(opts.task(rng, "src", "src"))
	w.Add(opts.task(rng, "left", "branch", "src"))
	w.Add(opts.task(rng, "right", "branch", "src"))
	w.Add(opts.task(rng, "sink", "sink", "left", "right"))
	return w
}

// RandomLayered generates `levels` layers of up to `width` tasks; each task
// depends on 1..3 random tasks of the previous layer. This is the standard
// synthetic-DAG family used in scheduling studies.
func RandomLayered(rng *randx.Source, levels, width int, opts GenOpts) *Workflow {
	opts.defaults()
	w := New(fmt.Sprintf("layered-%dx%d", levels, width))
	var prevLayer []TaskID
	for l := 0; l < levels; l++ {
		n := 1 + rng.Intn(width)
		if l == 0 {
			n = width // full fan-out at the roots
		}
		var layer []TaskID
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("l%02d-t%03d", l, i)
			var deps []TaskID
			if len(prevLayer) > 0 {
				k := 1 + rng.Intn(3)
				if k > len(prevLayer) {
					k = len(prevLayer)
				}
				perm := rng.Perm(len(prevLayer))
				for j := 0; j < k; j++ {
					deps = append(deps, prevLayer[perm[j]])
				}
			}
			w.Add(opts.task(rng, id, fmt.Sprintf("proc%d", l), deps...))
			layer = append(layer, TaskID(id))
		}
		prevLayer = layer
	}
	return w
}

// MontageLike generates the Montage astronomy workflow shape: project fan,
// overlap-pair fit, concat, background correction fan, gather, tile.
func MontageLike(rng *randx.Source, width int, opts GenOpts) *Workflow {
	opts.defaults()
	w := New(fmt.Sprintf("montage-%d", width))
	var projs []TaskID
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("mProject-%03d", i)
		w.Add(opts.task(rng, id, "mProject"))
		projs = append(projs, TaskID(id))
	}
	var diffs []TaskID
	for i := 0; i+1 < width; i++ {
		id := fmt.Sprintf("mDiffFit-%03d", i)
		w.Add(opts.task(rng, id, "mDiffFit", projs[i], projs[i+1]))
		diffs = append(diffs, TaskID(id))
	}
	w.Add(opts.task(rng, "mConcatFit", "mConcatFit", diffs...))
	w.Add(opts.task(rng, "mBgModel", "mBgModel", TaskID("mConcatFit")))
	var bgs []TaskID
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("mBackground-%03d", i)
		w.Add(opts.task(rng, id, "mBackground", projs[i], TaskID("mBgModel")))
		bgs = append(bgs, TaskID(id))
	}
	w.Add(opts.task(rng, "mImgtbl", "mImgtbl", bgs...))
	w.Add(opts.task(rng, "mAdd", "mAdd", TaskID("mImgtbl")))
	w.Add(opts.task(rng, "mViewer", "mViewer", TaskID("mAdd")))
	return w
}

// EpigenomicsLike generates the Epigenomics bioinformatics shape: per-lane
// linear pipelines that merge into a global final chain.
func EpigenomicsLike(rng *randx.Source, lanes, depth int, opts GenOpts) *Workflow {
	opts.defaults()
	w := New(fmt.Sprintf("epigenomics-%dx%d", lanes, depth))
	var tails []TaskID
	for l := 0; l < lanes; l++ {
		var prev TaskID
		for d := 0; d < depth; d++ {
			id := fmt.Sprintf("lane%02d-s%02d", l, d)
			var deps []TaskID
			if prev != "" {
				deps = []TaskID{prev}
			}
			w.Add(opts.task(rng, id, fmt.Sprintf("stage%d", d), deps...))
			prev = TaskID(id)
		}
		tails = append(tails, prev)
	}
	w.Add(opts.task(rng, "merge", "mergeSort", tails...))
	w.Add(opts.task(rng, "map", "map", TaskID("merge")))
	w.Add(opts.task(rng, "filter", "pileup", TaskID("map")))
	return w
}

// RNASeqLike generates a transcriptomics-atlas-shaped workflow: `samples`
// independent 4-step pipelines (prefetch → fasterq → salmon → deseq2), as in
// §5's "multiple independent pipelines processed in parallel".
func RNASeqLike(rng *randx.Source, samples int, opts GenOpts) *Workflow {
	opts.defaults()
	w := New(fmt.Sprintf("rnaseq-%d", samples))
	steps := []string{"prefetch", "fasterq", "salmon", "deseq2"}
	for s := 0; s < samples; s++ {
		var prev TaskID
		for _, st := range steps {
			id := fmt.Sprintf("%s-%04d", st, s)
			var deps []TaskID
			if prev != "" {
				deps = []TaskID{prev}
			}
			w.Add(opts.task(rng, id, st, deps...))
			prev = TaskID(id)
		}
	}
	return w
}
