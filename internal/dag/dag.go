// Package dag models scientific workflows as directed acyclic graphs of
// tasks with resource requests, nominal durations, and data sizes — the
// information the Common Workflow Scheduler Interface transfers from a WMS
// to a resource manager (§3.1: "input files, CPU, and memory requests, along
// with task-specific parameters").
package dag

import (
	"fmt"
	"sort"
)

// TaskID identifies a task within a workflow.
type TaskID string

// Task is one node of a workflow DAG.
type Task struct {
	ID   TaskID
	Name string // process/tool name; tasks sharing a Name share a runtime profile

	// Resource requests, as a WMS would declare them.
	Cores    int
	GPUs     int
	MemBytes float64
	// PeakMemBytes is the memory the task actually touches at peak; users
	// habitually over-request, so this is typically well below MemBytes.
	// Zero means 80 % of the request.
	PeakMemBytes float64

	// NominalDur is the task's duration in seconds on a reference machine
	// (cluster.NodeType.SpeedFactor == 1). Actual durations are scaled by
	// node speed and perturbed by the execution substrate.
	NominalDur float64
	// IOFrac is the fraction of NominalDur that is I/O-bound (scaled by a
	// node's IOFactor rather than SpeedFactor).
	IOFrac float64

	InputBytes  float64
	OutputBytes float64

	// Params are the task-specific parameters the CWSI forwards verbatim.
	// For a WorkflowRef task they double as the binding parameters handed to
	// the registry compiler that materializes the referenced sub-workflow.
	Params map[string]string

	// Ref names a registered sub-workflow this node stands for. A task with
	// a non-empty Ref is a WorkflowRef: it carries no work of its own and is
	// replaced by the referenced workflow's tasks at expansion time (either
	// statically by compose.Registry.Expand or lazily by a RefExpander).
	// Resource fields are ignored on refs; InputBytes declares data bound
	// into the sub-workflow and is distributed onto its expanded roots.
	Ref string

	// Consumes and Produces declare data-flow types for edge inference:
	// compose.InferEdges connects each consumed type to the sibling task that
	// produces it, so composed workflows need no hand-written Stitch calls.
	Consumes []string
	Produces []string

	Deps []TaskID
}

// WorkflowRef returns a reference task: a node that expands into the named
// registered sub-workflow. params are the binding parameters forwarded to
// the registry compiler (nil is fine).
func WorkflowRef(id TaskID, ref string, params map[string]string) *Task {
	return &Task{ID: id, Name: ref, Ref: ref, Params: params}
}

// IsRef reports whether the task is a workflow reference.
func (t *Task) IsRef() bool { return t.Ref != "" }

// CPUSeconds returns the task's nominal core-seconds (duration × cores).
func (t *Task) CPUSeconds() float64 { return t.NominalDur * float64(maxInt(t.Cores, 1)) }

// PeakMem returns the actual peak memory (PeakMemBytes, defaulting to 80 %
// of the declared request).
func (t *Task) PeakMem() float64 {
	if t.PeakMemBytes > 0 {
		return t.PeakMemBytes
	}
	return t.MemBytes * 0.8
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Workflow is a named DAG of tasks.
type Workflow struct {
	Name     string
	tasks    map[TaskID]*Task
	order    []TaskID // insertion order, for deterministic iteration
	children map[TaskID][]TaskID
	// validated memoizes a successful Validate; any structural change
	// (Add, AddEdge) clears it. Runners validate per run, and revalidating
	// an unchanged DAG rebuilt nothing but a topological sort.
	validated bool
	// topo and roots memoize TopoOrder and Roots under the same invalidation
	// rule; every consumer (Validate, Levels, CriticalPath, UpwardRanks,
	// runners) only reads them, and each workflow run re-derives both from
	// the same unchanged DAG.
	topo  []*Task
	roots []*Task
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return NewSized(name, 0)
}

// NewSized returns an empty workflow presized for about taskHint tasks, so
// bulk construction (generators, format importers) skips the incremental map
// and slice growth of one-Add-at-a-time building.
func NewSized(name string, taskHint int) *Workflow {
	return &Workflow{
		Name:     name,
		tasks:    make(map[TaskID]*Task, taskHint),
		order:    make([]TaskID, 0, taskHint),
		children: make(map[TaskID][]TaskID, taskHint),
	}
}

// Add inserts a task. It panics on duplicate IDs — workflow construction
// bugs should fail loudly at build time, not scheduling time.
func (w *Workflow) Add(t *Task) *Task {
	if t.ID == "" {
		panic("dag: task with empty ID")
	}
	if _, dup := w.tasks[t.ID]; dup {
		panic(fmt.Sprintf("dag: duplicate task ID %q", t.ID))
	}
	if t.Cores <= 0 {
		t.Cores = 1
	}
	w.tasks[t.ID] = t
	w.order = append(w.order, t.ID)
	for _, d := range t.Deps {
		w.children[d] = append(w.children[d], t.ID)
	}
	w.validated = false
	w.topo, w.roots = nil, nil
	return t
}

// Task returns the task with the given ID, or nil.
func (w *Workflow) Task(id TaskID) *Task { return w.tasks[id] }

// AddEdge records that `to` depends on `from`, after both tasks have been
// inserted — the stitching primitive sub-workflow composition builds on.
// Duplicate edges are ignored. AddEdge does not check for cycles (that would
// be quadratic during bulk stitching); call Validate once stitching is done.
func (w *Workflow) AddEdge(from, to TaskID) error {
	if w.tasks[from] == nil {
		return fmt.Errorf("dag: edge from unknown task %q", from)
	}
	t := w.tasks[to]
	if t == nil {
		return fmt.Errorf("dag: edge to unknown task %q", to)
	}
	if from == to {
		return fmt.Errorf("dag: self-edge on task %q", from)
	}
	for _, d := range t.Deps {
		if d == from {
			return nil
		}
	}
	t.Deps = append(t.Deps, from)
	w.children[from] = append(w.children[from], to)
	w.validated = false
	w.topo, w.roots = nil, nil
	return nil
}

// Len returns the number of tasks.
func (w *Workflow) Len() int { return len(w.order) }

// Tasks returns tasks in insertion order.
func (w *Workflow) Tasks() []*Task {
	out := make([]*Task, len(w.order))
	for i, id := range w.order {
		out[i] = w.tasks[id]
	}
	return out
}

// Clone returns a structurally independent copy of the workflow: task
// structs and their Deps slices are copied, so edges added to the clone (by
// stitching or edge inference) never leak into the original. Params,
// Consumes, and Produces slices are shared — tasks never mutate them.
func (w *Workflow) Clone() *Workflow {
	out := NewSized(w.Name, w.Len())
	for _, id := range w.order {
		cp := *w.tasks[id]
		cp.Deps = append([]TaskID(nil), cp.Deps...)
		out.Add(&cp)
	}
	return out
}

// Children returns direct successors of id.
func (w *Workflow) Children(id TaskID) []*Task {
	ids := w.children[id]
	out := make([]*Task, len(ids))
	for i, c := range ids {
		out[i] = w.tasks[c]
	}
	return out
}

// ChildIDs returns the direct successor IDs of id without allocating. The
// returned slice is the workflow's internal edge list — callers must treat
// it as read-only.
func (w *Workflow) ChildIDs(id TaskID) []TaskID { return w.children[id] }

// Parents returns direct predecessors of id.
func (w *Workflow) Parents(id TaskID) []*Task {
	t := w.tasks[id]
	if t == nil {
		return nil
	}
	out := make([]*Task, 0, len(t.Deps))
	for _, d := range t.Deps {
		if p := w.tasks[d]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Roots returns tasks with no dependencies, in insertion order. The result
// is memoized until the structure changes; callers must treat the returned
// slice as read-only.
func (w *Workflow) Roots() []*Task {
	if w.roots != nil {
		return w.roots
	}
	out := make([]*Task, 0, 4)
	for _, id := range w.order {
		if t := w.tasks[id]; len(t.Deps) == 0 {
			out = append(out, t)
		}
	}
	w.roots = out
	return out
}

// Leaves returns tasks with no successors, in insertion order.
func (w *Workflow) Leaves() []*Task {
	var out []*Task
	for _, t := range w.Tasks() {
		if len(w.children[t.ID]) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// EdgeCount returns the number of dependency edges.
func (w *Workflow) EdgeCount() int {
	n := 0
	for _, t := range w.tasks {
		n += len(t.Deps)
	}
	return n
}

// Validate checks that all dependencies reference existing tasks and that
// the graph is acyclic. A successful result is memoized until the structure
// changes, so repeated validation of a shared workflow is free.
func (w *Workflow) Validate() error {
	if w.validated {
		return nil
	}
	for _, t := range w.Tasks() {
		for _, d := range t.Deps {
			if _, ok := w.tasks[d]; !ok {
				return fmt.Errorf("dag: task %q depends on unknown task %q", t.ID, d)
			}
		}
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	w.validated = true
	return nil
}

// TopoOrder returns tasks in a deterministic topological order (Kahn's
// algorithm with insertion-order tie-breaking) or an error if a cycle exists.
// The result is memoized until the structure changes; callers must treat the
// returned slice as read-only.
func (w *Workflow) TopoOrder() ([]*Task, error) {
	if w.topo != nil {
		return w.topo, nil
	}
	indeg := make(map[TaskID]int, len(w.tasks))
	for _, t := range w.tasks {
		indeg[t.ID] = len(t.Deps)
	}
	var ready []TaskID
	for _, id := range w.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]*Task, 0, len(w.tasks))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, w.tasks[id])
		for _, c := range w.children[id] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(out) != len(w.tasks) {
		return nil, fmt.Errorf("dag: workflow %q contains a cycle", w.Name)
	}
	w.topo = out
	return out, nil
}

// Levels assigns each task its depth (longest path from any root, roots = 0)
// and returns tasks grouped by level. It panics on cyclic workflows; call
// Validate first.
func (w *Workflow) Levels() [][]*Task {
	topo, err := w.TopoOrder()
	if err != nil {
		panic(err)
	}
	level := make(map[TaskID]int, len(topo))
	maxLevel := 0
	for _, t := range topo {
		l := 0
		for _, d := range t.Deps {
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[t.ID] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]*Task, maxLevel+1)
	for _, t := range topo {
		out[level[t.ID]] = append(out[level[t.ID]], t)
	}
	return out
}

// DurFn maps a task to an (estimated or actual) duration; rank and critical
// path computations are parameterized on it so they work with predictions.
type DurFn func(*Task) float64

// NominalDur is the DurFn that uses each task's declared nominal duration.
func NominalDur(t *Task) float64 { return t.NominalDur }

// CriticalPath returns the length of the longest path through the workflow
// under durations from fn, and the IDs along one such path in order.
func (w *Workflow) CriticalPath(fn DurFn) (float64, []TaskID) {
	topo, err := w.TopoOrder()
	if err != nil {
		panic(err)
	}
	dist := make(map[TaskID]float64, len(topo))
	prev := make(map[TaskID]TaskID, len(topo))
	best := 0.0
	var bestID TaskID
	for _, t := range topo {
		d := 0.0
		var from TaskID
		for _, dep := range t.Deps {
			if dist[dep] > d {
				d = dist[dep]
				from = dep
			}
		}
		dist[t.ID] = d + fn(t)
		if from != "" {
			prev[t.ID] = from
		}
		if dist[t.ID] > best {
			best = dist[t.ID]
			bestID = t.ID
		}
	}
	var path []TaskID
	for id := bestID; id != ""; id = prev[id] {
		path = append(path, id)
		if _, ok := prev[id]; !ok {
			break
		}
	}
	// Reverse into root→leaf order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path
}

// UpwardRanks computes HEFT-style upward ranks: rank(t) = dur(t) +
// max over children c of rank(c). Higher rank = more critical. Communication
// costs are folded into fn if desired.
func (w *Workflow) UpwardRanks(fn DurFn) map[TaskID]float64 {
	topo, err := w.TopoOrder()
	if err != nil {
		panic(err)
	}
	rank := make(map[TaskID]float64, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for _, c := range w.children[t.ID] {
			if rank[c] > best {
				best = rank[c]
			}
		}
		rank[t.ID] = fn(t) + best
	}
	return rank
}

// TotalWork returns the sum of nominal core-seconds over all tasks — the
// lower bound on makespan × cores for any schedule.
func (w *Workflow) TotalWork() float64 {
	sum := 0.0
	for _, t := range w.tasks {
		sum += t.CPUSeconds()
	}
	return sum
}

// Descendants returns the transitive successors of id (not including id),
// sorted by ID for determinism.
func (w *Workflow) Descendants(id TaskID) []TaskID {
	seen := map[TaskID]bool{}
	var walk func(TaskID)
	walk = func(x TaskID) {
		for _, c := range w.children[x] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(id)
	out := make([]TaskID, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
