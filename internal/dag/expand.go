package dag

// Expander is the streaming alternative to a materialized Workflow: a lazy
// frontier that hands out ready tasks one at a time and learns about
// completions, so a runner never needs more than the currently runnable slice
// of a workflow in memory. This is what makes 100k-node / million-task runs
// feasible — scatter shards and successor stages come into existence only as
// their predecessors finish, and retired tasks can be recycled.
//
// The emission contract is exact, not approximate: Next must yield tasks in
// precisely the order an eager MakespanRunner over the equivalent Workflow
// would submit them — roots in insertion order, then, per successful
// completion, newly ready successors in edge-creation (ChildIDs) order. The
// streaming and eager run paths are therefore bit-identical (same
// fingerprints), which the equivalence tests in internal/sweep assert over
// seeds, fault profiles, and worker counts.
//
// Call discipline: Next until it reports no ready task; report each terminal
// task via exactly one of TaskDone/TaskFailed (which may make more tasks
// ready); Retire a task only after its terminal report. Implementations are
// single-goroutine, like the engine that drives them.
type Expander interface {
	// Name labels the expansion (the workflow name).
	Name() string
	// Total returns the number of tasks the expansion will emit plus the
	// number it will write off via TaskFailed — the denominator for
	// completion accounting.
	Total() int
	// Next returns the next ready task and its eager insertion index — the
	// position the task would occupy in the equivalent Workflow's insertion
	// order, which keyes per-task fault plans (fault.Profile.PlanTaskFailures)
	// without materializing the task list. ok is false when nothing is
	// currently ready (more may become ready after TaskDone).
	Next() (t *Task, idx int, ok bool)
	// TaskDone records a successful completion, unlocking successors.
	TaskDone(id TaskID)
	// TaskFailed records a terminal failure and writes off every not-yet
	// emitted transitive successor, returning how many were newly skipped.
	TaskFailed(id TaskID) int
	// Retire releases a task handed out by Next after its terminal report;
	// implementations may recycle the Task struct. The caller must drop all
	// references to t first.
	Retire(t *Task)
}

// WorkflowExpander adapts a materialized Workflow to the Expander interface.
// It is the reference implementation the equivalence tests compare streaming
// runners against — deliberately O(tasks) resident, since the workflow
// already is — and the bridge that lets any eagerly-built DAG run on the
// streaming path.
type WorkflowExpander struct {
	w         *Workflow
	idx       map[TaskID]int
	remaining map[TaskID]int
	skipped   map[TaskID]bool
	ready     []TaskID
	readyNext int
}

// NewWorkflowExpander validates w and returns an expander that replays its
// eager submission order.
func NewWorkflowExpander(w *Workflow) (*WorkflowExpander, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	x := &WorkflowExpander{
		w:         w,
		idx:       make(map[TaskID]int, w.Len()),
		remaining: make(map[TaskID]int, w.Len()),
		skipped:   make(map[TaskID]bool),
	}
	for i, t := range w.Tasks() {
		x.idx[t.ID] = i
		x.remaining[t.ID] = len(t.Deps)
	}
	for _, t := range w.Roots() {
		x.ready = append(x.ready, t.ID)
	}
	return x, nil
}

// Name implements Expander.
func (x *WorkflowExpander) Name() string { return x.w.Name }

// Total implements Expander.
func (x *WorkflowExpander) Total() int { return x.w.Len() }

// Next implements Expander: the ready FIFO preserves eager submission order.
func (x *WorkflowExpander) Next() (*Task, int, bool) {
	if x.readyNext >= len(x.ready) {
		x.ready = x.ready[:0]
		x.readyNext = 0
		return nil, 0, false
	}
	id := x.ready[x.readyNext]
	x.readyNext++
	return x.w.Task(id), x.idx[id], true
}

// TaskDone implements Expander, readying successors in ChildIDs order.
func (x *WorkflowExpander) TaskDone(id TaskID) {
	for _, cid := range x.w.ChildIDs(id) {
		x.remaining[cid]--
		if x.remaining[cid] == 0 && !x.skipped[cid] {
			x.ready = append(x.ready, cid)
		}
	}
}

// TaskFailed implements Expander: the transitive write-off mirrors
// MakespanRunner.skip — every descendant is marked, whatever its other
// dependencies, because one of them can now never be satisfied.
func (x *WorkflowExpander) TaskFailed(id TaskID) int {
	n := 0
	var walk func(TaskID)
	walk = func(from TaskID) {
		for _, cid := range x.w.ChildIDs(from) {
			if x.skipped[cid] {
				continue
			}
			x.skipped[cid] = true
			n++
			walk(cid)
		}
	}
	walk(id)
	return n
}

// Retire implements Expander. Tasks belong to the underlying workflow, so
// nothing is recycled; the method exists so streaming runners can treat every
// expander uniformly.
func (x *WorkflowExpander) Retire(*Task) {}
