package dag

import (
	"strings"
	"testing"
)

// TestToDOTGolden pins the exact rendering, including escaping of quotes and
// backslashes in IDs and names — the label-injection fix. The raw strings
// below are the bytes Graphviz must receive.
func TestToDOTGolden(t *testing.T) {
	w := New(`pipe"line`)
	w.Add(&Task{ID: `stage\one`, Name: `pre"pare`, NominalDur: 60, Cores: 2})
	w.Add(&Task{ID: `stage\two`, Name: "merge", NominalDur: 90, Cores: 1, Deps: []TaskID{`stage\one`}})

	want := strings.Join([]string{
		`digraph "pipe\"line" {`,
		`  rankdir=TB;`,
		`  node [shape=box];`,
		`  "stage\\one" [label="stage\\one\npre\"pare (60s, 2c)"];`,
		`  "stage\\two" [label="stage\\two\nmerge (90s, 1c)"];`,
		`  "stage\\one" -> "stage\\two";`,
		`}`,
		``,
	}, "\n")
	if got := w.ToDOT(); got != want {
		t.Errorf("ToDOT mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestToDOTRefGolden pins the collapsed-box rendering of WorkflowRef tasks:
// box3d shape, grey fill, and a label naming the referenced entry — the shape
// wfsim's -dot / -dot-expand-depth flags surface.
func TestToDOTRefGolden(t *testing.T) {
	w := New("composed")
	w.Add(&Task{ID: "prep", Name: "prep", NominalDur: 30, Cores: 1})
	r := WorkflowRef("uq", "exaam-uq", nil)
	r.Deps = []TaskID{"prep"}
	w.Add(r)

	want := strings.Join([]string{
		`digraph "composed" {`,
		`  rankdir=TB;`,
		`  node [shape=box];`,
		`  "prep" [label="prep\nprep (30s, 1c)"];`,
		`  "uq" [shape=box3d style=filled fillcolor=lightgrey label="uq\n= exaam-uq (sub-workflow)"];`,
		`  "prep" -> "uq";`,
		`}`,
		``,
	}, "\n")
	if got := w.ToDOT(); got != want {
		t.Errorf("ToDOT ref mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestToDOTNoRawQuotes checks that no label can break out of its quoted
// string: every line must have an even number of unescaped quotes.
func TestToDOTNoRawQuotes(t *testing.T) {
	w := New(`a"b\c`)
	w.Add(&Task{ID: `t"0\`, Name: `n"ame\`, NominalDur: 10})
	w.Add(&Task{ID: `t"1`, Name: "plain", NominalDur: 10, Deps: []TaskID{`t"0\`}})
	for _, line := range strings.Split(w.ToDOT(), "\n") {
		unescaped := 0
		for i := 0; i < len(line); i++ {
			switch line[i] {
			case '\\':
				i++ // skip the escaped character
			case '"':
				unescaped++
			}
		}
		if unescaped%2 != 0 {
			t.Errorf("line with unbalanced unescaped quotes: %s", line)
		}
	}
}

func TestAddEdge(t *testing.T) {
	w := New("stitch")
	w.Add(&Task{ID: "a", Name: "a", NominalDur: 1})
	w.Add(&Task{ID: "b", Name: "b", NominalDur: 1})
	if err := w.AddEdge("a", "b"); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	// Idempotent.
	if err := w.AddEdge("a", "b"); err != nil {
		t.Fatalf("duplicate AddEdge: %v", err)
	}
	if got := len(w.Task("b").Deps); got != 1 {
		t.Fatalf("b has %d deps, want 1", got)
	}
	if got := len(w.Children("a")); got != 1 {
		t.Fatalf("a has %d children, want 1", got)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate after AddEdge: %v", err)
	}

	if err := w.AddEdge("a", "a"); err == nil {
		t.Error("self-edge accepted")
	}
	if err := w.AddEdge("missing", "b"); err == nil {
		t.Error("edge from unknown task accepted")
	}
	if err := w.AddEdge("a", "missing"); err == nil {
		t.Error("edge to unknown task accepted")
	}

	// A stitched cycle must be caught by Validate, not silently kept.
	if err := w.AddEdge("b", "a"); err != nil {
		t.Fatalf("AddEdge b->a: %v", err)
	}
	if err := w.Validate(); err == nil {
		t.Error("Validate accepted a stitched cycle")
	}
}
