package dag

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func mapResolver(m map[string]*Workflow) RefResolver {
	return func(name string, params map[string]string) (*Workflow, error) {
		w, ok := m[name]
		if !ok {
			return nil, fmt.Errorf("no entry %q", name)
		}
		return w, nil
	}
}

func linear(name string, ids ...TaskID) *Workflow {
	w := New(name)
	var prev TaskID
	for _, id := range ids {
		t := &Task{ID: id, Name: string(id), NominalDur: 1}
		if prev != "" {
			t.Deps = []TaskID{prev}
		}
		w.Add(t)
		prev = id
	}
	return w
}

func TestWorkflowRefCtor(t *testing.T) {
	r := WorkflowRef("uq", "exaam-uq", map[string]string{"seed": "7"})
	if !r.IsRef() || r.Ref != "exaam-uq" || r.ID != "uq" || r.Params["seed"] != "7" {
		t.Fatalf("unexpected ref task: %+v", r)
	}
	if (&Task{ID: "plain"}).IsRef() {
		t.Fatal("plain task claims to be a ref")
	}
}

func TestRefKey(t *testing.T) {
	if k := RefKey("a", nil); k != "a" {
		t.Fatalf("RefKey(a, nil) = %q", k)
	}
	k1 := RefKey("a", map[string]string{"b": "2", "a": "1"})
	k2 := RefKey("a", map[string]string{"a": "1", "b": "2"})
	if k1 != k2 || k1 != "a[a=1,b=2]" {
		t.Fatalf("RefKey not canonical: %q vs %q", k1, k2)
	}
}

func TestValidateRefsCycle(t *testing.T) {
	a := New("a")
	a.Add(WorkflowRef("to-b", "b", nil))
	b := New("b")
	b.Add(WorkflowRef("to-a", "a", nil))
	root := New("root")
	root.Add(WorkflowRef("start", "a", nil))

	err := ValidateRefs(root, mapResolver(map[string]*Workflow{"a": a, "b": b}), 0)
	var cyc *RefCycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("want *RefCycleError, got %v", err)
	}
	want := []string{"root", "a", "b", "a"}
	if len(cyc.Chain) != len(want) {
		t.Fatalf("chain %v, want %v", cyc.Chain, want)
	}
	for i := range want {
		if cyc.Chain[i] != want[i] {
			t.Fatalf("chain %v, want %v", cyc.Chain, want)
		}
	}
	if !strings.Contains(err.Error(), "root -> a -> b -> a") {
		t.Fatalf("error does not name the chain: %v", err)
	}
}

func TestValidateRefsSelfCycle(t *testing.T) {
	rec := New("rec")
	rec.Add(&Task{ID: "work", NominalDur: 1})
	rec.Add(WorkflowRef("again", "rec", nil))
	root := New("root")
	root.Add(WorkflowRef("start", "rec", nil))

	err := ValidateRefs(root, mapResolver(map[string]*Workflow{"rec": rec}), 0)
	var cyc *RefCycleError
	if !errors.As(err, &cyc) {
		t.Fatalf("want *RefCycleError, got %v", err)
	}
}

func TestValidateRefsDepth(t *testing.T) {
	// d0 -> d1 -> d2 -> d3 -> leaf workflow, checked with maxDepth 3:
	// entering d3's target is depth 4.
	m := map[string]*Workflow{"d3": linear("d3", "x")}
	for i := 2; i >= 0; i-- {
		w := New(fmt.Sprintf("d%d", i))
		w.Add(WorkflowRef("next", fmt.Sprintf("d%d", i+1), nil))
		m[w.Name] = w
	}
	root := New("root")
	root.Add(WorkflowRef("start", "d0", nil))

	err := ValidateRefs(root, mapResolver(m), 3)
	var dep *RefDepthError
	if !errors.As(err, &dep) {
		t.Fatalf("want *RefDepthError, got %v", err)
	}
	if dep.Limit != 3 {
		t.Fatalf("Limit = %d, want 3", dep.Limit)
	}
	if got := strings.Join(dep.Chain, " -> "); got != "root -> d0 -> d1 -> d2 -> d3" {
		t.Fatalf("chain = %q", got)
	}
	// The same tree passes with enough budget.
	if err := ValidateRefs(root, mapResolver(m), 4); err != nil {
		t.Fatalf("depth 4 should pass: %v", err)
	}
}

func TestValidateRefsResolverError(t *testing.T) {
	root := New("root")
	root.Add(WorkflowRef("start", "nope", nil))
	err := ValidateRefs(root, mapResolver(nil), 0)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("want resolver error naming the target, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	w := linear("w", "a", "b")
	c := w.Clone()
	if err := c.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	c.Task("b").InputBytes = 99
	if w.Task("b").InputBytes == 99 {
		t.Fatal("clone shares task structs with the original")
	}
	if w.Len() != c.Len() || c.Name != w.Name {
		t.Fatalf("clone shape mismatch")
	}
	if w.HasRefs() {
		t.Fatal("plain workflow claims refs")
	}
}
