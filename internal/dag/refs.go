package dag

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultMaxRefDepth bounds how many levels of WorkflowRef nesting an
// expansion will follow before giving up. Real compositions (a site pipeline
// of app pipelines of tool sub-workflows) sit at depth 2–4; anything deeper
// is almost always an unintended parameterized recursion.
const DefaultMaxRefDepth = 8

// RefResolver materializes the workflow a WorkflowRef names, given the ref's
// binding params. compose.Registry.Resolver is the canonical implementation;
// the indirection keeps package dag free of any registry dependency.
// Resolvers must be deterministic: the same (name, params) pair must always
// yield the same workflow, structurally — lazy expansion relies on it.
type RefResolver func(name string, params map[string]string) (*Workflow, error)

// RefKey canonicalizes a reference target: the name plus the binding params
// in sorted k=v form. Two refs with equal keys resolve to the same workflow,
// which is what cycle detection and template caching key on.
func RefKey(name string, params map[string]string) string {
	if len(params) == 0 {
		return name
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('[')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(params[k])
	}
	b.WriteByte(']')
	return b.String()
}

// RefCycleError reports a circular chain of workflow references: some
// (name, params) target transitively references itself. Chain names every
// hop from the root workflow to the repeated target, so the error message is
// the cycle itself.
type RefCycleError struct {
	Chain []string
}

func (e *RefCycleError) Error() string {
	return fmt.Sprintf("dag: circular workflow reference: %s", strings.Join(e.Chain, " -> "))
}

// RefDepthError reports a reference chain nested beyond the depth limit —
// the backstop for parameterized recursions that never close a cycle.
type RefDepthError struct {
	Chain []string
	Limit int
}

func (e *RefDepthError) Error() string {
	return fmt.Sprintf("dag: workflow reference chain exceeds depth limit %d: %s",
		e.Limit, strings.Join(e.Chain, " -> "))
}

// ValidateRefs walks the reference graph under w: every WorkflowRef is
// resolved (recursively) and checked for circular references and nesting
// deeper than maxDepth (0 means DefaultMaxRefDepth). It returns a
// *RefCycleError or *RefDepthError naming the full reference chain, or the
// resolver's error wrapped with the chain position. Workflows without refs
// validate trivially; Validate itself stays purely structural.
func ValidateRefs(w *Workflow, resolve RefResolver, maxDepth int) error {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxRefDepth
	}
	active := map[string]bool{}
	// ok memoizes subtrees already proven acyclic and within budget at a
	// given nesting depth; a diamond re-entered at a deeper position has
	// less remaining budget and is re-walked.
	type okKey struct {
		ref   string
		depth int
	}
	ok := map[okKey]bool{}
	var walk func(sub *Workflow, chain []string, depth int) error
	walk = func(sub *Workflow, chain []string, depth int) error {
		for _, t := range sub.Tasks() {
			if !t.IsRef() {
				continue
			}
			key := RefKey(t.Ref, t.Params)
			next := append(chain, key)
			if active[key] {
				return &RefCycleError{Chain: next}
			}
			if depth+1 > maxDepth {
				return &RefDepthError{Chain: next, Limit: maxDepth}
			}
			if ok[okKey{key, depth + 1}] {
				continue
			}
			target, err := resolve(t.Ref, t.Params)
			if err != nil {
				return fmt.Errorf("dag: resolving reference %s: %w", strings.Join(next, " -> "), err)
			}
			if target.Len() == 0 {
				return fmt.Errorf("dag: reference %s resolves to an empty workflow", strings.Join(next, " -> "))
			}
			active[key] = true
			err = walk(target, next, depth+1)
			delete(active, key)
			if err != nil {
				return err
			}
			ok[okKey{key, depth + 1}] = true
		}
		return nil
	}
	return walk(w, []string{w.Name}, 0)
}

// HasRefs reports whether any task of w is a WorkflowRef.
func (w *Workflow) HasRefs() bool {
	for _, id := range w.order {
		if w.tasks[id].IsRef() {
			return true
		}
	}
	return false
}
