package dag

import (
	"testing"
)

// diamond builds a -> {b, c} -> d with an extra root e -> d.
func diamondWF(t *testing.T) *Workflow {
	t.Helper()
	w := New("diamond")
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		w.Add(&Task{ID: TaskID(id), NominalDur: 1})
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}, {"e", "d"}} {
		if err := w.AddEdge(TaskID(e[0]), TaskID(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func drainReady(x *WorkflowExpander) []TaskID {
	var out []TaskID
	for {
		t, _, ok := x.Next()
		if !ok {
			return out
		}
		out = append(out, t.ID)
	}
}

func sameIDs(a, b []TaskID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The expander must replay the eager submission order exactly: roots in
// insertion order, then newly ready successors in ChildIDs order per
// completion.
func TestWorkflowExpanderOrder(t *testing.T) {
	w := diamondWF(t)
	x, err := NewWorkflowExpander(w)
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != "diamond" || x.Total() != 5 {
		t.Fatalf("Name/Total: %q/%d", x.Name(), x.Total())
	}
	if got := drainReady(x); !sameIDs(got, []TaskID{"a", "e"}) {
		t.Fatalf("roots: %v", got)
	}
	// Insertion indices key the fault plan; verify they track w.Tasks() order.
	x2, _ := NewWorkflowExpander(diamondWF(t))
	if _, idx, _ := x2.Next(); idx != 0 {
		t.Fatalf("root a index = %d, want 0", idx)
	}
	if _, idx, _ := x2.Next(); idx != 4 {
		t.Fatalf("root e index = %d, want 4", idx)
	}

	x.TaskDone("a")
	if got := drainReady(x); !sameIDs(got, []TaskID{"b", "c"}) {
		t.Fatalf("after a: %v", got)
	}
	x.TaskDone("e")
	if got := drainReady(x); len(got) != 0 {
		t.Fatalf("after e (d still blocked): %v", got)
	}
	x.TaskDone("b")
	x.TaskDone("c")
	if got := drainReady(x); !sameIDs(got, []TaskID{"d"}) {
		t.Fatalf("after b,c: %v", got)
	}
	x.TaskDone("d")
	if got := drainReady(x); len(got) != 0 {
		t.Fatalf("after all: %v", got)
	}
}

// A terminal failure writes off all transitive descendants exactly once,
// and they never surface from Next even when other parents complete.
func TestWorkflowExpanderFailureSkips(t *testing.T) {
	w := diamondWF(t)
	x, err := NewWorkflowExpander(w)
	if err != nil {
		t.Fatal(err)
	}
	drainReady(x) // a, e
	if n := x.TaskFailed("a"); n != 3 {
		t.Fatalf("TaskFailed(a) skipped %d, want 3 (b, c, d)", n)
	}
	// e still completes; d must not become ready (its ancestor failed).
	x.TaskDone("e")
	if got := drainReady(x); len(got) != 0 {
		t.Fatalf("skipped task surfaced: %v", got)
	}
	// Failing again finds nothing new to skip.
	if n := x.TaskFailed("a"); n != 0 {
		t.Fatalf("second TaskFailed(a) skipped %d, want 0", n)
	}
}

func TestWorkflowExpanderValidates(t *testing.T) {
	w := New("cyclic")
	w.Add(&Task{ID: "a", NominalDur: 1})
	w.Add(&Task{ID: "b", NominalDur: 1})
	if err := w.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddEdge("b", "a"); err == nil {
		// Some DAG impls reject at AddEdge; if not, Validate must.
		if _, err := NewWorkflowExpander(w); err == nil {
			t.Fatal("cyclic workflow accepted")
		}
	}
}
