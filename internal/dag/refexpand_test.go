package dag

import (
	"strings"
	"testing"
)

// refFixture: root = t0 -> ref(inner) -> t2, with inner = a -> b.
// Exercises namespacing, barrier stitching onto sub-roots, and leaf-output
// stitching onto the ref's consumer.
func refFixture() (*Workflow, RefResolver) {
	inner := New("inner")
	inner.Add(&Task{ID: "a", Name: "a", NominalDur: 1, InputBytes: 1, OutputBytes: 2})
	inner.Add(&Task{ID: "b", Name: "b", NominalDur: 1, Deps: []TaskID{"a"}, OutputBytes: 8})

	root := New("root")
	root.Add(&Task{ID: "t0", Name: "t0", NominalDur: 1, OutputBytes: 10})
	r := WorkflowRef("r1", "inner", nil)
	r.Deps = []TaskID{"t0"}
	r.InputBytes = 5
	root.Add(r)
	root.Add(&Task{ID: "t2", Name: "t2", NominalDur: 1, Deps: []TaskID{"r1"}, InputBytes: 3})

	return root, mapResolver(map[string]*Workflow{"inner": inner})
}

func TestRefExpanderSplice(t *testing.T) {
	root, res := refFixture()
	x, err := NewRefExpander(root, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != "root" || x.Total() != 4 {
		t.Fatalf("Name/Total = %q/%d, want root/4", x.Name(), x.Total())
	}

	type emit struct {
		id  TaskID
		idx int
		in  float64
	}
	want := []emit{
		{"t0", 0, 0},
		// r1/a: inner declared 1 + ref's bound InputBytes 5 + supplier t0's output 10.
		{"r1/a", 1, 16},
		{"r1/b", 2, 0},
		// t2: declared 3 + expanded-leaf output of r1 (b's 8).
		{"t2", 3, 11},
	}
	for i, wt := range want {
		task, idx, ok := x.Next()
		if !ok {
			t.Fatalf("dried up at %d", i)
		}
		if task.ID != wt.id || idx != wt.idx || task.InputBytes != wt.in {
			t.Fatalf("emit %d: id=%q idx=%d in=%.0f, want %q/%d/%.0f",
				i, task.ID, idx, task.InputBytes, wt.id, wt.idx, wt.in)
		}
		x.TaskDone(task.ID)
		x.Retire(task)
	}
	if _, _, ok := x.Next(); ok {
		t.Fatal("emitted past Total")
	}
}

func TestRefExpanderWriteOff(t *testing.T) {
	root, res := refFixture()
	x, err := NewRefExpander(root, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := x.Next()
	// Failing t0 writes off the whole splice and its consumer: r1/a, r1/b, t2.
	if n := x.TaskFailed(first.ID); n != 3 {
		t.Fatalf("TaskFailed skipped %d, want 3", n)
	}
	if _, _, ok := x.Next(); ok {
		t.Fatal("dead expansion emitted a task")
	}
}

func TestRefExpanderInteriorFailure(t *testing.T) {
	root, res := refFixture()
	x, err := NewRefExpander(root, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0, _, _ := x.Next()
	x.TaskDone(t0.ID)
	a, _, _ := x.Next()
	// Failing inside the splice writes off the rest of it and the consumer.
	if n := x.TaskFailed(a.ID); n != 2 {
		t.Fatalf("TaskFailed skipped %d, want 2", n)
	}
}

func TestRefExpanderNestedChain(t *testing.T) {
	// root -> ref(mid) where mid = ref(leafwf) -> l2; leafwf = single "x".
	// Checks chain inheritance: suppliers and bound bytes flow through two
	// reference levels to the innermost roots.
	leafwf := New("leafwf")
	leafwf.Add(&Task{ID: "x", Name: "x", NominalDur: 1, OutputBytes: 4})

	mid := New("mid")
	rr := WorkflowRef("innerref", "leafwf", nil)
	rr.InputBytes = 2
	mid.Add(rr)
	mid.Add(&Task{ID: "l2", Name: "l2", NominalDur: 1, Deps: []TaskID{"innerref"}})

	root := New("root")
	root.Add(&Task{ID: "src", Name: "src", NominalDur: 1, OutputBytes: 100})
	r := WorkflowRef("m", "mid", nil)
	r.Deps = []TaskID{"src"}
	r.InputBytes = 1
	root.Add(r)

	res := mapResolver(map[string]*Workflow{"leafwf": leafwf, "mid": mid})
	x, err := NewRefExpander(root, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.Total() != 3 {
		t.Fatalf("Total = %d, want 3", x.Total())
	}
	src, _, _ := x.Next()
	if src.ID != "src" {
		t.Fatalf("first = %q", src.ID)
	}
	x.TaskDone("src")
	deep, idx, ok := x.Next()
	if !ok || deep.ID != "m/innerref/x" || idx != 1 {
		t.Fatalf("deep root = %v idx=%d", deep, idx)
	}
	// x is a root of both mid and leafwf instances: bound bytes accumulate
	// innerref's 2 + m's 1 + supplier src's output 100.
	if deep.InputBytes != 103 {
		t.Fatalf("deep InputBytes = %.0f, want 103", deep.InputBytes)
	}
	x.TaskDone(deep.ID)
	l2, idx, ok := x.Next()
	if !ok || l2.ID != "m/l2" || idx != 2 {
		t.Fatalf("l2 = %v idx=%d", l2, idx)
	}
	// l2 consumes the inner ref's expanded leaf output (x's 4).
	if l2.InputBytes != 4 {
		t.Fatalf("l2 InputBytes = %.0f, want 4", l2.InputBytes)
	}
}

func TestRefExpanderIDCollision(t *testing.T) {
	inner := New("inner")
	inner.Add(&Task{ID: "x", NominalDur: 1})
	root := New("root")
	root.Add(WorkflowRef("u", "inner", nil))
	root.Add(&Task{ID: "u/x", NominalDur: 1})
	_, err := NewRefExpander(root, mapResolver(map[string]*Workflow{"inner": inner}), 0)
	if err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("want collision error, got %v", err)
	}
}
