package dag

import (
	"fmt"
	"strings"
)

// RefExpander expands a workflow containing WorkflowRef tasks lazily at
// runtime: referenced sub-workflows splice into the frontier only as their
// inputs resolve, so a deep composition is never materialized as one flat
// task list. It implements the Expander contract exactly — Next yields tasks
// in precisely the order a WorkflowExpander over the statically expanded
// workflow (compose.Registry.Expand) would, with identical eager insertion
// indices, task IDs ("ref/nested/task" namespacing), and stitched
// InputBytes — so static and lazy expansion produce bit-identical run
// fingerprints (the equivalence the recursive golden battery pins).
//
// Construction resolves the *structure* of the reference tree up front —
// instance offsets, supplier counts, leaf fan-ins — because Total() must be
// known before the first emission (fault plans are drawn over it). Task
// structs themselves materialize only at emission and are recycled at
// Retire, and each distinct (name, params) template is resolved once and
// shared across every splice point.
type RefExpander struct {
	name     string
	resolve  RefResolver
	maxDepth int

	infos map[*Workflow]*tmplInfo
	root  *refInstance
	total int

	skipped   []bool // by global (eager insertion) index
	ready     []readyEntry
	readyNext int
	scratch   []readyEntry
	inflight  map[TaskID]refSlot
	free      []*Task
}

// tmplInfo is the memoized expansion structure of one template workflow:
// everything about how its tasks map onto the expanded index space, shared
// by every instance of the template.
type tmplInfo struct {
	tasks   []*Task
	index   map[TaskID]int
	subInfo []*tmplInfo // per local index: resolved template info (nil for plain tasks)

	size   []int // expanded task count contributed by local task i
	offset []int // expanded offset of local task i within the template's block
	total  int   // expanded size of the whole template

	children [][]int32 // local consumer indices, ascending
	isLeaf   []bool    // no local consumers

	supCount []int32   // expanded supplier count from local deps
	refExtra []float64 // Σ expanded-leaf OutputBytes over ref deps (plain-task stitch)
	supOut   []float64 // Σ expanded output bytes over all deps (ref boundary stitch)

	leafCount int     // expanded leaves of the template
	leafOut   float64 // Σ OutputBytes over expanded leaves
}

// refInstance is one splice of a template into the expanded index space.
type refInstance struct {
	info     *tmplInfo
	ns       string // namespace prefix, "" or "ref/" / "ref/inner/"
	base     int    // global index of the instance's first expanded task
	parent   *refInstance
	refLocal int // local index of the ref task in parent.info (-1 for root)
	sub      map[int]*refInstance

	remaining []int32 // per local task: expanded suppliers still outstanding
	extSup    int32   // suppliers of the enclosing ref chain (added to local roots)

	deadMarked bool // whole instance written off by an upstream failure
}

type refSlot struct {
	inst  *refInstance
	local int32
}

type readyEntry struct {
	inst   *refInstance
	local  int32
	global int
}

// NewRefExpander validates w's reference graph (cycles, depth, collisions)
// against resolve and returns a lazy expander over it. maxDepth <= 0 means
// DefaultMaxRefDepth. The resolver must be deterministic and should return
// prepared templates (compiled, edge-inferred, validated) — the same
// workflows static expansion splices.
func NewRefExpander(w *Workflow, resolve RefResolver, maxDepth int) (*RefExpander, error) {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxRefDepth
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateRefs(w, resolve, maxDepth); err != nil {
		return nil, err
	}
	x := &RefExpander{
		name:     w.Name,
		resolve:  resolve,
		maxDepth: maxDepth,
		infos:    make(map[*Workflow]*tmplInfo, 8),
		inflight: make(map[TaskID]refSlot, 64),
	}
	info, err := x.info(w)
	if err != nil {
		return nil, err
	}
	x.root = x.instantiate(info, "", 0, nil, -1)
	x.total = info.total
	x.skipped = make([]bool, x.total)
	x.collectRoots(x.root)
	return x, nil
}

// info builds (and memoizes) the expansion structure of one template. Every
// ref inside it is resolved here, so the whole reference tree is structurally
// known after the root call returns.
func (x *RefExpander) info(w *Workflow) (*tmplInfo, error) {
	if fi, ok := x.infos[w]; ok {
		return fi, nil
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	tasks := w.Tasks()
	n := len(tasks)
	fi := &tmplInfo{
		tasks:    tasks,
		index:    make(map[TaskID]int, n),
		subInfo:  make([]*tmplInfo, n),
		size:     make([]int, n),
		offset:   make([]int, n),
		children: make([][]int32, n),
		isLeaf:   make([]bool, n),
		supCount: make([]int32, n),
		refExtra: make([]float64, n),
		supOut:   make([]float64, n),
	}
	for i, t := range tasks {
		fi.index[t.ID] = i
	}
	for i, t := range tasks {
		if !t.IsRef() {
			continue
		}
		sub, err := x.resolve(t.Ref, t.Params)
		if err != nil {
			return nil, fmt.Errorf("dag: resolving ref %q in workflow %q: %w", t.ID, w.Name, err)
		}
		si, err := x.info(sub)
		if err != nil {
			return nil, err
		}
		fi.subInfo[i] = si
	}
	for i := range tasks {
		fi.offset[i] = fi.total
		if si := fi.subInfo[i]; si != nil {
			fi.size[i] = si.total
		} else {
			fi.size[i] = 1
		}
		fi.total += fi.size[i]
	}
	for ci, t := range tasks {
		for _, d := range t.Deps {
			fi.children[fi.index[d]] = append(fi.children[fi.index[d]], int32(ci))
		}
	}
	for i := range tasks {
		fi.isLeaf[i] = len(fi.children[i]) == 0
	}
	for i, t := range tasks {
		if !fi.isLeaf[i] {
			continue
		}
		if si := fi.subInfo[i]; si != nil {
			fi.leafCount += si.leafCount
			fi.leafOut += si.leafOut
		} else {
			fi.leafCount++
			fi.leafOut += t.OutputBytes
		}
	}
	for i, t := range tasks {
		for _, d := range t.Deps {
			pi := fi.index[d]
			if si := fi.subInfo[pi]; si != nil {
				fi.supCount[i] += int32(si.leafCount)
				fi.refExtra[i] += si.leafOut
				fi.supOut[i] += si.leafOut
			} else {
				fi.supCount[i]++
				fi.supOut[i] += tasks[pi].OutputBytes
			}
		}
	}
	if err := checkExpandedIDs(fi, w.Name); err != nil {
		return nil, err
	}
	x.infos[w] = fi
	return fi, nil
}

// checkExpandedIDs rejects templates whose expansion would produce duplicate
// namespaced IDs — a plain task named "uq/fit" next to a ref "uq" whose
// expansion also yields "uq/fit". Static expansion fails the same way via
// compose's collision checking; catching it here keeps the lazy path from
// silently corrupting its in-flight index.
func checkExpandedIDs(fi *tmplInfo, wf string) error {
	for ri, r := range fi.tasks {
		if fi.subInfo[ri] == nil {
			continue
		}
		prefix := string(r.ID) + "/"
		for ti, t := range fi.tasks {
			if ti == ri || !strings.HasPrefix(string(t.ID), prefix) {
				continue
			}
			suffix := string(t.ID)[len(prefix):]
			if fi.subInfo[ti] == nil {
				if expandedIDExists(fi.subInfo[ri], suffix) {
					return fmt.Errorf("dag: workflow %q: expanded task ID collision: %q already produced by ref %q (rename one of them)",
						wf, t.ID, r.ID)
				}
				continue
			}
			var ids []string
			expandedIDList(fi.subInfo[ti], "", &ids)
			for _, s := range ids {
				if expandedIDExists(fi.subInfo[ri], suffix+"/"+s) {
					return fmt.Errorf("dag: workflow %q: expanded task ID collision: %q from ref %q already produced by ref %q (rename one of them)",
						wf, prefix+suffix+"/"+s, t.ID, r.ID)
				}
			}
		}
	}
	return nil
}

func expandedIDExists(fi *tmplInfo, id string) bool {
	if i, ok := fi.index[TaskID(id)]; ok && fi.subInfo[i] == nil {
		return true
	}
	for i, t := range fi.tasks {
		if fi.subInfo[i] == nil {
			continue
		}
		p := string(t.ID) + "/"
		if strings.HasPrefix(id, p) && expandedIDExists(fi.subInfo[i], id[len(p):]) {
			return true
		}
	}
	return false
}

func expandedIDList(fi *tmplInfo, prefix string, out *[]string) {
	for i, t := range fi.tasks {
		if si := fi.subInfo[i]; si != nil {
			expandedIDList(si, prefix+string(t.ID)+"/", out)
		} else {
			*out = append(*out, prefix+string(t.ID))
		}
	}
}

// instantiate materializes the instance tree: one refInstance per splice
// point, each knowing its namespace, global base index, and the supplier
// count / byte bonus its expanded roots inherit from the enclosing ref chain.
func (x *RefExpander) instantiate(fi *tmplInfo, ns string, base int, parent *refInstance, refLocal int) *refInstance {
	inst := &refInstance{info: fi, ns: ns, base: base, parent: parent, refLocal: refLocal}
	if parent != nil {
		pfi := parent.info
		inst.extSup = pfi.supCount[refLocal]
		if len(pfi.tasks[refLocal].Deps) == 0 { // the ref is itself a root: inherit its chain
			inst.extSup += parent.extSup
		}
	}
	inst.remaining = make([]int32, len(fi.tasks))
	for i, t := range fi.tasks {
		inst.remaining[i] = fi.supCount[i]
		if len(t.Deps) == 0 {
			inst.remaining[i] += inst.extSup
		}
	}
	for i, t := range fi.tasks {
		if si := fi.subInfo[i]; si != nil {
			if inst.sub == nil {
				inst.sub = make(map[int]*refInstance, 4)
			}
			inst.sub[i] = x.instantiate(si, ns+string(t.ID)+"/", base+fi.offset[i], inst, i)
		}
	}
	return inst
}

// collectRoots seeds the ready FIFO with the expansion's dependency-free
// tasks, in global index order (template insertion order, refs inlined).
func (x *RefExpander) collectRoots(inst *refInstance) {
	for i, t := range inst.info.tasks {
		if len(t.Deps) != 0 {
			continue
		}
		if inst.info.subInfo[i] != nil {
			x.collectRoots(inst.sub[i])
			continue
		}
		x.ready = append(x.ready, readyEntry{inst, int32(i), inst.base + inst.info.offset[i]})
	}
}

// Name implements Expander.
func (x *RefExpander) Name() string { return x.name }

// Total implements Expander: the size of the full static expansion.
func (x *RefExpander) Total() int { return x.total }

// Next implements Expander, materializing the next ready task. Emitted tasks
// carry the statically-expanded identity: namespaced ID, the template's
// resource shape, and InputBytes with every boundary stitch applied (ref-dep
// leaf outputs, plus the enclosing ref chain's bound input and supplier
// outputs for instance roots). Deps are nil — streaming runners never read
// them, and the dependency structure lives in the expander itself.
func (x *RefExpander) Next() (*Task, int, bool) {
	if x.readyNext >= len(x.ready) {
		x.ready = x.ready[:0]
		x.readyNext = 0
		return nil, 0, false
	}
	e := x.ready[x.readyNext]
	x.readyNext++
	fi := e.inst.info
	tt := fi.tasks[e.local]
	t := x.alloc()
	*t = *tt
	t.ID = TaskID(e.inst.ns + string(tt.ID))
	t.Deps = nil
	t.InputBytes = tt.InputBytes + fi.refExtra[e.local]
	if len(tt.Deps) == 0 {
		// Instance roots collect the enclosing ref chain's bound input and
		// supplier output bytes. The additions replay static expansion's exact
		// order — innermost ref first, bound bytes then supplier sum, each as
		// one scalar addition — so the result is bit-identical under IEEE-754
		// (float addition is not associative; grouping matters).
		for inst := e.inst; inst.parent != nil; inst = inst.parent {
			pfi := inst.parent.info
			rt := pfi.tasks[inst.refLocal]
			t.InputBytes += rt.InputBytes
			t.InputBytes += pfi.supOut[inst.refLocal]
			if len(rt.Deps) != 0 { // the chain stops at a non-root ref
				break
			}
		}
	}
	x.inflight[t.ID] = refSlot{e.inst, e.local}
	return t, e.global, true
}

// TaskDone implements Expander. Newly ready tasks are gathered across every
// relation a completion can unlock — local successors, roots of a successor
// ref's instance, and (for expanded leaves) the enclosing ref's consumers —
// then appended in ascending global index order, which is exactly the
// ChildIDs order of the statically expanded workflow.
func (x *RefExpander) TaskDone(id TaskID) {
	s, ok := x.inflight[id]
	if !ok {
		panic(fmt.Sprintf("dag: ref expander %q got a terminal report for unknown task %q", x.name, id))
	}
	delete(x.inflight, id)
	x.scratch = x.scratch[:0]
	x.propagate(s.inst, int(s.local))
	sortReady(x.scratch)
	x.ready = append(x.ready, x.scratch...)
}

func (x *RefExpander) propagate(inst *refInstance, local int) {
	fi := inst.info
	for _, c := range fi.children[local] {
		if fi.subInfo[c] != nil {
			x.decRoots(inst.sub[int(c)])
			continue
		}
		inst.remaining[c]--
		if inst.remaining[c] == 0 {
			g := inst.base + fi.offset[c]
			if !x.skipped[g] {
				x.scratch = append(x.scratch, readyEntry{inst, c, g})
			}
		}
	}
	if fi.isLeaf[local] && inst.parent != nil {
		x.propagate(inst.parent, inst.refLocal)
	}
}

// decRoots records one supplier completion against every expanded root of an
// instance — the lazy form of the Embed barrier, where each sub-root depends
// on every supplier of the enclosing ref.
func (x *RefExpander) decRoots(inst *refInstance) {
	fi := inst.info
	for i, t := range fi.tasks {
		if len(t.Deps) != 0 {
			continue
		}
		if fi.subInfo[i] != nil {
			x.decRoots(inst.sub[i])
			continue
		}
		inst.remaining[i]--
		if inst.remaining[i] == 0 {
			g := inst.base + fi.offset[i]
			if !x.skipped[g] {
				x.scratch = append(x.scratch, readyEntry{inst, int32(i), g})
			}
		}
	}
}

// sortReady orders newly readied entries by global index. Batches are the
// fan-out of one completion — small — so an insertion sort beats sort.Slice
// and allocates nothing.
func sortReady(s []readyEntry) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].global < s[j-1].global; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TaskFailed implements Expander: the transitive write-off over the expanded
// graph. A successor ref's whole instance is marked at once (every expanded
// root depends on the failed task), and expanded leaves propagate the walk
// past their enclosing ref's consumers — mirroring WorkflowExpander over the
// static expansion, including the newly-skipped count.
func (x *RefExpander) TaskFailed(id TaskID) int {
	s, ok := x.inflight[id]
	if !ok {
		panic(fmt.Sprintf("dag: ref expander %q got a terminal report for unknown task %q", x.name, id))
	}
	delete(x.inflight, id)
	return x.writeOff(s.inst, int(s.local))
}

func (x *RefExpander) writeOff(inst *refInstance, local int) int {
	n := 0
	fi := inst.info
	for _, c32 := range fi.children[local] {
		c := int(c32)
		if fi.subInfo[c] != nil {
			sub := inst.sub[c]
			if !sub.deadMarked {
				n += x.markInstance(sub)
				n += x.writeOff(inst, c) // continue past the ref to its consumers
			}
			continue
		}
		g := inst.base + fi.offset[c]
		if !x.skipped[g] {
			x.skipped[g] = true
			n++
			n += x.writeOff(inst, c)
		}
	}
	if fi.isLeaf[local] && inst.parent != nil {
		n += x.writeOff(inst.parent, inst.refLocal)
	}
	return n
}

func (x *RefExpander) markInstance(inst *refInstance) int {
	inst.deadMarked = true
	n := 0
	fi := inst.info
	for i := range fi.tasks {
		if fi.subInfo[i] != nil {
			if sub := inst.sub[i]; !sub.deadMarked {
				n += x.markInstance(sub)
			}
			continue
		}
		g := inst.base + fi.offset[i]
		if !x.skipped[g] {
			x.skipped[g] = true
			n++
		}
	}
	return n
}

// Retire implements Expander, recycling the emitted Task struct.
func (x *RefExpander) Retire(t *Task) {
	*t = Task{}
	x.free = append(x.free, t)
}

func (x *RefExpander) alloc() *Task {
	if n := len(x.free); n > 0 {
		t := x.free[n-1]
		x.free = x.free[:n-1]
		return t
	}
	return new(Task)
}
