package dag

import (
	"fmt"
	"sort"
	"strings"
)

// escapeDOT makes a string safe for interpolation inside a double-quoted
// Graphviz string: backslashes and double quotes are escaped. Task IDs and
// names are user-controlled (composed workflows namespace IDs with arbitrary
// stage names), so labels must be escaped, not spliced in with %s.
func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ToDOT renders the workflow as a Graphviz digraph: one box per task
// (labelled with name and nominal duration), one edge per dependency. A
// WorkflowRef task renders as a collapsed 3-D box naming the referenced
// sub-workflow — the unexpanded view of a recursive composition. To see N
// levels unfolded, render compose.Registry.ExpandDepth(w, N) instead (wfsim
// exposes this as -dot with -dot-expand-depth).
func (w *Workflow) ToDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph \"%s\" {\n  rankdir=TB;\n  node [shape=box];\n", escapeDOT(w.Name))
	for _, t := range w.Tasks() {
		if t.IsRef() {
			fmt.Fprintf(&b, "  \"%s\" [shape=box3d style=filled fillcolor=lightgrey label=\"%s\\n= %s (sub-workflow)\"];\n",
				escapeDOT(string(t.ID)), escapeDOT(string(t.ID)), escapeDOT(t.Ref))
			continue
		}
		fmt.Fprintf(&b, "  \"%s\" [label=\"%s\\n%s (%.0fs, %dc)\"];\n",
			escapeDOT(string(t.ID)), escapeDOT(string(t.ID)), escapeDOT(t.Name), t.NominalDur, t.Cores)
	}
	// Deterministic edge order.
	var edges []string
	for _, t := range w.Tasks() {
		for _, d := range t.Deps {
			edges = append(edges, fmt.Sprintf("  \"%s\" -> \"%s\";", escapeDOT(string(d)), escapeDOT(string(t.ID))))
		}
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e + "\n")
	}
	b.WriteString("}\n")
	return b.String()
}
