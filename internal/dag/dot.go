package dag

import (
	"fmt"
	"sort"
	"strings"
)

// ToDOT renders the workflow as a Graphviz digraph: one box per task
// (labelled with name and nominal duration), one edge per dependency. Handy
// for inspecting generated or composed workflows.
func (w *Workflow) ToDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", w.Name)
	for _, t := range w.Tasks() {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s (%.0fs, %dc)\"];\n",
			t.ID, t.ID, t.Name, t.NominalDur, t.Cores)
	}
	// Deterministic edge order.
	var edges []string
	for _, t := range w.Tasks() {
		for _, d := range t.Deps {
			edges = append(edges, fmt.Sprintf("  %q -> %q;", d, t.ID))
		}
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e + "\n")
	}
	b.WriteString("}\n")
	return b.String()
}
