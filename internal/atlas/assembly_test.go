package atlas

import (
	"strings"
	"testing"

	"hhcw/internal/randx"
	"hhcw/internal/storage"
)

func TestGenerateTissueCatalog(t *testing.T) {
	rng := randx.New(3)
	cat := GenerateTissueCatalog(rng, 200, nil)
	counts := map[string]int{}
	for _, r := range cat {
		if r.Tissue == "" {
			t.Fatal("unlabelled run")
		}
		counts[r.Tissue]++
	}
	if len(counts) < 10 {
		t.Fatalf("only %d tissues drawn from 20", len(counts))
	}
	// Zipf skew: the most common tissue should dominate the rarest.
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 2*min {
		t.Fatalf("tissue distribution not skewed: max=%d min=%d", max, min)
	}
}

func TestAssembleAtlasEndToEnd(t *testing.T) {
	// Run the cloud pipeline, then build the atlas from its S3 outputs.
	rng := randx.New(6)
	cat := GenerateTissueCatalog(rng.Fork(), 40, []string{"liver", "lung", "brain"})

	// RunCloud writes <acc>.quant.tar into its own env store; recreate the
	// flow manually with a shared store for the assembly step.
	store := storage.NewStore("s3", 0, 0, 0)
	for _, run := range cat {
		store.Put(storage.File{Name: run.Accession + ".quant.tar", Bytes: run.Bytes * 0.02})
	}
	entries, missing, err := AssembleAtlas(store, cat)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("missing = %d", missing)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3 tissues", len(entries))
	}
	total := 0
	for _, e := range entries {
		total += e.Runs
		if e.EntryBytes <= 0 {
			t.Fatalf("empty entry for %s", e.Tissue)
		}
		if !store.Has("atlas/" + e.Tissue + ".matrix") {
			t.Fatalf("matrix for %s not written", e.Tissue)
		}
	}
	if total != 40 {
		t.Fatalf("entries cover %d runs, want 40", total)
	}
	// Sorted by tissue.
	for i := 1; i < len(entries); i++ {
		if strings.Compare(entries[i-1].Tissue, entries[i].Tissue) >= 0 {
			t.Fatal("entries not sorted")
		}
	}
}

func TestAssembleAtlasMissingResults(t *testing.T) {
	cat := []SRARun{
		{Accession: "SRR1", Bytes: 1e9, Tissue: "liver"},
		{Accession: "SRR2", Bytes: 1e9, Tissue: "liver"},
	}
	store := storage.NewStore("s3", 0, 0, 0)
	store.Put(storage.File{Name: "SRR1.quant.tar", Bytes: 2e7})
	entries, missing, err := AssembleAtlas(store, cat)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 1 || len(entries) != 1 || entries[0].Runs != 1 {
		t.Fatalf("entries=%v missing=%d", entries, missing)
	}
}

func TestAssembleAtlasUnlabelled(t *testing.T) {
	store := storage.NewStore("s3", 0, 0, 0)
	if _, _, err := AssembleAtlas(store, []SRARun{{Accession: "X", Bytes: 1}}); err == nil {
		t.Fatal("unlabelled run accepted")
	}
}
