package atlas

import (
	"fmt"
	"sort"

	"hhcw/internal/randx"
	"hhcw/internal/storage"
)

// Atlas assembly — the project's stated goal: "create a database of analyzed
// RNA sequences corresponding to given tissue and organ types based on the
// data from public repositories and make it available for researchers"
// (§5). Runs are labelled with tissues; after the per-run pipelines finish,
// per-tissue aggregation merges their quantifications into atlas entries.

// Tissues are the organ/tissue labels of the 20-tissue atlas (§5.1 sizes the
// full corpus at 8.6 TB across 20 human tissues).
var Tissues = []string{
	"adipose", "adrenal", "blood", "brain", "breast", "colon", "heart",
	"kidney", "liver", "lung", "lymph", "muscle", "ovary", "pancreas",
	"prostate", "skin", "spleen", "stomach", "testis", "thyroid",
}

// GenerateTissueCatalog labels a synthetic catalog with tissues drawn
// zipf-style (some tissues are studied far more than others, as in the SRA).
func GenerateTissueCatalog(rng *randx.Source, n int, tissues []string) []SRARun {
	if len(tissues) == 0 {
		tissues = Tissues
	}
	z := randx.NewZipf(len(tissues), 0.8)
	runs := GenerateCatalog(rng, n)
	for i := range runs {
		runs[i].Tissue = tissues[z.Sample(rng)-1]
	}
	return runs
}

// AtlasEntry is one tissue's aggregated database record.
type AtlasEntry struct {
	Tissue     string
	Runs       int
	InputBytes float64
	EntryBytes float64 // size of the merged quantification matrix
}

// AssembleAtlas merges per-run quantifications (as uploaded by the cloud
// pipeline to the store with names "<acc>.quant.tar") into per-tissue atlas
// entries, writing "atlas/<tissue>.matrix" files. Runs without results in
// the store are skipped and reported.
func AssembleAtlas(store *storage.Store, catalog []SRARun) ([]AtlasEntry, int, error) {
	byTissue := map[string]*AtlasEntry{}
	missing := 0
	for _, run := range catalog {
		if run.Tissue == "" {
			return nil, 0, fmt.Errorf("atlas: run %s has no tissue label", run.Accession)
		}
		f, _, ok := store.Get(run.Accession + ".quant.tar")
		if !ok {
			missing++
			continue
		}
		e := byTissue[run.Tissue]
		if e == nil {
			e = &AtlasEntry{Tissue: run.Tissue}
			byTissue[run.Tissue] = e
		}
		e.Runs++
		e.InputBytes += run.Bytes
		e.EntryBytes += f.Bytes * 0.1 // merged matrix compresses well
	}
	out := make([]AtlasEntry, 0, len(byTissue))
	for _, e := range byTissue {
		store.Put(storage.File{Name: "atlas/" + e.Tissue + ".matrix", Bytes: e.EntryBytes})
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tissue < out[j].Tissue })
	return out, missing, nil
}
