package atlas

import (
	"fmt"

	"hhcw/internal/dag"
)

// PipelineSpec describes the §5 salmon pipeline over a catalog as a
// compilable workflow: one prefetch → fasterq-dump → salmon → deseq2 chain
// per SRA run, with durations, memory, and I/O fractions taken from the
// Table 1/2 calibration at each run's file size. Compilation is
// deterministic (profile means, no sampling) — stochastic behaviour comes
// from the execution substrate, exactly as for every other compiled
// workflow, so composed Atlas workflows keep the sweep determinism
// contract.
//
// PipelineSpec implements the compose.Compiler interface.
type PipelineSpec struct {
	Runs []SRARun
	// Env selects the calibration column (Cloud or HPC); zero value = Cloud.
	Env Environment
	// Cores is the per-step core request; zero = 2 (t3.medium-like).
	Cores int
}

// Compile flattens the spec into a validated DAG. Task names are the tool
// names (prefetch, fasterq-dump, salmon, deseq2) shared across runs, so CWS
// predictors profile them exactly like natively scheduled Atlas steps.
func (p PipelineSpec) Compile() (*dag.Workflow, error) {
	if len(p.Runs) == 0 {
		return nil, fmt.Errorf("atlas: pipeline over an empty catalog")
	}
	cores := p.Cores
	if cores <= 0 {
		cores = 2
	}
	w := dag.New(fmt.Sprintf("atlas-salmon-%s-%d", p.Env, len(p.Runs)))
	for _, run := range p.Runs {
		if run.Accession == "" {
			return nil, fmt.Errorf("atlas: catalog entry without accession")
		}
		var prev dag.TaskID
		for _, st := range Steps() {
			pr := profiles[st]
			mean := pr.cloudMeanSec
			if p.Env == HPC {
				mean = pr.hpcMeanSec
			}
			scale := 1.0
			if pr.sizeScaled && run.Bytes > 0 {
				scale = run.Bytes / MeanSRABytes
			}
			dur := mean * scale
			if dur < 1 {
				dur = 1
			}
			t := &dag.Task{
				ID:           dag.TaskID(run.Accession + "/" + st.String()),
				Name:         st.String(),
				Cores:        cores,
				MemBytes:     pr.memMean * 1.25, // users over-request (§3.1)
				PeakMemBytes: pr.memMean,
				NominalDur:   dur,
				IOFrac:       pr.iowaitMean / 100,
				Params:       map[string]string{"accession": run.Accession},
			}
			switch st {
			case Prefetch:
				t.InputBytes = run.Bytes
				t.OutputBytes = run.Bytes
			case FasterqDump:
				t.InputBytes = run.Bytes
				t.OutputBytes = 2 * run.Bytes // FASTQ decompression roughly doubles
			case Salmon:
				t.InputBytes = 2 * run.Bytes
				t.OutputBytes = 0.02 * run.Bytes // quantification tables
			case DESeq2:
				t.InputBytes = 0.02 * run.Bytes
				t.OutputBytes = 1e6
			}
			if prev != "" {
				t.Deps = []dag.TaskID{prev}
			}
			w.Add(t)
			prev = t.ID
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
