package atlas

import (
	"fmt"

	"hhcw/internal/cloud"
	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// RunCloud executes the catalog on the §5 cloud architecture (Fig 7): SRR
// accessions on an SQS-like queue, an auto-scaled fleet of EC2 instances,
// each processing one file start-to-finish and uploading results to S3.
func RunCloud(eng *sim.Engine, rng *randx.Source, catalog []SRARun, maxInstances int, itype cloud.InstanceType) (*Report, error) {
	env := cloud.NewEnv(eng)
	byAcc := map[string]SRARun{}
	for _, run := range catalog {
		byAcc[run.Accession] = run
		env.Queue.Send(run.Accession)
	}
	rep := &Report{Env: Cloud, Files: len(catalog), Outputs: env.S3}
	start := eng.Now()

	busyCPUSec := 0.0
	worker := func(inst *cloud.Instance, done func()) {
		var next func()
		next = func() {
			acc, ok := env.Queue.Receive()
			if !ok {
				done()
				return
			}
			run := byAcc[acc]
			steps := Steps()
			var runStep func(i int)
			runStep = func(i int) {
				if i == len(steps) {
					// Upload results + metadata to S3; intermediates
					// (.fastq) are discarded (§5.1).
					env.S3.Put(storage.File{Name: acc + ".quant.tar", Bytes: run.Bytes * 0.02})
					env.S3.Put(storage.File{Name: acc + ".meta.json", Bytes: 4e3})
					env.Queue.Delete()
					next()
					return
				}
				ex := SampleStep(rng, Cloud, steps[i], run, inst.Type.SpeedFactor)
				eng.After(sim.Time(ex.DurationSec), func() {
					rep.observe(ex)
					busyCPUSec += ex.DurationSec * ex.Sample.CPUPct / 100
					runStep(i + 1)
				})
			}
			runStep(0)
		}
		next()
	}
	_, err := cloud.NewASG(env, cloud.ASGConfig{
		Type:   itype,
		Max:    maxInstances,
		Worker: worker,
	})
	if err != nil {
		return nil, err
	}
	eng.Run()
	rep.Makespan = float64(eng.Now() - start)
	rep.CostUSD = env.TotalCost(eng.Now())

	allocated := 0.0
	for _, inst := range env.Instances() {
		allocated += inst.UptimeSec(eng.Now())
	}
	if allocated > 0 {
		rep.Efficiency = busyCPUSec / allocated
	}
	if env.Queue.Consumed() != len(catalog) {
		return nil, fmt.Errorf("atlas: cloud run consumed %d of %d files", env.Queue.Consumed(), len(catalog))
	}
	return rep, nil
}

// RunHPC executes the catalog on an HPC cluster: `workers` containerized
// pipeline instances (2 cores / 8 GB each, the Salmon footprint §5.1 gives)
// submitted through the task-level resource manager, pulling files from a
// shared list. startupSec models container pull + batch queue wait.
func RunHPC(eng *sim.Engine, rng *randx.Source, catalog []SRARun, cl *cluster.Cluster, workers int, startupSec float64) (*Report, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("atlas: workers must be positive")
	}
	rep := &Report{Env: HPC, Files: len(catalog)}
	start := eng.Now()

	queue := append([]SRARun(nil), catalog...)
	busyCPUSec := 0.0
	processed := 0

	// Each worker is a long-running 2-core submission; its runtime is
	// determined dynamically by the files it manages to pull, so we model
	// it directly on the engine while holding the allocation.
	placedWorkers := workers
	for wi := 0; wi < workers; wi++ {
		// Find a node with 2 free cores.
		var alloc *cluster.Alloc
		for _, n := range cl.UpNodes() {
			if a, err := cl.Allocate(n, 2, 0, 8e9); err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			placedWorkers--
			continue
		}
		a := alloc
		speed := a.Node.Type.SpeedFactor
		eng.After(sim.Time(startupSec), func() {
			var next func()
			next = func() {
				if len(queue) == 0 {
					cl.Release(a)
					return
				}
				run := queue[0]
				queue = queue[1:]
				steps := Steps()
				var runStep func(i int)
				runStep = func(i int) {
					if i == len(steps) {
						processed++
						next()
						return
					}
					ex := SampleStep(rng, HPC, steps[i], run, speed)
					eng.After(sim.Time(ex.DurationSec), func() {
						rep.observe(ex)
						busyCPUSec += ex.DurationSec * ex.Sample.CPUPct / 100
						runStep(i + 1)
					})
				}
				runStep(0)
			}
			next()
		})
	}
	eng.Run()
	rep.Makespan = float64(eng.Now() - start)
	if processed != len(catalog) {
		return nil, fmt.Errorf("atlas: HPC run processed %d of %d files", processed, len(catalog))
	}
	// Job efficiency: busy CPU over allocated CPU (workers held their
	// allocation from t=0 to their own release; approximate with makespan,
	// matching how SLURM's seff reports whole-job efficiency).
	allocated := float64(placedWorkers) * rep.Makespan
	if allocated > 0 {
		rep.Efficiency = busyCPUSec / allocated
	}
	return rep, nil
}

// CompareRow is one Table 2 row: per-step cloud vs HPC means/maxes and the
// relative difference, "calculated as an average of relative difference in
// execution time".
type CompareRow struct {
	Step                Step
	CloudMean, CloudMax float64
	HPCMean, HPCMax     float64
	HPCRelativeSlowdown float64 // >0: HPC slower; <0: HPC faster
}

// Compare builds Table 2 from a cloud and an HPC report.
func Compare(cloudRep, hpcRep *Report) []CompareRow {
	rows := make([]CompareRow, 0, int(numSteps))
	for _, s := range Steps() {
		c := cloudRep.StepStats[s]
		h := hpcRep.StepStats[s]
		row := CompareRow{
			Step:      s,
			CloudMean: c.Dur.Mean(), CloudMax: c.Dur.Max(),
			HPCMean: h.Dur.Mean(), HPCMax: h.Dur.Max(),
		}
		if c.Dur.Mean() > 0 {
			row.HPCRelativeSlowdown = (h.Dur.Mean() - c.Dur.Mean()) / c.Dur.Mean()
		}
		rows = append(rows, row)
	}
	return rows
}
