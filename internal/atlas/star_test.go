package atlas

import (
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func fatCluster(eng *sim.Engine, nodes int) *cluster.Cluster {
	return cluster.New(eng, "fat", cluster.Spec{
		Type:  cluster.NodeType{Name: "fat", Cores: 64, MemBytes: 512e9},
		Count: nodes,
	})
}

func TestKindFootprints(t *testing.T) {
	if KindMem(SalmonKind) != 8e9 || KindCores(SalmonKind) != 2 {
		t.Fatal("salmon footprint wrong")
	}
	if KindMem(StarKind) != 250e9 || KindCores(StarKind) != 16 {
		t.Fatal("star footprint wrong")
	}
	if KindIndexBytes(StarKind) != 90e9 || KindIndexBytes(SalmonKind) != 1e9 {
		t.Fatal("index sizes wrong")
	}
	if SalmonKind.String() != "salmon" || StarKind.String() != "star" {
		t.Fatal("kind names wrong")
	}
}

func TestCloudInstanceForStarFits(t *testing.T) {
	it := CloudInstanceFor(StarKind)
	if it.MemBytes < StarMemBytes {
		t.Fatalf("%s cannot hold the STAR footprint", it.Name)
	}
	if CloudInstanceFor(SalmonKind).Name != "t3.medium" {
		t.Fatal("salmon should use the small instance")
	}
}

func TestStarStepIsHeavier(t *testing.T) {
	rng := randx.New(5)
	run := SRARun{Accession: "x", Bytes: MeanSRABytes}
	var star, salmon, starMem float64
	for i := 0; i < 200; i++ {
		s := sampleStepKind(rng, Cloud, Salmon, run, 1, StarKind)
		star += s.DurationSec
		starMem += s.Sample.RSSBytes
		salmon += sampleStepKind(rng, Cloud, Salmon, run, 1, SalmonKind).DurationSec
	}
	if star <= salmon {
		t.Fatalf("STAR not slower than salmon: %v vs %v", star, salmon)
	}
	if starMem/200 < 200e9 {
		t.Fatalf("STAR mean RSS = %v, want ~260GB", starMem/200)
	}
	// Non-alignment steps are identical between kinds.
	a := sampleStepKind(randx.New(9), HPC, Prefetch, run, 1, StarKind)
	b := sampleStepKind(randx.New(9), HPC, Prefetch, run, 1, SalmonKind)
	if a.DurationSec != b.DurationSec {
		t.Fatal("prefetch should not depend on kind")
	}
}

func TestRunCloudKindStar(t *testing.T) {
	eng := sim.NewEngine()
	rng := randx.New(3)
	cat := GenerateCatalog(rng.Fork(), 20)
	rep, err := RunCloudKind(eng, rng, cat, 4, StarKind)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 20 {
		t.Fatalf("files = %d", rep.Files)
	}
	// STAR on big instances costs much more than salmon on t3.medium.
	eng2 := sim.NewEngine()
	rng2 := randx.New(3)
	salmonRep, err := RunCloudKind(eng2, rng2.Fork(), cat, 4, SalmonKind)
	if err != nil {
		t.Fatal(err)
	}
	_ = salmonRep
	rep2, err := RunCloudKind(sim.NewEngine(), randx.New(4), cat, 4, SalmonKind)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CostUSD <= rep2.CostUSD {
		t.Fatalf("STAR cost %v should exceed salmon cost %v", rep.CostUSD, rep2.CostUSD)
	}
}

func TestRunHPCKindStarNeedsFatNodes(t *testing.T) {
	eng := sim.NewEngine()
	thin := cluster.New(eng, "thin", cluster.Spec{
		Type:  cluster.NodeType{Name: "thin", Cores: 48, MemBytes: 192e9},
		Count: 4,
	})
	if _, err := RunHPCKind(eng, randx.New(1), GenerateCatalog(randx.New(2), 5), thin, 2, 0, StarKind); err == nil {
		t.Fatal("STAR on 192GB nodes should fail (needs 250GB)")
	}

	eng2 := sim.NewEngine()
	fat := fatCluster(eng2, 2)
	rep, err := RunHPCKind(eng2, randx.New(1), GenerateCatalog(randx.New(2), 10), fat, 2, 0, StarKind)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 10 {
		t.Fatalf("files = %d", rep.Files)
	}
	// STAR mean alignment RSS visible in the metrics.
	if rep.StepStats[Salmon].Proc.RSS.Mean() < 200e9 {
		t.Fatalf("STAR RSS mean = %v", rep.StepStats[Salmon].Proc.RSS.Mean())
	}
}

func TestRunHPCKindSalmonMatchesRunHPC(t *testing.T) {
	// The kind-generalized runner with SalmonKind behaves like RunHPC.
	cat := GenerateCatalog(randx.New(7), 30)
	eng1 := sim.NewEngine()
	cl1 := cluster.New(eng1, "a", cluster.Spec{Type: cluster.NodeType{Name: "n", Cores: 48, MemBytes: 192e9}, Count: 2})
	r1, err := RunHPC(eng1, randx.New(9), cat, cl1, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := sim.NewEngine()
	cl2 := cluster.New(eng2, "b", cluster.Spec{Type: cluster.NodeType{Name: "n", Cores: 48, MemBytes: 192e9}, Count: 2})
	r2, err := RunHPCKind(eng2, randx.New(9), cat, cl2, 4, 60, SalmonKind)
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds, same step sampling → same step means; makespans differ
	// only by the 1 GB index staging (1 s on GPFS).
	if d := r2.Makespan - r1.Makespan; d < 0 || d > 5 {
		t.Fatalf("kind runner diverges: %v vs %v", r1.Makespan, r2.Makespan)
	}
}

func TestRunServerlessSalmonOnly(t *testing.T) {
	cat := GenerateCatalog(randx.New(8), 25)
	if _, err := RunServerless(sim.NewEngine(), randx.New(1), cat, 10, StarKind); err == nil {
		t.Fatal("STAR on serverless should be rejected")
	}
	rep, err := RunServerless(sim.NewEngine(), randx.New(1), cat, 10, SalmonKind)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 25 {
		t.Fatalf("files = %d", rep.Files)
	}
	if _, err := RunServerless(sim.NewEngine(), randx.New(1), cat, 0, SalmonKind); err == nil {
		t.Fatal("zero concurrency accepted")
	}
}

func TestRunHybridSplitsProportionally(t *testing.T) {
	rng := randx.New(11)
	cat := GenerateCatalog(rng.Fork(), 60)
	eng := sim.NewEngine()
	cl := cluster.New(eng, "ares", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 48, MemBytes: 192e9},
		Count: 2,
	})
	rep, err := RunHybrid(rng, cat, 6, cl, 6, SalmonKind)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cloud.Files+rep.HPC.Files != 60 {
		t.Fatalf("split lost files: %d + %d", rep.Cloud.Files, rep.HPC.Files)
	}
	if rep.CloudShare <= 0.2 || rep.CloudShare >= 0.8 {
		t.Fatalf("share = %v, want balanced for equal worker counts", rep.CloudShare)
	}
	if rep.MakespanSec < rep.Cloud.Makespan || rep.MakespanSec < rep.HPC.Makespan {
		t.Fatal("hybrid makespan below a side's")
	}
	// The hybrid should beat either side running the whole catalog alone.
	solo, err := RunCloudKind(sim.NewEngine(), randx.New(11), cat, 6, SalmonKind)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanSec >= solo.Makespan {
		t.Fatalf("hybrid %v not faster than cloud-only %v", rep.MakespanSec, solo.Makespan)
	}
}
