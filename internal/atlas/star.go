package atlas

import (
	"fmt"

	"hhcw/internal/cloud"
	"hhcw/internal/cluster"
	"hhcw/internal/metrics"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// §5's stated next steps, implemented here: the STAR pipeline ("the more
// CPU- and memory-intensive STAR Pipeline"), serverless deployment ("deploy
// Salmon Pipeline to serverless computing services"), and the hybrid split
// ("split the workload among HPC and Cloud").

// Kind selects the alignment path of Fig 6.
type Kind int

// Pipeline kinds.
const (
	SalmonKind Kind = iota // pseudo-alignment: 2 cores / 8 GB, 1 GB index
	StarKind               // full alignment: needs the 90 GB whole-genome index and >250 GB RAM
)

// String returns the pipeline kind name.
func (k Kind) String() string {
	if k == StarKind {
		return "star"
	}
	return "salmon"
}

// Resource footprints from §5.1.
const (
	SalmonIndexBytes = 1e9  // "the generated index on human transcriptome is about 1GB"
	StarIndexBytes   = 90e9 // "in case of STAR the index is ... 90GB"
	SalmonMemBytes   = 8e9  // "2 cores and 8GB of RAM"
	StarMemBytes     = 250e9
	SalmonCores      = 2
	StarCores        = 16
)

// starProfile is the STAR replacement for the Salmon alignment step: more
// CPU, much more memory (index resident), somewhat longer.
var starProfile = profile{
	cloudMeanSec: 900, hpcMeanSec: 760, durCV: 0.30, sizeScaled: true,
	cpuMean: 97, cpuSD: 2, iowaitMean: 1.0, iowaitSD: 3, memMean: 260e9, memCV: 0.02,
}

// sampleStepKind is SampleStep with the alignment step swapped per kind.
func sampleStepKind(rng *randx.Source, env Environment, step Step, run SRARun, speedFactor float64, kind Kind) StepExecution {
	if kind == StarKind && step == Salmon {
		p := starProfile
		mean := p.cloudMeanSec
		if env == HPC {
			mean = p.hpcMeanSec
		}
		scale := run.Bytes / MeanSRABytes
		if speedFactor <= 0 {
			speedFactor = 1
		}
		dur := rng.LogNormalMeanCV(mean*scale, p.durCV) / speedFactor
		if dur < 1 {
			dur = 1
		}
		return StepExecution{
			Step:        step,
			DurationSec: dur,
			Sample: metrics.ProcSample{
				CPUPct:    rng.TruncNormal(p.cpuMean, p.cpuSD, 0, 100),
				IOWaitPct: rng.TruncNormal(p.iowaitMean, p.iowaitSD, 0, 100),
				RSSBytes:  rng.LogNormalMeanCV(p.memMean, p.memCV),
			},
		}
	}
	return SampleStep(rng, env, step, run, speedFactor)
}

// KindMem returns the per-worker memory footprint for a pipeline kind.
func KindMem(kind Kind) float64 {
	if kind == StarKind {
		return StarMemBytes
	}
	return SalmonMemBytes
}

// KindCores returns the per-worker core request.
func KindCores(kind Kind) int {
	if kind == StarKind {
		return StarCores
	}
	return SalmonCores
}

// KindIndexBytes returns the index that must be staged before the first
// pipeline execution on a worker.
func KindIndexBytes(kind Kind) float64 {
	if kind == StarKind {
		return StarIndexBytes
	}
	return SalmonIndexBytes
}

// CloudInstanceFor returns an instance family that fits the pipeline: the
// small general-purpose one for Salmon, a memory-optimized one for STAR.
func CloudInstanceFor(kind Kind) cloud.InstanceType {
	if kind == StarKind {
		return cloud.InstanceType{
			Name: "r6a.16xlarge", VCPUs: 64, MemBytes: 512e9,
			BootDelaySec: 90, SpeedFactor: 1.1, PricePerHour: 3.63,
		}
	}
	return cloud.T3Medium
}

// RunCloudKind is RunCloud generalized over the pipeline kind, including the
// per-instance index staging cost (download from S3 at boot).
func RunCloudKind(eng *sim.Engine, rng *randx.Source, catalog []SRARun, maxInstances int, kind Kind) (*Report, error) {
	itype := CloudInstanceFor(kind)
	if itype.MemBytes < KindMem(kind) {
		return nil, fmt.Errorf("atlas: instance %s (%s RAM) cannot hold the %s footprint",
			itype.Name, human(itype.MemBytes), kind)
	}
	env := cloud.NewEnv(eng)
	byAcc := map[string]SRARun{}
	for _, run := range catalog {
		byAcc[run.Accession] = run
		env.Queue.Send(run.Accession)
	}
	rep := &Report{Env: Cloud, Files: len(catalog), Outputs: env.S3}
	start := eng.Now()
	busyCPUSec := 0.0

	// Index download: S3-internal, ~200 MB/s per instance.
	indexStageSec := KindIndexBytes(kind) / 200e6

	worker := func(inst *cloud.Instance, done func()) {
		eng.After(sim.Time(indexStageSec), func() {
			var next func()
			next = func() {
				acc, ok := env.Queue.Receive()
				if !ok {
					done()
					return
				}
				run := byAcc[acc]
				steps := Steps()
				var runStep func(i int)
				runStep = func(i int) {
					if i == len(steps) {
						env.S3.Put(storage.File{Name: acc + "." + kind.String() + ".tar", Bytes: run.Bytes * 0.02})
						env.Queue.Delete()
						next()
						return
					}
					ex := sampleStepKind(rng, Cloud, steps[i], run, inst.Type.SpeedFactor, kind)
					eng.After(sim.Time(ex.DurationSec), func() {
						rep.observe(ex)
						busyCPUSec += ex.DurationSec * ex.Sample.CPUPct / 100
						runStep(i + 1)
					})
				}
				runStep(0)
			}
			next()
		})
	}
	if _, err := cloud.NewASG(env, cloud.ASGConfig{Type: itype, Max: maxInstances, Worker: worker}); err != nil {
		return nil, err
	}
	eng.Run()
	rep.Makespan = float64(eng.Now() - start)
	rep.CostUSD = env.TotalCost(eng.Now())
	allocated := 0.0
	for _, inst := range env.Instances() {
		allocated += inst.UptimeSec(eng.Now())
	}
	if allocated > 0 {
		rep.Efficiency = busyCPUSec / allocated
	}
	if env.Queue.Consumed() != len(catalog) {
		return nil, fmt.Errorf("atlas: cloud run consumed %d of %d files", env.Queue.Consumed(), len(catalog))
	}
	return rep, nil
}

// RunHPCKind is RunHPC generalized over the pipeline kind. STAR workers
// require fat nodes (250 GB free memory); the index lives on SCRATCH and is
// bind-mounted, so staging is paid once per run, not per worker (§5.1's
// "make the index available on SCRATCH partition and mount it to each
// container").
func RunHPCKind(eng *sim.Engine, rng *randx.Source, catalog []SRARun, cl *cluster.Cluster, workers int, startupSec float64, kind Kind) (*Report, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("atlas: workers must be positive")
	}
	rep := &Report{Env: HPC, Files: len(catalog)}
	start := eng.Now()
	queue := append([]SRARun(nil), catalog...)
	busyCPUSec := 0.0
	processed := 0

	// One shared index staging to SCRATCH (GPFS ~1 GB/s).
	indexStageSec := KindIndexBytes(kind) / 1e9

	placedWorkers := 0
	for wi := 0; wi < workers; wi++ {
		var alloc *cluster.Alloc
		for _, n := range cl.UpNodes() {
			if a, err := cl.Allocate(n, KindCores(kind), 0, KindMem(kind)); err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			continue
		}
		placedWorkers++
		a := alloc
		speed := a.Node.Type.SpeedFactor
		eng.After(sim.Time(startupSec+indexStageSec), func() {
			var next func()
			next = func() {
				if len(queue) == 0 {
					cl.Release(a)
					return
				}
				run := queue[0]
				queue = queue[1:]
				steps := Steps()
				var runStep func(i int)
				runStep = func(i int) {
					if i == len(steps) {
						processed++
						next()
						return
					}
					ex := sampleStepKind(rng, HPC, steps[i], run, speed, kind)
					eng.After(sim.Time(ex.DurationSec), func() {
						rep.observe(ex)
						busyCPUSec += ex.DurationSec * ex.Sample.CPUPct / 100
						runStep(i + 1)
					})
				}
				runStep(0)
			}
			next()
		})
	}
	if placedWorkers == 0 {
		return nil, fmt.Errorf("atlas: no node can fit a %s worker (%d cores, %s RAM)",
			kind, KindCores(kind), human(KindMem(kind)))
	}
	eng.Run()
	rep.Makespan = float64(eng.Now() - start)
	if processed != len(catalog) {
		return nil, fmt.Errorf("atlas: HPC run processed %d of %d files", processed, len(catalog))
	}
	allocated := float64(placedWorkers) * rep.Makespan
	if allocated > 0 {
		rep.Efficiency = busyCPUSec / allocated
	}
	return rep, nil
}

// ServerlessLimits reflects Fargate-style per-container caps.
const (
	ServerlessMaxCores = 4
	ServerlessMaxMem   = 30e9
	// serverlessColdStartSec is the per-invocation container cold start.
	serverlessColdStartSec = 25
)

// RunServerless executes the pipeline as one serverless container invocation
// per SRA file (§5.3's Fargate suggestion). It refuses the STAR kind — its
// footprint exceeds the platform caps, which is exactly why the paper keeps
// STAR off serverless.
func RunServerless(eng *sim.Engine, rng *randx.Source, catalog []SRARun, concurrency int, kind Kind) (*Report, error) {
	if KindCores(kind) > ServerlessMaxCores || KindMem(kind) > ServerlessMaxMem {
		return nil, fmt.Errorf("atlas: %s pipeline (%d cores, %s) exceeds serverless limits (%d cores, %s)",
			kind, KindCores(kind), human(KindMem(kind)), ServerlessMaxCores, human(ServerlessMaxMem))
	}
	if concurrency <= 0 {
		return nil, fmt.Errorf("atlas: concurrency must be positive")
	}
	rep := &Report{Env: Cloud, Files: len(catalog)}
	start := eng.Now()
	queue := append([]SRARun(nil), catalog...)
	processed := 0
	var invoke func()
	invoke = func() {
		if len(queue) == 0 {
			return
		}
		run := queue[0]
		queue = queue[1:]
		// Cold start + index pull per invocation: the serverless tax.
		setup := serverlessColdStartSec + KindIndexBytes(kind)/200e6
		eng.After(sim.Time(setup), func() {
			steps := Steps()
			var runStep func(i int)
			runStep = func(i int) {
				if i == len(steps) {
					processed++
					invoke()
					return
				}
				ex := sampleStepKind(rng, Cloud, steps[i], run, 1, kind)
				eng.After(sim.Time(ex.DurationSec), func() {
					rep.observe(ex)
					runStep(i + 1)
				})
			}
			runStep(0)
		})
	}
	for i := 0; i < concurrency && i < len(catalog); i++ {
		invoke()
	}
	eng.Run()
	rep.Makespan = float64(eng.Now() - start)
	if processed != len(catalog) {
		return nil, fmt.Errorf("atlas: serverless run processed %d of %d", processed, len(catalog))
	}
	return rep, nil
}

// HybridReport is the outcome of a cloud+HPC split.
type HybridReport struct {
	Cloud, HPC  *Report
	CloudShare  float64 // fraction of files sent to the cloud
	MakespanSec float64 // max of the two sides
}

// RunHybrid splits the catalog between cloud and HPC proportionally to each
// side's estimated throughput (workers / mean pipeline seconds) and runs
// both sides, returning the combined report — §5.3's "hybrid approach where
// we split the workload among HPC and Cloud".
func RunHybrid(rng *randx.Source, catalog []SRARun, maxInstances int, cl *cluster.Cluster, hpcWorkers int, kind Kind) (*HybridReport, error) {
	// Throughput estimate from the calibrated per-step means.
	perFile := func(env Environment) float64 {
		total := 0.0
		for _, s := range Steps() {
			p := profiles[s]
			if kind == StarKind && s == Salmon {
				p = starProfile
			}
			if env == Cloud {
				total += p.cloudMeanSec
			} else {
				total += p.hpcMeanSec
			}
		}
		return total
	}
	cloudRate := float64(maxInstances) / perFile(Cloud)
	hpcRate := float64(hpcWorkers) / perFile(HPC)
	share := cloudRate / (cloudRate + hpcRate)
	nCloud := int(share*float64(len(catalog)) + 0.5)
	if nCloud > len(catalog) {
		nCloud = len(catalog)
	}

	cloudRep, err := RunCloudKind(sim.NewEngine(), rng.Fork(), catalog[:nCloud], maxInstances, kind)
	if err != nil {
		return nil, err
	}
	hpcRep, err := RunHPCKind(cl.Engine(), rng.Fork(), catalog[nCloud:], cl, hpcWorkers, 120, kind)
	if err != nil {
		return nil, err
	}
	ms := cloudRep.Makespan
	if hpcRep.Makespan > ms {
		ms = hpcRep.Makespan
	}
	return &HybridReport{
		Cloud: cloudRep, HPC: hpcRep,
		CloudShare:  share,
		MakespanSec: ms,
	}, nil
}

func human(b float64) string { return metrics.HumanBytes(b) }
