package atlas

import (
	"math"
	"testing"

	"hhcw/internal/cloud"
	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func TestGenerateCatalog(t *testing.T) {
	rng := randx.New(1)
	cat := GenerateCatalog(rng, 99)
	if len(cat) != 99 {
		t.Fatalf("catalog = %d", len(cat))
	}
	seen := map[string]bool{}
	sum := 0.0
	for _, r := range cat {
		if seen[r.Accession] {
			t.Fatalf("duplicate accession %s", r.Accession)
		}
		seen[r.Accession] = true
		if r.Bytes <= 0 {
			t.Fatalf("non-positive size for %s", r.Accession)
		}
		sum += r.Bytes
	}
	mean := sum / 99
	if mean < MeanSRABytes/2 || mean > MeanSRABytes*2 {
		t.Fatalf("catalog mean size %v far from %v", mean, MeanSRABytes)
	}
}

func TestStepStringAndOrder(t *testing.T) {
	want := []string{"prefetch", "fasterq-dump", "salmon", "deseq2"}
	for i, s := range Steps() {
		if s.String() != want[i] {
			t.Fatalf("step %d = %q, want %q", i, s, want[i])
		}
	}
}

func TestSampleStepScalesWithSize(t *testing.T) {
	big := SRARun{Accession: "b", Bytes: MeanSRABytes * 8}
	small := SRARun{Accession: "s", Bytes: MeanSRABytes / 8}
	sumBig, sumSmall := 0.0, 0.0
	rng := randx.New(2)
	for i := 0; i < 200; i++ {
		sumBig += SampleStep(rng, Cloud, Salmon, big, 1).DurationSec
		sumSmall += SampleStep(rng, Cloud, Salmon, small, 1).DurationSec
	}
	if sumBig <= sumSmall*10 {
		t.Fatalf("salmon time not size-scaled: big=%v small=%v", sumBig, sumSmall)
	}
}

func TestSampleStepBounds(t *testing.T) {
	rng := randx.New(3)
	run := SRARun{Accession: "x", Bytes: MeanSRABytes}
	for i := 0; i < 500; i++ {
		for _, s := range Steps() {
			ex := SampleStep(rng, HPC, s, run, 1)
			if ex.DurationSec < 1 {
				t.Fatalf("duration below floor: %v", ex.DurationSec)
			}
			if ex.Sample.CPUPct < 0 || ex.Sample.CPUPct > 100 {
				t.Fatalf("CPU%% out of range: %v", ex.Sample.CPUPct)
			}
			if ex.Sample.IOWaitPct < 0 || ex.Sample.IOWaitPct > 100 {
				t.Fatalf("iowait out of range: %v", ex.Sample.IOWaitPct)
			}
			if ex.Sample.RSSBytes <= 0 {
				t.Fatalf("RSS non-positive")
			}
		}
	}
}

func TestPrefetchAsymmetry(t *testing.T) {
	// Table 2's strongest signal: prefetch is much slower on HPC (public
	// Internet) than on AWS (S3-internal).
	rng := randx.New(4)
	run := SRARun{Accession: "x", Bytes: MeanSRABytes}
	var c, h float64
	for i := 0; i < 300; i++ {
		c += SampleStep(rng, Cloud, Prefetch, run, 1).DurationSec
		h += SampleStep(rng, HPC, Prefetch, run, 1).DurationSec
	}
	if h < 2*c {
		t.Fatalf("prefetch HPC/cloud ratio = %v, want >2", h/c)
	}
}

func TestRunCloud99Files(t *testing.T) {
	eng := sim.NewEngine()
	rng := randx.New(7)
	cat := GenerateCatalog(rng.Fork(), 99)
	rep, err := RunCloud(eng, rng, cat, 8, cloud.T3Medium)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 99 {
		t.Fatalf("files = %d", rep.Files)
	}
	// ~2.7 h in the paper; accept 1.5–5 h for the calibrated sim.
	if rep.Makespan < 1.5*3600 || rep.Makespan > 5*3600 {
		t.Fatalf("cloud makespan = %v h, want ~2.7 h", rep.Makespan/3600)
	}
	// Salmon is the most resource-consuming step.
	if rep.StepStats[Salmon].Dur.Mean() <= rep.StepStats[Prefetch].Dur.Mean() {
		t.Fatal("salmon should dominate prefetch")
	}
	if rep.StepStats[Salmon].Proc.CPU.Mean() < 85 {
		t.Fatalf("salmon CPU mean = %v, want ~94", rep.StepStats[Salmon].Proc.CPU.Mean())
	}
	// No step exceeded 4 GB RSS (the c6a.large suggestion's premise).
	for _, s := range Steps() {
		if rep.StepStats[s].Proc.RSS.Max() > 4e9 {
			t.Fatalf("%s RSS max %v exceeds 4GB", s, rep.StepStats[s].Proc.RSS.Max())
		}
	}
	if rep.CostUSD <= 0 {
		t.Fatal("cost not accounted")
	}
}

func TestRunHPC99Files(t *testing.T) {
	eng := sim.NewEngine()
	rng := randx.New(7)
	cat := GenerateCatalog(rng.Fork(), 99)
	cl := cluster.New(eng, "ares", cluster.Spec{
		Type:  cluster.NodeType{Name: "ares", Cores: 48, MemBytes: 192e9},
		Count: 2,
	})
	rep, err := RunHPC(eng, rng, cat, cl, 8, 120)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan < 1.5*3600 || rep.Makespan > 5*3600 {
		t.Fatalf("HPC makespan = %v h, want ~2.5 h", rep.Makespan/3600)
	}
	// "The reported job efficiency for the experiment was about 72%."
	if rep.Efficiency < 0.55 || rep.Efficiency > 0.92 {
		t.Fatalf("efficiency = %v, want ~0.72", rep.Efficiency)
	}
	// Allocations fully returned.
	for _, n := range cl.Nodes() {
		if n.FreeCores() != n.Type.Cores {
			t.Fatal("worker allocation leaked")
		}
	}
}

func TestCompareDirections(t *testing.T) {
	eng := sim.NewEngine()
	rng := randx.New(11)
	cat := GenerateCatalog(rng.Fork(), 99)
	cloudRep, err := RunCloud(eng, rng.Fork(), cat, 8, cloud.T3Medium)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := sim.NewEngine()
	cl := cluster.New(eng2, "ares", cluster.Spec{
		Type:  cluster.NodeType{Name: "ares", Cores: 48, MemBytes: 192e9},
		Count: 2,
	})
	hpcRep, err := RunHPC(eng2, rng.Fork(), cat, cl, 8, 120)
	if err != nil {
		t.Fatal(err)
	}
	rows := Compare(cloudRep, hpcRep)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Table 2 directions: prefetch slower on HPC; fasterq & salmon faster;
	// DESeq2 roughly equal.
	if rows[Prefetch].HPCRelativeSlowdown < 0.5 {
		t.Fatalf("prefetch slowdown = %v, want strongly positive", rows[Prefetch].HPCRelativeSlowdown)
	}
	if rows[FasterqDump].HPCRelativeSlowdown > -0.1 {
		t.Fatalf("fasterq slowdown = %v, want negative (HPC faster)", rows[FasterqDump].HPCRelativeSlowdown)
	}
	if rows[Salmon].HPCRelativeSlowdown > -0.05 {
		t.Fatalf("salmon slowdown = %v, want negative (HPC faster)", rows[Salmon].HPCRelativeSlowdown)
	}
	if math.Abs(rows[DESeq2].HPCRelativeSlowdown) > 0.15 {
		t.Fatalf("deseq2 slowdown = %v, want ~0", rows[DESeq2].HPCRelativeSlowdown)
	}
}

func TestRunHPCValidation(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "c", cluster.Spec{Type: cluster.NodeType{Name: "n", Cores: 4, MemBytes: 64e9}, Count: 1})
	if _, err := RunHPC(eng, randx.New(1), nil, cl, 0, 0); err == nil {
		t.Fatal("zero workers accepted")
	}
}

func TestReportPipelineSeconds(t *testing.T) {
	var r Report
	r.observe(StepExecution{Step: Prefetch, DurationSec: 30})
	r.observe(StepExecution{Step: Salmon, DurationSec: 500})
	if got := r.PipelineSeconds(); got != 530 {
		t.Fatalf("PipelineSeconds = %v", got)
	}
}

func TestEnvAndStepStrings(t *testing.T) {
	if Cloud.String() != "cloud" || HPC.String() != "hpc" {
		t.Fatal("environment strings")
	}
	if Step(99).String() != "step99" {
		t.Fatal("unknown step string")
	}
}
