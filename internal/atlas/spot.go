package atlas

import (
	"fmt"

	"hhcw/internal/cloud"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
	"hhcw/internal/storage"
)

// RunCloudSpot executes the Salmon pipeline on an interruptible spot fleet:
// the per-SRR message model makes interruption recovery free — a reclaimed
// worker returns its in-flight accession to the queue and a replacement
// instance picks it up. This is the cost-optimization the Fig-7 architecture
// enables; the report's CostUSD reflects the spot discount and the re-done
// work.
type SpotReport struct {
	Report
	Interruptions int
	RedoneFiles   int
	// PeakLive is the highest concurrent live-worker count observed; it can
	// never exceed the maxInstances cap.
	PeakLive int
	// OnDemandCostUSD is what the same instance-hours would have cost at
	// the on-demand price.
	OnDemandCostUSD float64
}

// RunCloudSpot runs the catalog on up to maxInstances spot instances of the
// given config.
func RunCloudSpot(eng *sim.Engine, rng *randx.Source, catalog []SRARun, maxInstances int, cfg cloud.SpotConfig) (*SpotReport, error) {
	if maxInstances <= 0 {
		return nil, fmt.Errorf("atlas: maxInstances must be positive")
	}
	env := cloud.NewEnv(eng)
	fleet := cloud.NewSpotFleet(env, cfg, rng.Fork())
	byAcc := map[string]SRARun{}
	for _, run := range catalog {
		byAcc[run.Accession] = run
		env.Queue.Send(run.Accession)
	}
	rep := &SpotReport{Report: Report{Env: Cloud, Files: len(catalog), Outputs: env.S3}}
	start := eng.Now()

	live, minLive := 0, 0
	var launch func()
	launch = func() {
		if live >= maxInstances || env.Queue.Len() == 0 {
			return
		}
		live++
		if live > rep.PeakLive {
			rep.PeakLive = live
		}
		type workerState struct {
			current     string
			interrupted bool
		}
		st := &workerState{}
		fleet.Launch(func(inst *cloud.Instance) {
			var next func()
			next = func() {
				if st.interrupted {
					return
				}
				acc, ok := env.Queue.Receive()
				if !ok {
					env.Terminate(inst)
					live--
					if live < minLive {
						minLive = live
					}
					return
				}
				st.current = acc
				run := byAcc[acc]
				steps := Steps()
				var runStep func(i int)
				runStep = func(i int) {
					if st.interrupted {
						return
					}
					if i == len(steps) {
						env.S3.Put(storage.File{Name: acc + ".quant.tar", Bytes: run.Bytes * 0.02})
						env.Queue.Delete()
						st.current = ""
						next()
						return
					}
					ex := SampleStep(rng, Cloud, steps[i], run, inst.Type.SpeedFactor)
					eng.After(sim.Time(ex.DurationSec), func() {
						if st.interrupted {
							return
						}
						rep.observe(ex)
						runStep(i + 1)
					})
				}
				runStep(0)
			}
			next()
		}, func(inst *cloud.Instance) {
			// Interruption warning: requeue in-flight work and backfill
			// the fleet.
			st.interrupted = true
			live--
			if live < minLive {
				minLive = live
			}
			if st.current != "" {
				env.Queue.Return(st.current)
				rep.RedoneFiles++
			}
			launch()
		})
	}
	for i := 0; i < maxInstances; i++ {
		launch()
	}
	eng.Run()
	if env.Queue.Consumed() != len(catalog) {
		return nil, fmt.Errorf("atlas: spot run consumed %d of %d", env.Queue.Consumed(), len(catalog))
	}
	if minLive < 0 {
		return nil, fmt.Errorf("atlas: live worker count went negative (%d): double decrement", minLive)
	}
	rep.Makespan = float64(eng.Now() - start)
	rep.CostUSD = env.TotalCost(eng.Now())
	rep.Interruptions = fleet.Interruptions()
	discount := cfg.DiscountFactor
	if discount <= 0 {
		discount = 0.3
	}
	rep.OnDemandCostUSD = rep.CostUSD / discount
	return rep, nil
}
