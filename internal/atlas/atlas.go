// Package atlas implements the Transcriptomics Atlas Salmon pipeline of §5:
// prefetch → fasterq-dump → salmon → DESeq2, executed per SRA run either on
// cloud instances (one EC2 instance per SRR, auto-scaled, Fig 7) or on an
// HPC cluster in Apptainer containers.
//
// The bioinformatics tools are replaced by calibrated step models: per-step
// durations scale with input size and are calibrated to Table 2's cloud/HPC
// mean/max execution times; per-step resource profiles (CPU %, CPU iowait %,
// memory) are calibrated to Table 1. The paper's qualitative asymmetries are
// structural: prefetch is much faster on AWS (S3-internal download vs the
// public Internet), compute steps are somewhat faster on the HPC cluster's
// CPUs, and DESeq2 is too short to differ.
package atlas

import (
	"fmt"

	"hhcw/internal/metrics"
	"hhcw/internal/randx"
	"hhcw/internal/storage"
)

// SRARun is one sequencing run to process.
type SRARun struct {
	Accession string
	Bytes     float64
	// Tissue labels the run for atlas assembly ("" until labelled; see
	// GenerateTissueCatalog).
	Tissue string
}

// MeanSRABytes is the catalog's mean .sra size. The paper's 20-tissue atlas
// is 8.6 TB over hundreds of thousands of runs; the 99-file evaluation set
// uses a few-GB scale.
const MeanSRABytes = 2.5e9

// GenerateCatalog returns n synthetic SRA runs with a lognormal size
// distribution (cv 0.8 — sequencing runs are heavy-tailed).
func GenerateCatalog(rng *randx.Source, n int) []SRARun {
	out := make([]SRARun, n)
	for i := range out {
		out[i] = SRARun{
			Accession: fmt.Sprintf("SRR%07d", 1000000+i),
			Bytes:     rng.LogNormalMeanCV(MeanSRABytes, 0.8),
		}
	}
	return out
}

// Step identifies a pipeline step.
type Step int

// Pipeline steps in execution order.
const (
	Prefetch Step = iota
	FasterqDump
	Salmon
	DESeq2
	numSteps
)

// String returns the tool name.
func (s Step) String() string {
	switch s {
	case Prefetch:
		return "prefetch"
	case FasterqDump:
		return "fasterq-dump"
	case Salmon:
		return "salmon"
	case DESeq2:
		return "deseq2"
	default:
		return fmt.Sprintf("step%d", int(s))
	}
}

// Steps lists the pipeline steps in order.
func Steps() []Step { return []Step{Prefetch, FasterqDump, Salmon, DESeq2} }

// profile calibrates one step: durations at the mean file size per
// environment, duration noise, and Table 1 resource distributions.
type profile struct {
	cloudMeanSec float64 // Table 2 cloud mean
	hpcMeanSec   float64 // Table 2 HPC mean
	durCV        float64 // per-execution noise on top of size scaling
	sizeScaled   bool    // duration scales with input size

	cpuMean, cpuSD       float64 // % of instance, truncated to [0,100]
	iowaitMean, iowaitSD float64
	memMean, memCV       float64 // bytes, lognormal
}

// profiles holds the calibration. Duration means are Table 2's; resource
// distributions reproduce Table 1's mean/max pairs over ~99 executions.
var profiles = [numSteps]profile{
	Prefetch: {
		cloudMeanSec: 36, hpcMeanSec: 126, durCV: 0.35, sizeScaled: true,
		cpuMean: 21, cpuSD: 14, iowaitMean: 3.7, iowaitSD: 9, memMean: 323e6, memCV: 0.07,
	},
	FasterqDump: {
		cloudMeanSec: 84, hpcMeanSec: 48, durCV: 0.30, sizeScaled: true,
		cpuMean: 56, cpuSD: 12, iowaitMean: 26, iowaitSD: 16, memMean: 394e6, memCV: 0.18,
	},
	Salmon: {
		cloudMeanSec: 576, hpcMeanSec: 480, durCV: 0.30, sizeScaled: true,
		cpuMean: 94, cpuSD: 3, iowaitMean: 1.5, iowaitSD: 6, memMean: 840e6, memCV: 0.45,
	},
	DESeq2: {
		cloudMeanSec: 11, hpcMeanSec: 10, durCV: 0.25, sizeScaled: false,
		cpuMean: 39, cpuSD: 6, iowaitMean: 3.4, iowaitSD: 9, memMean: 532e6, memCV: 0.22,
	},
}

// Environment selects the calibration column.
type Environment int

// Execution environments.
const (
	Cloud Environment = iota
	HPC
)

func (e Environment) String() string {
	if e == Cloud {
		return "cloud"
	}
	return "hpc"
}

// StepExecution is one step's sampled behaviour for one file.
type StepExecution struct {
	Step        Step
	DurationSec float64
	Sample      metrics.ProcSample
}

// SampleStep draws one execution of a step in an environment for a run of
// the given size. speedFactor scales compute time (node/instance speed).
func SampleStep(rng *randx.Source, env Environment, step Step, run SRARun, speedFactor float64) StepExecution {
	p := profiles[step]
	mean := p.cloudMeanSec
	if env == HPC {
		mean = p.hpcMeanSec
	}
	scale := 1.0
	if p.sizeScaled && run.Bytes > 0 {
		scale = run.Bytes / MeanSRABytes
	}
	if speedFactor <= 0 {
		speedFactor = 1
	}
	dur := rng.LogNormalMeanCV(mean*scale, p.durCV) / speedFactor
	if dur < 1 {
		dur = 1
	}
	return StepExecution{
		Step:        step,
		DurationSec: dur,
		Sample: metrics.ProcSample{
			CPUPct:    rng.TruncNormal(p.cpuMean, p.cpuSD, 0, 100),
			IOWaitPct: rng.TruncNormal(p.iowaitMean, p.iowaitSD, 0, 100),
			RSSBytes:  rng.LogNormalMeanCV(p.memMean, p.memCV),
		},
	}
}

// StepResult aggregates one step over an experiment — the row shapes of
// Tables 1 and 2.
type StepResult struct {
	Step Step
	Dur  metrics.Agg       // seconds
	Proc metrics.ProcStats // CPU/iowait/mem samples
}

// Report is one environment's experiment outcome.
type Report struct {
	Env       Environment
	Files     int
	Makespan  float64 // seconds, submission of first to completion of last
	StepStats [numSteps]StepResult
	// Efficiency is busy-CPU over allocated-CPU for the whole run (the
	// "reported job efficiency ... about 72%" for HPC).
	Efficiency float64
	// CostUSD is the instance cost (cloud only).
	CostUSD float64
	// FailedSteps counts step failures (the paper observed none).
	FailedSteps int
	// Outputs is the store holding per-run results (cloud runs: the S3
	// bucket), usable for atlas assembly.
	Outputs *storage.Store
}

// observe folds a step execution into the report.
func (r *Report) observe(ex StepExecution) {
	st := &r.StepStats[ex.Step]
	st.Step = ex.Step
	st.Proc.Step = ex.Step.String()
	st.Dur.Observe(ex.DurationSec)
	st.Proc.Observe(ex.Sample)
}

// PipelineSeconds returns the summed mean per-file pipeline latency.
func (r *Report) PipelineSeconds() float64 {
	total := 0.0
	for _, st := range r.StepStats {
		total += st.Dur.Mean()
	}
	return total
}
