package atlas

import (
	"testing"

	"hhcw/internal/cloud"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func spotCfg(rate float64) cloud.SpotConfig {
	return cloud.SpotConfig{
		Type:             cloud.T3Medium,
		DiscountFactor:   0.3,
		InterruptionRate: rate,
	}
}

func TestSpotNoInterruptionsMatchesOnDemandShape(t *testing.T) {
	rng := randx.New(5)
	cat := GenerateCatalog(rng.Fork(), 30)
	rep, err := RunCloudSpot(sim.NewEngine(), rng.Fork(), cat, 6, spotCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interruptions != 0 || rep.RedoneFiles != 0 {
		t.Fatalf("unexpected interruptions: %+v", rep)
	}
	if rep.Files != 30 {
		t.Fatalf("files = %d", rep.Files)
	}
	// Spot price is 30 % of on-demand.
	if rep.OnDemandCostUSD <= rep.CostUSD*3-1e-9 {
		t.Fatalf("cost accounting: spot %v, on-demand %v", rep.CostUSD, rep.OnDemandCostUSD)
	}
}

func TestSpotInterruptionsRecovered(t *testing.T) {
	rng := randx.New(9)
	cat := GenerateCatalog(rng.Fork(), 40)
	// Aggressive reclaim rate: ~2 interruptions/hour/instance.
	rep, err := RunCloudSpot(sim.NewEngine(), rng.Fork(), cat, 6, spotCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interruptions == 0 {
		t.Fatal("expected interruptions at rate 2/h")
	}
	// Every file still processed exactly once to completion.
	if rep.Files != 40 {
		t.Fatalf("files = %d", rep.Files)
	}
	if rep.RedoneFiles == 0 {
		t.Fatal("expected in-flight work to be requeued")
	}
}

func TestSpotCheaperDespiteRedoneWork(t *testing.T) {
	rng := randx.New(13)
	cat := GenerateCatalog(rng.Fork(), 50)
	onDemand, err := RunCloud(sim.NewEngine(), randx.New(14), cat, 6, cloud.T3Medium)
	if err != nil {
		t.Fatal(err)
	}
	spot, err := RunCloudSpot(sim.NewEngine(), randx.New(14), cat, 6, spotCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if spot.CostUSD >= onDemand.CostUSD {
		t.Fatalf("spot cost %v not below on-demand %v despite %d interruptions",
			spot.CostUSD, onDemand.CostUSD, spot.Interruptions)
	}
	// Makespan suffers a bit but stays the same order of magnitude.
	if spot.Makespan > onDemand.Makespan*2.5 {
		t.Fatalf("spot makespan blew up: %v vs %v", spot.Makespan, onDemand.Makespan)
	}
}

func TestSpotValidation(t *testing.T) {
	if _, err := RunCloudSpot(sim.NewEngine(), randx.New(1), nil, 0, spotCfg(0)); err == nil {
		t.Fatal("zero instances accepted")
	}
}
