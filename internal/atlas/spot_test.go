package atlas

import (
	"testing"

	"hhcw/internal/cloud"
	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

func spotCfg(rate float64) cloud.SpotConfig {
	return cloud.SpotConfig{
		Type:             cloud.T3Medium,
		DiscountFactor:   0.3,
		InterruptionRate: rate,
	}
}

func TestSpotNoInterruptionsMatchesOnDemandShape(t *testing.T) {
	rng := randx.New(5)
	cat := GenerateCatalog(rng.Fork(), 30)
	rep, err := RunCloudSpot(sim.NewEngine(), rng.Fork(), cat, 6, spotCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interruptions != 0 || rep.RedoneFiles != 0 {
		t.Fatalf("unexpected interruptions: %+v", rep)
	}
	if rep.Files != 30 {
		t.Fatalf("files = %d", rep.Files)
	}
	// Spot price is 30 % of on-demand.
	if rep.OnDemandCostUSD <= rep.CostUSD*3-1e-9 {
		t.Fatalf("cost accounting: spot %v, on-demand %v", rep.CostUSD, rep.OnDemandCostUSD)
	}
}

func TestSpotInterruptionsRecovered(t *testing.T) {
	rng := randx.New(9)
	cat := GenerateCatalog(rng.Fork(), 40)
	// Aggressive reclaim rate: ~2 interruptions/hour/instance.
	rep, err := RunCloudSpot(sim.NewEngine(), rng.Fork(), cat, 6, spotCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interruptions == 0 {
		t.Fatal("expected interruptions at rate 2/h")
	}
	// Every file still processed exactly once to completion.
	if rep.Files != 40 {
		t.Fatalf("files = %d", rep.Files)
	}
	if rep.RedoneFiles == 0 {
		t.Fatal("expected in-flight work to be requeued")
	}
}

func TestSpotCheaperDespiteRedoneWork(t *testing.T) {
	rng := randx.New(13)
	cat := GenerateCatalog(rng.Fork(), 50)
	onDemand, err := RunCloud(sim.NewEngine(), randx.New(14), cat, 6, cloud.T3Medium)
	if err != nil {
		t.Fatal(err)
	}
	spot, err := RunCloudSpot(sim.NewEngine(), randx.New(14), cat, 6, spotCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if spot.CostUSD >= onDemand.CostUSD {
		t.Fatalf("spot cost %v not below on-demand %v despite %d interruptions",
			spot.CostUSD, onDemand.CostUSD, spot.Interruptions)
	}
	// Makespan suffers a bit but stays the same order of magnitude.
	if spot.Makespan > onDemand.Makespan*2.5 {
		t.Fatalf("spot makespan blew up: %v vs %v", spot.Makespan, onDemand.Makespan)
	}
}

func TestSpotValidation(t *testing.T) {
	if _, err := RunCloudSpot(sim.NewEngine(), randx.New(1), nil, 0, spotCfg(0)); err == nil {
		t.Fatal("zero instances accepted")
	}
}

func TestSpotReclaimBetweenTasks(t *testing.T) {
	// A tiny catalog on a big fleet with a brutal reclaim rate guarantees
	// some interruptions land while a worker is idle between tasks (current
	// == ""): those must not requeue anything or corrupt the live count.
	rng := randx.New(21)
	cat := GenerateCatalog(rng.Fork(), 4)
	rep, err := RunCloudSpot(sim.NewEngine(), rng.Fork(), cat, 8, spotCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 4 {
		t.Fatalf("files = %d", rep.Files)
	}
	if rep.RedoneFiles > rep.Interruptions {
		t.Fatalf("redone %d > interruptions %d: idle reclaim requeued phantom work",
			rep.RedoneFiles, rep.Interruptions)
	}
}

func TestSpotReclaimOfLastItemHolder(t *testing.T) {
	// One item, one instance, frequent reclaims: when the worker holding the
	// last queue item is reclaimed, the item must return to the queue and a
	// replacement must finish it.
	interruptions, redone := 0, 0
	for seed := int64(1); seed <= 20; seed++ {
		rng := randx.New(seed)
		cat := GenerateCatalog(rng.Fork(), 1)
		rep, err := RunCloudSpot(sim.NewEngine(), rng.Fork(), cat, 1, spotCfg(3))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Files != 1 {
			t.Fatalf("seed %d: files = %d", seed, rep.Files)
		}
		interruptions += rep.Interruptions
		redone += rep.RedoneFiles
	}
	if interruptions == 0 || redone == 0 {
		t.Fatalf("edge never exercised: %d interruptions, %d redone across seeds", interruptions, redone)
	}
}

func TestSpotLiveInvariantsOver50Seeds(t *testing.T) {
	// live must never exceed maxInstances nor go negative, across seeds and
	// reclaim rates (RunCloudSpot internally errors on a negative count).
	const maxInst = 5
	for seed := int64(1); seed <= 50; seed++ {
		rng := randx.New(seed)
		cat := GenerateCatalog(rng.Fork(), 12)
		rate := float64(seed%4) * 2 // 0, 2, 4, 6 per hour
		rep, err := RunCloudSpot(sim.NewEngine(), rng.Fork(), cat, maxInst, spotCfg(rate))
		if err != nil {
			t.Fatalf("seed %d rate %v: %v", seed, rate, err)
		}
		if rep.PeakLive > maxInst {
			t.Fatalf("seed %d: peak live %d exceeds cap %d", seed, rep.PeakLive, maxInst)
		}
		if rep.PeakLive <= 0 {
			t.Fatalf("seed %d: peak live %d, fleet never worked", seed, rep.PeakLive)
		}
		if rep.Files != 12 {
			t.Fatalf("seed %d: files = %d", seed, rep.Files)
		}
	}
}
