// Package entk implements a RADICAL-EnTK-style Ensemble Toolkit (§4): the
// Pipeline-Stage-Task (PST) programming model on top of a pilot runtime.
//
// "Pipeline is a sequence of Stages, and each Stage is a set of independent
// computing Tasks. Multiple pipelines can be executed concurrently, while
// stages, within each pipeline, are executed sequentially."
//
// Fault tolerance follows the paper's ExaAM applications: tasks that fail
// (e.g. from node faults) are collected and re-submitted "as part of the
// consecutive batch job (i.e., the next EnTK run)", with a smaller job whose
// size "correlates to the number of failed tasks", preserving the order of
// the original stages.
package entk

import (
	"fmt"

	"hhcw/internal/cluster"
	"hhcw/internal/fault"
	"hhcw/internal/metrics"
	"hhcw/internal/pilot"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

// TaskState tracks a task through the EnTK state model.
type TaskState int

// Task states.
const (
	Initial TaskState = iota
	Scheduling
	Executed
	Failed
)

// String returns the state name.
func (s TaskState) String() string {
	switch s {
	case Initial:
		return "initial"
	case Scheduling:
		return "scheduling"
	case Executed:
		return "executed"
	default:
		return "failed"
	}
}

// Task is one EnTK computing task (whole-node granularity, like the ExaAM
// codes: AdditiveFOAM 4 nodes, ExaCA 1 node, ExaConstit 8 nodes).
type Task struct {
	ID          string
	Nodes       int
	DurationSec float64

	// FailAttempts makes the first N submissions fail at half the task's
	// duration — the knob fault-injection experiments use to model
	// application-level failures (the paper's "too large of a time step"
	// cases) independent of node faults.
	FailAttempts int

	state    TaskState
	attempts int
}

// State returns the task's current state.
func (t *Task) State() TaskState { return t.state }

// Attempts returns how many times the task was submitted.
func (t *Task) Attempts() int { return t.attempts }

// Stage is a set of independent tasks.
type Stage struct {
	Name  string
	Tasks []*Task

	// PostExec, when set, fires once when every task of the stage is
	// terminal in its first job, before the next stage starts. It may
	// append stages to the pipeline — EnTK's dynamic-workflow capability:
	// "handle the size of a workflow dynamically, e.g., create a new
	// workflow stages based on the status of previously executed stages"
	// (§4). Stages appended by PostExec run in order after the existing
	// ones.
	PostExec func(p *Pipeline, s *Stage)

	postExecFired bool
}

// AddTask appends a task and returns it (builder style).
func (s *Stage) AddTask(t *Task) *Task {
	s.Tasks = append(s.Tasks, t)
	return t
}

// Pipeline is a sequence of stages.
type Pipeline struct {
	Name   string
	Stages []*Stage
}

// AddStage appends a stage and returns it (builder style).
func (p *Pipeline) AddStage(s *Stage) *Stage {
	p.Stages = append(p.Stages, s)
	return s
}

// ResourceDesc describes the pilot allocation an AppManager acquires —
// EnTK's resource description, reconfigured per platform (§4.3).
type ResourceDesc struct {
	Nodes    int
	Walltime sim.Time
	Account  string

	BootstrapSec float64 // agent overhead (Fig 4 OVH)
	SchedRate    float64 // tasks/s (Fig 5, ~269 on Frontier)
	LaunchRate   float64 // tasks/s (Fig 5, ~51 on Frontier)
}

// FrontierResource returns the §4.3 Frontier configuration for a given node
// count.
func FrontierResource(nodes int, walltime sim.Time) ResourceDesc {
	return ResourceDesc{
		Nodes:        nodes,
		Walltime:     walltime,
		Account:      "exaam",
		BootstrapSec: 85,
		SchedRate:    269,
		LaunchRate:   51,
	}
}

// Report summarizes one AppManager run for the Fig 4 / Fig 5 analyses.
type Report struct {
	Rounds        int      // 1 + resubmission jobs
	JobRuntime    sim.Time // first job: grant → release
	Overhead      sim.Time // first job OVH
	TTX           sim.Time // first job: first launch → last completion
	Utilization   float64  // node-seconds busy / (nodes × job runtime), first job
	TasksExecuted int
	TasksFailed   int // terminal failures across all rounds
	ResubmittedOK int // tasks that failed once but succeeded on resubmission
	// RecoveryDelaySec is total virtual time spent in recovery-policy backoff
	// between resubmission rounds (0 without a policy).
	RecoveryDelaySec float64

	// Measured agent throughputs of the first job (Fig 5 slopes).
	MeasuredSchedRate  float64
	MeasuredLaunchRate float64

	// Series from the first job for plotting Fig 4/5.
	Running   []metrics.Point
	Scheduled []metrics.Point
	BusyNodes []metrics.Point
}

// AppManager executes pipelines on pilots, handling acquisition,
// concurrency, and resubmission.
type AppManager struct {
	Resource ResourceDesc
	// MaxResubmitRounds bounds the consecutive smaller jobs for failed
	// tasks (the paper's runs needed one). Ignored when Recovery is set.
	MaxResubmitRounds int
	// Recovery, when set, replaces the ad-hoc MaxResubmitRounds counter
	// with the shared fault.RetryPolicy: the round budget is Attempts()-1
	// and each resubmission job waits out the policy's capped exponential
	// backoff in virtual time before it is submitted.
	Recovery *fault.RetryPolicy
	// RecoveryRNG supplies deterministic backoff jitter (may be nil).
	RecoveryRNG *randx.Source
	// Policy, when set, caps every job's walltime to the facility limit
	// for its node count — "each ensemble respects Frontier's job
	// scheduling policy in terms of walltime limits per amount of
	// requested compute nodes" (§4.2).
	Policy rm.WalltimePolicy

	cl *cluster.Cluster
	bm *rm.BatchManager
}

// resubmitRounds returns the resubmission-round budget: the shared policy's
// retry count when installed, the legacy counter otherwise.
func (am *AppManager) resubmitRounds() int {
	if am.Recovery != nil {
		return am.Recovery.Attempts() - 1
	}
	return am.MaxResubmitRounds
}

// recoveryPause waits out the policy backoff before resubmission round
// `round` (1-based) in virtual time and returns the delay taken. Without a
// policy it returns immediately.
func (am *AppManager) recoveryPause(round int) sim.Time {
	if am.Recovery == nil {
		return 0
	}
	d := am.Recovery.Backoff(round, am.RecoveryRNG)
	if d > 0 {
		// An empty event advances the clock; Run drains it before the next
		// pilot submission, so the smaller job starts after the backoff.
		am.cl.Engine().After(d, func() {})
		am.cl.Engine().Run()
	}
	return d
}

// NewAppManager creates an AppManager over a cluster and batch manager.
func NewAppManager(cl *cluster.Cluster, bm *rm.BatchManager, res ResourceDesc) *AppManager {
	return &AppManager{Resource: res, MaxResubmitRounds: 1, cl: cl, bm: bm}
}

// RunPerJob executes each pipeline in its own batch job with its own
// resource description — §4's requirement (ii): "either having one large
// batch job for all workflows or setting a workflow per batch job with the
// different numbers of acquired compute nodes and runtime." Jobs run
// concurrently (subject to batch-queue capacity); each gets its own report.
// resources must be parallel to pipelines.
func (am *AppManager) RunPerJob(pipelines []*Pipeline, resources []ResourceDesc) ([]*Report, error) {
	if len(pipelines) != len(resources) {
		return nil, fmt.Errorf("entk: %d pipelines but %d resource descriptions", len(pipelines), len(resources))
	}
	reports := make([]*Report, len(pipelines))
	managers := make([]*AppManager, len(pipelines))
	failedAll := make([][][]*Task, len(pipelines))
	var firstErr error
	// One manager per job keeps resource descriptions and resubmission
	// state independent.
	for i := range pipelines {
		managers[i] = &AppManager{
			Resource:          resources[i],
			MaxResubmitRounds: am.MaxResubmitRounds,
			Recovery:          am.Recovery,
			RecoveryRNG:       am.RecoveryRNG,
			Policy:            am.Policy,
			cl:                am.cl,
			bm:                am.bm,
		}
	}
	// Start every job before driving the engine, so the pilots coexist
	// (batch queueing serializes only those that do not fit together).
	finishers := make([]func() ([][]*Task, error), len(pipelines))
	for i, pl := range pipelines {
		reports[i] = &Report{}
		finish, err := managers[i].startJob(resources[i], []*Pipeline{pl}, reports[i], true)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("entk: pipeline %q: %w", pl.Name, err)
		}
		finishers[i] = finish
	}
	if firstErr != nil {
		return reports, firstErr
	}
	am.cl.Engine().Run()
	for i := range pipelines {
		failed, err := finishers[i]()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("entk: pipeline %q: %w", pipelines[i].Name, err)
		}
		reports[i].Rounds = 1
		failedAll[i] = failed
	}
	if firstErr != nil {
		return reports, firstErr
	}
	// Resubmission rounds per pipeline.
	for i, pl := range pipelines {
		mgr := managers[i]
		for round := 0; round < mgr.resubmitRounds(); round++ {
			n := 0
			for _, tasks := range failedAll[i] {
				n += len(tasks)
			}
			if n == 0 {
				break
			}
			nodes := 0
			maxNodes := 0
			for _, tasks := range failedAll[i] {
				for _, t := range tasks {
					nodes += t.Nodes
					if t.Nodes > maxNodes {
						maxNodes = t.Nodes
					}
				}
			}
			if nodes > resources[i].Nodes {
				nodes = resources[i].Nodes
			}
			if nodes < maxNodes {
				nodes = maxNodes
			}
			res := resources[i]
			res.Nodes = nodes
			rp := &Pipeline{Name: pl.Name + "-resubmit"}
			for si, tasks := range failedAll[i] {
				if len(tasks) == 0 {
					continue
				}
				rp.Stages = append(rp.Stages, &Stage{Name: fmt.Sprintf("resubmit-%d", si), Tasks: tasks})
			}
			reports[i].RecoveryDelaySec += float64(mgr.recoveryPause(round + 1))
			before := countExecuted([]*Pipeline{pl})
			var err error
			failedAll[i], err = mgr.runJob(res, []*Pipeline{rp}, reports[i], false)
			if err != nil {
				return reports, err
			}
			reports[i].Rounds++
			reports[i].ResubmittedOK += countExecuted([]*Pipeline{pl}) - before
		}
		for _, tasks := range failedAll[i] {
			reports[i].TasksFailed += len(tasks)
		}
		reports[i].TasksExecuted = countExecuted([]*Pipeline{pl})
	}
	return reports, nil
}

// Run executes the pipelines to completion (including resubmission rounds)
// and returns the report. It drives the sim engine.
func (am *AppManager) Run(pipelines ...*Pipeline) (*Report, error) {
	rep := &Report{}
	var failedByStage [][]*Task // preserves original stage order

	// Round 0: full job.
	failed, err := am.runJob(am.Resource, pipelines, rep, true)
	if err != nil {
		return nil, err
	}
	rep.Rounds = 1
	failedByStage = failed

	// Resubmission rounds: smaller jobs sized to the failed work.
	for round := 0; round < am.resubmitRounds(); round++ {
		n := 0
		maxNodes := 0
		for _, tasks := range failedByStage {
			for _, t := range tasks {
				n++
				if t.Nodes > maxNodes {
					maxNodes = t.Nodes
				}
			}
		}
		if n == 0 {
			break
		}
		// Job size correlates with the failed-task count (§4.2), bounded
		// by the original allocation.
		nodes := 0
		for _, tasks := range failedByStage {
			for _, t := range tasks {
				nodes += t.Nodes
			}
		}
		if nodes > am.Resource.Nodes {
			nodes = am.Resource.Nodes
		}
		if nodes < maxNodes {
			nodes = maxNodes
		}
		res := am.Resource
		res.Nodes = nodes

		// Preserve stage order: one synthetic pipeline, one stage per
		// original stage with failures.
		rp := &Pipeline{Name: "resubmit"}
		for i, tasks := range failedByStage {
			if len(tasks) == 0 {
				continue
			}
			st := &Stage{Name: fmt.Sprintf("resubmit-%d", i)}
			st.Tasks = tasks
			rp.Stages = append(rp.Stages, st)
		}
		rep.RecoveryDelaySec += float64(am.recoveryPause(round + 1))
		before := countExecuted(pipelines)
		failedByStage, err = am.runJob(res, []*Pipeline{rp}, rep, false)
		if err != nil {
			return nil, err
		}
		rep.Rounds++
		rep.ResubmittedOK += countExecuted(pipelines) - before
	}
	// Terminal failures.
	for _, tasks := range failedByStage {
		rep.TasksFailed += len(tasks)
	}
	rep.TasksExecuted = countExecuted(pipelines)
	return rep, nil
}

func countExecuted(pipelines []*Pipeline) int {
	n := 0
	for _, p := range pipelines {
		for _, s := range p.Stages {
			for _, t := range s.Tasks {
				if t.state == Executed {
					n++
				}
			}
		}
	}
	return n
}

// runJob acquires one pilot, runs the given pipelines concurrently, and
// returns failed tasks grouped by a global stage index (pipeline-major).
// runJob acquires one pilot, runs the given pipelines concurrently, drives
// the engine to completion, and returns failed tasks grouped by a global
// stage index.
func (am *AppManager) runJob(res ResourceDesc, pipelines []*Pipeline, rep *Report, first bool) ([][]*Task, error) {
	finish, err := am.startJob(res, pipelines, rep, first)
	if err != nil {
		return nil, err
	}
	am.cl.Engine().Run()
	return finish()
}

// startJob submits the pilot and wires the stage logic without driving the
// engine; call the returned finish after the engine drains. This split lets
// several jobs run concurrently (RunPerJob).
func (am *AppManager) startJob(res ResourceDesc, pipelines []*Pipeline, rep *Report, first bool) (func() ([][]*Task, error), error) {
	if am.Policy != nil {
		if cap := am.Policy(res.Nodes); res.Walltime > cap {
			res.Walltime = cap
		}
	}
	p, err := pilot.Submit(am.bm, am.cl, pilot.Config{
		Nodes:        res.Nodes,
		Walltime:     res.Walltime,
		Account:      res.Account,
		BootstrapSec: res.BootstrapSec,
		SchedRate:    res.SchedRate,
		LaunchRate:   res.LaunchRate,
	})
	if err != nil {
		return nil, err
	}

	// Global stage indexing for order-preserving resubmission.
	stageIndex := map[*Stage]int{}
	idx := 0
	for _, pl := range pipelines {
		for _, s := range pl.Stages {
			stageIndex[s] = idx
			idx++
		}
	}

	job := &jobRun{
		p:             p,
		stageIndex:    stageIndex,
		failedByStage: make([][]*Task, idx),
		active:        len(pipelines),
	}
	p.OnActive(func() {
		for _, pl := range pipelines {
			job.runStage(pl, 0)
		}
	})
	finish := func() ([][]*Task, error) {
		if p.State() == pilot.Pending {
			return nil, fmt.Errorf("entk: pilot for %d nodes was never granted (cluster has %d healthy nodes)",
				res.Nodes, len(am.cl.UpNodes()))
		}
		if first {
			rep.Overhead = p.Overhead()
			rep.TTX = p.TTX()
			end := p.StartedAt() + p.Overhead() + p.TTX()
			rep.JobRuntime = end - p.StartedAt()
			if res.Nodes > 0 && rep.JobRuntime > 0 {
				rep.Utilization = p.BusyNodesSeries().Integral(p.StartedAt(), end) /
					(float64(res.Nodes) * float64(rep.JobRuntime))
			}
			rep.MeasuredSchedRate = measuredRate(p.ScheduledSeries().Points())
			rep.MeasuredLaunchRate = measuredRate(p.LaunchedSeries().Points())
			rep.Running = copySeries(p.RunningSeries().Points())
			rep.Scheduled = copySeries(p.ScheduledSeries().Points())
			rep.BusyNodes = copySeries(p.BusyNodesSeries().Points())
		}
		return job.failedByStage, nil
	}
	return finish, nil
}

// jobRun is one startJob invocation's dispatch state: the pilot, the global
// stage index for order-preserving resubmission, and the count of pipelines
// still executing. Bundling it lets stages and task attempts be plain
// records instead of a lattice of capturing closures on the hot path.
type jobRun struct {
	p             *pilot.Pilot
	stageIndex    map[*Stage]int
	failedByStage [][]*Task
	active        int
}

// recordFailed appends a task to its stage's global failure bucket.
func (j *jobRun) recordFailed(stage *Stage, t *Task) {
	gi := j.stageIndex[stage]
	j.failedByStage[gi] = append(j.failedByStage[gi], t)
}

// firePostExec runs a stage's PostExec hook once and registers any stages
// the hook appended, preserving resubmission order.
func (j *jobRun) firePostExec(pl *Pipeline, stage *Stage) {
	if stage.PostExec == nil || stage.postExecFired {
		return
	}
	stage.postExecFired = true
	stage.PostExec(pl, stage)
	for _, s := range pl.Stages {
		if _, known := j.stageIndex[s]; !known {
			j.stageIndex[s] = len(j.failedByStage)
			j.failedByStage = append(j.failedByStage, nil)
		}
	}
}

// runStage submits stage si of pipeline pl, advancing to the next stage when
// it drains (or releasing the pilot when every pipeline has finished).
func (j *jobRun) runStage(pl *Pipeline, si int) {
	if si >= len(pl.Stages) {
		j.active--
		if j.active == 0 {
			j.p.Release()
		}
		return
	}
	stage := pl.Stages[si]
	if len(stage.Tasks) == 0 {
		j.firePostExec(pl, stage)
		j.runStage(pl, si+1)
		return
	}
	sr := &stageRun{job: j, pl: pl, si: si, stage: stage, remaining: len(stage.Tasks)}
	for _, task := range stage.Tasks {
		task.state = Scheduling
		task.attempts++
		a := &taskAttempt{sr: sr, task: task}
		a.pt = pilot.Task{
			ID:           fmt.Sprintf("%s/%s/%s#%d", pl.Name, stage.Name, task.ID, task.attempts),
			Nodes:        task.Nodes,
			DurationSec:  task.DurationSec,
			Fail:         task.attempts <= task.FailAttempts,
			FailAfterSec: task.DurationSec / 2,
			Handler:      a,
		}
		if err := j.p.SubmitTask(&a.pt); err != nil {
			task.state = Failed
			j.recordFailed(stage, task)
			sr.remaining--
			if sr.remaining == 0 {
				// Mirrors the historical synchronous-rejection path, which
				// advances without firing PostExec.
				j.runStage(pl, si+1)
			}
		}
	}
}

// stageRun tracks one in-flight stage: how many tasks are still outstanding
// and where to go when the last one completes.
type stageRun struct {
	job       *jobRun
	pl        *Pipeline
	si        int
	stage     *Stage
	remaining int
}

// taskAttempt is one task submission: the pilot task embedded alongside the
// completion context, so submitting a task costs a single allocation.
type taskAttempt struct {
	sr   *stageRun
	task *Task
	pt   pilot.Task
}

// OnTaskDone implements pilot.TaskHandler.
func (a *taskAttempt) OnTaskDone(r pilot.TaskResult) {
	sr, task := a.sr, a.task
	if r.Failed {
		task.state = Failed
		sr.job.recordFailed(sr.stage, task)
	} else {
		task.state = Executed
	}
	sr.remaining--
	if sr.remaining == 0 {
		sr.job.firePostExec(sr.pl, sr.stage)
		sr.job.runStage(sr.pl, sr.si+1)
	}
}

// measuredRate returns events/second over the initial ramp of a cumulative
// counter series — the slope the paper reads off Fig 5 ("initial slopes of
// blue and orange lines"). The ramp ends at the first inter-event gap an
// order of magnitude above the running mean gap (i.e. when launches stall
// waiting for completions) or at the series end.
func measuredRate(pts []metrics.Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	end := len(pts) - 1
	meanGap := 0.0
	for i := 1; i < len(pts); i++ {
		gap := float64(pts[i].T - pts[i-1].T)
		if i >= 3 && meanGap > 0 && gap > 10*meanGap {
			end = i - 1
			break
		}
		meanGap += (gap - meanGap) / float64(i)
	}
	span := float64(pts[end].T - pts[0].T)
	if span <= 0 {
		return 0
	}
	return (pts[end].V - pts[0].V) / span
}

func copySeries(pts []metrics.Point) []metrics.Point {
	return append([]metrics.Point(nil), pts...)
}
