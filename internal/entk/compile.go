package entk

import (
	"fmt"

	"hhcw/internal/dag"
)

// Compile flattens the Pipeline-Stage-Task model into a validated DAG,
// implementing the compose.Compiler interface: tasks within a stage are
// independent, and every task of stage i depends on every task of the
// previous non-empty stage — the PST barrier semantics, expressed as edges.
//
// Two PST features do not survive static compilation and are rejected or
// reinterpreted explicitly:
//
//   - PostExec (dynamic stage growth) has no static task set; compiling a
//     pipeline with PostExec hooks returns an error. Run such pipelines
//     through the AppManager, or — for composed/streaming execution — use
//     Pipeline.Expand, whose StageExpander grows the frontier as hooks fire.
//   - Node-granular sizing maps to core requests one-for-one (a 8-node
//     ExaConstit task becomes an 8-core task). Execute compiled ensembles on
//     environments whose nodes have at least the largest task's node count
//     in cores, or rescale before composing.
//
// Per-task FailAttempts knobs are dropped: composed workflows take failure
// injection from the executing environment's fault profile, which keeps
// composed runs a pure function of (workflow, environment, seed).
func (p *Pipeline) Compile() (*dag.Workflow, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("entk: cannot compile a pipeline without a name")
	}
	w := dag.New(p.Name)
	var prev []dag.TaskID
	for si, st := range p.Stages {
		if st.PostExec != nil {
			return nil, fmt.Errorf("entk: stage %q has a PostExec hook; dynamic pipelines have no static task set — run them through Pipeline.Expand (lazy expansion) or the AppManager", st.Name)
		}
		if len(st.Tasks) == 0 {
			continue
		}
		stageName := st.Name
		if stageName == "" {
			stageName = fmt.Sprintf("stage%02d", si)
		}
		ids := make([]dag.TaskID, 0, len(st.Tasks))
		for _, t := range st.Tasks {
			if t.DurationSec <= 0 {
				return nil, fmt.Errorf("entk: task %q has non-positive duration", t.ID)
			}
			nodes := t.Nodes
			if nodes < 1 {
				nodes = 1
			}
			id := dag.TaskID(stageName + "/" + t.ID)
			if w.Task(id) != nil {
				return nil, fmt.Errorf("entk: duplicate task %q in compiled pipeline %q", id, p.Name)
			}
			w.Add(&dag.Task{
				ID:         id,
				Name:       stageName,
				Cores:      nodes,
				NominalDur: t.DurationSec,
				Deps:       append([]dag.TaskID(nil), prev...),
				Params:     map[string]string{"nodes": fmt.Sprint(nodes)},
			})
			ids = append(ids, id)
		}
		prev = ids
	}
	if w.Len() == 0 {
		return nil, fmt.Errorf("entk: pipeline %q compiles to an empty workflow", p.Name)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
