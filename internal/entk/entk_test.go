package entk

import (
	"fmt"
	"testing"

	"hhcw/internal/cluster"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
)

func setup(nodes int) (*sim.Engine, *cluster.Cluster, *rm.BatchManager) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, "t", cluster.Spec{
		Type:  cluster.NodeType{Name: "n", Cores: 8, GPUs: 1, MemBytes: 1e12},
		Count: nodes,
	})
	return eng, cl, rm.NewBatchManager(cl, nil)
}

func simplePipeline(stageTasks ...[]float64) *Pipeline {
	p := &Pipeline{Name: "p"}
	for i, durs := range stageTasks {
		s := p.AddStage(&Stage{Name: fmt.Sprintf("s%d", i)})
		for j, d := range durs {
			s.AddTask(&Task{ID: fmt.Sprintf("t%d-%d", i, j), Nodes: 1, DurationSec: d})
		}
	}
	return p
}

func TestStagesRunSequentially(t *testing.T) {
	_, cl, bm := setup(4)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 4, Walltime: 1e6})
	p := simplePipeline([]float64{10, 10}, []float64{20})
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0 tasks run concurrently (10s), then stage 1 (20s).
	if rep.TTX != 30 {
		t.Fatalf("TTX = %v, want 30", rep.TTX)
	}
	if rep.TasksExecuted != 3 || rep.TasksFailed != 0 {
		t.Fatalf("executed=%d failed=%d", rep.TasksExecuted, rep.TasksFailed)
	}
	for _, s := range p.Stages {
		for _, task := range s.Tasks {
			if task.State() != Executed {
				t.Fatalf("task %s state = %v", task.ID, task.State())
			}
		}
	}
}

func TestPipelinesRunConcurrently(t *testing.T) {
	_, cl, bm := setup(4)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 4, Walltime: 1e6})
	p1 := simplePipeline([]float64{100})
	p2 := simplePipeline([]float64{100})
	rep, err := am.Run(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TTX != 100 { // concurrent, not 200
		t.Fatalf("TTX = %v, want 100 (concurrent pipelines)", rep.TTX)
	}
}

func TestStageBarrierWaitsForSlowest(t *testing.T) {
	_, cl, bm := setup(4)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 4, Walltime: 1e6})
	p := simplePipeline([]float64{10, 90}, []float64{10})
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TTX != 100 { // max(10,90) + 10
		t.Fatalf("TTX = %v, want 100", rep.TTX)
	}
}

func TestOverheadReported(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6, BootstrapSec: 85})
	rep, err := am.Run(simplePipeline([]float64{100}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead != 85 {
		t.Fatalf("Overhead = %v, want 85", rep.Overhead)
	}
	if rep.JobRuntime != 185 {
		t.Fatalf("JobRuntime = %v, want 185 (OVH+TTX)", rep.JobRuntime)
	}
}

func TestUtilizationFullMachine(t *testing.T) {
	_, cl, bm := setup(4)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 4, Walltime: 1e6})
	// 4 tasks × 1 node × 100 s on 4 nodes: full busy during TTX.
	rep, err := am.Run(simplePipeline([]float64{100, 100, 100, 100}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Utilization < 0.99 {
		t.Fatalf("Utilization = %v, want ~1", rep.Utilization)
	}
}

func TestResubmissionAfterNodeFailure(t *testing.T) {
	eng, cl, bm := setup(4)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 4, Walltime: 1e6})
	p := simplePipeline([]float64{100, 100, 100, 100})
	// Fail one node mid-run: one task dies, gets resubmitted in round 2.
	eng.At(50, func() { cl.FailNode(cl.Nodes()[0]) })
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", rep.Rounds)
	}
	if rep.TasksExecuted != 4 {
		t.Fatalf("executed = %d, want all 4 after resubmission", rep.TasksExecuted)
	}
	if rep.ResubmittedOK != 1 {
		t.Fatalf("ResubmittedOK = %d, want 1", rep.ResubmittedOK)
	}
	if rep.TasksFailed != 0 {
		t.Fatalf("terminal failures = %d, want 0", rep.TasksFailed)
	}
}

func TestResubmissionJobIsSmaller(t *testing.T) {
	eng, cl, bm := setup(8)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 8, Walltime: 1e6})
	p := simplePipeline([]float64{100, 100, 100, 100, 100, 100, 100, 100})
	eng.At(50, func() { cl.FailNode(cl.Nodes()[0]) })
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 2 || rep.TasksExecuted != 8 {
		t.Fatalf("rounds=%d executed=%d", rep.Rounds, rep.TasksExecuted)
	}
	// The resubmission job requested 1 node (1 failed 1-node task): its
	// batch job was the second started.
	if bm.Started() != 2 {
		t.Fatalf("batch jobs = %d, want 2", bm.Started())
	}
}

func TestMaxResubmitRoundsZero(t *testing.T) {
	eng, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})
	am.MaxResubmitRounds = 0
	p := simplePipeline([]float64{100, 100})
	eng.At(50, func() { cl.FailNode(cl.Nodes()[0]) })
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1", rep.Rounds)
	}
	if rep.TasksFailed != 1 {
		t.Fatalf("TasksFailed = %d, want 1 terminal failure", rep.TasksFailed)
	}
}

func TestMeasuredRatesWithLimits(t *testing.T) {
	_, cl, bm := setup(50)
	am := NewAppManager(cl, bm, ResourceDesc{
		Nodes: 50, Walltime: 1e6, SchedRate: 10, LaunchRate: 5,
	})
	stage := &Stage{Name: "s"}
	for i := 0; i < 100; i++ {
		stage.AddTask(&Task{ID: fmt.Sprintf("t%03d", i), Nodes: 1, DurationSec: 500})
	}
	p := &Pipeline{Name: "p", Stages: []*Stage{stage}}
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeasuredSchedRate < 8 || rep.MeasuredSchedRate > 12 {
		t.Fatalf("sched rate = %v, want ~10", rep.MeasuredSchedRate)
	}
	if rep.MeasuredLaunchRate < 1 || rep.MeasuredLaunchRate > 6 {
		t.Fatalf("launch rate = %v, want <= 5", rep.MeasuredLaunchRate)
	}
	if len(rep.Running) == 0 || len(rep.Scheduled) == 0 || len(rep.BusyNodes) == 0 {
		t.Fatal("series not captured")
	}
}

func TestFrontierResource(t *testing.T) {
	r := FrontierResource(8000, 12*3600)
	if r.Nodes != 8000 || r.SchedRate != 269 || r.LaunchRate != 51 || r.BootstrapSec != 85 {
		t.Fatalf("FrontierResource = %+v", r)
	}
}

func TestEmptyStageSkipped(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})
	p := &Pipeline{Name: "p"}
	p.AddStage(&Stage{Name: "empty"})
	p.AddStage(&Stage{Name: "real", Tasks: []*Task{{ID: "t", Nodes: 1, DurationSec: 10}}})
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksExecuted != 1 {
		t.Fatalf("executed = %d", rep.TasksExecuted)
	}
}

func TestOversizedTaskFailsCleanly(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})
	am.MaxResubmitRounds = 0
	p := &Pipeline{Name: "p", Stages: []*Stage{{
		Name:  "s",
		Tasks: []*Task{{ID: "huge", Nodes: 10, DurationSec: 10}},
	}}}
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksFailed != 1 || rep.TasksExecuted != 0 {
		t.Fatalf("failed=%d executed=%d", rep.TasksFailed, rep.TasksExecuted)
	}
}

func TestManyTasksThroughput(t *testing.T) {
	_, cl, bm := setup(100)
	am := NewAppManager(cl, bm, FrontierResource(100, 12*3600))
	rng := randx.New(1)
	stage := &Stage{Name: "ensemble"}
	for i := 0; i < 500; i++ {
		stage.AddTask(&Task{
			ID:          fmt.Sprintf("sim%04d", i),
			Nodes:       2,
			DurationSec: rng.Uniform(600, 1500),
		})
	}
	p := &Pipeline{Name: "uq", Stages: []*Stage{stage}}
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksExecuted != 500 {
		t.Fatalf("executed = %d", rep.TasksExecuted)
	}
	if rep.Utilization < 0.7 {
		t.Fatalf("utilization = %v, want dense packing", rep.Utilization)
	}
}
