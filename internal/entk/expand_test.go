package entk

import (
	"fmt"
	"testing"

	"hhcw/internal/dag"
)

func expandPipeline(n string) *Pipeline {
	p := &Pipeline{Name: n}
	s0 := p.AddStage(&Stage{Name: "prep"})
	s0.AddTask(&Task{ID: "t0", Nodes: 4, DurationSec: 10})
	s0.AddTask(&Task{ID: "t1", Nodes: 1, DurationSec: 5})
	p.AddStage(&Stage{})       // empty stage: skipped by Compile and Expand alike
	s2 := p.AddStage(&Stage{}) // unnamed: defaults to stage%02d by original index
	for i := 0; i < 3; i++ {
		s2.AddTask(&Task{ID: fmt.Sprintf("sim%d", i), Nodes: 2, DurationSec: 20})
	}
	s3 := p.AddStage(&Stage{Name: "analyze"})
	s3.AddTask(&Task{ID: "post", DurationSec: 3}) // Nodes 0 -> 1 core
	return p
}

// Driving the expander with immediate completions must replay exactly the
// task sequence Compile materializes, field for field.
func TestStageExpanderMatchesCompile(t *testing.T) {
	w, err := expandPipeline("pst").Compile()
	if err != nil {
		t.Fatal(err)
	}
	x, err := expandPipeline("pst").Expand()
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != "pst" || x.Total() != w.Len() {
		t.Fatalf("Name/Total: %q/%d, want pst/%d", x.Name(), x.Total(), w.Len())
	}
	want := w.Tasks() // insertion order == stage-major eager order
	got := 0
	for got < len(want) {
		task, idx, ok := x.Next()
		if !ok {
			t.Fatalf("expander dried up after %d of %d tasks", got, len(want))
		}
		if idx != got {
			t.Fatalf("task %s: eager index %d, want %d", task.ID, idx, got)
		}
		ref := want[got]
		if task.ID != ref.ID || task.Name != ref.Name || task.Cores != ref.Cores ||
			task.NominalDur != ref.NominalDur || task.Params["nodes"] != ref.Params["nodes"] {
			t.Fatalf("task %d mismatch:\n got  %+v\n want %+v", got, task, ref)
		}
		got++
		x.TaskDone(task.ID)
	}
	if _, _, ok := x.Next(); ok {
		t.Fatal("expander emitted past Total")
	}
}

// The stage barrier must hold: no later-stage task is emitted while the
// current stage has unfinished tasks.
func TestStageExpanderBarrier(t *testing.T) {
	x, err := expandPipeline("pst").Expand()
	if err != nil {
		t.Fatal(err)
	}
	var stage0 []dag.TaskID
	for {
		task, _, ok := x.Next()
		if !ok {
			break
		}
		stage0 = append(stage0, task.ID)
	}
	if len(stage0) != 2 {
		t.Fatalf("stage 0 emitted %d tasks, want 2", len(stage0))
	}
	x.TaskDone(stage0[0])
	if _, _, ok := x.Next(); ok {
		t.Fatal("next stage emitted before barrier cleared")
	}
	x.TaskDone(stage0[1])
	task, _, ok := x.Next()
	if !ok || task.Name != "stage02" {
		t.Fatalf("after barrier: ok=%v name=%q, want stage02", ok, task.Name)
	}
}

// A terminal failure writes off every later stage but must not block the
// failed task's in-flight (or not-yet-emitted) siblings.
func TestStageExpanderFailureSkips(t *testing.T) {
	x, err := expandPipeline("pst").Expand()
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := x.Next()
	// Fail t0 before its sibling is even emitted: 3 (stage02) + 1 (analyze).
	if n := x.TaskFailed(first.ID); n != 4 {
		t.Fatalf("TaskFailed skipped %d, want 4", n)
	}
	sib, _, ok := x.Next()
	if !ok || sib.ID != "prep/t1" {
		t.Fatalf("sibling after failure: ok=%v id=%v, want prep/t1", ok, sib)
	}
	x.TaskDone(sib.ID)
	if _, _, ok := x.Next(); ok {
		t.Fatal("dead pipeline emitted a later stage")
	}
	// Accounting closes: 2 terminal + 4 skipped == Total.
	if x.Total() != 6 {
		t.Fatalf("Total = %d, want 6", x.Total())
	}
}

func TestExpandValidation(t *testing.T) {
	if _, err := (&Pipeline{}).Expand(); err == nil {
		t.Fatal("unnamed pipeline accepted")
	}
	if _, err := (&Pipeline{Name: "empty"}).Expand(); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	// PostExec pipelines expand fine now — dynamic growth is the lazy
	// path's reason to exist; only Compile still rejects them.
	p := &Pipeline{Name: "dyn"}
	p.AddStage(&Stage{Name: "s", PostExec: func(*Pipeline, *Stage) {}}).
		AddTask(&Task{ID: "t", DurationSec: 1})
	if _, err := p.Expand(); err != nil {
		t.Fatalf("PostExec pipeline rejected by Expand: %v", err)
	}
	if _, err := p.Compile(); err == nil {
		t.Fatal("PostExec pipeline accepted by Compile")
	}
	p2 := &Pipeline{Name: "bad"}
	p2.AddStage(&Stage{Name: "s"}).AddTask(&Task{ID: "t", DurationSec: 0})
	if _, err := p2.Expand(); err == nil {
		t.Fatal("non-positive duration accepted")
	}
	p3 := &Pipeline{Name: "dup"}
	s := p3.AddStage(&Stage{Name: "s"})
	s.AddTask(&Task{ID: "t", DurationSec: 1})
	s.AddTask(&Task{ID: "t", DurationSec: 1})
	if _, err := p3.Expand(); err == nil {
		t.Fatal("duplicate task id accepted")
	}
}

// drainStage pulls every currently-ready task and completes it, returning
// the emitted IDs — one barrier round.
func drainStage(t *testing.T, x *StageExpander) []dag.TaskID {
	t.Helper()
	var ids []dag.TaskID
	for {
		task, _, ok := x.Next()
		if !ok {
			break
		}
		ids = append(ids, task.ID)
	}
	for _, id := range ids {
		x.TaskDone(id)
	}
	return ids
}

// A PostExec hook growing the pipeline mid-run: the expander's Total grows
// with each appended stage and the appended tasks are emitted in order —
// the dynamic-workflow capability Compile still rejects.
func TestStageExpanderPostExecGrowth(t *testing.T) {
	p := &Pipeline{Name: "adaptive"}
	rounds := 0
	var hook func(pl *Pipeline, s *Stage)
	hook = func(pl *Pipeline, s *Stage) {
		rounds++
		if rounds >= 3 {
			return
		}
		next := &Stage{Name: fmt.Sprintf("round%d", rounds), PostExec: hook}
		for i := 0; i < rounds+1; i++ {
			next.AddTask(&Task{ID: fmt.Sprintf("t%d", i), DurationSec: 5})
		}
		pl.AddStage(next)
	}
	p.AddStage(&Stage{Name: "seed", PostExec: hook}).AddTask(&Task{ID: "t0", DurationSec: 5})

	x, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if x.Total() != 1 {
		t.Fatalf("initial Total = %d, want 1", x.Total())
	}
	var all []dag.TaskID
	for {
		ids := drainStage(t, x)
		if len(ids) == 0 {
			break
		}
		all = append(all, ids...)
	}
	// seed(1) + round1(2) + round2(3); round2's hook appends nothing.
	want := []dag.TaskID{"seed/t0", "round1/t0", "round1/t1", "round2/t0", "round2/t1", "round2/t2"}
	if len(all) != len(want) || x.Total() != len(want) {
		t.Fatalf("emitted %d tasks (Total %d), want %d: %v", len(all), x.Total(), len(want), all)
	}
	for i, id := range want {
		if all[i] != id {
			t.Fatalf("task %d = %q, want %q", i, all[i], id)
		}
	}
	if rounds != 3 {
		t.Fatalf("PostExec fired %d times, want 3", rounds)
	}
}

// A terminal failure suppresses the dead stage's PostExec (failed ensembles
// don't grow) and writes off stages already appended but not yet built.
func TestStageExpanderPostExecSuppressedOnFailure(t *testing.T) {
	p := &Pipeline{Name: "adaptive"}
	fired := false
	st := p.AddStage(&Stage{Name: "seed", PostExec: func(pl *Pipeline, s *Stage) { fired = true }})
	st.AddTask(&Task{ID: "t0", DurationSec: 5})
	st.AddTask(&Task{ID: "t1", DurationSec: 5})
	// A pre-appended later stage, to check the write-off accounting.
	p.AddStage(&Stage{Name: "after"}).AddTask(&Task{ID: "a0", DurationSec: 5})

	x, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := x.Next()
	if n := x.TaskFailed(first.ID); n != 1 {
		t.Fatalf("TaskFailed skipped %d, want 1", n)
	}
	sib, _, ok := x.Next()
	if !ok {
		t.Fatal("sibling not emitted after failure")
	}
	x.TaskDone(sib.ID)
	if fired {
		t.Fatal("PostExec fired on a dead stage")
	}
	if _, _, ok := x.Next(); ok {
		t.Fatal("dead pipeline emitted a later stage")
	}
	if x.Total() != 3 {
		t.Fatalf("Total = %d, want 3", x.Total())
	}
}

// Empty stages fire their hooks in passing, exactly like the AppManager's
// runStage — including at Expand time for a leading empty stage.
func TestStageExpanderEmptyStagePostExec(t *testing.T) {
	p := &Pipeline{Name: "empty-hook"}
	p.AddStage(&Stage{Name: "gen", PostExec: func(pl *Pipeline, s *Stage) {
		pl.AddStage(&Stage{Name: "work"}).AddTask(&Task{ID: "t", DurationSec: 2})
	}})
	x, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ids := drainStage(t, x)
	if len(ids) != 1 || ids[0] != "work/t" {
		t.Fatalf("emitted %v, want [work/t]", ids)
	}
	if x.Total() != 1 {
		t.Fatalf("Total = %d, want 1", x.Total())
	}
}
