package entk

import (
	"testing"
)

// TestRunPerJobConcurrent verifies §4's requirement (ii): one workflow per
// batch job, different node counts and runtimes, executing concurrently.
func TestRunPerJobConcurrent(t *testing.T) {
	_, cl, bm := setup(8)
	am := NewAppManager(cl, bm, ResourceDesc{})

	p1 := simplePipeline([]float64{100, 100})
	p1.Name = "wf-a"
	p2 := simplePipeline([]float64{100})
	p2.Name = "wf-b"
	reports, err := am.RunPerJob(
		[]*Pipeline{p1, p2},
		[]ResourceDesc{
			{Nodes: 4, Walltime: 1e6},
			{Nodes: 2, Walltime: 1e6},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].TasksExecuted != 2 || reports[1].TasksExecuted != 1 {
		t.Fatalf("executed = %d/%d", reports[0].TasksExecuted, reports[1].TasksExecuted)
	}
	// Concurrency: both jobs fit the 8-node cluster, so both TTX ≈ 100 and
	// the overall virtual clock is ~100, not 200.
	if reports[0].TTX != 100 || reports[1].TTX != 100 {
		t.Fatalf("TTX = %v/%v, want 100/100 (concurrent jobs)", reports[0].TTX, reports[1].TTX)
	}
	if bm.Started() != 2 {
		t.Fatalf("batch jobs = %d", bm.Started())
	}
}

// TestRunPerJobQueuesWhenOversubscribed: jobs that do not fit together are
// serialized by the batch queue, like a real facility.
func TestRunPerJobQueuesWhenOversubscribed(t *testing.T) {
	eng, cl, bm := setup(4)
	am := NewAppManager(cl, bm, ResourceDesc{})
	p1 := simplePipeline([]float64{100})
	p1.Name = "big-a"
	p2 := simplePipeline([]float64{100})
	p2.Name = "big-b"
	reports, err := am.RunPerJob(
		[]*Pipeline{p1, p2},
		[]ResourceDesc{
			{Nodes: 4, Walltime: 1e6},
			{Nodes: 4, Walltime: 1e6},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].TasksExecuted != 1 || reports[1].TasksExecuted != 1 {
		t.Fatal("not all pipelines completed")
	}
	// Serialized: total virtual time ≈ 200.
	if eng.Now() < 200 {
		t.Fatalf("virtual clock = %v, want ≥200 (queued jobs)", eng.Now())
	}
}

// TestRunPerJobPerJobResubmission: failures in one job trigger that job's
// own smaller resubmission without touching the other.
func TestRunPerJobPerJobResubmission(t *testing.T) {
	_, cl, bm := setup(8)
	am := NewAppManager(cl, bm, ResourceDesc{})
	flaky := &Pipeline{Name: "flaky"}
	st := flaky.AddStage(&Stage{Name: "s"})
	st.AddTask(&Task{ID: "ok", Nodes: 1, DurationSec: 50})
	st.AddTask(&Task{ID: "bad", Nodes: 1, DurationSec: 50, FailAttempts: 1})
	clean := simplePipeline([]float64{50})
	clean.Name = "clean"

	reports, err := am.RunPerJob(
		[]*Pipeline{flaky, clean},
		[]ResourceDesc{{Nodes: 2, Walltime: 1e6}, {Nodes: 2, Walltime: 1e6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Rounds != 2 || reports[0].ResubmittedOK != 1 {
		t.Fatalf("flaky job: rounds=%d resubmitted=%d", reports[0].Rounds, reports[0].ResubmittedOK)
	}
	if reports[1].Rounds != 1 || reports[1].TasksFailed != 0 {
		t.Fatalf("clean job perturbed: %+v", reports[1])
	}
	if bm.Started() != 3 { // 2 initial + 1 resubmission
		t.Fatalf("batch jobs = %d", bm.Started())
	}
}

// TestRunPerJobValidation rejects mismatched lengths.
func TestRunPerJobValidation(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{})
	if _, err := am.RunPerJob([]*Pipeline{{}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
