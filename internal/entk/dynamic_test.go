package entk

import (
	"fmt"
	"testing"
)

// TestDynamicStageCreation exercises §4's dynamic-workflow capability: a
// stage's PostExec inspects results and appends a refinement stage.
func TestDynamicStageCreation(t *testing.T) {
	_, cl, bm := setup(4)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 4, Walltime: 1e6})

	p := &Pipeline{Name: "adaptive"}
	first := p.AddStage(&Stage{Name: "coarse"})
	for i := 0; i < 4; i++ {
		first.AddTask(&Task{ID: fmt.Sprintf("c%d", i), Nodes: 1, DurationSec: 50})
	}
	refined := false
	first.PostExec = func(pl *Pipeline, s *Stage) {
		// "Create new workflow stages based on the status of previously
		// executed stages": refine when everything converged.
		allOK := true
		for _, task := range s.Tasks {
			if task.State() != Executed {
				allOK = false
			}
		}
		if allOK {
			refined = true
			fine := &Stage{Name: "fine"}
			for i := 0; i < 2; i++ {
				fine.AddTask(&Task{ID: fmt.Sprintf("f%d", i), Nodes: 1, DurationSec: 30})
			}
			pl.AddStage(fine)
		}
	}

	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !refined {
		t.Fatal("PostExec never fired")
	}
	if rep.TasksExecuted != 6 {
		t.Fatalf("executed = %d, want 6 (4 coarse + 2 dynamic)", rep.TasksExecuted)
	}
	if rep.TTX != 80 { // 50 coarse wave + 30 fine wave
		t.Fatalf("TTX = %v, want 80", rep.TTX)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("pipeline grew to %d stages, want 2", len(p.Stages))
	}
}

// TestDynamicStagesChain verifies cascaded growth: a dynamically added stage
// can itself add another stage.
func TestDynamicStagesChain(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})

	p := &Pipeline{Name: "cascade"}
	depth := 0
	var grow func(pl *Pipeline, s *Stage)
	grow = func(pl *Pipeline, s *Stage) {
		if depth >= 3 {
			return
		}
		depth++
		next := &Stage{Name: fmt.Sprintf("g%d", depth)}
		next.AddTask(&Task{ID: fmt.Sprintf("t%d", depth), Nodes: 1, DurationSec: 10})
		next.PostExec = grow
		pl.AddStage(next)
	}
	root := p.AddStage(&Stage{Name: "root"})
	root.AddTask(&Task{ID: "t0", Nodes: 1, DurationSec: 10})
	root.PostExec = grow

	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksExecuted != 4 { // root + 3 grown
		t.Fatalf("executed = %d, want 4", rep.TasksExecuted)
	}
	if rep.TTX != 40 {
		t.Fatalf("TTX = %v, want 40 (sequential growth)", rep.TTX)
	}
}

// TestDynamicStageWithFailureStillResubmits ensures dynamic stages
// participate in order-preserving resubmission.
func TestDynamicStageWithFailureStillResubmits(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})

	p := &Pipeline{Name: "dynfail"}
	root := p.AddStage(&Stage{Name: "root"})
	root.AddTask(&Task{ID: "r", Nodes: 1, DurationSec: 10})
	var victim *Task
	root.PostExec = func(pl *Pipeline, s *Stage) {
		dyn := &Stage{Name: "dyn"}
		victim = dyn.AddTask(&Task{ID: "v", Nodes: 1, DurationSec: 10, FailAttempts: 1})
		pl.AddStage(dyn)
	}
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if victim == nil || victim.State() != Executed {
		t.Fatalf("dynamic task not recovered: %+v", victim)
	}
	if rep.Rounds != 2 || rep.ResubmittedOK != 1 {
		t.Fatalf("rounds=%d resubmittedOK=%d", rep.Rounds, rep.ResubmittedOK)
	}
}

// TestPostExecOnEmptyStage covers the empty-stage PostExec path.
func TestPostExecOnEmptyStage(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})
	p := &Pipeline{Name: "empty"}
	fired := false
	p.AddStage(&Stage{Name: "hollow", PostExec: func(pl *Pipeline, s *Stage) {
		fired = true
		dyn := &Stage{Name: "dyn"}
		dyn.AddTask(&Task{ID: "d", Nodes: 1, DurationSec: 5})
		pl.AddStage(dyn)
	}})
	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !fired || rep.TasksExecuted != 1 {
		t.Fatalf("fired=%v executed=%d", fired, rep.TasksExecuted)
	}
}
