package entk

import (
	"testing"
)

// TestResubmissionPreservesStageOrder verifies the §4.2 guarantee: "during
// re-submission of failed tasks, the execution order is preserved according
// to the order of the original EnTK stages."
func TestResubmissionPreservesStageOrder(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})

	// Two stages; one task in each fails its first attempt.
	s0fail := &Task{ID: "s0-fail", Nodes: 1, DurationSec: 50, FailAttempts: 1}
	s1fail := &Task{ID: "s1-fail", Nodes: 1, DurationSec: 50, FailAttempts: 1}
	p := &Pipeline{Name: "p"}
	p.AddStage(&Stage{Name: "s0", Tasks: []*Task{
		{ID: "s0-ok", Nodes: 1, DurationSec: 50}, s0fail,
	}})
	p.AddStage(&Stage{Name: "s1", Tasks: []*Task{
		{ID: "s1-ok", Nodes: 1, DurationSec: 50}, s1fail,
	}})

	rep, err := am.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", rep.Rounds)
	}
	if rep.TasksExecuted != 4 || rep.TasksFailed != 0 {
		t.Fatalf("executed=%d failed=%d", rep.TasksExecuted, rep.TasksFailed)
	}
	if rep.ResubmittedOK != 2 {
		t.Fatalf("resubmittedOK = %d", rep.ResubmittedOK)
	}
	// Both victims recovered; attempts reflect the retries.
	if s0fail.Attempts() != 2 || s1fail.Attempts() != 2 {
		t.Fatalf("attempts = %d/%d", s0fail.Attempts(), s1fail.Attempts())
	}
	if s0fail.State() != Executed || s1fail.State() != Executed {
		t.Fatalf("states = %v/%v", s0fail.State(), s1fail.State())
	}
}

// TestResubmissionRunsEarlierStageFirst captures ordering with a
// single-node resubmission job: the stage-0 victim must execute before the
// stage-1 victim.
func TestResubmissionRunsEarlierStageFirst(t *testing.T) {
	_, cl, bm := setup(2)
	am := NewAppManager(cl, bm, ResourceDesc{Nodes: 2, Walltime: 1e6})
	s0fail := &Task{ID: "s0-fail", Nodes: 1, DurationSec: 50, FailAttempts: 1}
	s1fail := &Task{ID: "s1-fail", Nodes: 1, DurationSec: 50, FailAttempts: 1}
	p := &Pipeline{Name: "p"}
	p.AddStage(&Stage{Name: "s0", Tasks: []*Task{s0fail}})
	p.AddStage(&Stage{Name: "s1", Tasks: []*Task{s1fail}})
	if _, err := am.Run(p); err != nil {
		t.Fatal(err)
	}
	// With the resubmission pipeline built stage-by-stage, s0-fail's
	// successful attempt must have finished no later than s1-fail's start;
	// both executed, which is only possible in stage order on the shared
	// small job.
	if s0fail.State() != Executed || s1fail.State() != Executed {
		t.Fatal("victims did not recover in stage order")
	}
}

// TestTaskStateStrings covers the state stringer.
func TestTaskStateStrings(t *testing.T) {
	want := map[TaskState]string{
		Initial: "initial", Scheduling: "scheduling", Executed: "executed", Failed: "failed",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
