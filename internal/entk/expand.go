package entk

import (
	"fmt"

	"hhcw/internal/dag"
)

// StageExpander streams the exact task sequence Compile would materialize
// for a Pipeline — stage by stage, tasks in stage order — holding only the
// stage currently in flight. The PST barrier makes the streaming order
// trivially exact: a stage's tasks all become ready at the completion of the
// previous non-empty stage's last task, so the eager submission order is
// stage-major, task-minor, which is precisely what the cursor below emits.
//
// Unlike Compile, the expander supports PostExec: dynamic stage growth is
// exactly what a lazy frontier can express that a static task list cannot.
// When a stage drains successfully its PostExec hook fires once (EnTK §4:
// "create new workflow stages based on the status of previously executed
// stages"), and any stages the hook appended are validated, counted into
// Total, and emitted in order — first-class lazy expansion, driven through
// rm.StreamRunner like every other expander. A terminal task failure kills
// the pipeline barrier as before: later stages are written off and the dead
// stage's PostExec is suppressed (failed ensembles don't grow).
//
// Compile's other restrictions carry over: node counts map to core requests
// one-for-one, and per-task FailAttempts knobs are dropped (failure
// injection comes from the executing environment's fault profile).
type StageExpander struct {
	name   string
	p      *Pipeline
	stages []expStage // built non-empty stages, in pipeline order

	built  int // p.Stages entries validated and counted into total
	seq    int // p.Stages entry the sequence cursor is at
	curExp int // index into stages of the armed (emitting) stage

	emitNext  int // next task index within the armed stage
	remaining int // unfinished tasks of the in-flight stage
	dead      bool

	inflight map[dag.TaskID]int // emitted task -> stages index
	total    int
	seen     map[dag.TaskID]bool
}

type expStage struct {
	name  string
	src   *Stage
	tasks []*Task
	base  int // eager insertion index of the stage's first task
}

// Expand returns a streaming expander over the pipeline — the lazy
// counterpart of Compile, with the same validation over the stages present
// at expansion time. Stages appended later by PostExec hooks are validated
// as they arm; an invalid dynamic stage (non-positive duration, duplicate
// task ID) panics, since by then the run is in flight and there is no error
// path back to the caller.
func (p *Pipeline) Expand() (*StageExpander, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("entk: cannot expand a pipeline without a name")
	}
	x := &StageExpander{
		name:     p.Name,
		p:        p,
		curExp:   -1,
		inflight: make(map[dag.TaskID]int, 16),
		seen:     make(map[dag.TaskID]bool, 16),
	}
	for x.built < len(p.Stages) {
		if err := x.buildStage(x.built); err != nil {
			return nil, err
		}
	}
	if err := x.advance(); err != nil {
		return nil, err
	}
	if x.total == 0 {
		return nil, fmt.Errorf("entk: pipeline %q expands to an empty workflow", p.Name)
	}
	return x, nil
}

// buildStage validates p.Stages[si], counts its tasks into Total, and
// registers it for emission if non-empty.
func (x *StageExpander) buildStage(si int) error {
	st := x.p.Stages[si]
	x.built++
	if len(st.Tasks) == 0 {
		return nil
	}
	stageName := st.Name
	if stageName == "" {
		stageName = fmt.Sprintf("stage%02d", si)
	}
	for _, t := range st.Tasks {
		if t.DurationSec <= 0 {
			return fmt.Errorf("entk: task %q has non-positive duration", t.ID)
		}
		id := dag.TaskID(stageName + "/" + t.ID)
		if x.seen[id] {
			return fmt.Errorf("entk: duplicate task %q in expanded pipeline %q", id, x.name)
		}
		x.seen[id] = true
	}
	x.stages = append(x.stages, expStage{name: stageName, src: st, tasks: st.Tasks, base: x.total})
	x.total += len(st.Tasks)
	return nil
}

// advance walks the sequence cursor to the next non-empty stage and arms it.
// Empty stages fire their PostExec hooks in passing (mirroring the
// AppManager), and stages appended by any hook are built on reach.
func (x *StageExpander) advance() error {
	for x.seq < len(x.p.Stages) {
		for x.built <= x.seq {
			if err := x.buildStage(x.built); err != nil {
				return err
			}
		}
		st := x.p.Stages[x.seq]
		if len(st.Tasks) == 0 {
			x.firePostExec(st)
			x.seq++
			continue
		}
		x.curExp++
		x.emitNext = 0
		x.remaining = len(x.stages[x.curExp].tasks)
		return nil
	}
	return nil
}

// firePostExec runs a stage's hook once, like jobRun.firePostExec.
func (x *StageExpander) firePostExec(st *Stage) {
	if st.PostExec == nil || st.postExecFired {
		return
	}
	st.postExecFired = true
	st.PostExec(x.p, st)
}

// Name implements dag.Expander.
func (x *StageExpander) Name() string { return x.name }

// Total implements dag.Expander. For pipelines with PostExec hooks the value
// grows as hooks append stages; streaming runners re-read it per terminal
// task, so completion accounting tracks the growth.
func (x *StageExpander) Total() int { return x.total }

// Next implements dag.Expander, emitting the in-flight stage's next task.
// Emission continues through the current stage even after a terminal failure
// (its siblings are not descendants of the failed task); dead only stops the
// barrier from arming later stages.
func (x *StageExpander) Next() (*dag.Task, int, bool) {
	if x.curExp < 0 || x.curExp >= len(x.stages) {
		return nil, 0, false
	}
	st := &x.stages[x.curExp]
	if x.emitNext >= len(st.tasks) {
		return nil, 0, false
	}
	i := x.emitNext
	x.emitNext++
	t := st.tasks[i]
	nodes := t.Nodes
	if nodes < 1 {
		nodes = 1
	}
	id := dag.TaskID(st.name + "/" + t.ID)
	out := &dag.Task{
		ID:         id,
		Name:       st.name,
		Cores:      nodes,
		NominalDur: t.DurationSec,
		Params:     map[string]string{"nodes": fmt.Sprint(nodes)},
	}
	x.inflight[id] = x.curExp
	return out, st.base + i, true
}

// TaskDone implements dag.Expander: the last completion of a stage fires its
// PostExec hook (which may grow the pipeline) and arms the next stage.
func (x *StageExpander) TaskDone(id dag.TaskID) {
	if _, ok := x.inflight[id]; !ok {
		panic(fmt.Sprintf("entk: expander %q got a terminal report for unknown task %q", x.name, id))
	}
	delete(x.inflight, id)
	x.remaining--
	if x.remaining == 0 && !x.dead {
		x.firePostExec(x.stages[x.curExp].src)
		x.seq++
		if err := x.advance(); err != nil {
			panic(fmt.Sprintf("entk: PostExec appended an invalid stage to pipeline %q: %v", x.name, err))
		}
	}
}

// TaskFailed implements dag.Expander. The barrier chains every later stage
// behind the failed task's stage, so a terminal failure writes off all of
// them at once — including stages appended by earlier PostExec hooks but not
// yet built, whose tasks are counted into Total here so the denominator
// balances. In-flight siblings of the failed task still finish normally, and
// the dead stage's own PostExec never fires.
func (x *StageExpander) TaskFailed(id dag.TaskID) int {
	if _, ok := x.inflight[id]; !ok {
		panic(fmt.Sprintf("entk: expander %q got a terminal report for unknown task %q", x.name, id))
	}
	delete(x.inflight, id)
	x.remaining--
	if x.dead {
		return 0
	}
	x.dead = true
	n := 0
	for _, st := range x.stages[x.curExp+1:] {
		n += len(st.tasks)
	}
	for _, st := range x.p.Stages[x.built:] {
		n += len(st.Tasks)
		x.total += len(st.Tasks)
	}
	x.built = len(x.p.Stages)
	return n
}

// Retire implements dag.Expander. Emitted tasks are fresh per emission (EnTK
// stages are small); nothing is recycled.
func (x *StageExpander) Retire(*dag.Task) {}
