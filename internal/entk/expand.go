package entk

import (
	"fmt"

	"hhcw/internal/dag"
)

// StageExpander streams the exact task sequence Compile would materialize
// for a Pipeline — stage by stage, tasks in stage order — holding only the
// stage currently in flight. The PST barrier makes the streaming order
// trivially exact: a stage's tasks all become ready at the completion of the
// previous non-empty stage's last task, so the eager submission order is
// stage-major, task-minor, which is precisely what the cursor below emits.
//
// Compile's restrictions carry over: PostExec (dynamic growth) is rejected,
// node counts map to core requests one-for-one, and per-task FailAttempts
// knobs are dropped (failure injection comes from the executing
// environment's fault profile).
type StageExpander struct {
	name   string
	stages []expStage

	cur       int // stage being emitted
	emitNext  int // next task index within cur
	remaining int // unfinished tasks of the in-flight stage
	dead      bool

	inflight map[dag.TaskID]int // emitted task -> stage index
	total    int
}

type expStage struct {
	name  string
	tasks []*Task
	base  int // eager insertion index of the stage's first task
}

// Expand returns a streaming expander over the pipeline — the lazy
// counterpart of Compile, with the same validation.
func (p *Pipeline) Expand() (*StageExpander, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("entk: cannot expand a pipeline without a name")
	}
	x := &StageExpander{name: p.Name, inflight: make(map[dag.TaskID]int, 16)}
	seen := map[dag.TaskID]bool{}
	for si, st := range p.Stages {
		if st.PostExec != nil {
			return nil, fmt.Errorf("entk: stage %q has a PostExec hook; dynamic pipelines cannot be statically expanded", st.Name)
		}
		if len(st.Tasks) == 0 {
			continue
		}
		stageName := st.Name
		if stageName == "" {
			stageName = fmt.Sprintf("stage%02d", si)
		}
		for _, t := range st.Tasks {
			if t.DurationSec <= 0 {
				return nil, fmt.Errorf("entk: task %q has non-positive duration", t.ID)
			}
			id := dag.TaskID(stageName + "/" + t.ID)
			if seen[id] {
				return nil, fmt.Errorf("entk: duplicate task %q in expanded pipeline %q", id, p.Name)
			}
			seen[id] = true
		}
		x.stages = append(x.stages, expStage{name: stageName, tasks: st.Tasks, base: x.total})
		x.total += len(st.Tasks)
	}
	if x.total == 0 {
		return nil, fmt.Errorf("entk: pipeline %q expands to an empty workflow", p.Name)
	}
	x.remaining = len(x.stages[0].tasks)
	return x, nil
}

// Name implements dag.Expander.
func (x *StageExpander) Name() string { return x.name }

// Total implements dag.Expander.
func (x *StageExpander) Total() int { return x.total }

// Next implements dag.Expander, emitting the in-flight stage's next task.
// Emission continues through the current stage even after a terminal failure
// (its siblings are not descendants of the failed task); dead only stops the
// barrier from arming later stages.
func (x *StageExpander) Next() (*dag.Task, int, bool) {
	if x.cur >= len(x.stages) {
		return nil, 0, false
	}
	st := &x.stages[x.cur]
	if x.emitNext >= len(st.tasks) {
		return nil, 0, false
	}
	i := x.emitNext
	x.emitNext++
	t := st.tasks[i]
	nodes := t.Nodes
	if nodes < 1 {
		nodes = 1
	}
	id := dag.TaskID(st.name + "/" + t.ID)
	out := &dag.Task{
		ID:         id,
		Name:       st.name,
		Cores:      nodes,
		NominalDur: t.DurationSec,
		Params:     map[string]string{"nodes": fmt.Sprint(nodes)},
	}
	x.inflight[id] = x.cur
	return out, st.base + i, true
}

// TaskDone implements dag.Expander: the last completion of a stage arms the
// next one.
func (x *StageExpander) TaskDone(id dag.TaskID) {
	if _, ok := x.inflight[id]; !ok {
		panic(fmt.Sprintf("entk: expander %q got a terminal report for unknown task %q", x.name, id))
	}
	delete(x.inflight, id)
	x.remaining--
	if x.remaining == 0 && !x.dead && x.cur+1 < len(x.stages) {
		x.cur++
		x.emitNext = 0
		x.remaining = len(x.stages[x.cur].tasks)
	}
}

// TaskFailed implements dag.Expander. The barrier chains every later stage
// behind the failed task's stage, so a terminal failure writes off all of
// them at once; in-flight siblings of the failed task still finish normally.
func (x *StageExpander) TaskFailed(id dag.TaskID) int {
	si, ok := x.inflight[id]
	if !ok {
		panic(fmt.Sprintf("entk: expander %q got a terminal report for unknown task %q", x.name, id))
	}
	delete(x.inflight, id)
	x.remaining--
	if x.dead {
		return 0
	}
	x.dead = true
	n := 0
	for _, st := range x.stages[si+1:] {
		n += len(st.tasks)
	}
	return n
}

// Retire implements dag.Expander. Emitted tasks are fresh per emission (EnTK
// stages are small); nothing is recycled.
func (x *StageExpander) Retire(*dag.Task) {}
