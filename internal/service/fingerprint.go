package service

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
)

// Fingerprint digests every deterministic field of the run — counters and
// raw IEEE-754 bits of every float, including the solo-baseline comparison
// fields when present — into a 64-bit FNV-1a rendered %016x. Two runs with
// equal fingerprints made identical decisions; the sweep driver leans on
// this to prove worker-count independence bit-for-bit.
func (r *Result) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%016x|%016x|%016x\n",
		r.Strategy, r.Seed,
		math.Float64bits(r.HorizonSec),
		math.Float64bits(r.DrainedAtSec),
		math.Float64bits(r.Utilization))
	for i := range r.Tenants {
		t := &r.Tenants[i]
		fmt.Fprintf(h, "%s|%016x|%d|%d|%d|%d|%d|%d|%d|%d|%016x",
			t.Tenant, math.Float64bits(t.Weight),
			t.Arrivals, t.Admitted, t.Deferred, t.Rejected,
			t.Completed, t.WfFailed, t.TasksStarted, t.PendingAborts,
			math.Float64bits(t.UsedCoreSec))
		for _, f := range []float64{
			t.MeanWaitSec, t.P50WaitSec, t.P99WaitSec,
			t.MeanDeferSec, t.MeanMakespanSec, t.RejectionRate,
			t.SoloP99WaitSec, t.SoloMeanMakespanSec,
			t.WaitInflationP99, t.MakespanInflation,
		} {
			fmt.Fprintf(h, "|%016x", math.Float64bits(f))
		}
		fmt.Fprintln(h)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// aggregateFingerprint folds per-run fingerprints (in the caller's fixed
// order) into one ensemble digest.
func aggregateFingerprint(fps []string) string {
	h := fnv.New64a()
	h.Write([]byte(strings.Join(fps, "\n")))
	return fmt.Sprintf("%016x", h.Sum64())
}
