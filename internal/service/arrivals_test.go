package service

import (
	"math"
	"testing"

	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// drawN samples n consecutive arrival instants starting at t=0.
func drawN(a Arrivals, seed int64, n int) []sim.Time {
	rng := randx.New(seed)
	out := make([]sim.Time, 0, n)
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		now += a.Next(now, rng)
		out = append(out, now)
	}
	return out
}

func TestArrivalsDeterministic(t *testing.T) {
	profiles := []Arrivals{
		Poisson{RatePerHour: 30},
		Burst{BaseRatePerHour: 5, BurstRatePerHour: 60, PeriodSec: 3600, BurstFrac: 0.25},
		Diurnal{MeanRatePerHour: 20, Amplitude: 0.8, PeriodSec: 86400},
	}
	for _, p := range profiles {
		a := drawN(p, 7, 500)
		b := drawN(p, 7, 500)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs across replays: %v vs %v", p.Name(), i, a[i], b[i])
			}
		}
		if c := drawN(p, 8, 500); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
			t.Fatalf("%s: different seeds produced the same arrivals", p.Name())
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate = 60.0 // one per minute
	inst := drawN(Poisson{RatePerHour: rate}, 3, 20000)
	meanIA := float64(inst[len(inst)-1]) / float64(len(inst))
	if want := 3600 / rate; math.Abs(meanIA-want)/want > 0.05 {
		t.Fatalf("mean inter-arrival %.2fs, want ~%.2fs", meanIA, want)
	}
}

// Thinning must concentrate Burst arrivals inside the burst window in
// proportion to the rate ratio.
func TestBurstConcentratesInWindow(t *testing.T) {
	b := Burst{BaseRatePerHour: 5, BurstRatePerHour: 50, PeriodSec: 3600, BurstFrac: 0.25}
	inst := drawN(b, 11, 5000)
	inBurst := 0
	for _, at := range inst {
		phase := math.Mod(float64(at), b.PeriodSec) / b.PeriodSec
		if phase < b.BurstFrac {
			inBurst++
		}
	}
	// Expected share: 50×0.25 / (50×0.25 + 5×0.75) ≈ 0.77.
	if frac := float64(inBurst) / float64(len(inst)); frac < 0.70 || frac > 0.84 {
		t.Fatalf("burst-window share %.3f, want ≈0.77", frac)
	}
}

// Diurnal arrivals must be denser on the rising half-period (sin > 0) than
// the falling one.
func TestDiurnalModulation(t *testing.T) {
	d := Diurnal{MeanRatePerHour: 20, Amplitude: 0.9, PeriodSec: 7200}
	inst := drawN(d, 5, 5000)
	peakHalf := 0
	for _, at := range inst {
		if math.Mod(float64(at), d.PeriodSec) < d.PeriodSec/2 {
			peakHalf++
		}
	}
	// With amplitude 0.9, the first half-period carries ≈ (1+0.9·2/π)/2 ≈ 0.79
	// of the mass.
	if frac := float64(peakHalf) / float64(len(inst)); frac < 0.72 || frac > 0.86 {
		t.Fatalf("peak-half share %.3f, want ≈0.79", frac)
	}
}

func TestArrivalsRejectDegenerateParams(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	rng := randx.New(1)
	mustPanic("poisson rate=0", func() { Poisson{}.Next(0, rng) })
	mustPanic("burst period=0", func() {
		Burst{BaseRatePerHour: 1, BurstRatePerHour: 2, BurstFrac: 0.5}.Next(0, rng)
	})
	mustPanic("burst frac=1", func() {
		Burst{BaseRatePerHour: 1, BurstRatePerHour: 2, PeriodSec: 100, BurstFrac: 1}.Next(0, rng)
	})
	mustPanic("diurnal amp=1", func() {
		Diurnal{MeanRatePerHour: 1, Amplitude: 1, PeriodSec: 100}.Next(0, rng)
	})
	mustPanic("diurnal rate=0", func() {
		Diurnal{Amplitude: 0.5, PeriodSec: 100}.Next(0, rng)
	})
}
