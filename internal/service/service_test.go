package service

import (
	"sort"
	"strings"
	"testing"

	"hhcw/internal/compose"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
)

func faultyProfile() fault.Profile {
	return fault.Profile{
		Name:            "svc-chaos",
		NodeMTBFSec:     4 * 3600,
		NodeMTTRSec:     600,
		TaskFailProb:    0.05,
		TaskFailPersist: 1,
	}
}

func retryPolicy() fault.RetryPolicy { return fault.DefaultRetryPolicy() }

// smallScenario is a fast two-tenant config for behavioral tests: a 2×4-core
// cluster under a one-hour horizon runs in well under 10 ms.
func smallScenario(fairShare bool) Config {
	wl := LayeredWorkload(2, 3, dag.GenOpts{MeanDur: 90, CVDur: 0.5, Cores: 1, MaxCores: 2, MeanMem: 1e9})
	return Config{
		Nodes:        2,
		CoresPerNode: 4,
		FairShare:    fairShare,
		HorizonSec:   3600,
		Tenants: []Tenant{
			{ID: "alice", Weight: 2, Arrivals: Poisson{RatePerHour: 30}, Workload: wl},
			{ID: "bob", Weight: 1, Arrivals: Poisson{RatePerHour: 15}, Workload: wl},
		},
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, fs := range []bool{false, true} {
		a, err := Run(smallScenario(fs), 99)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(smallScenario(fs), 99)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("fairshare=%v: same seed diverged: %s vs %s", fs, a.Fingerprint(), b.Fingerprint())
		}
		c, err := Run(smallScenario(fs), 100)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() == c.Fingerprint() {
			t.Fatalf("fairshare=%v: different seeds collided", fs)
		}
	}
	if a, _ := Run(smallScenario(false), 99); a != nil {
		if b, _ := Run(smallScenario(true), 99); a.Fingerprint() == b.Fingerprint() {
			t.Fatal("fifo and fairshare produced identical fingerprints")
		}
	}
}

// The fork-order contract: a tenant's arrival and workload streams are
// identical whether it runs alone or contended, so solo baselines are
// apples-to-apples.
func TestSoloSeesSameStreams(t *testing.T) {
	full, err := Run(smallScenario(false), 41)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range full.Tenants {
		solo, err := RunSolo(smallScenario(false), 41, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(solo.Tenants) != 1 || solo.Tenants[0].Tenant != tr.Tenant {
			t.Fatalf("solo run reported %+v, want just %s", solo.Tenants, tr.Tenant)
		}
		st := solo.Tenants[0]
		if st.Arrivals != tr.Arrivals {
			t.Fatalf("%s: solo saw %d arrivals, contended %d — streams diverged", tr.Tenant, st.Arrivals, tr.Arrivals)
		}
		if st.Admitted != tr.Admitted || st.TasksStarted != tr.TasksStarted {
			// With no admission pressure in either mode here, the same
			// workflows must be admitted and run.
			t.Fatalf("%s: solo admitted/started %d/%d, contended %d/%d",
				tr.Tenant, st.Admitted, st.TasksStarted, tr.Admitted, tr.TasksStarted)
		}
		if st.P99WaitSec > tr.P99WaitSec {
			t.Fatalf("%s: solo p99 wait %.1f exceeds contended %.1f", tr.Tenant, st.P99WaitSec, tr.P99WaitSec)
		}
	}
}

// Admission control must bound service state and account every arrival as
// exactly one of admitted/deferred-then-admitted/rejected.
func TestAdmissionControlBoundsAndAccounts(t *testing.T) {
	cfg := smallScenario(false)
	cfg.Tenants[0].Arrivals = Poisson{RatePerHour: 240} // far beyond capacity
	cfg.Tenants[0].MaxInFlight = 3
	cfg.Tenants[0].MaxDeferred = 4
	res, err := Run(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tenants[0]
	if tr.Rejected == 0 {
		t.Fatalf("overloaded tenant was never rejected: %+v", tr)
	}
	if tr.Deferred == 0 {
		t.Fatalf("overloaded tenant was never deferred: %+v", tr)
	}
	if tr.MeanDeferSec <= 0 {
		t.Fatalf("deferred admissions recorded no wait: %+v", tr)
	}
	// The deferred queue drains at completions, so by drain time every
	// arrival is either admitted or rejected — none lost, none duplicated.
	if tr.Admitted+tr.Rejected != tr.Arrivals {
		t.Fatalf("arrivals %d != admitted %d + rejected %d", tr.Arrivals, tr.Admitted, tr.Rejected)
	}
	if tr.Completed+tr.WfFailed != tr.Admitted {
		t.Fatalf("admitted %d != completed %d + failed %d", tr.Admitted, tr.Completed, tr.WfFailed)
	}
	if tr.RejectionRate <= 0 || tr.RejectionRate >= 1 {
		t.Fatalf("rejection rate %.3f out of (0,1)", tr.RejectionRate)
	}

	// MaxDeferred < 0 disables deferral outright.
	cfg.Tenants[0].MaxDeferred = -1
	res, err = Run(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr := res.Tenants[0]; tr.Deferred != 0 || tr.Rejected == 0 {
		t.Fatalf("deferral not disabled: %+v", tr)
	}
}

// The service must release per-workflow state as workflows finish: a
// compact-mode run's provenance store holds no task records and only
// O(in-flight) workflow structures at drain.
func TestServiceStateBounded(t *testing.T) {
	cfg := smallScenario(false)
	cfg.Compact = true
	var inFlight, wfStates, provLen int
	cfg.inspect = func(sv *serviceRun) {
		inFlight = sv.inFlightTotal
		provLen = sv.cws.Provenance().Len()
		wfStates = len(sv.cws.Provenance().StatsByTenant())
	}
	res, err := Run(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if inFlight != 0 {
		t.Fatalf("%d workflows still in flight at drain", inFlight)
	}
	if provLen != 0 {
		t.Fatalf("compact-mode store retained %d task records", provLen)
	}
	if wfStates != 2 {
		t.Fatalf("tenant aggregates = %d, want 2", wfStates)
	}
	if res.Tenants[0].Completed == 0 || res.Tenants[1].Completed == 0 {
		t.Fatalf("no completions: %+v", res.Tenants)
	}
}

// Service accounting and the provenance store's per-tenant aggregates are
// two independent code paths over the same stream of task results; they
// must agree exactly.
func TestAccountingMatchesProvenance(t *testing.T) {
	cfg := smallScenario(true)
	var stats map[string][4]float64
	cfg.inspect = func(sv *serviceRun) {
		stats = map[string][4]float64{}
		for _, st := range sv.cws.Provenance().StatsByTenant() {
			stats[st.Tenant] = [4]float64{float64(st.Started), st.CoreSeconds, st.QueueWaitSum, float64(st.Failures)}
		}
	}
	res, err := Run(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		st, ok := stats[tr.Tenant]
		if !ok {
			t.Fatalf("no provenance aggregate for %s", tr.Tenant)
		}
		if int(st[0]) != tr.TasksStarted {
			t.Errorf("%s: provenance started %d, service %d", tr.Tenant, int(st[0]), tr.TasksStarted)
		}
		if st[1] != tr.UsedCoreSec {
			t.Errorf("%s: provenance core-sec %v, service %v", tr.Tenant, st[1], tr.UsedCoreSec)
		}
		if want := tr.MeanWaitSec * float64(tr.TasksStarted); !approxEq(st[2], want) {
			t.Errorf("%s: provenance wait sum %v, service %v", tr.Tenant, st[2], want)
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+b)
}

// Under fair share, a per-tenant core quota must cap the tenant's concurrent
// allocation at every instant. Reconstructed from provenance intervals, so
// the check is independent of the strategy's own bookkeeping.
func TestQuotaCapsConcurrentCores(t *testing.T) {
	const quota = 4
	cfg := smallScenario(true)
	cfg.Tenants[0].Arrivals = Poisson{RatePerHour: 60}
	cfg.Tenants[0].QuotaCores = quota
	type span struct {
		at    float64
		delta int
	}
	var spans []span
	cfg.inspect = func(sv *serviceRun) {
		for _, rec := range sv.cws.Provenance().All() {
			if !strings.HasPrefix(rec.WorkflowID, "alice/") || rec.Node == "" {
				continue
			}
			spans = append(spans, span{float64(rec.StartedAt), rec.Cores})
			spans = append(spans, span{float64(rec.FinishedAt), -rec.Cores})
		}
	}
	res, err := Run(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants[0].TasksStarted == 0 {
		t.Fatal("quota tenant ran nothing")
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].at != spans[j].at {
			return spans[i].at < spans[j].at
		}
		return spans[i].delta < spans[j].delta // releases before grabs at ties
	})
	cur, peak := 0, 0
	for _, s := range spans {
		cur += s.delta
		if cur > peak {
			peak = cur
		}
	}
	if peak > quota {
		t.Fatalf("quota tenant peaked at %d concurrent cores, quota %d", peak, quota)
	}
	// The quota must bite: without it the same load peaks higher.
	cfg2 := smallScenario(true)
	cfg2.Tenants[0].Arrivals = Poisson{RatePerHour: 60}
	spans = spans[:0]
	cfg2.inspect = cfg.inspect
	if _, err := Run(cfg2, 5); err != nil {
		t.Fatal(err)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].at != spans[j].at {
			return spans[i].at < spans[j].at
		}
		return spans[i].delta < spans[j].delta
	})
	cur, unq := 0, 0
	for _, s := range spans {
		cur += s.delta
		if cur > unq {
			unq = cur
		}
	}
	if unq <= quota {
		t.Fatalf("unquota'd peak %d never exceeds quota %d — test has no teeth", unq, quota)
	}
}

// Faulty runs stay deterministic and drain: the injector must stop once the
// horizon passes and the last workflow completes.
func TestServiceWithFaultsDrains(t *testing.T) {
	cfg := smallScenario(false)
	cfg.Faults = faultyProfile()
	cfg.Retry = retryPolicy()
	a, err := Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("faulty run diverged: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if a.DrainedAtSec <= 0 || a.DrainedAtSec > 10*cfg.HorizonSec {
		t.Fatalf("drained at %.0f s — injector likely kept the engine alive", a.DrainedAtSec)
	}
	total := 0
	for _, tr := range a.Tenants {
		total += tr.Completed + tr.WfFailed
	}
	if total == 0 {
		t.Fatal("nothing finished under faults")
	}
}

// Workload compile errors surface as run errors, not hangs.
func TestWorkloadCompileErrorFailsRun(t *testing.T) {
	cfg := smallScenario(false)
	cfg.Tenants[0].Workload = func(*randx.Source) compose.Compiler {
		return compose.Func(func() (*dag.Workflow, error) { return nil, errBoom })
	}
	if _, err := Run(cfg, 1); err == nil || !strings.Contains(err.Error(), "compile") {
		t.Fatalf("err = %v, want compile failure", err)
	}
}

var errBoom = &compileErr{}

type compileErr struct{}

func (*compileErr) Error() string { return "boom" }
