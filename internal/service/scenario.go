package service

import (
	"hhcw/internal/compose"
	"hhcw/internal/dag"
	"hhcw/internal/randx"
)

// LayeredWorkload returns a tenant Workload drawing random layered
// workflows — the service sweeps' common currency: every tenant runs the
// same family so per-tenant SLO differences are pure scheduling, not
// workload shape.
func LayeredWorkload(levels, width int, opts dag.GenOpts) func(rng *randx.Source) compose.Compiler {
	return func(rng *randx.Source) compose.Compiler {
		return compose.Func(func() (*dag.Workflow, error) {
			return dag.RandomLayered(rng, levels, width, opts), nil
		})
	}
}

// ContendedScenario is the paper-§6 starvation study: three tenants of the
// same workflow family at heavy/medium/light Poisson rates sharing a
// cluster driven to ~0.9 aggregate utilization. Under plain FIFO,
// coexistence inflates every tenant's p99 queue wait far past its solo
// baseline (the pathology — Poisson clumping from the heavy stream backs
// the shared queue up behind whole workflow fronts); the deficit fair-share
// strategy with rate-proportional weights drains each tenant's backlog in
// proportion to its share, leveling the per-tenant p99s.
//
// Calibration: 6 nodes × 8 cores = 48 cores with 3–5-core tasks, so the
// cluster holds only ~12 tasks at once — few enough effective slots that
// queueing is real even at the heavy tenant's solo load. A layered(3,4)
// workflow at MeanDur 200 s averages ≈ 9 tasks ≈ 7.2e3 core·s; the 12+6+3
// arrivals/hour streams load the cluster to ≈ 0.88 with the heavy tenant
// alone at ≈ 0.5 — contention comes from coexistence, not from any single
// stream being infeasible.
func ContendedScenario(fairShare bool) Config {
	wl := LayeredWorkload(3, 4, dag.GenOpts{
		MeanDur:  200,
		CVDur:    0.5,
		MeanData: 1e8,
		Cores:    3,
		MaxCores: 5,
		MeanMem:  2e9,
	})
	return Config{
		Nodes:        6,
		CoresPerNode: 8,
		FairShare:    fairShare,
		HorizonSec:   6 * 3600,
		// Weights sit between rate-proportional (4:2:1) and equal: pure
		// rate-proportional shares stretch the light tenants' rare-but-large
		// workflows (the classic processor-sharing delay penalty for lumpy
		// low-rate flows), while equal shares throttle the heavy stream into
		// its own starvation. The 4:2.3:1.3 blend equalizes the per-tenant
		// p99 queue waits across the ensemble to within a few percent.
		Tenants: []Tenant{
			{ID: "heavy", Weight: 4, Arrivals: Poisson{RatePerHour: 12}, Workload: wl, MaxInFlight: 16, MaxDeferred: 24},
			{ID: "medium", Weight: 2.3, Arrivals: Poisson{RatePerHour: 6}, Workload: wl, MaxInFlight: 12, MaxDeferred: 16},
			{ID: "light", Weight: 1.3, Arrivals: Poisson{RatePerHour: 3}, Workload: wl, MaxInFlight: 8, MaxDeferred: 12},
		},
	}
}
