package service

import (
	"fmt"

	"hhcw/internal/metrics"
	"hhcw/internal/sweep"
)

// SweepConfig drives a multi-seed service-mode ensemble.
type SweepConfig struct {
	Scenario func(fairShare bool) Config // nil means ContendedScenario
	Seeds    int
	Seed0    int64
	Workers  int // <= 0 means NumCPU
	Progress func(done, total int)
}

// TenantAgg is one (strategy, tenant) row of the sweep's fairness table:
// every statistic is aggregated across the ensemble's seeds.
type TenantAgg struct {
	Strategy string
	Tenant   string
	Weight   float64

	P99Wait       metrics.Summary // per-seed p99 queue waits
	SoloP99Wait   metrics.Summary // per-seed solo-baseline p99 waits
	WaitInflation float64         // mean contended p99 / mean solo p99
	Makespan      metrics.Summary // per-seed mean makespans
	MakespanInfl  float64         // mean contended makespan / mean solo makespan
	RejectionRate metrics.Summary // per-seed rejection rates
	Deferred      int             // total deferred admissions across seeds
	Rejected      int             // total rejected arrivals across seeds
}

// StrategyAgg is one strategy's cross-tenant fairness headline.
type StrategyAgg struct {
	Strategy string
	// MaxMinP99Ratio divides the largest tenant mean p99 wait by the
	// smallest — 1.0 is perfect p99 fairness; plain FIFO under the §6
	// pathology stays near 1 while inflating everyone, and a miscalibrated
	// fair share drives it up by starving whoever it throttles.
	MaxMinP99Ratio float64
	// WorstWaitInflation is the largest per-tenant mean p99 inflation over
	// the solo baseline — the pathology headline.
	WorstWaitInflation float64
	MeanUtilization    float64
}

// SweepResult is the ensemble outcome. Fingerprints lists every per-run
// digest in a fixed order — strategy-major, then seed — and Fingerprint
// folds them, so equal Fingerprint values prove the whole ensemble made
// bit-identical decisions regardless of worker count.
type SweepResult struct {
	Seeds        int
	Seed0        int64
	Runs         []*Result // strategy-major: all FIFO seeds, then all fair-share seeds
	Tenants      []TenantAgg
	Strategies   []StrategyAgg
	Fingerprints []string
	Fingerprint  string
}

// Sweep runs the scenario over cfg.Seeds seeds under both strategies (with
// per-tenant solo baselines) on a worker pool, then reduces in a fixed
// order. Results are bit-identical at any worker count: each seed's runs
// land in per-index slots and every aggregate folds strategy-major,
// seed-ascending.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("service: sweep needs a positive seed count")
	}
	scen := cfg.Scenario
	if scen == nil {
		scen = ContendedScenario
	}
	type pair struct{ fifo, fair *Result }
	pairs := make([]pair, cfg.Seeds)
	// One warm substrate per worker, built lazily from the scenario's shape
	// and reused (reset in place) across every run the worker executes: both
	// strategies, all seeds, and each run's per-tenant solo baselines. A nil
	// substrate (degenerate scenario shape) runs cold, where validation
	// reports the config error.
	subs := make([]*Substrate, sweep.PoolWorkers(cfg.Seeds, cfg.Workers))
	built := make([]bool, len(subs))
	err := sweep.ForEachWorker(cfg.Seeds, cfg.Workers, cfg.Progress, func(worker, idx int) error {
		seed := cfg.Seed0 + int64(idx)
		if !built[worker] {
			built[worker] = true
			c := scen(false)
			subs[worker] = NewSubstrate(c.Nodes, c.CoresPerNode, c.MemPerNode)
		}
		fifo, err := subs[worker].RunWithBaselines(scen(false), seed)
		if err != nil {
			return fmt.Errorf("service: fifo seed %d: %w", seed, err)
		}
		fair, err := subs[worker].RunWithBaselines(scen(true), seed)
		if err != nil {
			return fmt.Errorf("service: fairshare seed %d: %w", seed, err)
		}
		pairs[idx] = pair{fifo, fair}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &SweepResult{Seeds: cfg.Seeds, Seed0: cfg.Seed0}
	for _, strat := range []func(pair) *Result{
		func(p pair) *Result { return p.fifo },
		func(p pair) *Result { return p.fair },
	} {
		for _, p := range pairs {
			r := strat(p)
			res.Runs = append(res.Runs, r)
			res.Fingerprints = append(res.Fingerprints, r.Fingerprint())
		}
	}
	res.Fingerprint = aggregateFingerprint(res.Fingerprints)
	res.reduce()
	return res, nil
}

// reduce folds the per-seed runs into the per-tenant and per-strategy
// aggregates. Runs is strategy-major, so each strategy's block is
// res.Runs[k*Seeds : (k+1)*Seeds].
func (res *SweepResult) reduce() {
	for k := 0; k < len(res.Runs)/res.Seeds; k++ {
		block := res.Runs[k*res.Seeds : (k+1)*res.Seeds]
		strategy := block[0].Strategy
		var util []float64
		agg := StrategyAgg{Strategy: strategy}
		minP99, maxP99 := 0.0, 0.0
		for ti := range block[0].Tenants {
			ta := TenantAgg{
				Strategy: strategy,
				Tenant:   block[0].Tenants[ti].Tenant,
				Weight:   block[0].Tenants[ti].Weight,
			}
			var p99s, solos, mks, soloMks, rejRates []float64
			for _, r := range block {
				t := &r.Tenants[ti]
				p99s = append(p99s, t.P99WaitSec)
				solos = append(solos, t.SoloP99WaitSec)
				mks = append(mks, t.MeanMakespanSec)
				soloMks = append(soloMks, t.SoloMeanMakespanSec)
				rejRates = append(rejRates, t.RejectionRate)
				ta.Deferred += t.Deferred
				ta.Rejected += t.Rejected
			}
			ta.P99Wait = metrics.Summarize(p99s)
			ta.SoloP99Wait = metrics.Summarize(solos)
			ta.Makespan = metrics.Summarize(mks)
			ta.RejectionRate = metrics.Summarize(rejRates)
			if s := ta.SoloP99Wait.Mean(); s > 0 {
				ta.WaitInflation = ta.P99Wait.Mean() / s
			}
			if s := mean(soloMks); s > 0 {
				ta.MakespanInfl = ta.Makespan.Mean() / s
			}
			res.Tenants = append(res.Tenants, ta)

			m := ta.P99Wait.Mean()
			if ti == 0 || m > maxP99 {
				maxP99 = m
			}
			if ti == 0 || m < minP99 {
				minP99 = m
			}
			if ta.WaitInflation > agg.WorstWaitInflation {
				agg.WorstWaitInflation = ta.WaitInflation
			}
		}
		for _, r := range block {
			util = append(util, r.Utilization)
		}
		agg.MeanUtilization = metrics.Summarize(util).Mean()
		if minP99 > 0 {
			agg.MaxMinP99Ratio = maxP99 / minP99
		}
		res.Strategies = append(res.Strategies, agg)
	}
}
