package service

// Warm-substrate battery for service mode: a reused Substrate must produce
// bit-identical Results to the cold per-run path, stay audit-clean after
// fault-injected runs, and transparently fall back to a cold build when the
// scenario's cluster shape doesn't match.

import (
	"strings"
	"testing"

	"hhcw/internal/fault"
)

func warmTestConfig(t *testing.T, fairShare bool, faults string) Config {
	t.Helper()
	cfg := ContendedScenario(fairShare)
	cfg.Tenants[0].MaxInFlight = 6
	cfg.Tenants[0].MaxDeferred = 4
	if faults != "" {
		p, err := fault.ByName(faults)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = p
	}
	return cfg
}

// TestSubstrateWarmMatchesCold interleaves strategies, fault profiles, and
// solo baselines on one substrate and requires every run to fingerprint
// identically to the cold path — the run after each is what proves the
// preceding reset was complete.
func TestSubstrateWarmMatchesCold(t *testing.T) {
	cfg0 := warmTestConfig(t, false, "")
	sub := NewSubstrate(cfg0.Nodes, cfg0.CoresPerNode, cfg0.MemPerNode)
	if sub == nil {
		t.Fatal("NewSubstrate returned nil for a valid shape")
	}
	for _, tc := range []struct {
		fairShare bool
		faults    string
		seed      int64
	}{
		{false, "", 1},
		{true, "", 1},
		{false, "storm", 2},
		{true, "mtbf", 3},
		{false, "", 1}, // repeat the first case on a now well-worn substrate
	} {
		cfg := warmTestConfig(t, tc.fairShare, tc.faults)
		warm, err := sub.RunWithBaselines(cfg, tc.seed)
		if err != nil {
			t.Fatalf("fair=%v faults=%q seed %d warm: %v", tc.fairShare, tc.faults, tc.seed, err)
		}
		cold, err := RunWithBaselines(cfg, tc.seed)
		if err != nil {
			t.Fatalf("fair=%v faults=%q seed %d cold: %v", tc.fairShare, tc.faults, tc.seed, err)
		}
		if wf, cf := warm.Fingerprint(), cold.Fingerprint(); wf != cf {
			t.Errorf("fair=%v faults=%q seed %d:\n warm %s\n cold %s",
				tc.fairShare, tc.faults, tc.seed, wf, cf)
		}
	}
}

// TestSubstrateAuditCleanAfterChaos runs every chaos profile on one
// substrate and audits it afterwards: post-reset state must match a fresh
// construction field for field.
func TestSubstrateAuditCleanAfterChaos(t *testing.T) {
	cfg0 := warmTestConfig(t, true, "")
	sub := NewSubstrate(cfg0.Nodes, cfg0.CoresPerNode, cfg0.MemPerNode)
	for _, faults := range []string{"", "mtbf", "spot", "storm"} {
		cfg := warmTestConfig(t, true, faults)
		if _, err := sub.RunWithBaselines(cfg, 4); err != nil {
			t.Fatalf("faults=%q: %v", faults, err)
		}
		if diffs := sub.Audit(); len(diffs) > 0 {
			t.Errorf("faults=%q: %d leaked paths after reset:\n  %s",
				faults, len(diffs), strings.Join(diffs, "\n  "))
		}
	}
}

// TestSubstrateShapeMismatchFallsBackCold proves a mismatched substrate is
// bypassed, not misused: results equal the cold path's bit for bit.
func TestSubstrateShapeMismatchFallsBackCold(t *testing.T) {
	cfg := warmTestConfig(t, true, "")
	sub := NewSubstrate(cfg.Nodes+1, cfg.CoresPerNode, cfg.MemPerNode) // wrong shape
	warm, err := sub.Run(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Fingerprint() != cold.Fingerprint() {
		t.Errorf("mismatched substrate altered the run:\n got  %s\n want %s",
			warm.Fingerprint(), cold.Fingerprint())
	}
}

// TestSweepWarmMatchesColdRuns pins Sweep's per-worker substrate reuse
// against per-seed cold RunWithBaselines calls.
func TestSweepWarmMatchesColdRuns(t *testing.T) {
	scen := func(fairShare bool) Config { return warmTestConfig(t, fairShare, "") }
	sw, err := Sweep(SweepConfig{Scenario: scen, Seeds: 3, Seed0: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, fairShare := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			cold, err := RunWithBaselines(scen(fairShare), seed)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sw.Fingerprints[i], cold.Fingerprint(); got != want {
				t.Errorf("fair=%v seed %d:\n sweep %s\n cold  %s", fairShare, seed, got, want)
			}
			i++
		}
	}
}
