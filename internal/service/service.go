package service

import (
	"fmt"
	"math"
	"strings"

	"hhcw/internal/cluster"
	"hhcw/internal/compose"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/metrics"
	"hhcw/internal/randx"
	"hhcw/internal/rm"
	"hhcw/internal/sim"
	"hhcw/internal/statediff"
)

// Tenant is one workload stream sharing the service's cluster.
type Tenant struct {
	// ID names the tenant; workflows are registered as "ID/wf-N", so IDs
	// must not contain '/'.
	ID string
	// Weight is the fair-share weight (<= 0 means 1): the fair-share
	// strategy equalizes usedCoreSec/Weight across tenants.
	Weight float64
	// Arrivals drives the tenant's workflow arrival process.
	Arrivals Arrivals
	// Workload generates the compiled workflow of one admission. It must be
	// a pure function of rng; it is invoked only for ADMITTED arrivals, so a
	// rejected or deferred arrival costs O(1) state, never a compile.
	Workload func(rng *randx.Source) compose.Compiler
	// MaxInFlight bounds concurrently admitted workflows (admission budget).
	// 0 means the default of 8; negative disables admission (reject all).
	MaxInFlight int
	// MaxDeferred bounds the backpressure queue of arrivals waiting for an
	// in-flight slot. 0 means the default of 16; negative disables deferral
	// (overflow arrivals are rejected outright).
	MaxDeferred int
	// QuotaCores caps the tenant's concurrently allocated cores under the
	// fair-share strategy (0 = no quota; ignored under FIFO).
	QuotaCores int
}

// Config describes one service session.
type Config struct {
	Nodes        int
	CoresPerNode int
	MemPerNode   float64 // 0 means 1e12 (memory out of the way)

	Tenants []Tenant

	// FairShare selects the deficit-weighted fair-share strategy; false runs
	// the plain FIFO baseline (the §6 starvation pathology).
	FairShare bool

	// FairShareDecaySec is the time constant of the exponential decay
	// applied to per-tenant usage (0 means 1800 s). Without decay the
	// deficit has an infinite window and stale imbalances — one tenant's
	// big workflow an hour ago — distort priorities long after the episode;
	// the decay makes the deficit track *recent* consumption, which is what
	// fair share is supposed to equalize.
	FairShareDecaySec float64

	// HorizonSec stops every arrival process at this virtual time; the
	// service then drains admitted work and the run ends.
	HorizonSec float64

	// Faults overlays a deterministic failure profile; Retry is the shared
	// recovery policy armed when faults are enabled.
	Faults fault.Profile
	Retry  fault.RetryPolicy

	// Compact retires provenance task records into running aggregates,
	// keeping store memory O(process names + tenants) over any horizon.
	Compact bool

	// inspect, when set (tests only), sees the drained serviceRun before it
	// is reduced to a Result — the hook white-box invariant checks attach to.
	inspect func(sv *serviceRun)
}

// TenantResult is one tenant's accounting and SLO view of a run.
type TenantResult struct {
	Tenant string
	Weight float64

	Arrivals  int // arrival events in [0, HorizonSec]
	Admitted  int // workflows admitted (incl. via deferral)
	Deferred  int // arrivals that waited in the backpressure queue
	Rejected  int // arrivals dropped by admission control
	Completed int // workflows that ran to completion
	WfFailed  int // workflows that terminally failed

	TasksStarted  int // task attempts that reached a node
	PendingAborts int // attempts terminated while still queued

	UsedCoreSec float64 // Σ cores × runtime over successful attempts

	MeanWaitSec     float64 // mean task queue wait
	P50WaitSec      float64
	P99WaitSec      float64 // the per-tenant SLO headline
	MeanDeferSec    float64 // mean admission deferral wait
	MeanMakespanSec float64 // mean workflow makespan

	RejectionRate float64 // Rejected / Arrivals (0 when no arrivals)

	// Solo-baseline comparison, filled by RunWithBaselines: the same tenant
	// stream alone on the same cluster under FIFO.
	SoloP99WaitSec      float64
	SoloMeanMakespanSec float64
	// WaitInflationP99 is P99WaitSec / SoloP99WaitSec (0 when the solo p99
	// is 0 — an uncontended stream with no queueing to inflate).
	WaitInflationP99  float64
	MakespanInflation float64
}

// Result is one service run.
type Result struct {
	Strategy     string
	Seed         int64
	HorizonSec   float64
	DrainedAtSec float64 // virtual time when the last admitted task finished
	Utilization  float64 // Σ tenant usedCoreSec / (total cores × DrainedAtSec)
	Tenants      []TenantResult
}

// tenantState is the live accounting of one tenant during a run.
type tenantState struct {
	spec   Tenant
	weight float64
	arrRNG *randx.Source
	wfRNG  *randx.Source

	maxInFlight int
	maxDeferred int

	arrivals  int
	admitted  int
	rejected  int
	deferrals int
	completed int
	wfFailed  int

	inFlight  int
	deferredQ []sim.Time // arrival times of deferred admissions, FIFO

	seq           int
	runningCores  int
	usedCoreSec   float64 // total, for accounting (never decays)
	fairUsage     float64 // decayed, for the fair-share deficit
	tasksStarted  int
	pendingAborts int
	waits         []float64
	deferWaits    []float64
	makespans     []float64
}

// serviceRun is one in-flight execution of a Config.
type serviceRun struct {
	cfg     Config
	eng     *sim.Engine
	cl      *cluster.Cluster
	cws     *cwsi.CWS
	inj     *fault.Injector
	tenants []*tenantState
	byID    map[string]*tenantState

	only          int // -1 = all tenants; otherwise the sole armed tenant
	activeChains  int
	inFlightTotal int
	failPlans     map[string]map[dag.TaskID]int // per-in-flight-workflow transient-failure budgets
	decayTau      float64                       // fair-share usage decay time constant
	lastDecay     sim.Time                      // last uniform decay instant (all tenants share it)
	err           error
}

// decayUsage applies the uniform exponential decay to every tenant's
// fair-share usage up to now. All tenants decay at the same instants by the
// same factor, so pairwise priority order is a pure function of the
// accounting history — not of which tenant happened to update last.
func (sv *serviceRun) decayUsage(now sim.Time) {
	dt := float64(now - sv.lastDecay)
	if dt <= 0 {
		return
	}
	f := math.Exp(-dt / sv.decayTau)
	for _, ts := range sv.tenants {
		ts.fairUsage *= f
	}
	sv.lastDecay = now
}

// tenantOf resolves a "tenant/wf-N" workflow ID to its state (nil if alien).
func (sv *serviceRun) tenantOf(wfID string) *tenantState {
	i := strings.IndexByte(wfID, '/')
	if i < 0 {
		return nil
	}
	return sv.byID[wfID[:i]]
}

// Substrate is a warm service substrate: one engine + cluster + task manager
// + CWS instance, reusable across any number of runs that share the same
// cluster shape (Nodes, CoresPerNode, MemPerNode). Between runs the
// substrate is reset in place — event queues truncated, node capacities
// restored, scheduler and provenance state cleared — instead of rebuilt, so
// an ensemble's steady-state construction cost is near zero. The determinism
// contract is the same as core.Session's: a warm run is bit-identical to a
// cold one, so reuse affects wall-clock and allocation only, never Results.
// A Substrate is single-goroutine: share nothing, one per worker.
type Substrate struct {
	nodes, cores int
	mem          float64

	eng  *sim.Engine
	cl   *cluster.Cluster
	mgr  *rm.TaskManager
	cws  *cwsi.CWS
	warm bool
}

// NewSubstrate builds a cold substrate for the given cluster shape.
// memPerNode <= 0 means the 1e12 default (memory out of the way). Returns
// nil for a non-positive shape — runs on a nil Substrate fall back to the
// cold path, where config validation reports the error.
func NewSubstrate(nodes, coresPerNode int, memPerNode float64) *Substrate {
	if nodes <= 0 || coresPerNode <= 0 {
		return nil
	}
	if memPerNode <= 0 {
		memPerNode = 1e12
	}
	eng := sim.NewEngine()
	cl := cluster.New(eng, "svc", cluster.Spec{
		Type:  cluster.NodeType{Name: "svc-node", Cores: coresPerNode, GPUs: 2, MemBytes: memPerNode},
		Count: nodes,
	})
	mgr := rm.NewTaskManager(cl, nil)
	// The per-run strategy is installed by cws.Reset at the top of each run;
	// Baseline here is just the construction placeholder.
	cws := cwsi.New(mgr, cwsi.Baseline{}, nil)
	return &Substrate{nodes: nodes, cores: coresPerNode, mem: memPerNode, eng: eng, cl: cl, mgr: mgr, cws: cws}
}

// matches reports whether the substrate's cluster shape serves cfg.
func (sub *Substrate) matches(cfg *Config) bool {
	if sub == nil {
		return false
	}
	mem := cfg.MemPerNode
	if mem <= 0 {
		mem = 1e12
	}
	return sub.nodes == cfg.Nodes && sub.cores == cfg.CoresPerNode && sub.mem == mem
}

// reset truncates the engine/cluster/manager in place. The CWS is reset
// separately (cws.Reset) because the per-run strategy is installed there.
func (sub *Substrate) reset() {
	sub.eng.Reset()
	sub.cl.Reset()
	sub.mgr.Reset()
}

// substrateAuditSkip lists the fields that legitimately survive a reset:
// capacity pools and memoization caches whose contents are never observable
// in a run's results (see the statediff package doc for the semantics).
var substrateAuditSkip = []string{
	"service.Substrate.warm",
	"sim.Engine.slab",
	"cluster.Node.name",
	"rm.TaskManager.orderScratch",
	"rm.TaskManager.candScratch",
	"rm.TaskManager.resScratch",
	"rm.TaskManager.freeRunning",
	"provenance.Store.freeIdx",
	"cwsi.CWS.freeRuns",
	"cwsi.CWS.idScratch",
	"cwsi.rmAdapter.keys",
}

// Audit resets the substrate and deep-diffs it against a freshly constructed
// one, returning one "path: detail" line per leaked field (nil when clean) —
// the service-mode arm of the warm-run dirty-state auditor.
func (sub *Substrate) Audit() []string {
	sub.reset()
	sub.cws.Reset(cwsi.Baseline{}, nil)
	fresh := NewSubstrate(sub.nodes, sub.cores, sub.mem)
	return statediff.Diff(sub, fresh, statediff.Config{Skip: substrateAuditSkip})
}

// Run executes the service session and returns per-tenant accounting. It is
// a pure function of (cfg, seed): bit-identical Results for equal inputs.
func Run(cfg Config, seed int64) (*Result, error) {
	return run(nil, cfg, seed, -1)
}

// Run executes the session on the warm substrate — bit-identical to the
// package-level Run, minus the per-run substrate construction.
func (sub *Substrate) Run(cfg Config, seed int64) (*Result, error) {
	return run(sub, cfg, seed, -1)
}

// RunSolo executes the session with only tenant index `only` armed, on the
// identical per-tenant random streams a full Run would use — the solo
// baseline that makespan-inflation and wait-inflation SLOs compare against.
// The solo run always schedules under FIFO: it measures the tenant's
// uncontended behavior, not the strategy's.
func RunSolo(cfg Config, seed int64, only int) (*Result, error) {
	return runSolo(nil, cfg, seed, only)
}

// RunSolo is the warm-substrate form of the package-level RunSolo.
func (sub *Substrate) RunSolo(cfg Config, seed int64, only int) (*Result, error) {
	return runSolo(sub, cfg, seed, only)
}

func runSolo(sub *Substrate, cfg Config, seed int64, only int) (*Result, error) {
	if only < 0 || only >= len(cfg.Tenants) {
		return nil, fmt.Errorf("service: RunSolo tenant index %d out of range", only)
	}
	cfg.FairShare = false
	return run(sub, cfg, seed, only)
}

func run(sub *Substrate, cfg Config, seed int64, only int) (*Result, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("service: config needs at least one tenant")
	}
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("service: config needs nodes and cores per node")
	}
	if cfg.HorizonSec <= 0 {
		return nil, fmt.Errorf("service: config needs a positive horizon")
	}

	// Resolve the substrate: the caller's warm one when its shape serves the
	// config, else a one-shot cold build (also the path of the package-level
	// Run functions).
	if !sub.matches(&cfg) {
		sub = NewSubstrate(cfg.Nodes, cfg.CoresPerNode, cfg.MemPerNode)
	} else if sub.warm {
		sub.reset()
	}
	sub.warm = true

	sv := &serviceRun{
		cfg:      cfg,
		eng:      sub.eng,
		cl:       sub.cl,
		byID:     map[string]*tenantState{},
		only:     only,
		decayTau: cfg.FairShareDecaySec,
	}
	if sv.decayTau <= 0 {
		sv.decayTau = 1800
	}

	// Fixed fork order — part of the determinism contract, and shared with
	// solo runs so tenant i sees the identical arrival/workload streams
	// whether or not anyone else is on the cluster: one arrival fork and one
	// workload fork per configured tenant (armed or not), then the fault
	// forks.
	rng := randx.New(seed)
	for i := range cfg.Tenants {
		t := cfg.Tenants[i]
		if t.ID == "" || strings.ContainsRune(t.ID, '/') {
			return nil, fmt.Errorf("service: tenant %d: ID %q must be non-empty without '/'", i, t.ID)
		}
		if t.Arrivals == nil || t.Workload == nil {
			return nil, fmt.Errorf("service: tenant %q needs Arrivals and Workload", t.ID)
		}
		if _, dup := sv.byID[t.ID]; dup {
			return nil, fmt.Errorf("service: duplicate tenant ID %q", t.ID)
		}
		ts := &tenantState{
			spec:        t,
			weight:      t.Weight,
			arrRNG:      rng.Fork(),
			wfRNG:       rng.Fork(),
			maxInFlight: t.MaxInFlight,
			maxDeferred: t.MaxDeferred,
		}
		if ts.weight <= 0 {
			ts.weight = 1
		}
		if ts.maxInFlight == 0 {
			ts.maxInFlight = 8
		}
		if ts.maxDeferred == 0 {
			ts.maxDeferred = 16
		}
		sv.tenants = append(sv.tenants, ts)
		sv.byID[t.ID] = ts
	}

	var strat cwsi.Strategy = cwsi.Baseline{}
	if cfg.FairShare {
		strat = &FairShare{sv: sv}
	}
	// Reset installs the per-run strategy; on a fresh substrate it is the
	// identity apart from that, so warm and cold runs see the same CWS.
	sub.cws.Reset(strat, nil)
	sv.cws = sub.cws
	sv.cws.Provenance().SetTenantResolver(func(wfID string) string {
		if i := strings.IndexByte(wfID, '/'); i >= 0 {
			return wfID[:i]
		}
		return wfID
	})
	if cfg.Compact {
		sv.cws.Provenance().SetCompact(true)
	}
	sv.cws.SetTaskObserver(sv.observe)

	if cfg.Faults.Enabled() {
		retry := cfg.Retry
		if retry == (fault.RetryPolicy{}) {
			retry = fault.DefaultRetryPolicy()
		}
		sv.inj = fault.NewInjector(sub.cl, rng.Fork(), cfg.Faults)
		sv.cws.SetRecovery(retry, rng.Fork())
		if cfg.Faults.TaskFailProb > 0 {
			sv.failPlans = map[string]map[dag.TaskID]int{}
			sv.cws.SetFaultInjection(func(wfID string, taskID dag.TaskID, attempt int) bool {
				return attempt <= sv.failPlans[wfID][taskID]
			})
		}
		sv.inj.Start()
	}

	for i, ts := range sv.tenants {
		if only >= 0 && i != only {
			continue
		}
		sv.activeChains++
		sv.armArrivals(ts)
	}
	sub.eng.Run()
	if sv.err != nil {
		return nil, sv.err
	}
	if cfg.inspect != nil {
		cfg.inspect(sv)
	}
	return sv.result(seed), nil
}

// armArrivals schedules the tenant's next arrival, ending the chain past the
// horizon.
func (sv *serviceRun) armArrivals(ts *tenantState) {
	d := ts.spec.Arrivals.Next(sv.eng.Now(), ts.arrRNG)
	if d < 0 {
		d = 0
	}
	at := sv.eng.Now() + d
	if float64(at) > sv.cfg.HorizonSec {
		sv.chainDone()
		return
	}
	sv.eng.At(at, func() {
		if sv.err != nil {
			sv.chainDone()
			return
		}
		sv.arrive(ts)
		sv.armArrivals(ts)
	})
}

// arrive applies admission control to one arrival: admit within the
// in-flight budget, defer into the bounded backpressure queue, or reject.
// Rejected and deferred arrivals cost O(1) state — the workflow is neither
// generated nor compiled until an in-flight slot is granted, so service
// state stays O(in-flight + deferred), never O(arrivals).
func (sv *serviceRun) arrive(ts *tenantState) {
	ts.arrivals++
	switch {
	case ts.inFlight < ts.maxInFlight:
		sv.admit(ts, sv.eng.Now())
	case len(ts.deferredQ) < ts.maxDeferred:
		ts.deferrals++
		ts.deferredQ = append(ts.deferredQ, sv.eng.Now())
	default:
		ts.rejected++
	}
}

// admit compiles and starts one workflow for an arrival that entered at
// arrivedAt (possibly earlier than now, for deferred admissions).
func (sv *serviceRun) admit(ts *tenantState, arrivedAt sim.Time) {
	now := sv.eng.Now()
	ts.admitted++
	ts.inFlight++
	sv.inFlightTotal++
	if now > arrivedAt {
		ts.deferWaits = append(ts.deferWaits, float64(now-arrivedAt))
	}
	ts.seq++
	wfID := fmt.Sprintf("%s/wf-%05d", ts.spec.ID, ts.seq)
	w, err := ts.spec.Workload(ts.wfRNG).Compile()
	if err != nil {
		sv.fail(fmt.Errorf("service: tenant %s workload compile: %w", ts.spec.ID, err))
		return
	}
	if err := sv.cws.RegisterWorkflow(wfID, w); err != nil {
		sv.fail(fmt.Errorf("service: %w", err))
		return
	}
	if sv.failPlans != nil {
		// One plan fork per admission, drawn from the tenant's workload
		// stream right after the workflow itself — the fixed order that keeps
		// solo and contended runs on identical per-workflow fault plans.
		plan := sv.cfg.Faults.PlanTaskFailures(w.Len(), ts.wfRNG.Fork())
		m := map[dag.TaskID]int{}
		for i, task := range w.Tasks() {
			if plan[i] > 0 {
				m[task.ID] = plan[i]
			}
		}
		sv.failPlans[wfID] = m
	}
	err = sv.cws.StartWorkflow(wfID, 0, func(ms sim.Time, err error) {
		if err != nil {
			ts.wfFailed++
		} else {
			ts.completed++
			ts.makespans = append(ts.makespans, float64(ms))
		}
		// The workflow is fully accounted: release its scheduler and
		// provenance structure so session state stays bounded.
		sv.cws.ReleaseWorkflow(wfID)
		delete(sv.failPlans, wfID)
		ts.inFlight--
		sv.inFlightTotal--
		// Deterministic requeue: the freed slot goes to the oldest deferred
		// arrival, at the completion timestamp.
		if len(ts.deferredQ) > 0 {
			at := ts.deferredQ[0]
			ts.deferredQ = ts.deferredQ[1:]
			sv.admit(ts, at)
			return
		}
		sv.maybeStopInjector()
	})
	if err != nil {
		sv.fail(fmt.Errorf("service: %w", err))
	}
}

// fail aborts the run at the next opportunity; arrival chains stop re-arming.
func (sv *serviceRun) fail(err error) {
	if sv.err == nil {
		sv.err = err
		sv.eng.Halt()
	}
}

func (sv *serviceRun) chainDone() {
	sv.activeChains--
	sv.maybeStopInjector()
}

// maybeStopInjector stops the fault processes once no arrivals remain and
// all admitted work has drained, so the engine can run dry.
func (sv *serviceRun) maybeStopInjector() {
	if sv.inj != nil && sv.activeChains == 0 && sv.inFlightTotal == 0 {
		sv.inj.Stop()
	}
}

// observe is the CWS task observer: per-tenant accounting for every terminal
// task attempt, after provenance capture. It fires at exactly the moments
// the priority-cache generation advances, so the fair-share deficits it
// maintains are never read stale by a memoized priority.
func (sv *serviceRun) observe(wfID string, _ dag.TaskID, _ int, r rm.Result) {
	ts := sv.tenantOf(wfID)
	if ts == nil {
		return
	}
	if r.Node == nil {
		ts.pendingAborts++ // aborted while queued: no placement to account
		return
	}
	if sv.cfg.FairShare {
		ts.runningCores -= r.Submission.Cores // quota release
	}
	ts.tasksStarted++
	ts.waits = append(ts.waits, float64(r.StartedAt-r.SubmittedAt))
	if !r.Failed {
		used := float64(r.Submission.Cores) * float64(r.FinishedAt-r.StartedAt)
		ts.usedCoreSec += used
		if sv.cfg.FairShare {
			sv.decayUsage(sv.eng.Now())
			ts.fairUsage += used
		}
	}
}

// result freezes the run into a Result.
func (sv *serviceRun) result(seed int64) *Result {
	res := &Result{
		Strategy:     "fifo",
		Seed:         seed,
		HorizonSec:   sv.cfg.HorizonSec,
		DrainedAtSec: float64(sv.eng.Now()),
	}
	if sv.cfg.FairShare {
		res.Strategy = "fairshare"
	}
	totalCores := float64(sv.cfg.Nodes * sv.cfg.CoresPerNode)
	var usedTotal float64
	for i, ts := range sv.tenants {
		if sv.only >= 0 && i != sv.only {
			continue
		}
		tr := TenantResult{
			Tenant:          ts.spec.ID,
			Weight:          ts.weight,
			Arrivals:        ts.arrivals,
			Admitted:        ts.admitted,
			Deferred:        ts.deferrals,
			Rejected:        ts.rejected,
			Completed:       ts.completed,
			WfFailed:        ts.wfFailed,
			TasksStarted:    ts.tasksStarted,
			PendingAborts:   ts.pendingAborts,
			UsedCoreSec:     ts.usedCoreSec,
			MeanWaitSec:     mean(ts.waits),
			P50WaitSec:      metrics.Quantile(ts.waits, 0.5),
			P99WaitSec:      metrics.Quantile(ts.waits, 0.99),
			MeanDeferSec:    mean(ts.deferWaits),
			MeanMakespanSec: mean(ts.makespans),
		}
		if ts.arrivals > 0 {
			tr.RejectionRate = float64(ts.rejected) / float64(ts.arrivals)
		}
		usedTotal += ts.usedCoreSec
		res.Tenants = append(res.Tenants, tr)
	}
	if res.DrainedAtSec > 0 {
		res.Utilization = usedTotal / (totalCores * res.DrainedAtSec)
	}
	return res
}

// RunWithBaselines runs the configured session and, per tenant, the solo
// FIFO baseline on the identical streams, filling each TenantResult's
// Solo*/inflation fields — the §6 pathology metric (contended p99 wait vs
// solo) and the fairness SLO read straight off the returned Result.
func RunWithBaselines(cfg Config, seed int64) (*Result, error) {
	return runWithBaselines(nil, cfg, seed)
}

// RunWithBaselines is the warm-substrate form: the contended run and all N
// solo baselines execute on the one reused substrate — 1+N resets instead of
// 1+N constructions.
func (sub *Substrate) RunWithBaselines(cfg Config, seed int64) (*Result, error) {
	return runWithBaselines(sub, cfg, seed)
}

func runWithBaselines(sub *Substrate, cfg Config, seed int64) (*Result, error) {
	res, err := run(sub, cfg, seed, -1)
	if err != nil {
		return nil, err
	}
	for i := range res.Tenants {
		solo, err := runSolo(sub, cfg, seed, i)
		if err != nil {
			return nil, err
		}
		attachBaseline(&res.Tenants[i], &solo.Tenants[0])
	}
	return res, nil
}

func attachBaseline(tr *TenantResult, solo *TenantResult) {
	tr.SoloP99WaitSec = solo.P99WaitSec
	tr.SoloMeanMakespanSec = solo.MeanMakespanSec
	if solo.P99WaitSec > 0 {
		tr.WaitInflationP99 = tr.P99WaitSec / solo.P99WaitSec
	}
	if solo.MeanMakespanSec > 0 {
		tr.MakespanInflation = tr.MeanMakespanSec / solo.MeanMakespanSec
	}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
