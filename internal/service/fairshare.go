package service

import (
	"hhcw/internal/cluster"
	"hhcw/internal/cwsi"
	"hhcw/internal/rm"
)

// FairShare is a deficit-weighted fair-share strategy: a pending task's
// priority is the negated normalized recent usage of its tenant,
//
//	Priority = -(fairUsage / weight)
//
// where fairUsage is core-seconds consumed, exponentially decayed with the
// config's FairShareDecaySec time constant — the classic fair-share decay
// rule. The tenant furthest below its recent share always drains first.
// Usage only changes when a task attempt terminates — the same moments the
// CWS bumps its priority-cache generation — so the memoized priorities the
// scheduler reads are never stale: the PriorityCache machinery gives the
// deficit scan O(1) amortized cost per pending task.
//
// PickNode additionally enforces per-tenant core quotas: when placing a
// task would push the tenant's concurrently allocated cores past
// QuotaCores, the task skips this scheduling pass (return nil) and yields
// the resources to other tenants. runningCores bookkeeping lives here (on
// placement) and in serviceRun.observe (on completion), both on the
// scheduler's event path, so it is exact, not sampled.
type FairShare struct {
	sv *serviceRun
}

// Name implements cwsi.Strategy.
func (f *FairShare) Name() string { return "service-fairshare" }

// Priority implements cwsi.Strategy: higher for tenants with less weighted
// usage. Tasks from unknown workflows (none in service runs) rank neutral.
func (f *FairShare) Priority(s *rm.Submission, _ *cwsi.Context) float64 {
	ts := f.sv.tenantOf(s.WorkflowID)
	if ts == nil {
		return 0
	}
	return -(ts.fairUsage / ts.weight)
}

// PickNode implements cwsi.Strategy: quota gate, then first-fit (matching
// the FIFO baseline's placement so measured differences are pure ordering).
func (f *FairShare) PickNode(s *rm.Submission, candidates []*cluster.Node, _ *cwsi.Context) *cluster.Node {
	if len(candidates) == 0 {
		return nil
	}
	ts := f.sv.tenantOf(s.WorkflowID)
	if ts != nil {
		if q := ts.spec.QuotaCores; q > 0 && ts.runningCores+s.Cores > q {
			return nil // over quota: sit out this pass
		}
		ts.runningCores += s.Cores
	}
	return candidates[0]
}
