// Package service turns the closed-batch simulator into an open system: a
// long-lived multi-tenant service absorbing workflow arrival streams — the
// operating regime the paper's §6 migration discussion worries about (fair
// share, over-parallelism, starvation) and the RADICAL-EnTK line of work
// frames runtimes around. Tenants inject compiled workflows through arrival
// processes into one shared rm.TaskManager/CWS session; the service adds
// admission control in front of the scheduler and per-tenant accounting,
// fair-share scheduling, and SLO metrics behind it.
//
// Everything runs in virtual time on forked randx sources, so a service run
// is a pure function of (Config, seed): same inputs ⇒ bit-identical Result
// fingerprints at any sweep worker count.
package service

import (
	"fmt"
	"math"

	"hhcw/internal/randx"
	"hhcw/internal/sim"
)

// Arrivals is a workflow arrival process. Next returns the delay from now to
// the tenant's next arrival, consuming randomness only from rng — the
// determinism contract every profile must keep.
type Arrivals interface {
	Name() string
	Next(now sim.Time, rng *randx.Source) sim.Time
}

// Poisson is a homogeneous Poisson arrival process.
type Poisson struct {
	RatePerHour float64
}

// Name implements Arrivals.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%.3g/h)", p.RatePerHour) }

// Next implements Arrivals: exponential inter-arrival times.
func (p Poisson) Next(_ sim.Time, rng *randx.Source) sim.Time {
	if p.RatePerHour <= 0 {
		panic("service: Poisson arrivals with non-positive rate")
	}
	return sim.Time(rng.Exp(3600 / p.RatePerHour))
}

// Burst alternates between a quiet base rate and burst episodes: within each
// PeriodSec window, the first BurstFrac fraction runs at BurstRatePerHour and
// the remainder at BaseRatePerHour — a square-wave intensity, the campaign
// submission pattern where a tenant's pipeline fires batches on a cadence.
type Burst struct {
	BaseRatePerHour  float64
	BurstRatePerHour float64
	PeriodSec        float64
	BurstFrac        float64 // fraction of each period spent bursting, (0,1)
}

// Name implements Arrivals.
func (b Burst) Name() string {
	return fmt.Sprintf("burst(%.3g/%.3g/h,T=%.0fs)", b.BaseRatePerHour, b.BurstRatePerHour, b.PeriodSec)
}

// Rate returns the instantaneous rate at t.
func (b Burst) Rate(t sim.Time) float64 {
	phase := float64(t) / b.PeriodSec
	if phase-float64(int(phase)) < b.BurstFrac {
		return b.BurstRatePerHour
	}
	return b.BaseRatePerHour
}

// Next implements Arrivals by thinning against the peak rate.
func (b Burst) Next(now sim.Time, rng *randx.Source) sim.Time {
	if b.PeriodSec <= 0 || b.BurstFrac <= 0 || b.BurstFrac >= 1 {
		panic("service: Burst arrivals need PeriodSec > 0 and BurstFrac in (0,1)")
	}
	peak := b.BurstRatePerHour
	if b.BaseRatePerHour > peak {
		peak = b.BaseRatePerHour
	}
	return thin(now, rng, peak, b.Rate)
}

// Diurnal is a sinusoidally modulated Poisson process: rate(t) = mean ×
// (1 + Amplitude·sin(2πt/Period)) — the day/night submission cycle of an
// interactive user base.
type Diurnal struct {
	MeanRatePerHour float64
	Amplitude       float64 // relative swing in [0,1)
	PeriodSec       float64
}

// Name implements Arrivals.
func (d Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%.3g/h,a=%.2f)", d.MeanRatePerHour, d.Amplitude)
}

// Rate returns the instantaneous rate at t.
func (d Diurnal) Rate(t sim.Time) float64 {
	return d.MeanRatePerHour * (1 + d.Amplitude*math.Sin(2*math.Pi*float64(t)/d.PeriodSec))
}

// Next implements Arrivals by thinning against the peak rate.
func (d Diurnal) Next(now sim.Time, rng *randx.Source) sim.Time {
	if d.MeanRatePerHour <= 0 || d.Amplitude < 0 || d.Amplitude >= 1 || d.PeriodSec <= 0 {
		panic("service: Diurnal arrivals need rate > 0, amplitude in [0,1), period > 0")
	}
	peak := d.MeanRatePerHour * (1 + d.Amplitude)
	return thin(now, rng, peak, d.Rate)
}

// thin draws the next arrival of an inhomogeneous Poisson process with the
// given instantaneous rate by Lewis–Shedler thinning against peakPerHour:
// candidate points arrive at the peak rate and survive with probability
// rate/peak. Candidate count is bounded so a pathological rate function
// cannot spin forever; the fallback returns the last rejected candidate.
func thin(now sim.Time, rng *randx.Source, peakPerHour float64, rate func(sim.Time) float64) sim.Time {
	t := now
	for i := 0; i < 4096; i++ {
		t += sim.Time(rng.Exp(3600 / peakPerHour))
		r := rate(t)
		if r >= peakPerHour || rng.Bernoulli(r/peakPerHour) {
			break
		}
	}
	return t - now
}
