package service

import (
	"runtime"
	"testing"
)

// TestSweepWorkerCountInvariant is the service-mode determinism gate: the
// ensemble fingerprint — every per-run digest folded in strategy-major,
// seed-ascending order — must be bit-identical at any worker count.
func TestSweepWorkerCountInvariant(t *testing.T) {
	const seeds = 10
	base, err := Sweep(SweepConfig{Seeds: seeds, Seed0: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Fingerprints) != 2*seeds {
		t.Fatalf("fingerprints = %d, want %d", len(base.Fingerprints), 2*seeds)
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		got, err := Sweep(SweepConfig{Seeds: seeds, Seed0: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint != base.Fingerprint {
			t.Fatalf("workers=%d changed the ensemble fingerprint: %s vs %s",
				workers, got.Fingerprint, base.Fingerprint)
		}
		for i := range base.Fingerprints {
			if got.Fingerprints[i] != base.Fingerprints[i] {
				t.Fatalf("workers=%d changed run %d fingerprint", workers, i)
			}
		}
	}
	if shifted, err := Sweep(SweepConfig{Seeds: seeds, Seed0: 2, Workers: 1}); err != nil {
		t.Fatal(err)
	} else if shifted.Fingerprint == base.Fingerprint {
		t.Fatal("different seed base produced the same ensemble fingerprint")
	}
}

// TestContendedScenarioAcceptance pins the §6 pathology and its fair-share
// fix on a reduced ensemble (the full 200-seed table lives in the sweeprun
// -arrivals mode): under plain FIFO the heavy tenant's p99 queue wait
// inflates at least 2× over its solo baseline, and the fair-share strategy
// keeps the cross-tenant p99 spread within 1.5×.
func TestContendedScenarioAcceptance(t *testing.T) {
	res, err := Sweep(SweepConfig{Seeds: 25, Seed0: 1, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 2 {
		t.Fatalf("strategies = %+v", res.Strategies)
	}
	fifo, fair := res.Strategies[0], res.Strategies[1]
	if fifo.Strategy != "fifo" || fair.Strategy != "fairshare" {
		t.Fatalf("strategy order = %s, %s", fifo.Strategy, fair.Strategy)
	}

	var fifoHeavy *TenantAgg
	for i := range res.Tenants {
		if res.Tenants[i].Strategy == "fifo" && res.Tenants[i].Tenant == "heavy" {
			fifoHeavy = &res.Tenants[i]
		}
	}
	if fifoHeavy == nil {
		t.Fatal("no fifo/heavy aggregate")
	}
	if fifoHeavy.SoloP99Wait.Mean() <= 0 {
		t.Fatalf("solo baseline shows no queueing (p99 %.2f) — scenario miscalibrated", fifoHeavy.SoloP99Wait.Mean())
	}
	if fifoHeavy.WaitInflation < 2 {
		t.Fatalf("FIFO heavy-tenant p99 inflation %.2f < 2 — pathology not reproduced", fifoHeavy.WaitInflation)
	}
	if fair.MaxMinP99Ratio > 1.5 {
		t.Fatalf("fair-share max/min tenant p99 ratio %.2f > 1.5 — fairness criterion missed", fair.MaxMinP99Ratio)
	}
	if fair.MaxMinP99Ratio <= 0 {
		t.Fatal("fair-share ratio unset")
	}
	// Admission control must have been exercised somewhere in the ensemble
	// or the backpressure path is dead code in the headline experiment.
	deferred := 0
	for _, ta := range res.Tenants {
		deferred += ta.Deferred
	}
	if deferred == 0 {
		t.Fatal("no admissions were ever deferred across the ensemble")
	}
}
