package service

import (
	"fmt"
	"strings"

	"hhcw/internal/compose"
)

// RunSummary normalizes one service run into the report schema. The
// fingerprint is Result.Fingerprint verbatim, so report consumers (the CI
// determinism lane diffs `.runs[].fingerprint`) see the service layer's own
// bit-exact digest.
func (r *Result) RunSummary(name string) compose.RunSummary {
	tasks, rejected, deferred := 0, 0, 0
	for _, t := range r.Tenants {
		tasks += t.TasksStarted
		rejected += t.Rejected
		deferred += t.Deferred
	}
	return compose.RunSummary{
		Name:            name,
		Subsystem:       "service",
		Environment:     r.Strategy,
		Tasks:           tasks,
		MakespanSec:     r.DrainedAtSec,
		UtilizationCore: r.Utilization,
		Extra: map[string]float64{
			"rejected": float64(rejected),
			"deferred": float64(deferred),
			"tenants":  float64(len(r.Tenants)),
		},
		Fingerprint: r.Fingerprint(),
	}
}

// TenantSummaries flattens the sweep's per-(strategy, tenant) aggregates
// into report rows, preserving the reduce order (strategy-major).
func (sr *SweepResult) TenantSummaries() []compose.TenantSummary {
	out := make([]compose.TenantSummary, 0, len(sr.Tenants))
	for _, ta := range sr.Tenants {
		out = append(out, compose.TenantSummary{
			Strategy:          ta.Strategy,
			Tenant:            ta.Tenant,
			Weight:            ta.Weight,
			P99WaitSec:        ta.P99Wait.Mean(),
			SoloP99WaitSec:    ta.SoloP99Wait.Mean(),
			WaitInflationP99:  ta.WaitInflation,
			MeanMakespanSec:   ta.Makespan.Mean(),
			MakespanInflation: ta.MakespanInfl,
			RejectionRate:     ta.RejectionRate.Mean(),
			Deferred:          ta.Deferred,
			Rejected:          ta.Rejected,
		})
	}
	return out
}

// Table renders the tenant-fairness table: one block per strategy with its
// cross-tenant headline, one row per tenant. Deterministic bytes.
func (sr *SweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d seeds (base %d), aggregate fingerprint %s\n", sr.Seeds, sr.Seed0, sr.Fingerprint)
	for _, sa := range sr.Strategies {
		fmt.Fprintf(&b, "\n%s: max/min tenant p99 ratio %.2f, worst p99 inflation %.2fx, utilization %.3f\n",
			sa.Strategy, sa.MaxMinP99Ratio, sa.WorstWaitInflation, sa.MeanUtilization)
		fmt.Fprintf(&b, "  %-8s %6s %12s %12s %8s %12s %8s %9s\n",
			"tenant", "weight", "p99wait(s)", "solo-p99(s)", "infl", "makespan(s)", "mk-infl", "rej-rate")
		for _, ta := range sr.Tenants {
			if ta.Strategy != sa.Strategy {
				continue
			}
			fmt.Fprintf(&b, "  %-8s %6.2f %12.1f %12.1f %8.2f %12.1f %8.2f %9.4f\n",
				ta.Tenant, ta.Weight, ta.P99Wait.Mean(), ta.SoloP99Wait.Mean(), ta.WaitInflation,
				ta.Makespan.Mean(), ta.MakespanInfl, ta.RejectionRate.Mean())
		}
	}
	return b.String()
}
