package driver

import (
	"fmt"
	"runtime"
	"testing"

	"hhcw/internal/compose"
	"hhcw/internal/core"
	"hhcw/internal/dag"
	"hhcw/internal/entk"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
	"hhcw/internal/sweep"
)

// registrySpecs builds the static and lazy sweep specs for one registry
// entry, exactly as wfsim -registry does: both draw the per-seed binding the
// same way, so the only difference is when references resolve.
func registrySpecs(reg *compose.Registry, entry string) (static, lazy sweep.WorkflowSpec) {
	static = sweep.WorkflowSpec{Name: entry, Gen: func(rng *randx.Source) *dag.Workflow {
		w, err := reg.Expand(RefRoot(entry, rng.Int63()))
		if err != nil {
			panic(fmt.Sprintf("expanding %q: %v", entry, err))
		}
		return w
	}}
	lazy = sweep.WorkflowSpec{Name: entry, Gen: func(rng *randx.Source) *dag.Workflow {
		return RefRoot(entry, rng.Int63())
	}}
	return static, lazy
}

func batteryFingerprint(t *testing.T, spec sweep.WorkflowSpec, env sweep.EnvSpec, seeds, workers int) string {
	t.Helper()
	rep, err := sweep.Run(sweep.Config{
		Workflows: []sweep.WorkflowSpec{spec},
		Envs:      []sweep.EnvSpec{env},
		Seeds:     sweep.Seeds(1, seeds),
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Fingerprint()
}

// TestRecursiveGoldenBattery is the acceptance battery for recursive
// composition: the nested atlas-uq entry (root ref -> atlas-uq -> {atlas,
// exaam-uq}) over 50 seeds, fault-free and under the storm chaos profile, at
// workers 1 and NumCPU — static expansion on the eager path vs lazy
// dag.RefExpander on the streaming path, per-seed Result fingerprints
// bit-identical element for element.
func TestRecursiveGoldenBattery(t *testing.T) {
	const seeds = 50
	reg := Registry()
	staticSpec, lazySpec := registrySpecs(reg, "atlas-uq")
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	profiles := []fault.Profile{{}, fault.Storm()}
	for _, faults := range profiles {
		faults := faults
		staticEnv := sweep.EnvSpec{Name: "k8s", New: func() core.Environment {
			return &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: faults}
		}}
		lazyEnv := sweep.EnvSpec{Name: "k8s", New: func() core.Environment {
			return &compose.LazyEnv{
				KubernetesEnv: core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: faults},
				Registry:      reg,
			}
		}}
		ref := batteryFingerprint(t, staticSpec, staticEnv, seeds, 1)
		for _, w := range workerCounts {
			if got := batteryFingerprint(t, staticSpec, staticEnv, seeds, w); got != ref {
				t.Errorf("faults=%q: static battery diverges at workers=%d", faults.Name, w)
			}
			if got := batteryFingerprint(t, lazySpec, lazyEnv, seeds, w); got != ref {
				t.Errorf("faults=%q: lazy battery diverges from static at workers=%d", faults.Name, w)
			}
		}
	}
}

// TestRegistryEntriesExpandBothWays checks every builtin entry resolves,
// expands statically, and produces an identical single-run fingerprint under
// lazy expansion — the quick whole-catalog version of the battery above.
func TestRegistryEntriesExpandBothWays(t *testing.T) {
	reg := Registry()
	for _, entry := range reg.Names() {
		root := RefRoot(entry, 42)
		w, err := reg.Expand(root)
		if err != nil {
			t.Errorf("entry %q: static expand: %v", entry, err)
			continue
		}
		if w.Len() < 2 {
			t.Errorf("entry %q expands to %d tasks", entry, w.Len())
		}
		env := &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: fault.Storm()}
		sres, err := env.RunSeeded(w, randx.New(9))
		if err != nil {
			t.Errorf("entry %q: static run: %v", entry, err)
			continue
		}
		lenv := &compose.LazyEnv{
			KubernetesEnv: core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: fault.Storm()},
			Registry:      reg,
		}
		lres, err := lenv.RunSeeded(RefRoot(entry, 42), randx.New(9))
		if err != nil {
			t.Errorf("entry %q: lazy run: %v", entry, err)
			continue
		}
		if sres.Fingerprint() != lres.Fingerprint() {
			t.Errorf("entry %q: static %s != lazy %s", entry, sres.Fingerprint(), lres.Fingerprint())
		}
	}
}

// dynPipeline is an EnTK pipeline that grows itself twice through PostExec —
// the dynamic-workflow pattern Compile rejects and lazy expansion makes
// first-class.
func dynPipeline() *entk.Pipeline {
	p := &entk.Pipeline{Name: "adaptive-uq"}
	round := 0
	var hook func(pl *entk.Pipeline, s *entk.Stage)
	hook = func(pl *entk.Pipeline, s *entk.Stage) {
		round++
		if round > 2 {
			return
		}
		next := &entk.Stage{Name: fmt.Sprintf("refine%d", round), PostExec: hook}
		for i := 0; i < 2; i++ {
			next.AddTask(&entk.Task{ID: fmt.Sprintf("sim%d", i), Nodes: 1, DurationSec: 40})
		}
		pl.AddStage(next)
	}
	seed := p.AddStage(&entk.Stage{Name: "seed", PostExec: hook})
	seed.AddTask(&entk.Task{ID: "coarse", Nodes: 2, DurationSec: 60})
	return p
}

// TestEnTKPostExecLazyEndToEnd runs a PostExec-growing pipeline end to end
// through the streaming path: the expansion grows 1 -> 5 tasks mid-run, the
// result reflects the grown total, and the run is deterministic — including
// under the storm fault profile, where the fault plan covers the initial
// total and dynamically appended tasks draw only injector-level faults.
func TestEnTKPostExecLazyEndToEnd(t *testing.T) {
	run := func(faults fault.Profile) *core.Result {
		x, err := dynPipeline().Expand()
		if err != nil {
			t.Fatal(err)
		}
		env := &core.KubernetesEnv{Nodes: 4, CoresPerNode: 8, Faults: faults}
		res, err := env.RunExpander(x, randx.New(5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(fault.Profile{})
	if res.TasksRun != 5 {
		t.Fatalf("TasksRun = %d, want 5 (1 seed + 2x2 appended)", res.TasksRun)
	}
	if res.MakespanSec <= 0 {
		t.Fatal("no makespan")
	}
	if a, b := run(fault.Profile{}).Fingerprint(), res.Fingerprint(); a != b {
		t.Fatalf("dynamic run not deterministic:\n %s\n %s", a, b)
	}
	s1, s2 := run(fault.Storm()), run(fault.Storm())
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatalf("dynamic storm run not deterministic:\n %s\n %s", s1.Fingerprint(), s2.Fingerprint())
	}
}
