package driver

import (
	"os"
	"strings"
	"testing"

	"hhcw/internal/core"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
)

// withArgs runs fn with os.Args swapped for the given command line.
func withArgs(t *testing.T, args []string, fn func()) {
	t.Helper()
	saved := os.Args
	os.Args = append([]string{"test-app"}, args...)
	defer func() { os.Args = saved }()
	fn()
}

func TestParseCommonFlags(t *testing.T) {
	withArgs(t, []string{"-seed", "42", "-faults", "mtbf", "-json"}, func() {
		app := New("t", "t [flags]")
		extra := app.Int("extra", 3, "command-specific flag")
		app.Parse()
		if app.Seed() != 42 {
			t.Fatalf("Seed() = %d, want 42", app.Seed())
		}
		if app.FaultsName() != "mtbf" || !app.Faults().Enabled() {
			t.Fatalf("faults = %q enabled=%v, want mtbf/enabled", app.FaultsName(), app.Faults().Enabled())
		}
		if !app.JSON() {
			t.Fatal("JSON() = false after -json")
		}
		if *extra != 3 {
			t.Fatalf("extra = %d, want default 3", *extra)
		}
	})
}

func TestSeedDefault(t *testing.T) {
	withArgs(t, nil, func() {
		app := New("t", "t [flags]")
		app.SeedDefault(13)
		app.Parse()
		if app.Seed() != 13 {
			t.Fatalf("Seed() = %d, want overridden default 13", app.Seed())
		}
	})
	// An explicit -seed still wins over the overridden default.
	withArgs(t, []string{"-seed", "5"}, func() {
		app := New("t", "t [flags]")
		app.SeedDefault(13)
		app.Parse()
		if app.Seed() != 5 {
			t.Fatalf("Seed() = %d, want explicit 5", app.Seed())
		}
	})
}

func TestNewReportHeader(t *testing.T) {
	withArgs(t, []string{"-seed", "9"}, func() {
		app := New("myapp", "myapp")
		app.Parse()
		rep := app.NewReport()
		if rep.App != "myapp" || rep.Seed != 9 {
			t.Fatalf("report header = %q/%d, want myapp/9", rep.App, rep.Seed)
		}
		if rep.Faults != "" {
			t.Fatalf("report faults = %q, want empty for -faults none", rep.Faults)
		}
	})
}

func TestRunSeededMatchesSweepDiscipline(t *testing.T) {
	gen := func(seed int64) (*dag.Workflow, *randx.Source) {
		rng := randx.New(seed)
		opts := dag.GenOpts{MeanDur: 100, CVDur: 0.5, Cores: 1, MaxCores: 2, MeanMem: 1e9}
		return dag.ForkJoin(rng, 2, 4, opts), rng
	}
	newEnv := func() core.Environment {
		return &core.KubernetesEnv{Nodes: 2, CoresPerNode: 4, Faults: fault.MTBF()}
	}

	w1, r1 := gen(77)
	res1, err := RunSeeded(newEnv(), w1, r1)
	if err != nil {
		t.Fatal(err)
	}
	w2, r2 := gen(77)
	res2, err := RunSeeded(newEnv(), w2, r2)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Fingerprint() != res2.Fingerprint() {
		t.Fatalf("RunSeeded not deterministic:\n%s\n%s", res1.Fingerprint(), res2.Fingerprint())
	}
}

func TestWorkflowFamilies(t *testing.T) {
	for _, name := range strings.Split(WorkflowFamilies, "|") {
		spec, err := WorkflowFamily(name, 8, 0)
		if err != nil {
			t.Fatalf("WorkflowFamily(%q): %v", name, err)
		}
		w := spec.Gen(randx.New(1))
		if w.Len() == 0 {
			t.Fatalf("WorkflowFamily(%q) produced an empty workflow", name)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("WorkflowFamily(%q) invalid: %v", name, err)
		}
	}
	if _, err := WorkflowFamily("nope", 8, 0); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestBuildEnv(t *testing.T) {
	for _, name := range strings.Split(EnvNames, "|") {
		spec, err := BuildEnv(name, 2, 8, fault.Profile{})
		if err != nil {
			t.Fatalf("BuildEnv(%q): %v", name, err)
		}
		if spec.New() == nil {
			t.Fatalf("BuildEnv(%q) built a nil environment", name)
		}
	}
	if _, err := BuildEnv("nope", 2, 8, fault.Profile{}); err == nil {
		t.Fatal("unknown env accepted")
	}
	// hpc and cloud have no fault substrate; an enabled profile must error.
	for _, name := range []string{"hpc", "cloud"} {
		if _, err := BuildEnv(name, 2, 8, fault.MTBF()); err == nil {
			t.Fatalf("BuildEnv(%q) accepted an enabled fault profile", name)
		}
	}
}
