// Package driver is the shared runtime of every cmd/ binary: one flag
// surface (-seed, -faults, -trace, -provenance, -json plus per-command
// flags), one environment-construction path, and one report pipeline
// (compose.Report rendered as text or machine-readable JSON). Commands
// declare what is specific to them and inherit everything else, so the
// reproduction's seven entry points behave identically where they overlap.
package driver

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"hhcw/internal/compose"
	"hhcw/internal/core"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/provenance"
	"hhcw/internal/randx"
	"hhcw/internal/trace"
)

// App owns a command's flag set and report plumbing. Create one with New,
// register command-specific flags through the typed methods, then Parse.
type App struct {
	name string
	fs   *flag.FlagSet

	seed       *int64
	faultsName *string
	traceOut   *string
	provOut    *string
	jsonOut    *bool
	cpuOut     *string
	memOut     *string

	faults         fault.Profile
	noFaults       bool
	wroteArtifacts bool
	cpuFile        *os.File
	profilesDone   bool
}

// New creates an App named after the command and registers the common flags
// every binary shares. synopsis is the one-line usage string printed above
// the flag help.
func New(name, synopsis string) *App {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	a := &App{name: name, fs: fs}
	a.seed = fs.Int64("seed", 1, "simulation seed")
	a.faultsName = fs.String("faults", "none", "fault profile: none|mtbf|spot|storm")
	a.traceOut = fs.String("trace", "", "write a Chrome trace JSON of the run (provenance-enabled runs)")
	a.provOut = fs.String("provenance", "", "write a W3C PROV-JSON document of the run (provenance-enabled runs)")
	a.jsonOut = fs.Bool("json", false, "emit the report as machine-readable JSON (schema "+compose.Schema+")")
	a.cpuOut = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	a.memOut = fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "Usage: %s\n\n", synopsis)
		fs.PrintDefaults()
	}
	return a
}

// Typed flag registration, passed through to the app's private flag set so
// commands never touch package flag directly.

// Int registers an int flag.
func (a *App) Int(name string, value int, usage string) *int { return a.fs.Int(name, value, usage) }

// Int64 registers an int64 flag.
func (a *App) Int64(name string, value int64, usage string) *int64 {
	return a.fs.Int64(name, value, usage)
}

// Bool registers a bool flag.
func (a *App) Bool(name string, value bool, usage string) *bool {
	return a.fs.Bool(name, value, usage)
}

// String registers a string flag.
func (a *App) String(name, value, usage string) *string { return a.fs.String(name, value, usage) }

// Float64 registers a float64 flag.
func (a *App) Float64(name string, value float64, usage string) *float64 {
	return a.fs.Float64(name, value, usage)
}

// SeedDefault overrides the default of the common -seed flag (call before
// Parse). Commands calibrated around a historical seed keep their behaviour.
func (a *App) SeedDefault(v int64) {
	*a.seed = v
	a.fs.Lookup("seed").DefValue = fmt.Sprint(v)
	a.fs.Lookup("seed").Value.Set(fmt.Sprint(v))
}

// NoFaults marks the command as having no fault-injecting substrate; Parse
// rejects an enabled -faults profile with a clear error instead of silently
// ignoring it.
func (a *App) NoFaults() { a.noFaults = true }

// Parse parses os.Args, resolves the fault profile, and validates the common
// flag combinations. It exits the process on any error.
func (a *App) Parse() {
	a.fs.Parse(os.Args[1:])
	faults, err := fault.ByName(*a.faultsName)
	if err != nil {
		a.Usagef("%v", err)
	}
	if a.noFaults && faults.Enabled() {
		a.Usagef("-faults %s is not supported by this command", *a.faultsName)
	}
	a.faults = faults
	if *a.cpuOut != "" {
		f, err := os.Create(*a.cpuOut)
		if err != nil {
			a.Fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			a.Fatalf("-cpuprofile: %v", err)
		}
		a.cpuFile = f
	}
}

// stopProfiles flushes the -cpuprofile and -memprofile outputs. It runs on
// every exit path (Emit, Fatalf, Usagef) and is idempotent, so a failed run
// still leaves a usable CPU profile behind. Profile-writing errors are
// reported to stderr directly — never through Fatalf, which would recurse.
func (a *App) stopProfiles() {
	if a.profilesDone {
		return
	}
	a.profilesDone = true
	if a.cpuFile != nil {
		pprof.StopCPUProfile()
		a.cpuFile.Close()
		a.cpuFile = nil
		a.Logf("wrote cpu profile %s (go tool pprof %s)", *a.cpuOut, *a.cpuOut)
	}
	if a.memOut != nil && *a.memOut != "" {
		f, err := os.Create(*a.memOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", a.name, err)
			return
		}
		runtime.GC() // materialize the live heap, not allocation noise
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", a.name, err)
		}
		f.Close()
		a.Logf("wrote heap profile %s (go tool pprof %s)", *a.memOut, *a.memOut)
	}
}

// Args returns the positional arguments left after flag parsing.
func (a *App) Args() []string { return a.fs.Args() }

// Seed returns the common -seed value.
func (a *App) Seed() int64 { return *a.seed }

// Faults returns the resolved -faults profile.
func (a *App) Faults() fault.Profile { return a.faults }

// FaultsName returns the raw -faults flag value.
func (a *App) FaultsName() string { return *a.faultsName }

// JSON reports whether -json was set.
func (a *App) JSON() bool { return *a.jsonOut }

// NewReport starts the command's report with the common header fields.
func (a *App) NewReport() *compose.Report {
	return compose.NewReport(a.name, a.Seed(), a.FaultsName())
}

// Fatalf prints "name: message" to stderr and exits 1 — runtime failures.
func (a *App) Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, a.name+": "+format+"\n", args...)
	a.stopProfiles()
	os.Exit(1)
}

// Usagef prints "name: message" to stderr and exits 2 — flag/usage errors.
func (a *App) Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, a.name+": "+format+"\n", args...)
	a.stopProfiles()
	os.Exit(2)
}

// Check exits via Fatalf when err is non-nil.
func (a *App) Check(err error) {
	if err != nil {
		a.Fatalf("%v", err)
	}
}

// Logf prints progress to stderr, keeping stdout clean for the report (and
// for -json consumers in particular).
func (a *App) Logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, a.name+": "+format+"\n", args...)
}

// RunSeeded executes a workflow under the sweep engine's seeding discipline:
// substrate randomness forks off the generator source right after workflow
// generation, so a single run reproduces the corresponding sweep cell
// exactly.
func RunSeeded(env core.Environment, w *dag.Workflow, rng *randx.Source) (*core.Result, error) {
	if se, ok := env.(core.SeededEnvironment); ok {
		return se.RunSeeded(w, rng.Fork())
	}
	return env.Run(w)
}

// WriteArtifacts writes the -trace and -provenance outputs from a run's
// provenance store. Commands call it once for the run the artifacts should
// describe; it is a no-op when neither flag is set, and fails when a flag is
// set but the run carried no provenance (e.g. a FIFO environment).
func (a *App) WriteArtifacts(res *core.Result) {
	if *a.traceOut == "" && *a.provOut == "" {
		return
	}
	store, ok := res.Provenance.(*provenance.Store)
	if !ok {
		a.Usagef("-trace/-provenance need a provenance-enabled run (a CWS-scheduled environment)")
	}
	if *a.traceOut != "" {
		raw, err := trace.FromProvenance(store).JSON()
		a.Check(err)
		a.Check(os.WriteFile(*a.traceOut, raw, 0o644))
		a.Logf("wrote trace %s (open in chrome://tracing)", *a.traceOut)
	}
	if *a.provOut != "" {
		raw, err := store.ExportPROV()
		a.Check(err)
		a.Check(os.WriteFile(*a.provOut, raw, 0o644))
		a.Logf("wrote provenance %s (W3C PROV-JSON)", *a.provOut)
	}
	a.wroteArtifacts = true
}

// Emit renders the report to stdout — compose.Report JSON under -json, the
// deterministic text rendering otherwise — and enforces that requested
// artifacts were produced.
func (a *App) Emit(rep *compose.Report) {
	if !a.wroteArtifacts && (*a.traceOut != "" || *a.provOut != "") {
		a.Usagef("-trace/-provenance are not produced by this command mode")
	}
	a.stopProfiles()
	if a.JSON() {
		raw, err := rep.JSON()
		a.Check(err)
		os.Stdout.Write(raw)
		return
	}
	fmt.Print(rep.Text())
}
