package driver

import (
	"fmt"
	"strconv"

	"hhcw/internal/atlas"
	"hhcw/internal/compose"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/exaam"
	"hhcw/internal/jaws"
	"hhcw/internal/llmwf"
	"hhcw/internal/randx"
)

// paramInt reads an integer binding parameter, defaulting when absent.
func paramInt(params map[string]string, key string, def int) (int, error) {
	v, ok := params[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("binding param %s=%q is not an integer", key, v)
	}
	return n, nil
}

// paramSeed reads the "seed" binding parameter, defaulting when absent.
func paramSeed(params map[string]string, def int64) (int64, error) {
	v, ok := params["seed"]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("binding param seed=%q is not an integer", v)
	}
	return n, nil
}

// Registry returns the builtin workflow registry: every subsystem compiler
// exposed as a named, parameterized entry a dag.WorkflowRef can splice in.
// Entries take their randomness from the "seed" binding param, so the same
// (name, params) pair always resolves to the same template — the determinism
// that makes static and lazy expansion interchangeable.
//
//	atlas        Transcriptomics Atlas salmon pipeline (§5); params: seed, runs
//	exaam-uq     ExaAM Stage-3 UQ ensemble via EnTK (§4); params: seed
//	jaws-scatter JAWS WDL scatter/gather workflow (§6); params: shards
//	llm-pipeline LLM-planned phyloflow template (§2)
//	cwsi-mix     multi-tenant CWS workload union (§3); params: seed, tenants
//	atlas-uq     the flagship composition: atlas feeding exaam-uq, expressed
//	             as nested WorkflowRefs; params: seed
func Registry() *compose.Registry {
	reg := compose.NewRegistry()

	reg.Register("atlas", compose.ParamFunc(func(params map[string]string) (*dag.Workflow, error) {
		seed, err := paramSeed(params, 1)
		if err != nil {
			return nil, err
		}
		runs, err := paramInt(params, "runs", 2)
		if err != nil {
			return nil, err
		}
		catalog := atlas.GenerateCatalog(randx.New(seed), runs)
		return atlas.PipelineSpec{Runs: catalog}.Compile()
	}))

	reg.Register("exaam-uq", compose.ParamFunc(func(params map[string]string) (*dag.Workflow, error) {
		seed, err := paramSeed(params, 1)
		if err != nil {
			return nil, err
		}
		cfg := exaam.Config{
			GridDim: 2, GridLevel: 1, MeltPoolCases: 1,
			MicroParams: 1, LoadingDirections: 2, Temperatures: 1, RVEs: 2,
			Seed: seed,
		}
		return exaam.Stage3Pipeline(cfg).Compile()
	}))

	reg.Register("jaws-scatter", compose.ParamFunc(func(params map[string]string) (*dag.Workflow, error) {
		shards, err := paramInt(params, "shards", 8)
		if err != nil {
			return nil, err
		}
		def := &jaws.WorkflowDef{
			Name: "jaws-scatter",
			Tasks: []*jaws.TaskDef{
				{Name: "prep", Cores: 1, DurationSec: 60, OverheadSec: 10},
				{Name: "align", Cores: 2, DurationSec: 300, OverheadSec: 30,
					Scatter: shards, After: []string{"prep"}},
				{Name: "merge", Cores: 1, DurationSec: 120, OverheadSec: 10,
					After: []string{"align"}},
			},
		}
		return def.Compile()
	}))

	// The LLM-planned template is fully deterministic — it accepts (and
	// ignores) a seed binding so generic drivers can bind one uniformly.
	reg.Register("llm-pipeline", compose.ParamFunc(func(params map[string]string) (*dag.Workflow, error) {
		if _, err := paramSeed(params, 1); err != nil {
			return nil, err
		}
		return llmwf.PhyloflowTemplate.Compile()
	}))

	reg.Register("cwsi-mix", compose.ParamFunc(func(params map[string]string) (*dag.Workflow, error) {
		seed, err := paramSeed(params, 1)
		if err != nil {
			return nil, err
		}
		tenants, err := paramInt(params, "tenants", 3)
		if err != nil {
			return nil, err
		}
		rng := randx.New(seed)
		opts := dag.GenOpts{MeanDur: 300, CVDur: 0.8, Cores: 1, MaxCores: 4, MeanMem: 2e9}
		wl := cwsi.Workload{Name: "cwsi-mix"}
		for i := 0; i < tenants; i++ {
			var w *dag.Workflow
			switch i % 3 {
			case 0:
				w = dag.MontageLike(rng.Fork(), 8, opts)
			case 1:
				w = dag.RNASeqLike(rng.Fork(), 4, opts)
			default:
				w = dag.ForkJoin(rng.Fork(), 2, 6, opts)
			}
			w.Name = fmt.Sprintf("tenant%d-%s", i, w.Name)
			wl.Workflows = append(wl.Workflows, w)
		}
		return wl.Compile()
	}))

	// The flagship composition as pure references: expanding it recursively
	// resolves atlas and exaam-uq in turn (two levels of nesting from any
	// workflow that references atlas-uq).
	reg.Register("atlas-uq", compose.ParamFunc(func(params map[string]string) (*dag.Workflow, error) {
		seed, err := paramSeed(params, 1)
		if err != nil {
			return nil, err
		}
		bind := map[string]string{"seed": strconv.FormatInt(seed, 10)}
		w := dag.New("atlas-uq")
		w.Add(dag.WorkflowRef("atlas", "atlas", bind))
		uq := dag.WorkflowRef("uq", "exaam-uq", bind)
		uq.Deps = []dag.TaskID{"atlas"}
		w.Add(uq)
		return w, nil
	}))

	return reg
}

// RefRoot wraps one registry entry as a runnable root workflow: a single
// WorkflowRef bound to the given seed. Expanding it (statically via
// Registry.Expand or lazily via Registry.Expander) yields the entry's
// workflow; the root's name is the entry name, so reports and fingerprints
// read the same in both modes.
func RefRoot(entry string, seed int64) *dag.Workflow {
	w := dag.New(entry)
	w.Add(dag.WorkflowRef("run", entry, map[string]string{"seed": strconv.FormatInt(seed, 10)}))
	return w
}
