package driver

import (
	"fmt"

	"hhcw/internal/core"
	"hhcw/internal/cwsi"
	"hhcw/internal/dag"
	"hhcw/internal/fault"
	"hhcw/internal/randx"
	"hhcw/internal/sweep"
)

// WorkflowFamilies lists the synthetic generator names WorkflowFamily
// accepts, in flag-help order.
const WorkflowFamilies = "montage|epigenomics|forkjoin|rnaseq|layered"

// WorkflowFamily returns the seeded generator for a named synthetic workflow
// family at the given width — the shared vocabulary of wfsim and the sweep
// commands. cv is the duration coefficient of variation (0 picks 0.8).
func WorkflowFamily(name string, size int, cv float64) (*sweep.WorkflowSpec, error) {
	if cv <= 0 {
		cv = 0.8
	}
	opts := dag.GenOpts{MeanDur: 300, CVDur: cv, Cores: 1, MaxCores: 4, MeanMem: 2e9}
	var gen func(rng *randx.Source) *dag.Workflow
	switch name {
	case "montage":
		gen = func(r *randx.Source) *dag.Workflow { return dag.MontageLike(r, size, opts) }
	case "epigenomics":
		gen = func(r *randx.Source) *dag.Workflow { return dag.EpigenomicsLike(r, size/2, 5, opts) }
	case "forkjoin":
		gen = func(r *randx.Source) *dag.Workflow { return dag.ForkJoin(r, 3, size, opts) }
	case "rnaseq":
		gen = func(r *randx.Source) *dag.Workflow { return dag.RNASeqLike(r, size, opts) }
	case "layered":
		gen = func(r *randx.Source) *dag.Workflow { return dag.RandomLayered(r, 6, size, opts) }
	default:
		return nil, fmt.Errorf("unknown workflow family %q (want %s)", name, WorkflowFamilies)
	}
	return &sweep.WorkflowSpec{Name: name, Gen: gen}, nil
}

// EnvNames lists the environment names BuildEnv accepts, in flag-help order.
const EnvNames = "k8s|k8s-cws|hpc|cloud"

// BuildEnv returns the factory for a named environment. Each New call builds
// a fresh environment, so sweep workers share nothing. Fault profiles attach
// to the Kubernetes substrates only; enabling one elsewhere is an error.
func BuildEnv(name string, nodes, cores int, faults fault.Profile) (*sweep.EnvSpec, error) {
	var mk func() core.Environment
	switch name {
	case "k8s":
		mk = func() core.Environment {
			return &core.KubernetesEnv{Nodes: nodes, CoresPerNode: cores, Faults: faults}
		}
	case "k8s-cws":
		mk = func() core.Environment {
			return &core.KubernetesEnv{Nodes: nodes, CoresPerNode: cores, Strategy: cwsi.Rank{}, Faults: faults}
		}
	case "hpc":
		if faults.Enabled() {
			return nil, fmt.Errorf("fault profile %q is only supported on k8s|k8s-cws", faults.Name)
		}
		mk = func() core.Environment {
			return &core.HPCEnv{Nodes: nodes, CoresPerNode: cores, BootstrapSec: 85}
		}
	case "cloud":
		if faults.Enabled() {
			return nil, fmt.Errorf("fault profile %q is only supported on k8s|k8s-cws", faults.Name)
		}
		mk = func() core.Environment { return &core.CloudEnv{MaxInstances: nodes} }
	default:
		return nil, fmt.Errorf("unknown env %q (want %s)", name, EnvNames)
	}
	return &sweep.EnvSpec{Name: name, New: mk}, nil
}
