package statediff

import (
	"math"
	"strings"
	"testing"
)

type inner struct {
	n    int
	vals []float64
}

type outer struct {
	name  string
	score float64
	in    *inner
	m     map[string]int
	cb    func()
	next  *outer
}

func TestIdenticalValuesAreClean(t *testing.T) {
	a := &outer{name: "x", score: 1.5, in: &inner{n: 3, vals: []float64{1, 2}}, m: map[string]int{"k": 1}}
	b := &outer{name: "x", score: 1.5, in: &inner{n: 3, vals: []float64{1, 2}}, m: map[string]int{"k": 1}}
	if d := Diff(a, b, Config{}); len(d) != 0 {
		t.Fatalf("identical values diff: %v", d)
	}
}

func TestNilEqualsEmptyForMapsAndSlices(t *testing.T) {
	// Truncated in place (non-nil, len 0, retained capacity) vs never used
	// (nil) — the core warm-reset equivalence.
	a := &outer{in: &inner{vals: make([]float64, 0, 128)}, m: map[string]int{}}
	b := &outer{in: &inner{vals: nil}, m: nil}
	if d := Diff(a, b, Config{}); len(d) != 0 {
		t.Fatalf("truncated-vs-fresh diff: %v", d)
	}
}

func TestDiffNamesTheExactPath(t *testing.T) {
	a := &outer{in: &inner{n: 7}}
	b := &outer{in: &inner{n: 0}}
	d := Diff(a, b, Config{})
	if len(d) != 1 {
		t.Fatalf("want 1 diff, got %v", d)
	}
	if want := "*statediff.outer.in.n: 7 != 0"; d[0] != want {
		t.Errorf("diff line = %q, want %q", d[0], want)
	}
}

func TestFuncCompareByNilness(t *testing.T) {
	// A callback that should have been disarmed: non-nil vs nil is a leak...
	a := &outer{cb: func() {}}
	b := &outer{}
	d := Diff(a, b, Config{})
	if len(d) != 1 || !strings.Contains(d[0], ".cb") {
		t.Fatalf("leaked callback not named: %v", d)
	}
	// ...while two live callbacks are assumed equivalent.
	c := &outer{cb: func() {}}
	if d := Diff(a, c, Config{}); len(d) != 0 {
		t.Fatalf("two live callbacks diff: %v", d)
	}
}

func TestSkipExemptsDeclaredFields(t *testing.T) {
	a := &outer{in: &inner{vals: []float64{9}}}
	b := &outer{in: &inner{}}
	cfg := Config{Skip: []string{"statediff.inner.vals"}}
	if d := Diff(a, b, cfg); len(d) != 0 {
		t.Fatalf("skipped field still reported: %v", d)
	}
}

func TestFloatBitPatternEquality(t *testing.T) {
	nan := math.NaN()
	a := &outer{score: nan}
	b := &outer{score: nan}
	if d := Diff(a, b, Config{}); len(d) != 0 {
		t.Fatalf("NaN != NaN under bit equality: %v", d)
	}
	c := &outer{score: math.Copysign(0, -1)}
	z := &outer{score: 0}
	if d := Diff(c, z, Config{}); len(d) != 1 {
		t.Fatalf("-0 vs +0 must differ bitwise: %v", d)
	}
}

func TestPointerCyclesTerminate(t *testing.T) {
	a := &outer{name: "a"}
	a.next = a
	b := &outer{name: "a"}
	b.next = b
	if d := Diff(a, b, Config{}); len(d) != 0 {
		t.Fatalf("equal cyclic values diff: %v", d)
	}
	c := &outer{name: "c"}
	c.next = c
	d := Diff(a, c, Config{})
	if len(d) == 0 {
		t.Fatal("differing cyclic values reported clean")
	}
}

func TestMapLenAndMissingKey(t *testing.T) {
	a := &outer{m: map[string]int{"k": 1}}
	b := &outer{m: map[string]int{"j": 1}}
	d := Diff(a, b, Config{})
	if len(d) == 0 || !strings.Contains(d[0], "key missing") {
		t.Fatalf("missing key not reported: %v", d)
	}
	c := &outer{m: map[string]int{"k": 1, "j": 2}}
	d = Diff(a, c, Config{})
	if len(d) != 1 || !strings.Contains(d[0], "map len") {
		t.Fatalf("length mismatch not reported: %v", d)
	}
}

func TestMaxDiffsBoundsReport(t *testing.T) {
	a := &inner{vals: []float64{1, 2, 3, 4, 5}}
	b := &inner{vals: []float64{9, 9, 9, 9, 9}}
	d := Diff(a, b, Config{MaxDiffs: 2})
	if len(d) != 2 {
		t.Fatalf("MaxDiffs=2 returned %d lines", len(d))
	}
}

func TestTypeMismatchReported(t *testing.T) {
	d := Diff(&inner{}, &outer{}, Config{})
	if len(d) != 1 || !strings.Contains(d[0], "type") {
		t.Fatalf("type mismatch not reported: %v", d)
	}
}
